package parowl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func buildSmallTBox(t *testing.T) *TBox {
	t.Helper()
	tb := NewTBox("small")
	f := tb.Factory
	animal, cat, dog := tb.Declare("Animal"), tb.Declare("Cat"), tb.Declare("Dog")
	mammal := tb.Declare("Mammal")
	tb.SubClassOf(mammal, animal)
	tb.SubClassOf(cat, mammal)
	tb.SubClassOf(dog, mammal)
	tb.DisjointClasses(cat, dog)
	tb.SubClassOf(cat, f.Some(f.Role("eats"), tb.Declare("Mouse")))
	return tb
}

func TestClassifyDefaults(t *testing.T) {
	tb := buildSmallTBox(t)
	res, err := Classify(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := tb.Factory
	if !res.Taxonomy.IsAncestor(f.Name("Animal"), f.Name("Cat")) {
		t.Error("Cat ⊑ Animal missing")
	}
	if res.Taxonomy.IsAncestor(f.Name("Dog"), f.Name("Cat")) {
		t.Error("Cat ⊑ Dog wrongly derived")
	}
	if res.Stats.SubsTests == 0 {
		t.Error("no tests recorded")
	}
}

func TestBaselinesAgree(t *testing.T) {
	tb := buildSmallTBox(t)
	par, err := Classify(tb, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ClassifySequential(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	trav, err := ClassifyEnhancedTraversal(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Taxonomy.Equal(seq) {
		t.Error("parallel vs sequential mismatch")
	}
	if !par.Taxonomy.Equal(trav) {
		t.Error("parallel vs traversal mismatch")
	}
}

func TestLoadFileOBOAndFSS(t *testing.T) {
	dir := t.TempDir()
	oboPath := filepath.Join(dir, "mini.obo")
	oboSrc := "[Term]\nid: A\n\n[Term]\nid: B\nis_a: A\n"
	if err := os.WriteFile(oboPath, []byte(oboSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	tb, err := LoadFile(oboPath)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumNamed() != 2 {
		t.Errorf("obo concepts = %d", tb.NumNamed())
	}

	fssPath := filepath.Join(dir, "mini.ofn")
	fssSrc := "Ontology(\nSubClassOf(<urn:B> <urn:A>)\n)"
	if err := os.WriteFile(fssPath, []byte(fssSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	tb2, err := LoadFile(fssPath)
	if err != nil {
		t.Fatal(err)
	}
	if tb2.NumNamed() != 2 {
		t.Errorf("fss concepts = %d", tb2.NumNamed())
	}
	if _, err := LoadFile(filepath.Join(dir, "absent.obo")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteFiles(t *testing.T) {
	dir := t.TempDir()
	tb := buildSmallTBox(t)
	ofn := filepath.Join(dir, "out.ofn")
	if err := WriteFunctionalFile(ofn, tb); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(ofn)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNamed() != tb.NumNamed() {
		t.Errorf("round trip lost concepts: %d vs %d", back.NumNamed(), tb.NumNamed())
	}
	oboPath := filepath.Join(dir, "out.obo")
	if err := WriteOBOFile(oboPath, tb); err != nil {
		t.Fatal(err)
	}
	omnPath := filepath.Join(dir, "out.omn")
	if err := WriteManchesterFile(omnPath, tb); err != nil {
		t.Fatal(err)
	}
	backOmn, err := LoadFile(omnPath)
	if err != nil {
		t.Fatal(err)
	}
	if backOmn.NumNamed() != tb.NumNamed() {
		t.Errorf("manchester round trip lost concepts: %d vs %d", backOmn.NumNamed(), tb.NumNamed())
	}
	// Classification semantics must survive the Manchester round trip.
	want, err := Classify(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Classify(backOmn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Taxonomy.Fingerprint() != want.Taxonomy.Fingerprint() {
		t.Error("manchester round trip changed classification")
	}
}

func TestProfilesAndGenerate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 14 {
		t.Fatalf("profiles = %d, want 14", len(ps))
	}
	p, ok := ProfileByName("rnao_functional")
	if !ok {
		t.Fatal("rnao_functional missing")
	}
	tb, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := ComputeMetrics(tb)
	if m.QCRs != 446 {
		t.Errorf("rnao QCRs = %d, want 446", m.QCRs)
	}
}

func TestReasonerConstructors(t *testing.T) {
	tb := buildSmallTBox(t)
	if _, err := NewELReasoner(tb); err != nil {
		t.Errorf("EL reasoner rejected EL ontology: %v", err)
	}
	alc := NewTBox("alc")
	f := alc.Factory
	alc.SubClassOf(alc.Declare("A"), f.Not(alc.Declare("B")))
	if _, err := NewELReasoner(alc); err == nil {
		t.Error("EL reasoner accepted negation")
	}
	// Auto must fall back to the tableau and still classify.
	res, err := Classify(alc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Taxonomy == nil {
		t.Fatal("nil taxonomy")
	}
}

func TestSpeedupSweepShape(t *testing.T) {
	p, _ := ProfileByName("obo.PREVIOUS")
	tb, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewOracleReasoner(tb, UniformCost(200_000, 0.2, 1)) // 200µs per test
	points, err := SpeedupSweep(tb, oracle, []int{1, 4, 16}, Options{RandomCycles: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Speedup > 1.2 {
		t.Errorf("speedup(1) = %.2f", points[0].Speedup)
	}
	if points[2].Speedup < points[0].Speedup {
		t.Errorf("no scaling: %v", points)
	}
}

func TestTaxonomyRender(t *testing.T) {
	tb := buildSmallTBox(t)
	res, err := Classify(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Taxonomy.Render()
	if !strings.Contains(out, "Mammal") || !strings.Contains(out, "  ") {
		t.Errorf("Render output suspicious:\n%s", out)
	}
}

func TestFormatNames(t *testing.T) {
	cases := map[Format]string{
		FormatFunctional: "functional",
		FormatOBO:        "obo",
		FormatManchester: "manchester",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("Format(%d).String() = %q, want %q", int(f), got, want)
		}
	}
}

func TestDetectFormat(t *testing.T) {
	cases := map[string]Format{
		"onto.obo":            FormatOBO,
		"dir/ONTO.OBO":        FormatOBO,
		"onto.omn":            FormatManchester,
		"onto.manchester":     FormatManchester,
		"onto.ofn":            FormatFunctional,
		"onto.owl":            FormatFunctional,
		"no-extension":        FormatFunctional,
		"weird.obo.ofn":       FormatFunctional,
		"/abs/path/file.OMN":  FormatManchester,
	}
	for path, want := range cases {
		if got := DetectFormat(path); got != want {
			t.Errorf("DetectFormat(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestWriteFormatDispatch drives the collapsed Write/WriteFile API: one
// ontology, every format, reload through LoadFile's matching extension
// dispatch, and identical classification after each round trip.
func TestWriteFormatDispatch(t *testing.T) {
	dir := t.TempDir()
	tb := buildSmallTBox(t)
	want, err := Classify(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		format Format
	}{
		{"out.ofn", FormatFunctional},
		{"out.obo", FormatOBO},
		{"out.omn", FormatManchester},
		{"out.manchester", FormatManchester},
	} {
		path := filepath.Join(dir, tc.name)
		if got := DetectFormat(path); got != tc.format {
			t.Fatalf("DetectFormat(%q) = %v, want %v", tc.name, got, tc.format)
		}
		if err := WriteFile(path, tb, tc.format); err != nil {
			t.Fatalf("WriteFile(%s, %v): %v", tc.name, tc.format, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", tc.name, err)
		}
		if back.NumNamed() != tb.NumNamed() {
			t.Errorf("%s: round trip lost concepts: %d vs %d", tc.name, back.NumNamed(), tb.NumNamed())
		}
		got, err := Classify(back, Options{})
		if err != nil {
			t.Fatalf("classifying %s round trip: %v", tc.name, err)
		}
		if got.Taxonomy.Fingerprint() != want.Taxonomy.Fingerprint() {
			t.Errorf("%s: round trip changed classification", tc.name)
		}
	}

	// Unknown format values are rejected, not silently defaulted.
	if err := Write(os.Stderr, tb, Format(42)); err == nil {
		t.Error("Write accepted Format(42)")
	}
	if err := WriteFile(filepath.Join(dir, "bad.ofn"), tb, Format(42)); err == nil {
		t.Error("WriteFile accepted Format(42)")
	}
	if !strings.Contains(Format(42).String(), "functional") {
		// String() defaults unknowns to "functional" for display only;
		// pin that so Write's stricter behavior stays deliberate.
		t.Errorf("Format(42).String() = %q", Format(42).String())
	}
}
