package parowl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func buildSmallTBox(t *testing.T) *TBox {
	t.Helper()
	tb := NewTBox("small")
	f := tb.Factory
	animal, cat, dog := tb.Declare("Animal"), tb.Declare("Cat"), tb.Declare("Dog")
	mammal := tb.Declare("Mammal")
	tb.SubClassOf(mammal, animal)
	tb.SubClassOf(cat, mammal)
	tb.SubClassOf(dog, mammal)
	tb.DisjointClasses(cat, dog)
	tb.SubClassOf(cat, f.Some(f.Role("eats"), tb.Declare("Mouse")))
	return tb
}

func TestClassifyDefaults(t *testing.T) {
	tb := buildSmallTBox(t)
	res, err := Classify(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := tb.Factory
	if !res.Taxonomy.IsAncestor(f.Name("Animal"), f.Name("Cat")) {
		t.Error("Cat ⊑ Animal missing")
	}
	if res.Taxonomy.IsAncestor(f.Name("Dog"), f.Name("Cat")) {
		t.Error("Cat ⊑ Dog wrongly derived")
	}
	if res.Stats.SubsTests == 0 {
		t.Error("no tests recorded")
	}
}

func TestBaselinesAgree(t *testing.T) {
	tb := buildSmallTBox(t)
	par, err := Classify(tb, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ClassifySequential(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	trav, err := ClassifyEnhancedTraversal(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Taxonomy.Equal(seq) {
		t.Error("parallel vs sequential mismatch")
	}
	if !par.Taxonomy.Equal(trav) {
		t.Error("parallel vs traversal mismatch")
	}
}

func TestLoadFileOBOAndFSS(t *testing.T) {
	dir := t.TempDir()
	oboPath := filepath.Join(dir, "mini.obo")
	oboSrc := "[Term]\nid: A\n\n[Term]\nid: B\nis_a: A\n"
	if err := os.WriteFile(oboPath, []byte(oboSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	tb, err := LoadFile(oboPath)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumNamed() != 2 {
		t.Errorf("obo concepts = %d", tb.NumNamed())
	}

	fssPath := filepath.Join(dir, "mini.ofn")
	fssSrc := "Ontology(\nSubClassOf(<urn:B> <urn:A>)\n)"
	if err := os.WriteFile(fssPath, []byte(fssSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	tb2, err := LoadFile(fssPath)
	if err != nil {
		t.Fatal(err)
	}
	if tb2.NumNamed() != 2 {
		t.Errorf("fss concepts = %d", tb2.NumNamed())
	}
	if _, err := LoadFile(filepath.Join(dir, "absent.obo")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteFiles(t *testing.T) {
	dir := t.TempDir()
	tb := buildSmallTBox(t)
	ofn := filepath.Join(dir, "out.ofn")
	if err := WriteFunctionalFile(ofn, tb); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(ofn)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNamed() != tb.NumNamed() {
		t.Errorf("round trip lost concepts: %d vs %d", back.NumNamed(), tb.NumNamed())
	}
	oboPath := filepath.Join(dir, "out.obo")
	if err := WriteOBOFile(oboPath, tb); err != nil {
		t.Fatal(err)
	}
	omnPath := filepath.Join(dir, "out.omn")
	if err := WriteManchesterFile(omnPath, tb); err != nil {
		t.Fatal(err)
	}
	backOmn, err := LoadFile(omnPath)
	if err != nil {
		t.Fatal(err)
	}
	if backOmn.NumNamed() != tb.NumNamed() {
		t.Errorf("manchester round trip lost concepts: %d vs %d", backOmn.NumNamed(), tb.NumNamed())
	}
	// Classification semantics must survive the Manchester round trip.
	want, err := Classify(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Classify(backOmn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Taxonomy.Fingerprint() != want.Taxonomy.Fingerprint() {
		t.Error("manchester round trip changed classification")
	}
}

func TestProfilesAndGenerate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 14 {
		t.Fatalf("profiles = %d, want 14", len(ps))
	}
	p, ok := ProfileByName("rnao_functional")
	if !ok {
		t.Fatal("rnao_functional missing")
	}
	tb, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := ComputeMetrics(tb)
	if m.QCRs != 446 {
		t.Errorf("rnao QCRs = %d, want 446", m.QCRs)
	}
}

func TestReasonerConstructors(t *testing.T) {
	tb := buildSmallTBox(t)
	if _, err := NewELReasoner(tb); err != nil {
		t.Errorf("EL reasoner rejected EL ontology: %v", err)
	}
	alc := NewTBox("alc")
	f := alc.Factory
	alc.SubClassOf(alc.Declare("A"), f.Not(alc.Declare("B")))
	if _, err := NewELReasoner(alc); err == nil {
		t.Error("EL reasoner accepted negation")
	}
	// Auto must fall back to the tableau and still classify.
	res, err := Classify(alc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Taxonomy == nil {
		t.Fatal("nil taxonomy")
	}
}

func TestSpeedupSweepShape(t *testing.T) {
	p, _ := ProfileByName("obo.PREVIOUS")
	tb, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewOracleReasoner(tb, UniformCost(200_000, 0.2, 1)) // 200µs per test
	points, err := SpeedupSweep(tb, oracle, []int{1, 4, 16}, Options{RandomCycles: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Speedup > 1.2 {
		t.Errorf("speedup(1) = %.2f", points[0].Speedup)
	}
	if points[2].Speedup < points[0].Speedup {
		t.Errorf("no scaling: %v", points)
	}
}

func TestTaxonomyRender(t *testing.T) {
	tb := buildSmallTBox(t)
	res, err := Classify(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Taxonomy.Render()
	if !strings.Contains(out, "Mammal") || !strings.Contains(out, "  ") {
		t.Errorf("Render output suspicious:\n%s", out)
	}
}
