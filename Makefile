GO ?= go

.PHONY: build test verify bench bench-tableau

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pre-merge gate: build + vet + all tests + race detector on the
# concurrency-critical packages. See scripts/verify.sh.
verify:
	sh scripts/verify.sh

bench:
	$(GO) test -bench . -benchmem -run xxx ./...

# Hot-path microbenchmarks with arena-reuse counters, written to
# BENCH_tableau.json for commit-over-commit comparison.
bench-tableau:
	$(GO) run ./cmd/benchfig -exp tableau
