GO ?= go

.PHONY: build test verify chaos serve-smoke serve-chaos bench bench-tableau bench-classify bench-sched bench-async bench-query

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pre-merge gate: build + vet + all tests + race detector on the
# concurrency-critical packages. See scripts/verify.sh.
verify:
	sh scripts/verify.sh

# The crash-safety torture loop: fault-injection and kill-and-resume
# suites under -race, plus subprocess SIGKILL of the real owlclass
# binary. See scripts/chaos.sh.
chaos:
	sh scripts/chaos.sh

# End-to-end smoke test of the owld daemon: classify generated corpora
# over HTTP and assert query answers and taxonomy output are
# byte-identical to owlclass on the same files. See
# scripts/serve_smoke.sh.
serve-smoke:
	sh scripts/serve_smoke.sh

# Durable-registry torture drill: SIGKILL the daemon, restart it under a
# fail-everything chaos reasoner (proving re-adoption reclassifies
# nothing), then restart under a tight memory budget and check evicted
# entries demand-reload byte-identical answers. See
# scripts/serve_chaos.sh.
serve-chaos:
	sh scripts/serve_chaos.sh

bench:
	$(GO) test -bench . -benchmem -run xxx ./...

# Hot-path microbenchmarks with arena-reuse counters, written to
# BENCH_tableau.json for commit-over-commit comparison.
bench-tableau:
	$(GO) run ./cmd/benchfig -exp tableau

# End-to-end classification benchmark (real tableau reasoning, cheap-first
# pipeline off vs on), written to BENCH_classify.json; compares against
# the previous run via benchstat when available.
bench-classify:
	sh scripts/bench_classify.sh

# Scheduler-policy benchmark (all four pool policies on a skewed corpus,
# real per-test durations), written to BENCH_sched.json. Uses the same
# scripts/corpus.sh ontology as `make chaos`; compares against the
# previous run via benchstat when available.
bench-sched:
	sh scripts/bench_sched.sh

# Barrier-free scheduler benchmark (async vs work-stealing at 8 workers
# on a skewed corpus, real per-test durations: wall clock, plug-in test
# count, per-worker wait), written to BENCH_async.json; compares against
# the previous run via benchstat when available.
bench-async:
	sh scripts/bench_async.sh

# Taxonomy query benchmark (bit-matrix kernel vs pointer-DAG lookups on
# full-size corpora, answers verified identical), written to
# BENCH_query.json; compares against the previous run via benchstat when
# available.
bench-query:
	sh scripts/bench_query.sh
