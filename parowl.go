// Package parowl is a parallel shared-memory OWL TBox classifier — a Go
// reproduction of Quan & Haarslev, "A Parallel Shared-Memory Architecture
// for OWL Ontology Classification" (ICPP 2017).
//
// The package classifies an ontology's named concepts into a subsumption
// taxonomy using a pool of workers over shared atomic data structures,
// with any reasoner plugged in behind the sat?/subs? interface. The
// public surface is handle-based: an Engine holds construction options
// (reasoner selection, scheduling policy, base classification options)
// and hands out Ontology handles carrying a loaded TBox plus its
// classified state:
//
//	eng := parowl.NewEngine(parowl.WithWorkers(8))
//	ont, err := eng.LoadFile("anatomy.obo")
//	...
//	res, err := ont.Classify(ctx)
//	...
//	fmt.Print(res.Taxonomy.Render())
//	snap, _ := ont.Snapshot() // concurrent queries, swap-safe
//	ok, _ := snap.Subsumes("Organ", "Heart")
//
// The pre-handle package-level helpers (Classify, LoadFile, …) remain as
// deprecated shims over a default Engine; see deprecated.go.
//
// Three reasoner plug-ins ship with the package: a tableau reasoner for
// ALCHQ with transitive roles (the default), an ELK-style saturation
// reasoner for EL ontologies, and a deterministic oracle with a synthetic
// cost model for scheduling experiments. See the examples directory and
// cmd/benchfig for the reproduction of the paper's tables and figures;
// cmd/owld serves classification and queries over HTTP.
package parowl

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"parowl/internal/core"
	"parowl/internal/dl"
	"parowl/internal/el"
	"parowl/internal/manchester"
	"parowl/internal/obo"
	"parowl/internal/ontogen"
	"parowl/internal/owlfss"
	"parowl/internal/reasoner"
	"parowl/internal/schedsim"
	"parowl/internal/tableau"
	"parowl/internal/taxonomy"
)

// Core ontology types, re-exported from the internal data model.
type (
	// TBox is a terminology: concepts, roles and axioms.
	TBox = dl.TBox
	// Concept is an interned concept expression.
	Concept = dl.Concept
	// Role is an object property.
	Role = dl.Role
	// Metrics is an ontology metrics row (paper Tables IV/V columns).
	Metrics = dl.Metrics
	// Taxonomy is a classification result: the subsumption DAG.
	Taxonomy = taxonomy.Taxonomy
	// TaxonomyNode is one equivalence class of a Taxonomy.
	TaxonomyNode = taxonomy.Node
	// TaxonomyDiff reports semantic differences between two taxonomies.
	TaxonomyDiff = taxonomy.Diff
	// TaxonomyKernel is the compiled bit-matrix query form of a Taxonomy:
	// dense node IDs plus ancestor/descendant closure matrices that serve
	// Subsumes as one bit test and the set queries as word-parallel row
	// operations. Compile with Taxonomy.CompileKernel, Options.CompileKernel,
	// or Snapshot.Kernel; persist with WriteKernelFile/ReadKernelFile.
	TaxonomyKernel = taxonomy.Kernel
	// Reasoner is the plug-in interface behind sat?() and subs?(). Both
	// methods receive a context; plug-ins must return promptly (with an
	// error wrapping the context's error) once it is cancelled, which is
	// what makes Options.TestTimeout budgets effective.
	Reasoner = reasoner.Interface
	// LegacyReasoner is the pre-context plug-in shape; wrap one with
	// AdaptReasoner. Such plug-ins cannot be interrupted, so per-test
	// budgets only bound the time-to-abandon, not the call itself.
	LegacyReasoner = reasoner.LegacyInterface
	// ModelFilter is the optional plug-in capability consulted by
	// Options.ModelFilter: a cheap, sound "definitely not subsumed"
	// answer that skips the full subs? dispatch.
	ModelFilter = reasoner.ModelFilter
	// Undecided is one reasoner test abandoned under the per-test budget
	// (see Options.TestTimeout) or recovered from a plug-in panic.
	Undecided = core.Undecided
	// Options configures a classification run; see the field docs in
	// internal/core. An Engine holds the base template (Engine.Options)
	// and Ontology.ClassifyWith takes a per-run value.
	Options = core.Options
	// Result is a classification outcome: taxonomy, stats and trace.
	Result = core.Result
	// Stats counts reasoner calls and pruned pairs.
	Stats = core.Stats
	// Trace is the per-cycle instrumentation record.
	Trace = core.Trace
	// Scheduling selects the worker pool's dispatch policy (RoundRobin,
	// WorkSharing, WorkStealing, or Async).
	Scheduling = core.Scheduling
	// Profile is a synthetic-corpus generator profile.
	Profile = ontogen.Profile
	// CostModel assigns virtual durations to oracle subsumption tests.
	CostModel = reasoner.CostModel
	// ChaosOptions configures NewChaosReasoner's fault mix.
	ChaosOptions = reasoner.ChaosOptions
)

// Classification modes and scheduling policies (re-exported constants).
const (
	// ModeOptimized enables the Section IV pruning optimizations.
	ModeOptimized = core.Optimized
	// ModeBasic runs the Section III algorithms without pruning.
	ModeBasic = core.Basic
	// RoundRobin dispatches task i to worker i mod w (the paper's policy).
	RoundRobin = core.RoundRobin
	// WorkSharing lets any idle worker take the next task.
	WorkSharing = core.WorkSharing
	// WorkStealing gives each worker a lock-free deque and lets idle
	// workers steal queued tasks from busy ones, with batches submitted
	// hardest-first (LPT).
	WorkStealing = core.WorkStealing
	// Async runs classification barrier-free on the stealing pool:
	// workers publish results continuously, random-division cycles are
	// pipelined, group-division work is re-cut from the live shared
	// state below a backlog watermark, and the run quiesces only at
	// phase edges and due checkpoints (epoch-consistent snapshots),
	// where a coordinator prune sweep converts the epoch's late-arriving
	// subsumptions into reasoner-free pair resolutions.
	Async = core.Async
)

// Concept constructor kinds (re-exported for plug-in authors inspecting
// concept expressions).
const (
	OpTop    = dl.OpTop
	OpBottom = dl.OpBottom
	OpName   = dl.OpName
	OpNot    = dl.OpNot
	OpAnd    = dl.OpAnd
	OpOr     = dl.OpOr
	OpSome   = dl.OpSome
	OpAll    = dl.OpAll
	OpMin    = dl.OpMin
	OpMax    = dl.OpMax
)

// NewTBox returns an empty TBox to build programmatically.
func NewTBox(name string) *TBox { return dl.NewTBox(name) }

// ParseScheduling maps a policy name ("roundrobin", "worksharing",
// "workstealing", "async", as printed by Scheduling.String) back to the
// constant.
func ParseScheduling(name string) (Scheduling, error) { return core.ParseScheduling(name) }

// Format identifies an ontology serialization syntax for Write/WriteFile
// and the Engine loaders' extension dispatch.
type Format int

// Supported serialization formats.
const (
	// FormatFunctional is OWL 2 functional-style syntax (the default).
	FormatFunctional Format = iota
	// FormatOBO is OBO 1.2 (representable EL TBoxes only).
	FormatOBO
	// FormatManchester is OWL 2 Manchester syntax.
	FormatManchester
)

func (f Format) String() string {
	switch f {
	case FormatOBO:
		return "obo"
	case FormatManchester:
		return "manchester"
	default:
		return "functional"
	}
}

// ParseFormat maps a format name (as printed by Format.String) back to
// the constant; the owld daemon uses it for the submit endpoint's
// ?format= parameter.
func ParseFormat(name string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "functional", "ofn", "owl":
		return FormatFunctional, nil
	case "obo":
		return FormatOBO, nil
	case "manchester", "omn":
		return FormatManchester, nil
	default:
		return FormatFunctional, fmt.Errorf("parowl: unknown format %q (want functional, obo, or manchester)", name)
	}
}

// DetectFormat maps a file path to the format implied by its extension:
// .obo is FormatOBO, .omn and .manchester are FormatManchester, anything
// else is FormatFunctional. Engine.LoadFile, WriteFile and the cmd/
// tools all dispatch through it, so the mapping is defined exactly once.
func DetectFormat(path string) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".obo":
		return FormatOBO
	case ".omn", ".manchester":
		return FormatManchester
	default:
		return FormatFunctional
	}
}

// Write serializes the TBox to w in the given format.
func Write(w io.Writer, t *TBox, f Format) error {
	switch f {
	case FormatOBO:
		return obo.Write(w, t)
	case FormatManchester:
		return manchester.Write(w, t)
	case FormatFunctional:
		return owlfss.Write(w, t)
	default:
		return fmt.Errorf("parowl: unknown format %d", f)
	}
}

// WriteFile serializes the TBox to a file in the given format. Pass
// DetectFormat(path) to let the extension pick the syntax.
func WriteFile(path string, t *TBox, f Format) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(out, t, f); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// ComputeMetrics returns the ontology's metric row.
func ComputeMetrics(t *TBox) Metrics { return dl.ComputeMetrics(t) }

// ErrBadKernel reports a taxonomy kernel frame that failed validation or
// could not be adopted; see TaxonomyKernel.
var ErrBadKernel = taxonomy.ErrBadKernel

// ErrBadSnapshot reports a checkpoint file that is truncated, corrupted,
// of an unknown version, or inconsistent with the ontology it is being
// restored into. Ontology.Adopt returns errors wrapping it.
var ErrBadSnapshot = core.ErrBadSnapshot

// ErrIncompleteSnapshot reports an Ontology.Adopt of a checkpoint whose
// classification had not finished; resume it with Ontology.Resume
// instead.
var ErrIncompleteSnapshot = core.ErrIncompleteSnapshot

// ErrChaosFault marks a failure injected by the Chaos reasoner decorator
// rather than a genuine reasoner error. Callers running fault-injection
// campaigns (and owld's classify retry policy) match it with errors.Is
// to tell transient injected faults from real failures.
var ErrChaosFault = reasoner.ErrInjected

// WriteKernelFile persists a compiled kernel to path (atomic rename).
func WriteKernelFile(path string, k *TaxonomyKernel) error {
	return taxonomy.WriteKernelFile(path, k)
}

// ReadKernelFile loads a kernel written by WriteKernelFile. The kernel is
// unbound; attach it to its taxonomy with Taxonomy.AdoptKernel, which
// validates the pairing by fingerprint.
func ReadKernelFile(path string) (*TaxonomyKernel, error) {
	return taxonomy.ReadKernelFile(path)
}

// CompareTaxonomies reports the entailment differences from old to new
// (added/removed subsumptions, unsatisfiability and vocabulary changes).
func CompareTaxonomies(old, new *Taxonomy) *TaxonomyDiff {
	return taxonomy.Compare(old, new)
}

// NewTableauReasoner returns the built-in tableau plug-in (ALCHQ with
// transitive roles; handles every ontology this package can represent).
func NewTableauReasoner(t *TBox) Reasoner {
	return tableau.New(t, tableau.Options{})
}

// NewTableauReasonerMM returns the tableau plug-in with the pseudo-model
// merging optimization enabled: non-subsumptions whose cached pseudo
// models merge are answered without a tableau run (the classic
// Racer/FaCT++ optimization; benchmarked as an ablation).
func NewTableauReasonerMM(t *TBox) Reasoner {
	return tableau.New(t, tableau.Options{ModelMerging: true})
}

// NewELReasoner returns the saturation-based plug-in; it fails if the
// TBox leaves the EL fragment.
func NewELReasoner(t *TBox) (Reasoner, error) {
	return el.New(t, el.Options{})
}

// NewAutoReasoner picks the EL reasoner when the ontology fits the EL
// fragment and the tableau otherwise. It is the default ReasonerFactory
// of every Engine.
func NewAutoReasoner(t *TBox) Reasoner {
	if r, err := el.New(t, el.Options{}); err == nil {
		return r
	}
	return NewTableauReasoner(t)
}

// NewOracleReasoner returns the deterministic told-closure oracle with an
// optional per-test cost model (used by the figure harness; see
// internal/reasoner for the cost-model constructors re-exported below).
func NewOracleReasoner(t *TBox, subsCost CostModel) Reasoner {
	return reasoner.NewOracle(t, reasoner.OracleOptions{SubsCost: subsCost})
}

// UniformCost and HeavyTailCost build the two cost regimes of the paper's
// evaluation (Sec. V-B): uniform per-test times, and a few very expensive
// tests for QCR-heavy ontologies.
var (
	UniformCost   = reasoner.UniformCost
	HeavyTailCost = reasoner.HeavyTailCost
)

// NewCachedReasoner wraps a plug-in with the sharded single-flight memo
// table. A cached plug-in also gains the cache export/import capability
// that lets classification checkpoints (Options.Checkpoint) persist
// settled answers across a crash.
func NewCachedReasoner(r Reasoner) Reasoner { return reasoner.NewCached(r) }

// NewChaosReasoner wraps a plug-in with deterministic fault injection
// (random errors, panics, hangs, budget exhaustion, added latency) for
// crash-safety and degradation testing. Compose it outside other
// decorators: NewChaosReasoner(NewCachedReasoner(r), o), never the
// reverse. Panics on invalid options.
func NewChaosReasoner(r Reasoner, o ChaosOptions) Reasoner { return reasoner.NewChaos(r, o) }

// ParseChaos parses the compact chaos spec used by the -chaos flag of
// owlclass and owld, e.g. "err=0.01,panic=0.005,slow=2ms,seed=7".
func ParseChaos(spec string) (ChaosOptions, error) { return reasoner.ParseChaos(spec) }

// AdaptReasoner wraps a pre-context plug-in as a Reasoner. The adapter
// checks the context before each call but cannot interrupt a call in
// flight, so prefer implementing the context-aware interface directly.
func AdaptReasoner(l LegacyReasoner) Reasoner { return reasoner.Adapt(l) }

// Profiles returns the 14 corpus profiles of the paper's Tables IV and V.
func Profiles() []Profile {
	out := append([]Profile(nil), ontogen.TableIV...)
	return append(out, ontogen.TableV...)
}

// ProfileByName looks up a Table IV/V profile.
func ProfileByName(name string) (Profile, bool) { return ontogen.ByName(name) }

// Generate builds a synthetic corpus from a profile. Engine.Generate
// wraps the result in an Ontology handle.
func Generate(p Profile, seed int64) (*TBox, error) { return p.Generate(seed) }

// MiniProfile scales a profile down by the given factor (for quick runs
// and small machines), preserving its qualitative shape.
func MiniProfile(p Profile, scale int) Profile { return ontogen.Mini(p, scale) }

// SpeedupPoint is one (workers, speedup) sample of a scalability curve.
type SpeedupPoint = schedsim.SweepPoint

// SpeedupSweep reproduces the paper's scalability methodology: for each
// worker count w it classifies the ontology with a w-worker pool (the
// group partitions depend on w), collects the dispatched task stream with
// each test charged its plug-in cost, and replays it on w virtual workers
// with the calibrated overhead model. Speedup is the paper's metric: the
// sum of all thread runtimes divided by the elapsed time.
func SpeedupSweep(t *TBox, r Reasoner, workers []int, opts Options) ([]SpeedupPoint, error) {
	if r == nil {
		return nil, fmt.Errorf("parowl: SpeedupSweep needs a reasoner (use NewOracleReasoner)")
	}
	run := func(w int) (*core.Trace, error) {
		o := opts
		o.Reasoner = r
		o.Workers = w
		o.CollectTrace = true
		res, err := core.Classify(t, o)
		if err != nil {
			return nil, err
		}
		return res.Trace, nil
	}
	return schedsim.Sweep(run, workers, schedsim.DefaultOverhead, opts.Scheduling)
}
