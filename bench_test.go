package parowl

// Benchmarks regenerating each table and figure of the paper at reduced
// scale (testing.B needs sub-second iterations; cmd/benchfig produces the
// full series). One benchmark per table/figure, plus ablations of the
// design choices DESIGN.md calls out: basic vs optimized mode (Sec. IV
// pruning), round-robin vs work-sharing scheduling, and the plug-in
// reasoners against each other and the sequential baselines.
//
// Run: go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	"parowl/internal/core"
	"parowl/internal/el"
	"parowl/internal/ontogen"
	"parowl/internal/reasoner"
	"parowl/internal/schedsim"
	"parowl/internal/tableau"
)

// benchCorpus generates a scaled corpus once per benchmark.
func benchCorpus(b *testing.B, name string, scale int) *TBox {
	b.Helper()
	p, ok := ontogen.ByName(name)
	if !ok {
		b.Fatalf("unknown profile %s", name)
	}
	if scale > 1 {
		p = ontogen.Mini(p, scale)
	}
	tb, err := p.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	return tb
}

// BenchmarkTable4Generate measures generating the largest Table IV corpus
// (EMAP, 13 735 concepts) and computing its metrics row.
func BenchmarkTable4Generate(b *testing.B) {
	p, _ := ontogen.ByName("EMAP#EMAP")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := p.Generate(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		m := ComputeMetrics(tb)
		if m.Concepts != 13735 {
			b.Fatalf("bad corpus: %v", m)
		}
	}
}

// BenchmarkTable5Generate measures the QCR-heavy bridg profile.
func BenchmarkTable5Generate(b *testing.B) {
	p, _ := ontogen.ByName("bridg.biomedical_domain")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := p.Generate(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if m := ComputeMetrics(tb); m.QCRs != 967 {
			b.Fatalf("bad corpus: %v", m)
		}
	}
}

// benchSpeedupPoint runs one (ontology, w) sample of a figure: classify
// with a w-worker pool against the oracle and replay in virtual time.
func benchSpeedupPoint(b *testing.B, profile string, scale, w int, cost reasoner.CostModel) {
	b.Helper()
	tb := benchCorpus(b, profile, scale)
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{SubsCost: cost})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Classify(tb, core.Options{
			Reasoner: oracle, Workers: w, CollectTrace: true, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		r := schedsim.Simulate(res.Trace, w, schedsim.DefaultOverhead, core.RoundRobin)
		if r.Speedup <= 0 {
			b.Fatal("no speedup computed")
		}
	}
}

func uniformMS(seed uint64) reasoner.CostModel {
	return reasoner.UniformCost(time.Millisecond, 0.2, seed)
}

// BenchmarkFig9aSpeedup: small-ontology sample point (obo.PREVIOUS, w=32,
// the paper's observed peak region).
func BenchmarkFig9aSpeedup(b *testing.B) {
	benchSpeedupPoint(b, "obo.PREVIOUS", 8, 32, uniformMS(1))
}

// BenchmarkFig9bSpeedup: medium ontology (WBbt) at w=64.
func BenchmarkFig9bSpeedup(b *testing.B) {
	benchSpeedupPoint(b, "WBbt.obo", 16, 64, uniformMS(1))
}

// BenchmarkFig9cSpeedup: large ontology (EMAP) at w=140.
func BenchmarkFig9cSpeedup(b *testing.B) {
	benchSpeedupPoint(b, "EMAP#EMAP", 16, 140, uniformMS(1))
}

// BenchmarkFig10aSpeedup: moderate-QCR corpus (ncitations) at w=80.
func BenchmarkFig10aSpeedup(b *testing.B) {
	benchSpeedupPoint(b, "ncitations_functional", 8, 80, uniformMS(1))
}

// BenchmarkFig10bSpeedup: bridg with its heavy-tailed cost model at w=80
// (the plateau sample).
func BenchmarkFig10bSpeedup(b *testing.B) {
	p, _ := ontogen.ByName("bridg.biomedical_domain")
	p = ontogen.Mini(p, 4)
	n := float64(p.Concepts)
	benchSpeedupPoint(b, "bridg.biomedical_domain", 4, 80,
		reasoner.HeavyTailCost(time.Millisecond, 4/(n*n), n*n/2, 1))
}

// BenchmarkFig11Cycles: the load-balancing measurement — 10 random
// division cycles with full tracing on the ncitations profile.
func BenchmarkFig11Cycles(b *testing.B) {
	tb := benchCorpus(b, "ncitations_functional", 4)
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{SubsCost: uniformMS(1)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Classify(tb, core.Options{
			Reasoner: oracle, Workers: 10, RandomCycles: 10, CollectTrace: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Trace.PossibleRatio(9) <= 0 {
			b.Fatal("no possible-ratio progression")
		}
	}
}

// BenchmarkClassifyWorkers measures real wall-clock classification with
// the EL plug-in at increasing pool sizes (genuine parallel speedup on
// multi-core machines; on one core it measures pool overhead).
func BenchmarkClassifyWorkers(b *testing.B) {
	tb := benchCorpus(b, "WBbt.obo", 32)
	elr, err := el.New(tb, el.Options{})
	if err != nil {
		b.Fatal(err)
	}
	elr.Saturate()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Classify(tb, core.Options{Reasoner: elr, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModeAblation compares the published Section III algorithm
// (basic) against the Section IV optimized mode on the same corpus: the
// optimization's pruned pairs translate into fewer reasoner calls.
func BenchmarkModeAblation(b *testing.B) {
	tb := benchCorpus(b, "obo.PREVIOUS", 8)
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{})
	for _, mode := range []core.Mode{core.Basic, core.Optimized} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			var tests int64
			for i := 0; i < b.N; i++ {
				res, err := core.Classify(tb, core.Options{Reasoner: oracle, Workers: 4, Mode: mode})
				if err != nil {
					b.Fatal(err)
				}
				tests = res.Stats.SubsTests
			}
			b.ReportMetric(float64(tests), "tests/run")
		})
	}
}

// BenchmarkSchedulingAblation compares round-robin (the paper's policy)
// against work-sharing dispatch.
func BenchmarkSchedulingAblation(b *testing.B) {
	tb := benchCorpus(b, "obo.PREVIOUS", 8)
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{})
	for _, sched := range []core.Scheduling{core.RoundRobin, core.WorkSharing} {
		b.Run(sched.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Classify(tb, core.Options{
					Reasoner: oracle, Workers: 4, Scheduling: sched,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableauSubsumption measures single subsumption tests on a
// QCR-bearing corpus — the unit of work the paper's plug-in (HermiT)
// performs.
func BenchmarkTableauSubsumption(b *testing.B) {
	tb := benchCorpus(b, "bridg.biomedical_domain", 8)
	tab := tableau.New(tb, tableau.Options{})
	named := tb.NamedConcepts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sup := named[i%len(named)]
		sub := named[(i*7+3)%len(named)]
		if _, err := tab.Subsumes(sup, sub); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableauSatReuse measures repeated satisfiability tests served
// by a warm solver pool — the steady state of a classification run, where
// the arena (pooled solvers, recycled nodes, slab-allocated dependency
// sets) should drive per-test heap allocation to near zero.
func BenchmarkTableauSatReuse(b *testing.B) {
	tb := benchCorpus(b, "bridg.biomedical_domain", 8)
	tab := tableau.New(tb, tableau.Options{})
	named := tb.NamedConcepts()
	// Warm the pool so the steady state, not first-use arena growth, is
	// what gets measured.
	for _, c := range named[:16] {
		if _, err := tab.IsSatisfiable(c); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.IsSatisfiable(named[i%len(named)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := tab.Stats()
	if total := st.NodesReused.Load() + st.NodesAllocated.Load(); total > 0 {
		b.ReportMetric(float64(st.NodesReused.Load())/float64(total), "node-reuse-ratio")
	}
}

// BenchmarkELSaturation measures one-shot concurrent saturation of a
// Table IV corpus (the ELK-style competitor).
func BenchmarkELSaturation(b *testing.B) {
	tb := benchCorpus(b, "WBbt.obo", 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := el.New(tb, el.Options{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		r.Saturate()
	}
}

// BenchmarkSequentialBaselines compares the two sequential comparators:
// brute force and enhanced traversal (fewer tests, more coordination).
func BenchmarkSequentialBaselines(b *testing.B) {
	tb := benchCorpus(b, "obo.PREVIOUS", 16)
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{})
	b.Run("bruteforce", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.SequentialBruteForce(tb, oracle); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traversal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.EnhancedTraversal(tb, oracle); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkModelMergingAblation compares plain tableau classification
// against the pseudo-model-merging variant on a Table V mini corpus: most
// tests are non-subsumptions that merging answers without a tableau run.
func BenchmarkModelMergingAblation(b *testing.B) {
	tb := benchCorpus(b, "nskisimple_functional", 16)
	for _, mm := range []bool{false, true} {
		name := "plain"
		if mm {
			name = "modelmerging"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := tableau.New(tb, tableau.Options{ModelMerging: mm})
				if _, err := core.Classify(tb, core.Options{Reasoner: r, Workers: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkELKStyleVsFramework compares direct saturation-based
// classification (ELK's approach, complete only for EL) against the
// paper's pairwise-testing framework using the same saturation as its
// plug-in — the trade-off the paper's introduction discusses: the
// framework supports any logic through its plug-in at the cost of
// pairwise testing.
func BenchmarkELKStyleVsFramework(b *testing.B) {
	tb := benchCorpus(b, "WBbt.obo", 32)
	b.Run("elk-direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := el.New(tb, el.Options{Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := r.Classify(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("framework", func(b *testing.B) {
		r, err := el.New(tb, el.Options{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		r.Saturate()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Classify(tb, core.Options{Reasoner: r, Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOracleLookup measures the oracle plug-in's per-test cost (the
// floor under every scheduling experiment).
func BenchmarkOracleLookup(b *testing.B) {
	tb := benchCorpus(b, "ncitations_functional", 4)
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{})
	named := tb.NamedConcepts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oracle.Subsumes(named[i%len(named)], named[(i+1)%len(named)]); err != nil {
			b.Fatal(err)
		}
	}
}
