package dl

import "fmt"

// Metrics summarizes an ontology with the columns used in the paper's
// Tables IV and V: concept count, axiom count, SubClassOf count, QCR count,
// ∃/∀ occurrence counts, Equivalent and Disjoint axiom counts, and the
// detected expressivity name.
type Metrics struct {
	Name         string
	Concepts     int
	Axioms       int
	SubClassOf   int
	QCRs         int // qualified cardinality restrictions (≥/≤ with filler ≠ ⊤)
	Cards        int // unqualified cardinality restrictions (filler = ⊤)
	Somes        int
	Alls         int
	Equivalent   int
	Disjoint     int
	Expressivity string
}

// String renders one metrics row.
func (m Metrics) String() string {
	return fmt.Sprintf("%s: concepts=%d axioms=%d subClassOf=%d qcrs=%d somes=%d alls=%d equiv=%d disjoint=%d dl=%s",
		m.Name, m.Concepts, m.Axioms, m.SubClassOf, m.QCRs, m.Somes, m.Alls, m.Equivalent, m.Disjoint, m.Expressivity)
}

// ComputeMetrics walks the TBox and fills a Metrics row.
func ComputeMetrics(t *TBox) Metrics {
	m := Metrics{Name: t.Name, Concepts: t.NumNamed(), Axioms: len(t.axioms)}
	feat := &features{}
	countExpr := func(c *Concept) {
		walkConcept(c, &m, feat)
	}
	for _, a := range t.axioms {
		switch a.Kind {
		case AxSubClassOf:
			m.SubClassOf++
			countExpr(a.Sub)
			countExpr(a.Sup)
		case AxEquivalent:
			m.Equivalent++
			countExpr(a.Sub)
			countExpr(a.Sup)
		case AxDisjoint:
			m.Disjoint++
			countExpr(a.Sub)
			countExpr(a.Sup)
		case AxSubRole:
			feat.roleHierarchy = true
		case AxTransitiveRole:
			feat.transitive = true
		}
	}
	m.Expressivity = feat.name()
	return m
}

type features struct {
	negation, union, universal bool
	qcr, card                  bool
	roleHierarchy, transitive  bool
}

// walkConcept counts syntactic constructor occurrences (every occurrence
// counts, as ontology editors report them); the corpus generators are
// calibrated against these counts.
func walkConcept(c *Concept, m *Metrics, f *features) {
	switch c.Op {
	case OpNot:
		f.negation = true
	case OpOr:
		f.union = true
	case OpAll:
		f.universal = true
		m.Alls++
	case OpSome:
		m.Somes++
	case OpMin, OpMax:
		if c.Args[0].Op == OpTop {
			f.card = true
			m.Cards++
		} else {
			f.qcr = true
			m.QCRs++
		}
	}
	for _, a := range c.Args {
		walkConcept(a, m, f)
	}
}

// name derives the DL name per the naming scheme of paper Sec. II-A:
// the EL family (⊓, ∃ only) is EL / ELH / EL+ / ELH+; anything using
// negation, union, universal restriction or cardinalities is named from
// ALC (S when transitive roles are present), plus H for role hierarchies,
// Q for qualified and N for unqualified number restrictions.
func (f *features) name() string {
	if !f.negation && !f.union && !f.universal && !f.qcr && !f.card {
		name := "EL"
		if f.roleHierarchy {
			name += "H"
		}
		if f.transitive {
			name += "+"
		}
		return name
	}
	name := "ALC"
	if f.transitive {
		name = "S"
	}
	if f.roleHierarchy {
		name += "H"
	}
	switch {
	case f.qcr:
		name += "Q"
	case f.card:
		name += "N"
	}
	return name
}
