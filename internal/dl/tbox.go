package dl

import (
	"fmt"
	"sort"
)

// AxiomKind discriminates TBox axiom types.
type AxiomKind uint8

// Axiom kinds.
const (
	AxSubClassOf     AxiomKind = iota // C ⊑ D
	AxEquivalent                      // C ≡ D
	AxDisjoint                        // C ⊓ D ⊑ ⊥ (pairwise from DisjointClasses)
	AxSubRole                         // R ⊑ S
	AxTransitiveRole                  // Trans(R)
	AxDeclaration                     // Declaration(Class(C)) — no logical content
	AxAnnotation                      // annotation assertion on C — no logical content
)

func (k AxiomKind) String() string {
	switch k {
	case AxSubClassOf:
		return "SubClassOf"
	case AxEquivalent:
		return "EquivalentClasses"
	case AxDisjoint:
		return "DisjointClasses"
	case AxSubRole:
		return "SubObjectPropertyOf"
	case AxTransitiveRole:
		return "TransitiveObjectProperty"
	case AxDeclaration:
		return "Declaration"
	case AxAnnotation:
		return "AnnotationAssertion"
	}
	return fmt.Sprintf("AxiomKind(%d)", uint8(k))
}

// Axiom is a single terminological axiom. Concept fields are set for the
// class-axiom kinds, role fields for the role-axiom kinds.
type Axiom struct {
	Kind AxiomKind
	// Sub ⊑ Sup for AxSubClassOf; the two sides for AxEquivalent and
	// AxDisjoint.
	Sub, Sup *Concept
	// SubRole ⊑ SupRole for AxSubRole; SubRole is the transitive role for
	// AxTransitiveRole.
	SubRole, SupRole *Role
}

// String renders the axiom in DL notation.
func (a Axiom) String() string {
	switch a.Kind {
	case AxSubClassOf:
		return fmt.Sprintf("%s ⊑ %s", a.Sub, a.Sup)
	case AxEquivalent:
		return fmt.Sprintf("%s ≡ %s", a.Sub, a.Sup)
	case AxDisjoint:
		return fmt.Sprintf("Disjoint(%s, %s)", a.Sub, a.Sup)
	case AxSubRole:
		return fmt.Sprintf("%s ⊑ %s", a.SubRole.Name, a.SupRole.Name)
	case AxTransitiveRole:
		return fmt.Sprintf("Trans(%s)", a.SubRole.Name)
	}
	return "<bad axiom>"
}

// TBox is a terminology: a set of axioms over concepts and roles interned
// in a single Factory. Building a TBox is single-goroutine; after Freeze it
// is immutable and safe for concurrent readers.
type TBox struct {
	// Name labels the ontology (file stem or generator profile).
	Name string
	// Factory interns this TBox's concepts and roles.
	Factory *Factory

	axioms  []Axiom
	named   []*Concept // declared/used named concepts, in first-use order
	nameSet map[*Concept]bool
	frozen  bool

	// frozenConcepts/frozenRoles record how many concepts and roles the
	// Factory had interned when Freeze ran. IDs below these bounds form
	// the stable dense identity space that ID-indexed reasoner structures
	// (unfolding tables, label indexes, caches) are sized against; later
	// interning only appends IDs above the bounds.
	frozenConcepts int
	frozenRoles    int
}

// NewTBox returns an empty TBox with a fresh Factory.
func NewTBox(name string) *TBox {
	return &TBox{
		Name:    name,
		Factory: NewFactory(),
		nameSet: make(map[*Concept]bool),
	}
}

func (t *TBox) mustMutable() {
	if t.frozen {
		panic("dl: TBox mutated after Freeze")
	}
}

// Declare registers a named concept so it participates in classification
// even if no axiom mentions it.
func (t *TBox) Declare(name string) *Concept {
	t.mustMutable()
	c := t.Factory.Name(name)
	t.noteNames(c)
	return c
}

// noteNames records every named concept occurring in c.
func (t *TBox) noteNames(c *Concept) {
	if c.Op == OpName && !t.nameSet[c] {
		t.nameSet[c] = true
		t.named = append(t.named, c)
	}
	for _, a := range c.Args {
		t.noteNames(a)
	}
}

// SubClassOf adds the GCI sub ⊑ sup.
func (t *TBox) SubClassOf(sub, sup *Concept) {
	t.mustMutable()
	t.noteNames(sub)
	t.noteNames(sup)
	t.axioms = append(t.axioms, Axiom{Kind: AxSubClassOf, Sub: sub, Sup: sup})
}

// EquivalentClasses adds a ≡ b.
func (t *TBox) EquivalentClasses(a, b *Concept) {
	t.mustMutable()
	t.noteNames(a)
	t.noteNames(b)
	t.axioms = append(t.axioms, Axiom{Kind: AxEquivalent, Sub: a, Sup: b})
}

// DisjointClasses adds pairwise disjointness for all of cs.
func (t *TBox) DisjointClasses(cs ...*Concept) {
	t.mustMutable()
	for i := range cs {
		t.noteNames(cs[i])
		for j := i + 1; j < len(cs); j++ {
			t.axioms = append(t.axioms, Axiom{Kind: AxDisjoint, Sub: cs[i], Sup: cs[j]})
		}
	}
}

// SubObjectPropertyOf adds the role inclusion sub ⊑ sup.
func (t *TBox) SubObjectPropertyOf(sub, sup *Role) {
	t.mustMutable()
	sub.AddSuper(sup)
	t.axioms = append(t.axioms, Axiom{Kind: AxSubRole, SubRole: sub, SupRole: sup})
}

// TransitiveObjectProperty marks r transitive.
func (t *TBox) TransitiveObjectProperty(r *Role) {
	t.mustMutable()
	r.Transitive = true
	t.axioms = append(t.axioms, Axiom{Kind: AxTransitiveRole, SubRole: r})
}

// DeclarationAxiom records an explicit Declaration(Class(c)) axiom. It
// carries no logical content but counts in the ontology's axiom metrics,
// as OWL tooling reports it.
func (t *TBox) DeclarationAxiom(c *Concept) {
	t.mustMutable()
	t.noteNames(c)
	t.axioms = append(t.axioms, Axiom{Kind: AxDeclaration, Sub: c})
}

// AnnotationAxiom records an annotation assertion on c (e.g. an rdfs:label
// in the source file). No logical content; counted in axiom metrics.
func (t *TBox) AnnotationAxiom(c *Concept) {
	t.mustMutable()
	t.noteNames(c)
	t.axioms = append(t.axioms, Axiom{Kind: AxAnnotation, Sub: c})
}

// Freeze finalizes the TBox: role-hierarchy closures are cached (as maps
// and as dense-ID bitsets), the dense concept/role ID bounds are
// snapshotted for ID-indexed reasoner structures, and further mutation
// panics. Freeze is idempotent.
func (t *TBox) Freeze() {
	if t.frozen {
		return
	}
	t.frozen = true
	t.frozenConcepts = t.Factory.NumConcepts()
	t.frozenRoles = t.Factory.NumRoles()
	for _, r := range t.Factory.Roles() {
		r.freeze(t.frozenRoles)
	}
}

// Frozen reports whether Freeze has been called.
func (t *TBox) Frozen() bool { return t.frozen }

// FrozenConcepts returns the number of concepts interned at Freeze time
// (0 before Freeze). Concept IDs in [0, FrozenConcepts) are stable dense
// identities.
func (t *TBox) FrozenConcepts() int { return t.frozenConcepts }

// FrozenRoles is FrozenConcepts for roles.
func (t *TBox) FrozenRoles() int { return t.frozenRoles }

// Axioms returns the axiom list. The caller must not mutate it.
func (t *TBox) Axioms() []Axiom { return t.axioms }

// NamedConcepts returns all named concepts in first-use order (this is the
// paper's N_O, the node set for classification). The caller must not
// mutate the returned slice.
func (t *TBox) NamedConcepts() []*Concept { return t.named }

// NumNamed returns len(NamedConcepts()).
func (t *TBox) NumNamed() int { return len(t.named) }

// ClassAxioms returns the axioms restricted to class axioms (SubClassOf,
// Equivalent, Disjoint) in a fresh slice.
func (t *TBox) ClassAxioms() []Axiom {
	out := make([]Axiom, 0, len(t.axioms))
	for _, a := range t.axioms {
		switch a.Kind {
		case AxSubClassOf, AxEquivalent, AxDisjoint:
			out = append(out, a)
		}
	}
	return out
}

// AsGCIs lowers every class axiom to plain GCIs: C ≡ D becomes C ⊑ D and
// D ⊑ C; Disjoint(C,D) becomes C ⊓ D ⊑ ⊥.
func (t *TBox) AsGCIs() []Axiom {
	f := t.Factory
	out := make([]Axiom, 0, len(t.axioms))
	for _, a := range t.axioms {
		switch a.Kind {
		case AxSubClassOf:
			out = append(out, a)
		case AxEquivalent:
			out = append(out,
				Axiom{Kind: AxSubClassOf, Sub: a.Sub, Sup: a.Sup},
				Axiom{Kind: AxSubClassOf, Sub: a.Sup, Sup: a.Sub})
		case AxDisjoint:
			out = append(out, Axiom{Kind: AxSubClassOf, Sub: f.And(a.Sub, a.Sup), Sup: f.Bottom()})
		}
	}
	return out
}

// TopPseudoName is the reserved named concept used by classifiers that need
// ⊤ to appear as an ordinary taxonomy node.
const TopPseudoName = "owl:Thing"

// SortedNamed returns NamedConcepts sorted by name, for deterministic output.
func (t *TBox) SortedNamed() []*Concept {
	out := make([]*Concept, len(t.named))
	copy(out, t.named)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
