// Package dl implements the description-logic data model underlying the
// classifier: interned concept expressions, roles with hierarchy and
// transitivity, TBox axioms, negation-normal form, ontology metrics and
// expressivity detection (paper Sec. II).
//
// The supported constructors cover ALCHQ with transitive roles — ⊤, ⊥,
// concept names, ¬, ⊓, ⊔, ∃R.C, ∀R.C, ≥nR.C, ≤nR.C — which subsumes the
// EL/ELH+ corpora of Table IV and expresses the qualified cardinality
// restrictions (QCRs) that drive the complexity experiments of Table V.
package dl

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Op identifies the outermost constructor of a Concept.
type Op uint8

// Concept constructors.
const (
	OpTop    Op = iota // ⊤
	OpBottom           // ⊥
	OpName             // named (atomic) concept
	OpNot              // ¬C
	OpAnd              // C ⊓ D ⊓ ...
	OpOr               // C ⊔ D ⊔ ...
	OpSome             // ∃R.C
	OpAll              // ∀R.C
	OpMin              // ≥ n R.C
	OpMax              // ≤ n R.C
)

func (o Op) String() string {
	switch o {
	case OpTop:
		return "Top"
	case OpBottom:
		return "Bottom"
	case OpName:
		return "Name"
	case OpNot:
		return "Not"
	case OpAnd:
		return "And"
	case OpOr:
		return "Or"
	case OpSome:
		return "Some"
	case OpAll:
		return "All"
	case OpMin:
		return "Min"
	case OpMax:
		return "Max"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Concept is an interned concept expression. Concepts are created only
// through a Factory, which guarantees that structurally equal expressions
// are the same pointer; pointer equality is concept equality. A Concept is
// immutable after creation.
type Concept struct {
	// ID is a dense identifier unique within the owning Factory,
	// assigned in creation order.
	ID int32
	// Op is the outermost constructor.
	Op Op
	// Name is the concept name; set only for OpName.
	Name string
	// Role is the quantified role; set for OpSome, OpAll, OpMin, OpMax.
	Role *Role
	// N is the cardinality bound; set for OpMin and OpMax.
	N int
	// Args holds the operands: one concept for OpNot and the filler for
	// the quantifiers, and two or more sorted, deduplicated concepts for
	// OpAnd / OpOr.
	Args []*Concept

	// neg caches the NNF negation. It is set at most once (interning
	// makes the complement unique) and read lock-free on the reasoner
	// hot path, where ¬C lookups happen once per disjunct per rule pass.
	neg atomic.Pointer[Concept]
}

// IsAtomic reports whether c is ⊤, ⊥ or a concept name.
func (c *Concept) IsAtomic() bool {
	return c.Op == OpTop || c.Op == OpBottom || c.Op == OpName
}

// String renders the concept in conventional DL notation.
func (c *Concept) String() string {
	switch c.Op {
	case OpTop:
		return "⊤"
	case OpBottom:
		return "⊥"
	case OpName:
		return c.Name
	case OpNot:
		return "¬" + parens(c.Args[0])
	case OpAnd, OpOr:
		sep := " ⊓ "
		if c.Op == OpOr {
			sep = " ⊔ "
		}
		parts := make([]string, len(c.Args))
		for i, a := range c.Args {
			parts[i] = parens(a)
		}
		return strings.Join(parts, sep)
	case OpSome:
		return "∃" + c.Role.Name + "." + parens(c.Args[0])
	case OpAll:
		return "∀" + c.Role.Name + "." + parens(c.Args[0])
	case OpMin:
		return fmt.Sprintf("≥%d %s.%s", c.N, c.Role.Name, parens(c.Args[0]))
	case OpMax:
		return fmt.Sprintf("≤%d %s.%s", c.N, c.Role.Name, parens(c.Args[0]))
	}
	return fmt.Sprintf("<bad op %d>", c.Op)
}

func parens(c *Concept) string {
	if c.IsAtomic() || c.Op == OpNot {
		return c.String()
	}
	return "(" + c.String() + ")"
}

// Factory interns concepts and roles. All methods are safe for concurrent
// use; structurally equal expressions built concurrently resolve to the
// same pointer.
type Factory struct {
	mu        sync.Mutex
	concepts  map[string]*Concept
	roles     map[string]*Role
	byID      []*Concept
	rolesByID []*Role

	top    *Concept
	bottom *Concept
}

// NewFactory returns an empty factory with ⊤ and ⊥ pre-interned
// (⊤ always has ID 0 and ⊥ ID 1).
func NewFactory() *Factory {
	f := &Factory{
		concepts: make(map[string]*Concept),
		roles:    make(map[string]*Role),
	}
	f.top = f.intern("⊤", &Concept{Op: OpTop})
	f.bottom = f.intern("⊥", &Concept{Op: OpBottom})
	f.top.neg.Store(f.bottom)
	f.bottom.neg.Store(f.top)
	return f
}

// Top returns ⊤.
func (f *Factory) Top() *Concept { return f.top }

// Bottom returns ⊥.
func (f *Factory) Bottom() *Concept { return f.bottom }

// intern stores c under key if absent and returns the canonical pointer.
// Caller must not hold f.mu.
func (f *Factory) intern(key string, c *Concept) *Concept {
	f.mu.Lock()
	defer f.mu.Unlock()
	if got, ok := f.concepts[key]; ok {
		return got
	}
	c.ID = int32(len(f.byID))
	f.concepts[key] = c
	f.byID = append(f.byID, c)
	return c
}

// internBytes is intern for composite keys built as byte slices. On the
// hit path (the overwhelmingly common case once a classification run has
// warmed up) the map lookup uses string(key) without allocating; the key
// is materialized as a string only when a new concept is stored.
func (f *Factory) internBytes(key []byte, c *Concept) *Concept {
	f.mu.Lock()
	defer f.mu.Unlock()
	if got, ok := f.concepts[string(key)]; ok {
		return got
	}
	c.ID = int32(len(f.byID))
	f.concepts[string(key)] = c
	f.byID = append(f.byID, c)
	return c
}

// NumConcepts returns the number of interned concept expressions.
func (f *Factory) NumConcepts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.byID)
}

// ConceptByID returns the concept with the given ID.
func (f *Factory) ConceptByID(id int32) *Concept {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.byID[id]
}

// Name returns the interned named concept for name. Names "owl:Thing" and
// "owl:Nothing" resolve to ⊤ and ⊥.
func (f *Factory) Name(name string) *Concept {
	switch name {
	case "owl:Thing", "http://www.w3.org/2002/07/owl#Thing":
		return f.top
	case "owl:Nothing", "http://www.w3.org/2002/07/owl#Nothing":
		return f.bottom
	}
	return f.intern("N"+name, &Concept{Op: OpName, Name: name})
}

// Not returns the negation-normal-form complement of c. After the first
// call for a given c the answer is served from a lock-free cache — the
// tableau rules ask for complements constantly, so this must not touch
// the factory mutex on the hit path.
func (f *Factory) Not(c *Concept) *Concept {
	if n := c.neg.Load(); n != nil {
		return n
	}
	n := f.buildNot(c)
	if !c.neg.CompareAndSwap(nil, n) {
		return c.neg.Load()
	}
	n.neg.CompareAndSwap(nil, c)
	return n
}

// cachedNeg returns the already-computed complement of c, or nil.
func (f *Factory) cachedNeg(c *Concept) *Concept {
	return c.neg.Load()
}

// buildNot constructs ¬c pushed into NNF.
func (f *Factory) buildNot(c *Concept) *Concept {
	switch c.Op {
	case OpTop:
		return f.bottom
	case OpBottom:
		return f.top
	case OpName:
		return f.intern("!N"+c.Name, &Concept{Op: OpNot, Args: []*Concept{c}})
	case OpNot:
		return c.Args[0]
	case OpAnd:
		args := make([]*Concept, len(c.Args))
		for i, a := range c.Args {
			args[i] = f.Not(a)
		}
		return f.Or(args...)
	case OpOr:
		args := make([]*Concept, len(c.Args))
		for i, a := range c.Args {
			args[i] = f.Not(a)
		}
		return f.And(args...)
	case OpSome:
		return f.All(c.Role, f.Not(c.Args[0]))
	case OpAll:
		return f.Some(c.Role, f.Not(c.Args[0]))
	case OpMin:
		// ¬(≥ n R.C) = ≤ n-1 R.C; ¬(≥ 0 R.C) = ⊥.
		if c.N == 0 {
			return f.bottom
		}
		return f.Max(c.N-1, c.Role, c.Args[0])
	case OpMax:
		// ¬(≤ n R.C) = ≥ n+1 R.C.
		return f.Min(c.N+1, c.Role, c.Args[0])
	}
	panic(fmt.Sprintf("dl: buildNot on bad op %d", c.Op))
}

// And returns the conjunction of args in canonical form: nested
// conjunctions are flattened, duplicates removed, operands sorted by ID,
// ⊤ operands dropped, and the result collapses to ⊥ if any operand is ⊥
// or a complementary pair {A, ¬A} occurs.
func (f *Factory) And(args ...*Concept) *Concept {
	return f.nary(OpAnd, args)
}

// Or returns the disjunction of args with the dual canonicalization of And.
func (f *Factory) Or(args ...*Concept) *Concept {
	return f.nary(OpOr, args)
}

func (f *Factory) nary(op Op, args []*Concept) *Concept {
	neutral, absorbing := f.top, f.bottom
	if op == OpOr {
		neutral, absorbing = f.bottom, f.top
	}
	flat := make([]*Concept, 0, len(args))
	var flatten func(cs []*Concept) bool
	flatten = func(cs []*Concept) bool {
		for _, a := range cs {
			switch {
			case a == absorbing:
				return true
			case a == neutral:
				// drop
			case a.Op == op:
				if flatten(a.Args) {
					return true
				}
			default:
				flat = append(flat, a)
			}
		}
		return false
	}
	if flatten(args) {
		return absorbing
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].ID < flat[j].ID })
	// Dedupe (adjacent after sorting) and detect complementary pairs.
	uniq := flat[:0]
	for i, a := range flat {
		if i > 0 && a == flat[i-1] {
			continue
		}
		uniq = append(uniq, a)
	}
	for _, a := range uniq {
		n := f.cachedNeg(a)
		if n == nil {
			continue
		}
		// uniq is sorted by ID: binary search for the complement.
		lo, hi := 0, len(uniq)
		for lo < hi {
			mid := (lo + hi) / 2
			if uniq[mid].ID < n.ID {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(uniq) && uniq[lo] == n {
			return absorbing
		}
	}
	switch len(uniq) {
	case 0:
		return neutral
	case 1:
		return uniq[0]
	}
	var keyBuf [66]byte // enough for 13 operands in place; longer keys spill
	key := keyBuf[:0]
	if op == OpAnd {
		key = append(key, '&')
	} else {
		key = append(key, '|')
	}
	for _, a := range uniq {
		key = appendID(key, a.ID)
	}
	own := make([]*Concept, len(uniq))
	copy(own, uniq)
	return f.internBytes(key, &Concept{Op: op, Args: own})
}

// Some returns ∃R.C. ∃R.⊥ collapses to ⊥.
func (f *Factory) Some(r *Role, c *Concept) *Concept {
	if c == f.bottom {
		return f.bottom
	}
	return f.quant('E', OpSome, r, 0, c)
}

// All returns ∀R.C. ∀R.⊤ collapses to ⊤.
func (f *Factory) All(r *Role, c *Concept) *Concept {
	if c == f.top {
		return f.top
	}
	return f.quant('A', OpAll, r, 0, c)
}

// Min returns ≥ n R.C. ≥0 collapses to ⊤, ≥1 to ∃R.C, and ≥n R.⊥ to ⊥.
func (f *Factory) Min(n int, r *Role, c *Concept) *Concept {
	if n < 0 {
		panic(fmt.Sprintf("dl: Min with negative cardinality %d", n))
	}
	if n == 0 {
		return f.top
	}
	if c == f.bottom {
		return f.bottom
	}
	if n == 1 {
		return f.Some(r, c)
	}
	return f.quant('m', OpMin, r, n, c)
}

// Max returns ≤ n R.C. ≤n R.⊥ collapses to ⊤ and ≤0 R.C canonicalizes to
// the equivalent ∀R.¬C so that double negation is structurally stable.
func (f *Factory) Max(n int, r *Role, c *Concept) *Concept {
	if n < 0 {
		panic(fmt.Sprintf("dl: Max with negative cardinality %d", n))
	}
	if c == f.bottom {
		return f.top
	}
	if n == 0 {
		return f.All(r, f.Not(c))
	}
	return f.quant('M', OpMax, r, n, c)
}

func (f *Factory) quant(tag byte, op Op, r *Role, n int, c *Concept) *Concept {
	var keyBuf [16]byte
	key := keyBuf[:0]
	key = append(key, tag)
	key = appendID(key, r.ID)
	key = appendID(key, int32(n))
	key = appendID(key, c.ID)
	return f.internBytes(key, &Concept{Op: op, Role: r, N: n, Args: []*Concept{c}})
}

func appendID(b []byte, id int32) []byte {
	return append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24), ',')
}
