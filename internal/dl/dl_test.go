package dl

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestFactoryInterning(t *testing.T) {
	f := NewFactory()
	a1, a2 := f.Name("A"), f.Name("A")
	if a1 != a2 {
		t.Fatal("Name not interned")
	}
	b := f.Name("B")
	if a1 == b {
		t.Fatal("distinct names share pointer")
	}
	r := f.Role("r")
	if f.Role("r") != r {
		t.Fatal("Role not interned")
	}
	if f.Some(r, a1) != f.Some(r, a1) {
		t.Fatal("Some not interned")
	}
	if f.And(a1, b) != f.And(b, a1) {
		t.Fatal("And not order-canonical")
	}
	if f.Or(a1, b) != f.Or(b, a1, a1) {
		t.Fatal("Or not dedup-canonical")
	}
}

func TestOWLThingNothingAliases(t *testing.T) {
	f := NewFactory()
	if f.Name("owl:Thing") != f.Top() {
		t.Error("owl:Thing != Top")
	}
	if f.Name("owl:Nothing") != f.Bottom() {
		t.Error("owl:Nothing != Bottom")
	}
}

func TestAndOrSimplification(t *testing.T) {
	f := NewFactory()
	a, b := f.Name("A"), f.Name("B")
	if f.And(a, f.Top()) != a {
		t.Error("A ⊓ ⊤ ≠ A")
	}
	if f.And(a, f.Bottom()) != f.Bottom() {
		t.Error("A ⊓ ⊥ ≠ ⊥")
	}
	if f.Or(a, f.Top()) != f.Top() {
		t.Error("A ⊔ ⊤ ≠ ⊤")
	}
	if f.Or(a, f.Bottom()) != a {
		t.Error("A ⊔ ⊥ ≠ A")
	}
	if f.And(a) != a {
		t.Error("unary And not collapsed")
	}
	if f.And() != f.Top() {
		t.Error("empty And ≠ ⊤")
	}
	if f.Or() != f.Bottom() {
		t.Error("empty Or ≠ ⊥")
	}
	// Nested flattening.
	abc := f.And(a, f.And(b, f.Name("C")))
	if len(abc.Args) != 3 {
		t.Errorf("nested And not flattened: %v", abc)
	}
	// Complementary pair (requires the negation to exist).
	na := f.Not(a)
	if f.And(a, na) != f.Bottom() {
		t.Error("A ⊓ ¬A ≠ ⊥")
	}
	if f.Or(a, na) != f.Top() {
		t.Error("A ⊔ ¬A ≠ ⊤")
	}
}

func TestNotNNF(t *testing.T) {
	f := NewFactory()
	a, b := f.Name("A"), f.Name("B")
	r := f.Role("r")
	cases := []struct {
		in   *Concept
		want *Concept
	}{
		{f.Top(), f.Bottom()},
		{f.Bottom(), f.Top()},
		{f.And(a, b), f.Or(f.Not(a), f.Not(b))},
		{f.Or(a, b), f.And(f.Not(a), f.Not(b))},
		{f.Some(r, a), f.All(r, f.Not(a))},
		{f.All(r, a), f.Some(r, f.Not(a))},
		{f.Min(3, r, a), f.Max(2, r, a)},
		{f.Max(2, r, a), f.Min(3, r, a)},
	}
	for _, c := range cases {
		if got := f.Not(c.in); got != c.want {
			t.Errorf("Not(%v) = %v, want %v", c.in, got, c.want)
		}
		if f.Not(f.Not(c.in)) != c.in {
			t.Errorf("double negation of %v not identity", c.in)
		}
	}
}

func TestQuantifierSimplification(t *testing.T) {
	f := NewFactory()
	a := f.Name("A")
	r := f.Role("r")
	if f.Some(r, f.Bottom()) != f.Bottom() {
		t.Error("∃r.⊥ ≠ ⊥")
	}
	if f.All(r, f.Top()) != f.Top() {
		t.Error("∀r.⊤ ≠ ⊤")
	}
	if f.Min(0, r, a) != f.Top() {
		t.Error("≥0 ≠ ⊤")
	}
	if f.Min(1, r, a) != f.Some(r, a) {
		t.Error("≥1 r.A ≠ ∃r.A")
	}
	if f.Min(2, r, f.Bottom()) != f.Bottom() {
		t.Error("≥2 r.⊥ ≠ ⊥")
	}
	if f.Max(0, r, f.Bottom()) != f.Top() {
		t.Error("≤0 r.⊥ ≠ ⊤")
	}
}

func TestConceptString(t *testing.T) {
	f := NewFactory()
	a, b := f.Name("A"), f.Name("B")
	r := f.Role("r")
	c := f.And(a, f.Some(r, f.Or(b, f.Not(a))))
	got := c.String()
	if got != "A ⊓ (∃r.(¬A ⊔ B))" && got != "A ⊓ (∃r.(B ⊔ ¬A))" {
		t.Errorf("String = %q", got)
	}
	if s := f.Max(2, r, b).String(); s != "≤2 r.B" {
		t.Errorf("Max String = %q", s)
	}
}

func TestRoleHierarchy(t *testing.T) {
	f := NewFactory()
	r, s, u := f.Role("r"), f.Role("s"), f.Role("u")
	r.AddSuper(s)
	s.AddSuper(u)
	if !r.IsSubRoleOf(r) {
		t.Error("r not reflexive sub-role of itself")
	}
	if !r.IsSubRoleOf(u) {
		t.Error("r ⊑* u not detected")
	}
	if u.IsSubRoleOf(r) {
		t.Error("u ⊑* r wrongly detected")
	}
	anc := r.Ancestors()
	if len(anc) != 3 {
		t.Errorf("Ancestors(r) = %d roles, want 3", len(anc))
	}
	// Cycles must not loop forever.
	u.AddSuper(r)
	if !u.IsSubRoleOf(s) {
		t.Error("cycle closure broken")
	}
}

func TestTBoxBuildAndFreeze(t *testing.T) {
	tb := NewTBox("test")
	f := tb.Factory
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	tb.SubClassOf(a, b)
	tb.EquivalentClasses(b, c)
	tb.DisjointClasses(a, c)
	r, s := f.Role("r"), f.Role("s")
	tb.SubObjectPropertyOf(r, s)
	tb.TransitiveObjectProperty(s)
	if tb.NumNamed() != 3 {
		t.Fatalf("NumNamed = %d, want 3", tb.NumNamed())
	}
	if got := len(tb.Axioms()); got != 5 {
		t.Fatalf("axioms = %d, want 5", got)
	}
	gcis := tb.AsGCIs()
	// 1 SubClassOf + 2 from Equivalent + 1 from Disjoint = 4.
	if len(gcis) != 4 {
		t.Fatalf("AsGCIs = %d, want 4", len(gcis))
	}
	for _, g := range gcis {
		if g.Kind != AxSubClassOf {
			t.Fatalf("AsGCIs produced %v", g.Kind)
		}
	}
	tb.Freeze()
	tb.Freeze() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("mutation after Freeze did not panic")
		}
	}()
	tb.SubClassOf(a, c)
}

func TestNamedConceptsFromSubexpressions(t *testing.T) {
	tb := NewTBox("test")
	f := tb.Factory
	r := f.Role("r")
	tb.SubClassOf(f.Name("A"), f.Some(r, f.And(f.Name("B"), f.Name("C"))))
	if tb.NumNamed() != 3 {
		t.Fatalf("NumNamed = %d, want 3 (nested names must be collected)", tb.NumNamed())
	}
}

func TestMetricsAndExpressivity(t *testing.T) {
	// EL ontology: only ⊓ and ∃.
	tb := NewTBox("el")
	f := tb.Factory
	a, b := tb.Declare("A"), tb.Declare("B")
	r := f.Role("r")
	tb.SubClassOf(a, f.Some(r, b))
	tb.SubClassOf(f.And(a, b), b)
	m := ComputeMetrics(tb)
	if m.Expressivity != "EL" {
		t.Errorf("expressivity = %s, want EL", m.Expressivity)
	}
	if m.Somes != 1 || m.SubClassOf != 2 {
		t.Errorf("metrics = %+v", m)
	}

	// ELH+: role hierarchy + transitivity.
	tb2 := NewTBox("elh+")
	f2 := tb2.Factory
	r2, s2 := f2.Role("r"), f2.Role("s")
	tb2.SubClassOf(tb2.Declare("A"), f2.Some(r2, tb2.Declare("B")))
	tb2.SubObjectPropertyOf(r2, s2)
	tb2.TransitiveObjectProperty(s2)
	if m := ComputeMetrics(tb2); m.Expressivity != "ELH+" {
		t.Errorf("expressivity = %s, want ELH+", m.Expressivity)
	}

	// SHQ: transitive + hierarchy + QCR.
	tb3 := NewTBox("shq")
	f3 := tb3.Factory
	r3, s3 := f3.Role("r"), f3.Role("s")
	a3, b3 := tb3.Declare("A"), tb3.Declare("B")
	tb3.SubClassOf(a3, f3.Min(2, r3, b3))
	tb3.SubClassOf(a3, f3.All(s3, b3))
	tb3.SubObjectPropertyOf(r3, s3)
	tb3.TransitiveObjectProperty(s3)
	m3 := ComputeMetrics(tb3)
	if m3.Expressivity != "SHQ" {
		t.Errorf("expressivity = %s, want SHQ", m3.Expressivity)
	}
	if m3.QCRs != 1 || m3.Alls != 1 {
		t.Errorf("metrics = %+v", m3)
	}

	// ALC: negation, no transitivity.
	tb4 := NewTBox("alc")
	f4 := tb4.Factory
	a4 := tb4.Declare("A")
	tb4.SubClassOf(a4, f4.Not(tb4.Declare("B")))
	if m := ComputeMetrics(tb4); m.Expressivity != "ALC" {
		t.Errorf("expressivity = %s, want ALC", m.Expressivity)
	}
	// ALCN: unqualified cardinality.
	tb5 := NewTBox("alcn")
	f5 := tb5.Factory
	tb5.SubClassOf(tb5.Declare("A"), f5.Or(f5.Max(3, f5.Role("r"), f5.Top()), tb5.Declare("B")))
	if m := ComputeMetrics(tb5); m.Expressivity != "ALCN" {
		t.Errorf("expressivity = %s, want ALCN", m.Expressivity)
	}
}

// TestConcurrentInterning checks that concurrent factory use yields a
// single canonical pointer per expression.
func TestConcurrentInterning(t *testing.T) {
	f := NewFactory()
	const workers = 8
	results := make([][]*Concept, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := f.Role("r")
			for i := 0; i < 200; i++ {
				a := f.Name("A")
				b := f.Name("B")
				results[w] = append(results[w], f.And(a, f.Some(r, b)), f.Not(f.Or(a, b)))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[w] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d produced non-canonical pointer at %d", w, i)
			}
		}
	}
}

// randomConcept builds a random concept over a small vocabulary.
func randomConcept(f *Factory, rng *rand.Rand, depth int) *Concept {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return f.Top()
		case 1:
			return f.Bottom()
		default:
			return f.Name(string(rune('A' + rng.Intn(4))))
		}
	}
	r := f.Role(string(rune('r' + rng.Intn(2))))
	switch rng.Intn(7) {
	case 0:
		return f.Not(randomConcept(f, rng, depth-1))
	case 1:
		return f.And(randomConcept(f, rng, depth-1), randomConcept(f, rng, depth-1))
	case 2:
		return f.Or(randomConcept(f, rng, depth-1), randomConcept(f, rng, depth-1))
	case 3:
		return f.Some(r, randomConcept(f, rng, depth-1))
	case 4:
		return f.All(r, randomConcept(f, rng, depth-1))
	case 5:
		return f.Min(1+rng.Intn(3), r, randomConcept(f, rng, depth-1))
	default:
		return f.Max(rng.Intn(3), r, randomConcept(f, rng, depth-1))
	}
}

// TestQuickDoubleNegation property-checks ¬¬C = C on random concepts.
func TestQuickDoubleNegation(t *testing.T) {
	f := NewFactory()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomConcept(f, rng, 4)
		return f.Not(f.Not(c)) == c
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNNFNoInnerNegation checks negations only ever wrap names.
func TestQuickNNFNoInnerNegation(t *testing.T) {
	f := NewFactory()
	var wellFormed func(c *Concept) bool
	wellFormed = func(c *Concept) bool {
		if c.Op == OpNot && c.Args[0].Op != OpName {
			return false
		}
		for _, a := range c.Args {
			if !wellFormed(a) {
				return false
			}
		}
		return true
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomConcept(f, rng, 4)
		return wellFormed(c) && wellFormed(f.Not(c))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeMorgan checks ¬(C ⊓ D) = ¬C ⊔ ¬D structurally via interning.
func TestQuickDeMorgan(t *testing.T) {
	f := NewFactory()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomConcept(f, rng, 3)
		d := randomConcept(f, rng, 3)
		return f.Not(f.And(c, d)) == f.Or(f.Not(c), f.Not(d)) &&
			f.Not(f.Or(c, d)) == f.And(f.Not(c), f.Not(d))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
