package dl

import "parowl/internal/bitset"

// Role is an interned object property (paper: role, R ∈ N_R). Roles carry
// the role-hierarchy and transitivity information contributed by
// SubObjectPropertyOf and TransitiveObjectProperty axioms; the tableau's
// ∀⁺-rule and the EL reasoner's chain rules read it from here.
//
// A Role's hierarchy fields are mutated only while the owning TBox is being
// built (single-goroutine); after Freeze the structure is read-only and
// safe to share across reasoner workers.
type Role struct {
	// ID is dense and unique within the owning Factory.
	ID int32
	// Name is the role name.
	Name string
	// Transitive records a TransitiveObjectProperty axiom on this role.
	Transitive bool

	supers    []*Role        // direct super-roles (from SubObjectPropertyOf)
	ancestors map[*Role]bool // reflexive-transitive closure, built by Freeze

	// ancBits is the same closure as a bitset over dense role IDs, built
	// by Freeze. IsSubRoleOf is the innermost test of the tableau's
	// ∀/∀⁺/≤ rules; a word-indexed bit probe beats a map lookup there.
	ancBits *bitset.Set
}

// Role returns the interned role with the given name, creating it if
// necessary.
func (f *Factory) Role(name string) *Role {
	f.mu.Lock()
	defer f.mu.Unlock()
	if r, ok := f.roles[name]; ok {
		return r
	}
	r := &Role{ID: int32(len(f.rolesByID)), Name: name}
	f.roles[name] = r
	f.rolesByID = append(f.rolesByID, r)
	return r
}

// NumRoles returns the number of interned roles.
func (f *Factory) NumRoles() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.rolesByID)
}

// RoleByID returns the role with the given ID.
func (f *Factory) RoleByID(id int32) *Role {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rolesByID[id]
}

// Roles returns all interned roles in ID order.
func (f *Factory) Roles() []*Role {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Role, len(f.rolesByID))
	copy(out, f.rolesByID)
	return out
}

// AddSuper records the role inclusion r ⊑ s. It must be called only during
// TBox construction, before Freeze.
func (r *Role) AddSuper(s *Role) {
	for _, have := range r.supers {
		if have == s {
			return
		}
	}
	r.supers = append(r.supers, s)
	r.ancestors = nil
	r.ancBits = nil
}

// Supers returns the direct super-roles of r.
func (r *Role) Supers() []*Role { return r.supers }

// IsSubRoleOf reports whether r ⊑* s in the reflexive-transitive closure of
// the role hierarchy. Before Freeze it computes the closure on the fly;
// after Freeze it is a map lookup.
func (r *Role) IsSubRoleOf(s *Role) bool {
	if r == s {
		return true
	}
	if r.ancBits != nil {
		// Roles interned after Freeze are outside the closure: they can
		// have gained no super-role axioms, so the answer is false.
		return int(s.ID) < r.ancBits.Len() && r.ancBits.Test(int(s.ID))
	}
	if r.ancestors != nil {
		return r.ancestors[s]
	}
	return r.reaches(s, map[*Role]bool{})
}

func (r *Role) reaches(s *Role, seen map[*Role]bool) bool {
	if r == s {
		return true
	}
	if seen[r] {
		return false
	}
	seen[r] = true
	for _, sup := range r.supers {
		if sup.reaches(s, seen) {
			return true
		}
	}
	return false
}

// Ancestors returns the reflexive-transitive closure of r's super-roles.
// The result must not be mutated.
func (r *Role) Ancestors() map[*Role]bool {
	if r.ancestors != nil {
		return r.ancestors
	}
	anc := map[*Role]bool{r: true}
	var walk func(x *Role)
	walk = func(x *Role) {
		for _, sup := range x.supers {
			if !anc[sup] {
				anc[sup] = true
				walk(sup)
			}
		}
	}
	walk(r)
	return anc
}

// freeze caches the ancestor closure so concurrent readers never compute
// it: once as a map (the Ancestors API) and once as a bitset over the
// dense role IDs known at freeze time (the IsSubRoleOf hot path).
func (r *Role) freeze(numRoles int) {
	r.ancestors = r.Ancestors()
	r.ancBits = bitset.New(numRoles)
	for anc := range r.ancestors {
		if int(anc.ID) < numRoles {
			r.ancBits.Set(int(anc.ID))
		}
	}
}
