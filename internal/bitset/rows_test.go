package bitset

import (
	"math/rand"
	"sync"
	"testing"
)

func TestAlignCols(t *testing.T) {
	cases := map[int]int{0: 0, 1: 64, 63: 64, 64: 64, 65: 128, 1000: 1024}
	for n, want := range cases {
		if got := AlignCols(n); got != want {
			t.Errorf("AlignCols(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRowOpsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(10)
		cols := AlignCols(1 + rng.Intn(200))
		m := NewMatrix(rows, cols)
		ref := make([]map[int]bool, rows)
		for r := range ref {
			ref[r] = map[int]bool{}
		}
		for i := 0; i < rows*8; i++ {
			r, c := rng.Intn(rows), rng.Intn(cols)
			m.Set(r, c)
			ref[r][c] = true
		}
		// A few row ORs, mirrored on the reference.
		for i := 0; i < 5; i++ {
			dst, src := rng.Intn(rows), rng.Intn(rows)
			m.OrRow(dst, src)
			for c := range ref[src] {
				ref[dst][c] = true
			}
		}
		for r := 0; r < rows; r++ {
			if got, want := m.RowCount(r), len(ref[r]); got != want {
				t.Fatalf("trial %d: RowCount(%d) = %d, want %d", trial, r, got, want)
			}
			snap := m.RowSnapshot(r)
			if snap.Len() != cols {
				t.Fatalf("RowSnapshot len %d, want %d", snap.Len(), cols)
			}
			seen := map[int]bool{}
			m.RowForEach(r, func(c int) bool {
				seen[c] = true
				if !snap.Test(c) {
					t.Fatalf("RowForEach yielded %d but snapshot misses it", c)
				}
				return true
			})
			for c := range ref[r] {
				if !seen[c] {
					t.Fatalf("trial %d: row %d missing col %d", trial, r, c)
				}
			}
			if len(seen) != len(ref[r]) {
				t.Fatalf("trial %d: row %d has %d cols, want %d", trial, r, len(seen), len(ref[r]))
			}
			// Intersections against a random probe set.
			probe := New(cols)
			wantCount := 0
			for i := 0; i < 20; i++ {
				c := rng.Intn(cols)
				if !probe.Test(c) {
					probe.Set(c)
					if ref[r][c] {
						wantCount++
					}
				}
			}
			if got := m.RowIntersectCount(r, probe); got != wantCount {
				t.Fatalf("RowIntersectCount = %d, want %d", got, wantCount)
			}
			if got := m.RowIntersectsSet(r, probe); got != (wantCount > 0) {
				t.Fatalf("RowIntersectsSet = %v, want %v", got, wantCount > 0)
			}
		}
	}
}

func TestRowForEachEarlyStop(t *testing.T) {
	m := NewMatrix(1, 128)
	for _, c := range []int{3, 70, 100} {
		m.Set(0, c)
	}
	var got []int
	m.RowForEach(0, func(c int) bool {
		got = append(got, c)
		return len(got) < 2
	})
	if len(got) != 2 || got[0] != 3 || got[1] != 70 {
		t.Fatalf("early stop yielded %v", got)
	}
}

func TestRowOpsRequireAlignment(t *testing.T) {
	m := NewMatrix(2, 10) // 10 cols: rows are not word-aligned
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for row op on unaligned matrix")
		}
	}()
	m.OrRow(0, 1)
}

// TestOrRowConcurrent exercises concurrent OR-ing into the same
// destination row under -race: the closure build ORs parent rows from
// several goroutines.
func TestOrRowConcurrent(t *testing.T) {
	const rows, cols = 17, 256
	m := NewMatrix(rows, cols)
	for r := 1; r < rows; r++ {
		m.Set(r, (r*37)%cols)
	}
	var wg sync.WaitGroup
	for r := 1; r < rows; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			m.OrRow(0, r)
		}(r)
	}
	wg.Wait()
	if got := m.RowCount(0); got != rows-1 {
		t.Fatalf("row 0 has %d bits, want %d", got, rows-1)
	}
	for r := 1; r < rows; r++ {
		if !m.Test(0, (r*37)%cols) {
			t.Fatalf("bit from row %d missing", r)
		}
	}
}
