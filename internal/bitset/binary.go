package bitset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Binary serialization for Set, Atomic and Matrix, used by the
// classifier's checkpoint snapshots. The encoding is stable across
// versions and platforms:
//
//	uint32 LE  n        bit capacity
//	uint64 LE  words    wordsFor(n) words, lowest bits first
//	uint32 LE  crc      CRC-32 (IEEE) of the n and word bytes above
//
// Every frame carries its own checksum so a truncated or bit-flipped
// snapshot is rejected instead of silently decoding into a wrong set.
// Decoding additionally rejects frames whose tail word carries bits
// beyond the declared capacity, which would break Count/IsEmpty
// invariants.

// ErrCorrupt reports binary data that failed structural validation or
// its checksum. All decode errors wrap it.
var ErrCorrupt = errors.New("bitset: corrupt binary data")

// binarySize returns the encoded frame size for an n-bit set.
func binarySize(n int) int { return 4 + wordsFor(n)*8 + 4 }

// appendFrame appends the standard frame for n bits whose i-th word is
// word(i).
func appendFrame(b []byte, n int, word func(i int) uint64) []byte {
	start := len(b)
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	for i, w := 0, wordsFor(n); i < w; i++ {
		b = binary.LittleEndian.AppendUint64(b, word(i))
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
}

// readFrame validates the frame at the head of data and returns the bit
// capacity, the decoded words, and the bytes following the frame.
func readFrame(data []byte) (n int, words []uint64, rest []byte, err error) {
	if len(data) < 4 {
		return 0, nil, nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	n = int(binary.LittleEndian.Uint32(data))
	total := binarySize(n)
	if len(data) < total {
		return 0, nil, nil, fmt.Errorf("%w: truncated frame (have %d bytes, need %d)", ErrCorrupt, len(data), total)
	}
	want := binary.LittleEndian.Uint32(data[total-4:])
	if got := crc32.ChecksumIEEE(data[:total-4]); got != want {
		return 0, nil, nil, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	words = make([]uint64, wordsFor(n))
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[4+i*8:])
	}
	if rem := n % wordBits; rem != 0 && len(words) > 0 {
		if words[len(words)-1]&^((1<<uint(rem))-1) != 0 {
			return 0, nil, nil, fmt.Errorf("%w: bits set beyond capacity %d", ErrCorrupt, n)
		}
	}
	return n, words, data[total:], nil
}

// AppendBinary appends s's binary encoding to b and returns the extended
// slice.
func (s *Set) AppendBinary(b []byte) []byte {
	return appendFrame(b, s.n, func(i int) uint64 { return s.words[i] })
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Set) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(make([]byte, 0, binarySize(s.n))), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The data must
// contain exactly one encoded set.
func (s *Set) UnmarshalBinary(data []byte) error {
	dec, rest, err := ReadSet(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	*s = *dec
	return nil
}

// ReadSet decodes one Set from the head of data and returns it together
// with the remaining bytes, for streaming several frames from one buffer.
func ReadSet(data []byte) (*Set, []byte, error) {
	n, words, rest, err := readFrame(data)
	if err != nil {
		return nil, nil, err
	}
	return &Set{n: n, words: words}, rest, nil
}

// AppendBinary appends a word-by-word snapshot of a's contents to b. Like
// Snapshot, concurrent writers may be observed at different instants per
// word; serialize quiescent sets for exact captures.
func (a *Atomic) AppendBinary(b []byte) []byte {
	return appendFrame(b, a.n, func(i int) uint64 { return a.words[i].Load() })
}

// MarshalBinary implements encoding.BinaryMarshaler on a snapshot of a.
func (a *Atomic) MarshalBinary() ([]byte, error) {
	return a.AppendBinary(make([]byte, 0, binarySize(a.n))), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The data must
// contain exactly one encoded set.
func (a *Atomic) UnmarshalBinary(data []byte) error {
	dec, rest, err := ReadAtomic(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	*a = *dec
	return nil
}

// ReadAtomic decodes one Atomic from the head of data and returns it with
// the remaining bytes.
func ReadAtomic(data []byte) (*Atomic, []byte, error) {
	n, words, rest, err := readFrame(data)
	if err != nil {
		return nil, nil, err
	}
	a := NewAtomic(n)
	for i, w := range words {
		a.words[i].Store(w)
	}
	return a, rest, nil
}

// AppendBinary appends the matrix encoding to b: a dimension header
// (uint32 rows, uint32 cols, uint32 CRC-32 of both) followed by the
// backing Atomic's frame.
func (m *Matrix) AppendBinary(b []byte) []byte {
	start := len(b)
	b = binary.LittleEndian.AppendUint32(b, uint32(m.rows))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.cols))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
	return m.bits.AppendBinary(b)
}

// ReadMatrix decodes one Matrix from the head of data and returns it with
// the remaining bytes.
func ReadMatrix(data []byte) (*Matrix, []byte, error) {
	if len(data) < 12 {
		return nil, nil, fmt.Errorf("%w: truncated matrix header (%d bytes)", ErrCorrupt, len(data))
	}
	rows := int(binary.LittleEndian.Uint32(data))
	cols := int(binary.LittleEndian.Uint32(data[4:]))
	want := binary.LittleEndian.Uint32(data[8:])
	if got := crc32.ChecksumIEEE(data[:8]); got != want {
		return nil, nil, fmt.Errorf("%w: matrix header checksum mismatch", ErrCorrupt)
	}
	bits, rest, err := ReadAtomic(data[12:])
	if err != nil {
		return nil, nil, err
	}
	if rows*cols != bits.Len() {
		return nil, nil, fmt.Errorf("%w: matrix dims %dx%d do not match %d bits", ErrCorrupt, rows, cols, bits.Len())
	}
	return &Matrix{rows: rows, cols: cols, bits: bits}, rest, nil
}
