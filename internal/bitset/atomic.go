package bitset

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Atomic is a fixed-capacity bit set whose per-bit operations are atomic
// and safe for concurrent use without locks. Bulk operations (Count,
// IsEmpty, Snapshot, ForEach) read a word-by-word snapshot: they are safe
// to call concurrently but observe each word at a possibly different
// instant, which is exactly the semantics the classifier needs for its
// progress checks (the set only shrinks monotonically during a phase).
type Atomic struct {
	n     int
	words []atomic.Uint64
}

// NewAtomic returns an Atomic set able to hold bits 0..n-1, all clear.
func NewAtomic(n int) *Atomic {
	return &Atomic{n: n, words: make([]atomic.Uint64, wordsFor(n))}
}

// Len returns the capacity in bits.
func (a *Atomic) Len() int { return a.n }

func (a *Atomic) check(i int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, a.n))
	}
}

// Set sets bit i and reports whether it was previously clear (i.e. whether
// this call changed the set).
func (a *Atomic) Set(i int) bool {
	a.check(i)
	mask := uint64(1) << (uint(i) % wordBits)
	old := a.words[i/wordBits].Or(mask)
	return old&mask == 0
}

// Clear clears bit i and reports whether it was previously set.
func (a *Atomic) Clear(i int) bool {
	a.check(i)
	mask := uint64(1) << (uint(i) % wordBits)
	old := a.words[i/wordBits].And(^mask)
	return old&mask != 0
}

// Test reports whether bit i is set.
func (a *Atomic) Test(i int) bool {
	a.check(i)
	return a.words[i/wordBits].Load()&(1<<(uint(i)%wordBits)) != 0
}

// TestAndSet atomically sets bit i and reports whether it was already set.
// This implements the paper's tested() check-then-claim in one step so two
// workers can never both claim the same untested pair.
func (a *Atomic) TestAndSet(i int) bool {
	return !a.Set(i)
}

// FillAll sets every bit in [0, Len).
func (a *Atomic) FillAll() {
	full := ^uint64(0)
	for w := range a.words {
		a.words[w].Store(full)
	}
	if rem := a.n % wordBits; rem != 0 && len(a.words) > 0 {
		a.words[len(a.words)-1].Store((1 << uint(rem)) - 1)
	}
}

// ClearAll clears every bit.
func (a *Atomic) ClearAll() {
	for w := range a.words {
		a.words[w].Store(0)
	}
}

// Count returns the number of set bits in a word-by-word snapshot.
func (a *Atomic) Count() int {
	c := 0
	for w := range a.words {
		c += bits.OnesCount64(a.words[w].Load())
	}
	return c
}

// IsEmpty reports whether a word-by-word snapshot has no set bits.
func (a *Atomic) IsEmpty() bool {
	for w := range a.words {
		if a.words[w].Load() != 0 {
			return false
		}
	}
	return true
}

// Snapshot copies the current contents into a plain Set.
func (a *Atomic) Snapshot() *Set {
	s := New(a.n)
	for w := range a.words {
		s.words[w] = a.words[w].Load()
	}
	return s
}

// ForEach calls fn for every bit set in a word-by-word snapshot, in
// ascending order. If fn returns false, iteration stops early.
func (a *Atomic) ForEach(fn func(i int) bool) {
	for wi := range a.words {
		w := a.words[wi].Load()
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns the indices of all set bits in a snapshot.
func (a *Atomic) Members() []int {
	out := make([]int, 0, 8)
	a.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Matrix is an n×m atomic bit matrix. It backs the classifier's tested()
// predicate over ordered concept pairs.
type Matrix struct {
	rows, cols int
	bits       *Atomic
}

// NewMatrix returns an all-clear rows×cols atomic bit matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bitset: negative matrix dims %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, bits: NewAtomic(rows * cols)}
}

func (m *Matrix) idx(r, c int) int {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("bitset: matrix index (%d,%d) out of range %dx%d", r, c, m.rows, m.cols))
	}
	return r*m.cols + c
}

// Test reports whether bit (r,c) is set.
func (m *Matrix) Test(r, c int) bool { return m.bits.Test(m.idx(r, c)) }

// Set sets bit (r,c) and reports whether this call changed it.
func (m *Matrix) Set(r, c int) bool { return m.bits.Set(m.idx(r, c)) }

// TestAndSet atomically sets (r,c) and reports whether it was already set.
func (m *Matrix) TestAndSet(r, c int) bool { return m.bits.TestAndSet(m.idx(r, c)) }

// Count returns the number of set bits in a snapshot.
func (m *Matrix) Count() int { return m.bits.Count() }
