// Package bitset provides fixed-size bit sets in two flavours: a plain
// single-goroutine Set and a lock-free Atomic set whose individual bit
// operations are safe for concurrent use.
//
// The Atomic variant backs the shared P (possible subsumees), K (known
// subsumees) and tested structures of the parallel classifier, where the
// paper requires "atomic global data structures" so that worker threads can
// update shared state without races (Quan & Haarslev, ICPP 2017, Sec. IV).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// wordsFor returns the number of 64-bit words needed for n bits.
func wordsFor(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative size %d", n))
	}
	return (n + wordBits - 1) / wordBits
}

// Set is a fixed-capacity bit set. It is not safe for concurrent use; use
// Atomic for shared state.
type Set struct {
	n     int
	words []uint64
}

// New returns a Set able to hold bits 0..n-1, all initially clear.
func New(n int) *Set {
	return &Set{n: n, words: make([]uint64, wordsFor(n))}
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether no bit is set.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// FillAll sets every bit in [0, Len).
func (s *Set) FillAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trimTail()
}

// ClearAll clears every bit.
func (s *Set) ClearAll() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// trimTail zeroes the bits beyond n in the last word so Count stays exact.
func (s *Set) trimTail() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Union sets s to s ∪ o. Both sets must have the same capacity.
func (s *Set) Union(o *Set) {
	s.sameLen(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Intersect sets s to s ∩ o. Both sets must have the same capacity.
func (s *Set) Intersect(o *Set) {
	s.sameLen(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// Subtract sets s to s \ o. Both sets must have the same capacity.
func (s *Set) Subtract(o *Set) {
	s.sameLen(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// ContainsAll reports whether o ⊆ s.
func (s *Set) ContainsAll(o *Set) bool {
	s.sameLen(o)
	for i, w := range o.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o hold exactly the same bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range o.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

func (s *Set) sameLen(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: size mismatch %d vs %d", s.n, o.n))
	}
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false, iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns the indices of all set bits in ascending order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the set as {i, j, ...} for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
