package bitset

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetBasic(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if !s.IsEmpty() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if s.Count() != 7 {
		t.Fatalf("Count = %d, want 7", s.Count())
	}
	s.Clear(64)
	if s.Test(64) {
		t.Error("bit 64 still set after Clear")
	}
	if s.Count() != 6 {
		t.Fatalf("Count = %d, want 6", s.Count())
	}
}

func TestSetFillClearAll(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		s := New(n)
		s.FillAll()
		if s.Count() != n {
			t.Errorf("n=%d: FillAll Count = %d", n, s.Count())
		}
		s.ClearAll()
		if !s.IsEmpty() {
			t.Errorf("n=%d: not empty after ClearAll", n)
		}
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for index %d", i)
				}
			}()
			s.Test(i)
		}()
	}
}

func TestSetUnionIntersectSubtract(t *testing.T) {
	a, b := New(100), New(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	u := a.Clone()
	u.Union(b)
	in := a.Clone()
	in.Intersect(b)
	d := a.Clone()
	d.Subtract(b)
	for i := 0; i < 100; i++ {
		ia, ib := i%2 == 0, i%3 == 0
		if u.Test(i) != (ia || ib) {
			t.Errorf("union bit %d wrong", i)
		}
		if in.Test(i) != (ia && ib) {
			t.Errorf("intersect bit %d wrong", i)
		}
		if d.Test(i) != (ia && !ib) {
			t.Errorf("subtract bit %d wrong", i)
		}
	}
	if !u.ContainsAll(a) || !u.ContainsAll(b) {
		t.Error("union does not contain operands")
	}
	if !a.ContainsAll(in) {
		t.Error("a does not contain intersection")
	}
}

func TestSetMembersOrdered(t *testing.T) {
	s := New(300)
	want := []int{3, 64, 65, 127, 128, 299}
	for _, i := range want {
		s.Set(i)
	}
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestSetString(t *testing.T) {
	s := New(10)
	s.Set(1)
	s.Set(7)
	if got := s.String(); got != "{1, 7}" {
		t.Errorf("String = %q", got)
	}
}

// TestSetQuickAgainstMap property-checks Set against a map-based model.
func TestSetQuickAgainstMap(t *testing.T) {
	const n = 257
	f := func(ops []uint16) bool {
		s := New(n)
		model := map[int]bool{}
		for _, op := range ops {
			i := int(op) % n
			switch (int(op) / n) % 3 {
			case 0:
				s.Set(i)
				model[i] = true
			case 1:
				s.Clear(i)
				delete(model, i)
			case 2:
				if s.Test(i) != model[i] {
					return false
				}
			}
		}
		if s.Count() != len(model) {
			return false
		}
		for _, m := range s.Members() {
			if !model[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicBasic(t *testing.T) {
	a := NewAtomic(129)
	if !a.Set(5) {
		t.Error("Set(5) reported no change on clear bit")
	}
	if a.Set(5) {
		t.Error("Set(5) reported change on set bit")
	}
	if !a.Test(5) {
		t.Error("Test(5) false")
	}
	if !a.TestAndSet(5) {
		t.Error("TestAndSet on set bit returned false")
	}
	if a.TestAndSet(6) {
		t.Error("TestAndSet on clear bit returned true")
	}
	if !a.Test(6) {
		t.Error("TestAndSet did not set bit 6")
	}
	if !a.Clear(5) {
		t.Error("Clear(5) reported bit was clear")
	}
	if a.Clear(5) {
		t.Error("Clear(5) twice reported bit was set")
	}
}

func TestAtomicFillSnapshot(t *testing.T) {
	a := NewAtomic(100)
	a.FillAll()
	if a.Count() != 100 {
		t.Fatalf("Count after FillAll = %d", a.Count())
	}
	snap := a.Snapshot()
	if snap.Count() != 100 {
		t.Fatalf("Snapshot Count = %d", snap.Count())
	}
	a.ClearAll()
	if !a.IsEmpty() {
		t.Fatal("not empty after ClearAll")
	}
	if snap.Count() != 100 {
		t.Fatal("snapshot aliased to atomic set")
	}
}

// TestAtomicConcurrentSetters hammers one set from many goroutines and
// checks every claimed bit was claimed exactly once.
func TestAtomicConcurrentSetters(t *testing.T) {
	const n = 4096
	const workers = 8
	a := NewAtomic(n)
	claims := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for k := 0; k < n; k++ {
				i := rng.Intn(n)
				if !a.TestAndSet(i) {
					claims[w] = append(claims[w], i)
				}
			}
		}(w)
	}
	wg.Wait()
	seen := map[int]int{}
	for _, c := range claims {
		for _, i := range c {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("bit %d claimed %d times", i, c)
		}
	}
	if a.Count() != len(seen) {
		t.Fatalf("Count = %d, claimed = %d", a.Count(), len(seen))
	}
}

// TestAtomicConcurrentClearDisjoint has workers clear disjoint ranges
// concurrently; the final set must be exactly empty.
func TestAtomicConcurrentClearDisjoint(t *testing.T) {
	const n = 1 << 12
	a := NewAtomic(n)
	a.FillAll()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if !a.Clear(i) {
					t.Errorf("bit %d already clear", i)
				}
			}
		}(w)
	}
	wg.Wait()
	if !a.IsEmpty() {
		t.Fatalf("set not empty, %d bits left", a.Count())
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(10, 20)
	if m.Test(3, 4) {
		t.Fatal("fresh matrix bit set")
	}
	if m.TestAndSet(3, 4) {
		t.Fatal("TestAndSet returned already-set on fresh bit")
	}
	if !m.Test(3, 4) {
		t.Fatal("bit (3,4) not set")
	}
	if !m.TestAndSet(3, 4) {
		t.Fatal("TestAndSet returned not-set on set bit")
	}
	// (4,3) must be independent of (3,4).
	if m.Test(4, 3) {
		t.Fatal("transposed bit aliased")
	}
	if m.Count() != 1 {
		t.Fatalf("Count = %d", m.Count())
	}
}

func TestMatrixBoundsPanics(t *testing.T) {
	m := NewMatrix(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("no panic on out-of-range matrix access")
		}
	}()
	m.Test(4, 0)
}

func BenchmarkAtomicTestAndSet(b *testing.B) {
	a := NewAtomic(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.TestAndSet(i & (1<<16 - 1))
	}
}

func BenchmarkAtomicSnapshotCount(b *testing.B) {
	a := NewAtomic(1 << 16)
	for i := 0; i < 1<<16; i += 3 {
		a.Set(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Count()
	}
}
