package bitset

import (
	"errors"
	"math/rand"
	"testing"
)

// roundTripSet encodes s and decodes it back, failing the test on any
// mismatch.
func roundTripSet(t *testing.T, s *Set) *Set {
	t.Helper()
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var got Set
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if got.Len() != s.Len() || !got.Equal(s) {
		t.Fatalf("round trip mismatch: got %v (len %d), want %v (len %d)",
			&got, got.Len(), s, s.Len())
	}
	return &got
}

func TestSetBinaryRoundTrip(t *testing.T) {
	// Capacities straddling word boundaries, including zero.
	for _, n := range []int{0, 1, 7, 63, 64, 65, 127, 128, 129, 1000} {
		s := New(n)
		roundTripSet(t, s) // empty

		if n > 0 {
			s.Set(0)
			s.Set(n - 1)
			if n > 2 {
				s.Set(n / 2)
			}
			roundTripSet(t, s)

			s.FillAll()
			roundTripSet(t, s)
		}
	}
}

func TestSetBinaryTrailingZeroWords(t *testing.T) {
	// Only low bits set: the upper words are all zero and must survive.
	s := New(256)
	s.Set(3)
	s.Set(40)
	got := roundTripSet(t, s)
	if got.Count() != 2 {
		t.Fatalf("Count = %d, want 2", got.Count())
	}
}

func TestSetBinaryRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		n := rng.Intn(300)
		s := New(n)
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				s.Set(j)
			}
		}
		roundTripSet(t, s)
	}
}

func TestAtomicBinaryRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		a := NewAtomic(n)
		for i := 0; i < n; i += 3 {
			a.Set(i)
		}
		data, err := a.MarshalBinary()
		if err != nil {
			t.Fatalf("n=%d: MarshalBinary: %v", n, err)
		}
		var got Atomic
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("n=%d: UnmarshalBinary: %v", n, err)
		}
		if got.Len() != n || !got.Snapshot().Equal(a.Snapshot()) {
			t.Fatalf("n=%d: round trip mismatch: got %v, want %v",
				n, got.Snapshot(), a.Snapshot())
		}
	}
}

func TestMatrixBinaryRoundTrip(t *testing.T) {
	m := NewMatrix(5, 7)
	m.Set(0, 0)
	m.Set(4, 6)
	m.Set(2, 3)
	data := m.AppendBinary(nil)
	got, rest, err := ReadMatrix(data)
	if err != nil {
		t.Fatalf("ReadMatrix: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("ReadMatrix left %d bytes", len(rest))
	}
	if got.Count() != 3 || !got.Test(0, 0) || !got.Test(4, 6) || !got.Test(2, 3) || got.Test(1, 1) {
		t.Fatalf("matrix round trip mismatch")
	}
}

func TestBinaryStreaming(t *testing.T) {
	a := New(10)
	a.Set(2)
	b := New(100)
	b.Set(99)
	data := b.AppendBinary(a.AppendBinary(nil))

	gotA, rest, err := ReadSet(data)
	if err != nil {
		t.Fatalf("ReadSet #1: %v", err)
	}
	gotB, rest, err := ReadSet(rest)
	if err != nil {
		t.Fatalf("ReadSet #2: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("stream left %d bytes", len(rest))
	}
	if !gotA.Equal(a) || !gotB.Equal(b) {
		t.Fatalf("stream round trip mismatch")
	}
}

func TestBinaryCorruptionRejected(t *testing.T) {
	s := New(70)
	s.Set(5)
	s.Set(69)
	good, _ := s.MarshalBinary()

	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-5],
		"header":    good[:3],
	}
	// Flip one bit in each region: capacity, payload, checksum.
	for name, off := range map[string]int{"flip-n": 0, "flip-word": 6, "flip-crc": len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		cases[name] = bad
	}
	for name, data := range cases {
		var got Set
		err := got.UnmarshalBinary(data)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}

	var atomicGot Atomic
	if err := atomicGot.UnmarshalBinary(good[:len(good)-1]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("atomic truncated: err = %v, want ErrCorrupt", err)
	}
}

func TestBinaryTailBitsRejected(t *testing.T) {
	// Hand-craft a frame claiming 65 bits whose second word has bit 1
	// (overall bit 65) set: structurally valid, checksum valid, but the
	// payload exceeds the declared capacity.
	forged := &Set{n: 66, words: []uint64{0, 2}}
	data := forged.AppendBinary(nil)
	// Rewrite the capacity to 65 and recompute the checksum by re-encoding
	// through appendFrame with the same words.
	data = appendFrame(nil, 65, func(i int) uint64 { return forged.words[i] })
	if _, _, err := ReadSet(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tail bits: err = %v, want ErrCorrupt", err)
	}
}

func TestBinaryTrailingBytesRejected(t *testing.T) {
	s := New(8)
	data, _ := s.MarshalBinary()
	data = append(data, 0xFF)
	var got Set
	if err := got.UnmarshalBinary(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: err = %v, want ErrCorrupt", err)
	}
}

func TestMatrixBinaryCorruptionRejected(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(1, 1)
	good := m.AppendBinary(nil)

	bad := append([]byte(nil), good...)
	bad[0] ^= 1 // rows no longer match the header checksum
	if _, _, err := ReadMatrix(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("matrix header flip: err = %v, want ErrCorrupt", err)
	}
	if _, _, err := ReadMatrix(good[:8]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("matrix truncated: err = %v, want ErrCorrupt", err)
	}
}
