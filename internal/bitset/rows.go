package bitset

import (
	"fmt"
	"math/bits"
)

// Row-oriented operations over Matrix, used by the taxonomy query kernel
// to treat each matrix row as a dense set and combine rows with
// word-parallel OR/AND instead of per-bit loops. They require the matrix
// to be allocated with a word-aligned column count (AlignCols) so every
// row starts and ends on a 64-bit word boundary; the padding columns are
// simply never set.

// AlignCols rounds n up to the next multiple of the word size so that an
// n-column matrix row occupies whole words. AlignCols(0) == 0.
func AlignCols(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative column count %d", n))
	}
	return wordsFor(n) * wordBits
}

// Rows returns the number of rows in the matrix.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns in the matrix.
func (m *Matrix) Cols() int { return m.cols }

// rowWords returns the word span [lo, lo+n) of row r, panicking unless
// the matrix is word-aligned (cols % 64 == 0) and r is in range.
func (m *Matrix) rowWords(r int) (lo, n int) {
	if m.cols%wordBits != 0 {
		panic(fmt.Sprintf("bitset: row operation on unaligned matrix (%d cols); allocate with AlignCols", m.cols))
	}
	if r < 0 || r >= m.rows {
		panic(fmt.Sprintf("bitset: row %d out of range [0,%d)", r, m.rows))
	}
	n = m.cols / wordBits
	return r * n, n
}

// OrRow ORs row src into row dst in word-parallel fashion: every bit set
// in src becomes set in dst. Each word is updated with one atomic OR, so
// concurrent OrRow calls into the same dst row are safe; readers see each
// word at a possibly different instant, which is fine for the kernel's
// monotone closure build (rows only gain bits).
func (m *Matrix) OrRow(dst, src int) {
	dlo, n := m.rowWords(dst)
	slo, _ := m.rowWords(src)
	for i := 0; i < n; i++ {
		if w := m.bits.words[slo+i].Load(); w != 0 {
			m.bits.words[dlo+i].Or(w)
		}
	}
}

// RowCount returns the popcount of row r.
func (m *Matrix) RowCount(r int) int {
	lo, n := m.rowWords(r)
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(m.bits.words[lo+i].Load())
	}
	return c
}

// RowForEach calls fn for every set column of row r in ascending order.
// If fn returns false, iteration stops early.
func (m *Matrix) RowForEach(r int, fn func(c int) bool) {
	lo, n := m.rowWords(r)
	for i := 0; i < n; i++ {
		w := m.bits.words[lo+i].Load()
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(i*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// RowSnapshot copies row r into a fresh Set of capacity Cols().
func (m *Matrix) RowSnapshot(r int) *Set {
	lo, n := m.rowWords(r)
	s := New(m.cols)
	for i := 0; i < n; i++ {
		s.words[i] = m.bits.words[lo+i].Load()
	}
	return s
}

// RowIntersectsSet reports whether row r and s share at least one set
// bit. s must have capacity Cols().
func (m *Matrix) RowIntersectsSet(r int, s *Set) bool {
	lo, n := m.rowWords(r)
	if s.n != m.cols {
		panic(fmt.Sprintf("bitset: set size %d does not match %d cols", s.n, m.cols))
	}
	for i := 0; i < n; i++ {
		if m.bits.words[lo+i].Load()&s.words[i] != 0 {
			return true
		}
	}
	return false
}

// RowIntersectCount returns |row r ∩ s| by word-parallel AND + popcount.
// s must have capacity Cols().
func (m *Matrix) RowIntersectCount(r int, s *Set) int {
	lo, n := m.rowWords(r)
	if s.n != m.cols {
		panic(fmt.Sprintf("bitset: set size %d does not match %d cols", s.n, m.cols))
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(m.bits.words[lo+i].Load() & s.words[i])
	}
	return c
}
