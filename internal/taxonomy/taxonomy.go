// Package taxonomy represents the result of TBox classification: the
// subsumption hierarchy of all named concepts, with ⊤ as the root
// (paper Sec. II-A, "Classification"). Equivalent concepts share a node;
// edges are the direct (transitively reduced) subsumption relationships;
// unsatisfiable concepts collapse into the ⊥ node.
package taxonomy

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"parowl/internal/dl"
)

// Node is one equivalence class of the taxonomy.
type Node struct {
	// Concepts holds the members of the equivalence class sorted by
	// name; the first is the canonical representative.
	Concepts []*dl.Concept

	parents  []*Node
	children []*Node
}

// Canonical returns the class representative.
func (n *Node) Canonical() *dl.Concept { return n.Concepts[0] }

// Parents returns the direct superclass nodes.
func (n *Node) Parents() []*Node { return n.parents }

// Children returns the direct subclass nodes.
func (n *Node) Children() []*Node { return n.children }

// Label renders the equivalence class for display.
func (n *Node) Label() string {
	parts := make([]string, len(n.Concepts))
	for i, c := range n.Concepts {
		parts[i] = conceptName(c)
	}
	return strings.Join(parts, " ≡ ")
}

func conceptName(c *dl.Concept) string {
	switch c.Op {
	case dl.OpTop:
		return "⊤"
	case dl.OpBottom:
		return "⊥"
	default:
		return c.Name
	}
}

// Taxonomy is an immutable classification result. An optional compiled
// query kernel (see Compile) can be attached after construction; the
// queries below delegate to it when present.
type Taxonomy struct {
	top, bottom *Node
	nodes       []*Node // all nodes, top first, bottom last
	byConcept   map[*dl.Concept]*Node

	kernel atomic.Pointer[Kernel]
}

// Kernel returns the attached query kernel, or nil if none was compiled.
func (t *Taxonomy) Kernel() *Kernel { return t.kernel.Load() }

// CompileKernel compiles and attaches the query kernel using `workers`
// goroutines per antichain level (≤ 0 means one per CPU). It is
// idempotent: an already-attached kernel is returned as-is.
func (t *Taxonomy) CompileKernel(workers int) *Kernel {
	if k := t.kernel.Load(); k != nil {
		return k
	}
	var k *Kernel
	if workers <= 0 {
		k = Compile(t)
	} else {
		k = CompileWorkers(t, workers)
	}
	// Racing compilers produce identical kernels; first one wins.
	if !t.kernel.CompareAndSwap(nil, k) {
		return t.kernel.Load()
	}
	return k
}

// AdoptKernel binds a decoded (unbound) kernel to t and attaches it,
// validating that the kernel was compiled from an identically-shaped
// taxonomy (same node count and fingerprint hash). On mismatch the
// taxonomy is left unchanged and the error wraps ErrBadKernel.
//
// Concurrent AdoptKernel calls (a server adopting one checkpointed
// kernel while racing readers resolve queries) are safe: the binding
// itself is mutex-guarded, and the kernel only becomes visible to
// readers through the atomic attach below, which orders the bound fields
// before any query can observe them.
func (t *Taxonomy) AdoptKernel(k *Kernel) error {
	if k == nil {
		return fmt.Errorf("%w: nil kernel", ErrBadKernel)
	}
	if k.n != len(t.nodes) {
		return fmt.Errorf("%w: kernel covers %d classes, taxonomy has %d", ErrBadKernel, k.n, len(t.nodes))
	}
	if fp := fingerprintHash(t.Fingerprint()); k.fp != fp {
		return fmt.Errorf("%w: kernel fingerprint %016x does not match taxonomy %016x", ErrBadKernel, k.fp, fp)
	}
	k.bindMu.Lock()
	if k.tax == nil {
		k.nodes = t.nodes
		k.id = make(map[*Node]int, len(t.nodes))
		for i, nd := range t.nodes {
			k.id[nd] = i
		}
		k.tax = t
	} else if k.tax != t {
		k.bindMu.Unlock()
		return fmt.Errorf("%w: kernel already bound to another taxonomy", ErrBadKernel)
	}
	k.bindMu.Unlock()
	t.kernel.CompareAndSwap(nil, k)
	return nil
}

// Top returns the ⊤ node.
func (t *Taxonomy) Top() *Node { return t.top }

// Bottom returns the ⊥ node (it exists even when no concept is
// unsatisfiable; it is then empty apart from ⊥ itself).
func (t *Taxonomy) Bottom() *Node { return t.bottom }

// Nodes returns all nodes; the caller must not mutate the slice.
func (t *Taxonomy) Nodes() []*Node { return t.nodes }

// NodeOf returns the node containing concept c, or nil.
func (t *Taxonomy) NodeOf(c *dl.Concept) *Node { return t.byConcept[c] }

// Equivalents returns the concepts equivalent to c (including c), or nil
// if c is not in the taxonomy.
func (t *Taxonomy) Equivalents(c *dl.Concept) []*dl.Concept {
	n := t.byConcept[c]
	if n == nil {
		return nil
	}
	return n.Concepts
}

// IsAncestor reports whether anc is a strict ancestor of c in the
// taxonomy (i.e. c ⊑ anc with c ≢ anc).
func (t *Taxonomy) IsAncestor(anc, c *dl.Concept) bool {
	if k := t.kernel.Load(); k != nil {
		return k.IsAncestor(anc, c)
	}
	from, to := t.byConcept[c], t.byConcept[anc]
	if from == nil || to == nil || from == to {
		return false
	}
	seen := map[*Node]bool{}
	var up func(n *Node) bool
	up = func(n *Node) bool {
		if n == to {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for _, p := range n.parents {
			if up(p) {
				return true
			}
		}
		return false
	}
	return up(from)
}

// Ancestors returns all strict ancestor nodes of c.
func (t *Taxonomy) Ancestors(c *dl.Concept) []*Node {
	if k := t.kernel.Load(); k != nil {
		return k.Ancestors(c)
	}
	start := t.byConcept[c]
	if start == nil {
		return nil
	}
	var out []*Node
	seen := map[*Node]bool{start: true}
	var up func(n *Node)
	up = func(n *Node) {
		for _, p := range n.parents {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
				up(p)
			}
		}
	}
	up(start)
	return out
}

// Descendants returns all strict descendant nodes of c.
func (t *Taxonomy) Descendants(c *dl.Concept) []*Node {
	if k := t.kernel.Load(); k != nil {
		return k.Descendants(c)
	}
	start := t.byConcept[c]
	if start == nil {
		return nil
	}
	var out []*Node
	seen := map[*Node]bool{start: true}
	var down func(n *Node)
	down = func(n *Node) {
		for _, ch := range n.children {
			if !seen[ch] {
				seen[ch] = true
				out = append(out, ch)
				down(ch)
			}
		}
	}
	down(start)
	return out
}

// NumClasses returns the number of nodes (including ⊤ and ⊥).
func (t *Taxonomy) NumClasses() int { return len(t.nodes) }

// MemoryFootprint estimates the resident size of the DAG in bytes: node
// structs, their concept/parent/child slices, and the concept index map.
// The attached query kernel is NOT included — callers accounting for a
// whole classified ontology (the owld eviction budget does) add
// Kernel().MemoryFootprint() separately, since the kernel dominates on
// large ontologies and is what eviction actually releases.
func (t *Taxonomy) MemoryFootprint() int {
	const (
		ptrSize      = 8
		nodeSize     = 3 * 3 * ptrSize // three slice headers
		mapEntrySize = 3 * ptrSize     // key, value, bucket overhead, roughly
	)
	total := len(t.byConcept)*mapEntrySize + len(t.nodes)*ptrSize
	for _, n := range t.nodes {
		total += nodeSize + (len(n.Concepts)+len(n.parents)+len(n.children))*ptrSize
	}
	return total
}

// Render writes the taxonomy as an indented tree rooted at ⊤, with nodes
// reachable through several parents printed once per parent. The output is
// deterministic.
func (t *Taxonomy) Render() string {
	var b strings.Builder
	var walk func(n *Node, depth int, seen map[*Node]int)
	walk = func(n *Node, depth int, seen map[*Node]int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), n.Label())
		if seen[n] > 8 {
			return // defensive: should be impossible in a valid DAG
		}
		seen[n]++
		kids := append([]*Node(nil), n.children...)
		sort.Slice(kids, func(i, j int) bool { return kids[i].Label() < kids[j].Label() })
		for _, k := range kids {
			if k == t.bottom && len(k.Concepts) == 1 {
				continue // hide an empty ⊥
			}
			walk(k, depth+1, seen)
		}
		seen[n]--
	}
	walk(t.top, 0, map[*Node]int{})
	return b.String()
}

// Equal reports whether two taxonomies have identical equivalence classes
// and identical direct edges (compared by concept names).
func (t *Taxonomy) Equal(o *Taxonomy) bool {
	return t.Fingerprint() == o.Fingerprint()
}

// Fingerprint returns a canonical string of all classes and direct edges,
// usable for equality and test assertions.
func (t *Taxonomy) Fingerprint() string {
	var lines []string
	for _, n := range t.nodes {
		names := make([]string, len(n.Concepts))
		for i, c := range n.Concepts {
			names[i] = conceptName(c)
		}
		sort.Strings(names)
		class := strings.Join(names, "=")
		var ps []string
		for _, p := range n.parents {
			ps = append(ps, conceptName(p.Canonical()))
		}
		sort.Strings(ps)
		lines = append(lines, class+" < "+strings.Join(ps, ","))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
