package taxonomy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"runtime"
	"sync"

	"parowl/internal/bitset"
	"parowl/internal/dl"
)

// Kernel is the compiled query form of a Taxonomy: dense node IDs plus
// ancestor/descendant transitive-closure bit matrices, in the style of
// the CNS OWL engine's uint64 closure tables. Subsumption becomes one
// word-indexed bit test and the set-valued queries become word-parallel
// row operations (OR/AND + popcount), replacing the pointer-chasing,
// map-allocating walks in query.go.
//
// Node IDs are the node's index in Taxonomy.Nodes() (⊤ = 0, ⊥ = n-1),
// which the builder makes deterministic, so a kernel serialized from one
// process binds to the identically-fingerprinted taxonomy of another.
// The matrices are allocated with a word-aligned column count
// (bitset.AlignCols) so every row is a whole number of uint64 words; the
// padding columns are never set.
//
// A Kernel is immutable after Compile/DecodeKernel and safe for
// concurrent readers.
type Kernel struct {
	bindMu sync.Mutex     // serializes AdoptKernel binding of a decoded kernel
	tax    *Taxonomy      // bound taxonomy; nil for a decoded, unbound kernel
	nodes  []*Node        // tax.nodes when bound
	id     map[*Node]int  // node → dense ID when bound
	n      int            // node count (matrix rows)
	cols   int            // AlignCols(n) matrix columns
	anc    *bitset.Matrix // bit (x,y): y is a strict ancestor of x
	desc   *bitset.Matrix // bit (x,y): y is a strict descendant of x
	depth  []int32        // longest ⊤-path per node ID
	fp     uint64         // FNV-1a of the source taxonomy's Fingerprint
}

// ErrBadKernel reports a kernel binary frame that failed structural
// validation or its checksum, or a kernel that does not match the
// taxonomy it is being adopted into. All kernel decode/adopt errors wrap
// it.
var ErrBadKernel = errors.New("taxonomy: bad kernel frame")

// Compile builds the query kernel for t using one worker per available
// CPU. See CompileWorkers.
func Compile(t *Taxonomy) *Kernel { return CompileWorkers(t, runtime.GOMAXPROCS(0)) }

// CompileWorkers builds the query kernel for t. The closure matrices are
// built in a single reverse-topological sweep each: nodes are grouped
// into antichain levels (equal longest-path depth), every node's row is
// the word-parallel OR of its parents' (resp. children's) completed rows
// plus one bit per direct edge, and the nodes within a level — which can
// never be related — are compiled in parallel across workers.
func CompileWorkers(t *Taxonomy, workers int) *Kernel {
	n := len(t.nodes)
	k := &Kernel{
		tax:   t,
		nodes: t.nodes,
		id:    make(map[*Node]int, n),
		n:     n,
		cols:  bitset.AlignCols(n),
		depth: make([]int32, n),
		fp:    fingerprintHash(t.Fingerprint()),
	}
	for i, nd := range t.nodes {
		k.id[nd] = i
	}
	k.anc = bitset.NewMatrix(n, k.cols)
	k.desc = bitset.NewMatrix(n, k.cols)
	if workers < 1 {
		workers = 1
	}

	// Downward sweep: levels by longest-path depth from ⊤. Every parent
	// of a level-d node sits at a level < d, so its ancestor row is
	// already complete when the level is processed, and nodes within one
	// level are an antichain (depth strictly increases along edges) so
	// they touch disjoint rows.
	ancLevels := k.levels(func(nd *Node) []*Node { return nd.parents })
	for d, level := range ancLevels {
		for _, x := range level {
			k.depth[x] = int32(d)
		}
	}
	for _, level := range ancLevels {
		k.forEachParallel(level, workers, func(x int) {
			for _, p := range k.nodes[x].parents {
				pid := k.id[p]
				k.anc.Set(x, pid)
				k.anc.OrRow(x, pid)
			}
		})
	}
	// Upward sweep: the mirror image, levels by height above the leaves.
	descLevels := k.levels(func(nd *Node) []*Node { return nd.children })
	for _, level := range descLevels {
		k.forEachParallel(level, workers, func(x int) {
			for _, c := range k.nodes[x].children {
				cid := k.id[c]
				k.desc.Set(x, cid)
				k.desc.OrRow(x, cid)
			}
		})
	}
	return k
}

// levels groups node IDs into antichain levels by longest-path distance
// from the nodes with no prev-edges (Kahn's algorithm over prev). A node
// is released only after every prev-edge is consumed, so its level — the
// max over its prev nodes' levels plus one — is final when assigned.
// Each returned slice holds the nodes of exactly one level, so within a
// slice no two nodes are related and all their prev rows are complete.
func (k *Kernel) levels(prev func(*Node) []*Node) [][]int {
	remaining := make([]int, k.n)
	// next-edge adjacency is the reverse of prev: rebuild it so the scan
	// below visits each edge once.
	next := make([][]int, k.n)
	for i, nd := range k.nodes {
		ps := prev(nd)
		remaining[i] = len(ps)
		for _, p := range ps {
			pid := k.id[p]
			next[pid] = append(next[pid], i)
		}
	}
	level := make([]int, k.n)
	var frontier []int
	for i := range remaining {
		if remaining[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	processed, maxLevel := 0, 0
	for len(frontier) > 0 {
		var nf []int
		for _, x := range frontier {
			processed++
			if level[x] > maxLevel {
				maxLevel = level[x]
			}
			for _, y := range next[x] {
				if level[x]+1 > level[y] {
					level[y] = level[x] + 1
				}
				remaining[y]--
				if remaining[y] == 0 {
					nf = append(nf, y)
				}
			}
		}
		frontier = nf
	}
	if processed != k.n {
		panic(fmt.Sprintf("taxonomy: kernel compile processed %d of %d nodes (cycle?)", processed, k.n))
	}
	byLevel := make([][]int, maxLevel+1)
	for i, d := range level {
		byLevel[d] = append(byLevel[d], i)
	}
	return byLevel
}

// forEachParallel runs fn over the IDs in level, fanning out across up to
// `workers` goroutines when the level is large enough to pay for it. The
// WaitGroup join gives the next level a happens-before edge on every row
// written here.
func (k *Kernel) forEachParallel(level []int, workers int, fn func(x int)) {
	const minPerWorker = 16
	if workers == 1 || len(level) < 2*minPerWorker {
		for _, x := range level {
			fn(x)
		}
		return
	}
	if max := (len(level) + minPerWorker - 1) / minPerWorker; workers > max {
		workers = max
	}
	var wg sync.WaitGroup
	chunk := (len(level) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(level) {
			break
		}
		hi := lo + chunk
		if hi > len(level) {
			hi = len(level)
		}
		wg.Add(1)
		go func(ids []int) {
			defer wg.Done()
			for _, x := range ids {
				fn(x)
			}
		}(level[lo:hi])
	}
	wg.Wait()
}

func fingerprintHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// NumClasses returns the number of taxonomy nodes the kernel covers.
func (k *Kernel) NumClasses() int { return k.n }

// TaxonomyFingerprint returns the FNV-1a hash of the source taxonomy's
// Fingerprint, used to pair a decoded kernel with its taxonomy.
func (k *Kernel) TaxonomyFingerprint() uint64 { return k.fp }

// MemoryFootprint returns the approximate resident size of the closure
// matrices and depth table in bytes.
func (k *Kernel) MemoryFootprint() int {
	return 2*k.n*(k.cols/8) + 4*k.n
}

// bound panics if the kernel has been decoded but not yet adopted by a
// taxonomy.
func (k *Kernel) bound() {
	if k.tax == nil {
		panic("taxonomy: query on unbound kernel (call Taxonomy.AdoptKernel first)")
	}
}

func (k *Kernel) idOf(c *dl.Concept) (int, bool) {
	nd := k.tax.byConcept[c]
	if nd == nil {
		return 0, false
	}
	return k.id[nd], true
}

// IsAncestor reports whether anc is a strict ancestor of c: one bit test.
func (k *Kernel) IsAncestor(anc, c *dl.Concept) bool {
	k.bound()
	ia, ok1 := k.idOf(anc)
	ic, ok2 := k.idOf(c)
	if !ok1 || !ok2 {
		return false
	}
	return k.anc.Test(ic, ia)
}

// Subsumes reports c ⊑ sup: equivalence (same node) or strict ancestry.
func (k *Kernel) Subsumes(sup, c *dl.Concept) bool {
	k.bound()
	is, ok1 := k.idOf(sup)
	ic, ok2 := k.idOf(c)
	if !ok1 || !ok2 {
		return false
	}
	return is == ic || k.anc.Test(ic, is)
}

// SubsumesBatch answers sub ⊑ sups[i] for every i against a single
// ancestor row: sub's dense ID is resolved once and each candidate
// subsumer costs one bit test into the same row, so a batched multi-pair
// subsumption request does one row sweep instead of len(sups)
// independent double lookups. A sub (or sup) outside the taxonomy
// answers false, matching Subsumes.
func (k *Kernel) SubsumesBatch(sub *dl.Concept, sups []*dl.Concept) []bool {
	k.bound()
	out := make([]bool, len(sups))
	ic, ok := k.idOf(sub)
	if !ok {
		return out
	}
	for i, sup := range sups {
		is, ok := k.idOf(sup)
		out[i] = ok && (is == ic || k.anc.Test(ic, is))
	}
	return out
}

func (k *Kernel) rowNodes(m *bitset.Matrix, r int) []*Node {
	out := make([]*Node, 0, m.RowCount(r))
	m.RowForEach(r, func(c int) bool {
		out = append(out, k.nodes[c])
		return true
	})
	return out
}

// Ancestors returns all strict ancestor nodes of c in ID order.
func (k *Kernel) Ancestors(c *dl.Concept) []*Node {
	k.bound()
	ic, ok := k.idOf(c)
	if !ok {
		return nil
	}
	return k.rowNodes(k.anc, ic)
}

// Descendants returns all strict descendant nodes of c in ID order.
func (k *Kernel) Descendants(c *dl.Concept) []*Node {
	k.bound()
	ic, ok := k.idOf(c)
	if !ok {
		return nil
	}
	return k.rowNodes(k.desc, ic)
}

// Equivalents returns the concepts equivalent to c (including c).
func (k *Kernel) Equivalents(c *dl.Concept) []*dl.Concept {
	k.bound()
	ic, ok := k.idOf(c)
	if !ok {
		return nil
	}
	return k.nodes[ic].Concepts
}

// Depth returns the longest ⊤-path length to c's node, or -1 if c is not
// in the taxonomy.
func (k *Kernel) Depth(c *dl.Concept) int {
	k.bound()
	ic, ok := k.idOf(c)
	if !ok {
		return -1
	}
	return int(k.depth[ic])
}

// LCA returns the lowest common ancestors of a and b (reflexive), sorted
// by label. The common-ancestor set is two row snapshots intersected
// word-parallel; a candidate is pruned when its descendant row intersects
// the shared set.
func (k *Kernel) LCA(a, b *dl.Concept) []*Node {
	k.bound()
	ia, ok1 := k.idOf(a)
	ib, ok2 := k.idOf(b)
	if !ok1 || !ok2 {
		return nil
	}
	shared := k.anc.RowSnapshot(ia)
	shared.Set(ia)
	sb := k.anc.RowSnapshot(ib)
	sb.Set(ib)
	shared.Intersect(sb)
	var lowest []*Node
	shared.ForEach(func(c int) bool {
		if !k.desc.RowIntersectsSet(c, shared) {
			lowest = append(lowest, k.nodes[c])
		}
		return true
	})
	sortNodes(lowest)
	return lowest
}

// Kernel binary frame. Layout (all integers little-endian):
//
//	magic   [8]byte  "PAROWLKF"
//	uint32  version  currently 1
//	uint64  fp       taxonomy fingerprint hash
//	uint32  n        node count
//	uint32  cols     matrix columns (must equal AlignCols(n))
//	uint32  depth[n] longest ⊤-path per node
//	anc     bitset.Matrix frame (self-checksummed)
//	desc    bitset.Matrix frame (self-checksummed)
//	uint32  crc      CRC-32 (IEEE) of every byte above
//
// The trailing CRC guards the whole frame (including the already-CRC'd
// matrix frames) so any truncation or bit flip is detected as a unit.

const kernelMagic = "PAROWLKF"
const kernelVersion = 1

// AppendBinary appends the kernel's binary frame to b.
func (k *Kernel) AppendBinary(b []byte) []byte {
	start := len(b)
	b = append(b, kernelMagic...)
	b = binary.LittleEndian.AppendUint32(b, kernelVersion)
	b = binary.LittleEndian.AppendUint64(b, k.fp)
	b = binary.LittleEndian.AppendUint32(b, uint32(k.n))
	b = binary.LittleEndian.AppendUint32(b, uint32(k.cols))
	for _, d := range k.depth {
		b = binary.LittleEndian.AppendUint32(b, uint32(d))
	}
	b = k.anc.AppendBinary(b)
	b = k.desc.AppendBinary(b)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
}

// DecodeKernel decodes one kernel frame from the head of data and returns
// the unbound kernel together with the remaining bytes. The kernel must
// be bound with Taxonomy.AdoptKernel before use. All errors wrap
// ErrBadKernel.
func DecodeKernel(data []byte) (*Kernel, []byte, error) {
	const headerLen = 8 + 4 + 8 + 4 + 4
	if len(data) < headerLen {
		return nil, nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrBadKernel, len(data))
	}
	if string(data[:8]) != kernelMagic {
		return nil, nil, fmt.Errorf("%w: bad magic %q", ErrBadKernel, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != kernelVersion {
		return nil, nil, fmt.Errorf("%w: unsupported version %d", ErrBadKernel, v)
	}
	fp := binary.LittleEndian.Uint64(data[12:])
	n := int(binary.LittleEndian.Uint32(data[20:]))
	cols := int(binary.LittleEndian.Uint32(data[24:]))
	if cols != bitset.AlignCols(n) {
		return nil, nil, fmt.Errorf("%w: cols %d does not match AlignCols(%d)", ErrBadKernel, cols, n)
	}
	if len(data) < headerLen+4*n {
		return nil, nil, fmt.Errorf("%w: truncated depth table", ErrBadKernel)
	}
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = int32(binary.LittleEndian.Uint32(data[headerLen+4*i:]))
	}
	body := data[headerLen+4*n:]
	anc, body, err := bitset.ReadMatrix(body)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: ancestor matrix: %v", ErrBadKernel, err)
	}
	desc, body, err := bitset.ReadMatrix(body)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: descendant matrix: %v", ErrBadKernel, err)
	}
	if anc.Rows() != n || anc.Cols() != cols || desc.Rows() != n || desc.Cols() != cols {
		return nil, nil, fmt.Errorf("%w: matrix dims do not match header", ErrBadKernel)
	}
	frameLen := len(data) - len(body)
	if len(body) < 4 {
		return nil, nil, fmt.Errorf("%w: missing trailing checksum", ErrBadKernel)
	}
	want := binary.LittleEndian.Uint32(body)
	if got := crc32.ChecksumIEEE(data[:frameLen]); got != want {
		return nil, nil, fmt.Errorf("%w: frame checksum mismatch (%08x != %08x)", ErrBadKernel, got, want)
	}
	return &Kernel{n: n, cols: cols, anc: anc, desc: desc, depth: depth, fp: fp}, body[4:], nil
}

// WriteKernelFile writes the kernel frame to path (atomically via a
// temporary file in the same directory).
func WriteKernelFile(path string, k *Kernel) error {
	data := k.AppendBinary(make([]byte, 0, 64+k.MemoryFootprint()))
	tmp, err := os.CreateTemp(dirOf(path), ".kernel-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i+1]
		}
	}
	return "."
}

// ReadKernelFile reads one kernel frame from path. The kernel is unbound.
func ReadKernelFile(path string) (*Kernel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	k, rest, err := DecodeKernel(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadKernel, len(rest))
	}
	return k, nil
}
