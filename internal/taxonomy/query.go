package taxonomy

import (
	"fmt"
	"sort"
	"strings"

	"parowl/internal/dl"
)

// Depth returns the length of the longest path from ⊤ to c's node
// (⊤ itself has depth 0), or -1 if c is not in the taxonomy.
func (t *Taxonomy) Depth(c *dl.Concept) int {
	if k := t.kernel.Load(); k != nil {
		return k.Depth(c)
	}
	n := t.byConcept[c]
	if n == nil {
		return -1
	}
	memo := map[*Node]int{}
	var depth func(x *Node) int
	depth = func(x *Node) int {
		if x == t.top {
			return 0
		}
		if d, ok := memo[x]; ok {
			return d
		}
		memo[x] = 0 // cycle guard; the builder validated acyclicity
		best := 0
		for _, p := range x.parents {
			if d := depth(p) + 1; d > best {
				best = d
			}
		}
		memo[x] = best
		return best
	}
	return depth(n)
}

// LCA returns the lowest common ancestors of a and b: the ancestor nodes
// (including the nodes themselves, treated reflexively) of both that have
// no descendant which is also a common ancestor. For tree-shaped
// taxonomies this is the single classical LCA; in a DAG there can be
// several.
func (t *Taxonomy) LCA(a, b *dl.Concept) []*Node {
	if k := t.kernel.Load(); k != nil {
		return k.LCA(a, b)
	}
	na, nb := t.byConcept[a], t.byConcept[b]
	if na == nil || nb == nil {
		return nil
	}
	ancSet := func(n *Node) map[*Node]bool {
		out := map[*Node]bool{n: true}
		var up func(x *Node)
		up = func(x *Node) {
			for _, p := range x.parents {
				if !out[p] {
					out[p] = true
					up(p)
				}
			}
		}
		up(n)
		return out
	}
	common := ancSet(na)
	other := ancSet(nb)
	var shared []*Node
	for n := range common {
		if other[n] {
			shared = append(shared, n)
		}
	}
	sharedSet := make(map[*Node]bool, len(shared))
	for _, n := range shared {
		sharedSet[n] = true
	}
	var lowest []*Node
	for _, n := range shared {
		// A candidate is dominated iff some strict descendant is shared.
		// The shared set is upward-closed (every ancestor of a common
		// ancestor is itself a common ancestor), so if any strict
		// descendant d of n is shared, the first step of a path n→…→d is
		// an ancestor of d and hence shared too: checking the direct
		// children suffices, no full Descendants traversal needed.
		dominated := false
		for _, ch := range n.children {
			if sharedSet[ch] {
				dominated = true
				break
			}
		}
		if !dominated {
			lowest = append(lowest, n)
		}
	}
	sortNodes(lowest)
	return lowest
}

// allDepths returns the longest ⊤-path length for every node, indexed by
// position in t.nodes, computed in one shared topological pass (Kahn's
// algorithm over parents) instead of one memoized DFS per node.
func (t *Taxonomy) allDepths() []int {
	if k := t.kernel.Load(); k != nil {
		out := make([]int, k.n)
		for i, d := range k.depth {
			out[i] = int(d)
		}
		return out
	}
	id := make(map[*Node]int, len(t.nodes))
	for i, n := range t.nodes {
		id[n] = i
	}
	remaining := make([]int, len(t.nodes))
	depth := make([]int, len(t.nodes))
	var frontier []int
	for i, n := range t.nodes {
		remaining[i] = len(n.parents)
		if remaining[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	for len(frontier) > 0 {
		var next []int
		for _, x := range frontier {
			for _, ch := range t.nodes[x].children {
				y := id[ch]
				if depth[x]+1 > depth[y] {
					depth[y] = depth[x] + 1
				}
				remaining[y]--
				if remaining[y] == 0 {
					next = append(next, y)
				}
			}
		}
		frontier = next
	}
	return depth
}

// Summary aggregates structural statistics of the taxonomy.
type Summary struct {
	Classes       int // nodes including ⊤ and ⊥
	Concepts      int // named concepts placed (excluding ⊤/⊥ themselves)
	Equivalences  int // concepts sharing a node with another concept
	Unsatisfiable int // concepts in the ⊥ node
	MaxDepth      int
	// RootClasses counts direct children of ⊤; AvgChildren is the mean
	// out-degree over non-leaf internal nodes (⊥ edges excluded).
	RootClasses int
	AvgChildren float64
}

func (s Summary) String() string {
	return fmt.Sprintf("classes=%d concepts=%d equivalences=%d unsat=%d maxDepth=%d roots=%d avgChildren=%.2f",
		s.Classes, s.Concepts, s.Equivalences, s.Unsatisfiable, s.MaxDepth, s.RootClasses, s.AvgChildren)
}

// Summarize computes the Summary.
func (t *Taxonomy) Summarize() Summary {
	s := Summary{Classes: len(t.nodes)}
	for _, n := range t.nodes {
		for _, c := range n.Concepts {
			if c.Op == dl.OpName {
				s.Concepts++
				if n == t.bottom {
					s.Unsatisfiable++
				} else if len(n.Concepts) > 1 {
					s.Equivalences++
				}
			}
		}
	}
	for _, ch := range t.top.children {
		if ch != t.bottom {
			s.RootClasses++
		}
	}
	internal, edges := 0, 0
	depths := t.allDepths()
	for i, n := range t.nodes {
		if n == t.bottom {
			continue
		}
		kids := 0
		for _, ch := range n.children {
			if ch != t.bottom {
				kids++
			}
		}
		if kids > 0 {
			internal++
			edges += kids
		}
		if d := depths[i]; d > s.MaxDepth {
			s.MaxDepth = d
		}
	}
	if internal > 0 {
		s.AvgChildren = float64(edges) / float64(internal)
	}
	return s
}

// DOT renders the taxonomy in Graphviz DOT format, one box per
// equivalence class, edges from parent to child, ⊥ omitted unless it
// holds unsatisfiable concepts.
func (t *Taxonomy) DOT() string {
	var b strings.Builder
	b.WriteString("digraph taxonomy {\n  rankdir=BT;\n  node [shape=box];\n")
	id := make(map[*Node]int, len(t.nodes))
	for i, n := range t.nodes {
		id[n] = i
	}
	showBottom := len(t.bottom.Concepts) > 1
	for _, n := range t.nodes {
		if n == t.bottom && !showBottom {
			continue
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", id[n], n.Label())
	}
	var lines []string
	for _, n := range t.nodes {
		if n == t.bottom && !showBottom {
			continue
		}
		for _, p := range n.parents {
			lines = append(lines, fmt.Sprintf("  n%d -> n%d;", id[n], id[p]))
		}
	}
	sort.Strings(lines)
	b.WriteString(strings.Join(lines, "\n"))
	b.WriteString("\n}\n")
	return b.String()
}
