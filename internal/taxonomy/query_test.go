package taxonomy

import (
	"strings"
	"testing"

	"parowl/internal/dl"
)

// diamond builds ⊤ → A → {B, C} → D.
func diamond(t *testing.T) (*Taxonomy, *dl.Factory) {
	t.Helper()
	f := dl.NewFactory()
	cs := names(f, "A", "B", "C", "D")
	bld := NewBuilder(f)
	bld.AddEdge(cs[0], cs[1])
	bld.AddEdge(cs[0], cs[2])
	bld.AddEdge(cs[1], cs[3])
	bld.AddEdge(cs[2], cs[3])
	tax, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tax, f
}

func TestDepth(t *testing.T) {
	tax, f := diamond(t)
	cases := map[string]int{"A": 1, "B": 2, "C": 2, "D": 3}
	for name, want := range cases {
		if got := tax.Depth(f.Name(name)); got != want {
			t.Errorf("Depth(%s) = %d, want %d", name, got, want)
		}
	}
	if tax.Depth(f.Top()) != 0 {
		t.Error("Depth(⊤) != 0")
	}
	if tax.Depth(f.Name("Missing")) != -1 {
		t.Error("Depth(missing) != -1")
	}
}

func TestLCA(t *testing.T) {
	tax, f := diamond(t)
	// LCA(B, C) = A.
	lca := tax.LCA(f.Name("B"), f.Name("C"))
	if len(lca) != 1 || lca[0] != tax.NodeOf(f.Name("A")) {
		t.Errorf("LCA(B,C) = %v", labels(lca))
	}
	// LCA(B, D): D ⊑ B, so reflexively B.
	lca = tax.LCA(f.Name("B"), f.Name("D"))
	if len(lca) != 1 || lca[0] != tax.NodeOf(f.Name("B")) {
		t.Errorf("LCA(B,D) = %v", labels(lca))
	}
	// LCA of a concept with itself is itself.
	lca = tax.LCA(f.Name("D"), f.Name("D"))
	if len(lca) != 1 || lca[0] != tax.NodeOf(f.Name("D")) {
		t.Errorf("LCA(D,D) = %v", labels(lca))
	}
	if tax.LCA(f.Name("B"), f.Name("Missing")) != nil {
		t.Error("LCA with missing concept not nil")
	}
}

func TestLCAMultiple(t *testing.T) {
	// X, Y both below {P, Q} (P, Q incomparable): two lowest common
	// ancestors.
	f := dl.NewFactory()
	cs := names(f, "P", "Q", "X", "Y")
	bld := NewBuilder(f)
	bld.AddEdge(cs[0], cs[2])
	bld.AddEdge(cs[1], cs[2])
	bld.AddEdge(cs[0], cs[3])
	bld.AddEdge(cs[1], cs[3])
	tax, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	lca := tax.LCA(cs[2], cs[3])
	if len(lca) != 2 {
		t.Errorf("LCA(X,Y) = %v, want P and Q", labels(lca))
	}
}

func labels(ns []*Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Label()
	}
	return out
}

func TestSummarize(t *testing.T) {
	f := dl.NewFactory()
	cs := names(f, "A", "B", "C", "U")
	bld := NewBuilder(f)
	bld.AddEdge(cs[0], cs[1])
	bld.MarkEquivalent(cs[1], cs[2])
	bld.MarkUnsatisfiable(cs[3])
	tax, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := tax.Summarize()
	if s.Concepts != 4 {
		t.Errorf("Concepts = %d, want 4", s.Concepts)
	}
	if s.Unsatisfiable != 1 {
		t.Errorf("Unsatisfiable = %d, want 1", s.Unsatisfiable)
	}
	if s.Equivalences != 2 { // B and C share a node
		t.Errorf("Equivalences = %d, want 2", s.Equivalences)
	}
	if s.MaxDepth != 2 { // ⊤ → A → B≡C
		t.Errorf("MaxDepth = %d, want 2", s.MaxDepth)
	}
	if s.RootClasses != 1 {
		t.Errorf("RootClasses = %d, want 1", s.RootClasses)
	}
	if !strings.Contains(s.String(), "classes=") {
		t.Error("Summary.String malformed")
	}
}

func TestDOT(t *testing.T) {
	tax, _ := diamond(t)
	dot := tax.DOT()
	if !strings.HasPrefix(dot, "digraph taxonomy {") {
		t.Error("DOT header missing")
	}
	if !strings.Contains(dot, `label="A"`) || !strings.Contains(dot, "->") {
		t.Errorf("DOT content suspicious:\n%s", dot)
	}
	// ⊥ is empty here and must be hidden.
	if strings.Contains(dot, "⊥") {
		t.Error("empty ⊥ rendered")
	}
	// Deterministic output.
	if tax.DOT() != dot {
		t.Error("DOT not deterministic")
	}
}

func TestDOTWithUnsat(t *testing.T) {
	f := dl.NewFactory()
	cs := names(f, "A", "U")
	bld := NewBuilder(f)
	bld.AddConcept(cs[0])
	bld.MarkUnsatisfiable(cs[1])
	tax, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tax.DOT(), "U") {
		t.Error("unsatisfiable concept not rendered in ⊥ node")
	}
}
