package taxonomy

import (
	"fmt"
	"sort"
	"strings"

	"parowl/internal/dl"
)

// Diff describes the differences between two taxonomies over the shared
// concept vocabulary (compared by concept name). It is the regression
// primitive ontology pipelines use to review the effect of axiom changes.
type Diff struct {
	// AddedSubsumptions are name pairs (sub, sup) entailed by the new
	// taxonomy but not the old (strict, transitive).
	AddedSubsumptions [][2]string
	// RemovedSubsumptions are entailed by the old but not the new.
	RemovedSubsumptions [][2]string
	// NewlyUnsatisfiable / NoLongerUnsatisfiable track ⊥ membership.
	NewlyUnsatisfiable    []string
	NoLongerUnsatisfiable []string
	// OnlyInOld / OnlyInNew are concepts present in one side only.
	OnlyInOld, OnlyInNew []string
}

// Empty reports whether the two taxonomies agree completely.
func (d *Diff) Empty() bool {
	return len(d.AddedSubsumptions) == 0 && len(d.RemovedSubsumptions) == 0 &&
		len(d.NewlyUnsatisfiable) == 0 && len(d.NoLongerUnsatisfiable) == 0 &&
		len(d.OnlyInOld) == 0 && len(d.OnlyInNew) == 0
}

// String renders a compact human-readable report.
func (d *Diff) String() string {
	if d.Empty() {
		return "taxonomies are identical\n"
	}
	var b strings.Builder
	section := func(title string, items []string) {
		if len(items) == 0 {
			return
		}
		fmt.Fprintf(&b, "%s (%d):\n", title, len(items))
		for _, it := range items {
			fmt.Fprintf(&b, "  %s\n", it)
		}
	}
	pairSection := func(title string, pairs [][2]string) {
		if len(pairs) == 0 {
			return
		}
		fmt.Fprintf(&b, "%s (%d):\n", title, len(pairs))
		for _, p := range pairs {
			fmt.Fprintf(&b, "  %s ⊑ %s\n", p[0], p[1])
		}
	}
	pairSection("added subsumptions", d.AddedSubsumptions)
	pairSection("removed subsumptions", d.RemovedSubsumptions)
	section("newly unsatisfiable", d.NewlyUnsatisfiable)
	section("no longer unsatisfiable", d.NoLongerUnsatisfiable)
	section("only in old", d.OnlyInOld)
	section("only in new", d.OnlyInNew)
	return b.String()
}

// Compare computes the Diff from old to new.
func Compare(old, new *Taxonomy) *Diff {
	d := &Diff{}
	oldC := conceptsByName(old)
	newC := conceptsByName(new)
	var shared []string
	for name := range oldC {
		if _, ok := newC[name]; ok {
			shared = append(shared, name)
		} else {
			d.OnlyInOld = append(d.OnlyInOld, name)
		}
	}
	for name := range newC {
		if _, ok := oldC[name]; !ok {
			d.OnlyInNew = append(d.OnlyInNew, name)
		}
	}
	sort.Strings(shared)
	sort.Strings(d.OnlyInOld)
	sort.Strings(d.OnlyInNew)

	// Unsatisfiability changes.
	for _, name := range shared {
		ou := old.NodeOf(oldC[name]) == old.Bottom()
		nu := new.NodeOf(newC[name]) == new.Bottom()
		switch {
		case !ou && nu:
			d.NewlyUnsatisfiable = append(d.NewlyUnsatisfiable, name)
		case ou && !nu:
			d.NoLongerUnsatisfiable = append(d.NoLongerUnsatisfiable, name)
		}
	}

	// Entailed strict subsumptions over the shared vocabulary. Ancestor
	// sets keep this O(shared · edges) instead of O(shared²) probes.
	oldUp := entailedSubsumers(old, oldC, shared)
	newUp := entailedSubsumers(new, newC, shared)
	for _, sub := range shared {
		o, n := oldUp[sub], newUp[sub]
		for sup := range n {
			if !o[sup] {
				d.AddedSubsumptions = append(d.AddedSubsumptions, [2]string{sub, sup})
			}
		}
		for sup := range o {
			if !n[sup] {
				d.RemovedSubsumptions = append(d.RemovedSubsumptions, [2]string{sub, sup})
			}
		}
	}
	sortPairs(d.AddedSubsumptions)
	sortPairs(d.RemovedSubsumptions)
	return d
}

func sortPairs(ps [][2]string) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

func conceptsByName(t *Taxonomy) map[string]*dl.Concept {
	out := map[string]*dl.Concept{}
	for _, n := range t.Nodes() {
		for _, c := range n.Concepts {
			if c.Op == dl.OpName {
				out[c.Name] = c
			}
		}
	}
	return out
}

// entailedSubsumers maps each shared concept name to the set of shared
// names it is strictly or equivalently below (excluding itself).
func entailedSubsumers(t *Taxonomy, byName map[string]*dl.Concept, shared []string) map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(shared))
	for _, name := range shared {
		c := byName[name]
		set := map[string]bool{}
		node := t.NodeOf(c)
		if node == t.Bottom() {
			// Unsatisfiable: below everything; recorded separately, and
			// listing every pair would drown the report.
			out[name] = set
			continue
		}
		for _, eq := range node.Concepts {
			if eq.Op == dl.OpName && eq.Name != name {
				set[eq.Name] = true
			}
		}
		for _, anc := range t.Ancestors(c) {
			for _, ac := range anc.Concepts {
				if ac.Op == dl.OpName {
					set[ac.Name] = true
				}
			}
		}
		out[name] = set
	}
	return out
}
