package taxonomy_test

// External-package equivalence suite: classify scaled paper corpora with
// the real pipeline (core + tableau; this file lives outside package
// taxonomy so importing core is not a cycle), then check every query —
// Subsumes/IsAncestor/Ancestors/Descendants/Equivalents/LCA/Depth — gives
// identical answers on the pointer-DAG path and the compiled bit-matrix
// kernel. Runs under -race via scripts/verify.sh.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"parowl/internal/core"
	"parowl/internal/dl"
	"parowl/internal/ontogen"
	"parowl/internal/tableau"
	"parowl/internal/taxonomy"
)

func labels(nodes []*taxonomy.Node) string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Label()
	}
	sort.Strings(out)
	return fmt.Sprint(out)
}

func conceptLabels(cs []*dl.Concept) string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	sort.Strings(out)
	return fmt.Sprint(out)
}

func TestKernelEquivalenceOntogen(t *testing.T) {
	if testing.Short() {
		t.Skip("ontogen corpora are slow under -short")
	}
	corpora := []struct {
		profile string
		scale   int
	}{
		{"actpathway.obo", 60},
		{"EHDAA2", 25},
		{"rnao_functional", 12},
	}
	for _, c := range corpora {
		c := c
		t.Run(c.profile, func(t *testing.T) {
			p, ok := ontogen.ByName(c.profile)
			if !ok {
				t.Fatalf("profile %q not found", c.profile)
			}
			tb, err := ontogen.Mini(p, c.scale).Generate(7)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			res, err := core.Classify(tb, core.Options{
				Reasoner: tableau.New(tb, tableau.Options{}),
				Workers:  4, ELPrepass: true, ModelFilter: true,
			})
			if err != nil {
				t.Fatalf("classify: %v", err)
			}
			tax := res.Taxonomy
			named := tb.NamedConcepts()
			rng := rand.New(rand.NewSource(13))
			pairs := make([][2]*dl.Concept, 200)
			for i := range pairs {
				pairs[i] = [2]*dl.Concept{named[rng.Intn(len(named))], named[rng.Intn(len(named))]}
			}
			probe := named
			if len(probe) > 150 {
				probe = probe[:150]
			}

			type answers struct {
				isAnc  []bool
				lca    []string
				anc    []string
				desc   []string
				equiv  []string
				depths []int
			}
			collect := func() answers {
				var a answers
				for _, pr := range pairs {
					a.isAnc = append(a.isAnc, tax.IsAncestor(pr[0], pr[1]))
					a.lca = append(a.lca, labels(tax.LCA(pr[0], pr[1])))
				}
				for _, cpt := range probe {
					a.anc = append(a.anc, labels(tax.Ancestors(cpt)))
					a.desc = append(a.desc, labels(tax.Descendants(cpt)))
					a.equiv = append(a.equiv, conceptLabels(tax.Equivalents(cpt)))
					a.depths = append(a.depths, tax.Depth(cpt))
				}
				return a
			}
			want := collect()
			if tax.Kernel() != nil {
				t.Fatal("kernel attached before CompileKernel")
			}
			k := tax.CompileKernel(4)
			got := collect()
			for i := range pairs {
				if want.isAnc[i] != got.isAnc[i] {
					t.Fatalf("IsAncestor(%v) kernel=%v dag=%v", pairs[i], got.isAnc[i], want.isAnc[i])
				}
				if want.lca[i] != got.lca[i] {
					t.Fatalf("LCA(%v) kernel=%s dag=%s", pairs[i], got.lca[i], want.lca[i])
				}
				// Subsumes has no DAG twin method; cross-check against the
				// definition: same node or strict ancestry.
				def := tax.NodeOf(pairs[i][0]) == tax.NodeOf(pairs[i][1]) || want.isAnc[i]
				if k.Subsumes(pairs[i][0], pairs[i][1]) != def {
					t.Fatalf("Subsumes(%v) disagrees with definition", pairs[i])
				}
			}
			for i, cpt := range probe {
				if want.anc[i] != got.anc[i] {
					t.Fatalf("Ancestors(%s) differ:\nkernel=%s\ndag=%s", cpt, got.anc[i], want.anc[i])
				}
				if want.desc[i] != got.desc[i] {
					t.Fatalf("Descendants(%s) differ:\nkernel=%s\ndag=%s", cpt, got.desc[i], want.desc[i])
				}
				if want.equiv[i] != got.equiv[i] {
					t.Fatalf("Equivalents(%s) differ", cpt)
				}
				if want.depths[i] != got.depths[i] {
					t.Fatalf("Depth(%s) kernel=%d dag=%d", cpt, got.depths[i], want.depths[i])
				}
			}
		})
	}
}
