package taxonomy

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"parowl/internal/dl"
)

// randomTaxonomy builds a random DAG taxonomy: edges only from lower to
// higher index among the first m concepts (guaranteeing acyclicity); the
// edge-free tail block supplies equivalences and unsatisfiable concepts,
// so merging a tail concept into any class can never create a cycle.
func randomTaxonomy(rng *rand.Rand) (*Taxonomy, *dl.Factory, []*dl.Concept) {
	f := dl.NewFactory()
	n := 8 + rng.Intn(48)
	m := n - n/6
	cs := make([]*dl.Concept, n)
	for i := range cs {
		cs[i] = f.Name(fmt.Sprintf("C%03d", i))
	}
	b := NewBuilder(f)
	for _, c := range cs {
		b.AddConcept(c)
	}
	for j := 1; j < m; j++ {
		for i := 0; i < j; i++ {
			if rng.Float64() < 2.0/float64(j) {
				b.AddEdge(cs[i], cs[j])
			}
		}
	}
	for i := m; i < n; i++ {
		if rng.Intn(3) == 0 {
			b.MarkUnsatisfiable(cs[i])
		} else {
			b.MarkEquivalent(cs[i], cs[rng.Intn(m)])
		}
	}
	tax, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("random taxonomy build failed: %v", err))
	}
	return tax, f, cs
}

func labelSet(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Label()
	}
	sort.Strings(out)
	return out
}

// queryAnswers records every query result over a concept universe so the
// map-based and kernel paths can be compared answer-for-answer.
type queryAnswers struct {
	isAnc, subsumes   map[[2]int]bool
	ancs, descs, lcas map[string][]string
	equivs            map[int][]string
	depths            map[int]int
}

func collectAnswers(tax *Taxonomy, cs []*dl.Concept, pairs [][2]int) *queryAnswers {
	a := &queryAnswers{
		isAnc:    map[[2]int]bool{},
		subsumes: map[[2]int]bool{},
		ancs:     map[string][]string{},
		descs:    map[string][]string{},
		lcas:     map[string][]string{},
		equivs:   map[int][]string{},
		depths:   map[int]int{},
	}
	k := tax.Kernel()
	for _, p := range pairs {
		x, y := cs[p[0]], cs[p[1]]
		a.isAnc[p] = tax.IsAncestor(x, y)
		if k != nil {
			a.subsumes[p] = k.Subsumes(x, y)
		} else {
			a.subsumes[p] = tax.NodeOf(x) == tax.NodeOf(y) || tax.IsAncestor(x, y)
		}
		a.lcas[fmt.Sprint(p)] = labelSet(tax.LCA(x, y))
	}
	for i, c := range cs {
		a.ancs[c.Name] = labelSet(tax.Ancestors(c))
		a.descs[c.Name] = labelSet(tax.Descendants(c))
		a.depths[i] = tax.Depth(c)
		eq := append([]string(nil), conceptNames(tax.Equivalents(c))...)
		sort.Strings(eq)
		a.equivs[i] = eq
	}
	return a
}

func conceptNames(cs []*dl.Concept) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = conceptName(c)
	}
	return out
}

func diffAnswers(t *testing.T, trial int, want, got *queryAnswers) {
	t.Helper()
	for p, v := range want.isAnc {
		if got.isAnc[p] != v {
			t.Fatalf("trial %d: IsAncestor%v = %v, want %v", trial, p, got.isAnc[p], v)
		}
	}
	for p, v := range want.subsumes {
		if got.subsumes[p] != v {
			t.Fatalf("trial %d: Subsumes%v = %v, want %v", trial, p, got.subsumes[p], v)
		}
	}
	for key, v := range want.lcas {
		if fmt.Sprint(got.lcas[key]) != fmt.Sprint(v) {
			t.Fatalf("trial %d: LCA %s = %v, want %v", trial, key, got.lcas[key], v)
		}
	}
	for c, v := range want.ancs {
		if fmt.Sprint(got.ancs[c]) != fmt.Sprint(v) {
			t.Fatalf("trial %d: Ancestors(%s) = %v, want %v", trial, c, got.ancs[c], v)
		}
	}
	for c, v := range want.descs {
		if fmt.Sprint(got.descs[c]) != fmt.Sprint(v) {
			t.Fatalf("trial %d: Descendants(%s) = %v, want %v", trial, c, got.descs[c], v)
		}
	}
	for i, v := range want.depths {
		if got.depths[i] != v {
			t.Fatalf("trial %d: Depth(#%d) = %d, want %d", trial, i, got.depths[i], v)
		}
	}
	for i, v := range want.equivs {
		if fmt.Sprint(got.equivs[i]) != fmt.Sprint(v) {
			t.Fatalf("trial %d: Equivalents(#%d) = %v, want %v", trial, i, got.equivs[i], v)
		}
	}
}

func randomPairs(rng *rand.Rand, n, count int) [][2]int {
	pairs := make([][2]int, count)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	return pairs
}

// TestKernelEquivalenceRandom checks all six query operations agree
// between the map-based pointer-DAG path and the compiled kernel on
// random taxonomies (satellite: randomized kernel-vs-DAG suite).
func TestKernelEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 40; trial++ {
		tax, _, cs := randomTaxonomy(rng)
		pairs := randomPairs(rng, len(cs), 40)
		want := collectAnswers(tax, cs, pairs) // kernel not yet compiled: map path
		k := tax.CompileKernel(1 + rng.Intn(4))
		if k == nil || tax.Kernel() != k {
			t.Fatal("CompileKernel did not attach")
		}
		got := collectAnswers(tax, cs, pairs) // now delegates to the kernel
		diffAnswers(t, trial, want, got)
	}
}

// TestKernelDepthMatchesSummarize checks the shared-pass depth table
// agrees with per-concept Depth and that Summarize's MaxDepth is the
// maximum over nodes (satellite: Summarize single-pass depths).
func TestKernelDepthMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		tax, _, _ := randomTaxonomy(rng)
		depths := tax.allDepths()
		maxDepth := 0
		for i, n := range tax.nodes {
			if d := tax.Depth(n.Canonical()); d != depths[i] {
				t.Fatalf("trial %d: allDepths[%d] = %d, Depth = %d", trial, i, depths[i], d)
			}
			if n != tax.bottom && depths[i] > maxDepth {
				maxDepth = depths[i]
			}
		}
		if s := tax.Summarize(); s.MaxDepth != maxDepth {
			t.Fatalf("trial %d: Summarize MaxDepth = %d, want %d", trial, s.MaxDepth, maxDepth)
		}
	}
}

// TestKernelRoundTrip serializes a kernel, decodes it, adopts it into an
// identically-rebuilt taxonomy and checks every answer is identical.
func TestKernelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		seed := rng.Int63()
		tax1, _, cs1 := randomTaxonomy(rand.New(rand.NewSource(seed)))
		k1 := tax1.CompileKernel(2)
		data := k1.AppendBinary(nil)

		dec, rest, err := DecodeKernel(data)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(rest) != 0 {
			t.Fatalf("trial %d: %d trailing bytes", trial, len(rest))
		}
		// Rebuild the same taxonomy from the same seed in a fresh factory:
		// the kernel must bind by fingerprint, not pointer identity.
		tax2, _, cs2 := randomTaxonomy(rand.New(rand.NewSource(seed)))
		if err := tax2.AdoptKernel(dec); err != nil {
			t.Fatalf("trial %d: adopt: %v", trial, err)
		}
		if tax2.Kernel() != dec {
			t.Fatalf("trial %d: kernel not attached", trial)
		}
		pairs := randomPairs(rng, len(cs1), 30)
		want := collectAnswers(tax1, cs1, pairs)
		got := collectAnswers(tax2, cs2, pairs)
		diffAnswers(t, trial, want, got)
	}
}

func TestKernelFileRoundTrip(t *testing.T) {
	tax, _, cs := randomTaxonomy(rand.New(rand.NewSource(5)))
	k := tax.CompileKernel(0)
	path := filepath.Join(t.TempDir(), "tax.kernel")
	if err := WriteKernelFile(path, k); err != nil {
		t.Fatal(err)
	}
	dec, err := ReadKernelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumClasses() != k.NumClasses() || dec.TaxonomyFingerprint() != k.TaxonomyFingerprint() {
		t.Fatalf("decoded kernel header mismatch")
	}
	tax2, _, cs2 := randomTaxonomy(rand.New(rand.NewSource(5)))
	if err := tax2.AdoptKernel(dec); err != nil {
		t.Fatal(err)
	}
	for i, c := range cs2 {
		if got, want := tax2.Depth(c), tax.Depth(cs[i]); got != want {
			t.Fatalf("Depth(%s) = %d, want %d", c.Name, got, want)
		}
	}
}

// TestAdoptKernelRejectsMismatch checks a kernel cannot be adopted into a
// structurally different taxonomy.
func TestAdoptKernelRejectsMismatch(t *testing.T) {
	tax1, _, _ := randomTaxonomy(rand.New(rand.NewSource(1)))
	tax2, _, _ := randomTaxonomy(rand.New(rand.NewSource(2)))
	data := Compile(tax1).AppendBinary(nil)
	dec, _, err := DecodeKernel(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := tax2.AdoptKernel(dec); !errors.Is(err, ErrBadKernel) {
		t.Fatalf("adopt into mismatched taxonomy: err = %v, want ErrBadKernel", err)
	}
	if tax2.Kernel() != nil {
		t.Fatal("mismatched kernel was attached")
	}
	if err := tax2.AdoptKernel(nil); !errors.Is(err, ErrBadKernel) {
		t.Fatalf("adopt nil: err = %v, want ErrBadKernel", err)
	}
}

// TestKernelDecodeCorruption flips every byte of a valid frame and
// truncates it at every length: decode must always fail with ErrBadKernel
// (the trailing CRC guards the whole frame) and never panic.
func TestKernelDecodeCorruption(t *testing.T) {
	tax, _, _ := randomTaxonomy(rand.New(rand.NewSource(9)))
	data := Compile(tax).AppendBinary(nil)
	if _, _, err := DecodeKernel(data); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, _, err := DecodeKernel(mut); err == nil {
			t.Fatalf("byte %d flipped: decode succeeded", i)
		} else if !errors.Is(err, ErrBadKernel) {
			t.Fatalf("byte %d flipped: err = %v, want ErrBadKernel", i, err)
		}
	}
	for cut := 0; cut < len(data); cut += 7 {
		if _, _, err := DecodeKernel(data[:cut]); !errors.Is(err, ErrBadKernel) {
			t.Fatalf("truncated at %d: err = %v, want ErrBadKernel", cut, err)
		}
	}
}

// FuzzKernelDecode checks DecodeKernel never panics and classifies every
// failure as ErrBadKernel on arbitrary input.
func FuzzKernelDecode(f *testing.F) {
	tax, _, _ := randomTaxonomy(rand.New(rand.NewSource(3)))
	valid := Compile(tax).AppendBinary(nil)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(kernelMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		k, rest, err := DecodeKernel(data)
		if err != nil {
			if !errors.Is(err, ErrBadKernel) {
				t.Fatalf("err = %v, want ErrBadKernel", err)
			}
			return
		}
		if k == nil || len(rest) > len(data) {
			t.Fatal("successful decode returned bad values")
		}
	})
}

func BenchmarkKernelCompile(b *testing.B) {
	tax, _, _ := randomTaxonomy(rand.New(rand.NewSource(42)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CompileWorkers(tax, 4)
	}
}
