package taxonomy

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"parowl/internal/dl"
)

func names(f *dl.Factory, ss ...string) []*dl.Concept {
	out := make([]*dl.Concept, len(ss))
	for i, s := range ss {
		out[i] = f.Name(s)
	}
	return out
}

func TestBuilderSimpleTree(t *testing.T) {
	f := dl.NewFactory()
	cs := names(f, "A", "B", "C", "D")
	a, b, c, d := cs[0], cs[1], cs[2], cs[3]
	bld := NewBuilder(f)
	bld.AddEdge(a, b)
	bld.AddEdge(a, c)
	bld.AddEdge(c, d)
	tax, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tax.NodeOf(a).Parents()[0] != tax.Top() {
		t.Error("A not under ⊤")
	}
	if !tax.IsAncestor(a, d) {
		t.Error("A not ancestor of D")
	}
	if tax.IsAncestor(b, d) {
		t.Error("B wrongly ancestor of D")
	}
	if got := len(tax.NodeOf(a).Children()); got != 2 {
		t.Errorf("A has %d children, want 2", got)
	}
	// D is a leaf: its only child is ⊥.
	if kids := tax.NodeOf(d).Children(); len(kids) != 1 || kids[0] != tax.Bottom() {
		t.Errorf("leaf D children = %v", kids)
	}
}

func TestBuilderEquivalence(t *testing.T) {
	f := dl.NewFactory()
	cs := names(f, "A", "B", "C")
	a, b, c := cs[0], cs[1], cs[2]
	bld := NewBuilder(f)
	bld.MarkEquivalent(a, b)
	bld.AddEdge(a, c)
	tax, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tax.NodeOf(a) != tax.NodeOf(b) {
		t.Error("A and B in different nodes")
	}
	if got := tax.NodeOf(a).Label(); got != "A ≡ B" {
		t.Errorf("Label = %q", got)
	}
	if eq := tax.Equivalents(b); len(eq) != 2 {
		t.Errorf("Equivalents(B) = %v", eq)
	}
}

func TestBuilderUnsatisfiable(t *testing.T) {
	f := dl.NewFactory()
	cs := names(f, "A", "U")
	a, u := cs[0], cs[1]
	bld := NewBuilder(f)
	bld.AddConcept(a)
	bld.MarkUnsatisfiable(u)
	tax, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tax.NodeOf(u) != tax.Bottom() {
		t.Error("U not in ⊥ node")
	}
	if !tax.IsAncestor(a, u) {
		t.Error("satisfiable A should be an ancestor of the ⊥ class")
	}
}

func TestBuilderEquivalentToTop(t *testing.T) {
	f := dl.NewFactory()
	cs := names(f, "A", "B")
	a, b := cs[0], cs[1]
	bld := NewBuilder(f)
	bld.MarkEquivalent(a, f.Top())
	bld.AddEdge(a, b)
	tax, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tax.NodeOf(a) != tax.Top() {
		t.Error("A not merged with ⊤")
	}
	if tax.NodeOf(b).Parents()[0] != tax.Top() {
		t.Error("B not under ⊤")
	}
}

func TestCycleRejected(t *testing.T) {
	f := dl.NewFactory()
	cs := names(f, "A", "B")
	a, b := cs[0], cs[1]
	bld := NewBuilder(f)
	bld.AddEdge(a, b)
	bld.AddEdge(b, a)
	if _, err := bld.Build(); err == nil {
		t.Fatal("cyclic edges accepted")
	}
}

func TestInconsistentTopBottomRejected(t *testing.T) {
	f := dl.NewFactory()
	bld := NewBuilder(f)
	bld.MarkEquivalent(f.Top(), f.Bottom())
	if _, err := bld.Build(); err == nil {
		t.Fatal("⊤ ≡ ⊥ accepted")
	}
}

func TestRenderDeterministic(t *testing.T) {
	f := dl.NewFactory()
	cs := names(f, "A", "B", "C")
	bld := NewBuilder(f)
	bld.AddEdge(cs[0], cs[1])
	bld.AddEdge(cs[0], cs[2])
	tax, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	r1 := tax.Render()
	if !strings.Contains(r1, "⊤") || !strings.Contains(r1, "  B") {
		t.Errorf("Render = %q", r1)
	}
	if r2 := tax.Render(); r1 != r2 {
		t.Error("Render not deterministic")
	}
}

func TestFromSubsumersDiamond(t *testing.T) {
	f := dl.NewFactory()
	cs := names(f, "A", "B", "C", "D")
	a, b, c, d := cs[0], cs[1], cs[2], cs[3]
	// D ⊑ B ⊑ A, D ⊑ C ⊑ A (diamond); edges must be the reduction.
	subs := map[*dl.Concept]map[*dl.Concept]bool{
		a: {a: true},
		b: {b: true, a: true},
		c: {c: true, a: true},
		d: {d: true, b: true, c: true, a: true},
	}
	tax, err := FromSubsumers(f, subs, nil)
	if err != nil {
		t.Fatal(err)
	}
	dn := tax.NodeOf(d)
	if len(dn.Parents()) != 2 {
		t.Fatalf("D parents = %d, want 2 (B and C, not A)", len(dn.Parents()))
	}
	for _, p := range dn.Parents() {
		if p == tax.NodeOf(a) {
			t.Error("transitive edge A→D not reduced")
		}
	}
}

func TestFromSubsumersEquivalence(t *testing.T) {
	f := dl.NewFactory()
	cs := names(f, "A", "B", "C")
	a, b, c := cs[0], cs[1], cs[2]
	subs := map[*dl.Concept]map[*dl.Concept]bool{
		a: {a: true, b: true},
		b: {b: true, a: true},
		c: {c: true, a: true, b: true},
	}
	tax, err := FromSubsumers(f, subs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tax.NodeOf(a) != tax.NodeOf(b) {
		t.Error("mutual subsumption did not merge")
	}
	if got := len(tax.NodeOf(c).Parents()); got != 1 {
		t.Errorf("C parents = %d, want 1", got)
	}
}

// TestQuickFromSubsumersInvariants checks on random DAG closures that
// FromSubsumers produces a taxonomy whose reachability matches the input
// subsumer sets exactly (soundness + completeness of the reduction) and
// whose edges contain no transitive shortcuts.
func TestQuickFromSubsumersInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := dl.NewFactory()
		n := 2 + rng.Intn(8)
		cs := make([]*dl.Concept, n)
		for i := range cs {
			cs[i] = f.Name(string(rune('A' + i)))
		}
		// Random DAG: i can point only to j < i; closure by DFS.
		adj := make([][]int, n)
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if rng.Intn(3) == 0 {
					adj[i] = append(adj[i], j)
				}
			}
		}
		closure := make([]map[int]bool, n)
		var close func(i int) map[int]bool
		close = func(i int) map[int]bool {
			if closure[i] != nil {
				return closure[i]
			}
			m := map[int]bool{i: true}
			closure[i] = m
			for _, j := range adj[i] {
				for k := range close(j) {
					m[k] = true
				}
			}
			return m
		}
		subs := map[*dl.Concept]map[*dl.Concept]bool{}
		for i := range cs {
			m := map[*dl.Concept]bool{}
			for j := range close(i) {
				m[cs[j]] = true
			}
			subs[cs[i]] = m
		}
		tax, err := FromSubsumers(f, subs, nil)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for i := range cs {
			for j := range cs {
				if i == j {
					continue
				}
				want := subs[cs[i]][cs[j]]
				got := tax.IsAncestor(cs[j], cs[i]) || tax.NodeOf(cs[i]) == tax.NodeOf(cs[j])
				if got != want {
					t.Logf("seed %d: %v ⊑ %v: got %v want %v", seed, cs[i], cs[j], got, want)
					return false
				}
			}
		}
		// No direct edge may be implied by another path.
		for _, nd := range tax.Nodes() {
			for _, ch := range nd.Children() {
				if ch == tax.Bottom() {
					continue
				}
				for _, mid := range nd.Children() {
					if mid == ch || mid == tax.Bottom() {
						continue
					}
					if tax.IsAncestor(mid.Canonical(), ch.Canonical()) {
						t.Logf("seed %d: transitive edge %s→%s via %s", seed, nd.Label(), ch.Label(), mid.Label())
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintEquality(t *testing.T) {
	f := dl.NewFactory()
	build := func() *Taxonomy {
		cs := names(f, "A", "B", "C")
		bld := NewBuilder(f)
		bld.AddEdge(cs[0], cs[1])
		bld.AddEdge(cs[1], cs[2])
		tax, err := bld.Build()
		if err != nil {
			t.Fatal(err)
		}
		return tax
	}
	t1, t2 := build(), build()
	if !t1.Equal(t2) {
		t.Error("identical taxonomies not Equal")
	}
}
