package taxonomy

import (
	"fmt"
	"sort"

	"parowl/internal/dl"
)

// Builder assembles a Taxonomy from equivalences and direct edges. The
// classifier's conquer phase feeds it the partial hierarchies H_X; tests
// and baselines feed it full subsumer sets via FromSubsumers.
type Builder struct {
	factory  *dl.Factory
	concepts []*dl.Concept
	index    map[*dl.Concept]int
	parent   []int // union-find
	unsat    map[*dl.Concept]bool
	edges    map[[2]*dl.Concept]bool // parent, child (as given)
}

// NewBuilder returns a Builder over the given factory's ⊤/⊥ plus the
// named concepts added later.
func NewBuilder(f *dl.Factory) *Builder {
	b := &Builder{
		factory: f,
		index:   make(map[*dl.Concept]int),
		unsat:   make(map[*dl.Concept]bool),
		edges:   make(map[[2]*dl.Concept]bool),
	}
	b.AddConcept(f.Top())
	b.AddConcept(f.Bottom())
	return b
}

// AddConcept registers c as a taxonomy member. It is idempotent.
func (b *Builder) AddConcept(c *dl.Concept) {
	if _, ok := b.index[c]; ok {
		return
	}
	b.index[c] = len(b.concepts)
	b.concepts = append(b.concepts, c)
	b.parent = append(b.parent, len(b.parent))
}

func (b *Builder) find(i int) int {
	for b.parent[i] != i {
		b.parent[i] = b.parent[b.parent[i]]
		i = b.parent[i]
	}
	return i
}

// MarkEquivalent merges the equivalence classes of x and y.
func (b *Builder) MarkEquivalent(x, y *dl.Concept) {
	b.AddConcept(x)
	b.AddConcept(y)
	rx, ry := b.find(b.index[x]), b.find(b.index[y])
	if rx != ry {
		b.parent[rx] = ry
	}
}

// MarkUnsatisfiable places c in the ⊥ class.
func (b *Builder) MarkUnsatisfiable(c *dl.Concept) {
	b.AddConcept(c)
	b.unsat[c] = true
	b.MarkEquivalent(c, b.factory.Bottom())
}

// AddEdge records that parent directly subsumes child.
func (b *Builder) AddEdge(parent, child *dl.Concept) {
	b.AddConcept(parent)
	b.AddConcept(child)
	b.edges[[2]*dl.Concept{parent, child}] = true
}

// Build produces the immutable Taxonomy: equivalence classes become
// nodes, edges are lifted to class representatives and deduplicated,
// parentless satisfiable classes attach below ⊤, and the ⊥ node attaches
// below the leaves when it holds unsatisfiable concepts.
func (b *Builder) Build() (*Taxonomy, error) {
	f := b.factory
	classNode := make(map[int]*Node) // union-find root -> node
	t := &Taxonomy{byConcept: make(map[*dl.Concept]*Node)}
	for i, c := range b.concepts {
		root := b.find(i)
		n := classNode[root]
		if n == nil {
			n = &Node{}
			classNode[root] = n
		}
		n.Concepts = append(n.Concepts, c)
		t.byConcept[c] = n
	}
	t.top = t.byConcept[f.Top()]
	t.bottom = t.byConcept[f.Bottom()]
	if t.top == t.bottom {
		return nil, fmt.Errorf("taxonomy: ⊤ and ⊥ collapsed (inconsistent input)")
	}
	for _, n := range classNode {
		sort.Slice(n.Concepts, func(i, j int) bool {
			return classLess(n.Concepts[i], n.Concepts[j])
		})
	}
	// Lift edges to nodes.
	edgeSet := make(map[[2]*Node]bool)
	for e := range b.edges {
		p, c := t.byConcept[e[0]], t.byConcept[e[1]]
		if p == c || c == t.bottom || p == t.bottom {
			continue
		}
		edgeSet[[2]*Node{p, c}] = true
	}
	for e := range edgeSet {
		e[0].children = append(e[0].children, e[1])
		e[1].parents = append(e[1].parents, e[0])
	}
	// Attach parentless classes under ⊤ and wire ⊥ under the leaves.
	var leaves []*Node
	for _, n := range classNode {
		if n == t.top || n == t.bottom {
			continue
		}
		if len(n.parents) == 0 {
			n.parents = append(n.parents, t.top)
			t.top.children = append(t.top.children, n)
		}
		if len(n.children) == 0 {
			leaves = append(leaves, n)
		}
	}
	if len(leaves) == 0 {
		leaves = []*Node{t.top}
	}
	for _, l := range leaves {
		l.children = append(l.children, t.bottom)
		t.bottom.parents = append(t.bottom.parents, l)
	}
	// Deterministic ordering everywhere.
	for _, n := range classNode {
		sortNodes(n.parents)
		sortNodes(n.children)
	}
	t.nodes = append(t.nodes, t.top)
	var inner []*Node
	for _, n := range classNode {
		if n != t.top && n != t.bottom {
			inner = append(inner, n)
		}
	}
	sortNodes(inner)
	t.nodes = append(t.nodes, inner...)
	t.nodes = append(t.nodes, t.bottom)
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// classLess orders ⊤ and ⊥ first within a class so Canonical is stable.
func classLess(a, b *dl.Concept) bool {
	ra, rb := rank(a), rank(b)
	if ra != rb {
		return ra < rb
	}
	return a.Name < b.Name
}

func rank(c *dl.Concept) int {
	switch c.Op {
	case dl.OpTop, dl.OpBottom:
		return 0
	default:
		return 1
	}
}

func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].Label() < ns[j].Label() })
}

// validate checks the taxonomy is a DAG rooted at ⊤.
func (t *Taxonomy) validate() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*Node]int)
	var visit func(n *Node) error
	visit = func(n *Node) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("taxonomy: cycle through %s", n.Label())
		case black:
			return nil
		}
		color[n] = gray
		for _, c := range n.children {
			if err := visit(c); err != nil {
				return err
			}
		}
		color[n] = black
		return nil
	}
	if err := visit(t.top); err != nil {
		return err
	}
	for _, n := range t.nodes {
		if color[n] != black {
			return fmt.Errorf("taxonomy: node %s unreachable from ⊤", n.Label())
		}
	}
	return nil
}

// FromSubsumers builds the taxonomy given, for every named concept, its
// full set of named subsumers (reflexive). Concepts marked unsatisfiable
// go to ⊥. This is the reference construction used by the sequential
// baselines and by tests as ground truth: mutual subsumption becomes
// equivalence, and direct edges are computed by transitive reduction.
func FromSubsumers(f *dl.Factory, subsumers map[*dl.Concept]map[*dl.Concept]bool, unsat map[*dl.Concept]bool) (*Taxonomy, error) {
	b := NewBuilder(f)
	var sat []*dl.Concept
	for c := range subsumers {
		b.AddConcept(c)
		if unsat[c] {
			b.MarkUnsatisfiable(c)
		} else {
			sat = append(sat, c)
		}
	}
	sort.Slice(sat, func(i, j int) bool { return sat[i].Name < sat[j].Name })
	// Equivalences: mutual subsumption.
	strict := make(map[*dl.Concept][]*dl.Concept, len(sat)) // strict subsumers
	for _, c := range sat {
		for s := range subsumers[c] {
			if s == c || unsat[s] || s.Op != dl.OpName {
				continue
			}
			if subsumers[s][c] {
				b.MarkEquivalent(c, s)
			} else {
				strict[c] = append(strict[c], s)
			}
		}
	}
	// Direct edges: s is a direct subsumer of c if no other strict
	// subsumer of c is strictly below s.
	for _, c := range sat {
		for _, s := range strict[c] {
			direct := true
			for _, mid := range strict[c] {
				if mid == s || subsumers[mid][s] && subsumers[s][mid] {
					continue
				}
				if subsumers[mid][s] { // mid ⊑ s strictly: s not direct
					direct = false
					break
				}
			}
			if direct {
				b.AddEdge(s, c)
			}
		}
	}
	return b.Build()
}
