package taxonomy

import (
	"strings"
	"testing"

	"parowl/internal/dl"
)

func buildTax(t *testing.T, f *dl.Factory, edges [][2]string, unsat ...string) *Taxonomy {
	t.Helper()
	b := NewBuilder(f)
	for _, e := range edges {
		b.AddEdge(f.Name(e[0]), f.Name(e[1]))
	}
	for _, u := range unsat {
		b.MarkUnsatisfiable(f.Name(u))
	}
	tax, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tax
}

func TestDiffIdentical(t *testing.T) {
	f := dl.NewFactory()
	edges := [][2]string{{"A", "B"}, {"B", "C"}}
	d := Compare(buildTax(t, f, edges), buildTax(t, f, edges))
	if !d.Empty() {
		t.Errorf("diff of identical taxonomies not empty:\n%s", d)
	}
	if !strings.Contains(d.String(), "identical") {
		t.Error("String for empty diff")
	}
}

func TestDiffAddedRemoved(t *testing.T) {
	f := dl.NewFactory()
	old := buildTax(t, f, [][2]string{{"A", "B"}, {"A", "C"}})
	new_ := buildTax(t, f, [][2]string{{"A", "B"}, {"B", "C"}}) // C moved under B
	d := Compare(old, new_)
	// New entails C ⊑ B (was not entailed before).
	foundAdd := false
	for _, p := range d.AddedSubsumptions {
		if p == [2]string{"C", "B"} {
			foundAdd = true
		}
	}
	if !foundAdd {
		t.Errorf("C ⊑ B not reported as added: %+v", d.AddedSubsumptions)
	}
	if len(d.RemovedSubsumptions) != 0 {
		t.Errorf("unexpected removals: %+v", d.RemovedSubsumptions)
	}
	// Reverse direction swaps the report.
	rd := Compare(new_, old)
	if len(rd.RemovedSubsumptions) == 0 {
		t.Error("reverse diff lost the removal")
	}
}

func TestDiffUnsatChanges(t *testing.T) {
	f := dl.NewFactory()
	old := buildTax(t, f, [][2]string{{"A", "B"}})
	new_ := buildTax(t, f, [][2]string{{"A", "B"}}, "B")
	d := Compare(old, new_)
	if len(d.NewlyUnsatisfiable) != 1 || d.NewlyUnsatisfiable[0] != "B" {
		t.Errorf("NewlyUnsatisfiable = %v", d.NewlyUnsatisfiable)
	}
	back := Compare(new_, old)
	if len(back.NoLongerUnsatisfiable) != 1 {
		t.Errorf("NoLongerUnsatisfiable = %v", back.NoLongerUnsatisfiable)
	}
}

func TestDiffVocabulary(t *testing.T) {
	f := dl.NewFactory()
	old := buildTax(t, f, [][2]string{{"A", "B"}})
	new_ := buildTax(t, f, [][2]string{{"A", "C"}})
	d := Compare(old, new_)
	if len(d.OnlyInOld) != 1 || d.OnlyInOld[0] != "B" {
		t.Errorf("OnlyInOld = %v", d.OnlyInOld)
	}
	if len(d.OnlyInNew) != 1 || d.OnlyInNew[0] != "C" {
		t.Errorf("OnlyInNew = %v", d.OnlyInNew)
	}
	if !strings.Contains(d.String(), "only in old") {
		t.Error("report missing vocabulary section")
	}
}

func TestDiffEquivalenceCounts(t *testing.T) {
	f := dl.NewFactory()
	// Old: A and B unrelated; new: A ≡ B.
	old := buildTax(t, f, [][2]string{{"R", "A"}, {"R", "B"}})
	bld := NewBuilder(f)
	bld.AddEdge(f.Name("R"), f.Name("A"))
	bld.MarkEquivalent(f.Name("A"), f.Name("B"))
	new_, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Compare(old, new_)
	// A ⊑ B and B ⊑ A both newly entailed.
	if len(d.AddedSubsumptions) != 2 {
		t.Errorf("AddedSubsumptions = %+v, want the equivalence pair", d.AddedSubsumptions)
	}
}
