// Package obo parses the OBO 1.2 flat-file format used by most of the
// paper's Table IV corpora (WBbt.obo, actpathway.obo, lanogaster.obo, the
// EHDA/EMAP anatomies). The logical content of OBO maps into EL(H+):
//
//	is_a: T                    →  SubClassOf(term, T)
//	relationship: R T          →  SubClassOf(term, ∃R.T)
//	intersection_of: ...       →  EquivalentClasses(term, ⊓ ...)
//	disjoint_from: T           →  DisjointClasses(term, T)
//	[Typedef] is_a             →  SubObjectPropertyOf
//	[Typedef] is_transitive    →  TransitiveObjectProperty
//
// Name/def/synonym/comment/xref tag lines become annotation axioms so the
// paper's axiom-count metrics are reproduced. The package also writes EL
// TBoxes back out as OBO.
package obo

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"parowl/internal/dl"
)

// annotationTags are the per-term tag lines counted as annotation axioms.
var annotationTags = map[string]bool{
	"name": true, "def": true, "comment": true, "synonym": true,
	"xref": true, "subset": true, "created_by": true, "creation_date": true,
	"alt_id": true, "namespace": true,
}

// Parse reads an OBO document into a TBox.
func Parse(r io.Reader, name string) (*dl.TBox, error) {
	tb := dl.NewTBox(name)
	f := tb.Factory

	type stanza struct {
		kind  string // "Term" or "Typedef"
		lines []tagLine
		num   int
	}
	var stanzas []*stanza
	var cur *stanza
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		// Strip trailing OBO comments (\! outside quotes is rare enough
		// to ignore; standard is " ! ").
		if i := strings.Index(line, " !"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]") {
			cur = &stanza{kind: line[1 : len(line)-1], num: lineNo}
			stanzas = append(stanzas, cur)
			continue
		}
		i := strings.Index(line, ":")
		if i < 0 {
			return nil, fmt.Errorf("obo: line %d: malformed tag line %q", lineNo, line)
		}
		tl := tagLine{tag: strings.TrimSpace(line[:i]), value: strings.TrimSpace(line[i+1:]), num: lineNo}
		if cur == nil {
			continue // header block (format-version, ontology, ...)
		}
		cur.lines = append(cur.lines, tl)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obo: read: %w", err)
	}

	for _, st := range stanzas {
		switch st.kind {
		case "Term":
			if err := parseTerm(tb, f, st.lines, st.num); err != nil {
				return nil, err
			}
		case "Typedef":
			if err := parseTypedef(tb, f, st.lines, st.num); err != nil {
				return nil, err
			}
		default:
			// Instance and unknown stanzas are skipped.
		}
	}
	return tb, nil
}

type tagLine struct {
	tag, value string
	num        int
}

func parseTerm(tb *dl.TBox, f *dl.Factory, lines []tagLine, stanzaLine int) error {
	var id string
	for _, l := range lines {
		if l.tag == "id" {
			id = l.value
			break
		}
	}
	if id == "" {
		return fmt.Errorf("obo: line %d: [Term] without id", stanzaLine)
	}
	term := tb.Declare(id)
	tb.DeclarationAxiom(term)
	var intersection []*dl.Concept
	for _, l := range lines {
		switch l.tag {
		case "id":
		case "is_a":
			parent := firstField(l.value)
			if parent == "" {
				return fmt.Errorf("obo: line %d: empty is_a value", l.num)
			}
			tb.SubClassOf(term, tb.Declare(parent))
		case "relationship":
			rel, filler, ok := twoFields(l.value)
			if !ok {
				return fmt.Errorf("obo: line %d: malformed relationship %q", l.num, l.value)
			}
			tb.SubClassOf(term, f.Some(f.Role(rel), tb.Declare(filler)))
		case "intersection_of":
			if rel, filler, ok := twoFields(l.value); ok {
				intersection = append(intersection, f.Some(f.Role(rel), tb.Declare(filler)))
			} else if name := firstField(l.value); name != "" {
				intersection = append(intersection, tb.Declare(name))
			} else {
				return fmt.Errorf("obo: line %d: empty intersection_of value", l.num)
			}
		case "disjoint_from":
			other := firstField(l.value)
			if other == "" {
				return fmt.Errorf("obo: line %d: empty disjoint_from value", l.num)
			}
			tb.DisjointClasses(term, tb.Declare(other))
		case "is_obsolete":
			// Obsolete terms stay declared but carry no further logic.
		default:
			if annotationTags[l.tag] {
				tb.AnnotationAxiom(term)
			}
		}
	}
	if len(intersection) == 1 {
		return fmt.Errorf("obo: line %d: single intersection_of in %s", stanzaLine, id)
	}
	if len(intersection) > 1 {
		tb.EquivalentClasses(term, f.And(intersection...))
	}
	return nil
}

func parseTypedef(tb *dl.TBox, f *dl.Factory, lines []tagLine, stanzaLine int) error {
	var id string
	for _, l := range lines {
		if l.tag == "id" {
			id = l.value
			break
		}
	}
	if id == "" {
		return fmt.Errorf("obo: line %d: [Typedef] without id", stanzaLine)
	}
	role := f.Role(id)
	for _, l := range lines {
		switch l.tag {
		case "is_a":
			sup := firstField(l.value)
			if sup == "" {
				return fmt.Errorf("obo: line %d: empty is_a value", l.num)
			}
			tb.SubObjectPropertyOf(role, f.Role(sup))
		case "is_transitive":
			if strings.EqualFold(l.value, "true") {
				tb.TransitiveObjectProperty(role)
			}
		}
	}
	return nil
}

func firstField(s string) string {
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i]
	}
	return s
}

func twoFields(s string) (string, string, bool) {
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return "", "", false
	}
	return fields[0], fields[1], true
}

// oboSafeName reports whether a name can appear as an OBO identifier:
// non-empty, no whitespace (field separator), no '!' (comment marker) and
// no leading '['.
func oboSafeName(name string) error {
	if name == "" {
		return fmt.Errorf("obo: empty identifier not expressible")
	}
	if strings.ContainsAny(name, " \t!\n\r") || strings.HasPrefix(name, "[") {
		return fmt.Errorf("obo: identifier %q not expressible (whitespace, '!' or '[')", name)
	}
	return nil
}

// Write serializes an EL TBox as an OBO document. Constructs outside the
// OBO-expressible fragment (anything but named SubClassOf, ∃-SubClassOf,
// named-conjunction equivalences, pairwise disjointness and the role
// axioms) yield an error, as do identifiers OBO cannot express.
func Write(w io.Writer, t *dl.TBox) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "format-version: 1.2\nontology: %s\n", t.Name)

	type termInfo struct {
		isA, rel, disjoint []string
		inter              []string
		annotations        int
		declared           bool
	}
	terms := map[string]*termInfo{}
	var order []string
	info := func(name string) *termInfo {
		ti, ok := terms[name]
		if !ok {
			ti = &termInfo{}
			terms[name] = ti
			order = append(order, name)
		}
		return ti
	}
	for _, c := range t.NamedConcepts() {
		if err := oboSafeName(c.Name); err != nil {
			return err
		}
		info(c.Name)
	}
	roleAxioms := map[string][]string{}
	transitive := map[string]bool{}
	var roleOrder []string
	noteRole := func(name string) error {
		if err := oboSafeName(name); err != nil {
			return err
		}
		if _, ok := roleAxioms[name]; !ok {
			roleAxioms[name] = nil
			roleOrder = append(roleOrder, name)
		}
		return nil
	}
	for _, ax := range t.Axioms() {
		switch ax.Kind {
		case dl.AxDeclaration:
			info(ax.Sub.Name).declared = true
		case dl.AxAnnotation:
			info(ax.Sub.Name).annotations++
		case dl.AxSubClassOf:
			ti := info(ax.Sub.Name)
			switch {
			case ax.Sub.Op != dl.OpName:
				return fmt.Errorf("obo: complex left side %v not OBO-expressible", ax.Sub)
			case ax.Sup.Op == dl.OpName:
				ti.isA = append(ti.isA, ax.Sup.Name)
			case ax.Sup.Op == dl.OpSome && ax.Sup.Args[0].Op == dl.OpName:
				if err := noteRole(ax.Sup.Role.Name); err != nil {
					return err
				}
				ti.rel = append(ti.rel, ax.Sup.Role.Name+" "+ax.Sup.Args[0].Name)
			case ax.Sup.Op == dl.OpAnd:
				for _, arg := range ax.Sup.Args {
					if arg.Op != dl.OpName {
						return fmt.Errorf("obo: %v not OBO-expressible", ax.Sup)
					}
					ti.isA = append(ti.isA, arg.Name)
				}
			default:
				return fmt.Errorf("obo: %v not OBO-expressible", ax.Sup)
			}
		case dl.AxEquivalent:
			if ax.Sub.Op != dl.OpName || ax.Sup.Op != dl.OpAnd {
				return fmt.Errorf("obo: equivalence %v ≡ %v not OBO-expressible", ax.Sub, ax.Sup)
			}
			ti := info(ax.Sub.Name)
			for _, arg := range ax.Sup.Args {
				switch {
				case arg.Op == dl.OpName:
					ti.inter = append(ti.inter, arg.Name)
				case arg.Op == dl.OpSome && arg.Args[0].Op == dl.OpName:
					if err := noteRole(arg.Role.Name); err != nil {
						return err
					}
					ti.inter = append(ti.inter, arg.Role.Name+" "+arg.Args[0].Name)
				default:
					return fmt.Errorf("obo: %v not OBO-expressible", arg)
				}
			}
		case dl.AxDisjoint:
			if ax.Sub.Op != dl.OpName || ax.Sup.Op != dl.OpName {
				return fmt.Errorf("obo: disjointness %v/%v not OBO-expressible", ax.Sub, ax.Sup)
			}
			info(ax.Sub.Name).disjoint = append(info(ax.Sub.Name).disjoint, ax.Sup.Name)
		case dl.AxSubRole:
			if err := noteRole(ax.SubRole.Name); err != nil {
				return err
			}
			if err := noteRole(ax.SupRole.Name); err != nil {
				return err
			}
			roleAxioms[ax.SubRole.Name] = append(roleAxioms[ax.SubRole.Name], ax.SupRole.Name)
		case dl.AxTransitiveRole:
			if err := noteRole(ax.SubRole.Name); err != nil {
				return err
			}
			transitive[ax.SubRole.Name] = true
		}
	}
	for _, name := range order {
		ti := terms[name]
		fmt.Fprintf(bw, "\n[Term]\nid: %s\n", name)
		for i := 0; i < ti.annotations; i++ {
			fmt.Fprintf(bw, "name: %s\n", name)
		}
		for _, p := range ti.isA {
			fmt.Fprintf(bw, "is_a: %s\n", p)
		}
		for _, r := range ti.rel {
			fmt.Fprintf(bw, "relationship: %s\n", r)
		}
		for _, x := range ti.inter {
			fmt.Fprintf(bw, "intersection_of: %s\n", x)
		}
		for _, d := range ti.disjoint {
			fmt.Fprintf(bw, "disjoint_from: %s\n", d)
		}
	}
	for _, r := range roleOrder {
		fmt.Fprintf(bw, "\n[Typedef]\nid: %s\n", r)
		for _, sup := range roleAxioms[r] {
			fmt.Fprintf(bw, "is_a: %s\n", sup)
		}
		if transitive[r] {
			fmt.Fprintln(bw, "is_transitive: true")
		}
	}
	return bw.Flush()
}
