package obo

import (
	"strings"
	"testing"

	"parowl/internal/core"
	"parowl/internal/dl"
	"parowl/internal/el"
	"parowl/internal/ontogen"
)

const sample = `format-version: 1.2
ontology: test

[Term]
id: WBbt:0000001
name: Anatomy
def: "The root" [src:1]
is_a: WBbt:0000000 ! obsolete root

[Term]
id: WBbt:0000002
name: Cell
is_a: WBbt:0000001
relationship: part_of WBbt:0000001

[Term]
id: WBbt:0000003
name: Neuron
intersection_of: WBbt:0000002
intersection_of: part_of WBbt:0000004
disjoint_from: WBbt:0000005

[Term]
id: WBbt:0000006
is_obsolete: true

[Typedef]
id: part_of
is_a: overlaps
is_transitive: true

[Instance]
id: ignored:1
`

func TestParseSample(t *testing.T) {
	tb, err := Parse(strings.NewReader(sample), "test")
	if err != nil {
		t.Fatal(err)
	}
	m := dl.ComputeMetrics(tb)
	if m.SubClassOf != 3 { // is_a ×2 + relationship
		t.Errorf("SubClassOf = %d, want 3", m.SubClassOf)
	}
	if m.Equivalent != 1 {
		t.Errorf("Equivalent = %d, want 1", m.Equivalent)
	}
	if m.Disjoint != 1 {
		t.Errorf("Disjoint = %d, want 1", m.Disjoint)
	}
	if m.Somes != 2 { // relationship + intersection_of part_of
		t.Errorf("Somes = %d, want 2", m.Somes)
	}
	if m.Expressivity != "ELH+" {
		t.Errorf("expressivity = %s, want ELH+ (part_of ⊑ overlaps, transitive)", m.Expressivity)
	}
	// name/def lines are annotations: Anatomy has 2, Cell 1, Neuron 1.
	ann := 0
	for _, ax := range tb.Axioms() {
		if ax.Kind == dl.AxAnnotation {
			ann++
		}
	}
	if ann != 4 {
		t.Errorf("annotations = %d, want 4", ann)
	}
	// The Typedef must set transitivity.
	for _, r := range tb.Factory.Roles() {
		if r.Name == "part_of" {
			if !r.Transitive {
				t.Error("part_of not transitive")
			}
			if !r.IsSubRoleOf(tb.Factory.Role("overlaps")) {
				t.Error("part_of ⊑ overlaps missing")
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"[Term]\nname: no id\n",
		"[Term]\nid: A\nrelationship: part_of\n", // missing filler
		"[Term]\nid: A\nintersection_of: B\n",    // single intersection
		"[Typedef]\nis_transitive: true\n",       // typedef without id
		"[Term]\nid: A\nbad line without colon\n",
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src), "bad"); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseClassify(t *testing.T) {
	tb, err := Parse(strings.NewReader(sample), "test")
	if err != nil {
		t.Fatal(err)
	}
	elr, err := el.New(tb, el.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Classify(tb, core.Options{Reasoner: elr, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := tb.Factory
	if !res.Taxonomy.IsAncestor(f.Name("WBbt:0000001"), f.Name("WBbt:0000003")) {
		t.Error("Neuron ⊑ Anatomy (via Cell) not derived")
	}
}

// TestRoundTripGenerated writes a generated EL corpus as OBO and reparses
// it; all logical metrics must survive.
func TestRoundTripGenerated(t *testing.T) {
	p := ontogen.Mini(ontogen.TableIV[0], 50)
	tb, err := p.Generate(6)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, tb); err != nil {
		t.Fatal(err)
	}
	tb2, err := Parse(strings.NewReader(b.String()), tb.Name)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := dl.ComputeMetrics(tb), dl.ComputeMetrics(tb2)
	if m1.SubClassOf != m2.SubClassOf || m1.Somes != m2.Somes ||
		m1.Equivalent != m2.Equivalent || m1.Disjoint != m2.Disjoint ||
		m1.Concepts != m2.Concepts || m1.Expressivity != m2.Expressivity {
		t.Errorf("logical metrics changed:\n%+v\n%+v", m1, m2)
	}
}

// TestRoundTripFullProfile checks the exact axiom total survives for a
// full Table IV profile (declarations for every concept + annotations).
func TestRoundTripFullProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("large corpus in -short mode")
	}
	p := ontogen.TableIV[2] // obo.PREVIOUS
	tb, err := p.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, tb); err != nil {
		t.Fatal(err)
	}
	tb2, err := Parse(strings.NewReader(b.String()), tb.Name)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := dl.ComputeMetrics(tb), dl.ComputeMetrics(tb2)
	if m1 != m2 {
		t.Errorf("metrics changed:\n%+v\n%+v", m1, m2)
	}
}

func TestWriteRejectsNonEL(t *testing.T) {
	tb := dl.NewTBox("alc")
	f := tb.Factory
	tb.SubClassOf(tb.Declare("A"), f.Not(tb.Declare("B")))
	var b strings.Builder
	if err := Write(&b, tb); err == nil {
		t.Fatal("negation accepted by OBO writer")
	}
}
