package obo

import (
	"strings"
	"testing"
)

// FuzzParse checks the OBO parser never panics on arbitrary input and
// that accepted EL content survives a write/parse cycle.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("[Term]\nid: A\nis_a: B\n")
	f.Add("[Term]\nid: A\nintersection_of: B\nintersection_of: part_of C\n")
	f.Add("[Typedef]\nid: p\nis_transitive: true\n")
	f.Add("format-version: 1.2\n\n[Term]\nid: X ! trailing\n")
	f.Add("[Instance]\nid: i\n")
	f.Add("[Term]\nid: A\ndisjoint_from: B\nrelationship: p C\n")
	f.Fuzz(func(t *testing.T, src string) {
		tb, err := Parse(strings.NewReader(src), "fuzz")
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := Write(&buf, tb); err != nil {
			return // non-EL content constructed some other way is fine to reject
		}
		if _, err := Parse(strings.NewReader(buf.String()), "fuzz2"); err != nil {
			t.Fatalf("writer output does not re-parse: %v\ninput: %q\noutput:\n%s", err, src, buf.String())
		}
	})
}
