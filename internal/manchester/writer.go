package manchester

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"parowl/internal/dl"
)

// Write serializes the TBox in Manchester syntax: one Class frame per
// named concept carrying its axioms, ObjectProperty frames for the role
// axioms, and standalone DisjointClasses frames for disjointness whose
// left side is complex. Annotation axioms become Annotations: lines; the
// concept set round-trips (orphan concepts still get a frame).
func Write(w io.Writer, t *dl.TBox) error {
	// Angle-quoting can express any identifier except those containing
	// '>' (the IRI terminator): reject such names up front.
	for _, c := range t.NamedConcepts() {
		if strings.ContainsRune(c.Name, '>') {
			return fmt.Errorf("manchester: identifier %q not expressible ('>')", c.Name)
		}
	}
	for _, r := range t.Factory.Roles() {
		if strings.ContainsRune(r.Name, '>') {
			return fmt.Errorf("manchester: property %q not expressible ('>')", r.Name)
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# ontology: %s\n", t.Name)

	type frame struct {
		subs, equiv []string
		annotations int
	}
	frames := map[*dl.Concept]*frame{}
	var order []*dl.Concept
	get := func(c *dl.Concept) *frame {
		fr, ok := frames[c]
		if !ok {
			fr = &frame{}
			frames[c] = fr
			order = append(order, c)
		}
		return fr
	}
	// Concepts mentioned inside expressions survive a reparse without
	// their own frame; only concepts carrying axioms (declarations,
	// annotations, named-side axioms) or appearing nowhere at all get a
	// Class frame.
	mentioned := map[*dl.Concept]bool{}
	var note func(c *dl.Concept)
	note = func(c *dl.Concept) {
		mentioned[c] = true
		for _, a := range c.Args {
			note(a)
		}
	}
	for _, ax := range t.Axioms() {
		if ax.Sub != nil {
			note(ax.Sub)
		}
		if ax.Sup != nil {
			note(ax.Sup)
		}
	}
	type roleFrame struct {
		supers     []string
		transitive bool
	}
	roleFrames := map[*dl.Role]*roleFrame{}
	var roleOrder []*dl.Role
	getRole := func(r *dl.Role) *roleFrame {
		fr, ok := roleFrames[r]
		if !ok {
			fr = &roleFrame{}
			roleFrames[r] = fr
			roleOrder = append(roleOrder, r)
		}
		return fr
	}
	var standaloneDisj [][2]*dl.Concept

	for _, ax := range t.Axioms() {
		switch ax.Kind {
		case dl.AxDeclaration:
			get(ax.Sub)
		case dl.AxAnnotation:
			get(ax.Sub).annotations++
		case dl.AxSubClassOf:
			if ax.Sub.Op == dl.OpName {
				fr := get(ax.Sub)
				fr.subs = append(fr.subs, render(ax.Sup, false))
			} else {
				// Complex left side: Manchester has no direct frame;
				// emit an equivalent ⊤-frame axiom via GCI encoding
				// SubClassOf: not(Sub) or Sup on owl:Thing.
				fr := get(t.Factory.Top())
				fr.subs = append(fr.subs, render(t.Factory.Or(t.Factory.Not(ax.Sub), ax.Sup), false))
			}
		case dl.AxEquivalent:
			if ax.Sub.Op == dl.OpName {
				fr := get(ax.Sub)
				fr.equiv = append(fr.equiv, render(ax.Sup, false))
			} else if ax.Sup.Op == dl.OpName {
				fr := get(ax.Sup)
				fr.equiv = append(fr.equiv, render(ax.Sub, false))
			} else {
				// Both sides complex: encode as two GCIs on owl:Thing.
				fr := get(t.Factory.Top())
				f := t.Factory
				fr.subs = append(fr.subs,
					render(f.Or(f.Not(ax.Sub), ax.Sup), false),
					render(f.Or(f.Not(ax.Sup), ax.Sub), false))
			}
		case dl.AxDisjoint:
			// Standalone DisjointClasses frames declare nothing on
			// reparse, keeping declaration counts stable.
			standaloneDisj = append(standaloneDisj, [2]*dl.Concept{ax.Sub, ax.Sup})
		case dl.AxSubRole:
			getRole(ax.SubRole).supers = append(getRole(ax.SubRole).supers, entity(ax.SupRole.Name))
		case dl.AxTransitiveRole:
			getRole(ax.SubRole).transitive = true
		}
	}

	for _, r := range roleOrder {
		fr := roleFrames[r]
		fmt.Fprintf(bw, "\nObjectProperty: %s\n", entity(r.Name))
		for _, s := range fr.supers {
			fmt.Fprintf(bw, "    SubPropertyOf: %s\n", s)
		}
		if fr.transitive {
			fmt.Fprintln(bw, "    Characteristics: Transitive")
		}
	}
	for _, c := range order {
		fr := frames[c]
		fmt.Fprintf(bw, "\nClass: %s\n", entity(conceptName(c)))
		for i := 0; i < fr.annotations; i++ {
			fmt.Fprintf(bw, "    Annotations: rdfs:label \"%s\"\n", conceptName(c))
		}
		if len(fr.subs) > 0 {
			fmt.Fprintf(bw, "    SubClassOf: %s\n", strings.Join(fr.subs, ", "))
		}
		for _, e := range fr.equiv {
			fmt.Fprintf(bw, "    EquivalentTo: %s\n", e)
		}
	}
	for _, pair := range standaloneDisj {
		fmt.Fprintf(bw, "\nDisjointClasses: %s, %s\n", render(pair[0], false), render(pair[1], false))
	}
	for _, c := range t.NamedConcepts() {
		if !mentioned[c] {
			fmt.Fprintf(bw, "\nClass: %s\n", entity(conceptName(c)))
		}
	}
	return bw.Flush()
}

func conceptName(c *dl.Concept) string {
	switch c.Op {
	case dl.OpTop:
		return "owl:Thing"
	case dl.OpBottom:
		return "owl:Nothing"
	default:
		return c.Name
	}
}

// entity quotes names that would not re-tokenize as a single word.
func entity(name string) string {
	if name == "owl:Thing" || name == "owl:Nothing" {
		return name
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.', r == ':':
		default:
			// IRIs and anything with '/', '#' or other punctuation must
			// be angle-quoted ('#' starts a comment in the lexer).
			return "<" + name + ">"
		}
	}
	if name == "" || strings.HasSuffix(name, ":") || exprKeywords[name] {
		return "<urn:" + name + ">"
	}
	return name
}

// render emits an expression; nested means parentheses are required
// around binary operators.
func render(c *dl.Concept, nested bool) string {
	switch c.Op {
	case dl.OpTop:
		return "owl:Thing"
	case dl.OpBottom:
		return "owl:Nothing"
	case dl.OpName:
		return entity(c.Name)
	case dl.OpNot:
		return "not " + render(c.Args[0], true)
	case dl.OpAnd, dl.OpOr:
		op := " and "
		if c.Op == dl.OpOr {
			op = " or "
		}
		parts := make([]string, len(c.Args))
		for i, a := range c.Args {
			parts[i] = render(a, true)
		}
		s := strings.Join(parts, op)
		if nested {
			return "(" + s + ")"
		}
		return s
	case dl.OpSome:
		return parenQuant(entity(c.Role.Name)+" some "+render(c.Args[0], true), nested)
	case dl.OpAll:
		return parenQuant(entity(c.Role.Name)+" only "+render(c.Args[0], true), nested)
	case dl.OpMin:
		return parenQuant(fmt.Sprintf("%s min %d %s", entity(c.Role.Name), c.N, render(c.Args[0], true)), nested)
	case dl.OpMax:
		return parenQuant(fmt.Sprintf("%s max %d %s", entity(c.Role.Name), c.N, render(c.Args[0], true)), nested)
	}
	return "owl:Thing"
}

func parenQuant(s string, nested bool) string {
	if nested {
		return "(" + s + ")"
	}
	return s
}
