package manchester

import (
	"strings"
	"testing"
)

// FuzzParse checks the Manchester parser never panics and that accepted
// input survives a write/parse cycle.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("Class: A\n    SubClassOf: B and (r some C)\n")
	f.Add("Class: A\n    EquivalentTo: B or not C\n")
	f.Add("Class: A\n    SubClassOf: r min 2 B, r max 3, r exactly 1 C\n")
	f.Add("ObjectProperty: p\n    Characteristics: Transitive\n")
	f.Add("DisjointClasses: A, B\n")
	f.Add("Prefix: : <urn:x#>\nClass: :A\n")
	f.Add("Individual: bob\n    Types: A\n")
	f.Fuzz(func(t *testing.T, src string) {
		tb, err := ParseString(src, "fuzz")
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := Write(&buf, tb); err != nil {
			t.Fatalf("accepted input failed to write: %v", err)
		}
		if _, err := ParseString(buf.String(), "fuzz2"); err != nil {
			t.Fatalf("writer output does not re-parse: %v\ninput: %q\noutput:\n%s", err, src, buf.String())
		}
	})
}
