package manchester

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"parowl/internal/core"
	"parowl/internal/dl"
	"parowl/internal/tableau"
)

const sample = `
Prefix: : <http://example.org/zoo#>
Prefix: obo: <http://purl.obolibrary.org/obo/>
Ontology: <http://example.org/zoo>

ObjectProperty: eats
    SubPropertyOf: interactsWith
ObjectProperty: partOf
    Characteristics: Transitive

Class: :Animal
Class: :Cat
    SubClassOf: :Animal, eats some :Mouse
    DisjointWith: :Dog
    Annotations: rdfs:label "cat"
Class: :Carnivore
    EquivalentTo: :Animal and (eats only :Animal)
Class: :Pack
    SubClassOf: eats min 2 :Mouse, eats max 5, partOf exactly 1 :Herd
Class: :Weird
    SubClassOf: :Cat or not :Animal

DisjointClasses: :Dog, :Mouse
`

func TestParseSample(t *testing.T) {
	tb, err := ParseString(sample, "zoo")
	if err != nil {
		t.Fatal(err)
	}
	m := dl.ComputeMetrics(tb)
	if m.SubClassOf != 6 {
		t.Errorf("SubClassOf = %d, want 6", m.SubClassOf)
	}
	if m.Equivalent != 1 {
		t.Errorf("Equivalent = %d, want 1", m.Equivalent)
	}
	if m.Disjoint != 2 { // DisjointWith + DisjointClasses frame
		t.Errorf("Disjoint = %d, want 2", m.Disjoint)
	}
	// eats some :Mouse + exactly's min-part (≥1 → ∃).
	if m.Somes != 2 {
		t.Errorf("Somes = %d, want 2", m.Somes)
	}
	if m.Alls != 1 {
		t.Errorf("Alls = %d, want 1", m.Alls)
	}
	// min 2 (qualified) + exactly 1's max-part (qualified) = 2 QCRs;
	// "eats max 5" without filler is unqualified.
	if m.QCRs != 2 {
		t.Errorf("QCRs = %d, want 2", m.QCRs)
	}
	if m.Cards != 1 {
		t.Errorf("Cards = %d, want 1", m.Cards)
	}
	// Prefix expansion.
	found := false
	for _, c := range tb.NamedConcepts() {
		if c.Name == "http://example.org/zoo#Cat" {
			found = true
		}
	}
	if !found {
		t.Error("default prefix not expanded")
	}
	// Role axioms.
	f := tb.Factory
	if !f.Role("partOf").Transitive {
		t.Error("partOf not transitive")
	}
	if !f.Role("eats").IsSubRoleOf(f.Role("interactsWith")) {
		t.Error("eats ⊑ interactsWith missing")
	}
}

func TestExpressionPrecedence(t *testing.T) {
	src := `Class: A
    SubClassOf: B and C or D
`
	tb, err := ParseString(src, "prec")
	if err != nil {
		t.Fatal(err)
	}
	ax := tb.AsGCIs()[0]
	// "B and C or D" must parse as (B ⊓ C) ⊔ D.
	if ax.Sup.Op != dl.OpOr {
		t.Fatalf("top operator = %v, want Or: %v", ax.Sup.Op, ax.Sup)
	}
}

func TestOwlThingNothing(t *testing.T) {
	src := `Class: A
    SubClassOf: owl:Thing
Class: B
    EquivalentTo: owl:Nothing
`
	tb, err := ParseString(src, "tb")
	if err != nil {
		t.Fatal(err)
	}
	f := tb.Factory
	var sawBottom bool
	for _, ax := range tb.AsGCIs() {
		if ax.Sup == f.Bottom() || ax.Sub == f.Bottom() {
			sawBottom = true
		}
	}
	if !sawBottom {
		t.Error("owl:Nothing not mapped to ⊥")
	}
}

func TestUnknownFrameSkipped(t *testing.T) {
	src := `Individual: bob
    Types: A
Class: A
    SubClassOf: B
`
	tb, err := ParseString(src, "skip")
	if err != nil {
		t.Fatal(err)
	}
	if got := dl.ComputeMetrics(tb).SubClassOf; got != 1 {
		t.Errorf("SubClassOf = %d, want 1", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`Class: A
    SubClassOf: eats min x B`, // bad cardinality
		`Class: A
    SubClassOf: (B`, // unbalanced paren
		`Class:`,        // missing name
		`SubClassOf: A`, // section outside a frame
		`Class: A
    SubClassOf: <unterminated`,
	}
	for _, src := range cases {
		if _, err := ParseString(src, "bad"); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestRoundTripSample(t *testing.T) {
	tb, err := ParseString(sample, "zoo")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := Write(&buf, tb); err != nil {
		t.Fatal(err)
	}
	tb2, err := ParseString(buf.String(), "zoo")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	m1, m2 := dl.ComputeMetrics(tb), dl.ComputeMetrics(tb2)
	if m1 != m2 {
		t.Errorf("metrics changed over round trip:\n%+v\n%+v\n%s", m1, m2, buf.String())
	}
}

// randomTBox builds a random ALCHQ TBox with named-frame axiom shapes.
func randomTBox(rng *rand.Rand, n int) *dl.TBox {
	tb := dl.NewTBox("rt")
	f := tb.Factory
	cs := make([]*dl.Concept, n)
	for i := range cs {
		cs[i] = tb.Declare("N" + string(rune('A'+i)))
		tb.DeclarationAxiom(cs[i])
	}
	roles := []*dl.Role{f.Role("r"), f.Role("s")}
	if rng.Intn(2) == 0 {
		tb.SubObjectPropertyOf(roles[0], roles[1])
	}
	if rng.Intn(3) == 0 {
		tb.TransitiveObjectProperty(roles[1])
	}
	var expr func(depth int) *dl.Concept
	expr = func(depth int) *dl.Concept {
		if depth <= 0 || rng.Intn(3) == 0 {
			return cs[rng.Intn(n)]
		}
		switch rng.Intn(7) {
		case 0:
			return f.Not(expr(depth - 1))
		case 1:
			return f.And(expr(depth-1), expr(depth-1))
		case 2:
			return f.Or(expr(depth-1), expr(depth-1))
		case 3:
			return f.Some(roles[rng.Intn(2)], expr(depth-1))
		case 4:
			return f.All(roles[rng.Intn(2)], expr(depth-1))
		case 5:
			return f.Min(2+rng.Intn(2), roles[rng.Intn(2)], cs[rng.Intn(n)])
		default:
			return f.Max(rng.Intn(3)+1, roles[rng.Intn(2)], cs[rng.Intn(n)])
		}
	}
	for i, k := 0, 3+rng.Intn(5); i < k; i++ {
		sub := cs[rng.Intn(n)]
		switch rng.Intn(5) {
		case 0:
			tb.EquivalentClasses(sub, f.And(cs[rng.Intn(n)], expr(1)))
		case 1:
			tb.DisjointClasses(sub, cs[rng.Intn(n)])
		default:
			tb.SubClassOf(sub, expr(2))
		}
	}
	return tb
}

// TestQuickSemanticRoundTrip: write → parse must preserve classification.
func TestQuickSemanticRoundTrip(t *testing.T) {
	classifyFP := func(tb *dl.TBox) (string, error) {
		r := tableau.New(tb, tableau.Options{})
		res, err := core.Classify(tb, core.Options{Reasoner: r, Workers: 2})
		if err != nil {
			return "", err
		}
		return res.Taxonomy.Fingerprint(), nil
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTBox(rng, 3+rng.Intn(4))
		var buf strings.Builder
		if err := Write(&buf, tb); err != nil {
			t.Fatalf("seed %d write: %v", seed, err)
		}
		tb2, err := ParseString(buf.String(), tb.Name)
		if err != nil {
			t.Fatalf("seed %d parse: %v\n%s", seed, err, buf.String())
		}
		fp1, err := classifyFP(tb)
		if err != nil {
			return true
		}
		fp2, err := classifyFP(tb2)
		if err != nil {
			t.Logf("seed %d reparsed classify: %v", seed, err)
			return false
		}
		if fp1 != fp2 {
			t.Logf("seed %d fingerprints differ:\n%s\nvs\n%s\nsource:\n%s", seed, fp1, fp2, buf.String())
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
