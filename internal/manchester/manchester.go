// Package manchester parses and writes the OWL 2 Manchester Syntax
// fragment matching this repository's dialect (ALCHQ with transitive
// roles): Class frames with SubClassOf/EquivalentTo/DisjointWith,
// ObjectProperty frames with SubPropertyOf/Characteristics: Transitive,
// standalone DisjointClasses frames, and the expression language
// (and / or / not / some / only / min / max / exactly).
//
// Manchester syntax is the human-facing notation of Protégé and the OWL
// primer; supporting it alongside functional-style syntax and OBO makes
// the toolchain usable with all three common serializations.
package manchester

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"

	"parowl/internal/dl"
)

// token kinds.
type kind uint8

const (
	tEOF kind = iota
	tWord
	tKeyword // word ending in ':' (frame or section keyword)
	tIRI     // <...>
	tLParen
	tRParen
	tComma
	tString
)

type tok struct {
	kind kind
	text string
	line int
}

func (t tok) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return t.text
}

// lex tokenizes the whole input up front.
func lex(src string) ([]tok, error) {
	var out []tok
	line := 1
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == '\n':
			line++
			i++
		case unicode.IsSpace(r):
			i++
		case r == '#': // comment
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
		case r == '(':
			out = append(out, tok{tLParen, "(", line})
			i++
		case r == ')':
			out = append(out, tok{tRParen, ")", line})
			i++
		case r == ',':
			out = append(out, tok{tComma, ",", line})
			i++
		case r == '<':
			j := i + 1
			for j < len(rs) && rs[j] != '>' {
				j++
			}
			if j == len(rs) {
				return nil, fmt.Errorf("manchester: line %d: unterminated IRI", line)
			}
			out = append(out, tok{tIRI, string(rs[i+1 : j]), line})
			i = j + 1
		case r == '"':
			j := i + 1
			var b strings.Builder
			for j < len(rs) && rs[j] != '"' {
				if rs[j] == '\\' && j+1 < len(rs) {
					j++
				}
				b.WriteRune(rs[j])
				j++
			}
			if j == len(rs) {
				return nil, fmt.Errorf("manchester: line %d: unterminated string", line)
			}
			out = append(out, tok{tString, b.String(), line})
			i = j + 1
		case r == '>':
			return nil, fmt.Errorf("manchester: line %d: unexpected '>'", line)
		default:
			j := i
			for j < len(rs) {
				c := rs[j]
				if unicode.IsSpace(c) || c == '(' || c == ')' || c == ',' || c == '<' || c == '>' || c == '"' || c == '#' {
					break
				}
				j++
			}
			word := string(rs[i:j])
			if strings.HasSuffix(word, ":") && !strings.Contains(word[:len(word)-1], ":") {
				// "SubClassOf:", "Class:", "foo:" — a keyword or a
				// Prefix declaration name; prefixed entity names keep
				// their colon in the middle (obo:GO_1).
				out = append(out, tok{tKeyword, word, line})
			} else {
				out = append(out, tok{tWord, word, line})
			}
			i = j
		}
	}
	return append(out, tok{tEOF, "", line}), nil
}

// expression keywords that terminate entity names.
var exprKeywords = map[string]bool{
	"and": true, "or": true, "not": true,
	"some": true, "only": true, "min": true, "max": true, "exactly": true,
	"value": true, "Self": true, "that": true,
}

type parser struct {
	toks     []tok
	pos      int
	tbox     *dl.TBox
	prefixes map[string]string
}

// Parse reads a Manchester-syntax ontology.
func Parse(r io.Reader, name string) (*dl.TBox, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("manchester: read: %w", err)
	}
	return ParseString(string(src), name)
}

// ParseString parses a Manchester-syntax document.
func ParseString(src, name string) (*dl.TBox, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, tbox: dl.NewTBox(name), prefixes: map[string]string{}}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.tbox, nil
}

func (p *parser) peek() tok   { return p.toks[p.pos] }
func (p *parser) next() tok   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tEOF }

func (p *parser) errf(t tok, format string, args ...any) error {
	return fmt.Errorf("manchester: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) run() error {
	for !p.atEOF() {
		t := p.next()
		if t.kind != tKeyword {
			return p.errf(t, "expected a frame keyword, got %q", t.text)
		}
		switch t.text {
		case "Prefix:":
			if err := p.parsePrefix(); err != nil {
				return err
			}
		case "Ontology:":
			p.skipFrameHeader()
		case "Class:":
			if err := p.parseClassFrame(); err != nil {
				return err
			}
		case "ObjectProperty:":
			if err := p.parsePropertyFrame(); err != nil {
				return err
			}
		case "DisjointClasses:":
			exprs, err := p.exprList()
			if err != nil {
				return err
			}
			p.tbox.DisjointClasses(exprs...)
		default:
			if !topFrames[t.text] {
				return p.errf(t, "unexpected keyword %q at top level", t.text)
			}
			// Known but unsupported frame (Individual:, DataProperty:,
			// ...): skip to the next top-level frame.
			p.skipToNextFrame()
		}
	}
	return nil
}

// topFrames are keywords that start a new top-level frame.
var topFrames = map[string]bool{
	"Prefix:": true, "Ontology:": true, "Class:": true,
	"ObjectProperty:": true, "DataProperty:": true, "Individual:": true,
	"DisjointClasses:": true, "EquivalentClasses:": true, "AnnotationProperty:": true,
	"Datatype:": true,
}

func (p *parser) skipToNextFrame() {
	for !p.atEOF() {
		if t := p.peek(); t.kind == tKeyword && topFrames[t.text] {
			return
		}
		p.next()
	}
}

func (p *parser) skipFrameHeader() {
	for !p.atEOF() {
		t := p.peek()
		if t.kind == tKeyword {
			return
		}
		p.next()
	}
}

func (p *parser) parsePrefix() error {
	nameTok := p.next()
	pfx := ""
	switch nameTok.kind {
	case tKeyword: // "obo:" or ":"
		pfx = strings.TrimSuffix(nameTok.text, ":")
	case tWord:
		if nameTok.text == ":" {
			pfx = ""
		} else {
			return p.errf(nameTok, "bad prefix name %q", nameTok.text)
		}
	default:
		return p.errf(nameTok, "bad prefix declaration")
	}
	iri := p.next()
	if iri.kind != tIRI {
		return p.errf(iri, "expected IRI after Prefix:")
	}
	p.prefixes[pfx] = iri.text
	return nil
}

// resolve expands a possibly prefixed name.
func (p *parser) resolve(t tok) string {
	if t.kind == tIRI {
		return t.text
	}
	name := t.text
	if i := strings.Index(name, ":"); i >= 0 {
		if base, ok := p.prefixes[name[:i]]; ok {
			return base + name[i+1:]
		}
	}
	return name
}

// conceptFor maps a resolved entity name to a concept.
func (p *parser) conceptFor(name string) *dl.Concept {
	f := p.tbox.Factory
	switch name {
	case "owl:Thing", "http://www.w3.org/2002/07/owl#Thing", "Thing":
		return f.Top()
	case "owl:Nothing", "http://www.w3.org/2002/07/owl#Nothing", "Nothing":
		return f.Bottom()
	}
	return p.tbox.Declare(name)
}

func (p *parser) parseClassFrame() error {
	nameTok := p.next()
	if nameTok.kind != tWord && nameTok.kind != tIRI {
		return p.errf(nameTok, "expected class name, got %q", nameTok.text)
	}
	cls := p.conceptFor(p.resolve(nameTok))
	p.tbox.DeclarationAxiom(cls)
	for !p.atEOF() {
		t := p.peek()
		if t.kind != tKeyword {
			return p.errf(t, "expected a section keyword in Class frame, got %q", t.text)
		}
		if topFrames[t.text] {
			return nil
		}
		p.next()
		switch t.text {
		case "SubClassOf:":
			exprs, err := p.exprList()
			if err != nil {
				return err
			}
			for _, e := range exprs {
				p.tbox.SubClassOf(cls, e)
			}
		case "EquivalentTo:":
			exprs, err := p.exprList()
			if err != nil {
				return err
			}
			for _, e := range exprs {
				p.tbox.EquivalentClasses(cls, e)
			}
		case "DisjointWith:":
			exprs, err := p.exprList()
			if err != nil {
				return err
			}
			for _, e := range exprs {
				p.tbox.DisjointClasses(cls, e)
			}
		case "Annotations:":
			if err := p.skipAnnotations(); err != nil {
				return err
			}
			p.tbox.AnnotationAxiom(cls)
		default:
			p.skipSection()
		}
	}
	return nil
}

func (p *parser) parsePropertyFrame() error {
	nameTok := p.next()
	if nameTok.kind != tWord && nameTok.kind != tIRI {
		return p.errf(nameTok, "expected property name, got %q", nameTok.text)
	}
	f := p.tbox.Factory
	role := f.Role(p.resolve(nameTok))
	for !p.atEOF() {
		t := p.peek()
		if t.kind != tKeyword {
			return p.errf(t, "expected a section keyword in ObjectProperty frame, got %q", t.text)
		}
		if topFrames[t.text] {
			return nil
		}
		p.next()
		switch t.text {
		case "SubPropertyOf:":
			sup := p.next()
			if sup.kind != tWord && sup.kind != tIRI {
				return p.errf(sup, "expected property name")
			}
			p.tbox.SubObjectPropertyOf(role, f.Role(p.resolve(sup)))
		case "Characteristics:":
			for {
				c := p.next()
				if c.kind != tWord {
					return p.errf(c, "expected a characteristic")
				}
				if c.text == "Transitive" {
					p.tbox.TransitiveObjectProperty(role)
				}
				if p.peek().kind != tComma {
					break
				}
				p.next()
			}
		case "Annotations:":
			if err := p.skipAnnotations(); err != nil {
				return err
			}
		default:
			p.skipSection()
		}
	}
	return nil
}

// skipSection consumes tokens until the next keyword.
func (p *parser) skipSection() {
	for !p.atEOF() && p.peek().kind != tKeyword {
		p.next()
	}
}

// skipAnnotations consumes one comma-separated annotation list.
func (p *parser) skipAnnotations() error {
	for {
		// property
		if t := p.next(); t.kind != tWord && t.kind != tIRI {
			return p.errf(t, "expected annotation property")
		}
		// value: string, word or IRI
		v := p.next()
		switch v.kind {
		case tString, tWord, tIRI:
		default:
			return p.errf(v, "expected annotation value")
		}
		// optional language tag / datatype glued into following words is
		// not tokenized specially; stop at comma or keyword.
		if p.peek().kind == tComma {
			p.next()
			continue
		}
		return nil
	}
}

// exprList parses a comma-separated list of class expressions ending at
// the next keyword or EOF.
func (p *parser) exprList() ([]*dl.Concept, error) {
	var out []*dl.Concept
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if p.peek().kind == tComma {
			p.next()
			continue
		}
		return out, nil
	}
}

// expr parses a disjunction.
func (p *parser) expr() (*dl.Concept, error) {
	left, err := p.conjunction()
	if err != nil {
		return nil, err
	}
	args := []*dl.Concept{left}
	for p.peek().kind == tWord && p.peek().text == "or" {
		p.next()
		right, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		args = append(args, right)
	}
	if len(args) == 1 {
		return left, nil
	}
	return p.tbox.Factory.Or(args...), nil
}

func (p *parser) conjunction() (*dl.Concept, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	args := []*dl.Concept{left}
	for p.peek().kind == tWord && p.peek().text == "and" {
		p.next()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		args = append(args, right)
	}
	if len(args) == 1 {
		return left, nil
	}
	return p.tbox.Factory.And(args...), nil
}

func (p *parser) unary() (*dl.Concept, error) {
	t := p.peek()
	if t.kind == tWord && t.text == "not" {
		p.next()
		inner, err := p.unary()
		if err != nil {
			return nil, err
		}
		return p.tbox.Factory.Not(inner), nil
	}
	return p.restrictionOrPrimary()
}

// restrictionOrPrimary parses either a primary or "role some/only/min/...".
func (p *parser) restrictionOrPrimary() (*dl.Concept, error) {
	t := p.next()
	f := p.tbox.Factory
	switch t.kind {
	case tLParen:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if closing := p.next(); closing.kind != tRParen {
			return nil, p.errf(closing, "expected ')'")
		}
		return e, nil
	case tWord, tIRI:
		// Restriction if the next token is a restriction keyword.
		nxt := p.peek()
		if nxt.kind == tWord && exprKeywords[nxt.text] && nxt.text != "and" && nxt.text != "or" && nxt.text != "not" {
			role := f.Role(p.resolve(t))
			kw := p.next().text
			switch kw {
			case "some", "only":
				filler, err := p.unary()
				if err != nil {
					return nil, err
				}
				if kw == "some" {
					return f.Some(role, filler), nil
				}
				return f.All(role, filler), nil
			case "min", "max", "exactly":
				numTok := p.next()
				n, err := strconv.Atoi(numTok.text)
				if err != nil || n < 0 {
					return nil, p.errf(numTok, "expected cardinality, got %q", numTok.text)
				}
				filler := f.Top()
				if fl := p.peek(); fl.kind == tWord && !exprKeywords[fl.text] || fl.kind == tLParen || fl.kind == tIRI {
					filler, err = p.unary()
					if err != nil {
						return nil, err
					}
				}
				switch kw {
				case "min":
					return f.Min(n, role, filler), nil
				case "max":
					return f.Max(n, role, filler), nil
				default:
					return f.And(f.Min(n, role, filler), f.Max(n, role, filler)), nil
				}
			default:
				return nil, p.errf(t, "unsupported restriction %q", kw)
			}
		}
		return p.conceptFor(p.resolve(t)), nil
	default:
		return nil, p.errf(t, "expected a class expression, got %q", t.text)
	}
}
