package reasoner

import (
	"context"
	"errors"
	"sort"
	"sync"

	"parowl/internal/dl"
)

// cacheShards is the number of independent lock domains in Cached. A
// power of two so the shard index is a mask; 64 shards keep the
// probability of two of ~100 workers colliding on a lock low without
// bloating the structure.
const cacheShards = 64

// Cached memoizes the answers of an underlying plug-in so repeated tests
// of the same pair cost one map lookup. The classifier already avoids
// duplicate tests through its tested() structure, but plug-in users (the
// sequential baselines, examples) benefit, and the paper's Situation 2.1
// (skip already-tested pairs) maps here for re-entrant runs.
//
// The table is sharded: keys (built from the dense concept IDs assigned
// by the interning Factory) hash to one of cacheShards independent
// mutex-protected maps, so workers testing different pairs almost never
// contend on the same lock. Each shard also performs single-flight
// suppression: when N workers miss on the same key concurrently, one
// runs the underlying test and the other N-1 wait for its answer instead
// of redundantly re-running a potentially expensive tableau test (the
// thundering-herd fix).
//
// Single flight is deadline-aware: a waiter whose own context expires
// stops waiting and returns its context error, and when the running
// flight fails with the runner's context error (its per-test budget
// expired), waiters with live contexts retry the call under their own
// budget instead of inheriting the runner's timeout.
//
// Cached is safe for concurrent use. Errors are not cached: every waiter
// of a failed flight receives the error, and the next caller retries.
type Cached struct {
	r    Interface
	mf   ModelFilter // non-nil iff r offers the capability
	sat  [cacheShards]cacheShard
	subs [cacheShards]cacheShard
}

// cacheShard is one lock domain: settled answers plus in-flight calls.
type cacheShard struct {
	mu       sync.Mutex
	vals     map[uint64]bool
	inflight map[uint64]*flight
}

// flight is one in-progress underlying call; waiters block on done.
type flight struct {
	done chan struct{}
	val  bool
	err  error
}

// NewCached wraps r with a memo table. If r offers the ModelFilter
// capability the wrapper forwards it, integrated with the memo: a
// settled answer is consulted before probing, and a successful disproof
// settles the pair as a negative so later Subs calls skip both the
// single-flight path and the plug-in.
func NewCached(r Interface) *Cached {
	return &Cached{r: r, mf: AsModelFilter(r)}
}

// shardOf hashes a key to its shard with a 64-bit mix (splitmix64
// finalizer) so that the dense, correlated concept IDs spread evenly.
func shardOf(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return key & (cacheShards - 1)
}

// satKey and subsKey build cache keys from the dense per-factory concept
// IDs. A Cached instance serves a single TBox/Factory, so IDs identify
// concepts uniquely.
func satKey(c *dl.Concept) uint64         { return uint64(uint32(c.ID)) }
func subsKey(sup, sub *dl.Concept) uint64 { return uint64(uint32(sup.ID))<<32 | uint64(uint32(sub.ID)) }

// isCtxErr reports whether err carries a context cancellation/deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// do returns the cached answer for key, joining an in-flight call when
// one exists, and otherwise runs fn exactly once for all concurrent
// callers of this key. fn receives the caller's context.
func (s *cacheShard) do(ctx context.Context, key uint64, fn func(context.Context) (bool, error)) (bool, error) {
	for {
		s.mu.Lock()
		if v, ok := s.vals[key]; ok {
			s.mu.Unlock()
			return v, nil
		}
		if f, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return false, ctx.Err()
			}
			if f.err == nil {
				return f.val, nil
			}
			if isCtxErr(f.err) && ctx.Err() == nil {
				// The runner's budget expired, not ours: retry under our
				// own context (becoming the new runner if still unsettled).
				continue
			}
			return false, f.err
		}
		f := &flight{done: make(chan struct{})}
		if s.inflight == nil {
			s.inflight = make(map[uint64]*flight)
		}
		s.inflight[key] = f
		s.mu.Unlock()

		f.val, f.err = fn(ctx)

		s.mu.Lock()
		delete(s.inflight, key)
		if f.err == nil {
			if s.vals == nil {
				s.vals = make(map[uint64]bool)
			}
			s.vals[key] = f.val
		}
		s.mu.Unlock()
		close(f.done)
		return f.val, f.err
	}
}

// peek returns the settled answer for key without joining any flight.
func (s *cacheShard) peek(key uint64) (val, ok bool) {
	s.mu.Lock()
	val, ok = s.vals[key]
	s.mu.Unlock()
	return val, ok
}

// put settles key to val unless already settled.
func (s *cacheShard) put(key uint64, val bool) {
	s.mu.Lock()
	if _, ok := s.vals[key]; !ok {
		if s.vals == nil {
			s.vals = make(map[uint64]bool)
		}
		s.vals[key] = val
	}
	s.mu.Unlock()
}

// DisprovesSubs implements ModelFilter when the underlying plug-in does.
// A memoized answer short-circuits the probe in both directions — a
// settled negative disproves for free, a settled positive can never be
// disproved — and a fresh disproof is recorded as a settled negative so
// subsequent Subs calls for the pair bypass the single-flight miss path
// entirely.
func (c *Cached) DisprovesSubs(ctx context.Context, sup, sub *dl.Concept) bool {
	if c.mf == nil {
		return false
	}
	key := subsKey(sup, sub)
	shard := &c.subs[shardOf(key)]
	if val, ok := shard.peek(key); ok {
		return !val
	}
	if !c.mf.DisprovesSubs(ctx, sup, sub) {
		return false
	}
	shard.put(key, false)
	return true
}

// Sat implements Interface.
func (c *Cached) Sat(ctx context.Context, x *dl.Concept) (bool, error) {
	key := satKey(x)
	return c.sat[shardOf(key)].do(ctx, key, func(ctx context.Context) (bool, error) {
		return c.r.Sat(ctx, x)
	})
}

// Subs implements Interface.
func (c *Cached) Subs(ctx context.Context, sup, sub *dl.Concept) (bool, error) {
	key := subsKey(sup, sub)
	return c.subs[shardOf(key)].do(ctx, key, func(ctx context.Context) (bool, error) {
		return c.r.Subs(ctx, sup, sub)
	})
}

// Unwrap implements Wrapper so capability probes reach the wrapped
// plug-in. Note Cached implements ModelFilter itself (memo-integrated),
// so AsModelFilter never walks past it.
func (c *Cached) Unwrap() Interface { return c.r }

// CacheEntry is one settled answer in a portable cache snapshot. Keys are
// the same dense-concept-ID compounds Cached uses internally, so a
// snapshot is only meaningful for the same TBox (IDs are assigned in
// first-use order and are stable across re-parses of the same ontology —
// checkpoints guard this with an ontology fingerprint).
type CacheEntry struct {
	Key uint64
	Val bool
}

// CacheSnapshot is a portable dump of a plug-in's settled answers.
type CacheSnapshot struct {
	Sat  []CacheEntry
	Subs []CacheEntry
}

// CachePorter is an optional capability: exporting and importing settled
// answers, so classification checkpoints can persist tableau work that is
// not yet reflected in the shared bitsets. Implementations must be safe
// for concurrent use.
type CachePorter interface {
	ExportCache() CacheSnapshot
	ImportCache(CacheSnapshot)
}

// exportShards collects the settled entries of a shard group, sorted by
// key so exports are deterministic.
func exportShards(shards *[cacheShards]cacheShard) []CacheEntry {
	var out []CacheEntry
	for i := range shards {
		s := &shards[i]
		s.mu.Lock()
		for k, v := range s.vals {
			out = append(out, CacheEntry{Key: k, Val: v})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// importShards settles every entry that is not already settled.
func importShards(shards *[cacheShards]cacheShard, entries []CacheEntry) {
	for _, e := range entries {
		shards[shardOf(e.Key)].put(e.Key, e.Val)
	}
}

// ExportCache implements CachePorter. Each shard is read under its own
// lock; entries settled while the export runs may or may not appear,
// which is fine for checkpointing (the snapshot is a subset of truth).
func (c *Cached) ExportCache() CacheSnapshot {
	return CacheSnapshot{
		Sat:  exportShards(&c.sat),
		Subs: exportShards(&c.subs),
	}
}

// ImportCache implements CachePorter, pre-settling the answers of a
// previously exported snapshot. Entries already settled locally win.
func (c *Cached) ImportCache(snap CacheSnapshot) {
	importShards(&c.sat, snap.Sat)
	importShards(&c.subs, snap.Subs)
}

// IsSatisfiable is the context-free convenience form of Sat.
//
// Deprecated: use Sat with a context.
func (c *Cached) IsSatisfiable(x *dl.Concept) (bool, error) {
	return c.Sat(context.Background(), x)
}

// Subsumes is the context-free convenience form of Subs.
//
// Deprecated: use Subs with a context.
func (c *Cached) Subsumes(sup, sub *dl.Concept) (bool, error) {
	return c.Subs(context.Background(), sup, sub)
}
