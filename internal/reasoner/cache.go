package reasoner

import (
	"sync"

	"parowl/internal/dl"
)

// Cached memoizes the answers of an underlying plug-in so repeated tests
// of the same pair cost one map lookup. The classifier already avoids
// duplicate tests through its tested() structure, but plug-in users (the
// sequential baselines, examples) benefit, and the paper's Situation 2.1
// (skip already-tested pairs) maps here for re-entrant runs.
//
// Cached is safe for concurrent use. Errors are not cached.
type Cached struct {
	r Interface

	mu   sync.RWMutex
	sat  map[*dl.Concept]bool
	subs map[[2]*dl.Concept]bool
}

// NewCached wraps r with a memo table.
func NewCached(r Interface) *Cached {
	return &Cached{
		r:    r,
		sat:  make(map[*dl.Concept]bool),
		subs: make(map[[2]*dl.Concept]bool),
	}
}

// IsSatisfiable implements Interface.
func (c *Cached) IsSatisfiable(x *dl.Concept) (bool, error) {
	c.mu.RLock()
	v, ok := c.sat[x]
	c.mu.RUnlock()
	if ok {
		return v, nil
	}
	v, err := c.r.IsSatisfiable(x)
	if err != nil {
		return false, err
	}
	c.mu.Lock()
	c.sat[x] = v
	c.mu.Unlock()
	return v, nil
}

// Subsumes implements Interface.
func (c *Cached) Subsumes(sup, sub *dl.Concept) (bool, error) {
	key := [2]*dl.Concept{sup, sub}
	c.mu.RLock()
	v, ok := c.subs[key]
	c.mu.RUnlock()
	if ok {
		return v, nil
	}
	v, err := c.r.Subsumes(sup, sub)
	if err != nil {
		return false, err
	}
	c.mu.Lock()
	c.subs[key] = v
	c.mu.Unlock()
	return v, nil
}
