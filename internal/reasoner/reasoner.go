// Package reasoner defines the plug-in interface between the parallel
// classifier and the underlying OWL reasoner, mirroring the paper's
// architecture: "in order to keep our architecture universal we use OWL
// reasoners as plug-ins for deciding satisfiability and subsumption"
// (Sec. I). The paper plugs in HermiT 1.3.8; this repository provides
// three interchangeable plug-ins:
//
//   - the tableau reasoner (internal/tableau) — the full calculus,
//   - the EL saturation reasoner (internal/el) — fast and complete for
//     the EL/ELH+ corpora of Table IV,
//   - the Oracle — a precomputed subsumption closure with a synthetic
//     per-test cost model, standing in for HermiT in scalability
//     experiments where only scheduling behaviour matters.
//
// Every call carries a context.Context: single tableau tests on QCR-heavy
// ontologies can dominate wall time by orders of magnitude, so the
// classifier imposes per-test deadlines and plug-ins are expected to
// observe cancellation cooperatively (returning ctx.Err(), usually
// wrapped, as soon as practical after the context is done). A plug-in
// that ignores its context still computes correct answers but cannot be
// budgeted.
//
// The package also supplies a thread-safe memoizing decorator (Cached)
// and shared call statistics.
package reasoner

import (
	"context"
	"errors"
	"sync/atomic"

	"parowl/internal/dl"
)

// Budget-exhaustion sentinels. A plug-in whose internal resource budget
// (node pool, branching limit, …) runs out should return an error
// wrapping one of these so the classifier can degrade the single test to
// undecided — and report which budget blew — instead of failing the run.
// They are defined here, not in a concrete plug-in package, so the
// classifier stays plug-in-agnostic.
var (
	// ErrNodeBudget reports that a plug-in exhausted its per-test node
	// (memory) budget.
	ErrNodeBudget = errors.New("reasoner: node budget exhausted")
	// ErrBranchBudget reports that a plug-in exhausted its per-test
	// non-deterministic branching budget.
	ErrBranchBudget = errors.New("reasoner: branch budget exhausted")
)

// Interface is the classifier's view of a reasoner plug-in. All methods
// must be safe for concurrent use: the classifier calls them from every
// worker thread.
//
// Subs(ctx, sup, sub) answers sub ⊑ sup — the paper's subs?(sup, sub).
// Sat answers the paper's sat?(). Implementations should honour ctx
// cancellation and deadlines by returning an error satisfying
// errors.Is(err, ctx.Err()); the classifier relies on this to bound the
// cost of pathological tests.
type Interface interface {
	Sat(ctx context.Context, c *dl.Concept) (bool, error)
	Subs(ctx context.Context, sup, sub *dl.Concept) (bool, error)
}

// LegacyInterface is the pre-context plug-in shape. Third-party plug-ins
// written against it keep working through Adapt.
//
// Deprecated: implement Interface (context-threaded) directly.
type LegacyInterface interface {
	IsSatisfiable(c *dl.Concept) (bool, error)
	Subsumes(sup, sub *dl.Concept) (bool, error)
}

// legacyAdapter bridges a LegacyInterface plug-in into Interface. The
// context is checked before each call, but a running legacy test cannot
// be interrupted.
type legacyAdapter struct{ l LegacyInterface }

// Adapt wraps a context-free legacy plug-in as an Interface. The adapter
// refuses to start a call on a done context but cannot cancel a call in
// flight — per-test deadlines degrade to best effort for such plug-ins.
func Adapt(l LegacyInterface) Interface { return legacyAdapter{l} }

// Sat implements Interface.
func (a legacyAdapter) Sat(ctx context.Context, c *dl.Concept) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return a.l.IsSatisfiable(c)
}

// Subs implements Interface.
func (a legacyAdapter) Subs(ctx context.Context, sup, sub *dl.Concept) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return a.l.Subsumes(sup, sub)
}

// ModelFilter is an optional capability a plug-in may offer alongside
// Interface: a cheap, sound non-subsumption test. DisprovesSubs reports
// that sub ⊑ sup definitely does NOT hold — typically by merging cached
// pseudo-models of sub and ¬sup, in the spirit of tableau model-merging
// heuristics — without running a full test. False means "don't know",
// never "subsumed": callers may skip the expensive Subs dispatch on
// true, and must fall through to Subs on false.
//
// Implementations must be safe for concurrent use and cheap relative to
// Subs; they should not be budgeted or retried. The classifier detects
// the capability by type assertion, so plug-ins opt in just by
// implementing the method.
type ModelFilter interface {
	DisprovesSubs(ctx context.Context, sup, sub *dl.Concept) bool
}

// Wrapper is implemented by decorators (Counting, Cached, Chaos) that
// delegate to an inner plug-in. Capability probes walk the Unwrap chain
// so a capability is found regardless of decoration order.
type Wrapper interface {
	Unwrap() Interface
}

// AsModelFilter returns r's ModelFilter capability, or nil if neither r
// nor any plug-in it wraps implements it. Decorators that transform
// answers should implement ModelFilter themselves to intercept the probe;
// pass-through decorators get chain discovery for free.
func AsModelFilter(r Interface) ModelFilter {
	for r != nil {
		if mf, ok := r.(ModelFilter); ok {
			return mf
		}
		w, ok := r.(Wrapper)
		if !ok {
			return nil
		}
		r = w.Unwrap()
	}
	return nil
}

// AsCachePorter returns r's CachePorter capability (the ability to export
// and import settled answers, used by classification checkpoints), or nil
// if neither r nor any plug-in it wraps implements it.
func AsCachePorter(r Interface) CachePorter {
	for r != nil {
		if cp, ok := r.(CachePorter); ok {
			return cp
		}
		w, ok := r.(Wrapper)
		if !ok {
			return nil
		}
		r = w.Unwrap()
	}
	return nil
}

// Factory builds a plug-in reasoner for a TBox. Classifier options carry a
// Factory so the same classification code runs against any plug-in.
type Factory func(t *dl.TBox) (Interface, error)

// Stats counts plug-in calls with atomic counters.
type Stats struct {
	SatCalls  atomic.Int64
	SubsCalls atomic.Int64
	// FilterHits counts DisprovesSubs probes that answered true, each of
	// which typically stands in for an avoided Subs call.
	FilterHits atomic.Int64
}

// Counting wraps a reasoner so every call is tallied in Stats.
type Counting struct {
	R Interface
	S *Stats
}

// Sat implements Interface.
func (c Counting) Sat(ctx context.Context, x *dl.Concept) (bool, error) {
	c.S.SatCalls.Add(1)
	return c.R.Sat(ctx, x)
}

// Subs implements Interface.
func (c Counting) Subs(ctx context.Context, sup, sub *dl.Concept) (bool, error) {
	c.S.SubsCalls.Add(1)
	return c.R.Subs(ctx, sup, sub)
}

// DisprovesSubs forwards the wrapped plug-in's ModelFilter capability,
// tallying hits. A Counting around a filterless plug-in still satisfies
// ModelFilter but never disproves anything.
func (c Counting) DisprovesSubs(ctx context.Context, sup, sub *dl.Concept) bool {
	mf := AsModelFilter(c.R)
	if mf == nil || !mf.DisprovesSubs(ctx, sup, sub) {
		return false
	}
	c.S.FilterHits.Add(1)
	return true
}

// Unwrap implements Wrapper so capability probes reach the wrapped
// plug-in through a Counting decorator.
func (c Counting) Unwrap() Interface { return c.R }
