// Package reasoner defines the plug-in interface between the parallel
// classifier and the underlying OWL reasoner, mirroring the paper's
// architecture: "in order to keep our architecture universal we use OWL
// reasoners as plug-ins for deciding satisfiability and subsumption"
// (Sec. I). The paper plugs in HermiT 1.3.8; this repository provides
// three interchangeable plug-ins:
//
//   - the tableau reasoner (internal/tableau) — the full calculus,
//   - the EL saturation reasoner (internal/el) — fast and complete for
//     the EL/ELH+ corpora of Table IV,
//   - the Oracle — a precomputed subsumption closure with a synthetic
//     per-test cost model, standing in for HermiT in scalability
//     experiments where only scheduling behaviour matters.
//
// The package also supplies a thread-safe memoizing decorator (Cached)
// and shared call statistics.
package reasoner

import (
	"sync/atomic"

	"parowl/internal/dl"
)

// Interface is the classifier's view of a reasoner plug-in. All methods
// must be safe for concurrent use: the classifier calls them from every
// worker thread.
//
// Subsumes(sup, sub) answers sub ⊑ sup — the paper's subs?(sup, sub).
// IsSatisfiable answers the paper's sat?().
type Interface interface {
	IsSatisfiable(c *dl.Concept) (bool, error)
	Subsumes(sup, sub *dl.Concept) (bool, error)
}

// Factory builds a plug-in reasoner for a TBox. Classifier options carry a
// Factory so the same classification code runs against any plug-in.
type Factory func(t *dl.TBox) (Interface, error)

// Stats counts plug-in calls with atomic counters.
type Stats struct {
	SatCalls  atomic.Int64
	SubsCalls atomic.Int64
}

// Counting wraps a reasoner so every call is tallied in Stats.
type Counting struct {
	R Interface
	S *Stats
}

// IsSatisfiable implements Interface.
func (c Counting) IsSatisfiable(x *dl.Concept) (bool, error) {
	c.S.SatCalls.Add(1)
	return c.R.IsSatisfiable(x)
}

// Subsumes implements Interface.
func (c Counting) Subsumes(sup, sub *dl.Concept) (bool, error) {
	c.S.SubsCalls.Add(1)
	return c.R.Subsumes(sup, sub)
}
