package reasoner

import (
	"context"
	"errors"
	"testing"
	"time"

	"parowl/internal/dl"
)

// chaosOutcome classifies one Chaos call for determinism comparisons.
func chaosOutcome(c *Chaos, ctx context.Context, tb *oracleFixture) string {
	defer func() { recover() }()
	ok, err := c.Subs(ctx, tb.a, tb.b)
	switch {
	case err == nil && ok:
		return "true"
	case err == nil:
		return "false"
	case errors.Is(err, ErrInjected):
		return "err"
	case errors.Is(err, ErrNodeBudget):
		return "node"
	case errors.Is(err, ErrBranchBudget):
		return "branch"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return "ctx"
	default:
		return "other"
	}
}

type oracleFixture struct {
	r    Interface
	a, b *dl.Concept
}

func newOracleFixture() *oracleFixture {
	tb := oracleTBox()
	f := tb.Factory
	return &oracleFixture{
		r: NewOracle(tb, OracleOptions{}),
		a: f.Name("A"),
		b: f.Name("B"),
	}
}

func TestChaosDeterministic(t *testing.T) {
	opts := ChaosOptions{Seed: 99, ErrRate: 0.2, PanicRate: 0.1, BudgetRate: 0.2}
	run := func() []string {
		fx := newOracleFixture()
		c := NewChaos(fx.r, opts)
		var out []string
		for i := 0; i < 200; i++ {
			out = append(out, chaosOutcome(c, context.Background(), fx))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: %q vs %q — chaos not deterministic for a fixed seed", i, a[i], b[i])
		}
	}
	// All configured fault kinds must actually fire over 200 draws.
	seen := map[string]bool{}
	for _, o := range a {
		seen[o] = true
	}
	for _, want := range []string{"true", "err", "node"} {
		if !seen[want] {
			t.Errorf("outcome %q never occurred in %v", want, seen)
		}
	}
}

func TestChaosZeroRatesIsTransparent(t *testing.T) {
	fx := newOracleFixture()
	c := NewChaos(fx.r, ChaosOptions{Seed: 1})
	for i := 0; i < 50; i++ {
		ok, err := c.Subs(context.Background(), fx.a, fx.b)
		if err != nil || !ok {
			t.Fatalf("call %d: %v, %v — zero-rate chaos altered the answer", i, ok, err)
		}
	}
	if c.Calls() != 50 {
		t.Errorf("Calls() = %d, want 50", c.Calls())
	}
}

func TestChaosHangRespectsContext(t *testing.T) {
	fx := newOracleFixture()
	c := NewChaos(fx.r, ChaosOptions{Seed: 3, HangRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Subs(ctx, fx.a, fx.b)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung call error = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang ignored the context deadline")
	}
	// A context that can never be cancelled must not hang forever: the
	// fault falls through to the real call.
	if ok, err := c.Subs(context.Background(), fx.a, fx.b); err != nil || !ok {
		t.Fatalf("hang with uncancellable ctx = %v, %v; want fall-through true", ok, err)
	}
}

func TestChaosPanics(t *testing.T) {
	fx := newOracleFixture()
	c := NewChaos(fx.r, ChaosOptions{Seed: 4, PanicRate: 1})
	defer func() {
		if recover() == nil {
			t.Error("PanicRate=1 call did not panic")
		}
	}()
	_, _ = c.Subs(context.Background(), fx.a, fx.b)
}

func TestChaosUnwrap(t *testing.T) {
	fx := newOracleFixture()
	c := NewChaos(fx.r, ChaosOptions{Seed: 1})
	if c.Unwrap() != fx.r {
		t.Error("Unwrap did not return the wrapped plug-in")
	}
	// Capability probes see through the chaos decorator.
	cached := NewCached(&countedFake{})
	chaotic := NewChaos(cached, ChaosOptions{Seed: 1})
	if AsCachePorter(chaotic) == nil {
		t.Error("AsCachePorter failed to find Cached through Chaos")
	}
}

func TestParseChaos(t *testing.T) {
	o, err := ParseChaos("err=0.01,panic=0.005,hang=0.002,budget=0.01,slow=2ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := ChaosOptions{Seed: 7, ErrRate: 0.01, PanicRate: 0.005, HangRate: 0.002, BudgetRate: 0.01, Slow: 2 * time.Millisecond}
	if o != want {
		t.Fatalf("ParseChaos = %+v, want %+v", o, want)
	}
	for _, bad := range []string{
		"frobnicate=1",      // unknown key
		"err",               // missing value
		"err=xyz",           // unparsable value
		"err=1.5",           // rate out of range
		"err=-0.1",          // negative rate
		"err=0.6,panic=0.6", // rates sum past 1
		"slow=-1ms",         // negative latency
	} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted", bad)
		}
	}
}

func TestChaosOptionsValidate(t *testing.T) {
	if err := (&ChaosOptions{ErrRate: 0.5, PanicRate: 0.5}).Validate(); err != nil {
		t.Errorf("rates summing to exactly 1 rejected: %v", err)
	}
	if err := (&ChaosOptions{ErrRate: 2}).Validate(); err == nil {
		t.Error("rate > 1 accepted")
	}
	if err := (&ChaosOptions{Slow: -time.Second}).Validate(); err == nil {
		t.Error("negative Slow accepted")
	}
}

func TestCachePortRoundTrip(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	src := NewCached(NewOracle(tb, OracleOptions{}))
	pairs := [][2]string{{"A", "B"}, {"A", "C"}, {"C", "B"}, {"B", "C"}}
	for _, p := range pairs {
		if _, err := src.Subsumes(f.Name(p[0]), f.Name(p[1])); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := src.IsSatisfiable(f.Name("U")); err != nil {
		t.Fatal(err)
	}

	snap := src.ExportCache()
	if len(snap.Subs) != len(pairs) || len(snap.Sat) != 1 {
		t.Fatalf("export = %d subs, %d sat; want %d, 1", len(snap.Subs), len(snap.Sat), len(pairs))
	}
	for i := 1; i < len(snap.Subs); i++ {
		if snap.Subs[i-1].Key >= snap.Subs[i].Key {
			t.Fatal("export not sorted by key")
		}
	}

	// Import into a cache over a plug-in that always errors: answers must
	// come from the imported entries, proving no underlying calls happen.
	dst := NewCached(errReasoner{})
	dst.ImportCache(snap)
	for _, p := range pairs {
		ok, err := dst.Subsumes(f.Name(p[0]), f.Name(p[1]))
		if err != nil {
			t.Fatalf("imported entry missed for %v: %v", p, err)
		}
		want, _ := src.Subsumes(f.Name(p[0]), f.Name(p[1]))
		if ok != want {
			t.Fatalf("imported answer for %v = %v, want %v", p, ok, want)
		}
	}
	if sat, err := dst.IsSatisfiable(f.Name("U")); err != nil || sat {
		t.Fatalf("imported sat entry = %v, %v; want false, nil", sat, err)
	}
}
