package reasoner

import (
	"context"
	"sync/atomic"
	"testing"

	"parowl/internal/dl"
)

// fakeFilter is a plug-in with the ModelFilter capability: Subs answers
// subsAnswer, DisprovesSubs answers disprove and counts probes.
type fakeFilter struct {
	subsAnswer bool
	disprove   bool
	subsCalls  atomic.Int64
	probes     atomic.Int64
}

func (f *fakeFilter) Sat(context.Context, *dl.Concept) (bool, error) { return true, nil }

func (f *fakeFilter) Subs(context.Context, *dl.Concept, *dl.Concept) (bool, error) {
	f.subsCalls.Add(1)
	return f.subsAnswer, nil
}

func (f *fakeFilter) DisprovesSubs(context.Context, *dl.Concept, *dl.Concept) bool {
	f.probes.Add(1)
	return f.disprove
}

func TestAsModelFilter(t *testing.T) {
	if AsModelFilter(&countedFake{}) != nil {
		t.Error("plain plug-in should not expose ModelFilter")
	}
	if AsModelFilter(&fakeFilter{}) == nil {
		t.Error("fakeFilter should expose ModelFilter")
	}
}

func TestCountingForwardsFilter(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	ctx := context.Background()
	a, b := f.Name("A"), f.Name("B")

	var stats Stats
	plain := Counting{R: &countedFake{}, S: &stats}
	if plain.DisprovesSubs(ctx, a, b) {
		t.Error("Counting around a filterless plug-in disproved something")
	}

	fk := &fakeFilter{disprove: true}
	c := Counting{R: fk, S: &stats}
	if !c.DisprovesSubs(ctx, a, b) {
		t.Fatal("Counting dropped the wrapped filter's disproof")
	}
	if stats.FilterHits.Load() != 1 {
		t.Errorf("FilterHits = %d, want 1", stats.FilterHits.Load())
	}
	fk.disprove = false
	if c.DisprovesSubs(ctx, a, b) {
		t.Error("Counting invented a disproof")
	}
	if stats.FilterHits.Load() != 1 {
		t.Errorf("FilterHits = %d after a miss, want 1", stats.FilterHits.Load())
	}
}

// TestCachedFilterMemo checks the filter/memo contract of Cached: a fresh
// disproof is remembered as a settled negative (so the later Subs never
// reaches the plug-in or the single-flight machinery), a settled positive
// short-circuits the filter to "don't know", and a settled negative is a
// free disproof without probing the filter again.
func TestCachedFilterMemo(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	ctx := context.Background()
	a, b, c, d := f.Name("A"), f.Name("B"), f.Name("C"), f.Name("D")

	fk := &fakeFilter{subsAnswer: true, disprove: true}
	cache := NewCached(fk)

	// Fresh disproof → settled negative, Subs answered from the memo.
	if !cache.DisprovesSubs(ctx, a, b) {
		t.Fatal("filter disproof lost")
	}
	if got, err := cache.Subsumes(a, b); err != nil || got {
		t.Fatalf("Subsumes after disproof = %v, %v; want false", got, err)
	}
	if fk.subsCalls.Load() != 0 {
		t.Errorf("underlying Subs calls = %d, want 0 (memo hit)", fk.subsCalls.Load())
	}
	// Second probe of the same key is a memo hit, not a new filter probe.
	if !cache.DisprovesSubs(ctx, a, b) {
		t.Fatal("settled negative should disprove for free")
	}
	if fk.probes.Load() != 1 {
		t.Errorf("filter probes = %d, want 1", fk.probes.Load())
	}

	// Settled positive (plug-in answered true) blocks later disproofs
	// regardless of what the filter would say.
	if got, err := cache.Subsumes(c, d); err != nil || !got {
		t.Fatalf("Subsumes = %v, %v; want true", got, err)
	}
	if cache.DisprovesSubs(ctx, c, d) {
		t.Error("settled positive was disproved")
	}
	if fk.probes.Load() != 1 {
		t.Errorf("filter probed on a settled key: probes = %d, want 1", fk.probes.Load())
	}
}

func TestCachedWithoutFilterCapability(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	cache := NewCached(&countedFake{})
	if AsModelFilter(cache) == nil {
		// Cached always has the method; it must degrade to "don't know".
		t.Fatal("Cached should satisfy ModelFilter")
	}
	if cache.DisprovesSubs(context.Background(), f.Name("A"), f.Name("B")) {
		t.Error("Cached around a filterless plug-in disproved something")
	}
}
