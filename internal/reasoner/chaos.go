package reasoner

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"parowl/internal/dl"
)

// ErrInjected marks a fault produced by the Chaos decorator rather than a
// real reasoning failure. The classifier treats it like any other plug-in
// error — the run aborts — which is exactly what crash-safety tests want
// to provoke.
var ErrInjected = errors.New("reasoner: injected chaos fault")

// ChaosOptions configures the fault mix of a Chaos decorator. Rates are
// per-call probabilities in [0, 1] and are drawn in the listed order from
// a single uniform sample, so ErrRate+PanicRate+HangRate+BudgetRate must
// not exceed 1.
type ChaosOptions struct {
	// Seed makes the fault schedule deterministic: the i-th call of a
	// Chaos instance draws from a hash of (Seed, i), so two runs with the
	// same seed and call order inject the same faults.
	Seed int64
	// ErrRate injects ErrInjected — a run-fatal plug-in error, the
	// resumable-crash case.
	ErrRate float64
	// PanicRate panics with an ErrInjected-derived message; the classifier
	// recovers it into an undecided test.
	PanicRate float64
	// HangRate blocks until the call's context is done, simulating a
	// non-terminating tableau test; it requires a cancellable context
	// (per-test budget or run deadline) and falls through to the real call
	// otherwise.
	HangRate float64
	// BudgetRate injects ErrNodeBudget / ErrBranchBudget (alternating),
	// simulating resource-exhaustion degradation.
	BudgetRate float64
	// Slow adds a fixed context-aware latency to every call, stretching
	// runs so external kills land mid-classification.
	Slow time.Duration
}

// Validate reports the first configuration error, or nil.
func (o *ChaosOptions) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"err", o.ErrRate}, {"panic", o.PanicRate}, {"hang", o.HangRate}, {"budget", o.BudgetRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("reasoner: chaos %s rate %v outside [0, 1]", r.name, r.v)
		}
	}
	if sum := o.ErrRate + o.PanicRate + o.HangRate + o.BudgetRate; sum > 1 {
		return fmt.Errorf("reasoner: chaos rates sum to %v > 1", sum)
	}
	if o.Slow < 0 {
		return fmt.Errorf("reasoner: negative chaos slow %v", o.Slow)
	}
	return nil
}

// Chaos is a fault-injecting decorator for crash-safety and degradation
// testing: each Sat/Subs call first draws from a deterministic schedule
// and possibly errors, panics, hangs, or reports budget exhaustion
// instead of (or before) delegating to the wrapped plug-in.
//
// Compose it OUTSIDE other decorators — Chaos(Cached(inner)), never
// Cached(Chaos(inner)) — so an injected panic cannot unwind the cache's
// single-flight bookkeeping mid-update.
type Chaos struct {
	r    Interface
	opts ChaosOptions
	seq  atomic.Uint64
}

// NewChaos wraps r with fault injection. Panics if opts fails Validate,
// as a misconfigured chaos harness silently tests nothing.
func NewChaos(r Interface, opts ChaosOptions) *Chaos {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	return &Chaos{r: r, opts: opts}
}

// Unwrap implements Wrapper so capability probes (ModelFilter,
// CachePorter) reach the wrapped plug-in; chaos does not intercept those
// paths.
func (c *Chaos) Unwrap() Interface { return c.r }

// Calls returns how many Sat/Subs calls the decorator has seen.
func (c *Chaos) Calls() uint64 { return c.seq.Load() }

// inject runs the fault draw for one call, hashing (seed, seq) with the
// package's splitmix64 (oracle.go) so schedules are deterministic. It returns a non-nil error for
// an injected error, panics for an injected panic, blocks for an injected
// hang, and returns nil when the real call should proceed.
func (c *Chaos) inject(ctx context.Context, what string) error {
	seq := c.seq.Add(1)
	h := splitmix64(uint64(c.opts.Seed) ^ seq)
	if c.opts.Slow > 0 {
		t := time.NewTimer(c.opts.Slow)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	// One uniform draw cascades through the rates in a fixed order.
	u := float64(h>>11) / float64(1<<53)
	switch {
	case u < c.opts.ErrRate:
		return fmt.Errorf("%w: %s (call %d)", ErrInjected, what, seq)
	case u < c.opts.ErrRate+c.opts.PanicRate:
		panic(fmt.Sprintf("injected chaos panic: %s (call %d)", what, seq))
	case u < c.opts.ErrRate+c.opts.PanicRate+c.opts.HangRate:
		if ctx.Done() != nil {
			<-ctx.Done()
			return ctx.Err()
		}
		// Uncancellable context: a real hang would block forever, so fall
		// through to the genuine call.
		return nil
	case u < c.opts.ErrRate+c.opts.PanicRate+c.opts.HangRate+c.opts.BudgetRate:
		if h&(1<<10) != 0 {
			return fmt.Errorf("chaos: %s: %w", what, ErrBranchBudget)
		}
		return fmt.Errorf("chaos: %s: %w", what, ErrNodeBudget)
	}
	return nil
}

// Sat implements Interface.
func (c *Chaos) Sat(ctx context.Context, x *dl.Concept) (bool, error) {
	if err := c.inject(ctx, fmt.Sprintf("sat?(%v)", x)); err != nil {
		return false, err
	}
	return c.r.Sat(ctx, x)
}

// Subs implements Interface.
func (c *Chaos) Subs(ctx context.Context, sup, sub *dl.Concept) (bool, error) {
	if err := c.inject(ctx, fmt.Sprintf("subs?(%v, %v)", sup, sub)); err != nil {
		return false, err
	}
	return c.r.Subs(ctx, sup, sub)
}

// ParseChaos builds ChaosOptions from a compact comma-separated spec, the
// format of owlclass's -chaos flag:
//
//	err=0.01,panic=0.005,hang=0.002,budget=0.01,slow=2ms,seed=7
//
// Unknown keys, malformed values, and invalid rate combinations are
// errors. An empty spec yields the zero options (no faults).
func ParseChaos(spec string) (ChaosOptions, error) {
	var o ChaosOptions
	if spec == "" {
		return o, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return o, fmt.Errorf("reasoner: chaos spec field %q is not key=value", field)
		}
		var err error
		switch k {
		case "err":
			o.ErrRate, err = strconv.ParseFloat(v, 64)
		case "panic":
			o.PanicRate, err = strconv.ParseFloat(v, 64)
		case "hang":
			o.HangRate, err = strconv.ParseFloat(v, 64)
		case "budget":
			o.BudgetRate, err = strconv.ParseFloat(v, 64)
		case "slow":
			o.Slow, err = time.ParseDuration(v)
		case "seed":
			o.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return o, fmt.Errorf("reasoner: unknown chaos key %q", k)
		}
		if err != nil {
			return o, fmt.Errorf("reasoner: chaos %s: %v", k, err)
		}
	}
	return o, o.Validate()
}
