package reasoner

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"parowl/internal/dl"
)

// blockOnceReasoner's first Subs call parks until its context is
// cancelled and returns the context error; every later call answers
// immediately. This scripts the "leader dies mid-flight" scenario.
type blockOnceReasoner struct {
	calls   atomic.Int64
	entered chan struct{} // closed when the first call is in flight
}

func (b *blockOnceReasoner) Sat(context.Context, *dl.Concept) (bool, error) { return true, nil }

func (b *blockOnceReasoner) Subs(ctx context.Context, _, _ *dl.Concept) (bool, error) {
	if b.calls.Add(1) == 1 {
		close(b.entered)
		<-ctx.Done()
		return false, ctx.Err()
	}
	return true, nil
}

// TestCachedCancelledLeaderDoesNotPoison: when the single-flight leader's
// own context is cancelled mid-call, followers with live contexts must
// not inherit the cancellation — they retry under their own budget,
// settle the entry, and later callers hit the cache.
func TestCachedCancelledLeaderDoesNotPoison(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	r := &blockOnceReasoner{entered: make(chan struct{})}
	c := NewCached(r)
	a, b := f.Name("A"), f.Name("B")

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Subs(leaderCtx, a, b)
		leaderErr <- err
	}()
	<-r.entered // the leader's underlying call is parked on its context

	followerDone := make(chan error, 1)
	var followerVal bool
	go func() {
		ok, err := c.Subs(context.Background(), a, b)
		followerVal = ok
		followerDone <- err
	}()
	// Give the follower time to join the leader's flight (joining is the
	// interesting path; if it races ahead and becomes its own runner the
	// assertions below still hold).
	time.Sleep(20 * time.Millisecond)

	cancelLeader()
	if err := <-leaderErr; err != context.Canceled {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	select {
	case err := <-followerDone:
		if err != nil || !followerVal {
			t.Fatalf("follower got %v, %v; want true, nil", followerVal, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower deadlocked after leader cancellation")
	}

	// The follower's retry settled the entry: no further underlying calls.
	before := r.calls.Load()
	if ok, err := c.Subs(context.Background(), a, b); err != nil || !ok {
		t.Fatalf("cached Subs = %v, %v", ok, err)
	}
	if after := r.calls.Load(); after != before {
		t.Fatalf("settled entry re-ran the plug-in: %d -> %d calls", before, after)
	}
	if before != 2 {
		t.Errorf("underlying calls = %d, want 2 (cancelled leader + follower retry)", before)
	}
}

// TestCachedWaiterOwnDeadline: a waiter whose own context expires while
// the flight is still running stops waiting with its error instead of
// blocking on the (parked) leader.
func TestCachedWaiterOwnDeadline(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	r := &blockOnceReasoner{entered: make(chan struct{})}
	c := NewCached(r)
	a, b := f.Name("A"), f.Name("B")

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	go func() { _, _ = c.Subs(leaderCtx, a, b) }()
	<-r.entered

	waiterCtx, cancelWaiter := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancelWaiter()
	_, err := c.Subs(waiterCtx, a, b)
	if err != context.DeadlineExceeded {
		t.Fatalf("waiter error = %v, want DeadlineExceeded", err)
	}
}
