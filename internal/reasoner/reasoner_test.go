package reasoner

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parowl/internal/dl"
)

func oracleTBox() *dl.TBox {
	tb := dl.NewTBox("oracle")
	f := tb.Factory
	a, b, c, d := tb.Declare("A"), tb.Declare("B"), tb.Declare("C"), tb.Declare("D")
	u := tb.Declare("U")
	tb.SubClassOf(b, a)
	tb.SubClassOf(c, b)
	tb.EquivalentClasses(d, a) // D ≡ A via told axioms
	tb.SubClassOf(u, f.Bottom())
	tb.Freeze()
	return tb
}

func TestOracleClosure(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	o := NewOracle(tb, OracleOptions{})
	cases := []struct {
		sup, sub string
		want     bool
	}{
		{"A", "B", true},
		{"A", "C", true}, // transitive
		{"B", "C", true},
		{"C", "B", false},
		{"A", "D", true},
		{"D", "A", true}, // equivalence both ways
		{"D", "C", true}, // via A
	}
	for _, c := range cases {
		got, err := o.Subsumes(f.Name(c.sup), f.Name(c.sub))
		if err != nil {
			t.Fatalf("%s ⊒ %s: %v", c.sup, c.sub, err)
		}
		if got != c.want {
			t.Errorf("%s ⊒ %s = %v, want %v", c.sup, c.sub, got, c.want)
		}
	}
}

func TestOracleTopBottom(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	o := NewOracle(tb, OracleOptions{})
	if ok, _ := o.Subsumes(f.Top(), f.Name("C")); !ok {
		t.Error("C ⊑ ⊤ false")
	}
	if ok, _ := o.Subsumes(f.Name("C"), f.Top()); ok {
		t.Error("⊤ ⊑ C true")
	}
	if sat, _ := o.IsSatisfiable(f.Name("U")); sat {
		t.Error("U satisfiable despite U ⊑ ⊥")
	}
	if ok, _ := o.Subsumes(f.Name("C"), f.Name("U")); !ok {
		t.Error("unsat U not subsumed by everything")
	}
	if _, err := o.Subsumes(f.Name("C"), f.Name("NotDeclared")); err == nil {
		t.Error("undeclared concept accepted")
	}
}

func TestOracleTopEquivalence(t *testing.T) {
	tb := dl.NewTBox("topeq")
	f := tb.Factory
	a, b := tb.Declare("A"), tb.Declare("B")
	tb.EquivalentClasses(a, f.Top())
	tb.SubClassOf(b, a)
	tb.Freeze()
	o := NewOracle(tb, OracleOptions{})
	if ok, err := o.Subsumes(a, f.Top()); err != nil || !ok {
		t.Errorf("⊤ ⊑ A = %v, %v; want true", ok, err)
	}
	// ⊤ ⊑ A and B ⊑ anything-below-top transitively: B ⊑ A directly too.
	if ok, _ := o.Subsumes(a, b); !ok {
		t.Error("B ⊑ A false")
	}
}

func TestUniformCostDeterministic(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	m := UniformCost(time.Millisecond, 0.3, 42)
	a, b := f.Name("A"), f.Name("B")
	c1, c2 := m(a, b, true), m(a, b, true)
	if c1 != c2 {
		t.Error("cost not deterministic")
	}
	if c1 < 700*time.Microsecond || c1 > 1300*time.Microsecond {
		t.Errorf("cost %v outside jitter band", c1)
	}
	if m(a, b, true) == m(b, a, true) && m(a, f.Name("C"), true) == m(a, b, true) {
		t.Error("suspiciously constant costs")
	}
}

func TestHeavyTailCost(t *testing.T) {
	tb := dl.NewTBox("ht")
	var cs []*dl.Concept
	for i := 0; i < 400; i++ {
		cs = append(cs, tb.Declare(string(rune('A'+i%26))+string(rune('0'+i/26))))
	}
	m := HeavyTailCost(time.Millisecond, 0.05, 100, 7)
	tail, body := 0, 0
	for i := 0; i < len(cs); i++ {
		for j := 0; j < 20; j++ {
			c := m(cs[i], cs[(i+j+1)%len(cs)], true)
			if c >= 50*time.Millisecond {
				tail++
			} else {
				body++
			}
		}
	}
	frac := float64(tail) / float64(tail+body)
	if frac < 0.02 || frac > 0.10 {
		t.Errorf("tail fraction = %.3f, want ≈0.05", frac)
	}
}

type countedFake struct {
	mu    sync.Mutex
	calls int
}

func (c *countedFake) Sat(_ context.Context, _ *dl.Concept) (bool, error) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return true, nil
}
func (c *countedFake) Subs(_ context.Context, _, _ *dl.Concept) (bool, error) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return true, nil
}

func TestCachedDedupes(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	fake := &countedFake{}
	c := NewCached(fake)
	a, b := f.Name("A"), f.Name("B")
	for i := 0; i < 10; i++ {
		if _, err := c.Subsumes(a, b); err != nil {
			t.Fatal(err)
		}
		if _, err := c.IsSatisfiable(a); err != nil {
			t.Fatal(err)
		}
	}
	if fake.calls != 2 {
		t.Errorf("underlying calls = %d, want 2", fake.calls)
	}
	// Direction matters for subsumption.
	if _, err := c.Subsumes(b, a); err != nil {
		t.Fatal(err)
	}
	if fake.calls != 3 {
		t.Errorf("underlying calls = %d, want 3", fake.calls)
	}
}

type errReasoner struct{}

func (errReasoner) Sat(context.Context, *dl.Concept) (bool, error) {
	return false, errors.New("boom")
}
func (errReasoner) Subs(context.Context, *dl.Concept, *dl.Concept) (bool, error) {
	return false, errors.New("boom")
}

func TestCachedDoesNotCacheErrors(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	c := NewCached(errReasoner{})
	if _, err := c.IsSatisfiable(f.Name("A")); err == nil {
		t.Fatal("error swallowed")
	}
	if _, err := c.IsSatisfiable(f.Name("A")); err == nil {
		t.Fatal("error cached as success")
	}
}

func TestCountingWrapper(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	var stats Stats
	c := Counting{R: &countedFake{}, S: &stats}
	ctx := context.Background()
	_, _ = c.Subs(ctx, f.Name("A"), f.Name("B"))
	_, _ = c.Sat(ctx, f.Name("A"))
	_, _ = c.Sat(ctx, f.Name("B"))
	if stats.SubsCalls.Load() != 1 || stats.SatCalls.Load() != 2 {
		t.Errorf("stats = %d subs, %d sat", stats.SubsCalls.Load(), stats.SatCalls.Load())
	}
}

// gatedReasoner counts Subsumes calls and holds each call open until the
// test releases it, so concurrent cache misses can be arranged reliably.
type gatedReasoner struct {
	calls   atomic.Int64
	entered *atomic.Int64 // callers that have started a Subsumes request
	waitFor int64         // hold fn open until this many callers entered
	release chan struct{} // closed by fn once all callers are in
}

func (g *gatedReasoner) Sat(context.Context, *dl.Concept) (bool, error) { return true, nil }

func (g *gatedReasoner) Subs(_ context.Context, _, _ *dl.Concept) (bool, error) {
	g.calls.Add(1)
	// Wait until every test goroutine has issued its request, then give
	// the stragglers a moment to reach the in-flight wait before
	// answering: all of them must join this flight, not start their own.
	for g.entered.Load() < g.waitFor {
		runtime.Gosched()
	}
	time.Sleep(10 * time.Millisecond)
	close(g.release)
	return true, nil
}

// TestCachedSingleFlight proves the thundering-herd suppression: N
// workers missing on the same (sup, sub) key concurrently trigger exactly
// one underlying call, and all N receive its answer.
func TestCachedSingleFlight(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	const workers = 16
	var entered atomic.Int64
	g := &gatedReasoner{entered: &entered, waitFor: workers, release: make(chan struct{})}
	c := NewCached(g)
	a, b := f.Name("A"), f.Name("B")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered.Add(1)
			ok, err := c.Subsumes(a, b)
			if err != nil || !ok {
				t.Errorf("Subsumes = %v, %v", ok, err)
			}
		}()
	}
	wg.Wait()
	if n := g.calls.Load(); n != 1 {
		t.Errorf("underlying calls = %d, want 1 (single-flight)", n)
	}
	// The settled answer is served from the cache afterwards.
	if ok, err := c.Subsumes(a, b); err != nil || !ok {
		t.Errorf("cached Subsumes = %v, %v", ok, err)
	}
	if n := g.calls.Load(); n != 1 {
		t.Errorf("underlying calls after cache hit = %d, want 1", n)
	}
}

// TestCachedSingleFlightErrorPropagates: a failed flight hands its error
// to every waiter and is not cached, so the next caller retries.
func TestCachedSingleFlightErrorPropagates(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	c := NewCached(errReasoner{})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = c.Subsumes(f.Name("A"), f.Name("B"))
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err == nil {
			t.Errorf("worker %d: error lost", w)
		}
	}
	if _, err := c.Subsumes(f.Name("A"), f.Name("B")); err == nil {
		t.Error("error cached as success")
	}
}

func TestCachedConcurrent(t *testing.T) {
	tb := oracleTBox()
	f := tb.Factory
	c := NewCached(NewOracle(tb, OracleOptions{}))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ok, err := c.Subsumes(f.Name("A"), f.Name("C"))
				if err != nil || !ok {
					t.Errorf("C ⊑ A = %v, %v", ok, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
