package reasoner

import (
	"context"
	"time"

	"parowl/internal/bitset"
	"parowl/internal/dl"
)

// CostModel assigns a deterministic virtual duration to one subsumption
// test. The scalability experiments use it to reproduce the paper's two
// observed regimes (Sec. V-B): "rather uniform" test times for most
// ontologies and a few very expensive tests for high-QCR ontologies.
type CostModel func(sup, sub *dl.Concept, result bool) time.Duration

// Virtual is implemented by plug-ins whose tests carry a synthetic cost.
// The classifier's tracing layer charges this cost instead of measured
// wall time, and the virtual-time scheduler (internal/schedsim) replays it
// on w simulated workers.
type Virtual interface {
	VirtualSubsCost(sup, sub *dl.Concept, result bool) time.Duration
	VirtualSatCost(c *dl.Concept, result bool) time.Duration
}

// splitmix64 is a tiny deterministic hash used to derive per-pair jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func pairHash(seed uint64, a, b int32) uint64 {
	return splitmix64(seed ^ splitmix64(uint64(uint32(a))<<32|uint64(uint32(b))))
}

// UniformCost returns a cost model with a fixed base duration and up to
// ±jitterFrac relative deterministic jitter, reproducing HermiT's uniform
// per-test behaviour on the Table IV corpora.
func UniformCost(base time.Duration, jitterFrac float64, seed uint64) CostModel {
	return func(sup, sub *dl.Concept, _ bool) time.Duration {
		h := pairHash(seed, sup.ID, sub.ID)
		// Map the hash to [-1, 1).
		u := float64(int64(h))/float64(1<<63) + 0
		return base + time.Duration(float64(base)*jitterFrac*u)
	}
}

// HeavyTailCost returns a cost model where a deterministic tailProb
// fraction of pairs cost tailFactor × base, reproducing the paper's
// observation that for ontologies with many QCRs "a few subsumption tests
// may require a significant amount of the total runtime" — the cause of
// the bridg ontology's speedup plateau in Fig. 10(b).
func HeavyTailCost(base time.Duration, tailProb float64, tailFactor float64, seed uint64) CostModel {
	uniform := UniformCost(base, 0.2, seed)
	threshold := uint64(tailProb * float64(^uint64(0)))
	return func(sup, sub *dl.Concept, result bool) time.Duration {
		if pairHash(seed^0xabcdef, sup.ID, sub.ID) < threshold {
			return time.Duration(float64(base) * tailFactor)
		}
		return uniform(sup, sub, result)
	}
}

// Oracle is a deterministic reasoner plug-in: it precomputes the
// subsumption closure entailed by the named-level axioms of a TBox and
// answers every test by bitset lookup, charging a CostModel-defined
// virtual duration. It stands in for HermiT in experiments whose subject
// is the classifier's scheduling, not the DL calculus. The generated
// corpora (internal/ontogen) are constructed so that this closure is the
// complete entailed subsumption relation.
//
// Oracle is safe for concurrent use after New.
type Oracle struct {
	tbox      *dl.TBox
	index     map[*dl.Concept]int
	named     []*dl.Concept
	ancestors []*bitset.Set // per concept: indexes of all subsumers (reflexive)
	unsat     *bitset.Set
	subsCost  CostModel
	satCost   time.Duration
	realTime  bool
}

// OracleOptions configures the synthetic cost model.
type OracleOptions struct {
	// SubsCost is the per-test cost model; nil means zero cost.
	SubsCost CostModel
	// SatCost is charged per satisfiability test.
	SatCost time.Duration
	// RealTime makes Sat/Subs actually sleep their virtual cost instead
	// of answering instantly. Virtual-time replay (schedsim) does not
	// need this, but wall-clock scheduler benchmarks do: with real
	// per-test durations the pool's policies produce measurably different
	// makespans. Sleeps respect context cancellation.
	RealTime bool
}

// NewOracle builds the told-closure oracle for t. ⊤ participates as a
// regular node so that ⊤ ⊑ X queries (equivalence to ⊤) are answerable.
func NewOracle(t *dl.TBox, opts OracleOptions) *Oracle {
	named := append(append([]*dl.Concept(nil), t.NamedConcepts()...), t.Factory.Top())
	o := &Oracle{
		tbox:     t,
		index:    make(map[*dl.Concept]int, len(named)),
		named:    named,
		subsCost: opts.SubsCost,
		satCost:  opts.SatCost,
		realTime: opts.RealTime,
	}
	for i, c := range named {
		o.index[c] = i
	}
	n := len(named)
	parents := make([][]int, n)   // direct told subsumers
	toBottom := bitset.New(n + 1) // concepts with an axiom path to ⊥
	addEdge := func(sub, sup *dl.Concept) {
		si, ok := o.index[sub]
		if !ok {
			return
		}
		if sup.Op == dl.OpBottom {
			toBottom.Set(si)
			return
		}
		// A named conjunction on the right contributes one edge per
		// conjunct; other complex right sides carry no named entailment.
		switch sup.Op {
		case dl.OpName:
			if pi, ok := o.index[sup]; ok {
				parents[si] = append(parents[si], pi)
			}
		case dl.OpAnd:
			for _, arg := range sup.Args {
				if arg.Op == dl.OpName {
					if pi, ok := o.index[arg]; ok {
						parents[si] = append(parents[si], pi)
					}
				}
			}
		}
	}
	for _, ax := range t.AsGCIs() {
		addEdge(ax.Sub, ax.Sup)
	}
	// Every concept is below ⊤, so axioms on ⊤ (e.g. ⊤ ⊑ A from
	// EquivalentClasses(A, owl:Thing)) propagate to everything.
	topIdx := n - 1
	for i := 0; i < topIdx; i++ {
		parents[i] = append(parents[i], topIdx)
	}
	// Reflexive-transitive closure by DFS per concept (corpora are
	// taxonomy-shaped DAGs, so this stays near-linear).
	o.ancestors = make([]*bitset.Set, n)
	o.unsat = bitset.New(n)
	var visit func(i int, acc *bitset.Set)
	visit = func(i int, acc *bitset.Set) {
		if acc.Test(i) {
			return
		}
		acc.Set(i)
		for _, p := range parents[i] {
			visit(p, acc)
		}
	}
	for i := 0; i < n; i++ {
		acc := bitset.New(n)
		visit(i, acc)
		o.ancestors[i] = acc
	}
	// Unsatisfiability propagates downward: A is unsat if any of its
	// subsumers reaches ⊥.
	for i := 0; i < n; i++ {
		o.ancestors[i].ForEach(func(p int) bool {
			if toBottom.Test(p) {
				o.unsat.Set(i)
				return false
			}
			return true
		})
	}
	return o
}

// Sat implements Interface for named concepts (⊤/⊥ allowed). The answer
// is a bitset lookup, so the context is only checked up front.
func (o *Oracle) Sat(ctx context.Context, c *dl.Concept) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	switch c.Op {
	case dl.OpTop:
		return true, nil
	case dl.OpBottom:
		return false, nil
	}
	i, ok := o.index[c]
	if !ok {
		return false, errNotNamed(c, o.tbox)
	}
	if o.realTime {
		if err := sleepFor(ctx, o.satCost); err != nil {
			return false, err
		}
	}
	return !o.unsat.Test(i), nil
}

// Subs implements Interface for named concepts (⊤/⊥ allowed).
func (o *Oracle) Subs(ctx context.Context, sup, sub *dl.Concept) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if sup.Op == dl.OpTop || sub.Op == dl.OpBottom {
		return true, nil
	}
	si, ok := o.index[sub]
	if !ok {
		return false, errNotNamed(sub, o.tbox)
	}
	if o.unsat.Test(si) {
		return true, nil
	}
	if sup.Op == dl.OpBottom {
		return false, nil
	}
	pi, ok := o.index[sup]
	if !ok {
		return false, errNotNamed(sup, o.tbox)
	}
	res := o.ancestors[si].Test(pi)
	if o.realTime && o.subsCost != nil {
		if err := sleepFor(ctx, o.subsCost(sup, sub, res)); err != nil {
			return false, err
		}
	}
	return res, nil
}

// sleepFor blocks for d, honouring context cancellation (RealTime mode).
func sleepFor(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// IsSatisfiable is the context-free convenience form of Sat.
//
// Deprecated: use Sat with a context.
func (o *Oracle) IsSatisfiable(c *dl.Concept) (bool, error) {
	return o.Sat(context.Background(), c)
}

// Subsumes is the context-free convenience form of Subs.
//
// Deprecated: use Subs with a context.
func (o *Oracle) Subsumes(sup, sub *dl.Concept) (bool, error) {
	return o.Subs(context.Background(), sup, sub)
}

// VirtualSubsCost implements Virtual.
func (o *Oracle) VirtualSubsCost(sup, sub *dl.Concept, result bool) time.Duration {
	if o.subsCost == nil {
		return 0
	}
	return o.subsCost(sup, sub, result)
}

// VirtualSatCost implements Virtual.
func (o *Oracle) VirtualSatCost(*dl.Concept, bool) time.Duration { return o.satCost }

type oracleErr struct {
	c *dl.Concept
	t *dl.TBox
}

func errNotNamed(c *dl.Concept, t *dl.TBox) error { return &oracleErr{c, t} }

func (e *oracleErr) Error() string {
	return "reasoner: oracle can only answer for named concepts of " + e.t.Name + ", got " + e.c.String()
}
