package tableau

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"parowl/internal/dl"
)

// TestDisprovesSubsSound property-checks the filter's one-sided contract:
// whenever DisprovesSubs answers true, the full tableau must agree the
// subsumption does not hold. False answers promise nothing.
func TestDisprovesSubsSound(t *testing.T) {
	ctx := context.Background()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := dl.NewTBox("filter")
		f := tb.Factory
		n := 4 + rng.Intn(4)
		cs := make([]*dl.Concept, n)
		for i := range cs {
			cs[i] = tb.Declare(fmt.Sprintf("M%d", i))
		}
		roles := []*dl.Role{f.Role("r"), f.Role("s")}
		for i, k := 0, 3+rng.Intn(6); i < k; i++ {
			sub := cs[rng.Intn(n)]
			switch rng.Intn(6) {
			case 0:
				tb.SubClassOf(sub, f.Some(roles[rng.Intn(2)], cs[rng.Intn(n)]))
			case 1:
				tb.SubClassOf(sub, f.All(roles[rng.Intn(2)], cs[rng.Intn(n)]))
			case 2:
				tb.SubClassOf(sub, f.Min(2, roles[rng.Intn(2)], cs[rng.Intn(n)]))
			case 3:
				tb.SubClassOf(sub, f.Max(1+rng.Intn(2), roles[rng.Intn(2)], cs[rng.Intn(n)]))
			case 4:
				tb.DisjointClasses(sub, cs[rng.Intn(n)])
			default:
				tb.SubClassOf(sub, cs[rng.Intn(n)])
			}
		}
		r := New(tb, Options{}) // filter works with ModelMerging off
		for _, sub := range tb.NamedConcepts() {
			for _, sup := range tb.NamedConcepts() {
				if !r.DisprovesSubs(ctx, sup, sub) {
					continue
				}
				holds, err := r.Subsumes(sup, sub)
				if err != nil {
					continue // budget blowup: nothing to compare
				}
				if holds {
					t.Logf("seed %d: filter disproved %v ⊑ %v but it holds", seed, sub, sup)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDisprovesSubsFires: on a flat ontology of unrelated concepts the
// pseudo-models are tiny and clash-free, so the filter must disprove
// every cross pair — the workload where the cheap-first pipeline pays.
func TestDisprovesSubsFires(t *testing.T) {
	ctx := context.Background()
	tb := dl.NewTBox("flat")
	f := tb.Factory
	for i := 0; i < 8; i++ {
		tb.SubClassOf(tb.Declare(fmt.Sprintf("F%d", i)), f.Some(f.Role(fmt.Sprintf("q%d", i)), tb.Declare(fmt.Sprintf("G%d", i))))
	}
	r := New(tb, Options{})
	hits := 0
	for _, sub := range tb.NamedConcepts() {
		for _, sup := range tb.NamedConcepts() {
			if sub == sup {
				continue
			}
			if r.DisprovesSubs(ctx, sup, sub) {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Fatal("filter never fired on a flat ontology")
	}
	if r.Stats().MergeSkips.Load() == 0 {
		t.Error("MergeSkips not counted for filter hits")
	}

	// Unsatisfiable left side: sub ⊑ anything holds vacuously, so the
	// filter must answer "don't know", never a wrong disproof. (Fresh
	// TBox: New froze the one above.)
	tb2 := dl.NewTBox("unsatleft")
	f2 := tb2.Factory
	a, b, u := tb2.Declare("A"), tb2.Declare("B"), tb2.Declare("U")
	tb2.SubClassOf(u, f2.And(a, f2.Not(a)))
	r2 := New(tb2, Options{})
	if r2.DisprovesSubs(ctx, b, u) {
		t.Error("filter disproved a vacuous subsumption from an unsat left side")
	}
}
