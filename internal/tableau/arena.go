package tableau

import "parowl/internal/dl"

// This file implements the solver arena: every object a satisfiability
// test allocates — the solver itself, completion graphs, nodes, and
// dependency sets — is recycled across tests instead of being handed to
// the garbage collector. Classification runs millions of tableau tests
// (paper Sec. V); steady-state, a test served by a warm arena performs no
// per-test heap allocation on the deterministic path.
//
// Lifecycle:
//
//	Reasoner.solvers (sync.Pool) ── acquireSolver ──> solver
//	    solver.allocGraph / allocNode / arena.alloc    (during the test)
//	releaseSolver: reset every object handed out, then pool.Put
//
// The reset invariant: a pooled object is fully reset BEFORE the solver
// returns to the pool, so no label, edge, inequality or dependency set
// can leak from one test into the next (tested property-style in
// arena_test.go).

// allocNode returns a reset node owned by this solver, reusing one from a
// previous test when available.
func (s *solver) allocNode() *node {
	if s.nodeUsed < len(s.nodeSlab) {
		n := s.nodeSlab[s.nodeUsed]
		s.nodeUsed++
		s.nodesReused++
		return n
	}
	n := &node{}
	s.nodeSlab = append(s.nodeSlab, n)
	s.nodeUsed++
	s.nodesAllocated++
	return n
}

// cloneNode copies n (copy-on-write fault) into an arena node.
func (s *solver) cloneNode(n *node, epoch int32) *node {
	c := s.allocNode()
	c.epoch = epoch
	c.id = n.id
	c.parent = n.parent
	c.pruned = n.pruned
	c.label.copyFrom(&n.label)
	c.edgeRoles = append(c.edgeRoles[:0], n.edgeRoles...)
	c.edgeDeps = append(c.edgeDeps[:0], n.edgeDeps...)
	c.children = append(c.children[:0], n.children...)
	c.minApplied = append(c.minApplied[:0], n.minApplied...)
	return c
}

// allocGraph returns a reset graph owned by this solver.
func (s *solver) allocGraph() *graph {
	if s.graphUsed < len(s.graphSlab) {
		g := s.graphSlab[s.graphUsed]
		s.graphUsed++
		return g
	}
	g := &graph{s: s, distinct: make(map[pairKey]depSet)}
	s.graphSlab = append(s.graphSlab, g)
	s.graphUsed++
	return g
}

// start prepares the solver for one satisfiability test of concept c: a
// fresh base graph whose root carries {⊤, c}.
func (s *solver) start(c *dl.Concept) {
	s.g = s.allocGraph()
	root := s.g.newNode(-1)
	s.g.add(root.id, s.p.factory.Top(), emptyDeps)
	s.g.add(root.id, c, emptyDeps)
}

// resetForReuse resets every object handed out during the last test so
// the solver can serve the next one. Counters that feed Reasoner.Stats
// are left for the releasing reasoner to harvest first.
func (s *solver) resetForReuse() {
	for _, n := range s.nodeSlab[:s.nodeUsed] {
		n.reset()
	}
	s.nodeUsed = 0
	for _, g := range s.graphSlab[:s.graphUsed] {
		g.reset()
	}
	s.graphUsed = 0
	s.arena.reset()
	s.g = nil
	s.ctx = nil
	s.done = nil
	s.nextBranch = 0
	s.created = 0
	s.nodesReused = 0
	s.nodesAllocated = 0
	s.nbuf = s.nbuf[:0]
	s.mbuf = s.mbuf[:0]
	s.idbuf = s.idbuf[:0]
}
