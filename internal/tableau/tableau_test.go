package tableau

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"parowl/internal/dl"
)

func newEmpty(t *testing.T) (*dl.TBox, *dl.Factory, *Reasoner) {
	t.Helper()
	tb := dl.NewTBox("test")
	return tb, tb.Factory, nil // reasoner built after axioms are added
}

func mustSat(t *testing.T, r *Reasoner, c *dl.Concept, want bool) {
	t.Helper()
	got, err := r.IsSatisfiable(c)
	if err != nil {
		t.Fatalf("IsSatisfiable(%v): %v", c, err)
	}
	if got != want {
		t.Fatalf("IsSatisfiable(%v) = %v, want %v", c, got, want)
	}
}

func mustSubs(t *testing.T, r *Reasoner, sup, sub *dl.Concept, want bool) {
	t.Helper()
	got, err := r.Subsumes(sup, sub)
	if err != nil {
		t.Fatalf("Subsumes(%v, %v): %v", sup, sub, err)
	}
	if got != want {
		t.Fatalf("Subsumes(%v ⊒ %v) = %v, want %v", sup, sub, got, want)
	}
}

// TestExample21 replays the paper's Example 2.1: C = (A ⊓ ¬A) ⊔ B is
// satisfiable — the first disjunct clashes, the second survives.
func TestExample21(t *testing.T) {
	tb, f, _ := newEmpty(t)
	a, b := f.Name("A"), f.Name("B")
	r := New(tb, Options{})
	c := f.Or(f.And(a, f.Not(a)), b)
	mustSat(t, r, c, true)
	mustSat(t, r, f.And(a, f.Not(a)), false)
}

func TestBasicBooleans(t *testing.T) {
	tb, f, _ := newEmpty(t)
	a, b := f.Name("A"), f.Name("B")
	r := New(tb, Options{})
	mustSat(t, r, f.Top(), true)
	mustSat(t, r, f.Bottom(), false)
	mustSat(t, r, a, true)
	mustSat(t, r, f.And(a, b), true)
	mustSat(t, r, f.And(a, f.Not(b)), true)
	mustSat(t, r, f.Or(f.And(a, f.Not(a)), f.And(b, f.Not(b))), false)
}

func TestQuantifierReasoning(t *testing.T) {
	tb, f, _ := newEmpty(t)
	a, b := f.Name("A"), f.Name("B")
	rr := f.Role("r")
	r := New(tb, Options{})
	// ∃r.A ⊓ ∀r.¬A is unsatisfiable.
	mustSat(t, r, f.And(f.Some(rr, a), f.All(rr, f.Not(a))), false)
	// ∃r.A ⊓ ∀r.B forces A ⊓ B at the successor: satisfiable.
	mustSat(t, r, f.And(f.Some(rr, a), f.All(rr, b)), true)
	// ∃r.(A ⊓ ¬A) is unsatisfiable.
	mustSat(t, r, f.Some(rr, f.And(a, f.Not(a))), false)
	// ∀r.⊥ alone is satisfiable (no successors needed).
	mustSat(t, r, f.All(rr, f.Bottom()), true)
	// but with ∃r.A it is not.
	mustSat(t, r, f.And(f.All(rr, f.Bottom()), f.Some(rr, a)), false)
}

func TestSubsumptionWithTBox(t *testing.T) {
	tb := dl.NewTBox("chain")
	f := tb.Factory
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	tb.SubClassOf(a, b)
	tb.SubClassOf(b, c)
	r := New(tb, Options{})
	mustSubs(t, r, b, a, true)
	mustSubs(t, r, c, a, true) // transitive through the TBox
	mustSubs(t, r, a, c, false)
	mustSubs(t, r, f.Top(), a, true)
	mustSubs(t, r, a, f.Bottom(), true)
}

func TestEquivalenceAndDisjointness(t *testing.T) {
	tb := dl.NewTBox("eqdis")
	f := tb.Factory
	a, b, c, d := tb.Declare("A"), tb.Declare("B"), tb.Declare("C"), tb.Declare("D")
	tb.EquivalentClasses(a, b)
	tb.DisjointClasses(c, d)
	tb.SubClassOf(c, a)
	r := New(tb, Options{})
	mustSubs(t, r, a, b, true)
	mustSubs(t, r, b, a, true)
	mustSat(t, r, f.And(c, d), false)
	mustSat(t, r, c, true)
	mustSubs(t, r, f.Not(d), c, true)
}

// TestGCICycleBlocking exercises equality blocking: A ⊑ ∃r.A would unravel
// forever without blocking.
func TestGCICycleBlocking(t *testing.T) {
	tb := dl.NewTBox("cycle")
	f := tb.Factory
	a := tb.Declare("A")
	rr := f.Role("r")
	tb.SubClassOf(a, f.Some(rr, a))
	r := New(tb, Options{})
	mustSat(t, r, a, true)
}

// TestGlobalCycleBlocking: ⊤ ⊑ ∃r.⊤ must terminate via blocking on every
// test.
func TestGlobalCycleBlocking(t *testing.T) {
	tb := dl.NewTBox("global")
	f := tb.Factory
	a := tb.Declare("A")
	rr := f.Role("r")
	tb.SubClassOf(f.Top(), f.Some(rr, f.Top()))
	r := New(tb, Options{})
	mustSat(t, r, a, true)
	mustSat(t, r, f.And(a, f.Not(a)), false)
}

func TestUnsatisfiableConceptViaTBox(t *testing.T) {
	tb := dl.NewTBox("unsat")
	f := tb.Factory
	a, b := tb.Declare("A"), tb.Declare("B")
	tb.SubClassOf(a, b)
	tb.SubClassOf(a, f.Not(b))
	r := New(tb, Options{})
	mustSat(t, r, a, false)
	// Everything subsumes an unsatisfiable concept.
	mustSubs(t, r, b, a, true)
	mustSubs(t, r, f.Bottom(), a, true)
}

func TestRoleHierarchy(t *testing.T) {
	tb := dl.NewTBox("rh")
	f := tb.Factory
	a := tb.Declare("A")
	s, rr := f.Role("s"), f.Role("r")
	tb.SubObjectPropertyOf(s, rr)
	r := New(tb, Options{})
	// ∃s.A ⊓ ∀r.¬A: the s-edge is also an r-edge, so ¬A reaches A.
	mustSat(t, r, f.And(f.Some(s, a), f.All(rr, f.Not(a))), false)
	// The converse direction has no such propagation.
	mustSat(t, r, f.And(f.Some(rr, a), f.All(s, f.Not(a))), true)
}

func TestTransitiveRolePropagation(t *testing.T) {
	tb := dl.NewTBox("trans")
	f := tb.Factory
	a, b := tb.Declare("A"), tb.Declare("B")
	rr := f.Role("r")
	tb.TransitiveObjectProperty(rr)
	r := New(tb, Options{})
	// ∃r.(B ⊓ ∃r.A) ⊓ ∀r.¬A: transitivity pushes ∀r.¬A down, clashing with
	// the nested A.
	deep := f.And(f.Some(rr, f.And(b, f.Some(rr, a))), f.All(rr, f.Not(a)))
	mustSat(t, r, deep, false)

	// Without transitivity the same concept is satisfiable.
	tb2 := dl.NewTBox("notrans")
	f2 := tb2.Factory
	a2, b2 := tb2.Declare("A"), tb2.Declare("B")
	rr2 := f2.Role("r")
	r2 := New(tb2, Options{})
	deep2 := f2.And(f2.Some(rr2, f2.And(b2, f2.Some(rr2, a2))), f2.All(rr2, f2.Not(a2)))
	mustSat(t, r2, deep2, true)
}

func TestTransitiveSubRole(t *testing.T) {
	// s transitive, s ⊑ r: ∀r.C must propagate along s-chains as ∀s.C.
	tb := dl.NewTBox("transsub")
	f := tb.Factory
	a := tb.Declare("A")
	s, rr := f.Role("s"), f.Role("r")
	tb.SubObjectPropertyOf(s, rr)
	tb.TransitiveObjectProperty(s)
	r := New(tb, Options{})
	deep := f.And(f.Some(s, f.Some(s, a)), f.All(rr, f.Not(a)))
	mustSat(t, r, deep, false)
}

func TestQualifiedCardinality(t *testing.T) {
	tb := dl.NewTBox("qcr")
	f := tb.Factory
	a, b := tb.Declare("A"), tb.Declare("B")
	rr := f.Role("r")
	r := New(tb, Options{})
	mustSat(t, r, f.And(f.Min(3, rr, a), f.Max(2, rr, a)), false)
	mustSat(t, r, f.And(f.Min(2, rr, a), f.Max(3, rr, a)), true)
	mustSat(t, r, f.And(f.Min(2, rr, f.And(a, b)), f.Max(1, rr, a)), false)
	// Unqualified at-most via filler ⊤.
	mustSat(t, r, f.And(f.Min(2, rr, a), f.Max(1, rr, f.Top())), false)
	mustSat(t, r, f.Min(5, rr, a), true)
}

func TestMergeSatisfiable(t *testing.T) {
	tb := dl.NewTBox("merge")
	f := tb.Factory
	a, b := tb.Declare("A"), tb.Declare("B")
	rr := f.Role("r")
	r := New(tb, Options{})
	// ∃r.A ⊓ ∃r.B ⊓ ≤1 r.⊤: the two successors merge into one A⊓B node.
	c := f.And(f.Some(rr, a), f.Some(rr, b), f.Max(1, rr, f.Top()))
	mustSat(t, r, c, true)

	// With Disjoint(A,B) the merge clashes and no model exists.
	tb2 := dl.NewTBox("merge2")
	f2 := tb2.Factory
	a2, b2 := tb2.Declare("A"), tb2.Declare("B")
	tb2.DisjointClasses(a2, b2)
	rr2 := f2.Role("r")
	r2 := New(tb2, Options{})
	c2 := f2.And(f2.Some(rr2, a2), f2.Some(rr2, b2), f2.Max(1, rr2, f2.Top()))
	mustSat(t, r2, c2, false)
}

func TestChooseRule(t *testing.T) {
	tb := dl.NewTBox("choose")
	f := tb.Factory
	a, b := tb.Declare("A"), tb.Declare("B")
	rr := f.Role("r")
	r := New(tb, Options{})
	// ≤1 r.A ⊓ ∃r.B ⊓ ∃r.(¬B): two successors that cannot merge on B, so
	// at most one may satisfy A — still satisfiable by choosing ¬A.
	c := f.And(f.Max(1, rr, a), f.Some(rr, b), f.Some(rr, f.Not(b)))
	mustSat(t, r, c, true)
	// Forcing A on every r-successor then clashes with a second distinct one.
	c2 := f.And(f.Max(1, rr, a), f.All(rr, a), f.Some(rr, b), f.Some(rr, f.Not(b)))
	mustSat(t, r, c2, false)
}

func TestQCRWithTBoxDefinitions(t *testing.T) {
	// The bridg-style pattern of Table V: concepts constrained by several
	// QCRs over a shared role.
	tb := dl.NewTBox("qcrtbox")
	f := tb.Factory
	x, a, b := tb.Declare("X"), tb.Declare("A"), tb.Declare("B")
	rr := f.Role("r")
	tb.SubClassOf(x, f.Min(2, rr, a))
	tb.SubClassOf(x, f.Min(2, rr, b))
	tb.SubClassOf(x, f.Max(3, rr, f.Top()))
	tb.DisjointClasses(a, b)
	r := New(tb, Options{})
	// 2 A-successors + 2 B-successors, A,B disjoint so no cross-merge:
	// 4 distinct > 3 — unsatisfiable.
	mustSat(t, r, x, false)

	tb2 := dl.NewTBox("qcrtbox2")
	f2 := tb2.Factory
	x2, a2, b2 := tb2.Declare("X"), tb2.Declare("A"), tb2.Declare("B")
	rr2 := f2.Role("r")
	tb2.SubClassOf(x2, f2.Min(2, rr2, a2))
	tb2.SubClassOf(x2, f2.Min(2, rr2, b2))
	tb2.SubClassOf(x2, f2.Max(3, rr2, f2.Top()))
	r2 := New(tb2, Options{})
	// Without disjointness one A-successor can merge with a B-successor.
	mustSat(t, r2, x2, true)
}

func TestNodeBudget(t *testing.T) {
	tb := dl.NewTBox("budget")
	f := tb.Factory
	rr := f.Role("r")
	var cs []*dl.Concept
	for i := 0; i < 5; i++ {
		cs = append(cs, f.Some(rr, f.Name(string(rune('A'+i)))))
	}
	r := New(tb, Options{MaxNodes: 3})
	_, err := r.IsSatisfiable(f.And(cs...))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestStatsCounters(t *testing.T) {
	tb := dl.NewTBox("stats")
	f := tb.Factory
	a, b := tb.Declare("A"), tb.Declare("B")
	r := New(tb, Options{})
	if _, err := r.Subsumes(b, a); err != nil {
		t.Fatal(err)
	}
	if r.Stats().SubsTests.Load() != 1 || r.Stats().SatTests.Load() != 1 {
		t.Errorf("stats = %+v", r.Stats())
	}
	_ = f
}

// evalProp evaluates a role-free concept under a truth assignment.
func evalProp(c *dl.Concept, env map[string]bool) bool {
	switch c.Op {
	case dl.OpTop:
		return true
	case dl.OpBottom:
		return false
	case dl.OpName:
		return env[c.Name]
	case dl.OpNot:
		return !evalProp(c.Args[0], env)
	case dl.OpAnd:
		for _, a := range c.Args {
			if !evalProp(a, env) {
				return false
			}
		}
		return true
	case dl.OpOr:
		for _, a := range c.Args {
			if evalProp(a, env) {
				return true
			}
		}
		return false
	}
	panic("evalProp: non-propositional concept")
}

// randProp builds a random role-free concept over names A..D.
func randProp(f *dl.Factory, rng *rand.Rand, depth int) *dl.Concept {
	if depth <= 0 || rng.Intn(4) == 0 {
		return f.Name(string(rune('A' + rng.Intn(4))))
	}
	switch rng.Intn(3) {
	case 0:
		return f.Not(randProp(f, rng, depth-1))
	case 1:
		return f.And(randProp(f, rng, depth-1), randProp(f, rng, depth-1))
	default:
		return f.Or(randProp(f, rng, depth-1), randProp(f, rng, depth-1))
	}
}

// TestQuickPropositionalAgainstTruthTables cross-checks the tableau on
// random propositional concepts against exhaustive truth-table evaluation.
func TestQuickPropositionalAgainstTruthTables(t *testing.T) {
	tb := dl.NewTBox("prop")
	f := tb.Factory
	r := New(tb, Options{})
	names := []string{"A", "B", "C", "D"}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randProp(f, rng, 5)
		want := false
		for mask := 0; mask < 16; mask++ {
			env := map[string]bool{}
			for i, n := range names {
				env[n] = mask&(1<<i) != 0
			}
			if evalProp(c, env) {
				want = true
				break
			}
		}
		got, err := r.IsSatisfiable(c)
		return err == nil && got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubsumptionCoherence checks on random modal concepts that if
// C ⊑ D and C is satisfiable, then C ⊓ D is satisfiable too.
func TestQuickSubsumptionCoherence(t *testing.T) {
	tb := dl.NewTBox("coh")
	f := tb.Factory
	r := New(tb, Options{})
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randALC(f, rng, 3)
		d := randALC(f, rng, 3)
		subs, err := r.Subsumes(d, c)
		if err != nil {
			return true // budget blowups are acceptable here
		}
		if !subs {
			return true
		}
		satC, err1 := r.IsSatisfiable(c)
		if err1 != nil {
			return true
		}
		if !satC {
			return true
		}
		both, err2 := r.IsSatisfiable(f.And(c, d))
		return err2 == nil && both
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func randALC(f *dl.Factory, rng *rand.Rand, depth int) *dl.Concept {
	if depth <= 0 || rng.Intn(4) == 0 {
		return f.Name(string(rune('A' + rng.Intn(3))))
	}
	rr := f.Role("r")
	switch rng.Intn(5) {
	case 0:
		return f.Not(randALC(f, rng, depth-1))
	case 1:
		return f.And(randALC(f, rng, depth-1), randALC(f, rng, depth-1))
	case 2:
		return f.Or(randALC(f, rng, depth-1), randALC(f, rng, depth-1))
	case 3:
		return f.Some(rr, randALC(f, rng, depth-1))
	default:
		return f.All(rr, randALC(f, rng, depth-1))
	}
}

// TestConcurrentReasonerUse runs many satisfiability tests on the same
// Reasoner from multiple goroutines; run with -race to check sharing.
func TestConcurrentReasonerUse(t *testing.T) {
	tb := dl.NewTBox("conc")
	f := tb.Factory
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	rr := f.Role("r")
	tb.SubClassOf(a, f.Some(rr, b))
	tb.SubClassOf(b, c)
	r := New(tb, Options{})
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 50; i++ {
				got, err := r.Subsumes(f.Some(rr, c), a)
				if err != nil {
					done <- err
					return
				}
				if !got {
					done <- errors.New("A ⊑ ∃r.C not derived")
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestModelMergingAgreesWithPlain property-checks that the pseudo-model
// merging optimization never changes an answer: for random ontologies and
// all named pairs, Subsumes with merging equals Subsumes without.
func TestModelMergingAgreesWithPlain(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := dl.NewTBox("mm")
		f := tb.Factory
		n := 4 + rng.Intn(4)
		cs := make([]*dl.Concept, n)
		for i := range cs {
			cs[i] = tb.Declare(fmt.Sprintf("M%d", i))
		}
		roles := []*dl.Role{f.Role("r"), f.Role("s")}
		if rng.Intn(2) == 0 {
			tb.SubObjectPropertyOf(roles[0], roles[1])
		}
		for i, k := 0, 3+rng.Intn(6); i < k; i++ {
			sub := cs[rng.Intn(n)]
			switch rng.Intn(6) {
			case 0:
				tb.SubClassOf(sub, f.Some(roles[rng.Intn(2)], cs[rng.Intn(n)]))
			case 1:
				tb.SubClassOf(sub, f.All(roles[rng.Intn(2)], cs[rng.Intn(n)]))
			case 2:
				tb.SubClassOf(sub, f.Min(2, roles[rng.Intn(2)], cs[rng.Intn(n)]))
			case 3:
				tb.SubClassOf(sub, f.Max(1+rng.Intn(2), roles[rng.Intn(2)], cs[rng.Intn(n)]))
			case 4:
				tb.DisjointClasses(sub, cs[rng.Intn(n)])
			default:
				tb.SubClassOf(sub, cs[rng.Intn(n)])
			}
		}
		plain := New(tb, Options{})
		merged := New(tb, Options{ModelMerging: true})
		for _, sub := range tb.NamedConcepts() {
			for _, sup := range tb.NamedConcepts() {
				want, err1 := plain.Subsumes(sup, sub)
				got, err2 := merged.Subsumes(sup, sub)
				if err1 != nil || err2 != nil {
					continue // budget blowups: skip the pair
				}
				if got != want {
					t.Logf("seed %d: %v ⊑ %v: merged=%v plain=%v", seed, sub, sup, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestModelMergingSkips: on a flat ontology of unrelated concepts, almost
// every test is a non-subsumption the merging decides without a tableau
// run.
func TestModelMergingSkips(t *testing.T) {
	tb := dl.NewTBox("flat")
	f := tb.Factory
	for i := 0; i < 10; i++ {
		tb.SubClassOf(tb.Declare(fmt.Sprintf("F%d", i)), f.Some(f.Role(fmt.Sprintf("q%d", i)), tb.Declare(fmt.Sprintf("G%d", i))))
	}
	r := New(tb, Options{ModelMerging: true})
	for _, sub := range tb.NamedConcepts() {
		for _, sup := range tb.NamedConcepts() {
			if sub == sup {
				continue
			}
			if _, err := r.Subsumes(sup, sub); err != nil {
				t.Fatal(err)
			}
		}
	}
	if skips := r.Stats().MergeSkips.Load(); skips == 0 {
		t.Error("no merge skips on a flat ontology")
	} else {
		total := r.Stats().SubsTests.Load()
		if float64(skips) < 0.5*float64(total) {
			t.Errorf("merge skipped only %d of %d tests", skips, total)
		}
	}
}
