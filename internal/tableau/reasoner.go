package tableau

import (
	"context"
	"sync"
	"sync/atomic"

	"parowl/internal/dl"
)

// DefaultMaxNodes is the default node budget per satisfiability test.
const DefaultMaxNodes = 200_000

// DefaultMaxBranches is the default branching budget per test.
const DefaultMaxBranches = 2_000_000

// Options configures a Reasoner.
type Options struct {
	// MaxNodes bounds the number of completion-graph nodes any single
	// satisfiability test may create; 0 means DefaultMaxNodes. Exceeding
	// the budget returns ErrBudget instead of hanging.
	MaxNodes int
	// MaxBranches bounds the number of nondeterministic choice points a
	// single test may explore; 0 means DefaultMaxBranches. Exceeding it
	// returns ErrBranchBudget.
	MaxBranches int
	// ModelMerging enables the pseudo-model merging optimization: a
	// subsumption test subs?(D, C) whose cached pseudo models of C and
	// ¬D merge is answered false without a tableau run. Off by default
	// (the paper evaluates its architecture without enhanced reasoner
	// optimizations).
	ModelMerging bool
}

// Stats counts reasoner activity with atomic counters, safe to read while
// tests run on other goroutines.
type Stats struct {
	SatTests   atomic.Int64 // calls answered by a tableau run
	SubsTests  atomic.Int64 // Subs calls (each is one sat test)
	Nodes      atomic.Int64 // completion-graph nodes created, cumulative
	MergeSkips atomic.Int64 // non-subsumptions decided by model merging
	Cancelled  atomic.Int64 // tests abandoned on context cancellation

	// Arena effectiveness counters (see arena.go). A warm classification
	// run should show Reused ≫ Allocated on both pairs.
	SolversReused    atomic.Int64 // sat tests served by a pooled solver
	SolversAllocated atomic.Int64 // solvers constructed from scratch
	NodesReused      atomic.Int64 // completion-graph nodes recycled from a slab
	NodesAllocated   atomic.Int64 // completion-graph nodes heap-allocated
}

// Reasoner decides satisfiability and subsumption with respect to one
// TBox. The preprocessed state is read-only, so a single Reasoner is safe
// for concurrent use by many workers — exactly how the classifier shares
// its plug-in reasoner across the thread pool.
//
// Every test observes its context cooperatively: the expansion loop
// checks for cancellation between rule passes, so a test under a
// deadline stops within one pass of the deadline firing and returns the
// context error instead of an answer.
type Reasoner struct {
	tbox    *dl.TBox
	prep    *prep
	opts    Options
	stats   Stats
	models  modelCache
	solvers sync.Pool // *solver; see acquireSolver/releaseSolver
}

// New preprocesses the TBox (absorption + internalization) and returns a
// ready Reasoner. The TBox is frozen as a side effect.
func New(t *dl.TBox, opts Options) *Reasoner {
	t.Freeze()
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = DefaultMaxNodes
	}
	if opts.MaxBranches <= 0 {
		opts.MaxBranches = DefaultMaxBranches
	}
	r := &Reasoner{tbox: t, prep: newPrep(t), opts: opts}
	r.solvers.New = func() any {
		r.stats.SolversAllocated.Add(1)
		return &solver{p: r.prep, maxNodes: r.opts.MaxNodes, maxBranches: int32(r.opts.MaxBranches)}
	}
	return r
}

// acquireSolver returns a solver ready to run one satisfiability test,
// reusing arenas from an earlier test when the pool has one.
func (r *Reasoner) acquireSolver() *solver {
	s := r.solvers.Get().(*solver)
	if s.warm {
		r.stats.SolversReused.Add(1)
	}
	return s
}

// releaseSolver harvests the solver's per-test counters into Stats, resets
// every arena object it handed out (the reset-before-reuse invariant), and
// returns it to the pool.
func (r *Reasoner) releaseSolver(s *solver) {
	r.stats.Nodes.Add(int64(s.created))
	r.stats.NodesReused.Add(int64(s.nodesReused))
	r.stats.NodesAllocated.Add(int64(s.nodesAllocated))
	s.resetForReuse()
	s.warm = true
	r.solvers.Put(s)
}

// TBox returns the TBox this reasoner answers for.
func (r *Reasoner) TBox() *dl.TBox { return r.tbox }

// Stats exposes the activity counters.
func (r *Reasoner) Stats() *Stats { return &r.stats }

// Sat reports whether concept c is satisfiable with respect to the TBox.
// When ctx is cancelled or its deadline passes, the test is abandoned and
// the context error is returned.
func (r *Reasoner) Sat(ctx context.Context, c *dl.Concept) (bool, error) {
	r.stats.SatTests.Add(1)
	s := r.acquireSolver()
	s.bindContext(ctx)
	s.start(c)
	sat, _, err := s.solve()
	r.releaseSolver(s)
	if err != nil && ctx.Err() != nil {
		r.stats.Cancelled.Add(1)
	}
	return sat, err
}

// Subs reports whether sup subsumes sub (sub ⊑ sup) with respect to the
// TBox, by testing the unsatisfiability of sub ⊓ ¬sup. With
// Options.ModelMerging, mergeable cached pseudo models of sub and ¬sup
// decide the (far more common) negative answer without a tableau run.
func (r *Reasoner) Subs(ctx context.Context, sup, sub *dl.Concept) (bool, error) {
	r.stats.SubsTests.Add(1)
	f := r.tbox.Factory
	if r.opts.ModelMerging {
		pmSub := r.pseudoModel(ctx, sub)
		if pmSub != nil && !pmSub.sat {
			return true, nil // unsatisfiable sub is subsumed by everything
		}
		pmNeg := r.pseudoModel(ctx, f.Not(sup))
		if pmNeg != nil && !pmNeg.sat {
			return true, nil // ¬sup unsatisfiable: sup ≡ ⊤
		}
		if pmSub != nil && pmNeg != nil && mergeable(pmSub, pmNeg) {
			r.stats.MergeSkips.Add(1)
			return false, nil
		}
	}
	sat, err := r.Sat(ctx, f.And(sub, f.Not(sup)))
	if err != nil {
		return false, err
	}
	return !sat, nil
}

// IsSatisfiable is the context-free convenience form of Sat.
//
// Deprecated: use Sat with a context.
func (r *Reasoner) IsSatisfiable(c *dl.Concept) (bool, error) {
	return r.Sat(context.Background(), c)
}

// Subsumes is the context-free convenience form of Subs.
//
// Deprecated: use Subs with a context.
func (r *Reasoner) Subsumes(sup, sub *dl.Concept) (bool, error) {
	return r.Subs(context.Background(), sup, sub)
}
