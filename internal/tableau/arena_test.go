package tableau

import (
	"fmt"
	"math/rand"
	"testing"

	"parowl/internal/dl"
)

// checkSolverReset asserts the reset-before-reuse invariant: after
// resetForReuse, nothing from the previous test is reachable through the
// solver's slabs.
func checkSolverReset(t *testing.T, s *solver) {
	t.Helper()
	if s.nodeUsed != 0 || s.graphUsed != 0 {
		t.Fatalf("used counters not reset: nodes=%d graphs=%d", s.nodeUsed, s.graphUsed)
	}
	if s.g != nil {
		t.Fatal("solver still holds a graph")
	}
	if s.nextBranch != 0 || s.created != 0 {
		t.Fatalf("per-test counters not reset: branch=%d created=%d", s.nextBranch, s.created)
	}
	for i, n := range s.nodeSlab {
		if n.label.len() != 0 {
			t.Fatalf("node %d leaks %d label entries", i, n.label.len())
		}
		if len(n.edgeRoles) != 0 || len(n.edgeDeps) != 0 {
			t.Fatalf("node %d leaks edge roles", i)
		}
		if len(n.children) != 0 || len(n.minApplied) != 0 {
			t.Fatalf("node %d leaks children or ≥-markers", i)
		}
		if n.pruned || n.epoch != 0 || n.id != 0 || n.parent != 0 {
			t.Fatalf("node %d scalar state not reset", i)
		}
		for j, k := range n.label.keys {
			if k != 0 {
				t.Fatalf("node %d label bucket %d not cleared", i, j)
			}
		}
	}
	for i, g := range s.graphSlab {
		if len(g.nodes) != 0 {
			t.Fatalf("graph %d leaks %d nodes", i, len(g.nodes))
		}
		if len(g.distinct) != 0 {
			t.Fatalf("graph %d leaks %d inequalities", i, len(g.distinct))
		}
		if g.epoch != 0 {
			t.Fatalf("graph %d epoch not reset", i)
		}
	}
	if a := &s.arena; a.off != 0 || len(a.used) != 0 {
		t.Fatalf("dep arena not reset: off=%d used=%d", a.off, len(a.used))
	}
}

// randomConcept builds a random ALCHQ concept over the given names/roles.
func randomConcept(rng *rand.Rand, f *dl.Factory, names []*dl.Concept, roles []*dl.Role, depth int) *dl.Concept {
	if depth <= 0 || rng.Intn(3) == 0 {
		c := names[rng.Intn(len(names))]
		if rng.Intn(2) == 0 {
			return f.Not(c)
		}
		return c
	}
	sub := func() *dl.Concept { return randomConcept(rng, f, names, roles, depth-1) }
	r := roles[rng.Intn(len(roles))]
	switch rng.Intn(6) {
	case 0:
		return f.And(sub(), sub())
	case 1:
		return f.Or(sub(), sub())
	case 2:
		return f.Some(r, sub())
	case 3:
		return f.All(r, sub())
	case 4:
		return f.Min(1+rng.Intn(3), r, sub())
	default:
		return f.Max(rng.Intn(3), r, sub())
	}
}

// TestPooledSolverResetInvariant is the property test behind the arena:
// whatever a random satisfiability test did to the solver — branching,
// merging, node generation, inequalities — a recycled solver must be
// indistinguishable from a fresh one, both structurally (no leaked
// labels/edges) and semantically (same answers as an unpooled run).
func TestPooledSolverResetInvariant(t *testing.T) {
	tb := dl.NewTBox("arena-prop")
	f := tb.Factory
	var names []*dl.Concept
	for i := 0; i < 8; i++ {
		names = append(names, tb.Declare(fmt.Sprintf("A%d", i)))
	}
	roles := []*dl.Role{f.Role("r"), f.Role("s")}
	tb.SubObjectPropertyOf(roles[1], roles[0])
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 6; i++ {
		tb.SubClassOf(names[rng.Intn(len(names))], randomConcept(rng, f, names, roles, 2))
	}
	r := New(tb, Options{})
	fresh := New(tb, Options{}) // answers reference queries with cold solvers

	s := r.acquireSolver()
	for i := 0; i < 300; i++ {
		c := randomConcept(rng, f, names, roles, 3)
		s.start(c)
		sat, _, err := s.solve()
		if err != nil {
			t.Fatal(err)
		}
		s.resetForReuse()
		checkSolverReset(t, s)
		want, err := fresh.IsSatisfiable(c)
		if err != nil {
			t.Fatal(err)
		}
		if sat != want {
			t.Fatalf("test %d: pooled solver says sat=%v, fresh reasoner says %v for %s", i, sat, want, c)
		}
	}
	r.releaseSolver(s)
}

// TestSolverPoolStats checks that the reuse counters reflect pooling.
func TestSolverPoolStats(t *testing.T) {
	tb := dl.NewTBox("pool-stats")
	a := tb.Declare("A")
	b := tb.Declare("B")
	tb.SubClassOf(a, tb.Factory.Some(tb.Factory.Role("r"), b))
	r := New(tb, Options{})
	for i := 0; i < 50; i++ {
		if _, err := r.IsSatisfiable(a); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.SolversAllocated.Load() < 1 {
		t.Error("no solver allocation recorded")
	}
	if st.SolversReused.Load() == 0 {
		t.Error("sequential tests never reused a solver")
	}
	if st.NodesReused.Load() == 0 {
		t.Error("no node reuse recorded")
	}
	if st.Nodes.Load() == 0 {
		t.Error("no nodes counted")
	}
}
