package tableau

import (
	"math/rand"
	"sort"
	"testing"
)

func depEq(a, b depSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDepSetHas(t *testing.T) {
	d := depSet{1, 3, 7}
	for _, b := range []int32{1, 3, 7} {
		if !d.has(b) {
			t.Errorf("has(%d) = false, want true", b)
		}
	}
	for _, b := range []int32{0, 2, 4, 8, 100} {
		if d.has(b) {
			t.Errorf("has(%d) = true, want false", b)
		}
	}
	if emptyDeps.has(0) {
		t.Error("empty set reports membership")
	}
	if got := emptyDeps.max(); got != -1 {
		t.Errorf("empty max = %d, want -1", got)
	}
	if got := d.max(); got != 7 {
		t.Errorf("max = %d, want 7", got)
	}
}

func TestDepSetUnionCases(t *testing.T) {
	cases := []struct {
		name string
		d, o depSet
		want depSet
	}{
		{"both-empty", nil, nil, nil},
		{"left-empty", nil, depSet{1, 2}, depSet{1, 2}},
		{"right-empty", depSet{1, 2}, nil, depSet{1, 2}},
		{"disjoint", depSet{1, 3}, depSet{2, 4}, depSet{1, 2, 3, 4}},
		{"interleaved", depSet{0, 2, 4, 6}, depSet{1, 3, 5, 7}, depSet{0, 1, 2, 3, 4, 5, 6, 7}},
		{"overlapping", depSet{1, 2, 3}, depSet{2, 3, 4}, depSet{1, 2, 3, 4}},
		{"identical", depSet{5, 9}, depSet{5, 9}, depSet{5, 9}},
		{"contained", depSet{1, 2, 3, 4}, depSet{2, 3}, depSet{1, 2, 3, 4}},
		{"tail-run", depSet{1}, depSet{10, 20, 30}, depSet{1, 10, 20, 30}},
	}
	var a depArena
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.d.union(tc.o); !depEq(got, tc.want) {
				t.Errorf("union = %v, want %v", got, tc.want)
			}
			if got := a.union(tc.d, tc.o); !depEq(got, tc.want) {
				t.Errorf("arena union = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestDepSetUnionImmutable: union must not mutate its operands even when
// one is returned unchanged or shares arena storage.
func TestDepSetUnionImmutable(t *testing.T) {
	var a depArena
	d := a.union(depSet{1, 3}, depSet{2}) // {1,2,3} from the arena
	e := a.union(d, depSet{0})            // forces a second allocation
	f := a.union(d, depSet{2, 3})         // duplicates: tail given back
	g := a.with(a.without(d, 3), 9)       // {1,2,9}
	for _, tc := range []struct {
		name string
		got  depSet
		want depSet
	}{
		{"d", d, depSet{1, 2, 3}},
		{"e", e, depSet{0, 1, 2, 3}},
		{"f", f, depSet{1, 2, 3}},
		{"g", g, depSet{1, 2, 9}},
	} {
		if !depEq(tc.got, tc.want) {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestDepSetWithWithout(t *testing.T) {
	d := depSet{2, 4}
	if got := d.with(3); !depEq(got, depSet{2, 3, 4}) {
		t.Errorf("with(3) = %v", got)
	}
	if got := d.with(4); !depEq(got, d) {
		t.Errorf("with(existing) = %v, want unchanged", got)
	}
	if got := d.without(2); !depEq(got, depSet{4}) {
		t.Errorf("without(2) = %v", got)
	}
	if got := d.without(9); !depEq(got, d) {
		t.Errorf("without(absent) = %v, want unchanged", got)
	}
	var a depArena
	if got := a.with(d, 0); !depEq(got, depSet{0, 2, 4}) {
		t.Errorf("arena with(0) = %v", got)
	}
	if got := a.with(d, 9); !depEq(got, depSet{2, 4, 9}) {
		t.Errorf("arena with(9) = %v", got)
	}
	if got := a.without(d, 4); !depEq(got, depSet{2}) {
		t.Errorf("arena without(4) = %v", got)
	}
}

// TestDepArenaAgainstReference drives random union/with/without chains
// through the arena and checks every result against the pure depSet
// implementation, across several resets.
func TestDepArenaAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a depArena
	for round := 0; round < 5; round++ {
		var live []depSet // arena-built sets, mirror reference values below
		var ref []depSet
		mk := func() depSet {
			n := rng.Intn(6)
			m := map[int32]bool{}
			for i := 0; i < n; i++ {
				m[int32(rng.Intn(16))] = true
			}
			out := make(depSet, 0, len(m))
			for b := range m {
				out = append(out, b)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		live = append(live, mk())
		ref = append(ref, append(depSet(nil), live[0]...))
		for step := 0; step < 2000; step++ {
			i, j := rng.Intn(len(live)), rng.Intn(len(live))
			b := int32(rng.Intn(16))
			var got, want depSet
			switch rng.Intn(4) {
			case 0:
				got, want = a.union(live[i], live[j]), ref[i].union(ref[j])
			case 1:
				got, want = a.with(live[i], b), ref[i].with(b)
			case 2:
				got, want = a.without(live[i], b), ref[i].without(b)
			default:
				fresh := mk()
				got, want = fresh, append(depSet(nil), fresh...)
			}
			if !depEq(got, want) {
				t.Fatalf("round %d step %d: got %v, want %v", round, step, got, want)
			}
			live = append(live, got)
			ref = append(ref, want)
			if len(live) > 64 { // bound memory; arena sets stay valid until reset
				live = live[len(live)-64:]
				ref = ref[len(ref)-64:]
			}
		}
		// Verify no arena set was corrupted by later allocations.
		for k := range live {
			if !depEq(live[k], ref[k]) {
				t.Fatalf("round %d: set %d corrupted: got %v, want %v", round, k, live[k], ref[k])
			}
		}
		a.reset()
	}
}

// TestDepArenaOversized exercises the dedicated-allocation path for sets
// larger than one chunk.
func TestDepArenaOversized(t *testing.T) {
	var a depArena
	big := make(depSet, depChunk)
	for i := range big {
		big[i] = int32(2 * i)
	}
	odd := make(depSet, depChunk)
	for i := range odd {
		odd[i] = int32(2*i + 1)
	}
	got := a.union(big, odd)
	if len(got) != 2*depChunk {
		t.Fatalf("oversized union length = %d, want %d", len(got), 2*depChunk)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("oversized union not sorted at %d", i)
		}
	}
}
