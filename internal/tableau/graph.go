package tableau

import (
	"parowl/internal/dl"
)

// minLabelBuckets is the initial open-addressing table size of a
// labelSet; a power of two so probing can mask instead of mod.
const minLabelBuckets = 16

// labelHash spreads a dense concept ID over the bucket space
// (Knuth multiplicative hashing).
func labelHash(id int32) uint32 { return uint32(id) * 2654435761 }

// sigMix turns a concept ID into a well-mixed 64-bit term for the
// order-independent label signature (splitmix64 finalizer).
func sigMix(id int32) uint64 {
	z := uint64(uint32(id)) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// labelSet is L(x): the concepts at a node with their dependency sets.
// Insertion order is preserved (deterministic rule application), and a
// compact open-addressing index keyed by the dense concept IDs gives
// O(1) membership and lookup without a Go map — the representation is a
// handful of flat slices, so a pooled node resets by truncation and a
// copy-on-write clone is four memcopies instead of a map rebuild.
type labelSet struct {
	order []*dl.Concept // concepts in insertion order
	deps  []depSet      // deps[i] is the dependency set of order[i]
	keys  []int32       // open addressing: concept ID + 1; 0 = empty slot
	vals  []int32       // slot -> index into order
	sig   uint64        // commutative signature for fast equality pre-check
}

func (l *labelSet) len() int { return len(l.order) }

// find returns the position of c in order, or -1.
func (l *labelSet) find(c *dl.Concept) int32 {
	if len(l.keys) == 0 {
		return -1
	}
	mask := uint32(len(l.keys) - 1)
	k := c.ID + 1
	for i := labelHash(c.ID) & mask; ; i = (i + 1) & mask {
		switch l.keys[i] {
		case 0:
			return -1
		case k:
			return l.vals[i]
		}
	}
}

func (l *labelSet) has(c *dl.Concept) bool { return l.find(c) >= 0 }

func (l *labelSet) get(c *dl.Concept) (depSet, bool) {
	if i := l.find(c); i >= 0 {
		return l.deps[i], true
	}
	return nil, false
}

// add appends c with deps if absent and reports whether it was added; an
// existing entry keeps its (typically older, hence more general) deps.
func (l *labelSet) add(c *dl.Concept, d depSet) bool {
	if l.find(c) >= 0 {
		return false
	}
	if 2*(len(l.order)+1) > len(l.keys) {
		l.rehash()
	}
	l.insert(c.ID, int32(len(l.order)))
	l.order = append(l.order, c)
	l.deps = append(l.deps, d)
	l.sig += sigMix(c.ID)
	return true
}

func (l *labelSet) insert(id, pos int32) {
	mask := uint32(len(l.keys) - 1)
	i := labelHash(id) & mask
	for l.keys[i] != 0 {
		i = (i + 1) & mask
	}
	l.keys[i] = id + 1
	l.vals[i] = pos
}

// rehash grows the index to keep the load factor at or below 1/2.
func (l *labelSet) rehash() {
	n := 2 * len(l.keys)
	if n < minLabelBuckets {
		n = minLabelBuckets
	}
	l.keys = make([]int32, n)
	l.vals = make([]int32, n)
	for i, c := range l.order {
		l.insert(c.ID, int32(i))
	}
}

// reset empties the set, keeping all backing storage for reuse.
func (l *labelSet) reset() {
	l.order = l.order[:0]
	l.deps = l.deps[:0]
	for i := range l.keys {
		l.keys[i] = 0
	}
	l.sig = 0
}

// copyFrom makes l an independent copy of o, reusing l's storage.
func (l *labelSet) copyFrom(o *labelSet) {
	l.order = append(l.order[:0], o.order...)
	l.deps = append(l.deps[:0], o.deps...)
	l.keys = append(l.keys[:0], o.keys...)
	l.vals = append(l.vals[:0], o.vals...)
	l.sig = o.sig
}

// node is one individual in the completion graph. Because the logic has no
// inverse roles, completion graphs are trees: every non-root node has
// exactly one parent and an edge label (a set of roles) on the edge from
// that parent.
//
// Nodes are shared copy-on-write between a graph and its branch-point
// snapshots: a node with epoch < the graph's epoch is immutable and must
// be copied (graph.mutable) before mutation. Nodes come from the solver's
// arena and are reset and recycled when the test ends.
type node struct {
	epoch  int32
	id     int32
	parent int32 // -1 for the root

	// label is L(x); order preserves insertion for deterministic rule
	// application.
	label labelSet

	// edgeRoles/edgeDeps are the roles on the incoming edge with their
	// dependency sets, in insertion order. Edges carry a handful of roles
	// at most, so parallel slices with linear scans beat any index.
	edgeRoles []*dl.Role
	edgeDeps  []depSet

	children []int32
	pruned   bool // true once merged away or detached

	// minApplied records (by concept ID) the ≥-restrictions whose
	// witnesses this node has already generated, so the ≥-rule fires once
	// per (node, concept).
	minApplied []int32
}

// appliedMin reports whether the ≥-rule already fired for c at n.
func (n *node) appliedMin(c *dl.Concept) bool {
	for _, id := range n.minApplied {
		if id == c.ID {
			return true
		}
	}
	return false
}

// reset returns the node to its zero state, keeping backing storage. The
// arena invariant: every pooled node is fully reset before reuse, so no
// label, edge, child or ≥-marker can leak into the next test.
func (n *node) reset() {
	n.epoch, n.id, n.parent = 0, 0, 0
	n.pruned = false
	n.label.reset()
	n.edgeRoles = n.edgeRoles[:0]
	n.edgeDeps = n.edgeDeps[:0]
	n.children = n.children[:0]
	n.minApplied = n.minApplied[:0]
}

// hasAnyRole reports whether the incoming edge carries some role S ⊑* r.
func (n *node) hasAnyRole(r *dl.Role) bool {
	for _, s := range n.edgeRoles {
		if s.IsSubRoleOf(r) {
			return true
		}
	}
	return false
}

// hasRole reports whether the incoming edge carries some role S ⊑* r, and
// returns the union of the dependency sets of all such roles.
func (n *node) hasRole(r *dl.Role, a *depArena) (bool, depSet) {
	found := false
	deps := emptyDeps
	for i, s := range n.edgeRoles {
		if s.IsSubRoleOf(r) {
			found = true
			deps = a.union(deps, n.edgeDeps[i])
		}
	}
	return found, deps
}

// pairKey canonically identifies an unordered node pair.
type pairKey struct{ a, b int32 }

func mkPair(x, y int32) pairKey {
	if x > y {
		x, y = y, x
	}
	return pairKey{x, y}
}

// graph is the mutable tableau state: all nodes plus the inequality
// relation introduced by the ≥-rule. Graphs are snapshotted at
// nondeterministic choice points; the snapshot shares all nodes
// copy-on-write, so cloning costs one slice copy and mutation copies only
// the touched nodes. Graphs and their nodes are arena objects owned by
// the solver s.
type graph struct {
	s        *solver
	epoch    int32
	nodes    []*node
	distinct map[pairKey]depSet
}

// reset empties the graph for reuse, keeping the node slice capacity and
// the distinct map.
func (g *graph) reset() {
	g.epoch = 0
	g.nodes = g.nodes[:0]
	clear(g.distinct)
}

// clone returns a snapshot sharing every node with g; both sides copy
// nodes before mutating them.
func (g *graph) clone() *graph {
	c := g.s.allocGraph()
	c.epoch = g.epoch + 1
	c.nodes = append(c.nodes[:0], g.nodes...)
	for k, v := range g.distinct {
		c.distinct[k] = v
	}
	// The original keeps mutating: bump its epoch too so neither side
	// writes to the shared nodes.
	g.epoch += 2
	return c
}

// mutable returns a node owned by this graph, copying it first if it is
// shared with a snapshot.
func (g *graph) mutable(id int32) *node {
	n := g.nodes[id]
	if n.epoch != g.epoch {
		n = g.s.cloneNode(n, g.epoch)
		g.nodes[id] = n
	}
	return n
}

// newNode appends a fresh unlabeled node with the given parent (-1 = root).
func (g *graph) newNode(parent int32) *node {
	n := g.s.allocNode()
	n.epoch = g.epoch
	n.id = int32(len(g.nodes))
	n.parent = parent
	g.nodes = append(g.nodes, n)
	if parent >= 0 {
		p := g.mutable(parent)
		p.children = append(p.children, n.id)
	}
	return n
}

// add inserts concept c into L(n) with dependency set deps. It reports
// whether the label changed. If c was already present, the existing
// (typically older, hence more general) dependency set is kept.
func (g *graph) add(id int32, c *dl.Concept, deps depSet) bool {
	if g.nodes[id].label.has(c) {
		return false
	}
	n := g.mutable(id)
	return n.label.add(c, deps)
}

// addEdgeRole puts role r on the incoming edge of n.
func (g *graph) addEdgeRole(id int32, r *dl.Role, deps depSet) bool {
	for _, have := range g.nodes[id].edgeRoles {
		if have == r {
			return false
		}
	}
	n := g.mutable(id)
	n.edgeRoles = append(n.edgeRoles, r)
	n.edgeDeps = append(n.edgeDeps, deps)
	return true
}

// markMin records that the ≥-rule fired for c at node id.
func (g *graph) markMin(id int32, c *dl.Concept) {
	n := g.mutable(id)
	n.minApplied = append(n.minApplied, c.ID)
}

// setDistinct records x ≠ y.
func (g *graph) setDistinct(x, y int32, deps depSet) {
	key := mkPair(x, y)
	if _, ok := g.distinct[key]; !ok {
		g.distinct[key] = deps
	}
}

// areDistinct reports whether x ≠ y has been asserted.
func (g *graph) areDistinct(x, y int32) (bool, depSet) {
	d, ok := g.distinct[mkPair(x, y)]
	return ok, d
}

// prune detaches the subtree rooted at id (used when merging nodes).
func (g *graph) prune(id int32) {
	n := g.mutable(id)
	n.pruned = true
	for _, ci := range n.children {
		g.prune(ci)
	}
}

// blocked reports whether node n is blocked: some live ancestor y (other
// than n) has exactly the same label (equality blocking, sound for SHQ
// without inverse roles). Generating rules (∃, ≥) do not fire on blocked
// nodes. The commutative label signature rejects almost every ancestor in
// one comparison; the element-wise check runs only on signature matches.
func (g *graph) blocked(n *node) bool {
	for p := n.parent; p >= 0; p = g.nodes[p].parent {
		anc := g.nodes[p]
		if anc.label.sig != n.label.sig || anc.label.len() != n.label.len() {
			continue
		}
		same := true
		for _, c := range n.label.order {
			if !anc.label.has(c) {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// live iterates over non-pruned nodes in id order.
func (g *graph) live(fn func(*node) bool) {
	for _, n := range g.nodes {
		if n.pruned {
			continue
		}
		if !fn(n) {
			return
		}
	}
}
