package tableau

import (
	"parowl/internal/dl"
)

// node is one individual in the completion graph. Because the logic has no
// inverse roles, completion graphs are trees: every non-root node has
// exactly one parent and an edge label (a set of roles) on the edge from
// that parent.
//
// Nodes are shared copy-on-write between a graph and its branch-point
// snapshots: a node with epoch < the graph's epoch is immutable and must
// be copied (graph.mutable) before mutation.
type node struct {
	epoch  int32
	id     int32
	parent int32 // -1 for the root

	// label maps each concept in L(x) to the dependency set it was
	// derived under; order preserves insertion for deterministic rule
	// application.
	label map[*dl.Concept]depSet
	order []*dl.Concept

	// edge maps each role on the incoming edge to its dependency set.
	edge      map[*dl.Role]depSet
	edgeOrder []*dl.Role

	children []int32
	pruned   bool // true once merged away or detached

	// minApplied records the ≥-restrictions whose witnesses this node has
	// already generated, so the ≥-rule fires once per (node, concept).
	minApplied map[*dl.Concept]bool
}

// appliedMin reports whether the ≥-rule already fired for c at n.
func (n *node) appliedMin(c *dl.Concept) bool { return n.minApplied[c] }

func (n *node) clone(epoch int32) *node {
	c := &node{
		epoch:  epoch,
		id:     n.id,
		parent: n.parent,
		label:  make(map[*dl.Concept]depSet, len(n.label)+4),
		order:  append(make([]*dl.Concept, 0, len(n.order)+4), n.order...),
		pruned: n.pruned,
	}
	for k, v := range n.label {
		c.label[k] = v
	}
	if n.minApplied != nil {
		c.minApplied = make(map[*dl.Concept]bool, len(n.minApplied))
		for k, v := range n.minApplied {
			c.minApplied[k] = v
		}
	}
	if n.edge != nil {
		c.edge = make(map[*dl.Role]depSet, len(n.edge))
		for k, v := range n.edge {
			c.edge[k] = v
		}
		c.edgeOrder = append([]*dl.Role(nil), n.edgeOrder...)
	}
	c.children = append([]int32(nil), n.children...)
	return c
}

// hasRole reports whether the incoming edge carries some role S ⊑* r, and
// returns the union of the dependency sets of all such roles.
func (n *node) hasRole(r *dl.Role) (bool, depSet) {
	found := false
	deps := emptyDeps
	for _, s := range n.edgeOrder {
		if s.IsSubRoleOf(r) {
			found = true
			deps = deps.union(n.edge[s])
		}
	}
	return found, deps
}

// pairKey canonically identifies an unordered node pair.
type pairKey struct{ a, b int32 }

func mkPair(x, y int32) pairKey {
	if x > y {
		x, y = y, x
	}
	return pairKey{x, y}
}

// graph is the mutable tableau state: all nodes plus the inequality
// relation introduced by the ≥-rule. Graphs are snapshotted at
// nondeterministic choice points; the snapshot shares all nodes
// copy-on-write, so cloning costs one slice copy and mutation copies only
// the touched nodes.
type graph struct {
	epoch    int32
	nodes    []*node
	distinct map[pairKey]depSet
}

func newGraph() *graph {
	return &graph{distinct: make(map[pairKey]depSet)}
}

// clone returns a snapshot sharing every node with g; both sides copy
// nodes before mutating them.
func (g *graph) clone() *graph {
	c := &graph{
		epoch:    g.epoch + 1,
		nodes:    append(make([]*node, 0, cap(g.nodes)), g.nodes...),
		distinct: make(map[pairKey]depSet, len(g.distinct)),
	}
	for k, v := range g.distinct {
		c.distinct[k] = v
	}
	// The original keeps mutating: bump its epoch too so neither side
	// writes to the shared nodes.
	g.epoch += 2
	return c
}

// mutable returns a node owned by this graph, copying it first if it is
// shared with a snapshot.
func (g *graph) mutable(id int32) *node {
	n := g.nodes[id]
	if n.epoch != g.epoch {
		n = n.clone(g.epoch)
		g.nodes[id] = n
	}
	return n
}

// newNode appends a fresh unlabeled node with the given parent (-1 = root).
func (g *graph) newNode(parent int32) *node {
	n := &node{
		epoch:  g.epoch,
		id:     int32(len(g.nodes)),
		parent: parent,
		label:  make(map[*dl.Concept]depSet),
	}
	g.nodes = append(g.nodes, n)
	if parent >= 0 {
		p := g.mutable(parent)
		p.children = append(p.children, n.id)
	}
	return n
}

// add inserts concept c into L(n) with dependency set deps. It reports
// whether the label changed. If c was already present, the existing
// (typically older, hence more general) dependency set is kept.
func (g *graph) add(id int32, c *dl.Concept, deps depSet) bool {
	if _, ok := g.nodes[id].label[c]; ok {
		return false
	}
	n := g.mutable(id)
	n.label[c] = deps
	n.order = append(n.order, c)
	return true
}

// addEdgeRole puts role r on the incoming edge of n.
func (g *graph) addEdgeRole(id int32, r *dl.Role, deps depSet) bool {
	if e := g.nodes[id].edge; e != nil {
		if _, ok := e[r]; ok {
			return false
		}
	}
	n := g.mutable(id)
	if n.edge == nil {
		n.edge = make(map[*dl.Role]depSet)
	}
	n.edge[r] = deps
	n.edgeOrder = append(n.edgeOrder, r)
	return true
}

// markMin records that the ≥-rule fired for c at node id.
func (g *graph) markMin(id int32, c *dl.Concept) {
	n := g.mutable(id)
	if n.minApplied == nil {
		n.minApplied = make(map[*dl.Concept]bool)
	}
	n.minApplied[c] = true
}

// setDistinct records x ≠ y.
func (g *graph) setDistinct(x, y int32, deps depSet) {
	key := mkPair(x, y)
	if _, ok := g.distinct[key]; !ok {
		g.distinct[key] = deps
	}
}

// areDistinct reports whether x ≠ y has been asserted.
func (g *graph) areDistinct(x, y int32) (bool, depSet) {
	d, ok := g.distinct[mkPair(x, y)]
	return ok, d
}

// neighbors returns the live children of x whose incoming edge carries a
// sub-role of r, in creation order.
func (g *graph) neighbors(x *node, r *dl.Role) []*node {
	var out []*node
	for _, ci := range x.children {
		c := g.nodes[ci]
		if c.pruned {
			continue
		}
		if ok, _ := c.hasRole(r); ok {
			out = append(out, c)
		}
	}
	return out
}

// prune detaches the subtree rooted at id (used when merging nodes).
func (g *graph) prune(id int32) {
	n := g.mutable(id)
	n.pruned = true
	for _, ci := range n.children {
		g.prune(ci)
	}
}

// blocked reports whether node n is blocked: some live ancestor y (other
// than n) has exactly the same label (equality blocking, sound for SHQ
// without inverse roles). Generating rules (∃, ≥) do not fire on blocked
// nodes.
func (g *graph) blocked(n *node) bool {
	for p := n.parent; p >= 0; p = g.nodes[p].parent {
		anc := g.nodes[p]
		if len(anc.label) != len(n.label) {
			continue
		}
		same := true
		for c := range n.label {
			if _, ok := anc.label[c]; !ok {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// live iterates over non-pruned nodes in id order.
func (g *graph) live(fn func(*node) bool) {
	for _, n := range g.nodes {
		if n.pruned {
			continue
		}
		if !fn(n) {
			return
		}
	}
}
