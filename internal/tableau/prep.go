package tableau

import (
	"parowl/internal/dl"
)

// prep holds the read-only per-TBox preprocessing shared by all
// satisfiability tests: the absorption (lazy-unfolding) tables and the
// internalized global axioms. A prep is built once per Reasoner and never
// mutated afterwards, so concurrent tests can share it freely.
//
// The tables are indexed by the dense concept/role IDs assigned at intern
// time (see dl.TBox.Freeze): a lookup on the tableau hot path is one
// bounds check and one slice load instead of a map probe.
type prep struct {
	factory *dl.Factory

	// unfold[A.ID] holds the NNF right-hand sides of all absorbed axioms
	// A ⊑ D: when A enters a node label, each D follows (lazy unfolding).
	// This is the absorption optimization every production tableau
	// reasoner applies to keep GCIs from exploding the search space.
	unfold [][]*dl.Concept

	// negUnfold is the dual table for absorbed ¬A ⊑ D axioms (from GCIs
	// whose left side is a negated name), indexed by A.ID.
	negUnfold [][]*dl.Concept

	// universals are the internalized leftovers: every GCI C ⊑ D that
	// could not be absorbed contributes NNF(¬C ⊔ D), which must hold at
	// every node of every completion graph.
	universals []*dl.Concept

	// transSubs[R.ID] caches the sub-roles S ⊑* R with S transitive; the
	// ∀⁺-rule consults it.
	transSubs [][]*dl.Role
}

// unfoldOf returns the absorbed right-hand sides for named concept c.
// Concepts interned after preprocessing (test helpers do this) have IDs
// past the table and simply unfold to nothing.
func (p *prep) unfoldOf(c *dl.Concept) []*dl.Concept {
	if int(c.ID) < len(p.unfold) {
		return p.unfold[c.ID]
	}
	return nil
}

// negUnfoldOf returns the absorbed right-hand sides for ¬c.
func (p *prep) negUnfoldOf(c *dl.Concept) []*dl.Concept {
	if int(c.ID) < len(p.negUnfold) {
		return p.negUnfold[c.ID]
	}
	return nil
}

// transSubsOf returns the transitive sub-roles of r.
func (p *prep) transSubsOf(r *dl.Role) []*dl.Role {
	if int(r.ID) < len(p.transSubs) {
		return p.transSubs[r.ID]
	}
	return nil
}

// appendAt grows tab to cover id and appends v at that index. Absorption
// interns fresh concepts as it runs, so the table can outgrow the frozen
// ID bound while prep is being built; it is immutable afterwards.
func appendAt(tab [][]*dl.Concept, id int32, v *dl.Concept) [][]*dl.Concept {
	for int(id) >= len(tab) {
		tab = append(tab, nil)
	}
	tab[id] = append(tab[id], v)
	return tab
}

// newPrep preprocesses the TBox. The TBox must be frozen (or at least no
// longer mutated) before reasoning starts.
func newPrep(t *dl.TBox) *prep {
	f := t.Factory
	p := &prep{
		factory:   f,
		unfold:    make([][]*dl.Concept, f.NumConcepts()),
		negUnfold: make([][]*dl.Concept, f.NumConcepts()),
	}
	for _, gci := range t.AsGCIs() {
		p.absorb(gci.Sub, gci.Sup)
	}
	roles := f.Roles()
	p.transSubs = make([][]*dl.Role, len(roles))
	for _, r := range roles {
		var subs []*dl.Role
		for _, s := range roles {
			if s.Transitive && s.IsSubRoleOf(r) {
				subs = append(subs, s)
			}
		}
		p.transSubs[r.ID] = subs
	}
	return p
}

// absorb places one GCI sub ⊑ sup either into the unfolding tables (when
// the left side is a possibly negated concept name) or into the
// internalized universal set.
func (p *prep) absorb(sub, sup *dl.Concept) {
	f := p.factory
	switch {
	case sub.Op == dl.OpName:
		p.unfold = appendAt(p.unfold, sub.ID, sup)
	case sub.Op == dl.OpNot: // NNF guarantees the argument is a name
		p.negUnfold = appendAt(p.negUnfold, sub.Args[0].ID, sup)
	case sub.Op == dl.OpTop:
		p.universals = append(p.universals, sup)
	case sub.Op == dl.OpBottom:
		// ⊥ ⊑ D is a tautology.
	case sub.Op == dl.OpAnd:
		// Binary absorption: A ⊓ R ⊑ S with a named operand A becomes
		// A ⊑ ¬R ⊔ S, turning a global disjunction into one that fires
		// only at nodes labeled A. Disjointness (S = ⊥) is the special
		// case A ⊑ ¬R.
		for i, a := range sub.Args {
			if a.Op == dl.OpName {
				rest := make([]*dl.Concept, 0, len(sub.Args)-1)
				rest = append(rest, sub.Args[:i]...)
				rest = append(rest, sub.Args[i+1:]...)
				p.unfold = appendAt(p.unfold, a.ID, f.Or(f.Not(f.And(rest...)), sup))
				return
			}
		}
		p.universals = append(p.universals, f.Or(f.Not(sub), sup))
	default:
		p.universals = append(p.universals, f.Or(f.Not(sub), sup))
	}
}
