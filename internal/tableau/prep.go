package tableau

import (
	"parowl/internal/dl"
)

// prep holds the read-only per-TBox preprocessing shared by all
// satisfiability tests: the absorption (lazy-unfolding) map and the
// internalized global axioms. A prep is built once per Reasoner and never
// mutated afterwards, so concurrent tests can share it freely.
type prep struct {
	factory *dl.Factory

	// unfold maps a named concept A to the NNF right-hand sides of all
	// absorbed axioms A ⊑ D: when A enters a node label, each D follows
	// (lazy unfolding). This is the absorption optimization every
	// production tableau reasoner applies to keep GCIs from exploding the
	// search space.
	unfold map[*dl.Concept][]*dl.Concept

	// negUnfold is the dual map for absorbed ¬A ⊑ D axioms (from GCIs
	// whose left side is a negated name).
	negUnfold map[*dl.Concept][]*dl.Concept

	// universals are the internalized leftovers: every GCI C ⊑ D that
	// could not be absorbed contributes NNF(¬C ⊔ D), which must hold at
	// every node of every completion graph.
	universals []*dl.Concept

	// transSubs caches, per role R, the sub-roles S ⊑* R with S
	// transitive; the ∀⁺-rule consults it.
	transSubs map[*dl.Role][]*dl.Role
}

// newPrep preprocesses the TBox. The TBox must be frozen (or at least no
// longer mutated) before reasoning starts.
func newPrep(t *dl.TBox) *prep {
	f := t.Factory
	p := &prep{
		factory:   f,
		unfold:    make(map[*dl.Concept][]*dl.Concept),
		negUnfold: make(map[*dl.Concept][]*dl.Concept),
		transSubs: make(map[*dl.Role][]*dl.Role),
	}
	for _, gci := range t.AsGCIs() {
		p.absorb(gci.Sub, gci.Sup)
	}
	roles := f.Roles()
	for _, r := range roles {
		var subs []*dl.Role
		for _, s := range roles {
			if s.Transitive && s.IsSubRoleOf(r) {
				subs = append(subs, s)
			}
		}
		if len(subs) > 0 {
			p.transSubs[r] = subs
		}
	}
	return p
}

// absorb places one GCI sub ⊑ sup either into the unfolding maps (when the
// left side is a possibly negated concept name) or into the internalized
// universal set.
func (p *prep) absorb(sub, sup *dl.Concept) {
	f := p.factory
	switch {
	case sub.Op == dl.OpName:
		p.unfold[sub] = append(p.unfold[sub], sup)
	case sub.Op == dl.OpNot: // NNF guarantees the argument is a name
		p.negUnfold[sub.Args[0]] = append(p.negUnfold[sub.Args[0]], sup)
	case sub.Op == dl.OpTop:
		p.universals = append(p.universals, sup)
	case sub.Op == dl.OpBottom:
		// ⊥ ⊑ D is a tautology.
	case sub.Op == dl.OpAnd:
		// Binary absorption: A ⊓ R ⊑ S with a named operand A becomes
		// A ⊑ ¬R ⊔ S, turning a global disjunction into one that fires
		// only at nodes labeled A. Disjointness (S = ⊥) is the special
		// case A ⊑ ¬R.
		for i, a := range sub.Args {
			if a.Op == dl.OpName {
				rest := make([]*dl.Concept, 0, len(sub.Args)-1)
				rest = append(rest, sub.Args[:i]...)
				rest = append(rest, sub.Args[i+1:]...)
				p.unfold[a] = append(p.unfold[a], f.Or(f.Not(f.And(rest...)), sup))
				return
			}
		}
		p.universals = append(p.universals, f.Or(f.Not(sub), sup))
	default:
		p.universals = append(p.universals, f.Or(f.Not(sub), sup))
	}
}
