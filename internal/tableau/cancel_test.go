package tableau

import (
	"context"
	"errors"
	"testing"
)

// TestSatCancelled: an already-cancelled context aborts the test before
// (or during) expansion, surfaces the cause, and is counted.
func TestSatCancelled(t *testing.T) {
	tb, f, _ := newEmpty(t)
	a, b := f.Name("A"), f.Name("B")
	tb.SubClassOf(a, f.Some(f.Role("r"), b))
	r := New(tb, Options{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Sat(ctx, a); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sat under cancelled ctx: err = %v, want context.Canceled", err)
	}
	if got := r.Stats().Cancelled.Load(); got < 1 {
		t.Errorf("Stats.Cancelled = %d, want >= 1", got)
	}

	// The same reasoner (and its pooled solvers) stays usable: a fresh
	// context decides the test normally.
	ok, err := r.Sat(context.Background(), a)
	if err != nil || !ok {
		t.Fatalf("Sat after cancellation = %v, %v; want true, nil", ok, err)
	}
}

// TestSubsCancelled mirrors TestSatCancelled for the subsumption entry point.
func TestSubsCancelled(t *testing.T) {
	tb, f, _ := newEmpty(t)
	a, b := f.Name("A"), f.Name("B")
	tb.SubClassOf(a, b)
	r := New(tb, Options{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Subs(ctx, b, a); !errors.Is(err, context.Canceled) {
		t.Fatalf("Subs under cancelled ctx: err = %v, want context.Canceled", err)
	}
	ok, err := r.Subs(context.Background(), b, a)
	if err != nil || !ok {
		t.Fatalf("Subs after cancellation = %v, %v; want true, nil", ok, err)
	}
}
