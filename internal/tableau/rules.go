package tableau

import (
	"context"
	"fmt"
	"sort"

	"parowl/internal/dl"
	"parowl/internal/reasoner"
)

// ErrBudget is returned when a satisfiability test exceeds the reasoner's
// node budget. It indicates the test was abandoned, not answered. The
// error wraps the plug-in-agnostic reasoner.ErrNodeBudget sentinel so the
// classifier can classify the degradation without importing tableau.
var ErrBudget = fmt.Errorf("tableau: %w", reasoner.ErrNodeBudget)

// ErrBranchBudget is returned when a satisfiability test exceeds the
// reasoner's branching budget. It wraps reasoner.ErrBranchBudget.
var ErrBranchBudget = fmt.Errorf("tableau: %w", reasoner.ErrBranchBudget)

// solver carries the mutable state of one satisfiability test plus the
// arenas (see arena.go) that let the state be recycled across tests.
type solver struct {
	p           *prep
	g           *graph
	nextBranch  int32
	maxNodes    int
	created     int
	maxBranches int32

	// Cooperative cancellation for the current test. done is ctx.Done(),
	// captured once per test: it is nil for non-cancellable contexts
	// (context.Background), so the hot path pays a single nil check per
	// expansion pass. ctx is kept only to surface ctx.Err().
	ctx  context.Context
	done <-chan struct{}

	// arena allocation state: dependency-set slabs, node and graph slabs,
	// and reuse counters harvested into Reasoner.Stats on release.
	arena          depArena
	nodeSlab       []*node
	nodeUsed       int
	graphSlab      []*graph
	graphUsed      int
	nodesReused    int
	nodesAllocated int
	warm           bool // true once the solver has served a test and been recycled

	// scratch buffers. nbuf backs neighbors() and mbuf maxWitnesses();
	// each is valid only until the next call of its producer, which the
	// rule implementations below respect.
	nbuf  []*node
	mbuf  []*node
	idbuf []int32
}

// alternative is one arm of a nondeterministic choice point.
type alternative struct {
	apply func(deps depSet)
}

// choice is a nondeterministic rule instance: its base dependency set and
// the alternatives to branch over.
type choice struct {
	base depSet
	alts []alternative
}

// bindContext arms cooperative cancellation for the next test. Called
// after acquireSolver and undone by resetForReuse.
func (s *solver) bindContext(ctx context.Context) {
	s.ctx = ctx
	s.done = ctx.Done()
}

// cancelled polls the bound context without blocking. It is called once
// per expansion pass (each pass scans the whole graph), so the per-check
// cost is amortized to nothing while cancellation latency stays bounded
// by a single rule pass.
func (s *solver) cancelled() bool {
	if s.done == nil {
		return false
	}
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// solve runs the tableau calculus to completion on the current graph.
// It returns (true, nil) when a complete clash-free graph was found,
// (false, deps) when every expansion clashes (deps are the clash's branch
// dependencies, used for backjumping), or an error when the node budget
// was exhausted or the context was cancelled.
func (s *solver) solve() (bool, depSet, error) {
	for {
		if s.cancelled() {
			return false, nil, fmt.Errorf("tableau: test abandoned: %w", s.ctx.Err())
		}
		if deps, clash := s.findClash(); clash {
			return false, deps, nil
		}
		if s.applyDeterministic() {
			continue
		}
		if ch := s.findChoice(); ch != nil {
			return s.branch(ch)
		}
		created, err := s.applyGenerating()
		if err != nil {
			return false, nil, err
		}
		if created {
			continue
		}
		return true, nil, nil
	}
}

// branch explores the alternatives of a choice point with
// dependency-directed backjumping.
func (s *solver) branch(ch *choice) (bool, depSet, error) {
	b := s.nextBranch
	s.nextBranch++
	if s.maxBranches > 0 && s.nextBranch > s.maxBranches {
		return false, nil, fmt.Errorf("%w (limit %d)", ErrBranchBudget, s.maxBranches)
	}
	carried := emptyDeps
	for _, alt := range ch.alts {
		snapshot := s.g.clone()
		alt.apply(s.arena.with(s.arena.union(ch.base, carried), b))
		sat, clashDeps, err := s.solve()
		if err != nil {
			return false, nil, err
		}
		if sat {
			return true, nil, nil
		}
		s.g = snapshot
		if !clashDeps.has(b) {
			// The clash did not involve this choice: jump straight over
			// the remaining alternatives.
			return false, clashDeps, nil
		}
		carried = s.arena.union(carried, s.arena.without(clashDeps, b))
	}
	return false, s.arena.union(ch.base, carried), nil
}

// findClash scans for ⊥, complementary pairs, and violated at-most
// restrictions whose neighbors are all pairwise distinct.
func (s *solver) findClash() (depSet, bool) {
	var out depSet
	found := false
	s.g.live(func(n *node) bool {
		for i := 0; i < len(n.label.order); i++ {
			c := n.label.order[i]
			switch {
			case c.Op == dl.OpBottom:
				out = n.label.deps[i]
				found = true
				return false
			case c.Op == dl.OpNot:
				if d, ok := n.label.get(c.Args[0]); ok {
					out = s.arena.union(n.label.deps[i], d)
					found = true
					return false
				}
			case c.Op == dl.OpOr:
				// A disjunction all of whose disjuncts are complemented
				// in the label can never be satisfied here.
				if deps, dead := s.deadDisjunction(n, c, n.label.deps[i]); dead {
					out = deps
					found = true
					return false
				}
			case c.Op == dl.OpMax:
				if deps, clash := s.maxClash(n, c); clash {
					out = deps
					found = true
					return false
				}
			}
		}
		return true
	})
	return out, found
}

// unitDisjunct counts the open disjuncts of c at n (neither the disjunct
// nor its complement in the label). When exactly one is open it is
// returned together with the union of the closed disjuncts' complement
// dependencies; when c is already satisfied, open is -1.
func (s *solver) unitDisjunct(n *node, c *dl.Concept) (open int, forced *dl.Concept, deps depSet) {
	for _, d := range c.Args {
		if n.label.has(d) {
			return -1, nil, nil
		}
		if nd, ok := n.label.get(s.p.factory.Not(d)); ok {
			deps = s.arena.union(deps, nd)
			continue
		}
		open++
		forced = d
	}
	if open != 1 {
		return open, nil, nil
	}
	return 1, forced, deps
}

// openDisjuncts returns the open disjuncts of c at n for branching, with
// the dependency union of the closed ones; nil when no branching applies
// (satisfied, 0 open = clash handled elsewhere, 1 open = unit-propagated).
func (s *solver) openDisjuncts(n *node, c *dl.Concept) ([]*dl.Concept, depSet) {
	var open []*dl.Concept
	deps := emptyDeps
	for _, d := range c.Args {
		if n.label.has(d) {
			return nil, nil
		}
		if nd, ok := n.label.get(s.p.factory.Not(d)); ok {
			deps = s.arena.union(deps, nd)
			continue
		}
		open = append(open, d)
	}
	if len(open) <= 1 {
		return nil, nil
	}
	// Try non-generating disjuncts first: a ∀/≤/¬A arm often completes
	// without growing the graph, whereas names unfold and ∃/≥ spawn
	// subtrees. Stable ordering keeps runs deterministic.
	sort.SliceStable(open, func(i, j int) bool {
		return disjunctCost(open[i]) < disjunctCost(open[j])
	})
	return open, deps
}

// disjunctCost ranks disjuncts by how much search trying them first tends
// to cause.
func disjunctCost(c *dl.Concept) int {
	switch c.Op {
	case dl.OpAll, dl.OpMax, dl.OpNot, dl.OpTop:
		return 0
	case dl.OpName, dl.OpAnd, dl.OpOr:
		return 1
	default: // OpSome, OpMin: generating
		return 2
	}
}

// deadDisjunction reports whether every disjunct of c is closed at n
// (its complement is in the label) while c itself is unsatisfied. cdeps
// is c's own dependency set at n.
func (s *solver) deadDisjunction(n *node, c *dl.Concept, cdeps depSet) (depSet, bool) {
	deps := cdeps
	for _, d := range c.Args {
		if n.label.has(d) {
			return nil, false // satisfied
		}
		nd, ok := n.label.get(s.p.factory.Not(d))
		if !ok {
			return nil, false // still open
		}
		deps = s.arena.union(deps, nd)
	}
	return deps, true
}

// maxClash reports whether ≤n R.C at node x is violated by more than n
// pairwise-distinct R-neighbors whose labels contain C.
func (s *solver) maxClash(x *node, c *dl.Concept) (depSet, bool) {
	members, deps := s.maxWitnesses(x, c)
	if len(members) <= c.N {
		return nil, false
	}
	for i := range members {
		for j := i + 1; j < len(members); j++ {
			dis, dd := s.g.areDistinct(members[i].id, members[j].id)
			if !dis {
				return nil, false // a merge is still possible
			}
			deps = s.arena.union(deps, dd)
		}
	}
	cd, _ := x.label.get(c)
	return s.arena.union(deps, cd), true
}

// maxWitnesses returns the R-neighbors of x with C in their label,
// together with the union of the edge and label dependency sets involved.
// The returned slice is scratch (s.mbuf), valid until the next call.
func (s *solver) maxWitnesses(x *node, c *dl.Concept) ([]*node, depSet) {
	deps := emptyDeps
	members := s.mbuf[:0]
	for _, y := range s.neighbors(x, c.Role) {
		if d, ok := y.label.get(c.Args[0]); ok {
			_, ed := y.hasRole(c.Role, &s.arena)
			deps = s.arena.union(s.arena.union(deps, d), ed)
			members = append(members, y)
		}
	}
	s.mbuf = members
	return members, deps
}

// neighbors returns the live children of x whose incoming edge carries a
// sub-role of r, in creation order. The returned slice is scratch
// (s.nbuf), valid until the next call.
func (s *solver) neighbors(x *node, r *dl.Role) []*node {
	out := s.nbuf[:0]
	for _, ci := range x.children {
		c := s.g.nodes[ci]
		if c.pruned {
			continue
		}
		if c.hasAnyRole(r) {
			out = append(out, c)
		}
	}
	s.nbuf = out
	return out
}

// applyDeterministic runs one pass of all deterministic rules and reports
// whether anything changed.
func (s *solver) applyDeterministic() bool {
	changed := false
	s.g.live(func(n *node) bool {
		// Internalized global axioms hold at every node.
		for _, u := range s.p.universals {
			if s.g.add(n.id, u, emptyDeps) {
				changed = true
			}
		}
		// Scan the label in insertion order: rules may append, and the
		// loop picks the new entries up in the same pass.
		for i := 0; i < len(n.label.order); i++ {
			c := n.label.order[i]
			deps := n.label.deps[i]
			switch c.Op {
			case dl.OpName: // lazy unfolding of absorbed axioms
				for _, d := range s.p.unfoldOf(c) {
					if s.g.add(n.id, d, deps) {
						changed = true
					}
				}
			case dl.OpNot:
				for _, d := range s.p.negUnfoldOf(c.Args[0]) {
					if s.g.add(n.id, d, deps) {
						changed = true
					}
				}
			case dl.OpAnd: // ⊓-rule
				for _, a := range c.Args {
					if s.g.add(n.id, a, deps) {
						changed = true
					}
				}
			case dl.OpOr:
				// Boolean constraint propagation: if all but one disjunct
				// are complemented in the label, the remaining one is
				// forced — no branching needed. This keeps internalized
				// GCIs (¬C ⊔ D at every node) from exploding the search.
				if open, forced, fdeps := s.unitDisjunct(n, c); open == 1 {
					if s.g.add(n.id, forced, s.arena.union(deps, fdeps)) {
						changed = true
					}
				}
			case dl.OpAll: // ∀-rule and ∀⁺-rule
				for _, y := range s.neighbors(n, c.Role) {
					_, ed := y.hasRole(c.Role, &s.arena)
					if s.g.add(y.id, c.Args[0], s.arena.union(deps, ed)) {
						changed = true
					}
				}
				for _, t := range s.p.transSubsOf(c.Role) {
					prop := s.p.factory.All(t, c.Args[0])
					for _, y := range s.neighbors(n, t) {
						_, ed := y.hasRole(t, &s.arena)
						if s.g.add(y.id, prop, s.arena.union(deps, ed)) {
							changed = true
						}
					}
				}
			}
		}
		return true
	})
	return changed
}

// findChoice locates the first applicable nondeterministic rule instance,
// scanning nodes and labels in deterministic order: ⊔-rule, then the
// choose-rule for at-most restrictions, then neighbor merging.
func (s *solver) findChoice() *choice {
	var out *choice
	s.g.live(func(n *node) bool {
		for i := 0; i < len(n.label.order); i++ {
			c := n.label.order[i]
			switch c.Op {
			case dl.OpOr: // ⊔-rule, branching only over open disjuncts
				open, closedDeps := s.openDisjuncts(n, c)
				if open == nil {
					continue // satisfied, unit-propagated, or dead
				}
				ch := &choice{base: s.arena.union(n.label.deps[i], closedDeps)}
				for _, d := range open {
					d := d
					y := n.id
					ch.alts = append(ch.alts, alternative{apply: func(deps depSet) {
						s.g.add(y, d, deps)
					}})
				}
				out = ch
				return false
			case dl.OpMax:
				if ch := s.chooseOrMerge(n, c); ch != nil {
					out = ch
					return false
				}
			}
		}
		return true
	})
	return out
}

// chooseOrMerge handles the two nondeterministic parts of the ≤-rule for
// constraint c = ≤n R.C at node x: first the choose-rule (every R-neighbor
// must decide C vs ¬C), then, if more than n witnesses exist, merging a
// non-distinct pair.
func (s *solver) chooseOrMerge(x *node, c *dl.Concept) *choice {
	f := s.p.factory
	cc := c.Args[0]
	ncc := f.Not(cc)
	neighbors := s.neighbors(x, c.Role)
	if len(neighbors) <= c.N {
		// With at most n R-neighbors in total, ≤n R.C can never be
		// violated whatever the choose-rule decides: skipping the
		// branching here is sound and complete, and avoids exponential
		// search on QCR-dense ontologies.
		return nil
	}
	xd, _ := x.label.get(c)
	for _, y := range neighbors {
		if y.label.has(cc) || y.label.has(ncc) {
			continue
		}
		_, ed := y.hasRole(c.Role, &s.arena)
		yid := y.id
		return &choice{
			base: s.arena.union(xd, ed),
			alts: []alternative{
				{apply: func(deps depSet) { s.g.add(yid, cc, deps) }},
				{apply: func(deps depSet) { s.g.add(yid, ncc, deps) }},
			},
		}
	}
	members, wdeps := s.maxWitnesses(x, c)
	if len(members) <= c.N {
		return nil
	}
	ch := &choice{base: s.arena.union(xd, wdeps)}
	for i := range members {
		for j := i + 1; j < len(members); j++ {
			if dis, _ := s.g.areDistinct(members[i].id, members[j].id); dis {
				continue
			}
			older, younger := members[i].id, members[j].id
			ch.alts = append(ch.alts, alternative{apply: func(deps depSet) {
				s.merge(younger, older, deps)
			}})
		}
	}
	if len(ch.alts) == 0 {
		return nil // all pairs distinct: findClash reports this as a clash
	}
	return ch
}

// merge folds node src into dst (both children of the same parent):
// labels and edge roles are unioned into dst, src's subtree is pruned,
// and src's inequalities transfer to dst.
func (s *solver) merge(src, dst int32, deps depSet) {
	sn := s.g.nodes[src]
	for i, c := range sn.label.order {
		s.g.add(dst, c, s.arena.union(sn.label.deps[i], deps))
	}
	for i, r := range sn.edgeRoles {
		s.g.addEdgeRole(dst, r, s.arena.union(sn.edgeDeps[i], deps))
	}
	for key, dd := range s.g.distinct {
		var other int32 = -1
		switch {
		case key.a == src:
			other = key.b
		case key.b == src:
			other = key.a
		}
		if other >= 0 && other != dst {
			s.g.setDistinct(dst, other, s.arena.union(dd, deps))
		}
	}
	s.g.prune(src)
}

// applyGenerating runs the ∃- and ≥-rules on unblocked nodes. It returns
// whether any node was created, or an error if the node budget ran out.
func (s *solver) applyGenerating() (bool, error) {
	created := false
	var budgetErr error
	s.g.live(func(n *node) bool {
		if n.label.len() == 0 {
			return true
		}
		blockedKnown, isBlocked := false, false
		blocked := func() bool {
			if !blockedKnown {
				isBlocked = s.g.blocked(n)
				blockedKnown = true
			}
			return isBlocked
		}
		for i := 0; i < len(n.label.order); i++ {
			c := n.label.order[i]
			deps := n.label.deps[i]
			switch c.Op {
			case dl.OpSome: // ∃-rule
				exists := false
				for _, y := range s.neighbors(n, c.Role) {
					if y.label.has(c.Args[0]) {
						exists = true
						break
					}
				}
				if exists || blocked() {
					continue
				}
				if err := s.spawn(n, c.Role, c.Args[0], deps, 1, false); err != nil {
					budgetErr = err
					return false
				}
				created = true
			case dl.OpMin: // ≥-rule
				if n.appliedMin(c) || blocked() {
					continue
				}
				if err := s.spawn(n, c.Role, c.Args[0], deps, c.N, true); err != nil {
					budgetErr = err
					return false
				}
				s.g.markMin(n.id, c)
				created = true
			}
		}
		return true
	})
	return created, budgetErr
}

// spawn creates count children of n with edge role r and label {filler};
// when distinct is set, the children are asserted pairwise distinct.
func (s *solver) spawn(n *node, r *dl.Role, filler *dl.Concept, deps depSet, count int, distinct bool) error {
	ids := s.idbuf[:0]
	for i := 0; i < count; i++ {
		if s.created >= s.maxNodes {
			s.idbuf = ids
			return fmt.Errorf("%w (limit %d)", ErrBudget, s.maxNodes)
		}
		s.created++
		y := s.g.newNode(n.id)
		s.g.addEdgeRole(y.id, r, deps)
		s.g.add(y.id, s.p.factory.Top(), emptyDeps)
		s.g.add(y.id, filler, deps)
		ids = append(ids, y.id)
	}
	s.idbuf = ids
	if distinct {
		for i := range ids {
			for j := i + 1; j < len(ids); j++ {
				s.g.setDistinct(ids[i], ids[j], deps)
			}
		}
	}
	return nil
}
