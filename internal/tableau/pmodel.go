package tableau

import (
	"context"
	"sync"

	"parowl/internal/dl"
)

// pmodel is a pseudo model: a summary of the root label of a clash-free
// completion graph for a concept. Two concepts whose pseudo models are
// mergeable have a joint model obtained by gluing the two completion
// graphs at the root, so their conjunction is satisfiable — the classic
// model-merging optimization of Racer and FaCT++ used to decide
// NON-subsumption without a tableau run (subs?(D, C) is false whenever
// pmodel(C) and pmodel(¬D) merge).
type pmodel struct {
	sat bool // false: the concept itself is unsatisfiable
	pos map[*dl.Concept]bool
	neg map[*dl.Concept]bool
	// exists are the roles of ∃/≥ root entries (successor-creating);
	// univ are the roles of ∀/≤ root entries (successor-constraining).
	exists []*dl.Role
	univ   []*dl.Role
}

// extractPModel summarizes the root node of a completed graph. The pmodel
// holds only interned factory objects (concepts, roles), never arena
// state, so it safely outlives the pooled solver that produced it.
func extractPModel(g *graph) *pmodel {
	root := g.nodes[0]
	m := &pmodel{sat: true, pos: map[*dl.Concept]bool{}, neg: map[*dl.Concept]bool{}}
	seenEx := map[*dl.Role]bool{}
	seenUv := map[*dl.Role]bool{}
	for _, c := range root.label.order {
		switch c.Op {
		case dl.OpName:
			m.pos[c] = true
		case dl.OpNot:
			m.neg[c.Args[0]] = true
		case dl.OpSome, dl.OpMin:
			if !seenEx[c.Role] {
				seenEx[c.Role] = true
				m.exists = append(m.exists, c.Role)
			}
		case dl.OpAll, dl.OpMax:
			if !seenUv[c.Role] {
				seenUv[c.Role] = true
				m.univ = append(m.univ, c.Role)
			}
		}
	}
	return m
}

// mergeable reports whether the glued interpretation is clash-free:
// no complementary atomic pair at the root, and neither side creates
// successors on a role the other side constrains (taking the role
// hierarchy into account — an s-successor is also an r-successor for
// every s ⊑* r).
func mergeable(a, b *pmodel) bool {
	if !a.sat || !b.sat {
		return false
	}
	for c := range a.pos {
		if b.neg[c] {
			return false
		}
	}
	for c := range b.pos {
		if a.neg[c] {
			return false
		}
	}
	if rolesInteract(a.exists, b.univ) || rolesInteract(b.exists, a.univ) {
		return false
	}
	return true
}

func rolesInteract(exists, univ []*dl.Role) bool {
	for _, s := range exists {
		for _, r := range univ {
			if s.IsSubRoleOf(r) {
				return true
			}
		}
	}
	return false
}

// modelCache memoizes pseudo models per concept; safe for concurrent use.
type modelCache struct {
	mu sync.RWMutex
	m  map[*dl.Concept]*pmodel
}

func (mc *modelCache) get(c *dl.Concept) (*pmodel, bool) {
	mc.mu.RLock()
	defer mc.mu.RUnlock()
	pm, ok := mc.m[c]
	return pm, ok
}

func (mc *modelCache) put(c *dl.Concept, pm *pmodel) {
	mc.mu.Lock()
	if mc.m == nil {
		mc.m = make(map[*dl.Concept]*pmodel)
	}
	mc.m[c] = pm
	mc.mu.Unlock()
}

// DisprovesSubs reports that sub ⊑ sup definitely does not hold, by
// merging the cached pseudo models of sub and ¬sup: mergeable models
// witness a model of sub ⊓ ¬sup, so the subsumption fails. It
// implements the classifier's optional ModelFilter capability and is
// independent of Options.ModelMerging (which applies the same check
// inside Subs). A nil pseudo model — budget blowup or cancellation
// while building it — or an unsatisfiable side answers false ("don't
// know"): an unsatisfiable sub is subsumed by everything, and an
// unsatisfiable ¬sup makes sup equivalent to ⊤. The pseudo models are
// extracted from the pooled solver arenas before release and hold only
// interned factory objects, so the probe is safe for concurrent use
// from every worker.
func (r *Reasoner) DisprovesSubs(ctx context.Context, sup, sub *dl.Concept) bool {
	pmSub := r.pseudoModel(ctx, sub)
	if pmSub == nil || !pmSub.sat {
		return false
	}
	pmNeg := r.pseudoModel(ctx, r.tbox.Factory.Not(sup))
	if pmNeg == nil || !pmNeg.sat {
		return false
	}
	if !mergeable(pmSub, pmNeg) {
		return false
	}
	r.stats.MergeSkips.Add(1)
	return true
}

// pseudoModel returns the cached pseudo model of c, running a
// satisfiability test to build it on first use. Errors (budget blowups,
// cancellation) yield a nil model, which disables merging for c.
func (r *Reasoner) pseudoModel(ctx context.Context, c *dl.Concept) *pmodel {
	if pm, ok := r.models.get(c); ok {
		return pm
	}
	s := r.acquireSolver()
	s.bindContext(ctx)
	s.start(c)
	sat, _, err := s.solve()
	// Extract before release: the graph is arena state and is recycled the
	// moment the solver returns to the pool.
	var pm *pmodel
	if err == nil {
		if sat {
			pm = extractPModel(s.g)
		} else {
			pm = &pmodel{sat: false}
		}
	}
	r.releaseSolver(s)
	if pm == nil {
		return nil
	}
	r.models.put(c, pm)
	return pm
}
