// Package tableau implements a sound and terminating tableau decision
// procedure for concept satisfiability and subsumption in ALCHQ with
// transitive roles (SHQ without inverse roles) with respect to a general
// TBox. It plays the role HermiT 1.3.8 plays in the paper: the OWL
// reasoner plug-in behind the classifier's sat?() and subs?() calls
// (paper Sec. I, V).
//
// Features: lazy unfolding with absorption, GCI internalization,
// ⊓/⊔/∃/∀/∀⁺/≥/≤/choose rules, equality blocking, dependency-directed
// backjumping, and a node budget that turns runaway tests into errors
// instead of hangs.
package tableau

// depSet is an immutable set of branch-point identifiers used for
// dependency-directed backjumping: every constraint in the completion
// graph carries the set of nondeterministic choices it depends on, and a
// clash reports the union of the involved sets so the solver can jump
// straight back to the most recent responsible choice.
//
// The zero value (nil) is the empty set. Sets are small in practice, so a
// sorted slice representation keeps unions cheap and allocation-light.
type depSet []int32

// emptyDeps is the empty dependency set.
var emptyDeps depSet

// has reports whether branch b is in the set.
func (d depSet) has(b int32) bool {
	for _, x := range d {
		if x == b {
			return true
		}
		if x > b {
			return false
		}
	}
	return false
}

// max returns the largest branch in the set, or -1 if empty.
func (d depSet) max() int32 {
	if len(d) == 0 {
		return -1
	}
	return d[len(d)-1]
}

// union returns d ∪ o without mutating either operand.
func (d depSet) union(o depSet) depSet {
	if len(o) == 0 {
		return d
	}
	if len(d) == 0 {
		return o
	}
	out := make(depSet, 0, len(d)+len(o))
	i, j := 0, 0
	for i < len(d) && j < len(o) {
		switch {
		case d[i] < o[j]:
			out = append(out, d[i])
			i++
		case d[i] > o[j]:
			out = append(out, o[j])
			j++
		default:
			out = append(out, d[i])
			i++
			j++
		}
	}
	out = append(out, d[i:]...)
	out = append(out, o[j:]...)
	return out
}

// with returns d ∪ {b}.
func (d depSet) with(b int32) depSet {
	if d.has(b) {
		return d
	}
	return d.union(depSet{b})
}

// without returns d \ {b}.
func (d depSet) without(b int32) depSet {
	if !d.has(b) {
		return d
	}
	out := make(depSet, 0, len(d)-1)
	for _, x := range d {
		if x != b {
			out = append(out, x)
		}
	}
	return out
}
