// Package tableau implements a sound and terminating tableau decision
// procedure for concept satisfiability and subsumption in ALCHQ with
// transitive roles (SHQ without inverse roles) with respect to a general
// TBox. It plays the role HermiT 1.3.8 plays in the paper: the OWL
// reasoner plug-in behind the classifier's sat?() and subs?() calls
// (paper Sec. I, V).
//
// Features: lazy unfolding with absorption, GCI internalization,
// ⊓/⊔/∃/∀/∀⁺/≥/≤/choose rules, equality blocking, dependency-directed
// backjumping, and a node budget that turns runaway tests into errors
// instead of hangs.
package tableau

// depSet is an immutable set of branch-point identifiers used for
// dependency-directed backjumping: every constraint in the completion
// graph carries the set of nondeterministic choices it depends on, and a
// clash reports the union of the involved sets so the solver can jump
// straight back to the most recent responsible choice.
//
// The zero value (nil) is the empty set. Sets are small in practice, so a
// sorted slice representation keeps unions cheap and allocation-light.
type depSet []int32

// emptyDeps is the empty dependency set.
var emptyDeps depSet

// has reports whether branch b is in the set.
func (d depSet) has(b int32) bool {
	for _, x := range d {
		if x == b {
			return true
		}
		if x > b {
			return false
		}
	}
	return false
}

// max returns the largest branch in the set, or -1 if empty.
func (d depSet) max() int32 {
	if len(d) == 0 {
		return -1
	}
	return d[len(d)-1]
}

// union returns d ∪ o without mutating either operand.
func (d depSet) union(o depSet) depSet {
	if len(o) == 0 {
		return d
	}
	if len(d) == 0 {
		return o
	}
	out := make(depSet, 0, len(d)+len(o))
	i, j := 0, 0
	for i < len(d) && j < len(o) {
		switch {
		case d[i] < o[j]:
			out = append(out, d[i])
			i++
		case d[i] > o[j]:
			out = append(out, o[j])
			j++
		default:
			out = append(out, d[i])
			i++
			j++
		}
	}
	out = append(out, d[i:]...)
	out = append(out, o[j:]...)
	return out
}

// with returns d ∪ {b}.
func (d depSet) with(b int32) depSet {
	if d.has(b) {
		return d
	}
	return d.union(depSet{b})
}

// without returns d \ {b}.
func (d depSet) without(b int32) depSet {
	if !d.has(b) {
		return d
	}
	out := make(depSet, 0, len(d)-1)
	for _, x := range d {
		if x != b {
			out = append(out, x)
		}
	}
	return out
}

// depChunk is the slab size of a depArena; sets larger than one chunk get
// a dedicated allocation (they are vanishingly rare).
const depChunk = 4096

// depArena bump-allocates the dependency sets of one satisfiability test
// out of reusable slabs. All sets built during a test die with the test
// (clash deps propagate no further than solver.solve's caller), so the
// arena is reset wholesale when the pooled solver is recycled and its
// slabs serve the next test without touching the garbage collector.
//
// Sets handed out by the arena follow the same immutability contract as
// depSet itself: capacity is clipped to length, so a caller appending to
// one cannot stomp a neighbouring set.
type depArena struct {
	cur   []int32   // active slab
	off   int       // allocation offset into cur
	used  [][]int32 // filled slabs, waiting for reset
	spare [][]int32 // empty slabs from previous tests, ready for reuse
}

// alloc returns an uninitialized set of n ints from the arena.
func (a *depArena) alloc(n int) []int32 {
	if n > depChunk {
		return make([]int32, n)
	}
	if a.off+n > len(a.cur) {
		a.grow()
	}
	out := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	return out
}

// grow retires the active slab and installs an empty one.
func (a *depArena) grow() {
	if a.cur != nil {
		a.used = append(a.used, a.cur)
	}
	if k := len(a.spare); k > 0 {
		a.cur = a.spare[k-1]
		a.spare = a.spare[:k-1]
	} else {
		a.cur = make([]int32, depChunk)
	}
	a.off = 0
}

// reset recycles every slab. All sets previously handed out become
// invalid; the caller guarantees none outlive the test.
func (a *depArena) reset() {
	a.spare = append(a.spare, a.used...)
	a.used = a.used[:0]
	a.off = 0
}

// union returns d ∪ o allocated from the arena. Like depSet.union it
// returns an operand unchanged when the other is empty, so the all-empty
// runs of deterministic ontologies never allocate at all.
func (a *depArena) union(d, o depSet) depSet {
	if len(o) == 0 {
		return d
	}
	if len(d) == 0 {
		return o
	}
	buf := a.alloc(len(d) + len(o))
	i, j, k := 0, 0, 0
	for i < len(d) && j < len(o) {
		switch {
		case d[i] < o[j]:
			buf[k] = d[i]
			i++
		case d[i] > o[j]:
			buf[k] = o[j]
			j++
		default:
			buf[k] = d[i]
			i++
			j++
		}
		k++
	}
	k += copy(buf[k:], d[i:])
	k += copy(buf[k:], o[j:])
	if k < len(buf) && len(buf) <= depChunk {
		// The merge found duplicates: hand the unused tail back (this
		// allocation is still at the tip of the active slab).
		a.off -= len(buf) - k
	}
	return depSet(buf[:k:k])
}

// with returns d ∪ {b} allocated from the arena.
func (a *depArena) with(d depSet, b int32) depSet {
	if d.has(b) {
		return d
	}
	buf := a.alloc(len(d) + 1)
	i := 0
	for i < len(d) && d[i] < b {
		buf[i] = d[i]
		i++
	}
	buf[i] = b
	copy(buf[i+1:], d[i:])
	return depSet(buf)
}

// without returns d \ {b} allocated from the arena.
func (a *depArena) without(d depSet, b int32) depSet {
	if !d.has(b) {
		return d
	}
	buf := a.alloc(len(d) - 1)
	k := 0
	for _, x := range d {
		if x != b {
			buf[k] = x
			k++
		}
	}
	return depSet(buf)
}
