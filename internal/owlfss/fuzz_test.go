package owlfss

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that anything it accepts
// can be written and re-parsed (closure under round trip).
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("Ontology()")
	f.Add("Prefix(:=<u:>)Ontology(SubClassOf(:A :B))")
	f.Add("Ontology(SubClassOf(A ObjectMinCardinality(2 r B)))")
	f.Add("Ontology(EquivalentClasses(A ObjectUnionOf(B ObjectComplementOf(C))))")
	f.Add("Ontology(Declaration(Class(A)) AnnotationAssertion(l A \"x\"@en))")
	f.Add("Ontology(SubClassOf(A ObjectSomeValuesFrom(r ObjectAllValuesFrom(s B))))")
	f.Add("Ontology(SubObjectPropertyOf(r s) TransitiveObjectProperty(r))")
	f.Add("Ontology(UnknownAxiom(a b (c d)))")
	f.Fuzz(func(t *testing.T, src string) {
		tb, err := ParseString(src, "fuzz")
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf strings.Builder
		if err := Write(&buf, tb); err != nil {
			t.Fatalf("accepted input failed to write: %v", err)
		}
		if _, err := ParseString(buf.String(), "fuzz2"); err != nil {
			t.Fatalf("writer output does not re-parse: %v\ninput: %q\noutput:\n%s", err, src, buf.String())
		}
	})
}
