package owlfss

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"parowl/internal/dl"
)

// Parse reads a functional-style-syntax ontology and returns the TBox.
// Unsupported axiom kinds that carry no terminological content (e.g.
// individual assertions, data-property axioms) are skipped; annotation
// assertions on declared classes are recorded as annotation axioms so
// metric counts survive round trips.
func Parse(r io.Reader, name string) (*dl.TBox, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("owlfss: read: %w", err)
	}
	return ParseString(string(src), name)
}

// ParseString parses an ontology from a string.
func ParseString(src, name string) (*dl.TBox, error) {
	p := &parser{
		lex:      newLexer(src),
		tbox:     dl.NewTBox(name),
		prefixes: map[string]string{},
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.tbox, nil
}

type parser struct {
	lex      *lexer
	tbox     *dl.TBox
	prefixes map[string]string
	peeked   *token
}

func (p *parser) next() (token, error) {
	if p.peeked != nil {
		t := *p.peeked
		p.peeked = nil
		return t, nil
	}
	return p.lex.next()
}

func (p *parser) peek() (token, error) {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t, err := p.next()
	if err != nil {
		return token{}, err
	}
	if t.kind != kind {
		return token{}, fmt.Errorf("owlfss: line %d: expected %s, got %s", t.line, what, t)
	}
	return t, nil
}

// run parses the prefix block and the Ontology(...) body.
func (p *parser) run() error {
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		switch {
		case t.kind == tokEOF:
			return nil
		case t.kind == tokName && t.text == "Prefix":
			if err := p.parsePrefix(); err != nil {
				return err
			}
		case t.kind == tokName && t.text == "Ontology":
			if err := p.parseOntology(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("owlfss: line %d: expected Prefix or Ontology, got %s", t.line, t)
		}
	}
}

func (p *parser) parsePrefix() error {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return err
	}
	name, err := p.next()
	if err != nil {
		return err
	}
	pfx := ""
	if name.kind == tokName {
		pfx = name.text
		if _, err := p.expect(tokEquals, "="); err != nil {
			return err
		}
	} else if name.kind != tokEquals {
		return fmt.Errorf("owlfss: line %d: bad prefix declaration", name.line)
	}
	iri, err := p.expect(tokIRI, "IRI")
	if err != nil {
		return err
	}
	p.prefixes[strings.TrimSuffix(pfx, ":")] = iri.text
	_, err = p.expect(tokRParen, ")")
	return err
}

func (p *parser) parseOntology() error {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return err
	}
	// Optional ontology IRI (and version IRI).
	for {
		t, err := p.peek()
		if err != nil {
			return err
		}
		if t.kind != tokIRI {
			break
		}
		p.next() //nolint:errcheck // peeked token
	}
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		switch t.kind {
		case tokRParen:
			return nil
		case tokName:
			if err := p.parseAxiom(t.text, t.line); err != nil {
				return err
			}
		default:
			return fmt.Errorf("owlfss: line %d: expected axiom, got %s", t.line, t)
		}
	}
}

// resolve expands a prefixed name to a canonical concept/role name.
func (p *parser) resolve(t token) string {
	if t.kind == tokIRI {
		return t.text
	}
	name := t.text
	if i := strings.Index(name, ":"); i >= 0 {
		if base, ok := p.prefixes[name[:i]]; ok {
			return base + name[i+1:]
		}
	} else if base, ok := p.prefixes[""]; ok && strings.HasPrefix(name, ":") {
		return base + name[1:]
	}
	return name
}

// entity reads an IRI or prefixed name.
func (p *parser) entity() (string, error) {
	t, err := p.next()
	if err != nil {
		return "", err
	}
	if t.kind != tokIRI && t.kind != tokName {
		return "", fmt.Errorf("owlfss: line %d: expected entity, got %s", t.line, t)
	}
	return p.resolve(t), nil
}

// conceptForIRI maps well-known IRIs to ⊤/⊥ and everything else to a
// named concept.
func (p *parser) conceptForIRI(iri string) *dl.Concept {
	f := p.tbox.Factory
	switch iri {
	case "http://www.w3.org/2002/07/owl#Thing", "owl:Thing":
		return f.Top()
	case "http://www.w3.org/2002/07/owl#Nothing", "owl:Nothing":
		return f.Bottom()
	}
	return p.tbox.Declare(iri)
}

func (p *parser) parseAxiom(kw string, line int) error {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return err
	}
	switch kw {
	case "Declaration":
		return p.parseDeclaration()
	case "SubClassOf":
		sub, err := p.classExpr()
		if err != nil {
			return err
		}
		sup, err := p.classExpr()
		if err != nil {
			return err
		}
		p.tbox.SubClassOf(sub, sup)
		return p.closeParen()
	case "EquivalentClasses":
		exprs, err := p.classExprList(2)
		if err != nil {
			return err
		}
		for i := 1; i < len(exprs); i++ {
			p.tbox.EquivalentClasses(exprs[0], exprs[i])
		}
		return nil // classExprList consumed the ')'
	case "DisjointClasses":
		exprs, err := p.classExprList(2)
		if err != nil {
			return err
		}
		p.tbox.DisjointClasses(exprs...)
		return nil
	case "SubObjectPropertyOf":
		sub, err := p.entity()
		if err != nil {
			return err
		}
		sup, err := p.entity()
		if err != nil {
			return err
		}
		f := p.tbox.Factory
		p.tbox.SubObjectPropertyOf(f.Role(sub), f.Role(sup))
		return p.closeParen()
	case "TransitiveObjectProperty":
		r, err := p.entity()
		if err != nil {
			return err
		}
		p.tbox.TransitiveObjectProperty(p.tbox.Factory.Role(r))
		return p.closeParen()
	case "AnnotationAssertion":
		return p.parseAnnotation()
	default:
		// Unsupported axiom (data properties, assertions, keys...):
		// skip its balanced argument list.
		return p.skipBalanced(1)
	}
}

func (p *parser) parseDeclaration() error {
	kind, err := p.expect(tokName, "entity kind")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return err
	}
	name, err := p.entity()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return err
	}
	switch kind.text {
	case "Class":
		p.tbox.DeclarationAxiom(p.tbox.Declare(name))
	case "ObjectProperty":
		p.tbox.Factory.Role(name)
	}
	return p.closeParen()
}

// parseAnnotation records AnnotationAssertion(prop subject value) against
// the subject when it is a class name, skipping the value tokens.
func (p *parser) parseAnnotation() error {
	if _, err := p.entity(); err != nil { // annotation property
		return err
	}
	subj, err := p.entity()
	if err != nil {
		return err
	}
	// Value: literal (string with optional ^^type/@lang), IRI, or name.
	depth := 1
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		switch t.kind {
		case tokLParen:
			depth++
		case tokRParen:
			depth--
			if depth == 0 {
				p.tbox.AnnotationAxiom(p.tbox.Declare(subj))
				return nil
			}
		case tokEOF:
			return fmt.Errorf("owlfss: unterminated annotation")
		}
	}
}

func (p *parser) closeParen() error {
	_, err := p.expect(tokRParen, ")")
	return err
}

// skipBalanced consumes tokens until the given paren depth closes.
func (p *parser) skipBalanced(depth int) error {
	for depth > 0 {
		t, err := p.next()
		if err != nil {
			return err
		}
		switch t.kind {
		case tokLParen:
			depth++
		case tokRParen:
			depth--
		case tokEOF:
			return fmt.Errorf("owlfss: unexpected end of input")
		}
	}
	return nil
}

// classExprList parses class expressions until ')' and requires at least
// minLen of them. It consumes the closing paren.
func (p *parser) classExprList(minLen int) ([]*dl.Concept, error) {
	var out []*dl.Concept
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == tokRParen {
			p.next() //nolint:errcheck // peeked token
			if len(out) < minLen {
				return nil, fmt.Errorf("owlfss: line %d: expected at least %d class expressions", t.line, minLen)
			}
			return out, nil
		}
		c, err := p.classExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
}

// classExpr parses one class expression.
func (p *parser) classExpr() (*dl.Concept, error) {
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	f := p.tbox.Factory
	switch t.kind {
	case tokIRI:
		return p.conceptForIRI(p.resolve(t)), nil
	case tokName:
		switch t.text {
		case "ObjectIntersectionOf", "ObjectUnionOf":
			if _, err := p.expect(tokLParen, "("); err != nil {
				return nil, err
			}
			args, err := p.classExprList(1)
			if err != nil {
				return nil, err
			}
			if t.text == "ObjectIntersectionOf" {
				return f.And(args...), nil
			}
			return f.Or(args...), nil
		case "ObjectComplementOf":
			if _, err := p.expect(tokLParen, "("); err != nil {
				return nil, err
			}
			c, err := p.classExpr()
			if err != nil {
				return nil, err
			}
			return f.Not(c), p.closeParen()
		case "ObjectSomeValuesFrom", "ObjectAllValuesFrom":
			if _, err := p.expect(tokLParen, "("); err != nil {
				return nil, err
			}
			role, err := p.entity()
			if err != nil {
				return nil, err
			}
			c, err := p.classExpr()
			if err != nil {
				return nil, err
			}
			if err := p.closeParen(); err != nil {
				return nil, err
			}
			if t.text == "ObjectSomeValuesFrom" {
				return f.Some(f.Role(role), c), nil
			}
			return f.All(f.Role(role), c), nil
		case "ObjectMinCardinality", "ObjectMaxCardinality", "ObjectExactCardinality":
			return p.cardinality(t.text)
		default:
			return p.conceptForIRI(p.resolve(t)), nil
		}
	default:
		return nil, fmt.Errorf("owlfss: line %d: expected class expression, got %s", t.line, t)
	}
}

// cardinality parses ObjectMin/Max/ExactCardinality(n R [C]).
func (p *parser) cardinality(kw string) (*dl.Concept, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	nt, err := p.expect(tokName, "cardinality")
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(nt.text)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("owlfss: line %d: bad cardinality %q", nt.line, nt.text)
	}
	role, err := p.entity()
	if err != nil {
		return nil, err
	}
	f := p.tbox.Factory
	filler := f.Top()
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind != tokRParen {
		filler, err = p.classExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.closeParen(); err != nil {
		return nil, err
	}
	r := f.Role(role)
	switch kw {
	case "ObjectMinCardinality":
		return f.Min(n, r, filler), nil
	case "ObjectMaxCardinality":
		return f.Max(n, r, filler), nil
	default: // Exact = Min ⊓ Max
		return f.And(f.Min(n, r, filler), f.Max(n, r, filler)), nil
	}
}
