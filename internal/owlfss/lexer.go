// Package owlfss parses and writes the subset of the OWL 2
// Functional-Style Syntax needed for the paper's test corpora (the
// *_functional ontologies of Table V and any ORE-style class-axiom
// ontology): prefix declarations, class/property declarations, SubClassOf,
// EquivalentClasses, DisjointClasses, SubObjectPropertyOf,
// TransitiveObjectProperty, the boolean and restriction class expressions
// (including the qualified cardinalities the paper's complexity
// experiments revolve around), and annotation assertions.
package owlfss

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF    tokKind = iota
	tokLParen         // (
	tokRParen         // )
	tokEquals         // =
	tokIRI            // <http://...>
	tokName           // keyword, prefixed name, or integer
	tokString         // "..."
	tokCaret          // ^^ (datatype literal suffix)
	tokAt             // @ (language tag)
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// lexer tokenizes functional-style syntax.
type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1}
}

func (l *lexer) peekRune() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
	}
	return r
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		r := l.peekRune()
		switch {
		case r == '#': // comment to end of line (OBO-style convenience)
			for l.pos < len(l.src) && l.peekRune() != '\n' {
				l.advance()
			}
		case unicode.IsSpace(r):
			l.advance()
		default:
			goto tokenStart
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

tokenStart:
	line := l.line
	r := l.peekRune()
	switch {
	case r == '(':
		l.advance()
		return token{tokLParen, "(", line}, nil
	case r == ')':
		l.advance()
		return token{tokRParen, ")", line}, nil
	case r == '=':
		l.advance()
		return token{tokEquals, "=", line}, nil
	case r == '@':
		l.advance()
		return token{tokAt, "@", line}, nil
	case r == '^':
		l.advance()
		if l.peekRune() == '^' {
			l.advance()
		}
		return token{tokCaret, "^^", line}, nil
	case r == '<':
		l.advance()
		var b strings.Builder
		for l.pos < len(l.src) {
			c := l.advance()
			if c == '>' {
				return token{tokIRI, b.String(), line}, nil
			}
			b.WriteRune(c)
		}
		return token{}, fmt.Errorf("owlfss: line %d: unterminated IRI", line)
	case r == '"':
		l.advance()
		var b strings.Builder
		for l.pos < len(l.src) {
			c := l.advance()
			switch c {
			case '\\':
				if l.pos < len(l.src) {
					b.WriteRune(l.advance())
				}
			case '"':
				return token{tokString, b.String(), line}, nil
			default:
				b.WriteRune(c)
			}
		}
		return token{}, fmt.Errorf("owlfss: line %d: unterminated string", line)
	case r == '>':
		return token{}, fmt.Errorf("owlfss: line %d: unexpected '>'", line)
	default:
		var b strings.Builder
		for l.pos < len(l.src) {
			c := l.peekRune()
			if unicode.IsSpace(c) || c == '(' || c == ')' || c == '"' || c == '<' || c == '>' || c == '=' || c == '@' || c == '^' {
				break
			}
			b.WriteRune(l.advance())
		}
		if b.Len() == 0 {
			return token{}, fmt.Errorf("owlfss: line %d: unexpected character %q", line, r)
		}
		return token{tokName, b.String(), line}, nil
	}
}
