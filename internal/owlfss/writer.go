package owlfss

import (
	"bufio"
	"fmt"
	"io"

	"parowl/internal/dl"
)

// Write serializes the TBox in OWL 2 functional-style syntax. Concept and
// role names are written as full IRIs when they look like IRIs and as bare
// names otherwise; the output parses back into an equivalent TBox
// (round-trip tested).
func Write(w io.Writer, t *dl.TBox) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Prefix(:=<urn:parowl:%s#>)\n", t.Name)
	fmt.Fprintf(bw, "Ontology(<urn:parowl:%s>\n", t.Name)
	// Concepts that occur in no axiom would be lost on reparse: emit a
	// synthetic declaration for each so the concept set round-trips.
	mentioned := make(map[*dl.Concept]bool)
	var note func(c *dl.Concept)
	note = func(c *dl.Concept) {
		mentioned[c] = true
		for _, a := range c.Args {
			note(a)
		}
	}
	for _, ax := range t.Axioms() {
		if ax.Sub != nil {
			note(ax.Sub)
		}
		if ax.Sup != nil {
			note(ax.Sup)
		}
	}
	for _, c := range t.NamedConcepts() {
		if !mentioned[c] {
			fmt.Fprintf(bw, "Declaration(Class(%s))\n", entity(c.Name))
		}
	}
	for _, ax := range t.Axioms() {
		switch ax.Kind {
		case dl.AxDeclaration:
			fmt.Fprintf(bw, "Declaration(Class(%s))\n", entity(ax.Sub.Name))
		case dl.AxAnnotation:
			fmt.Fprintf(bw, "AnnotationAssertion(rdfs:label %s \"%s\")\n", entity(ax.Sub.Name), ax.Sub.Name)
		case dl.AxSubClassOf:
			fmt.Fprintf(bw, "SubClassOf(%s %s)\n", expr(ax.Sub), expr(ax.Sup))
		case dl.AxEquivalent:
			fmt.Fprintf(bw, "EquivalentClasses(%s %s)\n", expr(ax.Sub), expr(ax.Sup))
		case dl.AxDisjoint:
			fmt.Fprintf(bw, "DisjointClasses(%s %s)\n", expr(ax.Sub), expr(ax.Sup))
		case dl.AxSubRole:
			fmt.Fprintf(bw, "SubObjectPropertyOf(%s %s)\n", entity(ax.SubRole.Name), entity(ax.SupRole.Name))
		case dl.AxTransitiveRole:
			fmt.Fprintf(bw, "TransitiveObjectProperty(%s)\n", entity(ax.SubRole.Name))
		}
	}
	fmt.Fprintln(bw, ")")
	return bw.Flush()
}

// entity renders a name as an IRI reference when needed.
func entity(name string) string {
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.', r == ':':
		default:
			return "<" + name + ">"
		}
	}
	if name == "" {
		return "<urn:empty>"
	}
	return name
}

// expr renders a class expression.
func expr(c *dl.Concept) string {
	switch c.Op {
	case dl.OpTop:
		return "owl:Thing"
	case dl.OpBottom:
		return "owl:Nothing"
	case dl.OpName:
		return entity(c.Name)
	case dl.OpNot:
		return "ObjectComplementOf(" + expr(c.Args[0]) + ")"
	case dl.OpAnd, dl.OpOr:
		kw := "ObjectIntersectionOf("
		if c.Op == dl.OpOr {
			kw = "ObjectUnionOf("
		}
		out := kw
		for i, a := range c.Args {
			if i > 0 {
				out += " "
			}
			out += expr(a)
		}
		return out + ")"
	case dl.OpSome:
		return "ObjectSomeValuesFrom(" + entity(c.Role.Name) + " " + expr(c.Args[0]) + ")"
	case dl.OpAll:
		return "ObjectAllValuesFrom(" + entity(c.Role.Name) + " " + expr(c.Args[0]) + ")"
	case dl.OpMin:
		return fmt.Sprintf("ObjectMinCardinality(%d %s %s)", c.N, entity(c.Role.Name), expr(c.Args[0]))
	case dl.OpMax:
		return fmt.Sprintf("ObjectMaxCardinality(%d %s %s)", c.N, entity(c.Role.Name), expr(c.Args[0]))
	}
	return "owl:Thing"
}
