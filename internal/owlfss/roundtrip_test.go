package owlfss

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"parowl/internal/core"
	"parowl/internal/dl"
	"parowl/internal/tableau"
)

// randomTBox builds a random ALCHQ TBox with absorbable axiom shapes.
func randomTBox(rng *rand.Rand, n int) *dl.TBox {
	tb := dl.NewTBox("rt")
	f := tb.Factory
	cs := make([]*dl.Concept, n)
	for i := range cs {
		cs[i] = tb.Declare(fmt.Sprintf("N%d", i))
	}
	roles := []*dl.Role{f.Role("r"), f.Role("s")}
	if rng.Intn(2) == 0 {
		tb.SubObjectPropertyOf(roles[0], roles[1])
	}
	if rng.Intn(3) == 0 {
		tb.TransitiveObjectProperty(roles[1])
	}
	var expr func(depth int) *dl.Concept
	expr = func(depth int) *dl.Concept {
		if depth <= 0 || rng.Intn(3) == 0 {
			return cs[rng.Intn(n)]
		}
		switch rng.Intn(7) {
		case 0:
			return f.Not(cs[rng.Intn(n)])
		case 1:
			return f.And(expr(depth-1), expr(depth-1))
		case 2:
			return f.Or(expr(depth-1), expr(depth-1))
		case 3:
			return f.Some(roles[rng.Intn(2)], expr(depth-1))
		case 4:
			return f.All(roles[rng.Intn(2)], expr(depth-1))
		case 5:
			return f.Min(2+rng.Intn(2), roles[rng.Intn(2)], cs[rng.Intn(n)])
		default:
			return f.Max(1+rng.Intn(3), roles[rng.Intn(2)], cs[rng.Intn(n)])
		}
	}
	for _, c := range cs {
		tb.DeclarationAxiom(c) // real corpora declare every class
	}
	axioms := 3 + rng.Intn(5)
	for i := 0; i < axioms; i++ {
		sub := cs[rng.Intn(n)]
		switch rng.Intn(5) {
		case 0:
			tb.EquivalentClasses(sub, f.And(cs[rng.Intn(n)], expr(1)))
		case 1:
			tb.DisjointClasses(sub, cs[rng.Intn(n)])
		default:
			tb.SubClassOf(sub, expr(2))
		}
	}
	return tb
}

// TestQuickSemanticRoundTrip: writing a random TBox to functional syntax
// and parsing it back must preserve its classification semantics exactly.
func TestQuickSemanticRoundTrip(t *testing.T) {
	classifyFP := func(tb *dl.TBox) (string, error) {
		r := tableau.New(tb, tableau.Options{})
		res, err := core.Classify(tb, core.Options{Reasoner: r, Workers: 2})
		if err != nil {
			return "", err
		}
		return res.Taxonomy.Fingerprint(), nil
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTBox(rng, 3+rng.Intn(4))
		var buf strings.Builder
		if err := Write(&buf, tb); err != nil {
			t.Fatalf("seed %d write: %v", seed, err)
		}
		tb2, err := ParseString(buf.String(), tb.Name)
		if err != nil {
			t.Fatalf("seed %d parse: %v\n%s", seed, err, buf.String())
		}
		fp1, err := classifyFP(tb)
		if err != nil {
			t.Logf("seed %d original classify: %v", seed, err)
			return true // budget blowups on random inputs are acceptable
		}
		fp2, err := classifyFP(tb2)
		if err != nil {
			t.Logf("seed %d reparsed classify: %v", seed, err)
			return false // must not get HARDER after a round trip
		}
		if fp1 != fp2 {
			t.Logf("seed %d: fingerprints differ\n%s\nvs\n%s\nsource:\n%s", seed, fp1, fp2, buf.String())
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSyntacticRoundTripMetrics: metric counts survive a write/parse
// cycle for random TBoxes.
func TestQuickSyntacticRoundTripMetrics(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTBox(rng, 3+rng.Intn(4))
		var buf strings.Builder
		if err := Write(&buf, tb); err != nil {
			t.Fatalf("seed %d write: %v", seed, err)
		}
		tb2, err := ParseString(buf.String(), tb.Name)
		if err != nil {
			t.Fatalf("seed %d parse: %v", seed, err)
		}
		m1, m2 := dl.ComputeMetrics(tb), dl.ComputeMetrics(tb2)
		if m1 != m2 {
			t.Logf("seed %d:\n%+v\n%+v\nsource:\n%s", seed, m1, m2, buf.String())
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
