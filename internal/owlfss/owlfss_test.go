package owlfss

import (
	"strings"
	"testing"

	"parowl/internal/dl"
	"parowl/internal/ontogen"
)

const sample = `
Prefix(:=<http://example.org/onto#>)
Prefix(obo=<http://purl.obolibrary.org/obo/>)
Ontology(<http://example.org/onto>
  Declaration(Class(:Animal))
  Declaration(Class(:Cat))
  Declaration(ObjectProperty(:eats))
  SubClassOf(:Cat :Animal)
  SubClassOf(:Cat ObjectSomeValuesFrom(:eats :Mouse))
  EquivalentClasses(:Carnivore ObjectIntersectionOf(:Animal ObjectAllValuesFrom(:eats :Animal)))
  DisjointClasses(:Cat :Mouse)
  SubObjectPropertyOf(:eats :interactsWith)
  TransitiveObjectProperty(:partOf)
  SubClassOf(obo:GO_1 ObjectMinCardinality(2 :eats :Mouse))
  SubClassOf(obo:GO_2 ObjectMaxCardinality(3 :eats))
  SubClassOf(obo:GO_3 ObjectExactCardinality(1 :eats :Mouse))
  SubClassOf(:Weird ObjectUnionOf(:Cat ObjectComplementOf(:Animal)))
  AnnotationAssertion(rdfs:label :Cat "the cat"@en)
)
`

func TestParseSample(t *testing.T) {
	tb, err := ParseString(sample, "sample")
	if err != nil {
		t.Fatal(err)
	}
	m := dl.ComputeMetrics(tb)
	if m.SubClassOf != 6 {
		t.Errorf("SubClassOf = %d, want 6", m.SubClassOf)
	}
	if m.Equivalent != 1 || m.Disjoint != 1 {
		t.Errorf("equiv=%d disjoint=%d", m.Equivalent, m.Disjoint)
	}
	// ∃eats.Mouse plus ExactCardinality's ≥1 (canonicalized to ∃).
	if m.Somes != 2 || m.Alls != 1 {
		t.Errorf("somes=%d alls=%d, want 2 and 1", m.Somes, m.Alls)
	}
	// Exact(1) = Min1 ⊓ Max1; Min1 canonicalizes to ∃ (a Some), Max with
	// filler counts as QCR. Min2 + Max1(exact) = 2 QCRs; Max3 unqualified.
	if m.QCRs != 2 {
		t.Errorf("qcrs = %d, want 2", m.QCRs)
	}
	if m.Cards != 1 {
		t.Errorf("cards = %d, want 1", m.Cards)
	}
	// Prefix expansion.
	found := false
	for _, c := range tb.NamedConcepts() {
		if c.Name == "http://purl.obolibrary.org/obo/GO_1" {
			found = true
		}
	}
	if !found {
		t.Error("obo: prefix not expanded")
	}
	// Annotation recorded.
	ann := 0
	for _, ax := range tb.Axioms() {
		if ax.Kind == dl.AxAnnotation {
			ann++
		}
	}
	if ann != 1 {
		t.Errorf("annotations = %d, want 1", ann)
	}
}

func TestParseTopBottom(t *testing.T) {
	src := `Ontology(
SubClassOf(owl:Thing <http://x#A>)
SubClassOf(<http://x#B> owl:Nothing)
)`
	tb, err := ParseString(src, "tb")
	if err != nil {
		t.Fatal(err)
	}
	gcis := tb.AsGCIs()
	f := tb.Factory
	if gcis[0].Sub != f.Top() {
		t.Error("owl:Thing not mapped to ⊤")
	}
	if gcis[1].Sup != f.Bottom() {
		t.Error("owl:Nothing not mapped to ⊥")
	}
}

func TestSkipsUnsupportedAxioms(t *testing.T) {
	src := `Ontology(
ClassAssertion(<http://x#A> <http://x#ind>)
DataPropertyAssertion(<http://x#p> <http://x#i> "3"^^xsd:int)
SubClassOf(<http://x#A> <http://x#B>)
)`
	tb, err := ParseString(src, "skip")
	if err != nil {
		t.Fatal(err)
	}
	if got := dl.ComputeMetrics(tb).SubClassOf; got != 1 {
		t.Errorf("SubClassOf = %d, want 1", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`Ontology(SubClassOf(:A)`,            // missing operand and paren
		`Ontology(SubClassOf(:A :B)`,         // unterminated ontology
		`Prefix(:=<http://x>`,                // unterminated prefix
		`Ontology(SubClassOf(:A "literal"))`, // literal as class
		`Ontology(EquivalentClasses(:A))`,    // too few operands
		`Ontology(SubClassOf(:A <unclosed))`, // unterminated IRI
		`Ontology(SubClassOf(:A "unclosed))`, // unterminated string
	}
	for _, src := range cases {
		if _, err := ParseString(src, "bad"); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestRoundTripSample(t *testing.T) {
	tb, err := ParseString(sample, "sample")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, tb); err != nil {
		t.Fatal(err)
	}
	tb2, err := ParseString(b.String(), "sample")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, b.String())
	}
	m1, m2 := dl.ComputeMetrics(tb), dl.ComputeMetrics(tb2)
	m1.Name, m2.Name = "", ""
	if m1 != m2 {
		t.Errorf("metrics changed over round trip:\n%+v\n%+v", m1, m2)
	}
}

// TestRoundTripGenerated round-trips a generated Table V mini corpus:
// metrics must be preserved exactly.
func TestRoundTripGenerated(t *testing.T) {
	p := ontogen.Mini(ontogen.TableV[0], 20)
	tb, err := p.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, tb); err != nil {
		t.Fatal(err)
	}
	tb2, err := ParseString(b.String(), tb.Name)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := dl.ComputeMetrics(tb), dl.ComputeMetrics(tb2)
	if m1 != m2 {
		t.Errorf("metrics changed over round trip:\n%+v\n%+v", m1, m2)
	}
}

func TestRoundTripFullTableIVProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("large corpus in -short mode")
	}
	p := ontogen.TableIV[2] // obo.PREVIOUS, 1663 concepts
	tb, err := p.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, tb); err != nil {
		t.Fatal(err)
	}
	tb2, err := ParseString(b.String(), tb.Name)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := dl.ComputeMetrics(tb), dl.ComputeMetrics(tb2)
	if m1 != m2 {
		t.Errorf("metrics changed:\n%+v\n%+v", m1, m2)
	}
}
