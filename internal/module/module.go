// Package module implements syntactic ⊥-locality module extraction
// (Cuenca Grau et al., "Modular Reuse of Ontologies"): given a seed
// signature Σ, it returns the subset of axioms that can affect any
// entailment over Σ. Classifying the module gives exactly the same
// subsumptions between Σ-concepts as classifying the whole ontology —
// the standard preprocessing step for applying a classifier like this
// repository's to very large ontologies (the paper's 300 000-concept
// ambition) one coherent fragment at a time.
package module

import (
	"fmt"

	"parowl/internal/dl"
)

// Signature is a set of concept and role names.
type Signature struct {
	concepts map[string]bool
	roles    map[string]bool
}

// NewSignature builds a signature from concept and role names.
func NewSignature(conceptNames, roleNames []string) *Signature {
	s := &Signature{concepts: map[string]bool{}, roles: map[string]bool{}}
	for _, n := range conceptNames {
		s.concepts[n] = true
	}
	for _, n := range roleNames {
		s.roles[n] = true
	}
	return s
}

// HasConcept reports whether the named concept is in the signature.
func (s *Signature) HasConcept(name string) bool { return s.concepts[name] }

// HasRole reports whether the named role is in the signature.
func (s *Signature) HasRole(name string) bool { return s.roles[name] }

// addAxiomSignature grows s with every symbol of ax; reports change.
func (s *Signature) addAxiomSignature(ax dl.Axiom) bool {
	changed := false
	addC := func(c *dl.Concept) {
		walkSymbols(c, func(name string, isRole bool) {
			m := s.concepts
			if isRole {
				m = s.roles
			}
			if !m[name] {
				m[name] = true
				changed = true
			}
		})
	}
	if ax.Sub != nil {
		addC(ax.Sub)
	}
	if ax.Sup != nil {
		addC(ax.Sup)
	}
	if ax.SubRole != nil && !s.roles[ax.SubRole.Name] {
		s.roles[ax.SubRole.Name] = true
		changed = true
	}
	if ax.SupRole != nil && !s.roles[ax.SupRole.Name] {
		s.roles[ax.SupRole.Name] = true
		changed = true
	}
	return changed
}

func walkSymbols(c *dl.Concept, fn func(name string, isRole bool)) {
	switch c.Op {
	case dl.OpName:
		fn(c.Name, false)
	case dl.OpSome, dl.OpAll, dl.OpMin, dl.OpMax:
		fn(c.Role.Name, true)
	}
	for _, a := range c.Args {
		walkSymbols(a, fn)
	}
}

// botEquivalent reports whether c is equivalent to ⊥ under every
// interpretation that maps symbols outside Σ to ⊥ / the empty role.
func (s *Signature) botEquivalent(c *dl.Concept) bool {
	switch c.Op {
	case dl.OpBottom:
		return true
	case dl.OpName:
		return !s.concepts[c.Name]
	case dl.OpNot:
		return s.topEquivalent(c.Args[0])
	case dl.OpAnd:
		for _, a := range c.Args {
			if s.botEquivalent(a) {
				return true
			}
		}
		return false
	case dl.OpOr:
		for _, a := range c.Args {
			if !s.botEquivalent(a) {
				return false
			}
		}
		return true
	case dl.OpSome, dl.OpMin: // the factory guarantees Min has n ≥ 2
		return !s.roles[c.Role.Name] || s.botEquivalent(c.Args[0])
	default: // ⊤, ∀, ≤ are never ⊥-equivalent under the ⊥-interpretation
		return false
	}
}

// topEquivalent reports whether c is equivalent to ⊤ under every
// ⊥-interpretation of the symbols outside Σ.
func (s *Signature) topEquivalent(c *dl.Concept) bool {
	switch c.Op {
	case dl.OpTop:
		return true
	case dl.OpNot:
		return s.botEquivalent(c.Args[0])
	case dl.OpAnd:
		for _, a := range c.Args {
			if !s.topEquivalent(a) {
				return false
			}
		}
		return true
	case dl.OpOr:
		for _, a := range c.Args {
			if s.topEquivalent(a) {
				return true
			}
		}
		return false
	case dl.OpAll: // ∀r.C over an empty role is ⊤
		return !s.roles[c.Role.Name] || s.topEquivalent(c.Args[0])
	case dl.OpMax: // ≤n of an empty role or ⊥ filler is ⊤
		return !s.roles[c.Role.Name] || s.botEquivalent(c.Args[0])
	default:
		return false
	}
}

// local reports whether ax is ⊥-local w.r.t. s: every ⊥-interpretation of
// the out-of-signature symbols makes it a tautology, so it cannot affect
// Σ-entailments.
func (s *Signature) local(ax dl.Axiom) bool {
	switch ax.Kind {
	case dl.AxSubClassOf:
		return s.botEquivalent(ax.Sub) || s.topEquivalent(ax.Sup)
	case dl.AxEquivalent:
		return (s.botEquivalent(ax.Sub) && s.botEquivalent(ax.Sup)) ||
			(s.topEquivalent(ax.Sub) && s.topEquivalent(ax.Sup))
	case dl.AxDisjoint:
		return s.botEquivalent(ax.Sub) || s.botEquivalent(ax.Sup)
	case dl.AxSubRole, dl.AxTransitiveRole:
		return !s.roles[ax.SubRole.Name]
	default: // declarations, annotations: no logical content
		return true
	}
}

// Extract computes the ⊥-locality module of t for the given seed concept
// names and returns it as a fresh TBox (own factory) whose name carries a
// "-module" suffix. Declarations are kept for concepts that survive into
// the module's signature.
func Extract(t *dl.TBox, seedConcepts []string) (*dl.TBox, error) {
	for _, name := range seedConcepts {
		found := false
		for _, c := range t.NamedConcepts() {
			if c.Name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("module: concept %q not in ontology %q", name, t.Name)
		}
	}
	sig := NewSignature(seedConcepts, nil)
	axioms := t.Axioms()
	inModule := make([]bool, len(axioms))
	for changed := true; changed; {
		changed = false
		for i, ax := range axioms {
			if inModule[i] {
				continue
			}
			switch ax.Kind {
			case dl.AxDeclaration, dl.AxAnnotation:
				continue // handled after the logical fixpoint
			}
			if !sig.local(ax) {
				inModule[i] = true
				sig.addAxiomSignature(ax)
				changed = true
			}
		}
	}

	out := dl.NewTBox(t.Name + "-module")
	f := out.Factory
	for _, c := range t.NamedConcepts() {
		if sig.concepts[c.Name] {
			out.Declare(c.Name)
		}
	}
	for i, ax := range axioms {
		switch ax.Kind {
		case dl.AxDeclaration:
			if sig.concepts[ax.Sub.Name] {
				out.DeclarationAxiom(out.Declare(ax.Sub.Name))
			}
			continue
		case dl.AxAnnotation:
			if sig.concepts[ax.Sub.Name] {
				out.AnnotationAxiom(out.Declare(ax.Sub.Name))
			}
			continue
		}
		if !inModule[i] {
			continue
		}
		switch ax.Kind {
		case dl.AxSubClassOf:
			out.SubClassOf(translate(f, ax.Sub), translate(f, ax.Sup))
		case dl.AxEquivalent:
			out.EquivalentClasses(translate(f, ax.Sub), translate(f, ax.Sup))
		case dl.AxDisjoint:
			out.DisjointClasses(translate(f, ax.Sub), translate(f, ax.Sup))
		case dl.AxSubRole:
			out.SubObjectPropertyOf(f.Role(ax.SubRole.Name), f.Role(ax.SupRole.Name))
		case dl.AxTransitiveRole:
			out.TransitiveObjectProperty(f.Role(ax.SubRole.Name))
		}
	}
	out.Freeze()
	return out, nil
}

// translate rebuilds concept c inside factory f (concepts are interned
// per factory and cannot be shared across TBoxes).
func translate(f *dl.Factory, c *dl.Concept) *dl.Concept {
	switch c.Op {
	case dl.OpTop:
		return f.Top()
	case dl.OpBottom:
		return f.Bottom()
	case dl.OpName:
		return f.Name(c.Name)
	case dl.OpNot:
		return f.Not(translate(f, c.Args[0]))
	case dl.OpAnd, dl.OpOr:
		args := make([]*dl.Concept, len(c.Args))
		for i, a := range c.Args {
			args[i] = translate(f, a)
		}
		if c.Op == dl.OpAnd {
			return f.And(args...)
		}
		return f.Or(args...)
	case dl.OpSome:
		return f.Some(f.Role(c.Role.Name), translate(f, c.Args[0]))
	case dl.OpAll:
		return f.All(f.Role(c.Role.Name), translate(f, c.Args[0]))
	case dl.OpMin:
		return f.Min(c.N, f.Role(c.Role.Name), translate(f, c.Args[0]))
	case dl.OpMax:
		return f.Max(c.N, f.Role(c.Role.Name), translate(f, c.Args[0]))
	}
	panic(fmt.Sprintf("module: bad concept op %d", c.Op))
}
