package module

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"parowl/internal/dl"
	"parowl/internal/ontogen"
	"parowl/internal/tableau"
)

// chain builds A0 ⊒ A1 ⊒ ... ⊒ A(n-1).
func chain(n int) *dl.TBox {
	tb := dl.NewTBox("chain")
	prev := tb.Declare("A0")
	for i := 1; i < n; i++ {
		c := tb.Declare(fmt.Sprintf("A%d", i))
		tb.SubClassOf(c, prev)
		prev = c
	}
	return tb
}

// TestChainModuleIsAncestorClosure: the ⊥-module for {A5} in a chain is
// exactly the ancestor axioms A5 ⊑ A4 ⊑ ... ⊑ A0; descendants are local.
func TestChainModuleIsAncestorClosure(t *testing.T) {
	tb := chain(10)
	m, err := Extract(tb, []string{"A5"})
	if err != nil {
		t.Fatal(err)
	}
	var logical int
	for _, ax := range m.Axioms() {
		if ax.Kind == dl.AxSubClassOf {
			logical++
		}
	}
	if logical != 5 { // A5⊑A4, ..., A1⊑A0
		t.Errorf("module has %d SubClassOf axioms, want 5:\n%v", logical, m.Axioms())
	}
	names := map[string]bool{}
	for _, c := range m.NamedConcepts() {
		names[c.Name] = true
	}
	if !names["A0"] || !names["A5"] || names["A6"] {
		t.Errorf("module concepts wrong: %v", names)
	}
}

func TestUnknownSeedRejected(t *testing.T) {
	if _, err := Extract(chain(3), []string{"Nope"}); err == nil {
		t.Fatal("unknown seed accepted")
	}
}

func TestModuleKeepsRoleAxioms(t *testing.T) {
	tb := dl.NewTBox("roles")
	f := tb.Factory
	a, b := tb.Declare("A"), tb.Declare("B")
	s, r := f.Role("s"), f.Role("r")
	tb.SubObjectPropertyOf(s, r)
	tb.TransitiveObjectProperty(s)
	tb.SubClassOf(a, f.Some(s, b))
	m, err := Extract(tb, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	mf := m.Factory
	if !mf.Role("s").Transitive {
		t.Error("transitivity of s lost")
	}
	if !mf.Role("s").IsSubRoleOf(mf.Role("r")) {
		t.Error("role hierarchy lost")
	}
}

// randomTBox builds a random absorbable ALCHQ ontology.
func randomTBox(rng *rand.Rand, n int) *dl.TBox {
	tb := dl.NewTBox("rt")
	f := tb.Factory
	cs := make([]*dl.Concept, n)
	for i := range cs {
		cs[i] = tb.Declare(fmt.Sprintf("N%d", i))
	}
	roles := []*dl.Role{f.Role("r"), f.Role("s")}
	if rng.Intn(2) == 0 {
		tb.SubObjectPropertyOf(roles[0], roles[1])
	}
	var expr func(depth int) *dl.Concept
	expr = func(depth int) *dl.Concept {
		if depth <= 0 || rng.Intn(3) == 0 {
			return cs[rng.Intn(n)]
		}
		switch rng.Intn(6) {
		case 0:
			return f.Not(cs[rng.Intn(n)])
		case 1:
			return f.And(expr(depth-1), expr(depth-1))
		case 2:
			return f.Or(expr(depth-1), expr(depth-1))
		case 3:
			return f.Some(roles[rng.Intn(2)], expr(depth-1))
		case 4:
			return f.All(roles[rng.Intn(2)], expr(depth-1))
		default:
			return f.Min(2, roles[rng.Intn(2)], cs[rng.Intn(n)])
		}
	}
	for i, k := 0, 4+rng.Intn(6); i < k; i++ {
		sub := cs[rng.Intn(n)]
		switch rng.Intn(5) {
		case 0:
			tb.EquivalentClasses(sub, f.And(cs[rng.Intn(n)], expr(1)))
		case 1:
			tb.DisjointClasses(sub, cs[rng.Intn(n)])
		default:
			tb.SubClassOf(sub, expr(2))
		}
	}
	return tb
}

// TestQuickModulePreservesEntailments is the module-correctness property:
// for every pair of seed concepts, subsumption (and satisfiability) in
// the module agrees with the full ontology.
func TestQuickModulePreservesEntailments(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		tb := randomTBox(rng, n)
		// Random seed signature of 1-3 concepts.
		var seeds []string
		for i := 0; i < 1+rng.Intn(3); i++ {
			seeds = append(seeds, fmt.Sprintf("N%d", rng.Intn(n)))
		}
		m, err := Extract(tb, seeds)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		full := tableau.New(tb, tableau.Options{})
		mod := tableau.New(m, tableau.Options{})
		for _, sub := range seeds {
			for _, sup := range seeds {
				fullAns, err1 := full.Subsumes(tb.Factory.Name(sup), tb.Factory.Name(sub))
				modAns, err2 := mod.Subsumes(m.Factory.Name(sup), m.Factory.Name(sub))
				if err1 != nil || err2 != nil {
					continue
				}
				if fullAns != modAns {
					t.Logf("seed %d: %s ⊑ %s: full=%v module=%v", seed, sub, sup, fullAns, modAns)
					return false
				}
			}
			fullSat, err1 := full.IsSatisfiable(tb.Factory.Name(sub))
			modSat, err2 := mod.IsSatisfiable(m.Factory.Name(sub))
			if err1 == nil && err2 == nil && fullSat != modSat {
				t.Logf("seed %d: sat(%s): full=%v module=%v", seed, sub, fullSat, modSat)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestModuleMuchSmallerOnCorpus: on a generated Table IV corpus, a
// single-concept module is a small fraction of the ontology.
func TestModuleMuchSmallerOnCorpus(t *testing.T) {
	p := ontogen.Mini(ontogen.TableIV[0], 10) // WBbt at 1/10: ~678 concepts
	tb, err := p.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	seed := tb.NamedConcepts()[len(tb.NamedConcepts())/2].Name
	m, err := Extract(tb, []string{seed})
	if err != nil {
		t.Fatal(err)
	}
	if got, full := m.NumNamed(), tb.NumNamed(); got >= full/2 {
		t.Errorf("module has %d of %d concepts — not much of a module", got, full)
	}
}
