package el

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"parowl/internal/dl"
	"parowl/internal/taxonomy"
)

// Options configures the EL reasoner.
type Options struct {
	// Workers is the number of saturation workers; 0 means GOMAXPROCS.
	Workers int
}

// Reasoner answers satisfiability and subsumption for named concepts of an
// ELH+ TBox by one-shot concurrent saturation. After New it is immutable
// and safe for concurrent use.
//
// Saturation runs lazily on the first query and observes that query's
// context: when the context is cancelled mid-saturation the partial state
// is discarded (never served) and the next query re-runs saturation from
// scratch under its own context.
type Reasoner struct {
	tbox     *dl.TBox
	n        *normalized
	opts     Options
	complete bool // the normalization covers the whole TBox, not a fragment

	mu  sync.Mutex
	sat *saturation // non-nil only once fully saturated
}

// New normalizes the TBox; it fails if the TBox leaves the EL fragment
// (the caller should then fall back to the tableau reasoner).
func New(t *dl.TBox, opts Options) (*Reasoner, error) {
	t.Freeze()
	n, err := newNormalized(t)
	if err != nil {
		return nil, err
	}
	return &Reasoner{tbox: t, n: n, opts: opts, complete: true}, nil
}

// NewFragment builds a reasoner over the EL-expressible fragment of any
// TBox: axioms outside EL are weakened or dropped (see Coverage) instead
// of failing. Every answer of true from Sat's negation — i.e. every
// derived unsatisfiability — and every answer of true from Subs is
// entailed by the full TBox, because the fragment's axioms are. Negative
// answers are only authoritative when the coverage is Complete.
func NewFragment(t *dl.TBox, opts Options) (*Reasoner, Coverage) {
	t.Freeze()
	n, cov := newNormalizedFragment(t)
	return &Reasoner{tbox: t, n: n, opts: opts, complete: cov.Complete()}, cov
}

// TBox returns the TBox this reasoner answers for.
func (r *Reasoner) TBox() *dl.TBox { return r.tbox }

// ensure saturates on first use. A cancelled saturation leaves r.sat nil
// so a later call retries; concurrent first queries serialize on the
// mutex exactly as they previously did on sync.Once.
func (r *Reasoner) ensure(ctx context.Context) (*saturation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sat != nil {
		return r.sat, nil
	}
	workers := r.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := newSaturation(r.n)
	if err := s.run(ctx, workers); err != nil {
		return nil, fmt.Errorf("el: saturation abandoned: %w", err)
	}
	r.sat = s
	return s, nil
}

// SaturateContext forces saturation now (it otherwise happens lazily on
// the first query). It is safe to call repeatedly.
func (r *Reasoner) SaturateContext(ctx context.Context) error {
	_, err := r.ensure(ctx)
	return err
}

// Saturate is SaturateContext without cancellation.
//
// Deprecated: use SaturateContext.
func (r *Reasoner) Saturate() { _ = r.SaturateContext(context.Background()) }

// atomQuery resolves a query concept to its atom; only ⊤, ⊥ and named
// concepts of the TBox are queryable.
func (r *Reasoner) atomQuery(c *dl.Concept) (atom, error) {
	if a, ok := r.n.atomOf[c]; ok {
		return a, nil
	}
	return 0, fmt.Errorf("el: concept %v is not a named concept of TBox %q", c, r.tbox.Name)
}

// Sat reports whether named concept c is satisfiable, i.e. ⊥ ∉ S(c).
func (r *Reasoner) Sat(ctx context.Context, c *dl.Concept) (bool, error) {
	sat, err := r.ensure(ctx)
	if err != nil {
		return false, err
	}
	if c.Op == dl.OpBottom {
		return false, nil
	}
	a, err := r.atomQuery(c)
	if err != nil {
		return false, err
	}
	return !sat.ctxs[a].hasSub(atomBottom), nil
}

// Subs reports whether sup subsumes sub (sub ⊑ sup) for named concepts
// (⊤/⊥ allowed on either side).
func (r *Reasoner) Subs(ctx context.Context, sup, sub *dl.Concept) (bool, error) {
	sat, err := r.ensure(ctx)
	if err != nil {
		return false, err
	}
	if sup.Op == dl.OpTop || sub.Op == dl.OpBottom {
		return true, nil
	}
	sa, err := r.atomQuery(sub)
	if err != nil {
		return false, err
	}
	if sat.ctxs[sa].hasSub(atomBottom) {
		return true, nil // unsatisfiable concepts are subsumed by everything
	}
	if sup.Op == dl.OpBottom {
		return false, nil
	}
	pa, err := r.atomQuery(sup)
	if err != nil {
		return false, err
	}
	return sat.ctxs[sa].hasSub(pa), nil
}

// DisprovesSubs reports that sub ⊑ sup definitely does not hold. It
// implements the classifier's optional ModelFilter capability: for a
// complete EL reasoner the saturation is complete, so a missing
// subsumer is a proof of non-subsumption. A fragment reasoner never
// disproves anything — its saturation is only a lower bound.
func (r *Reasoner) DisprovesSubs(ctx context.Context, sup, sub *dl.Concept) bool {
	if !r.complete {
		return false
	}
	ok, err := r.Subs(ctx, sup, sub)
	return err == nil && !ok
}

// Seed is one directed subsumption fact proven by saturation: Sub ⊑ Sup
// holds in every model of the (possibly fragment) TBox.
type Seed struct {
	Sub, Sup *dl.Concept
}

// Seeds saturates under ctx and exports the proven conclusions about the
// TBox's named concepts, for bulk-seeding a classifier: the directed
// subsumptions between distinct named concepts (including ⊤ ⊑ C facts,
// which witness equivalence to ⊤) and the concepts proven
// unsatisfiable. Saturation is sound for whatever axiom subset it was
// given, so every seed holds for the full TBox even when this reasoner
// covers only its EL fragment. Facts about unsatisfiable concepts are
// omitted (the unsat list subsumes them), as are the trivial X ⊑ ⊤ and
// X ⊑ X facts. If ⊤ itself is unsatisfiable the fragment is
// inconsistent; ⊤ is then excluded from the unsat list but every named
// concept appears in it.
func (r *Reasoner) Seeds(ctx context.Context) (seeds []Seed, unsat []*dl.Concept, err error) {
	sat, err := r.ensure(ctx)
	if err != nil {
		return nil, nil, err
	}
	consider := append([]*dl.Concept{r.tbox.Factory.Top()}, r.tbox.NamedConcepts()...)
	for _, c := range consider {
		a := r.n.atomOf[c]
		if sat.ctxs[a].hasSub(atomBottom) {
			if c.Op != dl.OpTop {
				unsat = append(unsat, c)
			}
			continue
		}
		for _, s := range sat.ctxs[a].snapshotSubs() {
			sc := r.n.conceptOf[s]
			if sc == nil || sc == c || sc.Op != dl.OpName {
				continue // fresh name, reflexive fact, or ⊤/⊥
			}
			seeds = append(seeds, Seed{Sub: c, Sup: sc})
		}
	}
	return seeds, unsat, nil
}

// IsSatisfiable is the context-free convenience form of Sat.
//
// Deprecated: use Sat with a context.
func (r *Reasoner) IsSatisfiable(c *dl.Concept) (bool, error) {
	return r.Sat(context.Background(), c)
}

// Subsumes is the context-free convenience form of Subs.
//
// Deprecated: use Subs with a context.
func (r *Reasoner) Subsumes(sup, sub *dl.Concept) (bool, error) {
	return r.Subs(context.Background(), sup, sub)
}

// Subsumers returns the named subsumers of named concept c (excluding ⊤,
// including c itself), or all named concepts if c is unsatisfiable.
func (r *Reasoner) Subsumers(c *dl.Concept) ([]*dl.Concept, error) {
	sat, err := r.ensure(context.Background())
	if err != nil {
		return nil, err
	}
	a, err := r.atomQuery(c)
	if err != nil {
		return nil, err
	}
	if sat.ctxs[a].hasSub(atomBottom) {
		out := make([]*dl.Concept, len(r.tbox.NamedConcepts()))
		copy(out, r.tbox.NamedConcepts())
		return out, nil
	}
	var out []*dl.Concept
	for _, s := range sat.ctxs[a].snapshotSubs() {
		if c := r.n.conceptOf[s]; c != nil && c.Op == dl.OpName {
			out = append(out, c)
		}
	}
	return out, nil
}

// Classify computes the full taxonomy directly from the saturation — the
// way ELK classifies EL ontologies, without pairwise subsumption tests.
// It is the standalone comparator the paper positions its architecture
// against ("ELK supports parallel TBox classification but is restricted
// to the very small EL fragment of OWL", Sec. I).
func (r *Reasoner) Classify() (*taxonomy.Taxonomy, error) {
	return r.ClassifyContext(context.Background())
}

// ClassifyContext is Classify with cancellation of the underlying
// saturation.
func (r *Reasoner) ClassifyContext(ctx context.Context) (*taxonomy.Taxonomy, error) {
	sat, err := r.ensure(ctx)
	if err != nil {
		return nil, err
	}
	named := r.tbox.NamedConcepts()
	subs := make(map[*dl.Concept]map[*dl.Concept]bool, len(named))
	unsat := make(map[*dl.Concept]bool)
	for _, c := range named {
		a := r.n.atomOf[c]
		if sat.ctxs[a].hasSub(atomBottom) {
			unsat[c] = true
			subs[c] = map[*dl.Concept]bool{c: true}
			continue
		}
		row := map[*dl.Concept]bool{c: true}
		for _, s := range sat.ctxs[a].snapshotSubs() {
			if sc := r.n.conceptOf[s]; sc != nil && sc.Op == dl.OpName {
				row[sc] = true
			}
		}
		subs[c] = row
	}
	return taxonomy.FromSubsumers(r.tbox.Factory, subs, unsat)
}
