package el

import (
	"fmt"
	"runtime"
	"sync"

	"parowl/internal/dl"
	"parowl/internal/taxonomy"
)

// Options configures the EL reasoner.
type Options struct {
	// Workers is the number of saturation workers; 0 means GOMAXPROCS.
	Workers int
}

// Reasoner answers satisfiability and subsumption for named concepts of an
// ELH+ TBox by one-shot concurrent saturation. After New it is immutable
// and safe for concurrent use.
type Reasoner struct {
	tbox *dl.TBox
	n    *normalized
	opts Options

	once sync.Once
	sat  *saturation
}

// New normalizes the TBox; it fails if the TBox leaves the EL fragment
// (the caller should then fall back to the tableau reasoner).
func New(t *dl.TBox, opts Options) (*Reasoner, error) {
	t.Freeze()
	n, err := newNormalized(t)
	if err != nil {
		return nil, err
	}
	return &Reasoner{tbox: t, n: n, opts: opts}, nil
}

// TBox returns the TBox this reasoner answers for.
func (r *Reasoner) TBox() *dl.TBox { return r.tbox }

// ensure saturates on first use.
func (r *Reasoner) ensure() {
	r.once.Do(func() {
		workers := r.opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		s := newSaturation(r.n)
		s.run(workers)
		r.sat = s
	})
}

// Saturate forces saturation now (it otherwise happens lazily on the first
// query). It is safe to call repeatedly.
func (r *Reasoner) Saturate() { r.ensure() }

// atomQuery resolves a query concept to its atom; only ⊤, ⊥ and named
// concepts of the TBox are queryable.
func (r *Reasoner) atomQuery(c *dl.Concept) (atom, error) {
	if a, ok := r.n.atomOf[c]; ok {
		return a, nil
	}
	return 0, fmt.Errorf("el: concept %v is not a named concept of TBox %q", c, r.tbox.Name)
}

// IsSatisfiable reports whether named concept c is satisfiable, i.e.
// ⊥ ∉ S(c).
func (r *Reasoner) IsSatisfiable(c *dl.Concept) (bool, error) {
	r.ensure()
	if c.Op == dl.OpBottom {
		return false, nil
	}
	a, err := r.atomQuery(c)
	if err != nil {
		return false, err
	}
	return !r.sat.ctxs[a].hasSub(atomBottom), nil
}

// Subsumes reports whether sup subsumes sub (sub ⊑ sup) for named
// concepts (⊤/⊥ allowed on either side).
func (r *Reasoner) Subsumes(sup, sub *dl.Concept) (bool, error) {
	r.ensure()
	if sup.Op == dl.OpTop || sub.Op == dl.OpBottom {
		return true, nil
	}
	sa, err := r.atomQuery(sub)
	if err != nil {
		return false, err
	}
	if r.sat.ctxs[sa].hasSub(atomBottom) {
		return true, nil // unsatisfiable concepts are subsumed by everything
	}
	if sup.Op == dl.OpBottom {
		return false, nil
	}
	pa, err := r.atomQuery(sup)
	if err != nil {
		return false, err
	}
	return r.sat.ctxs[sa].hasSub(pa), nil
}

// Subsumers returns the named subsumers of named concept c (excluding ⊤,
// including c itself), or all named concepts if c is unsatisfiable.
func (r *Reasoner) Subsumers(c *dl.Concept) ([]*dl.Concept, error) {
	r.ensure()
	a, err := r.atomQuery(c)
	if err != nil {
		return nil, err
	}
	if r.sat.ctxs[a].hasSub(atomBottom) {
		out := make([]*dl.Concept, len(r.tbox.NamedConcepts()))
		copy(out, r.tbox.NamedConcepts())
		return out, nil
	}
	var out []*dl.Concept
	for _, s := range r.sat.ctxs[a].snapshotSubs() {
		if c := r.n.conceptOf[s]; c != nil && c.Op == dl.OpName {
			out = append(out, c)
		}
	}
	return out, nil
}

// Classify computes the full taxonomy directly from the saturation — the
// way ELK classifies EL ontologies, without pairwise subsumption tests.
// It is the standalone comparator the paper positions its architecture
// against ("ELK supports parallel TBox classification but is restricted
// to the very small EL fragment of OWL", Sec. I).
func (r *Reasoner) Classify() (*taxonomy.Taxonomy, error) {
	r.ensure()
	named := r.tbox.NamedConcepts()
	subs := make(map[*dl.Concept]map[*dl.Concept]bool, len(named))
	unsat := make(map[*dl.Concept]bool)
	for _, c := range named {
		a := r.n.atomOf[c]
		if r.sat.ctxs[a].hasSub(atomBottom) {
			unsat[c] = true
			subs[c] = map[*dl.Concept]bool{c: true}
			continue
		}
		row := map[*dl.Concept]bool{c: true}
		for _, s := range r.sat.ctxs[a].snapshotSubs() {
			if sc := r.n.conceptOf[s]; sc != nil && sc.Op == dl.OpName {
				row[sc] = true
			}
		}
		subs[c] = row
	}
	return taxonomy.FromSubsumers(r.tbox.Factory, subs, unsat)
}
