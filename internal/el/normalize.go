// Package el implements a completion-rule saturation reasoner for ELH
// with transitive roles (EL+ / ELH+ in the paper's Table IV naming),
// in the style of CEL and ELK — the system the paper cites as the
// state of the art in concurrent classification of EL ontologies
// (Kazakov et al., "Concurrent classification of EL ontologies").
//
// The reasoner normalizes the TBox into the four EL normal forms,
// saturates subsumer sets S(A) and role links R(r) under the completion
// rules with a pool of workers, and then answers satisfiability and
// subsumption queries over named concepts by lookup.
package el

import (
	"fmt"

	"parowl/internal/dl"
)

// atom is a dense index for a named concept, ⊤, ⊥, or a fresh
// normalization name.
type atom = int32

const (
	atomTop    atom = 0
	atomBottom atom = 1
)

// ErrNotEL is wrapped by New when the TBox uses constructors outside
// EL(H+): anything but ⊤, ⊥, names, ⊓ and ∃.
type notELError struct{ c *dl.Concept }

func (e *notELError) Error() string {
	return fmt.Sprintf("el: concept %v outside the EL fragment", e.c)
}

// normalized is the indexed normal-form TBox the saturation consumes.
// All fields are read-only after newNormalized returns.
type normalized struct {
	tbox     *dl.TBox
	numAtoms int
	numRoles int

	// atomOf maps named concepts (and ⊤/⊥) to atoms; conceptOf is the
	// inverse for non-fresh atoms (nil entries are fresh names).
	atomOf    map[*dl.Concept]atom
	conceptOf []*dl.Concept

	// Normal-form axiom indexes.
	subs        [][]atom          // subs[A] = {B | A ⊑ B}
	conj        map[int64][]atom  // conj[pair(A1,A2)] = {B | A1 ⊓ A2 ⊑ B}
	conjByLeft  [][]conjEntry     // conjByLeft[A1] = {(A2, B)}
	exRHS       [][]roleAtom      // exRHS[A] = {(r,B) | A ⊑ ∃r.B}
	exLHS       []map[atom][]atom // exLHS[r][B] = {C | ∃r.B ⊑ C}
	exLHSFiller [][]roleAtom      // exLHSFiller[B] = {(r,C) | ∃r.B ⊑ C}

	transitive []bool    // transitive[r]
	supers     [][]int32 // direct super-roles per role
}

type conjEntry struct {
	other atom
	rhs   atom
}

type roleAtom struct {
	role int32
	a    atom
}

func pairKey(a, b atom) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(uint32(b))
}

// builder carries the mutable state of normalization.
type builder struct {
	n     *normalized
	fresh map[*dl.Concept]atom // structural cache for introduced names
}

// Coverage reports how much of a TBox the lenient fragment normalization
// retained. Kept + Weakened + Dropped equals the number of class-axiom
// GCIs examined; role axioms (hierarchy, transitivity) are always kept.
type Coverage struct {
	Kept     int // GCIs retained in full
	Weakened int // GCIs retained partially (some right-side conjuncts dropped)
	Dropped  int // GCIs discarded entirely
}

// Complete reports whether the fragment is logically equivalent to the
// full TBox, i.e. nothing was weakened or dropped.
func (c Coverage) Complete() bool { return c.Weakened == 0 && c.Dropped == 0 }

func (c Coverage) String() string {
	return fmt.Sprintf("kept %d, weakened %d, dropped %d", c.Kept, c.Weakened, c.Dropped)
}

// newBuilder indexes the TBox's named concepts and roles, the parts of
// normalization shared by the strict and lenient paths.
func newBuilder(t *dl.TBox) *builder {
	f := t.Factory
	n := &normalized{
		tbox:   t,
		atomOf: map[*dl.Concept]atom{f.Top(): atomTop, f.Bottom(): atomBottom},
		conj:   make(map[int64][]atom),
	}
	n.conceptOf = []*dl.Concept{f.Top(), f.Bottom()}
	for _, c := range t.NamedConcepts() {
		n.atomOf[c] = atom(len(n.conceptOf))
		n.conceptOf = append(n.conceptOf, c)
	}
	n.numRoles = f.NumRoles()
	n.transitive = make([]bool, n.numRoles)
	n.supers = make([][]int32, n.numRoles)
	for _, r := range f.Roles() {
		n.transitive[r.ID] = r.Transitive
		for _, s := range r.Supers() {
			n.supers[r.ID] = append(n.supers[r.ID], s.ID)
		}
	}
	return &builder{n: n, fresh: make(map[*dl.Concept]atom)}
}

// newNormalized lowers the TBox into EL normal forms, or fails with a
// notELError if any axiom leaves the fragment.
func newNormalized(t *dl.TBox) (*normalized, error) {
	b := newBuilder(t)
	for _, gci := range t.AsGCIs() {
		if err := b.axiom(gci.Sub, gci.Sup); err != nil {
			return nil, err
		}
	}
	n := b.n
	n.numAtoms = len(n.conceptOf)
	n.finishIndexes()
	return n, nil
}

// newNormalizedFragment lowers the EL-expressible subset of the TBox,
// silently weakening or dropping axioms that leave the fragment. Every
// emitted normal axiom is entailed by the full TBox, so any consequence
// of the fragment is a consequence of the TBox (a sound lower bound);
// the converse holds only when the returned coverage is Complete.
func newNormalizedFragment(t *dl.TBox) (*normalized, Coverage) {
	b := newBuilder(t)
	var cov Coverage
	for _, gci := range t.AsGCIs() {
		kept, dropped := b.axiomLenient(gci.Sub, gci.Sup)
		switch {
		case dropped == 0:
			cov.Kept++
		case kept == 0:
			cov.Dropped++
		default:
			cov.Weakened++
		}
	}
	n := b.n
	n.numAtoms = len(n.conceptOf)
	n.finishIndexes()
	return n, cov
}

// checkEL verifies c stays inside EL(⊥).
func checkEL(c *dl.Concept) error {
	switch c.Op {
	case dl.OpTop, dl.OpBottom, dl.OpName:
		return nil
	case dl.OpAnd, dl.OpSome:
		for _, a := range c.Args {
			if err := checkEL(a); err != nil {
				return err
			}
		}
		return nil
	default:
		return &notELError{c}
	}
}

// newAtom allocates a fresh normalization name.
func (b *builder) newAtom() atom {
	a := atom(len(b.n.conceptOf))
	b.n.conceptOf = append(b.n.conceptOf, nil)
	return a
}

// atomFor returns the atom of an atomic concept.
func (b *builder) atomFor(c *dl.Concept) atom {
	return b.n.atomOf[c]
}

// left lowers concept c occurring on the left of ⊑ to a single atom X with
// c ⊑ X entailed by the emitted normal axioms.
func (b *builder) left(c *dl.Concept) (atom, error) {
	if err := checkEL(c); err != nil {
		return 0, err
	}
	return b.leftChecked(c), nil
}

func (b *builder) leftChecked(c *dl.Concept) atom {
	switch c.Op {
	case dl.OpTop, dl.OpBottom, dl.OpName:
		return b.atomFor(c)
	}
	if a, ok := b.fresh[c]; ok {
		return a
	}
	var out atom
	switch c.Op {
	case dl.OpAnd:
		atoms := make([]atom, len(c.Args))
		for i, arg := range c.Args {
			atoms[i] = b.leftChecked(arg)
		}
		// Chain binary conjunctions: A1 ⊓ A2 ⊑ X12, X12 ⊓ A3 ⊑ X, ...
		cur := atoms[0]
		for i := 1; i < len(atoms); i++ {
			x := b.newAtom()
			b.addConj(cur, atoms[i], x)
			cur = x
		}
		out = cur
	case dl.OpSome:
		filler := b.leftChecked(c.Args[0])
		x := b.newAtom()
		b.addExLHS(c.Role.ID, filler, x)
		out = x
	default:
		panic("el: leftChecked on non-EL concept")
	}
	b.fresh[c] = out
	return out
}

// axiom lowers one GCI sub ⊑ sup into normal forms.
func (b *builder) axiom(sub, sup *dl.Concept) error {
	if err := checkEL(sub); err != nil {
		return err
	}
	if err := checkEL(sup); err != nil {
		return err
	}
	return b.axiomChecked(sub, sup)
}

func (b *builder) axiomChecked(sub, sup *dl.Concept) error {
	// Split conjunctions on the right.
	if sup.Op == dl.OpAnd {
		for _, arg := range sup.Args {
			if err := b.axiomChecked(sub, arg); err != nil {
				return err
			}
		}
		return nil
	}
	// ∃r.D with complex D on the right: introduce A ⊑ D, use ∃r.A.
	if sup.Op == dl.OpSome && !sup.Args[0].IsAtomic() {
		a := b.newAtom()
		lhs := b.leftChecked(sub)
		b.addExRHS(lhs, sup.Role.ID, a)
		return b.defineFresh(a, sup.Args[0])
	}
	lhs := b.leftChecked(sub)
	switch sup.Op {
	case dl.OpTop:
		// Tautology.
	case dl.OpBottom, dl.OpName:
		b.addSub(lhs, b.atomFor(sup))
	case dl.OpSome:
		b.addExRHS(lhs, sup.Role.ID, b.atomFor(sup.Args[0]))
	default:
		panic("el: axiomChecked on non-EL right side")
	}
	return nil
}

// axiomLenient lowers sub ⊑ sup, keeping as much as the fragment can
// express. A non-EL left side forces dropping the whole GCI: weakening a
// left side would make the axiom apply more broadly, which is unsound. A
// conjunctive right side is split into one GCI per conjunct and each
// non-EL conjunct dropped individually — dropping a conjunct only
// weakens the axiom, which is sound. Returns how many right-side
// conjuncts were kept and dropped.
func (b *builder) axiomLenient(sub, sup *dl.Concept) (kept, dropped int) {
	if checkEL(sub) != nil {
		return 0, 1
	}
	return b.supLenient(sub, sup)
}

func (b *builder) supLenient(sub, sup *dl.Concept) (kept, dropped int) {
	if sup.Op == dl.OpAnd {
		for _, arg := range sup.Args {
			k, d := b.supLenient(sub, arg)
			kept, dropped = kept+k, dropped+d
		}
		return kept, dropped
	}
	if checkEL(sup) != nil {
		return 0, 1
	}
	// axiomChecked can only fail inside defineFresh on a non-EL concept,
	// which checkEL just ruled out.
	if err := b.axiomChecked(sub, sup); err != nil {
		panic(err)
	}
	return 1, 0
}

// defineFresh emits axioms making fresh atom a behave as a ⊑ d.
func (b *builder) defineFresh(a atom, d *dl.Concept) error {
	switch d.Op {
	case dl.OpAnd:
		for _, arg := range d.Args {
			if err := b.defineFresh(a, arg); err != nil {
				return err
			}
		}
		return nil
	case dl.OpSome:
		if !d.Args[0].IsAtomic() {
			inner := b.newAtom()
			b.addExRHS(a, d.Role.ID, inner)
			return b.defineFresh(inner, d.Args[0])
		}
		b.addExRHS(a, d.Role.ID, b.atomFor(d.Args[0]))
		return nil
	case dl.OpTop:
		return nil
	case dl.OpBottom, dl.OpName:
		b.addSub(a, b.atomFor(d))
		return nil
	default:
		return &notELError{d}
	}
}

func (b *builder) addSub(a, c atom) {
	b.growSubs(a)
	b.n.subs[a] = append(b.n.subs[a], c)
}

func (b *builder) addConj(a1, a2, c atom) {
	key := pairKey(a1, a2)
	b.n.conj[key] = append(b.n.conj[key], c)
	b.growConj(a1)
	b.growConj(a2)
	b.n.conjByLeft[a1] = append(b.n.conjByLeft[a1], conjEntry{other: a2, rhs: c})
	if a1 != a2 {
		b.n.conjByLeft[a2] = append(b.n.conjByLeft[a2], conjEntry{other: a1, rhs: c})
	}
}

func (b *builder) addExRHS(a atom, role int32, filler atom) {
	b.growExRHS(a)
	b.n.exRHS[a] = append(b.n.exRHS[a], roleAtom{role: role, a: filler})
}

func (b *builder) addExLHS(role int32, filler, rhs atom) {
	if b.n.exLHS == nil {
		b.n.exLHS = make([]map[atom][]atom, b.n.numRoles)
	}
	if b.n.exLHS[role] == nil {
		b.n.exLHS[role] = make(map[atom][]atom)
	}
	b.n.exLHS[role][filler] = append(b.n.exLHS[role][filler], rhs)
	b.growExLHSFiller(filler)
	b.n.exLHSFiller[filler] = append(b.n.exLHSFiller[filler], roleAtom{role: role, a: rhs})
}

func (b *builder) growSubs(a atom)  { b.n.subs = grow(b.n.subs, int(a)) }
func (b *builder) growConj(a atom)  { b.n.conjByLeft = grow(b.n.conjByLeft, int(a)) }
func (b *builder) growExRHS(a atom) { b.n.exRHS = grow(b.n.exRHS, int(a)) }
func (b *builder) growExLHSFiller(a atom) {
	b.n.exLHSFiller = grow(b.n.exLHSFiller, int(a))
}

func grow[T any](s []T, i int) []T {
	for len(s) <= i {
		s = append(s, *new(T))
	}
	return s
}

// finishIndexes pads every per-atom index to numAtoms so the saturation
// can index without bounds checks.
func (n *normalized) finishIndexes() {
	n.subs = grow(n.subs, n.numAtoms-1)
	n.conjByLeft = grow(n.conjByLeft, n.numAtoms-1)
	n.exRHS = grow(n.exRHS, n.numAtoms-1)
	n.exLHSFiller = grow(n.exLHSFiller, n.numAtoms-1)
	if n.exLHS == nil {
		n.exLHS = make([]map[atom][]atom, n.numRoles)
	}
}
