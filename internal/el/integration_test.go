// Integration tests cross-checking the EL reasoner against the tableau
// reasoner and the parallel classification framework. They live in the
// external test package because internal/core now imports internal/el
// for the classifier's EL prepass.
package el_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"parowl/internal/core"
	"parowl/internal/dl"
	"parowl/internal/el"
	"parowl/internal/tableau"
)

// randomELTBox builds a random EL TBox over nNames concepts. Left-hand
// sides always contain a named conjunct — the axiom shape of real OBO/ORE
// ontologies (SubClassOf/EquivalentClasses on a named class) and the shape
// the tableau's absorption handles without internalizing global
// disjunctions; bare ∃r.C left sides make the cross-check oracle
// (the tableau) exponentially slow without affecting the EL reasoner.
func randomELTBox(rng *rand.Rand, nNames, nAxioms int) *dl.TBox {
	tb := dl.NewTBox("rand")
	f := tb.Factory
	names := make([]*dl.Concept, nNames)
	for i := range names {
		names[i] = tb.Declare(fmt.Sprintf("N%d", i))
	}
	roles := []*dl.Role{f.Role("r"), f.Role("s")}
	if rng.Intn(2) == 0 {
		tb.SubObjectPropertyOf(roles[0], roles[1])
	}
	if rng.Intn(2) == 0 {
		tb.TransitiveObjectProperty(roles[rng.Intn(2)])
	}
	var elConcept func(depth int) *dl.Concept
	elConcept = func(depth int) *dl.Concept {
		if depth <= 0 || rng.Intn(3) == 0 {
			return names[rng.Intn(nNames)]
		}
		if rng.Intn(2) == 0 {
			return f.And(elConcept(depth-1), elConcept(depth-1))
		}
		return f.Some(roles[rng.Intn(2)], elConcept(depth-1))
	}
	for i := 0; i < nAxioms; i++ {
		lhs := names[rng.Intn(nNames)]
		if rng.Intn(3) == 0 {
			lhs = f.And(lhs, elConcept(1))
		}
		if rng.Intn(4) == 0 {
			// Genus-differentia definition: A ≡ B ⊓ C, the shape OBO
			// intersection_of definitions take; both directions absorb.
			tb.EquivalentClasses(names[rng.Intn(nNames)], f.And(names[rng.Intn(nNames)], elConcept(1)))
			continue
		}
		tb.SubClassOf(lhs, elConcept(2))
	}
	return tb
}

// TestQuickAgainstTableau cross-checks the saturation against the tableau
// reasoner on random EL TBoxes: every named-pair subsumption must agree.
func TestQuickAgainstTableau(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomELTBox(rng, 5, 6)
		elr, err := el.New(tb, el.Options{Workers: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tab := tableau.New(tb, tableau.Options{})
		for _, sub := range tb.NamedConcepts() {
			for _, sup := range tb.NamedConcepts() {
				want, err := tab.Subsumes(sup, sub)
				if err != nil {
					// Node-budget blowup in the cross-check oracle, not a
					// disagreement: skip the pair.
					continue
				}
				got, err := elr.Subsumes(sup, sub)
				if err != nil {
					t.Fatalf("seed %d el: %v", seed, err)
				}
				if got != want {
					t.Logf("seed %d: %v ⊑ %v: el=%v tableau=%v", seed, sub, sup, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWorkerCountIrrelevant checks saturation results are independent
// of the worker count.
func TestQuickWorkerCountIrrelevant(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomELTBox(rng, 6, 8)
		var results []map[string]bool
		for _, workers := range []int{1, 4} {
			r, err := el.New(tb, el.Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			m := map[string]bool{}
			for _, sub := range tb.NamedConcepts() {
				for _, sup := range tb.NamedConcepts() {
					ok, err := r.Subsumes(sup, sub)
					if err != nil {
						t.Fatal(err)
					}
					m[sub.Name+"⊑"+sup.Name] = ok
				}
			}
			results = append(results, m)
		}
		for k, v := range results[0] {
			if results[1][k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestClassifyDirect: the saturation-based taxonomy must equal the one
// produced by the parallel classifier using this reasoner as a plug-in.
func TestClassifyDirect(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := randomELTBox(rng, 8, 10)
		r, err := el.New(tb, el.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := r.Classify()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		viaFramework, err := core.Classify(tb, core.Options{Reasoner: r, Workers: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !direct.Equal(viaFramework.Taxonomy) {
			t.Fatalf("seed %d: direct EL taxonomy differs from framework taxonomy:\n%s\nvs\n%s",
				seed, direct.Fingerprint(), viaFramework.Taxonomy.Fingerprint())
		}
	}
}
