package el

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"parowl/internal/core"
	"parowl/internal/dl"
	"parowl/internal/tableau"
)

func mustSubs(t *testing.T, r *Reasoner, sup, sub *dl.Concept, want bool) {
	t.Helper()
	got, err := r.Subsumes(sup, sub)
	if err != nil {
		t.Fatalf("Subsumes(%v ⊒ %v): %v", sup, sub, err)
	}
	if got != want {
		t.Fatalf("Subsumes(%v ⊒ %v) = %v, want %v", sup, sub, got, want)
	}
}

func TestSimpleChain(t *testing.T) {
	tb := dl.NewTBox("chain")
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	tb.SubClassOf(a, b)
	tb.SubClassOf(b, c)
	r, err := New(tb, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustSubs(t, r, b, a, true)
	mustSubs(t, r, c, a, true)
	mustSubs(t, r, a, b, false)
	mustSubs(t, r, tb.Factory.Top(), a, true)
}

func TestConjunctionRule(t *testing.T) {
	tb := dl.NewTBox("conj")
	f := tb.Factory
	a, b, c, d := tb.Declare("A"), tb.Declare("B"), tb.Declare("C"), tb.Declare("D")
	tb.SubClassOf(a, b)
	tb.SubClassOf(a, c)
	tb.SubClassOf(f.And(b, c), d)
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustSubs(t, r, d, a, true)
	mustSubs(t, r, d, b, false)
}

func TestExistentialRules(t *testing.T) {
	tb := dl.NewTBox("ex")
	f := tb.Factory
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	rr := f.Role("r")
	tb.SubClassOf(a, f.Some(rr, b))
	tb.SubClassOf(f.Some(rr, b), c)
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustSubs(t, r, c, a, true)
}

func TestNestedExistentials(t *testing.T) {
	tb := dl.NewTBox("nested")
	f := tb.Factory
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	rr, ss := f.Role("r"), f.Role("s")
	// A ⊑ ∃r.(B ⊓ ∃s.C); ∃r.∃s.C... the normalizer must introduce names.
	tb.SubClassOf(a, f.Some(rr, f.And(b, f.Some(ss, c))))
	tb.SubClassOf(f.Some(rr, f.Some(ss, c)), b)
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// hmm: ∃r.(B ⊓ ∃s.C) ⊑ ∃r.(∃s.C), so A ⊑ B.
	mustSubs(t, r, b, a, true)
}

func TestBottomPropagation(t *testing.T) {
	tb := dl.NewTBox("bot")
	f := tb.Factory
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	rr := f.Role("r")
	tb.SubClassOf(b, f.Bottom())    // B unsatisfiable
	tb.SubClassOf(a, f.Some(rr, b)) // A has an r-successor in B → A unsatisfiable
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []*dl.Concept{a, b} {
		sat, err := r.IsSatisfiable(x)
		if err != nil {
			t.Fatal(err)
		}
		if sat {
			t.Errorf("%v should be unsatisfiable", x)
		}
	}
	sat, err := r.IsSatisfiable(c)
	if err != nil || !sat {
		t.Errorf("C should be satisfiable (err=%v)", err)
	}
	// Unsat concepts are subsumed by everything.
	mustSubs(t, r, c, a, true)
}

func TestDisjointnessAsBottom(t *testing.T) {
	tb := dl.NewTBox("disj")
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	tb.DisjointClasses(a, b)
	tb.SubClassOf(c, a)
	tb.SubClassOf(c, b)
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sat, err := r.IsSatisfiable(c)
	if err != nil || sat {
		t.Errorf("C should be unsatisfiable (sat=%v err=%v)", sat, err)
	}
}

func TestRoleHierarchy(t *testing.T) {
	tb := dl.NewTBox("rh")
	f := tb.Factory
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	rr, ss := f.Role("r"), f.Role("s")
	tb.SubObjectPropertyOf(rr, ss)
	tb.SubClassOf(a, f.Some(rr, b))
	tb.SubClassOf(f.Some(ss, b), c)
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustSubs(t, r, c, a, true)
}

func TestTransitivity(t *testing.T) {
	tb := dl.NewTBox("trans")
	f := tb.Factory
	a, b, c, d := tb.Declare("A"), tb.Declare("B"), tb.Declare("C"), tb.Declare("D")
	rr := f.Role("r")
	tb.TransitiveObjectProperty(rr)
	tb.SubClassOf(a, f.Some(rr, b))
	tb.SubClassOf(b, f.Some(rr, c))
	tb.SubClassOf(f.Some(rr, c), d)
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A −r→ B −r→ C with trans(r) gives A −r→ C, so A ⊑ ∃r.C ⊑ D.
	mustSubs(t, r, d, a, true)
}

func TestEquivalence(t *testing.T) {
	// A ≡ ∃r.B: any X ⊑ ∃r.B must be classified under A.
	tb2 := dl.NewTBox("equiv2")
	f2 := tb2.Factory
	a2, b2, x2 := tb2.Declare("A"), tb2.Declare("B"), tb2.Declare("X")
	rr2 := f2.Role("r")
	tb2.EquivalentClasses(a2, f2.Some(rr2, b2))
	tb2.SubClassOf(x2, f2.Some(rr2, b2))
	r2, err := New(tb2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustSubs(t, r2, a2, x2, true)
}

func TestNonELRejected(t *testing.T) {
	tb := dl.NewTBox("alc")
	f := tb.Factory
	a, b := tb.Declare("A"), tb.Declare("B")
	tb.SubClassOf(a, f.Or(b, f.Name("C")))
	if _, err := New(tb, Options{}); err == nil {
		t.Fatal("union axiom accepted by EL reasoner")
	}
	tb2 := dl.NewTBox("alc2")
	f2 := tb2.Factory
	tb2.SubClassOf(tb2.Declare("A"), f2.All(f2.Role("r"), tb2.Declare("B")))
	if _, err := New(tb2, Options{}); err == nil {
		t.Fatal("universal restriction accepted by EL reasoner")
	}
}

func TestSubsumersList(t *testing.T) {
	tb := dl.NewTBox("list")
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	tb.SubClassOf(a, b)
	tb.SubClassOf(b, c)
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	subs, err := r.Subsumers(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 { // A, B, C
		t.Fatalf("Subsumers(A) = %v", subs)
	}
}

// randomELTBox builds a random EL TBox over nNames concepts. Left-hand
// sides always contain a named conjunct — the axiom shape of real OBO/ORE
// ontologies (SubClassOf/EquivalentClasses on a named class) and the shape
// the tableau's absorption handles without internalizing global
// disjunctions; bare ∃r.C left sides make the cross-check oracle
// (the tableau) exponentially slow without affecting the EL reasoner.
func randomELTBox(rng *rand.Rand, nNames, nAxioms int) *dl.TBox {
	tb := dl.NewTBox("rand")
	f := tb.Factory
	names := make([]*dl.Concept, nNames)
	for i := range names {
		names[i] = tb.Declare(fmt.Sprintf("N%d", i))
	}
	roles := []*dl.Role{f.Role("r"), f.Role("s")}
	if rng.Intn(2) == 0 {
		tb.SubObjectPropertyOf(roles[0], roles[1])
	}
	if rng.Intn(2) == 0 {
		tb.TransitiveObjectProperty(roles[rng.Intn(2)])
	}
	var elConcept func(depth int) *dl.Concept
	elConcept = func(depth int) *dl.Concept {
		if depth <= 0 || rng.Intn(3) == 0 {
			return names[rng.Intn(nNames)]
		}
		if rng.Intn(2) == 0 {
			return f.And(elConcept(depth-1), elConcept(depth-1))
		}
		return f.Some(roles[rng.Intn(2)], elConcept(depth-1))
	}
	for i := 0; i < nAxioms; i++ {
		lhs := names[rng.Intn(nNames)]
		if rng.Intn(3) == 0 {
			lhs = f.And(lhs, elConcept(1))
		}
		if rng.Intn(4) == 0 {
			// Genus-differentia definition: A ≡ B ⊓ C, the shape OBO
			// intersection_of definitions take; both directions absorb.
			tb.EquivalentClasses(names[rng.Intn(nNames)], f.And(names[rng.Intn(nNames)], elConcept(1)))
			continue
		}
		tb.SubClassOf(lhs, elConcept(2))
	}
	return tb
}

// TestQuickAgainstTableau cross-checks the saturation against the tableau
// reasoner on random EL TBoxes: every named-pair subsumption must agree.
func TestQuickAgainstTableau(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomELTBox(rng, 5, 6)
		elr, err := New(tb, Options{Workers: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tab := tableau.New(tb, tableau.Options{})
		for _, sub := range tb.NamedConcepts() {
			for _, sup := range tb.NamedConcepts() {
				want, err := tab.Subsumes(sup, sub)
				if err != nil {
					t.Fatalf("seed %d tableau: %v", seed, err)
				}
				got, err := elr.Subsumes(sup, sub)
				if err != nil {
					t.Fatalf("seed %d el: %v", seed, err)
				}
				if got != want {
					t.Logf("seed %d: %v ⊑ %v: el=%v tableau=%v", seed, sub, sup, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWorkerCountIrrelevant checks saturation results are independent
// of the worker count.
func TestQuickWorkerCountIrrelevant(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomELTBox(rng, 6, 8)
		var results []map[string]bool
		for _, workers := range []int{1, 4} {
			r, err := New(tb, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			m := map[string]bool{}
			for _, sub := range tb.NamedConcepts() {
				for _, sup := range tb.NamedConcepts() {
					ok, err := r.Subsumes(sup, sub)
					if err != nil {
						t.Fatal(err)
					}
					m[sub.Name+"⊑"+sup.Name] = ok
				}
			}
			results = append(results, m)
		}
		for k, v := range results[0] {
			if results[1][k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestClassifyDirect: the saturation-based taxonomy must equal the one
// produced by the parallel classifier using this reasoner as a plug-in.
func TestClassifyDirect(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := randomELTBox(rng, 8, 10)
		r, err := New(tb, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := r.Classify()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		viaFramework, err := core.Classify(tb, core.Options{Reasoner: r, Workers: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !direct.Equal(viaFramework.Taxonomy) {
			t.Fatalf("seed %d: direct EL taxonomy differs from framework taxonomy:\n%s\nvs\n%s",
				seed, direct.Fingerprint(), viaFramework.Taxonomy.Fingerprint())
		}
	}
}

// TestDeepChainStress saturates a 2000-deep subclass chain.
func TestDeepChainStress(t *testing.T) {
	tb := dl.NewTBox("deep")
	prev := tb.Declare("D0")
	for i := 1; i < 2000; i++ {
		c := tb.Declare(fmt.Sprintf("D%d", i))
		tb.SubClassOf(c, prev)
		prev = c
	}
	r, err := New(tb, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := r.Subsumes(tb.Factory.Name("D0"), tb.Factory.Name("D1999"))
	if err != nil || !ok {
		t.Fatalf("deep chain subsumption lost: %v %v", ok, err)
	}
	subs, err := r.Subsumers(tb.Factory.Name("D1999"))
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2000 {
		t.Errorf("subsumers = %d, want 2000", len(subs))
	}
}

// TestWideFanStress: one parent with thousands of children plus an
// existential layer; checks no quadratic blowup kills the run.
func TestWideFanStress(t *testing.T) {
	tb := dl.NewTBox("wide")
	f := tb.Factory
	root := tb.Declare("Root")
	rr := f.Role("r")
	for i := 0; i < 3000; i++ {
		c := tb.Declare(fmt.Sprintf("W%d", i))
		tb.SubClassOf(c, root)
		if i%3 == 0 {
			tb.SubClassOf(c, f.Some(rr, root))
		}
	}
	r, err := New(tb, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tax, err := r.Classify()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tax.NodeOf(root).Children()); got != 3000 {
		t.Errorf("Root children = %d, want 3000", got)
	}
}

// TestDuplicateAxiomsHarmless: repeating axioms must not change results.
func TestDuplicateAxiomsHarmless(t *testing.T) {
	build := func(dups int) *Reasoner {
		tb := dl.NewTBox("dups")
		f := tb.Factory
		a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
		rr := f.Role("r")
		for i := 0; i <= dups; i++ {
			tb.SubClassOf(a, b)
			tb.SubClassOf(b, f.Some(rr, c))
			tb.SubClassOf(f.And(a, b), c)
		}
		r, err := New(tb, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := build(0), build(7)
	t1, err := r1.Classify()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := r2.Classify()
	if err != nil {
		t.Fatal(err)
	}
	if !t1.Equal(t2) {
		t.Error("duplicate axioms changed the taxonomy")
	}
}
