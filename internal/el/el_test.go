package el

import (
	"fmt"
	"testing"

	"parowl/internal/dl"
)

func mustSubs(t *testing.T, r *Reasoner, sup, sub *dl.Concept, want bool) {
	t.Helper()
	got, err := r.Subsumes(sup, sub)
	if err != nil {
		t.Fatalf("Subsumes(%v ⊒ %v): %v", sup, sub, err)
	}
	if got != want {
		t.Fatalf("Subsumes(%v ⊒ %v) = %v, want %v", sup, sub, got, want)
	}
}

func TestSimpleChain(t *testing.T) {
	tb := dl.NewTBox("chain")
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	tb.SubClassOf(a, b)
	tb.SubClassOf(b, c)
	r, err := New(tb, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustSubs(t, r, b, a, true)
	mustSubs(t, r, c, a, true)
	mustSubs(t, r, a, b, false)
	mustSubs(t, r, tb.Factory.Top(), a, true)
}

func TestConjunctionRule(t *testing.T) {
	tb := dl.NewTBox("conj")
	f := tb.Factory
	a, b, c, d := tb.Declare("A"), tb.Declare("B"), tb.Declare("C"), tb.Declare("D")
	tb.SubClassOf(a, b)
	tb.SubClassOf(a, c)
	tb.SubClassOf(f.And(b, c), d)
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustSubs(t, r, d, a, true)
	mustSubs(t, r, d, b, false)
}

func TestExistentialRules(t *testing.T) {
	tb := dl.NewTBox("ex")
	f := tb.Factory
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	rr := f.Role("r")
	tb.SubClassOf(a, f.Some(rr, b))
	tb.SubClassOf(f.Some(rr, b), c)
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustSubs(t, r, c, a, true)
}

func TestNestedExistentials(t *testing.T) {
	tb := dl.NewTBox("nested")
	f := tb.Factory
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	rr, ss := f.Role("r"), f.Role("s")
	// A ⊑ ∃r.(B ⊓ ∃s.C); ∃r.∃s.C... the normalizer must introduce names.
	tb.SubClassOf(a, f.Some(rr, f.And(b, f.Some(ss, c))))
	tb.SubClassOf(f.Some(rr, f.Some(ss, c)), b)
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// hmm: ∃r.(B ⊓ ∃s.C) ⊑ ∃r.(∃s.C), so A ⊑ B.
	mustSubs(t, r, b, a, true)
}

func TestBottomPropagation(t *testing.T) {
	tb := dl.NewTBox("bot")
	f := tb.Factory
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	rr := f.Role("r")
	tb.SubClassOf(b, f.Bottom())    // B unsatisfiable
	tb.SubClassOf(a, f.Some(rr, b)) // A has an r-successor in B → A unsatisfiable
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []*dl.Concept{a, b} {
		sat, err := r.IsSatisfiable(x)
		if err != nil {
			t.Fatal(err)
		}
		if sat {
			t.Errorf("%v should be unsatisfiable", x)
		}
	}
	sat, err := r.IsSatisfiable(c)
	if err != nil || !sat {
		t.Errorf("C should be satisfiable (err=%v)", err)
	}
	// Unsat concepts are subsumed by everything.
	mustSubs(t, r, c, a, true)
}

func TestDisjointnessAsBottom(t *testing.T) {
	tb := dl.NewTBox("disj")
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	tb.DisjointClasses(a, b)
	tb.SubClassOf(c, a)
	tb.SubClassOf(c, b)
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sat, err := r.IsSatisfiable(c)
	if err != nil || sat {
		t.Errorf("C should be unsatisfiable (sat=%v err=%v)", sat, err)
	}
}

func TestRoleHierarchy(t *testing.T) {
	tb := dl.NewTBox("rh")
	f := tb.Factory
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	rr, ss := f.Role("r"), f.Role("s")
	tb.SubObjectPropertyOf(rr, ss)
	tb.SubClassOf(a, f.Some(rr, b))
	tb.SubClassOf(f.Some(ss, b), c)
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustSubs(t, r, c, a, true)
}

func TestTransitivity(t *testing.T) {
	tb := dl.NewTBox("trans")
	f := tb.Factory
	a, b, c, d := tb.Declare("A"), tb.Declare("B"), tb.Declare("C"), tb.Declare("D")
	rr := f.Role("r")
	tb.TransitiveObjectProperty(rr)
	tb.SubClassOf(a, f.Some(rr, b))
	tb.SubClassOf(b, f.Some(rr, c))
	tb.SubClassOf(f.Some(rr, c), d)
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A −r→ B −r→ C with trans(r) gives A −r→ C, so A ⊑ ∃r.C ⊑ D.
	mustSubs(t, r, d, a, true)
}

func TestEquivalence(t *testing.T) {
	// A ≡ ∃r.B: any X ⊑ ∃r.B must be classified under A.
	tb2 := dl.NewTBox("equiv2")
	f2 := tb2.Factory
	a2, b2, x2 := tb2.Declare("A"), tb2.Declare("B"), tb2.Declare("X")
	rr2 := f2.Role("r")
	tb2.EquivalentClasses(a2, f2.Some(rr2, b2))
	tb2.SubClassOf(x2, f2.Some(rr2, b2))
	r2, err := New(tb2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustSubs(t, r2, a2, x2, true)
}

func TestNonELRejected(t *testing.T) {
	tb := dl.NewTBox("alc")
	f := tb.Factory
	a, b := tb.Declare("A"), tb.Declare("B")
	tb.SubClassOf(a, f.Or(b, f.Name("C")))
	if _, err := New(tb, Options{}); err == nil {
		t.Fatal("union axiom accepted by EL reasoner")
	}
	tb2 := dl.NewTBox("alc2")
	f2 := tb2.Factory
	tb2.SubClassOf(tb2.Declare("A"), f2.All(f2.Role("r"), tb2.Declare("B")))
	if _, err := New(tb2, Options{}); err == nil {
		t.Fatal("universal restriction accepted by EL reasoner")
	}
}

func TestSubsumersList(t *testing.T) {
	tb := dl.NewTBox("list")
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	tb.SubClassOf(a, b)
	tb.SubClassOf(b, c)
	r, err := New(tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	subs, err := r.Subsumers(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 { // A, B, C
		t.Fatalf("Subsumers(A) = %v", subs)
	}
}

// TestDeepChainStress saturates a 2000-deep subclass chain.
func TestDeepChainStress(t *testing.T) {
	tb := dl.NewTBox("deep")
	prev := tb.Declare("D0")
	for i := 1; i < 2000; i++ {
		c := tb.Declare(fmt.Sprintf("D%d", i))
		tb.SubClassOf(c, prev)
		prev = c
	}
	r, err := New(tb, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := r.Subsumes(tb.Factory.Name("D0"), tb.Factory.Name("D1999"))
	if err != nil || !ok {
		t.Fatalf("deep chain subsumption lost: %v %v", ok, err)
	}
	subs, err := r.Subsumers(tb.Factory.Name("D1999"))
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2000 {
		t.Errorf("subsumers = %d, want 2000", len(subs))
	}
}

// TestWideFanStress: one parent with thousands of children plus an
// existential layer; checks no quadratic blowup kills the run.
func TestWideFanStress(t *testing.T) {
	tb := dl.NewTBox("wide")
	f := tb.Factory
	root := tb.Declare("Root")
	rr := f.Role("r")
	for i := 0; i < 3000; i++ {
		c := tb.Declare(fmt.Sprintf("W%d", i))
		tb.SubClassOf(c, root)
		if i%3 == 0 {
			tb.SubClassOf(c, f.Some(rr, root))
		}
	}
	r, err := New(tb, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tax, err := r.Classify()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tax.NodeOf(root).Children()); got != 3000 {
		t.Errorf("Root children = %d, want 3000", got)
	}
}

// TestDuplicateAxiomsHarmless: repeating axioms must not change results.
func TestDuplicateAxiomsHarmless(t *testing.T) {
	build := func(dups int) *Reasoner {
		tb := dl.NewTBox("dups")
		f := tb.Factory
		a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
		rr := f.Role("r")
		for i := 0; i <= dups; i++ {
			tb.SubClassOf(a, b)
			tb.SubClassOf(b, f.Some(rr, c))
			tb.SubClassOf(f.And(a, b), c)
		}
		r, err := New(tb, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := build(0), build(7)
	t1, err := r1.Classify()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := r2.Classify()
	if err != nil {
		t.Fatal(err)
	}
	if !t1.Equal(t2) {
		t.Error("duplicate axioms changed the taxonomy")
	}
}
