package el

import (
	"context"
	"testing"

	"parowl/internal/dl"
)

// TestSaturationCancelled: cancelling the context aborts saturation with
// an error, and — because an aborted saturation is discarded rather than
// memoized — the next query under a live context re-runs it successfully.
func TestSaturationCancelled(t *testing.T) {
	tb := dl.NewTBox("cancel")
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	tb.SubClassOf(a, b)
	tb.SubClassOf(b, c)
	r, err := New(tb, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.SaturateContext(ctx); err == nil {
		t.Fatal("SaturateContext under cancelled ctx returned nil error")
	}
	if _, err := r.Subs(ctx, c, a); err == nil {
		t.Fatal("Subs under cancelled ctx returned nil error")
	}

	// Retry-after-abort: a live context saturates from scratch and the
	// entailments are all there.
	got, err := r.Subs(context.Background(), c, a)
	if err != nil {
		t.Fatalf("Subs after aborted saturation: %v", err)
	}
	if !got {
		t.Error("Subs(C ⊒ A) = false after re-saturation, want true")
	}
}
