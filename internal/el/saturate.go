package el

import (
	stdctx "context"
	"sync"
)

// fact is one derived assertion: either a subsumption C ∈ S(A) or a role
// link (A, role, B) ∈ R(role).
type fact struct {
	kind byte // 'S' = subsumer, 'E' = edge
	a    atom // the context (subject)
	b    atom // the subsumer / edge target
	role int32
}

// workQueue is an unbounded multi-producer multi-consumer queue with
// quiescence detection: it reports completion when every pushed fact has
// been fully processed (including the facts that processing produced).
// abort wakes all poppers early without waiting for quiescence.
type workQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []fact
	pending int // pushed but not yet fully processed
	done    bool
	aborted bool
}

func newWorkQueue() *workQueue {
	q := &workQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a fact; its processing must later be acknowledged with ack.
func (q *workQueue) push(f fact) {
	q.mu.Lock()
	q.items = append(q.items, f)
	q.pending++
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until a fact is available or the queue quiesces or aborts;
// ok is false on quiescence or abort.
func (q *workQueue) pop() (fact, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.done {
		q.cond.Wait()
	}
	if q.aborted || len(q.items) == 0 {
		return fact{}, false
	}
	f := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return f, true
}

// ack marks one popped fact as fully processed.
func (q *workQueue) ack() {
	q.mu.Lock()
	q.pending--
	if q.pending == 0 {
		q.done = true
		q.mu.Unlock()
		q.cond.Broadcast()
		return
	}
	q.mu.Unlock()
}

// abort makes every current and future pop return immediately with
// ok=false, abandoning queued facts. The saturation that owns the queue
// must then be discarded: its state is partial.
func (q *workQueue) abort() {
	q.mu.Lock()
	q.done = true
	q.aborted = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// atomCtx is the per-atom saturation state (a "context" in ELK
// terminology; named atomCtx to leave the identifier context to the
// standard library). Its mutex guards all fields; locks on different
// atoms are never held simultaneously.
type atomCtx struct {
	mu    sync.Mutex
	subs  map[atom]bool           // S(A)
	preds map[int32]map[atom]bool // role → predecessors P with (P,role,A)
	succs map[int32]map[atom]bool // role → successors B with (A,role,B)
}

// claimSub atomically inserts c into S(A); reports whether it was new.
func (c *atomCtx) claimSub(x atom) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.subs[x] {
		return false
	}
	if c.subs == nil {
		c.subs = make(map[atom]bool)
	}
	c.subs[x] = true
	return true
}

// claimPred atomically inserts (p, role) into preds; reports whether new.
func (c *atomCtx) claimPred(role int32, p atom) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.preds == nil {
		c.preds = make(map[int32]map[atom]bool)
	}
	m := c.preds[role]
	if m == nil {
		m = make(map[atom]bool)
		c.preds[role] = m
	}
	if m[p] {
		return false
	}
	m[p] = true
	return true
}

// addSucc records (A, role, b) on the source side.
func (c *atomCtx) addSucc(role int32, b atom) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.succs == nil {
		c.succs = make(map[int32]map[atom]bool)
	}
	m := c.succs[role]
	if m == nil {
		m = make(map[atom]bool)
		c.succs[role] = m
	}
	m[b] = true
}

func (c *atomCtx) snapshotSubs() []atom {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]atom, 0, len(c.subs))
	for s := range c.subs {
		out = append(out, s)
	}
	return out
}

func (c *atomCtx) hasSub(x atom) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.subs[x]
}

func (c *atomCtx) snapshotPreds(role int32) []atom {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.preds[role]
	out := make([]atom, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	return out
}

func (c *atomCtx) snapshotAllPreds() []roleAtom {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []roleAtom
	for role, m := range c.preds {
		for p := range m {
			out = append(out, roleAtom{role: role, a: p})
		}
	}
	return out
}

func (c *atomCtx) snapshotSuccs(role int32) []atom {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.succs[role]
	out := make([]atom, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	return out
}

// saturation runs the completion rules to fixpoint.
type saturation struct {
	n    *normalized
	ctxs []atomCtx
	q    *workQueue
}

func newSaturation(n *normalized) *saturation {
	return &saturation{n: n, ctxs: make([]atomCtx, n.numAtoms), q: newWorkQueue()}
}

// run seeds the initial facts and saturates with the given worker count.
// When ctx is cancelled before the fixpoint is reached the queue is
// aborted, the workers drain, and run returns ctx's error; the partial
// saturation must not be queried.
func (s *saturation) run(ctx stdctx.Context, workers int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	// Init: S(A) ⊇ {A, ⊤} for every atom.
	for a := 0; a < s.n.numAtoms; a++ {
		s.deriveSub(atom(a), atom(a))
		s.deriveSub(atom(a), atomTop)
	}
	// Watch for cancellation only when it is possible: Background/TODO
	// contexts have a nil Done channel and skip the watcher entirely.
	var watchWg sync.WaitGroup
	stop := make(chan struct{})
	if done := ctx.Done(); done != nil {
		watchWg.Add(1)
		go func() {
			defer watchWg.Done()
			select {
			case <-done:
				s.q.abort()
			case <-stop:
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				f, ok := s.q.pop()
				if !ok {
					return
				}
				s.process(f)
				s.q.ack()
			}
		}()
	}
	wg.Wait()
	close(stop)
	watchWg.Wait()
	return ctx.Err()
}

// deriveSub claims C ∈ S(A) and enqueues it for rule application.
func (s *saturation) deriveSub(a, c atom) {
	if s.ctxs[a].claimSub(c) {
		s.q.push(fact{kind: 'S', a: a, b: c})
	}
}

// deriveEdge claims (A, role, B) and enqueues it.
func (s *saturation) deriveEdge(a atom, role int32, b atom) {
	if s.ctxs[b].claimPred(role, a) {
		s.ctxs[a].addSucc(role, b)
		s.q.push(fact{kind: 'E', a: a, b: b, role: role})
	}
}

func (s *saturation) process(f fact) {
	if f.kind == 'S' {
		s.processSub(f.a, f.b)
	} else {
		s.processEdge(f.a, f.role, f.b)
	}
}

// processSub applies all rules triggered by a new subsumer C ∈ S(A).
func (s *saturation) processSub(a, c atom) {
	n := s.n
	// CR1: C ⊑ D.
	for _, d := range n.subs[c] {
		s.deriveSub(a, d)
	}
	// CR2: C ⊓ B ⊑ D with B already in S(A).
	for _, e := range n.conjByLeft[c] {
		if e.other == c || s.ctxs[a].hasSub(e.other) {
			s.deriveSub(a, e.rhs)
		}
	}
	// CR3: C ⊑ ∃r.D.
	for _, ra := range n.exRHS[c] {
		s.deriveEdge(a, ra.role, ra.a)
	}
	// CR4 (right half): ∃r.C ⊑ D and some predecessor P of A via r.
	for _, ra := range n.exLHSFiller[c] {
		for _, p := range s.ctxs[a].snapshotPreds(ra.role) {
			s.deriveSub(p, ra.a)
		}
	}
	// CR5: ⊥ propagates to every predecessor.
	if c == atomBottom {
		for _, rp := range s.ctxs[a].snapshotAllPreds() {
			s.deriveSub(rp.a, atomBottom)
		}
	}
}

// processEdge applies all rules triggered by a new link (A, role, B).
func (s *saturation) processEdge(a atom, role int32, b atom) {
	n := s.n
	// Role hierarchy: materialize the link under every direct super-role.
	for _, sup := range n.supers[role] {
		s.deriveEdge(a, sup, b)
	}
	// CR4 (left half): C ∈ S(B) with ∃role.C ⊑ D.
	if idx := n.exLHS[role]; idx != nil {
		for _, c := range s.ctxs[b].snapshotSubs() {
			for _, d := range idx[c] {
				s.deriveSub(a, d)
			}
		}
	}
	// CR5: ⊥ ∈ S(B).
	if s.ctxs[b].hasSub(atomBottom) {
		s.deriveSub(a, atomBottom)
	}
	// CR11: transitivity, joining on both sides of the new link.
	if n.transitive[role] {
		for _, c := range s.ctxs[b].snapshotSuccs(role) {
			s.deriveEdge(a, role, c)
		}
		for _, p := range s.ctxs[a].snapshotPreds(role) {
			s.deriveEdge(p, role, b)
		}
	}
}
