package el

import (
	"sync"
)

// fact is one derived assertion: either a subsumption C ∈ S(A) or a role
// link (A, role, B) ∈ R(role).
type fact struct {
	kind byte // 'S' = subsumer, 'E' = edge
	a    atom // the context (subject)
	b    atom // the subsumer / edge target
	role int32
}

// workQueue is an unbounded multi-producer multi-consumer queue with
// quiescence detection: it reports completion when every pushed fact has
// been fully processed (including the facts that processing produced).
type workQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []fact
	pending int // pushed but not yet fully processed
	done    bool
}

func newWorkQueue() *workQueue {
	q := &workQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a fact; its processing must later be acknowledged with ack.
func (q *workQueue) push(f fact) {
	q.mu.Lock()
	q.items = append(q.items, f)
	q.pending++
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until a fact is available or the queue quiesces; ok is false
// on quiescence.
func (q *workQueue) pop() (fact, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.done {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return fact{}, false
	}
	f := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return f, true
}

// ack marks one popped fact as fully processed.
func (q *workQueue) ack() {
	q.mu.Lock()
	q.pending--
	if q.pending == 0 {
		q.done = true
		q.mu.Unlock()
		q.cond.Broadcast()
		return
	}
	q.mu.Unlock()
}

// context is the per-atom saturation state. Its mutex guards all fields;
// locks on different contexts are never held simultaneously.
type context struct {
	mu    sync.Mutex
	subs  map[atom]bool           // S(A)
	preds map[int32]map[atom]bool // role → predecessors P with (P,role,A)
	succs map[int32]map[atom]bool // role → successors B with (A,role,B)
}

// claimSub atomically inserts c into S(A); reports whether it was new.
func (c *context) claimSub(x atom) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.subs[x] {
		return false
	}
	if c.subs == nil {
		c.subs = make(map[atom]bool)
	}
	c.subs[x] = true
	return true
}

// claimPred atomically inserts (p, role) into preds; reports whether new.
func (c *context) claimPred(role int32, p atom) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.preds == nil {
		c.preds = make(map[int32]map[atom]bool)
	}
	m := c.preds[role]
	if m == nil {
		m = make(map[atom]bool)
		c.preds[role] = m
	}
	if m[p] {
		return false
	}
	m[p] = true
	return true
}

// addSucc records (A, role, b) on the source side.
func (c *context) addSucc(role int32, b atom) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.succs == nil {
		c.succs = make(map[int32]map[atom]bool)
	}
	m := c.succs[role]
	if m == nil {
		m = make(map[atom]bool)
		c.succs[role] = m
	}
	m[b] = true
}

func (c *context) snapshotSubs() []atom {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]atom, 0, len(c.subs))
	for s := range c.subs {
		out = append(out, s)
	}
	return out
}

func (c *context) hasSub(x atom) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.subs[x]
}

func (c *context) snapshotPreds(role int32) []atom {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.preds[role]
	out := make([]atom, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	return out
}

func (c *context) snapshotAllPreds() []roleAtom {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []roleAtom
	for role, m := range c.preds {
		for p := range m {
			out = append(out, roleAtom{role: role, a: p})
		}
	}
	return out
}

func (c *context) snapshotSuccs(role int32) []atom {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.succs[role]
	out := make([]atom, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	return out
}

// saturation runs the completion rules to fixpoint.
type saturation struct {
	n    *normalized
	ctxs []context
	q    *workQueue
}

func newSaturation(n *normalized) *saturation {
	return &saturation{n: n, ctxs: make([]context, n.numAtoms), q: newWorkQueue()}
}

// run seeds the initial facts and saturates with the given worker count.
func (s *saturation) run(workers int) {
	if workers < 1 {
		workers = 1
	}
	// Init: S(A) ⊇ {A, ⊤} for every atom.
	for a := 0; a < s.n.numAtoms; a++ {
		s.deriveSub(atom(a), atom(a))
		s.deriveSub(atom(a), atomTop)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				f, ok := s.q.pop()
				if !ok {
					return
				}
				s.process(f)
				s.q.ack()
			}
		}()
	}
	wg.Wait()
}

// deriveSub claims C ∈ S(A) and enqueues it for rule application.
func (s *saturation) deriveSub(a, c atom) {
	if s.ctxs[a].claimSub(c) {
		s.q.push(fact{kind: 'S', a: a, b: c})
	}
}

// deriveEdge claims (A, role, B) and enqueues it.
func (s *saturation) deriveEdge(a atom, role int32, b atom) {
	if s.ctxs[b].claimPred(role, a) {
		s.ctxs[a].addSucc(role, b)
		s.q.push(fact{kind: 'E', a: a, b: b, role: role})
	}
}

func (s *saturation) process(f fact) {
	if f.kind == 'S' {
		s.processSub(f.a, f.b)
	} else {
		s.processEdge(f.a, f.role, f.b)
	}
}

// processSub applies all rules triggered by a new subsumer C ∈ S(A).
func (s *saturation) processSub(a, c atom) {
	n := s.n
	// CR1: C ⊑ D.
	for _, d := range n.subs[c] {
		s.deriveSub(a, d)
	}
	// CR2: C ⊓ B ⊑ D with B already in S(A).
	for _, e := range n.conjByLeft[c] {
		if e.other == c || s.ctxs[a].hasSub(e.other) {
			s.deriveSub(a, e.rhs)
		}
	}
	// CR3: C ⊑ ∃r.D.
	for _, ra := range n.exRHS[c] {
		s.deriveEdge(a, ra.role, ra.a)
	}
	// CR4 (right half): ∃r.C ⊑ D and some predecessor P of A via r.
	for _, ra := range n.exLHSFiller[c] {
		for _, p := range s.ctxs[a].snapshotPreds(ra.role) {
			s.deriveSub(p, ra.a)
		}
	}
	// CR5: ⊥ propagates to every predecessor.
	if c == atomBottom {
		for _, rp := range s.ctxs[a].snapshotAllPreds() {
			s.deriveSub(rp.a, atomBottom)
		}
	}
}

// processEdge applies all rules triggered by a new link (A, role, B).
func (s *saturation) processEdge(a atom, role int32, b atom) {
	n := s.n
	// Role hierarchy: materialize the link under every direct super-role.
	for _, sup := range n.supers[role] {
		s.deriveEdge(a, sup, b)
	}
	// CR4 (left half): C ∈ S(B) with ∃role.C ⊑ D.
	if idx := n.exLHS[role]; idx != nil {
		for _, c := range s.ctxs[b].snapshotSubs() {
			for _, d := range idx[c] {
				s.deriveSub(a, d)
			}
		}
	}
	// CR5: ⊥ ∈ S(B).
	if s.ctxs[b].hasSub(atomBottom) {
		s.deriveSub(a, atomBottom)
	}
	// CR11: transitivity, joining on both sides of the new link.
	if n.transitive[role] {
		for _, c := range s.ctxs[b].snapshotSuccs(role) {
			s.deriveEdge(a, role, c)
		}
		for _, p := range s.ctxs[a].snapshotPreds(role) {
			s.deriveEdge(p, role, b)
		}
	}
}
