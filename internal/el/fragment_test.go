package el

import (
	"context"
	"testing"

	"parowl/internal/dl"
)

// mixedTBox has one axiom of each coverage class: a kept EL axiom, a
// conjunctive right side with one non-EL conjunct (weakened), and a
// wholly non-EL axiom (dropped).
func mixedTBox() *dl.TBox {
	tb := dl.NewTBox("mixed")
	f := tb.Factory
	a, b, c, d := tb.Declare("A"), tb.Declare("B"), tb.Declare("C"), tb.Declare("D")
	r := f.Role("r")
	tb.SubClassOf(a, b)                     // kept
	tb.SubClassOf(c, f.And(a, f.All(r, b))) // weakened: keeps C ⊑ A
	tb.SubClassOf(d, f.Not(b))              // dropped: non-EL right side
	tb.SubClassOf(f.All(r, a), b)           // dropped: non-EL left side
	return tb
}

func TestFragmentCoverage(t *testing.T) {
	tb := mixedTBox()
	frag, cov := NewFragment(tb, Options{})
	// EquivalentClasses etc. are absent, so AsGCIs yields exactly the four
	// axioms above.
	if cov.Kept != 1 || cov.Weakened != 1 || cov.Dropped != 2 {
		t.Fatalf("coverage = %+v, want {Kept:1 Weakened:1 Dropped:2}", cov)
	}
	if cov.Complete() {
		t.Error("partial fragment reported complete")
	}
	f := tb.Factory
	// The weakened axiom's EL conjunct survives: C ⊑ A ⊑ B.
	mustSubs(t, frag, f.Name("B"), f.Name("C"), true)
	// The dropped ∀-conjunct must not have leaked in any form.
	mustSubs(t, frag, f.Name("B"), f.Name("D"), false)
}

func TestFragmentCompleteOnPureEL(t *testing.T) {
	tb := dl.NewTBox("pure")
	f := tb.Factory
	a, b := tb.Declare("A"), tb.Declare("B")
	tb.SubClassOf(a, f.And(b, f.Some(f.Role("r"), b)))
	frag, cov := NewFragment(tb, Options{})
	if !cov.Complete() {
		t.Fatalf("pure EL TBox: coverage = %+v, want complete", cov)
	}
	// A complete fragment is the real reasoner: its answers are exact, so
	// its ModelFilter capability is live.
	if !frag.DisprovesSubs(context.Background(), f.Name("A"), f.Name("B")) {
		t.Error("complete fragment failed to disprove a non-subsumption")
	}
	if frag.DisprovesSubs(context.Background(), f.Name("B"), f.Name("A")) {
		t.Error("complete fragment disproved a true subsumption")
	}
}

// TestFragmentNeverDisproves is the soundness switch: a partial fragment
// proves but never refutes, so its ModelFilter capability must answer
// "don't know" for every pair — including pairs it could not prove.
func TestFragmentNeverDisproves(t *testing.T) {
	tb := mixedTBox()
	frag, cov := NewFragment(tb, Options{})
	if cov.Complete() {
		t.Fatal("test needs a partial fragment")
	}
	ctx := context.Background()
	for _, sub := range tb.NamedConcepts() {
		for _, sup := range tb.NamedConcepts() {
			if frag.DisprovesSubs(ctx, sup, sub) {
				t.Fatalf("partial fragment disproved %v ⊑ %v", sub, sup)
			}
		}
	}
}

func TestFragmentSeeds(t *testing.T) {
	tb := dl.NewTBox("seeds")
	f := tb.Factory
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	u := tb.Declare("U")
	r := f.Role("r")
	tb.SubClassOf(a, b)
	tb.SubClassOf(c, f.And(a, f.All(r, b))) // weakened to C ⊑ A
	tb.SubClassOf(u, f.Bottom())
	frag, _ := NewFragment(tb, Options{})
	seeds, unsat, err := frag.Seeds(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(unsat) != 1 || unsat[0] != u {
		t.Fatalf("unsat = %v, want [U]", unsat)
	}
	has := func(sub, sup *dl.Concept) bool {
		for _, s := range seeds {
			if s.Sub == sub && s.Sup == sup {
				return true
			}
		}
		return false
	}
	for _, want := range []struct{ sub, sup *dl.Concept }{
		{a, b}, {c, a}, {c, b}, // told, weakened-kept, transitive
	} {
		if !has(want.sub, want.sup) {
			t.Errorf("seeds missing %v ⊑ %v (got %v)", want.sub, want.sup, seeds)
		}
	}
	for _, s := range seeds {
		if s.Sub == s.Sup {
			t.Errorf("reflexive seed %v", s)
		}
		if s.Sup.Op == dl.OpTop {
			t.Errorf("trivial ⊤ seed for %v", s.Sub)
		}
		if s.Sub == u || s.Sup == u {
			t.Errorf("seed involves unsatisfiable concept: %v", s)
		}
	}
}
