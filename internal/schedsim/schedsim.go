// Package schedsim replays a classification trace on w virtual workers in
// simulated time, computing the paper's speedup metric — the sum of all
// thread runtimes divided by the elapsed time (paper Sec. V-A) — without
// needing a 60-core SMP server.
//
// The paper ran an HP DL580 with four 15-core Xeons and swept w from 1 to
// 140 (Figs. 9-10). This repository runs on arbitrary hardware, so the
// figure harness instead runs the real classifier with an oracle plug-in
// (charging each test its deterministic virtual cost), collects the exact
// task stream the pool dispatched, and feeds it to Simulate. The simulated
// pool replays the real pool's policy — round-robin assignment, shared
// greedy queue, or work stealing (whose virtual-time equivalent is greedy
// earliest-idle assignment over the LPT-sorted batch) — only the clock is
// virtual. An overhead model — per-task dispatch cost and a per-cycle
// barrier whose cost grows with w — reproduces the behaviour the paper
// observes: speedup climbs roughly linearly, peaks when partitions n/w get
// too small, then degrades (Fig. 9(a)).
package schedsim

import (
	"fmt"
	"sort"
	"time"

	"parowl/internal/core"
)

// greedyAssign gives one task to the earliest-free virtual worker.
func greedyAssign(loads []time.Duration, t time.Duration, ov Overhead) {
	min := 0
	for i := 1; i < len(loads); i++ {
		if loads[i] < loads[min] {
			min = i
		}
	}
	loads[min] += t + ov.PerTask
}

// Overhead parametrizes the scheduling cost model.
type Overhead struct {
	// PerTask is added to every dispatched task (queue hop, cache warmup).
	PerTask time.Duration
	// PerWorkerCycle is paid once per cycle by each worker that received
	// at least one task (thread wakeup, partition setup).
	PerWorkerCycle time.Duration
	// BarrierPerWorker models the synchronization fan-in at each cycle
	// barrier: the barrier costs BarrierPerWorker × w of elapsed time.
	BarrierPerWorker time.Duration
}

// DefaultOverhead is calibrated so that small-ontology runs peak in the
// paper's observed 20-32 worker range while large ontologies still scale
// at w = 140.
var DefaultOverhead = Overhead{
	PerTask:          20 * time.Microsecond,
	PerWorkerCycle:   50 * time.Microsecond,
	BarrierPerWorker: 150 * time.Microsecond,
}

// Result is one simulated configuration.
type Result struct {
	Workers int
	// Elapsed is the simulated wall-clock (makespan incl. barriers).
	Elapsed time.Duration
	// Runtime is the summed active time of all workers.
	Runtime time.Duration
	// Speedup = Runtime / Elapsed, the paper's metric.
	Speedup float64
}

func (r Result) String() string {
	return fmt.Sprintf("w=%-3d elapsed=%-12v runtime=%-12v speedup=%.2f",
		r.Workers, r.Elapsed, r.Runtime, r.Speedup)
}

// Simulate replays every cycle of the trace on w virtual workers. The
// trace must come from a run whose pool also used w workers (the group
// partition sizes depend on w), with the same scheduling policy.
func Simulate(trace *core.Trace, w int, ov Overhead, sched core.Scheduling) Result {
	if w < 1 {
		w = 1
	}
	var elapsed, runtime time.Duration
	for _, c := range trace.Cycles {
		ce, cr := simulateCycle(c.Tasks, w, ov, sched)
		elapsed += ce
		runtime += cr
	}
	res := Result{Workers: w, Elapsed: elapsed, Runtime: runtime}
	if elapsed > 0 {
		res.Speedup = float64(runtime) / float64(elapsed)
	}
	return res
}

// simulateCycle schedules one barrier-delimited batch.
func simulateCycle(tasks []time.Duration, w int, ov Overhead, sched core.Scheduling) (elapsed, runtime time.Duration) {
	if len(tasks) == 0 {
		return 0, 0
	}
	loads := make([]time.Duration, w)
	switch sched {
	case core.WorkSharing:
		// Greedy: each task goes to the earliest-free worker.
		for _, t := range tasks {
			greedyAssign(loads, t, ov)
		}
	case core.WorkStealing:
		// Virtual-time equivalent of stealing: a worker going idle
		// immediately takes the next pending task, which is exactly
		// greedy earliest-idle assignment — over the LPT order the real
		// coordinator dispatched (the trace's Tasks are recorded in
		// dispatch order, i.e. already hardness-sorted descending when
		// the run used WorkStealing).
		sorted := append([]time.Duration(nil), tasks...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
		for _, t := range sorted {
			greedyAssign(loads, t, ov)
		}
	default: // RoundRobin, the paper's policy
		for i, t := range tasks {
			loads[i%w] += t + ov.PerTask
		}
	}
	var max time.Duration
	for _, l := range loads {
		if l > 0 {
			l += ov.PerWorkerCycle
			runtime += l
		}
		if l > max {
			max = l
		}
	}
	elapsed = max + time.Duration(w)*ov.BarrierPerWorker
	return elapsed, runtime
}

// SweepPoint is one (w, speedup) sample of a scalability curve.
type SweepPoint struct {
	Workers int
	Speedup float64
	Elapsed time.Duration
	Runtime time.Duration
}

// Runner produces a trace for a given worker count; the figure harness
// wires it to a real classification run with Workers = w.
type Runner func(w int) (*core.Trace, error)

// Sweep runs the runner for each worker count and simulates its trace,
// producing one scalability curve.
func Sweep(run Runner, workers []int, ov Overhead, sched core.Scheduling) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(workers))
	for _, w := range workers {
		trace, err := run(w)
		if err != nil {
			return nil, fmt.Errorf("schedsim: sweep at w=%d: %w", w, err)
		}
		r := Simulate(trace, w, ov, sched)
		out = append(out, SweepPoint{Workers: w, Speedup: r.Speedup, Elapsed: r.Elapsed, Runtime: r.Runtime})
	}
	return out, nil
}

// PeakWorkers returns the worker count with the highest speedup in a
// sweep (the paper reports peaks at 20-32 workers for small ontologies
// and at 140 for medium/large ones).
func PeakWorkers(points []SweepPoint) int {
	best, bestW := -1.0, 0
	for _, p := range points {
		if p.Speedup > best {
			best, bestW = p.Speedup, p.Workers
		}
	}
	return bestW
}
