package schedsim

import (
	"testing"
	"testing/quick"
	"time"

	"parowl/internal/core"
)

func uniformTrace(tasksPerCycle, cycles int, each time.Duration) *core.Trace {
	tr := &core.Trace{}
	for c := 0; c < cycles; c++ {
		cyc := &core.Cycle{Phase: core.PhaseRandom, Index: c + 1}
		for t := 0; t < tasksPerCycle; t++ {
			cyc.Tasks = append(cyc.Tasks, each)
		}
		tr.Cycles = append(tr.Cycles, cyc)
	}
	return tr
}

func TestSingleWorkerSpeedupNearOne(t *testing.T) {
	tr := uniformTrace(16, 2, time.Millisecond)
	r := Simulate(tr, 1, Overhead{}, core.RoundRobin)
	if r.Speedup < 0.99 || r.Speedup > 1.01 {
		t.Errorf("speedup(w=1) = %.3f, want ≈1", r.Speedup)
	}
	if r.Elapsed != r.Runtime {
		t.Errorf("elapsed %v != runtime %v with no overhead", r.Elapsed, r.Runtime)
	}
}

func TestPerfectScalingWithoutOverhead(t *testing.T) {
	tr := uniformTrace(64, 1, time.Millisecond)
	for _, w := range []int{2, 4, 8, 16} {
		r := Simulate(tr, w, Overhead{}, core.RoundRobin)
		if r.Speedup < float64(w)*0.99 || r.Speedup > float64(w)*1.01 {
			t.Errorf("speedup(w=%d) = %.2f, want ≈%d", w, r.Speedup, w)
		}
	}
}

func TestSpeedupNeverExceedsWorkers(t *testing.T) {
	check := func(seed int64) bool {
		tasks := int(seed%37) + 1
		tr := uniformTrace(tasks, 3, time.Duration(seed%977+13)*time.Microsecond)
		for _, w := range []int{1, 3, 9, 40} {
			r := Simulate(tr, w, DefaultOverhead, core.RoundRobin)
			if r.Speedup > float64(w)+1e-9 {
				return false
			}
			if r.Speedup < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOverheadCausesPeakAndDegradation(t *testing.T) {
	// A small workload (few tasks per worker at high w) must peak and
	// then degrade, as in Fig. 9(a).
	tr := &core.Trace{}
	cyc := &core.Cycle{Phase: core.PhaseGroup, Index: 1}
	for i := 0; i < 2000; i++ {
		cyc.Tasks = append(cyc.Tasks, 50*time.Microsecond)
	}
	tr.Cycles = []*core.Cycle{cyc}
	var prev float64
	peaked := false
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		r := Simulate(tr, w, DefaultOverhead, core.RoundRobin)
		if r.Speedup < prev {
			peaked = true
		}
		prev = r.Speedup
	}
	if !peaked {
		t.Error("no degradation observed even at w=512")
	}
}

func TestHeavyTailCapsSpeedup(t *testing.T) {
	// One task dominating the cycle bounds speedup by
	// total/longest — the Fig. 10(b) plateau.
	tr := &core.Trace{}
	cyc := &core.Cycle{Phase: core.PhaseGroup, Index: 1}
	cyc.Tasks = append(cyc.Tasks, 100*time.Millisecond)
	for i := 0; i < 300; i++ {
		cyc.Tasks = append(cyc.Tasks, time.Millisecond)
	}
	tr.Cycles = []*core.Cycle{cyc}
	bound := 400.0 / 100.0 // total 400ms / longest 100ms = 4
	for _, w := range []int{8, 40, 80} {
		r := Simulate(tr, w, Overhead{}, core.WorkSharing)
		if r.Speedup > bound+0.01 {
			t.Errorf("speedup(w=%d) = %.2f exceeds heavy-tail bound %.2f", w, r.Speedup, bound)
		}
	}
	r := Simulate(tr, 80, Overhead{}, core.WorkSharing)
	if r.Speedup < 3.5 {
		t.Errorf("speedup(w=80) = %.2f, want ≈4 plateau", r.Speedup)
	}
}

func TestRoundRobinVsWorkSharing(t *testing.T) {
	// With skewed task sizes, greedy work-sharing beats blind round-robin.
	tr := &core.Trace{}
	cyc := &core.Cycle{Phase: core.PhaseGroup, Index: 1}
	for i := 0; i < 16; i++ {
		d := time.Millisecond
		if i%4 == 0 {
			d = 10 * time.Millisecond
		}
		cyc.Tasks = append(cyc.Tasks, d)
	}
	tr.Cycles = []*core.Cycle{cyc}
	rr := Simulate(tr, 4, Overhead{}, core.RoundRobin)
	ws := Simulate(tr, 4, Overhead{}, core.WorkSharing)
	if ws.Elapsed > rr.Elapsed {
		t.Errorf("work-sharing (%v) slower than round-robin (%v) on skewed tasks", ws.Elapsed, rr.Elapsed)
	}
}

func TestSweepAndPeak(t *testing.T) {
	run := func(w int) (*core.Trace, error) {
		// Workload whose task count scales with w (like phase 1 groups).
		return uniformTrace(w, 1, time.Duration(1000/w)*time.Millisecond), nil
	}
	points, err := Sweep(run, []int{1, 2, 4, 8}, Overhead{}, core.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	if p := PeakWorkers(points); p != 8 {
		t.Errorf("peak = %d, want 8 under zero overhead", p)
	}
}

func TestEmptyTraceIsZero(t *testing.T) {
	r := Simulate(&core.Trace{}, 4, DefaultOverhead, core.RoundRobin)
	if r.Elapsed != 0 || r.Runtime != 0 || r.Speedup != 0 {
		t.Errorf("empty trace: %+v", r)
	}
}
