package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"testing"
)

// kernelFrameMagic mirrors the taxonomy package's kernel frame magic so
// the tests below can locate the kernel section inside a snapshot file.
var kernelFrameMagic = []byte("PAROWLKF")

// resealSnapshot recomputes the trailing whole-file CRC after a test has
// rewritten snapshot bytes, so corruption inside the kernel frame is
// exercised on an otherwise-valid file (a real torn write is caught by
// the outer CRC long before the kernel frame matters).
func resealSnapshot(data []byte) []byte {
	body := data[:len(data)-4]
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

// TestKernelCheckpointRoundTrip: a completed run with CompileKernel and
// Checkpoint persists its kernel; the resumed run adopts it, answers
// identically, and dispatches no new reasoner calls.
func TestKernelCheckpointRoundTrip(t *testing.T) {
	tb := exampleTBox()
	path := ckPath(t)
	ref := classify(t, tb, Options{Workers: 3, CompileKernel: true, Checkpoint: path})
	if ref.CheckpointError != nil {
		t.Fatalf("checkpoint error: %v", ref.CheckpointError)
	}
	if ref.Taxonomy.Kernel() == nil {
		t.Fatal("CompileKernel did not attach a kernel")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := decodeSnapshot(data)
	if err != nil {
		t.Fatalf("snapshot rejected: %v", err)
	}
	if snap.kernel == nil || snap.kernelErr != nil {
		t.Fatalf("snapshot kernel = %v, err = %v; want decoded kernel", snap.kernel, snap.kernelErr)
	}

	res := classify(t, tb, Options{Workers: 3, CompileKernel: true, ResumeFrom: path})
	if !res.Resumed || res.ResumeError != nil {
		t.Fatalf("Resumed=%v ResumeError=%v", res.Resumed, res.ResumeError)
	}
	if res.KernelError != nil {
		t.Fatalf("KernelError = %v, want nil", res.KernelError)
	}
	if res.Taxonomy.Kernel() == nil {
		t.Fatal("resumed run has no kernel")
	}
	if res.Stats.SubsTests != ref.Stats.SubsTests || res.Stats.SatTests != ref.Stats.SatTests {
		t.Fatalf("resumed run re-tested: %+v vs %+v", res.Stats, ref.Stats)
	}
	assertSameAnswers(t, ref, res)
}

// assertSameAnswers compares taxonomy structure and a sweep of kernel
// queries between two results.
func assertSameAnswers(t *testing.T, ref, res *Result) {
	t.Helper()
	if got, want := res.Taxonomy.Render(), ref.Taxonomy.Render(); got != want {
		t.Fatalf("taxonomy differs:\n got:\n%s\nwant:\n%s", got, want)
	}
	for _, a := range ref.Taxonomy.Nodes() {
		for _, b := range ref.Taxonomy.Nodes() {
			ca, cb := a.Canonical(), b.Canonical()
			if got, want := res.Taxonomy.IsAncestor(ca, cb), ref.Taxonomy.IsAncestor(ca, cb); got != want {
				t.Fatalf("IsAncestor(%s, %s) = %v, want %v", a.Label(), b.Label(), got, want)
			}
			if got, want := len(res.Taxonomy.LCA(ca, cb)), len(ref.Taxonomy.LCA(ca, cb)); got != want {
				t.Fatalf("LCA(%s, %s) size = %d, want %d", a.Label(), b.Label(), got, want)
			}
		}
		if got, want := res.Taxonomy.Depth(a.Canonical()), ref.Taxonomy.Depth(a.Canonical()); got != want {
			t.Fatalf("Depth(%s) = %d, want %d", a.Label(), got, want)
		}
	}
}

// TestCheckpointKernelCorruptFrameFallsBack: a bit flip inside the kernel
// frame (with the outer file CRC re-sealed, as a buggy writer would
// produce) must degrade the resume to recompilation — same taxonomy, same
// answers, KernelError wrapping ErrBadSnapshot — never reject the
// classification state or serve wrong answers.
func TestCheckpointKernelCorruptFrameFallsBack(t *testing.T) {
	tb := exampleTBox()
	path := ckPath(t)
	ref := classify(t, tb, Options{Workers: 2, CompileKernel: true, Checkpoint: path})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.Index(data, kernelFrameMagic)
	if idx < 0 {
		t.Fatal("snapshot carries no kernel frame")
	}
	// Flip a byte in the middle of the kernel frame's payload.
	bad := append([]byte(nil), data...)
	bad[idx+len(kernelFrameMagic)+20] ^= 0x20
	if err := os.WriteFile(path, resealSnapshot(bad), 0o644); err != nil {
		t.Fatal(err)
	}

	res := classify(t, tb, Options{Workers: 2, CompileKernel: true, ResumeFrom: path})
	if !res.Resumed || res.ResumeError != nil {
		t.Fatalf("corrupt kernel frame rejected the whole snapshot: Resumed=%v err=%v", res.Resumed, res.ResumeError)
	}
	if !errors.Is(res.KernelError, ErrBadSnapshot) {
		t.Fatalf("KernelError = %v, want ErrBadSnapshot", res.KernelError)
	}
	if res.Taxonomy.Kernel() == nil {
		t.Fatal("kernel was not recompiled after corrupt frame")
	}
	if got, want := res.Taxonomy.Render(), ref.Taxonomy.Render(); got != want {
		t.Fatalf("taxonomy differs after kernel fallback:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestCheckpointKernelMismatchRejected: a structurally valid kernel frame
// belonging to a different taxonomy (spliced in from another ontology's
// run) must fail adoption by fingerprint and trigger recompilation.
func TestCheckpointKernelMismatchRejected(t *testing.T) {
	tb := exampleTBox()
	path := ckPath(t)
	classify(t, tb, Options{Workers: 2, CompileKernel: true, Checkpoint: path})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	other := classify(t, chainTBox(5), Options{Workers: 2, CompileKernel: true})
	otherFrame := other.Taxonomy.Kernel().AppendBinary(nil)

	idx := bytes.Index(data, kernelFrameMagic)
	if idx < 0 {
		t.Fatal("snapshot carries no kernel frame")
	}
	spliced := append(append([]byte(nil), data[:idx]...), otherFrame...)
	if err := os.WriteFile(path, resealSnapshot(append(spliced, 0, 0, 0, 0)), 0o644); err != nil {
		t.Fatal(err)
	}

	res := classify(t, tb, Options{Workers: 2, CompileKernel: true, ResumeFrom: path})
	if !res.Resumed || res.ResumeError != nil {
		t.Fatalf("Resumed=%v ResumeError=%v", res.Resumed, res.ResumeError)
	}
	if !errors.Is(res.KernelError, ErrBadSnapshot) {
		t.Fatalf("KernelError = %v, want ErrBadSnapshot", res.KernelError)
	}
	if res.Taxonomy.Kernel() == nil {
		t.Fatal("kernel was not recompiled after mismatch")
	}
}

// TestCheckpointLegacyFileWithoutKernelSection: files written before the
// kernel section existed end right after the cache entries, and files
// written before the epoch section end right after the kernel marker;
// both must still decode (with epoch 0) and resume, with the kernel
// compiled fresh.
func TestCheckpointLegacyFileWithoutKernelSection(t *testing.T) {
	tb := exampleTBox()
	path := ckPath(t)
	classify(t, tb, Options{Workers: 2, Checkpoint: path})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A kernel-less modern file ends with hasKernel=0, the epoch section
	// (marker=1 + uint64), then the CRC; strip backwards to reconstruct
	// the two historical layouts.
	const tail = 1 + 9 + 4 // hasKernel marker + epoch section + CRC
	if data[len(data)-tail] != 0 {
		t.Fatal("expected hasKernel=0 before the epoch section")
	}
	if data[len(data)-tail+1] != 1 {
		t.Fatal("expected epoch marker after hasKernel=0")
	}
	// Pre-epoch layout: ends right after the hasKernel marker.
	preEpoch := resealSnapshot(append(append([]byte(nil), data[:len(data)-13]...), 0, 0, 0, 0))
	if snap, err := decodeSnapshot(preEpoch); err != nil {
		t.Fatalf("pre-epoch layout rejected: %v", err)
	} else if snap.epoch != 0 {
		t.Fatalf("pre-epoch layout decoded epoch %d, want 0", snap.epoch)
	}
	// Pre-kernel layout: ends right after the cache entries.
	legacy := resealSnapshot(append(append([]byte(nil), data[:len(data)-tail]...), 0, 0, 0, 0))
	snap, err := decodeSnapshot(legacy)
	if err != nil {
		t.Fatalf("legacy layout rejected: %v", err)
	}
	if snap.kernel != nil || snap.kernelErr != nil {
		t.Fatalf("legacy layout produced kernel=%v err=%v", snap.kernel, snap.kernelErr)
	}
	if snap.epoch != 0 {
		t.Fatalf("legacy layout decoded epoch %d, want 0", snap.epoch)
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	res := classify(t, tb, Options{Workers: 2, CompileKernel: true, ResumeFrom: path})
	if !res.Resumed || res.ResumeError != nil || res.KernelError != nil {
		t.Fatalf("Resumed=%v ResumeError=%v KernelError=%v", res.Resumed, res.ResumeError, res.KernelError)
	}
	if res.Taxonomy.Kernel() == nil {
		t.Fatal("kernel was not compiled on legacy resume")
	}
}

// TestSnapshotKernelDecodeFuzz extends the snapshot mutation fuzz to
// kernel-bearing files: mutations either fail with ErrBadSnapshot or, if
// only the kernel frame is damaged behind a re-sealed outer CRC, decode
// with kernelErr set — never panic, never yield a bound kernel silently.
func TestSnapshotKernelDecodeFuzz(t *testing.T) {
	tb := exampleTBox()
	path := ckPath(t)
	classify(t, tb, Options{Workers: 2, CompileKernel: true, Checkpoint: path})
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.Index(good, kernelFrameMagic)
	if idx < 0 {
		t.Fatal("no kernel frame in snapshot")
	}
	snap, err := decodeSnapshot(good)
	if err != nil || snap.kernel == nil {
		t.Fatalf("pristine kernel snapshot rejected: %v (kernel %v)", err, snap != nil && snap.kernel != nil)
	}
	// The epoch section (marker + uint64) trails the kernel frame; sweep
	// mutations over the kernel frame only and cover the epoch bytes
	// separately below.
	end := len(good) - 13 // epoch marker position
	if good[end] != 1 {
		t.Fatal("expected epoch marker after the kernel frame")
	}
	for i := idx; i < end; i++ {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x08
		snap, err := decodeSnapshot(resealSnapshot(bad))
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("byte %d: error does not wrap ErrBadSnapshot: %v", i, err)
			}
			continue
		}
		if snap.kernel != nil {
			t.Fatalf("byte %d: corrupted kernel frame decoded into a kernel", i)
		}
		if !errors.Is(snap.kernelErr, ErrBadSnapshot) {
			t.Fatalf("byte %d: kernelErr = %v, want ErrBadSnapshot", i, snap.kernelErr)
		}
	}
	// A damaged epoch marker must reject the file outright...
	bad := append([]byte(nil), good...)
	bad[end] ^= 0x08
	if _, err := decodeSnapshot(resealSnapshot(bad)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("epoch marker flip: error = %v, want ErrBadSnapshot", err)
	}
	// ...while a flipped epoch value is simply a different (valid) epoch:
	// the field is a counter, not classification state.
	bad = append([]byte(nil), good...)
	bad[end+1] ^= 0x08
	flipped, err := decodeSnapshot(resealSnapshot(bad))
	if err != nil || flipped.kernel == nil {
		t.Fatalf("epoch value flip rejected the snapshot: %v (kernel %v)", err, flipped != nil && flipped.kernel != nil)
	}
	if flipped.epoch == snap.epoch {
		t.Fatal("epoch value flip did not change the decoded epoch")
	}
}
