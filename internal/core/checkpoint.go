package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"parowl/internal/bitset"
	"parowl/internal/dl"
	"parowl/internal/reasoner"
	"parowl/internal/taxonomy"
)

// Checkpoint snapshots make a classification run crash-safe: the shared
// P/K/tested bitsets, satisfiability states, undecided pairs, and the
// plug-in's settled cache entries are written to disk at phase/batch
// boundaries, and Options.ResumeFrom restores them so a re-run skips all
// settled work and converges to the same taxonomy.
//
// Consistency: a snapshot is taken only at pool quiescence — under the
// barrier policies between batch barriers, under Async at an epoch edge
// (the pending-task counter at zero). In either case every claimed pair
// (a cleared P bit in optimized mode, a set tested bit in basic mode) has
// its outcome fully recorded in K or in the undecided list, so restoring
// the snapshot can never lose a claim's answer. Each quiescence point
// closes an epoch, and the snapshot records the epoch count it was cut
// at (monotonic across resumes). A poisoned run (s.failed()) is never
// snapshotted: its workers may have claimed pairs whose outcome was
// abandoned mid-flight.
//
// File format (all integers little-endian):
//
//	[8]byte  magic "PAROWLCK"
//	uint32   version (currently 1)
//	uint64   ontology fingerprint (FNV-1a over names + axioms)
//	uint8    mode (1 = optimized, 0 = basic)
//	uint8    prepassed
//	uint8    phase (0 = random, 1 = group)
//	uint32   n (concept count incl. ⊤)
//	10×int64 counters
//	n frames P, n frames K (bitset.Atomic binary frames, self-checksummed)
//	uint8    hasTested; if 1, a bitset.Matrix frame
//	n bytes  satState values (0/1/2)
//	uint32   undecided count; per entry: int32 sup (−1 = nil), int32 sub,
//	         uint16 reason length, reason bytes
//	uint32   sat cache count; per entry: uint64 key, uint8 val
//	uint32   subs cache count; per entry: uint64 key, uint8 val
//	uint8    hasKernel (optional section; absent in pre-kernel files);
//	         if 1, a taxonomy kernel frame (versioned, self-checksummed)
//	uint8    epoch marker (1; optional section, absent in pre-epoch
//	         files); then uint64 epoch — the quiescence count the
//	         snapshot was cut at
//	uint32   CRC-32 (IEEE) of everything above
//
// The trailing whole-file checksum catches truncation; the per-bitset
// frame checksums catch local corruption with a better error. The kernel
// section is doubly optional: files written before it existed decode
// fine (no trailing bytes after the caches), and a kernel frame that
// fails its own validation only degrades the resume to recompilation —
// the classification state in P/K is never rejected because of it. The
// epoch section follows the same trailing-optional pattern one position
// later: legacy files simply end earlier and restore with epoch 0.

// checkpointMagic identifies parowl checkpoint files.
var checkpointMagic = [8]byte{'P', 'A', 'R', 'O', 'W', 'L', 'C', 'K'}

// checkpointVersion is bumped on any incompatible format change.
const checkpointVersion = 1

// ErrBadSnapshot reports a checkpoint file that is truncated, corrupted,
// of an unknown version, or inconsistent with the run it is restored
// into. All snapshot decode/restore errors wrap it; classification
// responds by falling back to a clean run, never by producing a wrong
// taxonomy.
var ErrBadSnapshot = errors.New("core: invalid checkpoint snapshot")

// FingerprintTBox hashes the ontology content a snapshot depends on: the
// named-concept sequence (whose first-use order fixes the classifier's
// index space and the factory's dense IDs) and every axiom's kind and
// rendered sides. Two loads of the same ontology fingerprint equal; any
// axiom or naming change invalidates old snapshots.
func FingerprintTBox(t *dl.TBox) uint64 {
	h := fnv.New64a()
	var num [8]byte
	for _, c := range t.NamedConcepts() {
		h.Write([]byte(c.String()))
		h.Write([]byte{0})
	}
	h.Write([]byte{0xFF})
	for _, ax := range t.Axioms() {
		h.Write([]byte{byte(ax.Kind)})
		for _, c := range []*dl.Concept{ax.Sub, ax.Sup} {
			if c != nil {
				h.Write([]byte(c.String()))
			}
			h.Write([]byte{0})
		}
		for _, r := range []*dl.Role{ax.SubRole, ax.SupRole} {
			if r != nil {
				h.Write([]byte(r.Name))
			}
			h.Write([]byte{0})
		}
	}
	binary.LittleEndian.PutUint64(num[:], uint64(len(t.Axioms())))
	h.Write(num[:])
	return h.Sum64()
}

// snapshot is a decoded checkpoint, not yet bound to a run.
type snapshot struct {
	fingerprint uint64
	optimized   bool
	prepassed   bool
	phase       Phase
	n           int
	counters    [10]int64
	P, K        []*bitset.Atomic
	tested      *bitset.Matrix
	satState    []int32
	undecided   []undecidedRef
	cache       reasoner.CacheSnapshot
	// kernel is the decoded (unbound) taxonomy query kernel, when the
	// snapshot carried one and it decoded cleanly; kernelErr records a
	// kernel frame that failed validation (the snapshot itself stays
	// valid — resume just recompiles).
	kernel    *taxonomy.Kernel
	kernelErr error
	// epoch is the quiescence count the snapshot was cut at (0 for files
	// written before the epoch section existed).
	epoch int64
}

// undecidedRef is an Undecided entry with concepts replaced by their
// state indexes (−1 = nil Sup, the sat?-test case).
type undecidedRef struct {
	sup, sub int32
	reason   string
}

// encodeSnapshot serializes the current shared state. Call only between
// barriers on a non-failed run; see the consistency note above. kern,
// when non-nil, is appended as the optional kernel section so a resume
// of a completed run skips recompiling the query kernel.
func (s *state) encodeSnapshot(phase Phase, cache reasoner.CacheSnapshot, kern *taxonomy.Kernel, epoch int64) []byte {
	phaseByte := byte(0)
	if phase == PhaseGroup {
		phaseByte = 1
	}
	modeByte := byte(0)
	if s.optimized {
		modeByte = 1
	}
	prepassByte := byte(0)
	if s.prepassed {
		prepassByte = 1
	}
	b := make([]byte, 0, 64+2*s.n*(s.n/8+16))
	b = append(b, checkpointMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, checkpointVersion)
	b = binary.LittleEndian.AppendUint64(b, FingerprintTBox(s.tbox))
	b = append(b, modeByte, prepassByte, phaseByte)
	b = binary.LittleEndian.AppendUint32(b, uint32(s.n))
	for _, c := range []int64{
		s.satTests.Load(), s.subsTests.Load(), s.pruned.Load(),
		s.toldHits.Load(), s.preSeeded.Load(), s.filterHits.Load(),
		s.timedOut.Load(), s.recovered.Load(),
		s.nodeBudget.Load(), s.branchBudget.Load(),
	} {
		b = binary.LittleEndian.AppendUint64(b, uint64(c))
	}
	for _, p := range s.P {
		b = p.AppendBinary(b)
	}
	for _, k := range s.K {
		b = k.AppendBinary(b)
	}
	if s.tested != nil {
		b = append(b, 1)
		b = s.tested.AppendBinary(b)
	} else {
		b = append(b, 0)
	}
	for i := 0; i < s.n; i++ {
		b = append(b, byte(s.satState[i].Load()))
	}
	s.undecidedMu.Lock()
	und := append([]Undecided(nil), s.undecided...)
	s.undecidedMu.Unlock()
	b = binary.LittleEndian.AppendUint32(b, uint32(len(und)))
	for _, u := range und {
		sup := int32(-1)
		if u.Sup != nil {
			sup = int32(s.index[u.Sup])
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(sup))
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(s.index[u.Sub])))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(u.Reason)))
		b = append(b, u.Reason...)
	}
	for _, entries := range [][]reasoner.CacheEntry{cache.Sat, cache.Subs} {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(entries)))
		for _, e := range entries {
			b = binary.LittleEndian.AppendUint64(b, e.Key)
			v := byte(0)
			if e.Val {
				v = 1
			}
			b = append(b, v)
		}
	}
	if kern != nil {
		b = append(b, 1)
		b = kern.AppendBinary(b)
	} else {
		b = append(b, 0)
	}
	b = append(b, 1) // epoch marker
	b = binary.LittleEndian.AppendUint64(b, uint64(epoch))
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// snapReader is a bounds-checked cursor over an encoded snapshot.
type snapReader struct {
	data []byte
	err  error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.data) < n {
		r.err = fmt.Errorf("%w: truncated (need %d more bytes)", ErrBadSnapshot, n-len(r.data))
		return nil
	}
	out := r.data[:n]
	r.data = r.data[n:]
	return out
}

func (r *snapReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *snapReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *snapReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// decodeSnapshot parses and structurally validates an encoded checkpoint.
// It does not check the snapshot against any particular run; restore does
// that.
func decodeSnapshot(data []byte) (*snapshot, error) {
	if len(data) < len(checkpointMagic)+8 {
		return nil, fmt.Errorf("%w: file too short (%d bytes)", ErrBadSnapshot, len(data))
	}
	if string(data[:8]) != string(checkpointMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	// Whole-file checksum first: it distinguishes truncation/corruption
	// from version or compatibility problems.
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("%w: file checksum mismatch (%08x != %08x)", ErrBadSnapshot, got, want)
	}
	r := &snapReader{data: body[8:]}
	if v := r.u32(); v != checkpointVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrBadSnapshot, v, checkpointVersion)
	}
	snap := &snapshot{fingerprint: r.u64()}
	snap.optimized = r.u8() == 1
	snap.prepassed = r.u8() == 1
	switch r.u8() {
	case 0:
		snap.phase = PhaseRandom
	case 1:
		snap.phase = PhaseGroup
	default:
		return nil, fmt.Errorf("%w: unknown phase byte", ErrBadSnapshot)
	}
	snap.n = int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	// n is validated against the byte budget before any n-sized
	// allocation: each concept contributes ≥ two bitset frames.
	if snap.n < 1 || snap.n > len(r.data)/16 {
		return nil, fmt.Errorf("%w: implausible concept count %d", ErrBadSnapshot, snap.n)
	}
	for i := range snap.counters {
		snap.counters[i] = int64(r.u64())
	}
	if r.err != nil {
		return nil, r.err
	}
	readAtomics := func(dst []*bitset.Atomic, what string) error {
		for i := range dst {
			a, rest, err := bitset.ReadAtomic(r.data)
			if err != nil {
				return fmt.Errorf("%w: %s[%d]: %v", ErrBadSnapshot, what, i, err)
			}
			if a.Len() != snap.n {
				return fmt.Errorf("%w: %s[%d] has %d bits, want %d", ErrBadSnapshot, what, i, a.Len(), snap.n)
			}
			dst[i], r.data = a, rest
		}
		return nil
	}
	snap.P = make([]*bitset.Atomic, snap.n)
	snap.K = make([]*bitset.Atomic, snap.n)
	if err := readAtomics(snap.P, "P"); err != nil {
		return nil, err
	}
	if err := readAtomics(snap.K, "K"); err != nil {
		return nil, err
	}
	if r.u8() == 1 {
		m, rest, err := bitset.ReadMatrix(r.data)
		if err != nil {
			return nil, fmt.Errorf("%w: tested: %v", ErrBadSnapshot, err)
		}
		snap.tested, r.data = m, rest
	}
	snap.satState = make([]int32, snap.n)
	for i, v := range r.take(snap.n) {
		if v > 2 {
			return nil, fmt.Errorf("%w: satState[%d] = %d", ErrBadSnapshot, i, v)
		}
		snap.satState[i] = int32(v)
	}
	nu := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if nu > len(r.data)/10 { // each entry is ≥ 10 bytes
		return nil, fmt.Errorf("%w: implausible undecided count %d", ErrBadSnapshot, nu)
	}
	snap.undecided = make([]undecidedRef, 0, nu)
	for i := 0; i < nu; i++ {
		sup := int32(r.u32())
		sub := int32(r.u32())
		reason := string(r.take(int(r.u16())))
		if r.err != nil {
			return nil, r.err
		}
		if sup < -1 || sup >= int32(snap.n) || sub < 0 || sub >= int32(snap.n) {
			return nil, fmt.Errorf("%w: undecided[%d] indexes (%d, %d) out of range", ErrBadSnapshot, i, sup, sub)
		}
		snap.undecided = append(snap.undecided, undecidedRef{sup: sup, sub: sub, reason: reason})
	}
	readEntries := func(what string) ([]reasoner.CacheEntry, error) {
		ne := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		if ne > len(r.data)/9 { // 8-byte key + 1-byte val
			return nil, fmt.Errorf("%w: implausible %s cache count %d", ErrBadSnapshot, what, ne)
		}
		out := make([]reasoner.CacheEntry, 0, ne)
		for i := 0; i < ne; i++ {
			key := r.u64()
			val := r.u8()
			if val > 1 {
				return nil, fmt.Errorf("%w: %s cache value %d", ErrBadSnapshot, what, val)
			}
			out = append(out, reasoner.CacheEntry{Key: key, Val: val == 1})
		}
		return out, nil
	}
	var err error
	if snap.cache.Sat, err = readEntries("sat"); err != nil {
		return nil, err
	}
	if snap.cache.Subs, err = readEntries("subs"); err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, r.err
	}
	// Optional kernel section. Files written before it existed end here;
	// newer files always carry the hasKernel byte. A kernel frame that
	// fails its own validation is recorded in kernelErr and skipped: the
	// P/K classification state above it is intact, so rejecting the whole
	// snapshot would throw away settled work only to rebuild the same
	// kernel anyway.
	if len(r.data) > 0 {
		switch r.u8() {
		case 0:
		case 1:
			k, rest, err := taxonomy.DecodeKernel(r.data)
			if err != nil {
				snap.kernelErr = fmt.Errorf("%w: kernel frame: %v", ErrBadSnapshot, err)
				r.data = nil
			} else {
				snap.kernel = k
				r.data = rest
			}
		default:
			return nil, fmt.Errorf("%w: unknown kernel marker", ErrBadSnapshot)
		}
	}
	// Optional epoch section, same trailing pattern one position later:
	// files written before epochs existed end at the caches or the kernel
	// frame and restore with epoch 0. (A corrupt kernel frame drops the
	// trailing bytes above, taking the epoch with it — losing a counter,
	// not classification state.)
	if len(r.data) > 0 {
		if m := r.u8(); m != 1 {
			return nil, fmt.Errorf("%w: unknown epoch marker %d", ErrBadSnapshot, m)
		}
		snap.epoch = int64(r.u64())
		if r.err != nil {
			return nil, r.err
		}
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(r.data))
	}
	return snap, nil
}

// restoreSnapshot validates snap against this run's ontology and
// configuration and, on success, replaces the freshly initialized shared
// state with the snapshot's. Must run before any worker touches the
// state. The returned error always wraps ErrBadSnapshot; the state is
// untouched when it fires.
func (s *state) restoreSnapshot(snap *snapshot) error {
	if got := FingerprintTBox(s.tbox); got != snap.fingerprint {
		return fmt.Errorf("%w: ontology fingerprint %016x does not match snapshot %016x (different or modified ontology)",
			ErrBadSnapshot, got, snap.fingerprint)
	}
	if snap.n != s.n {
		return fmt.Errorf("%w: snapshot has %d concepts, run has %d", ErrBadSnapshot, snap.n, s.n)
	}
	if snap.optimized != s.optimized {
		return fmt.Errorf("%w: snapshot mode %v does not match run mode %v",
			ErrBadSnapshot, Mode(b2i(!snap.optimized)), Mode(b2i(!s.optimized)))
	}
	if s.optimized != (snap.tested == nil) {
		return fmt.Errorf("%w: tested matrix presence inconsistent with mode", ErrBadSnapshot)
	}
	copy(s.P, snap.P)
	copy(s.K, snap.K)
	s.tested = snap.tested
	for i, v := range snap.satState {
		s.satState[i].Store(v)
	}
	s.prepassed = snap.prepassed
	s.satTests.Store(snap.counters[0])
	s.subsTests.Store(snap.counters[1])
	s.pruned.Store(snap.counters[2])
	s.toldHits.Store(snap.counters[3])
	s.preSeeded.Store(snap.counters[4])
	s.filterHits.Store(snap.counters[5])
	s.timedOut.Store(snap.counters[6])
	s.recovered.Store(snap.counters[7])
	s.nodeBudget.Store(snap.counters[8])
	s.branchBudget.Store(snap.counters[9])
	s.epochBase = snap.epoch
	s.undecided = s.undecided[:0]
	for _, u := range snap.undecided {
		var sup *dl.Concept
		if u.sup >= 0 {
			sup = s.named[u.sup]
		}
		s.undecided = append(s.undecided, Undecided{Sup: sup, Sub: s.named[u.sub], Reason: u.reason})
	}
	return nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// readSnapshotFile loads and decodes one checkpoint file.
func readSnapshotFile(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return decodeSnapshot(data)
}

// writeFileAtomic writes data to path via a same-directory temp file and
// rename, so a crash mid-write leaves either the old snapshot or the new
// one, never a torn file.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err2 := f.Sync(); err == nil {
		err = err2
	}
	if err2 := f.Close(); err == nil {
		err = err2
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}

// checkpointer writes periodic snapshots from the classification
// coordinator. All methods run on the coordinating goroutine between
// barriers, never concurrently.
type checkpointer struct {
	path     string
	interval time.Duration
	porter   reasoner.CachePorter // may be nil
	last     time.Time
	wrote    int   // snapshots written
	err      error // first write failure, reported via Result.CheckpointError
}

// maybeWrite snapshots the state if the interval has elapsed (an interval
// ≤ 0 writes at every boundary). force overrides the interval for
// phase-final snapshots. Failed runs are never snapshotted. epoch is the
// quiescence count the caller is at; it is recorded in the snapshot.
func (c *checkpointer) maybeWrite(s *state, phase Phase, force bool, epoch int64) {
	c.write(s, phase, force, nil, epoch)
}

// writeKernel force-writes a final snapshot that also carries the
// compiled taxonomy kernel, so a resume (or server restart) of a
// completed run skips recompilation.
func (c *checkpointer) writeKernel(s *state, kern *taxonomy.Kernel, epoch int64) {
	c.write(s, PhaseGroup, true, kern, epoch)
}

// due reports whether the next maybeWrite would pass the interval gate.
// The Async driver asks before paying for a quiescence epoch: with
// checkpointing off (nil receiver) or the interval not yet elapsed, it
// keeps streaming instead of draining the pool for a snapshot nobody
// would write.
func (c *checkpointer) due() bool {
	if c == nil {
		return false
	}
	return c.interval <= 0 || c.last.IsZero() || time.Since(c.last) >= c.interval
}

func (c *checkpointer) write(s *state, phase Phase, force bool, kern *taxonomy.Kernel, epoch int64) {
	if c == nil || s.failed() {
		return
	}
	if !force && c.interval > 0 && !c.last.IsZero() && time.Since(c.last) < c.interval {
		return
	}
	var cache reasoner.CacheSnapshot
	if c.porter != nil {
		cache = c.porter.ExportCache()
	}
	if err := writeFileAtomic(c.path, s.encodeSnapshot(phase, cache, kern, epoch)); err != nil {
		if c.err == nil {
			c.err = fmt.Errorf("core: checkpoint write: %w", err)
		}
		return
	}
	c.wrote++
	c.last = time.Now()
}

// firstErr returns the first write failure (nil receiver safe).
func (c *checkpointer) firstErr() error {
	if c == nil {
		return nil
	}
	return c.err
}
