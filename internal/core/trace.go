package core

import (
	"fmt"
	"strings"
	"time"
)

// Phase identifies which classification phase produced a cycle or task.
type Phase string

// Phases of the classification pipeline.
const (
	PhasePrepass   Phase = "prepass"   // optional EL pre-saturation seeding
	PhaseRandom    Phase = "random"    // phase 1: random division
	PhaseGroup     Phase = "group"     // phase 2: group division
	PhaseHierarchy Phase = "hierarchy" // phase 3: divide-and-conquer taxonomy
)

// Cycle records one division cycle: the tasks dispatched (with their
// charged costs, virtual or measured), the reasoner-call counters, and the
// remaining-possible count after the barrier. Figure 11's Possible and
// runtime ratios are computed from these records, and the virtual-time
// scheduler (internal/schedsim) replays the task durations on w simulated
// workers to produce the speedup curves of Figures 9 and 10.
type Cycle struct {
	Phase Phase
	Index int // cycle number within its phase, starting at 1

	// Tasks holds one duration per dispatched task (a group), in
	// dispatch order — the round-robin assignment maps task i to worker
	// i mod w.
	Tasks []time.Duration

	// TaskWorkers records, parallel to Tasks, the pool worker that
	// actually executed each task (-1 for work charged outside the pool,
	// e.g. the prepass seeding pseudo-task). Under RoundRobin this
	// replays i mod w; under WorkStealing the assignment is dynamic and
	// this is the only record of it.
	TaskWorkers []int

	// Steals and StolenFrom are per-worker steal counters for the cycle
	// (index = worker id; nil unless the run used WorkStealing or Async):
	// Steals[w] counts tasks worker w took from other workers' queues,
	// StolenFrom[w] counts tasks thieves took from worker w's queues.
	Steals     []int64
	StolenFrom []int64

	// WaitNanos[w] is the time worker w spent parked waiting for work
	// during the cycle, in nanoseconds (every policy). Under a barrier
	// policy this is the straggler tail: an early finisher parks until
	// the batch's last task completes and the next batch wakes it. Async
	// exists to shrink exactly this number.
	WaitNanos []int64

	// WorkerLoads is the charged load each pool worker carried during
	// the cycle (index = worker id); the paper's Sec. V-C load-balancing
	// analysis compares these across the two phases.
	WorkerLoads []time.Duration

	// SubsTests and SatTests count reasoner calls during this cycle;
	// Pruned counts pairs resolved without a call. ToldHits counts tests
	// answered from the told-subsumer closure (optional optimization).
	// PreSeeded counts tests resolved from the EL prepass seeding and
	// FilterHits the subs? dispatches skipped by the model filter (the
	// cheap-first pipeline's counters; zero with the pipeline off).
	SubsTests  int64
	SatTests   int64
	Pruned     int64
	ToldHits   int64
	PreSeeded  int64
	FilterHits int64

	// RemainingPossible is |R_O| after the cycle's barrier.
	RemainingPossible int64
}

// Runtime returns the cycle's summed task durations — the paper's
// "runtime" (sum of runtimes of all threads) restricted to this cycle.
func (c *Cycle) Runtime() time.Duration {
	var total time.Duration
	for _, t := range c.Tasks {
		total += t
	}
	return total
}

// Imbalance is max worker load divided by mean worker load for the cycle
// (1.0 = perfectly balanced; large values mean stragglers). Workers that
// received no task still count toward the mean.
func (c *Cycle) Imbalance() float64 {
	if len(c.WorkerLoads) == 0 {
		return 0
	}
	var sum, max time.Duration
	for _, l := range c.WorkerLoads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(c.WorkerLoads))
	return float64(max) / mean
}

// TotalSteals sums the cycle's steal counters.
func (c *Cycle) TotalSteals() int64 {
	var n int64
	for _, s := range c.Steals {
		n += s
	}
	return n
}

// Trace is the full instrumentation record of one classification run.
type Trace struct {
	InitialPossible int64
	Cycles          []*Cycle

	// Workers is the pool size the run used.
	Workers int
	// Scheduling is the policy the pool ran under.
	Scheduling Scheduling
	// WallElapsed is the measured wall-clock duration of the whole run.
	WallElapsed time.Duration
}

// TotalRuntime sums all task durations across all cycles (the paper's
// "runtime": the sum of the runtimes of all threads).
func (t *Trace) TotalRuntime() time.Duration {
	var total time.Duration
	for _, c := range t.Cycles {
		total += c.Runtime()
	}
	return total
}

// TotalSubsTests counts reasoner subsumption calls across the run.
func (t *Trace) TotalSubsTests() int64 {
	var n int64
	for _, c := range t.Cycles {
		n += c.SubsTests
	}
	return n
}

// TotalPruned counts pairs resolved without a reasoner call.
func (t *Trace) TotalPruned() int64 {
	var n int64
	for _, c := range t.Cycles {
		n += c.Pruned
	}
	return n
}

// TotalSteals counts tasks that changed workers across the run
// (WorkStealing only; zero otherwise).
func (t *Trace) TotalSteals() int64 {
	var n int64
	for _, c := range t.Cycles {
		n += c.TotalSteals()
	}
	return n
}

// WorkerWaits aggregates the time each worker spent parked waiting for
// work over the whole run.
func (t *Trace) WorkerWaits() []time.Duration {
	waits := make([]time.Duration, t.Workers)
	for _, c := range t.Cycles {
		for w, ns := range c.WaitNanos {
			if w >= 0 && w < len(waits) {
				waits[w] += time.Duration(ns)
			}
		}
	}
	return waits
}

// TotalWait sums the parked time across all workers and cycles.
func (t *Trace) TotalWait() time.Duration {
	var total time.Duration
	for _, w := range t.WorkerWaits() {
		total += w
	}
	return total
}

// WorkerTotals aggregates the charged load each worker carried over the
// whole run.
func (t *Trace) WorkerTotals() []time.Duration {
	loads := make([]time.Duration, t.Workers)
	for _, c := range t.Cycles {
		for w, l := range c.WorkerLoads {
			if w >= 0 && w < len(loads) {
				loads[w] += l
			}
		}
	}
	return loads
}

// OverallImbalance is max worker load divided by mean worker load,
// aggregated over the whole run (1.0 = perfectly balanced).
func (t *Trace) OverallImbalance() float64 {
	loads := t.WorkerTotals()
	if len(loads) == 0 {
		return 0
	}
	var sum, max time.Duration
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) / (float64(sum) / float64(len(loads)))
}

// LoadSummary renders the per-worker load, wait, and steal-count table
// for the whole run (the paper's Sec. V-C load-balancing table, extended
// with the stealing counters when the run used WorkStealing or Async).
// The wait column is each worker's parked time — the straggler tail the
// barrier-free Async policy is built to shrink.
func (t *Trace) LoadSummary() string {
	loads := t.WorkerTotals()
	waits := t.WorkerWaits()
	steals := make([]int64, t.Workers)
	stolen := make([]int64, t.Workers)
	haveSteals := false
	for _, c := range t.Cycles {
		for w, n := range c.Steals {
			if w < len(steals) {
				steals[w] += n
				haveSteals = true
			}
		}
		for w, n := range c.StolenFrom {
			if w < len(stolen) {
				stolen[w] += n
			}
		}
	}
	var b strings.Builder
	for w, l := range loads {
		fmt.Fprintf(&b, "worker %2d load=%-12v wait=%-12v", w, l, waits[w])
		if haveSteals {
			fmt.Fprintf(&b, " steals=%-5d stolenFrom=%-5d", steals[w], stolen[w])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "imbalance (max/mean): %.2f, total wait: %v", t.OverallImbalance(), t.TotalWait())
	if haveSteals {
		fmt.Fprintf(&b, ", total steals: %d", t.TotalSteals())
	}
	b.WriteByte('\n')
	return b.String()
}

// PossibleRatio computes the paper's Definition 3 for the cycle at
// position i (0-based over all cycles):
//
//	Possible = (InitialPossible − RemainingPossible_i) / InitialPossible
//
// expressed in percent, as plotted in Fig. 11.
func (t *Trace) PossibleRatio(i int) float64 {
	if t.InitialPossible == 0 {
		return 0
	}
	rem := t.Cycles[i].RemainingPossible
	return 100 * float64(t.InitialPossible-rem) / float64(t.InitialPossible)
}

// RuntimeRatio computes the accumulated cycle runtime through cycle i
// divided by the total runtime, in percent (Fig. 11's second series).
func (t *Trace) RuntimeRatio(i int) float64 {
	total := t.TotalRuntime()
	if total == 0 {
		return 0
	}
	var acc time.Duration
	for j := 0; j <= i && j < len(t.Cycles); j++ {
		acc += t.Cycles[j].Runtime()
	}
	return 100 * float64(acc) / float64(total)
}

// String renders a per-cycle summary table.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "initial possible: %d, workers: %d\n", t.InitialPossible, t.Workers)
	for i, c := range t.Cycles {
		fmt.Fprintf(&b, "cycle %2d %-9s tasks=%-4d tests=%-6d pruned=%-6d preseed=%-6d filter=%-6d remaining=%-8d possible=%5.1f%% runtime=%5.1f%% imbalance=%.2f",
			i+1, c.Phase, len(c.Tasks), c.SubsTests, c.Pruned, c.PreSeeded, c.FilterHits, c.RemainingPossible,
			t.PossibleRatio(i), t.RuntimeRatio(i), c.Imbalance())
		if c.Steals != nil {
			fmt.Fprintf(&b, " steals=%d", c.TotalSteals())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
