package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"parowl/internal/dl"
	"parowl/internal/el"
	"parowl/internal/reasoner"
	"parowl/internal/tableau"
)

// exampleTBox builds the six-concept ontology used by the paper's running
// examples (3.1-3.3, 4.1): A ≡ ⊤ with B, C below A, E below B, and D, F
// below C.
func exampleTBox() *dl.TBox {
	tb := dl.NewTBox("example")
	f := tb.Factory
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	d, e, ff := tb.Declare("D"), tb.Declare("E"), tb.Declare("F")
	tb.EquivalentClasses(a, f.Top())
	tb.SubClassOf(b, a)
	tb.SubClassOf(c, a)
	tb.SubClassOf(e, b)
	tb.SubClassOf(d, c)
	tb.SubClassOf(ff, c)
	return tb
}

func tableauFactory(t *dl.TBox) reasoner.Interface {
	return tableau.New(t, tableau.Options{})
}

func classify(t *testing.T, tb *dl.TBox, opts Options) *Result {
	t.Helper()
	if opts.Reasoner == nil {
		opts.Reasoner = tableauFactory(tb)
	}
	res, err := Classify(tb, opts)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	return res
}

// TestExample33Hierarchy reproduces the paper's Example 3.3: with
// K_A ⊇ {B,C,D,E,F}, K_B = {E}, K_C = {D,F}, the partial hierarchies must
// be H_A = {B,C}, H_B = {E}, H_C = {D,F}, with A ≡ ⊤ (Fig. 4).
func TestExample33Hierarchy(t *testing.T) {
	tb := exampleTBox()
	res := classify(t, tb, Options{Workers: 3})
	tax := res.Taxonomy
	f := tb.Factory
	a := f.Name("A")
	if tax.NodeOf(a) != tax.Top() {
		t.Fatalf("A should be equivalent to ⊤; node = %v", tax.NodeOf(a).Label())
	}
	wantChildren := map[string][]string{
		"A": {"B", "C"},
		"B": {"E"},
		"C": {"D", "F"},
	}
	for parent, kids := range wantChildren {
		pn := tax.NodeOf(f.Name(parent))
		var got []string
		for _, ch := range pn.Children() {
			if ch != tax.Bottom() {
				got = append(got, ch.Canonical().Name)
			}
		}
		if len(got) != len(kids) {
			t.Errorf("H_%s = %v, want %v", parent, got, kids)
			continue
		}
		for _, k := range kids {
			if !tax.IsAncestor(f.Name(parent), f.Name(k)) {
				t.Errorf("%s should be an ancestor of %s", parent, k)
			}
		}
	}
}

// TestExample32Schedule reproduces Example 3.2 / Table III structurally:
// with six groups and three workers, round-robin dispatch must assign
// groups 0,3 to worker 1, groups 1,4 to worker 2, groups 2,5 to worker 3.
func TestExample32Schedule(t *testing.T) {
	p := newPool(3, RoundRobin)
	defer p.close()
	var slots []int
	p.submitMu.Lock()
	for g := 0; g < 6; g++ {
		slots = append(slots, p.slotFor())
	}
	p.submitMu.Unlock()
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("slots = %v, want %v (Table III round-robin)", slots, want)
		}
	}
}

func TestStatsAndPruning(t *testing.T) {
	tb := exampleTBox()
	res := classify(t, tb, Options{Workers: 2, Mode: Optimized, CollectTrace: true, RandomCycles: 2})
	if res.Stats.SubsTests == 0 {
		t.Error("no subsumption tests recorded")
	}
	// The chain A ⊒ B ⊒ E guarantees at least one pruning opportunity
	// across seeds... not strictly for every order, so just check the
	// trace accounting is consistent.
	if res.Trace == nil {
		t.Fatal("trace missing")
	}
	if res.Trace.InitialPossible == 0 {
		t.Error("InitialPossible = 0")
	}
	last := res.Trace.Cycles[len(res.Trace.Cycles)-1]
	if last.Phase != PhaseHierarchy {
		t.Errorf("last cycle = %v, want hierarchy", last.Phase)
	}
	// All pairs resolved: the cycle before hierarchy must report 0
	// remaining.
	grp := res.Trace.Cycles[len(res.Trace.Cycles)-2]
	if grp.RemainingPossible != 0 {
		t.Errorf("remaining after group phase = %d", grp.RemainingPossible)
	}
	var total int64
	for _, c := range res.Trace.Cycles {
		total += c.SubsTests
	}
	if total != res.Stats.SubsTests {
		t.Errorf("trace tests %d != stats %d", total, res.Stats.SubsTests)
	}
}

// TestOptimizedReducesTests checks the Section IV claim: pruning resolves
// pairs without testing, so optimized mode needs fewer reasoner calls
// than the full 2·C(n,2) symmetric budget.
func TestOptimizedReducesTests(t *testing.T) {
	tb := chainTBox(12)
	res := classify(t, tb, Options{Workers: 4, Mode: Optimized})
	n := int64(tb.NumNamed() + 1)
	full := n * (n - 1) // both directions of every pair
	if res.Stats.SubsTests >= full {
		t.Errorf("optimized used %d tests, full budget is %d", res.Stats.SubsTests, full)
	}
	if res.Stats.Pruned == 0 {
		t.Error("no pairs pruned on a 12-chain")
	}
}

// chainTBox builds A0 ⊒ A1 ⊒ ... ⊒ A(n-1).
func chainTBox(n int) *dl.TBox {
	tb := dl.NewTBox("chain")
	prev := tb.Declare("A0")
	for i := 1; i < n; i++ {
		c := tb.Declare(fmt.Sprintf("A%d", i))
		tb.SubClassOf(c, prev)
		prev = c
	}
	return tb
}

func TestAgainstBruteForceChain(t *testing.T) {
	tb := chainTBox(8)
	want, err := SequentialBruteForce(tb, tableauFactory(tb))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Basic, Optimized} {
		for _, w := range []int{1, 3, 8} {
			res := classify(t, tb, Options{Workers: w, Mode: mode, Seed: int64(w)})
			if !res.Taxonomy.Equal(want) {
				t.Errorf("mode=%v w=%d:\n got:\n%s\nwant:\n%s", mode, w,
					res.Taxonomy.Fingerprint(), want.Fingerprint())
			}
		}
	}
}

func TestUnsatisfiableConceptsGoToBottom(t *testing.T) {
	tb := dl.NewTBox("unsat")
	f := tb.Factory
	a, b, u := tb.Declare("A"), tb.Declare("B"), tb.Declare("U")
	tb.SubClassOf(u, a)
	tb.SubClassOf(u, f.Not(a))
	tb.SubClassOf(b, a)
	res := classify(t, tb, Options{Workers: 2})
	if res.Taxonomy.NodeOf(u) != res.Taxonomy.Bottom() {
		t.Error("U not classified as ⊥")
	}
	if !res.Taxonomy.IsAncestor(a, b) {
		t.Error("B ⊑ A lost")
	}
}

func TestEquivalenceDetection(t *testing.T) {
	tb := dl.NewTBox("equiv")
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	tb.EquivalentClasses(a, b)
	tb.SubClassOf(c, a)
	for _, mode := range []Mode{Basic, Optimized} {
		res := classify(t, tb, Options{Workers: 2, Mode: mode})
		if res.Taxonomy.NodeOf(a) != res.Taxonomy.NodeOf(b) {
			t.Errorf("mode=%v: A ≡ B not detected", mode)
		}
	}
}

func TestTopEquivalenceDetection(t *testing.T) {
	// Example 3.2 reports A ≡ ⊤: a concept equivalent to ⊤ must merge
	// with the root in both modes.
	tb := dl.NewTBox("topeq")
	f := tb.Factory
	a, b := tb.Declare("A"), tb.Declare("B")
	tb.EquivalentClasses(a, f.Top())
	tb.SubClassOf(b, a)
	for _, mode := range []Mode{Basic, Optimized} {
		res := classify(t, tb, Options{Workers: 2, Mode: mode})
		if res.Taxonomy.NodeOf(a) != res.Taxonomy.Top() {
			t.Errorf("mode=%v: A ≡ ⊤ not detected", mode)
		}
	}
}

type failingReasoner struct {
	after int64
	calls atomic.Int64
}

func (f *failingReasoner) Sat(context.Context, *dl.Concept) (bool, error) { return true, nil }
func (f *failingReasoner) Subs(context.Context, *dl.Concept, *dl.Concept) (bool, error) {
	if f.calls.Add(1) > f.after {
		return false, errors.New("injected reasoner failure")
	}
	return false, nil
}

// TestReasonerFailurePropagates injects plug-in failures at various points
// and requires a clean error (no hang, no panic, no partial taxonomy).
func TestReasonerFailurePropagates(t *testing.T) {
	for _, after := range []int{0, 1, 5, 17} {
		tb := chainTBox(6)
		_, err := Classify(tb, Options{Reasoner: &failingReasoner{after: int64(after)}, Workers: 3})
		if err == nil {
			t.Fatalf("after=%d: no error returned", after)
		}
	}
}

func TestNoReasonerRejected(t *testing.T) {
	if _, err := Classify(chainTBox(3), Options{}); !errors.Is(err, ErrNoReasoner) {
		t.Fatalf("err = %v", err)
	}
}

// randomTaxonomyTBox builds a random DAG-shaped EL ontology with
// equivalences sprinkled in: the workload shape of the paper's corpora.
func randomTaxonomyTBox(rng *rand.Rand, n int) *dl.TBox {
	tb := dl.NewTBox("randtax")
	f := tb.Factory
	cs := make([]*dl.Concept, n)
	for i := range cs {
		cs[i] = tb.Declare(fmt.Sprintf("C%d", i))
	}
	for i := 1; i < n; i++ {
		// One or two told parents among the earlier concepts.
		for k := 0; k < 1+rng.Intn(2); k++ {
			tb.SubClassOf(cs[i], cs[rng.Intn(i)])
		}
	}
	if n > 3 && rng.Intn(2) == 0 {
		i := 1 + rng.Intn(n-1)
		tb.EquivalentClasses(cs[i], f.And(cs[rng.Intn(i)], cs[rng.Intn(i)]))
	}
	if n > 2 && rng.Intn(3) == 0 {
		// An unsatisfiable concept via disjointness.
		tb.DisjointClasses(cs[0], cs[1])
		u := tb.Declare("U")
		tb.SubClassOf(u, cs[0])
		tb.SubClassOf(u, cs[1])
	}
	return tb
}

// TestQuickMatchesBruteForce is the central correctness property: for
// random ontologies, every (mode, workers, scheduling, seed) combination
// must produce exactly the brute-force taxonomy.
func TestQuickMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTaxonomyTBox(rng, 4+rng.Intn(10))
		r := tableauFactory(tb)
		want, err := SequentialBruteForce(tb, r)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, mode := range []Mode{Basic, Optimized} {
			for _, sched := range []Scheduling{RoundRobin, WorkSharing} {
				w := 1 + rng.Intn(8)
				res, err := Classify(tb, Options{
					Reasoner: r, Workers: w, Mode: mode,
					Scheduling: sched, Seed: seed, RandomCycles: 1 + rng.Intn(3),
				})
				if err != nil {
					t.Logf("seed %d mode=%v: %v", seed, mode, err)
					return false
				}
				if !res.Taxonomy.Equal(want) {
					t.Logf("seed %d mode=%v sched=%v w=%d:\n got:\n%s\nwant:\n%s",
						seed, mode, sched, w, res.Taxonomy.Fingerprint(), want.Fingerprint())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterministicAcrossSeeds: the taxonomy must not depend on the
// shuffle seed or worker count.
func TestQuickDeterministicAcrossSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tb := randomTaxonomyTBox(rng, 12)
	r := tableauFactory(tb)
	var first string
	for seed := int64(0); seed < 6; seed++ {
		res, err := Classify(tb, Options{Reasoner: r, Workers: int(seed%4) + 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		fp := res.Taxonomy.Fingerprint()
		if first == "" {
			first = fp
		} else if fp != first {
			t.Fatalf("seed %d produced different taxonomy", seed)
		}
	}
}

// TestEnhancedTraversalMatches cross-validates the sequential baseline.
func TestEnhancedTraversalMatches(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTaxonomyTBox(rng, 4+rng.Intn(8))
		r := reasoner.NewCached(tableauFactory(tb))
		want, err := SequentialBruteForce(tb, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EnhancedTraversal(tb, r)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !got.Equal(want) {
			t.Logf("seed %d:\n got:\n%s\nwant:\n%s", seed, got.Fingerprint(), want.Fingerprint())
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestWithELReasonerPlugin runs the parallel classifier with the EL
// saturation plug-in — the architecture's "any reasoner as plug-in"
// claim — and checks agreement with the tableau-backed run.
func TestWithELReasonerPlugin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tb := randomTaxonomyTBox(rng, 15)
	elr, err := el.New(tb, el.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	resEL := classify(t, tb, Options{Reasoner: elr, Workers: 4})
	resTab := classify(t, tb, Options{Workers: 4})
	if !resEL.Taxonomy.Equal(resTab.Taxonomy) {
		t.Errorf("EL plug-in disagrees with tableau plug-in:\n%s\nvs\n%s",
			resEL.Taxonomy.Fingerprint(), resTab.Taxonomy.Fingerprint())
	}
}

// TestWithOracle runs the classifier against the oracle plug-in, which the
// scalability experiments use.
func TestWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tb := randomTaxonomyTBox(rng, 20)
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{})
	res := classify(t, tb, Options{Reasoner: oracle, Workers: 4, CollectTrace: true})
	want, err := SequentialBruteForce(tb, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Taxonomy.Equal(want) {
		t.Error("oracle-backed classification diverges from brute force")
	}
}

func TestSplitGroups(t *testing.T) {
	seq := []int{0, 1, 2, 3, 4, 5, 6}
	gs := splitGroups(seq, 3)
	if len(gs) != 3 {
		t.Fatalf("groups = %d", len(gs))
	}
	total := 0
	for _, g := range gs {
		total += len(g)
		if len(g) < 2 || len(g) > 3 {
			t.Errorf("group size %d not near-equal", len(g))
		}
	}
	if total != len(seq) {
		t.Errorf("groups cover %d of %d", total, len(seq))
	}
	if gs2 := splitGroups(seq, 100); len(gs2) != len(seq) {
		t.Errorf("oversubscribed split = %d groups", len(gs2))
	}
	if gs3 := splitGroups(nil, 3); len(gs3) != 0 {
		t.Errorf("empty split = %v", gs3)
	}
}

// TestExample31RandomDivision mirrors the paper's Example 3.1: in basic
// mode, a random-division cycle with three workers over six concepts
// splits into three groups of two and tests exactly one directed pair per
// group.
func TestExample31RandomDivision(t *testing.T) {
	tb := exampleTBox()
	res := classify(t, tb, Options{
		Workers: 3, Mode: Basic, RandomCycles: 1, Seed: 1, CollectTrace: true,
	})
	first := res.Trace.Cycles[0]
	if first.Phase != PhaseRandom {
		t.Fatalf("first cycle = %v", first.Phase)
	}
	// 7 nodes (6 named + ⊤) split over 3 workers → groups of sizes
	// 3/2/2 → 3 + 1 + 1 directed pair tests, minus any answered by the
	// pre-seeded K_⊤ entries (none: those are marked tested, and the
	// directed pairs here are distinct orderings).
	if got := len(first.Tasks); got != 3 {
		t.Errorf("groups = %d, want 3", got)
	}
	if first.SubsTests != 5 {
		t.Errorf("cycle-1 tests = %d, want 5 (3+1+1 directed pairs)", first.SubsTests)
	}
}

// TestExample41SymmetricTesting mirrors Example 4.1: optimized mode tests
// each claimed pair in both directions and prunes follow-up pairs via the
// known sets, so the full run needs fewer tests than the exhaustive
// 2·C(n,2) budget.
func TestExample41SymmetricTesting(t *testing.T) {
	tb := exampleTBox()
	res := classify(t, tb, Options{
		Workers: 3, Mode: Optimized, RandomCycles: 2, Seed: 1, CollectTrace: true,
	})
	first := res.Trace.Cycles[0]
	if first.SubsTests%2 != 0 {
		t.Errorf("cycle-1 tests = %d, want an even count (symmetric tests)", first.SubsTests)
	}
	if res.Stats.Pruned == 0 {
		t.Error("no pairs pruned on the example hierarchy")
	}
	n := int64(tb.NumNamed() + 1)
	if full := n * (n - 1); res.Stats.SubsTests >= full {
		t.Errorf("optimized run used %d tests, exhaustive budget is %d", res.Stats.SubsTests, full)
	}
	// The example's A ≡ ⊤ must be discovered (Example 3.2's result).
	if res.Taxonomy.NodeOf(tb.Factory.Name("A")) != res.Taxonomy.Top() {
		t.Error("A ≡ ⊤ not discovered")
	}
}
