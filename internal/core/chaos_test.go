package core

import (
	"errors"
	"math/rand"
	"testing"

	"parowl/internal/reasoner"
	"parowl/internal/taxonomy"
)

// TestChaosPanicSoundness: a run whose reasoner randomly panics must
// degrade (undecided pairs), never lie — the degraded taxonomy may miss
// subsumptions versus a clean run but must not invent any.
func TestChaosPanicSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		tb := randomMixedTBox(rng, 8+rng.Intn(8))
		ref := classify(t, tb, Options{Workers: 4})

		chaotic := reasoner.NewChaos(tableauFactory(tb), reasoner.ChaosOptions{
			Seed:      int64(trial) + 1,
			PanicRate: 0.15,
			ErrRate:   0, // plain errors fail the run; panics degrade
		})
		res := classify(t, tb, Options{Workers: 4, Reasoner: chaotic})

		if res.Stats.Recovered > 0 {
			if len(res.Undecided) == 0 {
				t.Errorf("trial %d: %d recovered panics but no undecided pairs", trial, res.Stats.Recovered)
			}
			for _, u := range res.Undecided {
				if u.Reason != "panic" {
					t.Errorf("trial %d: undecided reason = %q, want panic", trial, u.Reason)
				}
			}
		}
		// A concept that is really unsatisfiable sits in the reference's
		// Bottom node with no listed subsumers; when its sat?() test is
		// abandoned the degraded run conservatively keeps it satisfiable and
		// its (valid — unsat is below everything) subsumptions surface as
		// "added". Only pairs whose subclass is satisfiable in the reference
		// can witness a genuine unsoundness.
		diff := taxonomy.Compare(ref.Taxonomy, res.Taxonomy)
		unsatInRef := map[string]bool{}
		for _, name := range diff.NoLongerUnsatisfiable {
			unsatInRef[name] = true
		}
		for _, p := range diff.AddedSubsumptions {
			if !unsatInRef[p[0]] {
				t.Errorf("trial %d: degraded run invented subsumption %v", trial, p)
			}
		}
	}
}

// TestChaosBudgetCounters: injected budget exhaustion must land in the
// dedicated NodeBudget/BranchBudget counters with matching reasons —
// not in TimedOut, and not as a run failure.
func TestChaosBudgetCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sawNode, sawBranch bool
	for trial := 0; trial < 8 && !(sawNode && sawBranch); trial++ {
		tb := randomMixedTBox(rng, 10)
		chaotic := reasoner.NewChaos(tableauFactory(tb), reasoner.ChaosOptions{
			Seed:       int64(trial) * 31,
			BudgetRate: 0.3,
		})
		res := classify(t, tb, Options{Workers: 3, Reasoner: chaotic})
		if res.Stats.TimedOut != 0 {
			t.Fatalf("trial %d: budget errors miscounted as timeouts: %+v", trial, res.Stats)
		}
		var node, branch int64
		for _, u := range res.Undecided {
			switch u.Reason {
			case "node-budget":
				node++
			case "branch-budget":
				branch++
			default:
				t.Fatalf("trial %d: unexpected undecided reason %q", trial, u.Reason)
			}
		}
		if node != res.Stats.NodeBudget || branch != res.Stats.BranchBudget {
			t.Fatalf("trial %d: counters %d/%d don't match undecided reasons %d/%d",
				trial, res.Stats.NodeBudget, res.Stats.BranchBudget, node, branch)
		}
		sawNode = sawNode || node > 0
		sawBranch = sawBranch || branch > 0
	}
	if !sawNode || !sawBranch {
		t.Fatalf("chaos never exercised both budget kinds: node=%v branch=%v", sawNode, sawBranch)
	}
}

// TestChaosErrorFailsRun: plain injected errors (unlike panics and
// budget errors) are not a per-test degradation — they must fail the run
// and surface as ErrInjected for the caller to inspect.
func TestChaosErrorFailsRun(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tb := randomMixedTBox(rng, 12)
	chaotic := reasoner.NewChaos(tableauFactory(tb), reasoner.ChaosOptions{
		Seed:    5,
		ErrRate: 0.5,
	})
	_, err := Classify(tb, Options{Workers: 4, Reasoner: chaotic})
	if !errors.Is(err, reasoner.ErrInjected) {
		t.Fatalf("Classify error = %v, want ErrInjected", err)
	}
}
