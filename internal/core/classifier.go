package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"parowl/internal/dl"
	"parowl/internal/reasoner"
	"parowl/internal/taxonomy"
)

// Mode selects between the paper's two algorithm variants.
type Mode int

// Classification modes.
const (
	// Optimized is Section IV: single-sided pair storage, symmetric
	// subsumption tests, and K-based pruning (Algorithm 5).
	Optimized Mode = iota
	// Basic is Section III as published: directional P sets and
	// single-direction tests (Algorithms 1-4), no pruning.
	Basic
)

func (m Mode) String() string {
	if m == Basic {
		return "basic"
	}
	return "optimized"
}

// Options configures a classification run. The zero value (plus a
// Reasoner) is a sensible default: optimized mode, round-robin
// scheduling, GOMAXPROCS workers, two random-division cycles.
type Options struct {
	// Reasoner is the plug-in deciding sat?/subs?; required.
	Reasoner reasoner.Interface
	// Workers is the pool size w; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// RandomCycles is the number of random-division cycles before the
	// group-division phase; 0 means 2. (Fig. 11 uses 10.)
	RandomCycles int
	// Seed drives the random shuffles; runs with equal seeds dispatch
	// identical groups. The final taxonomy is seed-independent.
	Seed int64
	// Mode selects Optimized (default) or Basic.
	Mode Mode
	// Scheduling selects RoundRobin (default, the paper's policy),
	// WorkSharing, WorkStealing (Chase–Lev deques with hardness-ordered
	// LPT dispatch; see pool.go), or Async (barrier-free: the coordinator
	// streams work continuously and quiesces only at phase edges and due
	// checkpoints; see async.go). The taxonomy is identical under every
	// policy.
	Scheduling Scheduling
	// CollectTrace records per-cycle statistics and task durations.
	CollectTrace bool
	// AdaptiveCycles enables the paper's proposed future-work load
	// balancing between the two phases: random-division cycles continue
	// (up to RandomCycles, or 64 when RandomCycles is 0) only while each
	// cycle still removes at least MinCycleGain of the initial possible
	// pairs, instead of running a fixed count.
	AdaptiveCycles bool
	// MinCycleGain is the adaptive threshold as a fraction of
	// InitialPossible; 0 means 0.05 (5%).
	MinCycleGain float64
	// MaxGroupSize splits phase-2 groups G_X larger than this into
	// several tasks, improving load balance when the remaining possible
	// sets are heterogeneous (the paper's Sec. V-C observation that the
	// group-division phase balances worse than random division). 0 keeps
	// the paper's one-task-per-concept dispatch.
	MaxGroupSize int
	// ELPrepass enables stage 1 of the cheap-first subsumption pipeline:
	// before random division, the EL-expressible fragment of the TBox is
	// saturated (internal/el) and every proven subsumption and
	// unsatisfiability is bulk-seeded into K/satState, stripping the
	// decided pairs from P (see prepass.go). Sound for any TBox — the
	// fragment's axioms are a subset of the TBox's, so its conclusions
	// are entailed — and the taxonomy is identical with or without it.
	// Savings are reported in Stats.PreSeeded.
	ELPrepass bool
	// ModelFilter enables stage 2 of the pipeline: when the plug-in
	// offers the optional reasoner.ModelFilter capability (detected by
	// type assertion), it is consulted before every subs? dispatch and a
	// "definitely not subsumed" answer skips the full test. Ignored for
	// plug-ins without the capability. Savings are reported in
	// Stats.FilterHits.
	ModelFilter bool
	// UseToldSubsumers answers subsumption tests whose truth follows
	// from the told (asserted) named hierarchy without calling the
	// reasoner plug-in — a standard classifier optimization the paper
	// deliberately leaves out ("without enhanced optimizations", Sec. V),
	// provided here as an ablation. Sound for any plug-in: told axioms
	// are entailed.
	UseToldSubsumers bool
	// TestTimeout bounds each individual sat?/subs? plug-in call. A call
	// that exceeds its budget is retried with the budget doubled, up to
	// TestRetries times; when the final attempt also times out the test
	// is abandoned, counted in Stats.TimedOut, and listed in
	// Result.Undecided — the run itself keeps going and stays sound
	// (only proven subsumptions enter the taxonomy). 0 disables the
	// budget.
	TestTimeout time.Duration
	// TestRetries is the number of escalating retries a timed-out test
	// receives before it is abandoned (attempt i gets TestTimeout·2ⁱ).
	// Only meaningful with TestTimeout > 0; Validate rejects it
	// otherwise.
	TestRetries int
	// Checkpoint, when non-empty, is a file path the run periodically
	// snapshots its shared state to (atomic rename, see checkpoint.go).
	// Snapshots are taken only at phase/batch boundaries, so every
	// on-disk snapshot is consistent and resumable. A write failure never
	// fails the run; it is reported in Result.CheckpointError.
	Checkpoint string
	// CheckpointInterval is the minimum time between snapshots. ≤ 0
	// writes a snapshot at every boundary (useful for tests; production
	// runs should use ~1s to keep overhead negligible).
	CheckpointInterval time.Duration
	// CompileKernel compiles the taxonomy's bit-matrix query kernel
	// (taxonomy.Compile) after classification, attaching it so every
	// subsequent query (Subsumes/Ancestors/Descendants/LCA/Depth) runs on
	// dense closure matrices instead of pointer-chasing the DAG. When
	// Checkpoint is also set, the final snapshot carries the kernel so a
	// resume skips recompilation; a checkpointed kernel that fails
	// validation degrades to recompiling (reported in Result.KernelError),
	// never to wrong answers.
	CompileKernel bool
	// ResumeFrom, when non-empty, restores the shared state from a
	// checkpoint file before classification starts, skipping all settled
	// work. The snapshot must match the ontology (fingerprint), mode, and
	// concept count; a missing, truncated, corrupted, or mismatched file
	// is reported in Result.ResumeError and the run falls back to a clean
	// classification — resume can degrade to a restart but never to a
	// wrong taxonomy. ResumeFrom and Checkpoint may name the same file.
	ResumeFrom string
}

// Validate reports the first configuration error, or nil. ClassifyContext
// calls it before touching any shared state, so an invalid Options never
// starts workers.
func (o *Options) Validate() error {
	if o.Reasoner == nil {
		return ErrNoReasoner
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: Options.Workers must be >= 0, got %d", o.Workers)
	}
	if o.RandomCycles < 0 {
		return fmt.Errorf("core: Options.RandomCycles must be >= 0, got %d", o.RandomCycles)
	}
	if o.Mode != Optimized && o.Mode != Basic {
		return fmt.Errorf("core: unknown Options.Mode %d", o.Mode)
	}
	switch o.Scheduling {
	case RoundRobin, WorkSharing, WorkStealing, Async:
	default:
		return fmt.Errorf("core: unknown Options.Scheduling %d", o.Scheduling)
	}
	if o.MinCycleGain < 0 || o.MinCycleGain >= 1 {
		return fmt.Errorf("core: Options.MinCycleGain must be in [0, 1), got %v", o.MinCycleGain)
	}
	if o.MaxGroupSize < 0 {
		return fmt.Errorf("core: Options.MaxGroupSize must be >= 0, got %d", o.MaxGroupSize)
	}
	if o.TestTimeout < 0 {
		return fmt.Errorf("core: Options.TestTimeout must be >= 0, got %v", o.TestTimeout)
	}
	if o.TestRetries < 0 {
		return fmt.Errorf("core: Options.TestRetries must be >= 0, got %d", o.TestRetries)
	}
	if o.TestRetries > 0 && o.TestTimeout == 0 {
		return fmt.Errorf("core: Options.TestRetries set (%d) without Options.TestTimeout", o.TestRetries)
	}
	return nil
}

// Stats summarizes reasoner usage of one run.
type Stats struct {
	SatTests  int64 // sat?() plug-in calls
	SubsTests int64 // subs?() plug-in calls
	Pruned    int64 // pairs resolved without a plug-in call (Sec. IV)
	ToldHits  int64 // positive tests answered from the told hierarchy
	// PreSeeded counts tests resolved from the EL prepass without a
	// plug-in dispatch (Options.ELPrepass): sat?() probes answered by a
	// fragment unsatisfiability, directed subs? tests answered by the
	// K-shortcircuit, and both directions of each pair stripped outright.
	PreSeeded int64
	// FilterHits counts subs? dispatches skipped because the plug-in's
	// ModelFilter disproved the subsumption (Options.ModelFilter).
	FilterHits int64
	TimedOut   int64 // tests abandoned after exhausting their budget
	Recovered  int64 // plug-in panics recovered into per-test errors
	// NodeBudget and BranchBudget count tests the plug-in itself
	// abandoned on resource exhaustion (reasoner.ErrNodeBudget /
	// ErrBranchBudget), kept separate from TimedOut so operators can tell
	// which degradation fired.
	NodeBudget   int64
	BranchBudget int64
	// Steals counts tasks that executed on a different worker than they
	// were queued to (WorkStealing and Async only; zero otherwise).
	// Deliberately not part of checkpoint snapshots: it describes a
	// particular run's scheduling, not the classification state.
	Steals int64
}

// Result is a completed classification.
type Result struct {
	Taxonomy *taxonomy.Taxonomy
	Stats    Stats
	// Undecided lists the tests abandoned under the per-test budget or
	// recovered from plug-in panics, in deterministic order. Empty means
	// the taxonomy is complete; non-empty means it is sound but may miss
	// the listed subsumptions.
	Undecided []Undecided
	// Trace is non-nil when Options.CollectTrace was set.
	Trace *Trace
	// Resumed reports whether the run restored state from
	// Options.ResumeFrom. False with a non-nil ResumeError means the
	// snapshot was rejected and the run started clean.
	Resumed bool
	// ResumeError is the reason Options.ResumeFrom could not be used
	// (wrapping ErrBadSnapshot); the run then classified from scratch.
	ResumeError error
	// CheckpointError is the first snapshot-write failure, if any; the
	// classification itself still completed.
	CheckpointError error
	// KernelError is non-nil when Options.CompileKernel was set and a
	// checkpointed kernel frame could not be used (corrupt frame or
	// fingerprint mismatch, wrapping ErrBadSnapshot); the kernel was then
	// recompiled from the taxonomy, so queries are still served from bits.
	KernelError error
}

// ErrNoReasoner is returned when Options.Reasoner is nil.
var ErrNoReasoner = errors.New("core: Options.Reasoner is required")

// Classify runs parallel TBox classification (Algorithm 1,
// parallelTBoxClassification) and returns the taxonomy of all named
// concepts.
func Classify(t *dl.TBox, opts Options) (*Result, error) {
	return ClassifyContext(context.Background(), t, opts)
}

// ClassifyContext is Classify with cancellation: when ctx is cancelled
// the workers stop claiming work, in-flight reasoner calls finish, and
// the context error is returned.
func ClassifyContext(ctx context.Context, t *dl.TBox, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cycles := opts.RandomCycles
	if cycles <= 0 {
		cycles = 2
		if opts.AdaptiveCycles {
			cycles = 64
		}
	}
	minGain := opts.MinCycleGain
	if minGain <= 0 {
		minGain = 0.05
	}
	t.Freeze()

	start := time.Now()
	s := newState(t, opts.Reasoner, opts.Mode == Optimized)
	s.maxGroupSize = opts.MaxGroupSize
	s.ctx = ctx
	s.testTimeout = opts.TestTimeout
	s.testRetries = opts.TestRetries
	if opts.UseToldSubsumers {
		s.buildTold()
	}
	if opts.ModelFilter {
		s.filter = reasoner.AsModelFilter(opts.Reasoner)
	}
	if opts.Scheduling.stealing() {
		// Per-concept hardness EWMAs drive the LPT submission order; the
		// slice stays nil under the other policies so their dispatch is
		// byte-for-byte the seed behaviour.
		s.hard = make([]atomic.Int64, s.n)
	}

	// Restore a prior run's state before any worker exists; a rejected
	// snapshot leaves the fresh state untouched and the run starts clean.
	var (
		resumed       bool
		resumeErr     error
		resumePhase   = PhaseRandom
		snapKernel    *taxonomy.Kernel
		snapKernelErr error
	)
	if opts.ResumeFrom != "" {
		snap, err := readSnapshotFile(opts.ResumeFrom)
		if err == nil {
			err = s.restoreSnapshot(snap)
		}
		if err != nil {
			resumeErr = err
		} else {
			resumed = true
			resumePhase = snap.phase
			snapKernel = snap.kernel
			snapKernelErr = snap.kernelErr
			if porter := reasoner.AsCachePorter(opts.Reasoner); porter != nil {
				porter.ImportCache(snap.cache)
			}
		}
	}
	var ck *checkpointer
	if opts.Checkpoint != "" {
		ck = &checkpointer{
			path:     opts.Checkpoint,
			interval: opts.CheckpointInterval,
			porter:   reasoner.AsCachePorter(opts.Reasoner),
		}
	}

	if ctx.Done() != nil {
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-ctx.Done():
				s.fail(ctx.Err())
			case <-stopWatch:
			}
		}()
	}
	var trace *Trace
	if opts.CollectTrace {
		trace = &Trace{Workers: workers, Scheduling: opts.Scheduling, InitialPossible: s.remainingPossible()}
	}
	p := newPool(workers, opts.Scheduling)
	p.onPanic = func(r any) {
		s.fail(fmt.Errorf("reasoner plug-in panicked: %v", r))
	}
	defer p.close()

	// epoch is the monotonic quiescence count snapshots are tagged with:
	// the epochs this run's pool has passed on top of whatever a resumed
	// snapshot had already accumulated.
	epoch := func() int64 { return s.epochBase + p.epoch.Load() }

	// A snapshot whose prepass already ran restored its seeded facts;
	// re-running the prepass over a resumed state would be sound (claims
	// no-op) but wasted.
	if opts.ELPrepass && !s.prepassed && !s.failed() {
		s.runPrepass(p, workers, trace)
		ck.maybeWrite(s, PhaseRandom, false, epoch())
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	initial := s.remainingPossible()
	// A snapshot taken during the group phase proves the random phase
	// finished; re-running it would only no-op on claimed pairs.
	skipRandom := resumed && resumePhase == PhaseGroup
	if opts.Scheduling == Async {
		s.runAsync(p, rng, workers, cycles, minGain, initial, opts, ck, trace, skipRandom)
	} else {
		if !skipRandom {
			for cycle := 1; cycle <= cycles && !s.failed(); cycle++ {
				before := s.remainingPossible()
				s.runRandomCycle(p, rng, workers, cycle, trace)
				ck.maybeWrite(s, PhaseRandom, false, epoch())
				if opts.AdaptiveCycles && initial > 0 {
					gain := float64(before-s.remainingPossible()) / float64(initial)
					if gain < minGain {
						break // the group-division phase finishes the rest
					}
				}
			}
		}
		for iter := 1; !s.failed(); iter++ {
			if !s.runGroupCycle(p, iter, trace) {
				break
			}
			ck.maybeWrite(s, PhaseGroup, false, epoch())
		}
	}
	if err := s.errOrNil(); err != nil {
		return nil, fmt.Errorf("core: classification failed: %w", err)
	}
	if rem := s.remainingPossible(); rem != 0 {
		return nil, fmt.Errorf("core: internal error: %d possible pairs left after group phase", rem)
	}
	// Final snapshot: resuming from a completed run converges immediately.
	ck.maybeWrite(s, PhaseGroup, true, epoch())

	tax, err := s.buildTaxonomy(p, trace)
	if err != nil {
		return nil, err
	}
	var kernelErr error
	if opts.CompileKernel {
		adopted := false
		if snapKernel != nil {
			// AdoptKernel validates the frame's node count and taxonomy
			// fingerprint against the taxonomy just built, so a stale or
			// mismatched kernel can never serve wrong answers.
			if err := tax.AdoptKernel(snapKernel); err != nil {
				kernelErr = fmt.Errorf("%w: checkpoint kernel rejected: %v", ErrBadSnapshot, err)
			} else {
				adopted = true
			}
		} else if snapKernelErr != nil {
			kernelErr = snapKernelErr
		}
		if !adopted {
			tax.CompileKernel(workers)
		}
		// Rewrite the final snapshot with the kernel aboard so the next
		// resume (or server restart) skips recompilation.
		ck.writeKernel(s, tax.Kernel(), epoch())
	}
	if trace != nil {
		trace.WallElapsed = time.Since(start)
	}
	return &Result{
		Taxonomy: tax,
		Stats: Stats{
			SatTests:     s.satTests.Load(),
			SubsTests:    s.subsTests.Load(),
			Pruned:       s.pruned.Load(),
			ToldHits:     s.toldHits.Load(),
			PreSeeded:    s.preSeeded.Load(),
			FilterHits:   s.filterHits.Load(),
			TimedOut:     s.timedOut.Load(),
			Recovered:    s.recovered.Load(),
			NodeBudget:   s.nodeBudget.Load(),
			BranchBudget: s.branchBudget.Load(),
			Steals:       p.totalSteals.Load(),
		},
		Undecided:       s.takeUndecided(),
		Trace:           trace,
		Resumed:         resumed,
		ResumeError:     resumeErr,
		CheckpointError: ck.firstErr(),
		KernelError:     kernelErr,
	}, nil
}

// counterSnapshot captures the reasoner counters to compute per-cycle
// deltas.
type counterSnapshot struct{ sat, subs, pruned, told, preSeeded, filterHits int64 }

func (s *state) snapshot() counterSnapshot {
	return counterSnapshot{
		s.satTests.Load(), s.subsTests.Load(), s.pruned.Load(),
		s.toldHits.Load(), s.preSeeded.Load(), s.filterHits.Load(),
	}
}

func (s *state) record(trace *Trace, phase Phase, index int, before counterSnapshot, rep batchReport) {
	if trace == nil {
		return
	}
	now := s.snapshot()
	trace.Cycles = append(trace.Cycles, &Cycle{
		Phase:             phase,
		Index:             index,
		Tasks:             rep.durs,
		TaskWorkers:       rep.workers,
		WorkerLoads:       rep.loads,
		Steals:            rep.steals,
		StolenFrom:        rep.stolenFrom,
		WaitNanos:         rep.waits,
		SubsTests:         now.subs - before.subs,
		SatTests:          now.sat - before.sat,
		Pruned:            now.pruned - before.pruned,
		ToldHits:          now.told - before.told,
		PreSeeded:         now.preSeeded - before.preSeeded,
		FilterHits:        now.filterHits - before.filterHits,
		RemainingPossible: s.remainingPossible(),
	})
}

// runRandomCycle is one cycle of phase 1 (Algorithm 1's randomDivision +
// Algorithm 2): shuffle all concepts, split into w equal groups, and test
// all pairs within each group.
func (s *state) runRandomCycle(p *pool, rng *rand.Rand, workers, cycle int, trace *Trace) {
	before := s.snapshot()
	s.submitRandomCycle(p, rng, workers)
	s.record(trace, PhaseRandom, cycle, before, p.barrier())
}

// submitRandomCycle dispatches one random-division cycle's groups without
// waiting for them: the shuffle and split depend only on the rng, never
// on test results, so the Async driver streams several cycles into the
// pool back to back.
func (s *state) submitRandomCycle(p *pool, rng *rand.Rand, workers int) {
	perm := rng.Perm(s.n)
	groups := splitGroups(perm, workers)
	if p.scheduling.stealing() {
		// LPT: hardest groups dispatch first so stealing mops up the
		// cheap tail. The estimate is the pair count (groups are nearly
		// equal-sized, so this only breaks ties in cycle 1) refined by
		// the members' hardness EWMAs once earlier cycles provided data.
		lptOrder(groups, func(g []int) int64 {
			c := int64(len(g)) * int64(len(g)-1) / 2
			for _, x := range g {
				c += s.hardLoad(x)
			}
			return c
		})
	}
	for _, g := range groups {
		g := g
		p.submit(func() time.Duration { return s.randomDivisionSubsTest(g) })
	}
}

// lptOrder sorts tasks by descending estimated cost (longest processing
// time first); the sort is stable so equal estimates keep their
// deterministic submission order.
func lptOrder[T any](tasks []T, cost func(T) int64) {
	type entry struct {
		t T
		c int64
	}
	es := make([]entry, len(tasks))
	for i, t := range tasks {
		es[i] = entry{t, cost(t)}
	}
	sort.SliceStable(es, func(i, j int) bool { return es[i].c > es[j].c })
	for i, e := range es {
		tasks[i] = e.t
	}
}

// splitGroups partitions seq into at most w contiguous groups of nearly
// equal size (the paper's n/w partitions).
func splitGroups(seq []int, w int) [][]int {
	if w < 1 {
		w = 1
	}
	n := len(seq)
	if w > n {
		w = n
	}
	out := make([][]int, 0, w)
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		if lo < hi {
			out = append(out, seq[lo:hi])
		}
	}
	return out
}

// randomDivisionSubsTest is Algorithm 2: test the pairs inside one random
// group. In basic mode the pairs are directed by sequence position
// (Example 3.1); in optimized mode each unordered pair is tested
// symmetrically with pruning (Example 4.1).
func (s *state) randomDivisionSubsTest(g []int) time.Duration {
	var cost time.Duration
	for i := 0; i < len(g) && !s.failed(); i++ {
		for j := i + 1; j < len(g) && !s.failed(); j++ {
			if s.optimized {
				cost += s.resolvePair(g[i], g[j])
			} else {
				cost += s.resolveBasic(g[i], g[j])
			}
		}
	}
	return cost
}

// groupTask is one phase-2 dispatch unit: test every y ∈ g against x.
type groupTask struct {
	x int
	g []int
}

// cutGroupTasks builds phase 2's task list from the current P sets: every
// concept X with P_X ≠ ∅ contributes a group G_X = P_X (split per
// maxGroupSize). Under a barrier policy P is quiescent here; under Async
// it may shrink concurrently, which only makes some tasks find their
// pairs already claimed.
func (s *state) cutGroupTasks() []groupTask {
	var tasks []groupTask
	for x := 0; x < s.n; x++ {
		g := s.P[x].Members()
		if len(g) == 0 {
			continue
		}
		chunks := [][]int{g}
		if s.maxGroupSize > 0 && len(g) > s.maxGroupSize {
			chunks = nil
			for lo := 0; lo < len(g); lo += s.maxGroupSize {
				hi := lo + s.maxGroupSize
				if hi > len(g) {
					hi = len(g)
				}
				chunks = append(chunks, g[lo:hi])
			}
		}
		for _, chunk := range chunks {
			tasks = append(tasks, groupTask{x, chunk})
		}
	}
	return tasks
}

// lptGroupTasks orders phase-2 tasks hardest-first: group size is the
// zero-knowledge cost estimate (the paper's Sec. V-C observation that
// G_X sizes drive phase-2 imbalance), refined by the hardness EWMAs
// phase 1 collected.
func (s *state) lptGroupTasks(tasks []groupTask) {
	lptOrder(tasks, func(t groupTask) int64 {
		hx := s.hardLoad(t.x)
		c := int64(len(t.g))
		for _, y := range t.g {
			c += hx + s.hardLoad(y)
		}
		return c
	})
}

// submitGroupTask dispatches one phase-2 group.
func (s *state) submitGroupTask(p *pool, t groupTask) {
	x, chunk := t.x, t.g
	p.submit(func() time.Duration { return s.groupDivisionSubsTest(x, chunk) })
}

// runGroupCycle is one pass of phase 2 (Algorithm 3): every concept X
// with P_X ≠ ∅ contributes a group G_X = P_X, dispatched round-robin.
// It reports whether any group was dispatched.
func (s *state) runGroupCycle(p *pool, iter int, trace *Trace) bool {
	before := s.snapshot()
	tasks := s.cutGroupTasks()
	if len(tasks) == 0 {
		return false
	}
	if p.scheduling.stealing() {
		s.lptGroupTasks(tasks)
	}
	for _, t := range tasks {
		s.submitGroupTask(p, t)
	}
	s.record(trace, PhaseGroup, iter, before, p.barrier())
	return true
}

// groupDivisionSubsTest is Algorithm 3 for one group G_X.
func (s *state) groupDivisionSubsTest(x int, g []int) time.Duration {
	var cost time.Duration
	for _, y := range g {
		if s.failed() {
			break
		}
		if s.optimized {
			cost += s.resolvePair(x, y)
		} else {
			cost += s.resolveBasic(x, y)
		}
	}
	return cost
}
