package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"parowl/internal/dl"
)

// Adoption is the restart path of a long-lived serving process: a daemon
// that already classified an ontology and checkpointed the completed run
// (final snapshot + kernel frame, see checkpoint.go) wants the taxonomy
// back at boot WITHOUT a reasoner and WITHOUT the clean-run fallback that
// ClassifyContext's ResumeFrom performs on a bad snapshot. Reclassifying
// at boot is exactly what a restart-tolerant registry must avoid, so
// Adopt inverts the failure policy: an unusable snapshot is an error the
// caller handles (degrade the entry, reclassify later, on its own
// schedule), never a silent multi-minute reclassification.

// ErrIncompleteSnapshot reports an Adopt of a checkpoint whose run had
// not finished: unresolved possible pairs remain, so no complete taxonomy
// can be built from it. The snapshot itself is valid — resuming the
// classification via Options.ResumeFrom will finish it.
var ErrIncompleteSnapshot = errors.New("core: checkpoint snapshot is not a completed classification")

// errAdoptReasoner fires if adoption ever reaches a reasoner call; it
// cannot on a complete snapshot (the hierarchy phase reads only K), so
// hitting it means the completeness check was wrong — fail loudly.
var errAdoptReasoner = errors.New("core: internal error: reasoner invoked while adopting a completed checkpoint")

// adoptReasoner is the plug-in slot filler for reasoner-free adoption.
type adoptReasoner struct{}

func (adoptReasoner) Sat(context.Context, *dl.Concept) (bool, error) {
	return false, errAdoptReasoner
}

func (adoptReasoner) Subs(context.Context, *dl.Concept, *dl.Concept) (bool, error) {
	return false, errAdoptReasoner
}

// AdoptOptions configures Adopt. Only the snapshot path is required.
type AdoptOptions struct {
	// Snapshot is the checkpoint file of a completed run.
	Snapshot string
	// Workers sizes the pool building the hierarchy (phase 3) and, when
	// the snapshot carries no usable kernel frame, the kernel compile;
	// 0 means runtime.GOMAXPROCS(0).
	Workers int
}

// Adopt rebuilds a completed classification from its checkpoint file
// without any reasoner: it restores the shared state, verifies the run
// actually finished (zero unresolved pairs), rebuilds the taxonomy from
// the K sets — byte-identical to the original run's, since phase 3 is a
// pure function of K — and adopts the snapshot's kernel frame (falling
// back to recompiling it, reported in Result.KernelError). The returned
// Result carries the original run's restored Stats and Undecided list,
// and Resumed is always true.
//
// Errors: a missing/truncated/corrupt/mismatched snapshot wraps
// ErrBadSnapshot; a valid but unfinished one wraps ErrIncompleteSnapshot.
// Unlike ClassifyContext's ResumeFrom, Adopt NEVER falls back to a clean
// classification — the caller decides whether and when to reclassify.
func Adopt(ctx context.Context, t *dl.TBox, opts AdoptOptions) (*Result, error) {
	if opts.Snapshot == "" {
		return nil, fmt.Errorf("core: AdoptOptions.Snapshot is required")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t.Freeze()
	snap, err := readSnapshotFile(opts.Snapshot)
	if err != nil {
		return nil, err
	}
	s := newState(t, adoptReasoner{}, snap.optimized)
	s.ctx = ctx
	if err := s.restoreSnapshot(snap); err != nil {
		return nil, err
	}
	if rem := s.remainingPossible(); rem != 0 {
		return nil, fmt.Errorf("%w: %d unresolved possible pairs remain (phase %s)",
			ErrIncompleteSnapshot, rem, snap.phase)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := newPool(workers, RoundRobin)
	p.onPanic = func(r any) {
		s.fail(fmt.Errorf("core: adopt: panic building hierarchy: %v", r))
	}
	defer p.close()
	tax, err := s.buildTaxonomy(p, nil)
	if err != nil {
		return nil, err
	}
	var kernelErr error
	adopted := false
	if snap.kernel != nil {
		// Same discipline as ClassifyContext: AdoptKernel validates node
		// count and taxonomy fingerprint, so a stale frame can never serve
		// wrong answers — it only costs a recompile.
		if err := tax.AdoptKernel(snap.kernel); err != nil {
			kernelErr = fmt.Errorf("%w: checkpoint kernel rejected: %v", ErrBadSnapshot, err)
		} else {
			adopted = true
		}
	} else if snap.kernelErr != nil {
		kernelErr = snap.kernelErr
	}
	if !adopted {
		tax.CompileKernel(workers)
	}
	return &Result{
		Taxonomy: tax,
		Stats: Stats{
			SatTests:     s.satTests.Load(),
			SubsTests:    s.subsTests.Load(),
			Pruned:       s.pruned.Load(),
			ToldHits:     s.toldHits.Load(),
			PreSeeded:    s.preSeeded.Load(),
			FilterHits:   s.filterHits.Load(),
			TimedOut:     s.timedOut.Load(),
			Recovered:    s.recovered.Load(),
			NodeBudget:   s.nodeBudget.Load(),
			BranchBudget: s.branchBudget.Load(),
		},
		Undecided:   s.takeUndecided(),
		Resumed:     true,
		KernelError: kernelErr,
	}, nil
}
