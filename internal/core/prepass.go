package core

import (
	"time"

	"parowl/internal/el"
)

// runPrepass is stage 1 of the cheap-first subsumption pipeline
// (Options.ELPrepass): saturate the EL-expressible fragment of the TBox
// and bulk-transfer its conclusions into the run's shared state before
// the random-division phase dispatches a single plug-in test.
//
// Soundness rests on monotonicity of entailment: the fragment keeps only
// axioms entailed by the TBox (non-EL axioms are dropped, conjunctive
// right sides weakened — see el.NewFragment), so every subsumption or
// unsatisfiability the saturation derives holds for the full TBox. The
// transfer mirrors exactly what the paper's algorithms would have done
// had the plug-in answered those tests:
//
//  1. a fragment-unsatisfiable concept is resolved the way sat() resolves
//     a plug-in "no" — satState ← satNo and every P entry involving the
//     concept cleared;
//  2. each proven sub ⊑ sup becomes a K bit; in basic mode the directed
//     entry is claimed and stripped from P, in optimized mode a pair is
//     stripped only when both directions are decided (the proven one plus
//     either its proven converse — an equivalence — or the trivial
//     X ⊑ ⊤), since a half-decided pair must stay claimable for its
//     remaining direction, which the K-shortcircuit in testDirected then
//     answers for free;
//  3. every concept whose satisfiability is still unknown gets its
//     sat?() probe here, in parallel. The baseline runs sat?() exactly
//     once per concept anyway, so this adds nothing — but it is required
//     for correctness, not just warm-up: seeded K bits let pruneAfter
//     claim all of a concept's pairs without any test touching it, and a
//     concept satisfiable in the fragment may still be unsatisfiable in
//     the full TBox, which only a real probe can discover.
//
// A prepass abandoned by context cancellation poisons the run like any
// cancelled phase; seeding is otherwise all-or-nothing per fact and the
// classification proceeds correctly from whatever was transferred.
func (s *state) runPrepass(p *pool, workers int, trace *Trace) {
	before := s.snapshot()
	start := time.Now()
	s.prepassed = true
	frag, _ := el.NewFragment(s.tbox, el.Options{Workers: workers})
	seeds, unsat, err := frag.Seeds(s.ctx)
	if err != nil {
		// el saturation fails only on context cancellation.
		s.fail(err)
		return
	}

	for _, c := range unsat {
		x, ok := s.index[c]
		if !ok || x == s.top {
			continue
		}
		if s.satState[x].CompareAndSwap(satUnknown, satNo) {
			s.preSeeded.Add(1)
			s.P[x].ClearAll()
			for y := 0; y < s.n; y++ {
				if y != x {
					s.P[y].Clear(x)
				}
			}
		}
	}

	// Index the proven directed facts; key packs (sub, sup).
	key := func(sub, sup int) uint64 { return uint64(sub)<<32 | uint64(uint32(sup)) }
	directed := make(map[uint64]bool, len(seeds))
	for _, sd := range seeds {
		sub, okSub := s.index[sd.Sub]
		sup, okSup := s.index[sd.Sup]
		if !okSub || !okSup || sub == sup {
			continue
		}
		if s.satState[sub].Load() == satNo || s.satState[sup].Load() == satNo {
			continue
		}
		s.K[sup].Set(sub)
		directed[key(sub, sup)] = true
	}
	if s.optimized {
		for k := range directed {
			sub, sup := int(k>>32), int(uint32(k))
			// The converse of a proven sub ⊑ sup is decided when it was
			// proven too, or when it is the trivial sub = ⊤ case (the pair
			// {sup, ⊤} has converse sup ⊑ ⊤).
			if directed[key(sup, sub)] || sub == s.top {
				if s.claimPair(sub, sup) {
					s.preSeeded.Add(2)
				}
			}
		}
	} else {
		for k := range directed {
			sub, sup := int(k>>32), int(uint32(k))
			if !s.tested.TestAndSet(sup, sub) {
				s.P[sup].Clear(sub)
				s.preSeeded.Add(1)
			}
		}
	}
	seedDur := time.Since(start)

	var unknowns []int
	for x := 0; x < s.n; x++ {
		if s.satState[x].Load() == satUnknown {
			unknowns = append(unknowns, x)
		}
	}
	for _, g := range splitGroups(unknowns, workers*4) {
		g := g
		p.submit(func() time.Duration {
			for _, x := range g {
				if s.failed() {
					break
				}
				s.sat(x)
			}
			return 0
		})
	}
	rep := p.barrier()
	// The sequential seeding work is charged as a pseudo-task that ran on
	// no pool worker (-1), keeping durs and workers aligned.
	rep.durs = append([]time.Duration{seedDur}, rep.durs...)
	rep.workers = append([]int{-1}, rep.workers...)
	s.record(trace, PhasePrepass, 1, before, rep)
}
