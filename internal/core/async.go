package core

import "math/rand"

// Barrier-free asynchronous classification (Scheduling == Async).
//
// The barrier policies rendezvous after every cycle: the coordinator
// submits a batch, waits for the last straggler, then computes the next
// batch. Workers that finish early park until the whole pool drains —
// that parked time is the straggler tail BENCH_sched measures as
// imbalance. The async driver removes those rendezvous:
//
//   - Phase 1 (random division): a cycle's shuffle depends only on the
//     rng, never on test results, so cycles are pipelined: the next
//     cycle is queued once all but one of the current cycle's groups
//     have finished (pool.waitLow), so workers flow straight into it
//     while stragglers keep running — nobody parks waiting for them —
//     and the next cycle's tests still see almost every prune fact.
//   - Phase 2 (group division): the driver cuts tasks from the LIVE P
//     sets and re-cuts as soon as the backlog drops below a watermark
//     instead of waiting for the last straggler. A re-cut is thinned by
//     every prune that landed since the previous one, and rows whose
//     task is still running get a duplicate task over their unclaimed
//     remainder — idle workers split a straggler's row at pair
//     granularity instead of parking behind it.
//
// Sharing stale state is safe for exactly one reason, and it is the same
// reason shared P/K work under every policy: reads of K are only ever
// used to PRUNE (drop a pair from P without a test — sound because K
// facts are entailed, however old), while SETTLING a pair is always
// guarded by an atomic claim (the P-bit clear / tested TestAndSet), so a
// pair's verdict is computed exactly once no matter how many waves cover
// it. A worker acting on a stale P snapshot merely attempts a claim that
// fails. Freshness changes which tests never happen; it cannot change
// any test's outcome — which is why the taxonomy stays byte-identical to
// the barrier policies.
//
// Quiescence and epochs: the pool counts submitted-but-unfinished tasks
// (pool.pending). Full quiescence — pending == 0, every claimed pair's
// outcome recorded in K or undecided — is required only at phase edges
// and when a checkpoint is due; each such point closes an epoch
// (pool.epoch) and is the only place snapshots are cut, so async
// snapshots are exactly as consistent as barrier-mode ones. With
// checkpointing off the run quiesces just three times: after the
// prepass, between phases 1 and 2, and before the hierarchy build.
//
// Closing an epoch is also where async claws back the tests streaming
// costs it: the coordinator runs prunePass, re-applying Situation 2.3
// pruning over the epoch's FULL K. The workers' own pruneAfter calls are
// one-shot — a subsumee fact landing after its superchain's test misses
// its prune forever, under every policy — so the sweep prunes pairs the
// barrier policies go on to test with the reasoner.


// runAsync drives phases 1 and 2 barrier-free. On return the pool is
// quiescent and, on a non-failed run, P is empty.
func (s *state) runAsync(p *pool, rng *rand.Rand, workers, cycles int, minGain float64, initial int64, opts Options, ck *checkpointer, trace *Trace, skipRandom bool) {
	epoch := func() int64 { return s.epochBase + p.epoch.Load() }

	if !skipRandom {
		before := s.snapshot()
		prev := s.remainingPossible()
		for cycle := 1; cycle <= cycles && !s.failed(); cycle++ {
			s.submitRandomCycle(p, rng, workers)
			// Quiesce only when something needs the rendezvous: the last
			// cycle (phase edge), a due checkpoint, or the adaptive
			// controller's per-cycle gain measurement. Otherwise the next
			// cycle's groups are already queued behind this one's.
			if cycle == cycles || opts.AdaptiveCycles || ck.due() {
				rep := p.barrier()
				s.prunePass() // quiescent: harvest the epoch's late K facts
				s.record(trace, PhaseRandom, cycle, before, rep)
				before = s.snapshot()
				ck.maybeWrite(s, PhaseRandom, false, epoch())
				if opts.AdaptiveCycles && initial > 0 {
					rem := s.remainingPossible()
					gain := float64(prev-rem) / float64(initial)
					prev = rem
					if gain < minGain {
						break // the group-division phase finishes the rest
					}
				}
			} else {
				// Pipeline, don't rendezvous: queue the next shuffle once
				// half the pool has gone idle. Stragglers keep running
				// (nobody waits for them — the barrier's whole cost), while
				// the next cycle's tests still see most groups' prune
				// facts. A lower watermark buys fresher pruning at the
				// price of parking the early finishers behind the
				// straggler tail; a higher one streams harder but re-tests
				// pairs the stragglers were about to prune — the epoch
				// prune sweeps claw those back.
				low := int64(workers / 2)
				if low < 1 {
					low = 1
				}
				p.waitLow(low)
			}
		}
		if pend := p.pendingTasks(); pend != 0 {
			// Unreachable: the last cycle always quiesced above. Keep the
			// invariant loud — cutting phase 2 with random tasks in flight
			// would blur the checkpoint phase tag.
			p.barrier()
		}
	}

	// Quiescent here whether phase 1 ran or a resume skipped it: sweep
	// once so the first group cut is as thin as the full K allows.
	s.prunePass()
	before := s.snapshot()
	iter := 0
	for !s.failed() {
		tasks := s.cutGroupTasks()
		if len(tasks) == 0 {
			if p.pendingTasks() == 0 {
				break // P empty and every outcome recorded: phase 2 done
			}
			// P is drained but stragglers still hold claimed pairs whose
			// K facts may re-expose nothing; wait for them to finish and
			// re-check (a claimed pair never returns to P, so this
			// converges).
			p.waitLow(0)
			s.prunePass()
			continue
		}
		iter++
		s.lptGroupTasks(tasks)
		for _, t := range tasks {
			s.submitGroupTask(p, t)
		}
		// Re-cut when most of the pool has gone idle — or, for a small
		// tail wave, when half of it has completed — instead of waiting
		// for the last straggler. The re-cut's duplicate tasks for
		// still-running rows split those rows' unclaimed pairs across idle
		// workers (claims are atomic), so stragglers get rescued at pair
		// granularity rather than parked behind.
		low := int64(len(tasks) / 2)
		if hw := int64(workers / 2); low > hw {
			low = hw
		}
		p.waitLow(low)
		if ck.due() {
			rep := p.barrier()
			s.prunePass() // quiescent: harvest the epoch's late K facts
			s.record(trace, PhaseGroup, iter, before, rep)
			before = s.snapshot()
			ck.maybeWrite(s, PhaseGroup, false, epoch())
		}
	}
	// Final quiescence of phase 2: collect whatever ran since the last
	// epoch into one trace record.
	rep := p.barrier()
	if len(rep.durs) > 0 {
		s.record(trace, PhaseGroup, iter, before, rep)
	}
}
