package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDequeOwnerThiefProperty is the Chase–Lev correctness property under
// contention: one owner goroutine pushes and pops at the bottom while
// several thieves steal from the top concurrently. Every pushed task must
// be claimed exactly once — by the owner or by exactly one thief — with
// none lost and none claimed twice. Run under -race this also exercises
// the grow path (the deque starts at wsMinCap and the owner pushes far
// more than that before popping).
func TestDequeOwnerThiefProperty(t *testing.T) {
	const (
		thieves = 4
		total   = 20000
	)
	var d wsDeque
	tasks := make([]poolTask, total)
	claimed := make([]atomic.Int32, total)
	index := make(map[*poolTask]int, total)
	for i := range tasks {
		index[&tasks[i]] = i
	}

	claim := func(pt *poolTask) {
		i, ok := index[pt]
		if !ok {
			t.Error("claimed a task that was never pushed")
			return
		}
		if claimed[i].Add(1) != 1 {
			t.Errorf("task %d claimed more than once", i)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if pt, ok := d.steal(); ok {
					claim(pt)
				}
			}
			// Final sweep so nothing the owner left behind is counted as
			// lost only because the thief quit early.
			for {
				pt, ok := d.steal()
				if !ok {
					return
				}
				claim(pt)
			}
		}()
	}

	// Owner: bursts of pushes interleaved with pops, in waves sized to
	// force several ring growths (wsMinCap is far smaller than a wave).
	pushed := 0
	for pushed < total {
		wave := wsMinCap*4 + pushed%97
		if pushed+wave > total {
			wave = total - pushed
		}
		for i := 0; i < wave; i++ {
			d.push(&tasks[pushed])
			pushed++
		}
		// Pop about half the wave back; thieves race for the rest.
		for i := 0; i < wave/2; i++ {
			pt, ok := d.pop()
			if !ok {
				break
			}
			claim(pt)
		}
	}
	// Owner drains what's left before signalling the thieves to finish.
	for {
		pt, ok := d.pop()
		if !ok {
			break
		}
		claim(pt)
	}
	stop.Store(true)
	wg.Wait()

	if !d.empty() {
		t.Fatal("deque not empty after full drain")
	}
	for i := range claimed {
		if got := claimed[i].Load(); got != 1 {
			t.Fatalf("task %d claimed %d times, want exactly 1", i, got)
		}
	}
}

// TestDequeLastElementRace pins the single-element tie: with exactly one
// task in the deque, the owner's pop and a thief's steal race for it via
// the CAS on top — exactly one side may win each round. Repeating the
// race thousands of times under -race catches both the lost-task and the
// double-claim failure mode.
func TestDequeLastElementRace(t *testing.T) {
	var d wsDeque
	task := poolTask{}
	const rounds = 5000
	for r := 0; r < rounds; r++ {
		d.push(&task)
		var ownerGot, thiefGot atomic.Bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, ok := d.pop(); ok {
				ownerGot.Store(true)
			}
		}()
		go func() {
			defer wg.Done()
			if _, ok := d.steal(); ok {
				thiefGot.Store(true)
			}
		}()
		wg.Wait()
		if ownerGot.Load() == thiefGot.Load() {
			t.Fatalf("round %d: owner=%v thief=%v, want exactly one winner",
				r, ownerGot.Load(), thiefGot.Load())
		}
		if !d.empty() {
			t.Fatalf("round %d: deque non-empty after the race", r)
		}
	}
}

// TestWorkerQueueResetLateThief is the barrier regression test: reset
// recycles a queue's storage after every task of the batch completed, but
// a thief that lost a wake race may still probe the queue concurrently.
// The thief must observe either "empty before reset" or "empty after
// reset" — never a stale task, a double pop, or a torn slice. The
// stronger invariant (no task from the finished batch can surface) holds
// because reset only runs once the barrier proved the queue drained; here
// we hammer pop/drain against reset to let -race validate the locking.
func TestWorkerQueueResetLateThief(t *testing.T) {
	var wq workerQueue
	var claimed atomic.Int64
	const batches = 300
	done := make(chan struct{})
	go func() { // the late thief
		defer close(done)
		for claimed.Load() < batches {
			if _, ok := wq.pop(); ok {
				claimed.Add(1)
			}
			for range wq.drain() {
				claimed.Add(1)
			}
		}
	}()
	tasks := make([]poolTask, 8)
	for b := 0; b < batches; b++ {
		wq.push(&tasks[b%len(tasks)])
		// Drain like a barrier would observe: spin until the thief (or
		// this drain) empties the queue, then reset the storage while the
		// thief keeps probing.
		for range wq.drain() {
			claimed.Add(1)
		}
		wq.reset()
	}
	for claimed.Load() < batches {
		if _, ok := wq.pop(); ok {
			claimed.Add(1)
		}
	}
	<-done
	if got := claimed.Load(); got != batches {
		t.Fatalf("claimed %d tasks across resets, want %d", got, batches)
	}
}

// TestBarrierAssertsDequesEmpty locks in that the WorkStealing barrier
// asserts (rather than silently tolerates) a non-empty deque, since
// checkpoint consistency rests on that invariant.
func TestBarrierAssertsDequesEmpty(t *testing.T) {
	p := newPool(2, WorkStealing)
	defer p.close()
	p.submit(func() time.Duration { return time.Microsecond })
	p.barrier() // sanity: a normal barrier passes

	// Sneak a task into a deque behind the pool's back; the next barrier
	// must panic on the violated invariant.
	p.deques[0].push(&poolTask{fn: func() time.Duration { return 0 }, cell: &taskSlot{}})
	defer func() {
		if recover() == nil {
			t.Fatal("barrier did not panic on a non-empty deque")
		}
		// Leave the deque actually empty so close() does not hang and the
		// pool can shut down cleanly.
		p.deques[0].pop()
	}()
	p.barrier()
}
