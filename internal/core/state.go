// Package core implements the paper's contribution: a thread-level
// parallel shared-memory architecture for OWL TBox classification
// (Quan & Haarslev, ICPP 2017, Sections III-IV).
//
// Classification runs in three parallel phases over shared atomic data
// structures P (possible subsumees) and K (known subsumees):
//
//  1. Random division (Algorithm 2): the named concepts are shuffled and
//     partitioned into w equal groups; each worker tests all pairs inside
//     its group.
//  2. Group division (Algorithm 3): for every concept X with P_X ≠ ∅ a
//     group G_X = P_X is dispatched round-robin to the worker pool until
//     P drains.
//  3. Concept hierarchy (Algorithm 4): partial hierarchies H_X are built
//     in parallel by reducing each K_X to the direct subsumees, then the
//     conquer step merges them into the final taxonomy.
//
// The optimized mode (Section IV, Algorithm 5) tests each pair
// symmetrically and uses known subsumees to prune untested possibilities
// from P without calling the reasoner.
package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"parowl/internal/bitset"
	"parowl/internal/dl"
	"parowl/internal/reasoner"
)

// Satisfiability states, memoized per concept.
const (
	satUnknown int32 = iota
	satYes
	satNo
)

// state is the shared-memory core of a classification run: the paper's
// "global atomic data structures". All hot-path mutation is lock-free
// (bitset CAS); the trace collector uses a mutex off the hot path.
type state struct {
	tbox  *dl.TBox
	named []*dl.Concept // N_O with ⊤ appended as the last element
	index map[*dl.Concept]int
	n     int // len(named), including ⊤
	top   int // index of ⊤

	r reasoner.Interface

	// ctx is the run context every reasoner call inherits from;
	// testTimeout/testRetries implement the per-test budget with
	// escalation (see budget.go). ctx is never nil (Background by
	// default).
	ctx         context.Context
	testTimeout time.Duration
	testRetries int

	// P[x] bit y: subsumption between x and y still unresolved. In basic
	// mode the bit means "y is a possible subsumee of x" and both (x,y)
	// and (y,x) bits exist; in optimized mode the pair is stored only at
	// the smaller index (paper Sec. IV, Definition 2).
	P []*bitset.Atomic
	// K[x] bit y: y is a known subsumee of x (y ⊑ x, y ≠ x).
	K []*bitset.Atomic
	// tested bit (x,y): subs?(x,y) — "is y ⊑ x" — has been decided
	// (tested or inferred). TestAndSet is the paper's tested() predicate.
	// Only allocated in basic mode: optimized mode claims pairs by
	// atomically clearing their single P bit, which both implements
	// tested() and halves the shared-state footprint (P stores each pair
	// once, and no n×n matrix exists).
	tested *bitset.Matrix

	satState []atomic.Int32

	optimized bool
	// maxGroupSize caps phase-2 task sizes (0 = unbounded, the paper's
	// dispatch).
	maxGroupSize int

	// told[x] is the reflexive-transitive closure of x's told named
	// subsumers (nil unless Options.UseToldSubsumers): if told[y] has x,
	// then y ⊑ x follows from asserted axioms and needs no reasoner call.
	told []*bitset.Set
	// disjPairs holds asserted named disjointness pairs; together with
	// told they justify negative answers (told-disjoint satisfiable
	// concepts cannot subsume one another).
	disjPairs [][2]int

	// filter is the plug-in's optional ModelFilter capability (non-nil
	// only with Options.ModelFilter and a capable plug-in): a cheap sound
	// non-subsumption probe consulted before dispatching subs?.
	filter reasoner.ModelFilter
	// prepassed is set once the EL prepass has seeded K, enabling the
	// K-shortcircuit in testDirected; when off the hot path pays nothing.
	prepassed bool

	// hard[x] is an EWMA (α = 1/4) of the charged cost of plug-in tests
	// involving concept x, stored as fixed-point nanoseconds shifted left
	// by hardShift; non-nil only under WorkStealing and Async, where it
	// orders each batch's submission hardest-first (LPT). The blend is a
	// CAS loop (see observeHard), so concurrent updates from async
	// workers never lose an observation; read through hardLoad.
	hard []atomic.Int64

	// epochBase is the epoch count restored from a resumed snapshot; the
	// pool's own epoch counter (reset to zero per run) is added to it when
	// tagging new snapshots, so epochs stay monotonic across resumes.
	epochBase int64

	// counters for statistics
	satTests   atomic.Int64
	subsTests  atomic.Int64
	pruned     atomic.Int64 // pairs resolved without a reasoner call
	toldHits   atomic.Int64 // tests answered from the told closure
	preSeeded  atomic.Int64 // tests resolved from EL prepass seeding
	filterHits atomic.Int64 // subs? dispatches skipped by the model filter
	timedOut   atomic.Int64 // tests abandoned on budget expiry
	recovered  atomic.Int64 // plug-in panics converted to per-test errors
	// nodeBudget / branchBudget count tests the plug-in itself abandoned
	// on resource exhaustion (reasoner.ErrNodeBudget / ErrBranchBudget),
	// kept separate from timedOut so operators can tell which degradation
	// fired.
	nodeBudget   atomic.Int64
	branchBudget atomic.Int64

	// undecided collects the degraded tests for Result.Undecided.
	undecidedMu sync.Mutex
	undecided   []Undecided

	failure atomic.Pointer[classError]
}

// buildTold computes the told-subsumer closure from the asserted named
// hierarchy (SubClassOf/EquivalentClasses edges between names, including
// named conjuncts on the right side). Read-only after construction.
func (s *state) buildTold() {
	n := s.n
	parents := make([][]int, n)
	addEdge := func(sub, sup *dl.Concept) {
		si, ok := s.index[sub]
		if !ok {
			return
		}
		switch sup.Op {
		case dl.OpName, dl.OpTop:
			if pi, ok := s.index[sup]; ok {
				parents[si] = append(parents[si], pi)
			}
		case dl.OpAnd:
			for _, arg := range sup.Args {
				if arg.Op == dl.OpName {
					if pi, ok := s.index[arg]; ok {
						parents[si] = append(parents[si], pi)
					}
				}
			}
		}
	}
	for _, ax := range s.tbox.AsGCIs() {
		addEdge(ax.Sub, ax.Sup)
	}
	for _, ax := range s.tbox.Axioms() {
		if ax.Kind == dl.AxDisjoint && ax.Sub.Op == dl.OpName && ax.Sup.Op == dl.OpName {
			a, aok := s.index[ax.Sub]
			b, bok := s.index[ax.Sup]
			if aok && bok {
				s.disjPairs = append(s.disjPairs, [2]int{a, b})
			}
		}
	}
	s.told = make([]*bitset.Set, n)
	var visit func(i int, acc *bitset.Set)
	visit = func(i int, acc *bitset.Set) {
		if acc.Test(i) {
			return
		}
		acc.Set(i)
		for _, p := range parents[i] {
			visit(p, acc)
		}
	}
	for i := 0; i < n; i++ {
		acc := bitset.New(n)
		visit(i, acc)
		acc.Set(s.top) // everything is below ⊤
		s.told[i] = acc
	}
}

type classError struct{ err error }

// newState initializes P and K per the paper: P_X starts as all other
// concepts, K_X empty. ⊤ participates as a regular node so that concepts
// equivalent to ⊤ are discovered (paper Example 3.2 reports A ≡ ⊤), but
// the trivially true tests X ⊑ ⊤ are pre-seeded into K_⊤.
func newState(t *dl.TBox, r reasoner.Interface, optimized bool) *state {
	named := t.NamedConcepts()
	n := len(named) + 1
	s := &state{
		tbox:      t,
		named:     make([]*dl.Concept, 0, n),
		index:     make(map[*dl.Concept]int, n),
		n:         n,
		top:       n - 1,
		r:         r,
		ctx:       context.Background(),
		P:         make([]*bitset.Atomic, n),
		K:         make([]*bitset.Atomic, n),
		satState:  make([]atomic.Int32, n),
		optimized: optimized,
	}
	if !optimized {
		s.tested = bitset.NewMatrix(n, n)
	}
	s.named = append(s.named, named...)
	s.named = append(s.named, t.Factory.Top())
	for i, c := range s.named {
		s.index[c] = i
	}
	for i := 0; i < n; i++ {
		s.P[i] = bitset.NewAtomic(n)
		s.K[i] = bitset.NewAtomic(n)
	}
	if optimized {
		// Pair (x,y) lives at the smaller index: P_x = {y | y > x}.
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				s.P[x].Set(y)
			}
		}
	} else {
		for x := 0; x < n; x++ {
			s.P[x].FillAll()
			s.P[x].Clear(x)
		}
	}
	// X ⊑ ⊤ is trivially true for every X: seed K_⊤, and in basic mode
	// resolve the directed entry (⊤, X) up front. The opposite direction
	// ⊤ ⊑ X (equivalence to ⊤, see paper Example 3.2's A ≡ ⊤) stays in P
	// and is decided by a test: in basic mode it is the pair entry
	// (X, ⊤), in optimized mode the single stored pair {X, ⊤} keeps both
	// directions alive.
	s.satState[s.top].Store(satYes)
	for x := 0; x < n-1; x++ {
		s.K[s.top].Set(x)
		if !s.optimized {
			s.tested.Set(s.top, x)
			s.P[s.top].Clear(x)
		}
	}
	return s
}

// fail records the first error and poisons the run.
func (s *state) fail(err error) {
	s.failure.CompareAndSwap(nil, &classError{err})
}

// failed reports whether the run is poisoned.
func (s *state) failed() bool { return s.failure.Load() != nil }

func (s *state) errOrNil() error {
	if f := s.failure.Load(); f != nil {
		return f.err
	}
	return nil
}

// sat memoizes sat?(x). On discovering an unsatisfiable concept it empties
// P_x and removes x from every other P (Algorithm 2's unsat handling):
// x ≡ ⊥, so no subsumption test involving x is ever needed.
func (s *state) sat(x int) bool {
	switch s.satState[x].Load() {
	case satYes:
		return true
	case satNo:
		return false
	}
	ok, err := s.budgetedSat(s.named[x])
	s.satTests.Add(1)
	if err != nil {
		if isDegraded(err) {
			// Conservative fallback: treat the concept as satisfiable, so
			// the run never asserts an unsatisfiability it did not prove.
			// Subsumptions involving x are still decided by their own
			// tests; only the x ≡ ⊥ shortcut is lost.
			s.recordUndecided(nil, s.named[x], err)
			s.satState[x].Store(satYes)
			return true
		}
		s.fail(err)
		return false
	}
	if ok {
		s.satState[x].Store(satYes)
		return true
	}
	if s.satState[x].CompareAndSwap(satUnknown, satNo) {
		s.P[x].ClearAll()
		for y := 0; y < s.n; y++ {
			if y != x {
				s.P[y].Clear(x)
			}
		}
	}
	return false
}

// remainingPossible is |R_O| = Σ|P_X| (paper Definition 1/3), counting
// unresolved pairs (each pair counts once in optimized mode, twice in
// basic mode, matching the paper's InitialPossible bookkeeping).
func (s *state) remainingPossible() int64 {
	var total int64
	for _, p := range s.P {
		total += int64(p.Count())
	}
	return total
}

// testDirected runs subs?(x, y) — is y ⊑ x — through the plug-in,
// recording the result in K/P and returning the verdict. The caller must
// have claimed the tested bit. Returns the test's charged cost.
func (s *state) testDirected(x, y int) (bool, time.Duration) {
	if s.prepassed && s.K[x].Test(y) {
		// Only the prepass can have set this bit before the directed test
		// runs: every directed test is claimed exactly once, and the only
		// other K writers are this function (after the claim) and
		// pruneAfter, which clears bits. The seeded fact is entailed by
		// the TBox, so the positive answer needs no plug-in call.
		s.preSeeded.Add(1)
		return true, 0
	}
	if s.told != nil {
		if s.told[y].Test(x) {
			// y ⊑ x is asserted (transitively): no reasoner call needed.
			s.toldHits.Add(1)
			s.K[x].Set(y)
			return true, 0
		}
		// Told disjointness refutes subsumption: if ancestors of x and y
		// are asserted disjoint, y ⊑ x would make y unsatisfiable — but
		// the caller already established sat?(y).
		for _, pr := range s.disjPairs {
			if (s.told[x].Test(pr[0]) && s.told[y].Test(pr[1])) ||
				(s.told[x].Test(pr[1]) && s.told[y].Test(pr[0])) {
				s.toldHits.Add(1)
				return false, 0
			}
		}
	}
	if s.filter != nil && s.filterDisproves(x, y) {
		// The filter's "definitely not subsumed" verdict is sound, so the
		// negative is final: no K update, no plug-in dispatch.
		s.filterHits.Add(1)
		return false, 0
	}
	start := time.Now()
	res, err := s.budgetedSubs(s.named[x], s.named[y])
	s.subsTests.Add(1)
	if err != nil {
		if isDegraded(err) {
			// The pair was already claimed, so the loop progresses; the
			// subsumption is NOT recorded in K (the taxonomy asserts only
			// proven subsumptions) and the pair is surfaced in
			// Result.Undecided.
			s.recordUndecided(s.named[x], s.named[y], err)
			return false, time.Since(start)
		}
		s.fail(err)
		return false, 0
	}
	var cost time.Duration
	if v, ok := s.r.(reasoner.Virtual); ok {
		cost = v.VirtualSubsCost(s.named[x], s.named[y], res)
	} else {
		cost = time.Since(start)
	}
	s.observeHard(x, y, cost)
	if res {
		s.K[x].Set(y)
	}
	return res, cost
}

// hardShift scales the hardness EWMAs to fixed point: the stored value is
// nanoseconds << hardShift, giving the α = 1/4 blend 8 fractional bits so
// repeated small observations are not rounded away. Headroom is ample: an
// hour-long test is ~2^60 after the shift.
const hardShift = 8

// observeHard folds one finished directed test's cost into both concepts'
// hardness EWMAs. First observation seeds the average; later ones blend
// with α = 1/4 through a CAS loop, so concurrent observers (async workers
// publish continuously) each land their update instead of overwriting one
// another. No-op unless the run scheduled with WorkStealing or Async.
func (s *state) observeHard(x, y int, cost time.Duration) {
	if s.hard == nil || cost <= 0 {
		return
	}
	v := int64(cost) << hardShift
	for _, c := range [2]int{x, y} {
		for {
			old := s.hard[c].Load()
			nw := v
			if old != 0 {
				nw = old + (v-old)>>2
			}
			if s.hard[c].CompareAndSwap(old, nw) {
				break
			}
		}
	}
}

// hardLoad returns concept c's hardness EWMA in whole nanoseconds.
func (s *state) hardLoad(c int) int64 {
	return s.hard[c].Load() >> hardShift
}

// filterDisproves asks the ModelFilter whether y ⊑ x is impossible. A
// panicking filter is treated as "don't know" — the probe is advisory
// and must never poison the run.
func (s *state) filterDisproves(x, y int) (hit bool) {
	defer func() {
		if recover() != nil {
			hit = false
		}
	}()
	return s.filter.DisprovesSubs(s.ctx, s.named[x], s.named[y])
}

// resolveBasic performs the basic-mode directed test of Algorithm 2 /
// Algorithm 3: claim the pair, check satisfiability, test, update P.
// It returns the charged cost.
func (s *state) resolveBasic(x, y int) time.Duration {
	if x == y || s.failed() {
		return 0
	}
	if s.tested.TestAndSet(x, y) {
		return 0
	}
	if !s.sat(x) || !s.sat(y) {
		return 0
	}
	res, cost := s.testDirected(x, y)
	_ = res
	s.P[x].Clear(y)
	return cost
}

// mutex-guarded trace sink; see trace.go.
type traceSink struct {
	mu    sync.Mutex
	trace *Trace
}
