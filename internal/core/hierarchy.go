package core

import (
	"time"

	"parowl/internal/bitset"
	"parowl/internal/taxonomy"
)

// buildTaxonomy is phase 3 (Sec. III-B, Algorithm 4): once P is empty,
// the K sets contain the discovered subsumptions. Equivalence classes are
// contracted, then a partial hierarchy H_X — the direct subsumees of X —
// is computed for every class in parallel (the divide step), and the
// conquer step merges them into the final taxonomy.
//
// Algorithm 4 reduces K_X by deleting every Z ∈ K_Y for Y ∈ K_X. With the
// Section IV pruning active, K is already partially reduced, so a
// one-step lookahead could miss indirect subsumees reachable in two or
// more K-steps; the reduction here therefore removes everything reachable
// from a K-child through the K-graph, which is exactly the transitive
// reduction the paper's example computes.
func (s *state) buildTaxonomy(p *pool, trace *Trace) (*taxonomy.Taxonomy, error) {
	before := s.snapshot()
	n := s.n

	// Contract equivalence classes: mutual K membership (Algorithm 4's
	// setEquivalentConcept). Unsatisfiable concepts go to ⊥ and take no
	// further part.
	canon := make([]int, n)
	for i := range canon {
		canon[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for canon[i] != i {
			canon[i] = canon[canon[i]]
			i = canon[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra > rb {
			ra, rb = rb, ra
		}
		if ra != rb {
			canon[rb] = ra
		}
	}
	unsat := func(x int) bool { return s.satState[x].Load() == satNo }
	for x := 0; x < n; x++ {
		if unsat(x) {
			continue
		}
		s.K[x].ForEach(func(y int) bool {
			if !unsat(y) && s.K[y].Test(x) {
				union(x, y)
			}
			return true
		})
	}

	// Contracted K-graph over canonical representatives.
	members := make([][]int, n)
	for m := 0; m < n; m++ {
		if !unsat(m) {
			r := find(m)
			members[r] = append(members[r], m)
		}
	}
	kc := make([]*bitset.Set, n)
	for x := 0; x < n; x++ {
		if unsat(x) || find(x) != x {
			continue
		}
		acc := bitset.New(n)
		for _, member := range members[x] {
			s.K[member].ForEach(func(y int) bool {
				if unsat(y) {
					return true
				}
				if cy := find(y); cy != x {
					acc.Set(cy)
				}
				return true
			})
		}
		kc[x] = acc
	}

	// Divide: one parallel task per class computes H_X, the direct
	// children, by discarding every child reachable from another child.
	direct := make([][]int, n)
	for x := 0; x < n; x++ {
		if kc[x] == nil || kc[x].IsEmpty() {
			continue
		}
		x := x
		p.submit(func() time.Duration {
			start := time.Now()
			direct[x] = s.partialHierarchy(x, kc)
			return time.Since(start)
		})
	}
	s.record(trace, PhaseHierarchy, 1, before, p.barrier())
	if err := s.errOrNil(); err != nil {
		return nil, err
	}

	// Conquer: merge the partial hierarchies top-down into the taxonomy.
	b := taxonomy.NewBuilder(s.tbox.Factory)
	for x := 0; x < n; x++ {
		b.AddConcept(s.named[x])
		if unsat(x) {
			b.MarkUnsatisfiable(s.named[x])
			continue
		}
		if cx := find(x); cx != x {
			b.MarkEquivalent(s.named[cx], s.named[x])
		}
	}
	for x := 0; x < n; x++ {
		for _, child := range direct[x] {
			b.AddEdge(s.named[x], s.named[child])
		}
	}
	return b.Build()
}

// partialHierarchy computes H_X: the members of K_X (contracted) that are
// not reachable from another member through the contracted K-graph.
func (s *state) partialHierarchy(x int, kc []*bitset.Set) []int {
	children := kc[x].Members()
	if len(children) <= 1 {
		return children
	}
	// Union of everything strictly below each child.
	below := bitset.New(s.n)
	var dfs func(y int)
	dfs = func(y int) {
		if kc[y] == nil {
			return
		}
		kc[y].ForEach(func(z int) bool {
			if !below.Test(z) {
				below.Set(z)
				dfs(z)
			}
			return true
		})
	}
	for _, y := range children {
		dfs(y)
	}
	out := children[:0]
	for _, y := range children {
		if !below.Test(y) {
			out = append(out, y)
		}
	}
	return out
}
