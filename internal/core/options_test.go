package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"parowl/internal/dl"

	"parowl/internal/reasoner"
)

// TestAdaptiveCyclesStopEarly: with a high gain threshold, the adaptive
// controller must cut the random phase short; the result stays correct.
func TestAdaptiveCyclesStopEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tb := randomTaxonomyTBox(rng, 30)
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{})

	fixed, err := Classify(tb, Options{
		Reasoner: oracle, Workers: 4, RandomCycles: 12, CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Classify(tb, Options{
		Reasoner: oracle, Workers: 4, RandomCycles: 12, CollectTrace: true,
		AdaptiveCycles: true, MinCycleGain: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !adaptive.Taxonomy.Equal(fixed.Taxonomy) {
		t.Fatal("adaptive run produced a different taxonomy")
	}
	count := func(tr *Trace) int {
		n := 0
		for _, c := range tr.Cycles {
			if c.Phase == PhaseRandom {
				n++
			}
		}
		return n
	}
	if fc, ac := count(fixed.Trace), count(adaptive.Trace); ac >= fc {
		t.Errorf("adaptive ran %d random cycles, fixed ran %d — no early stop", ac, fc)
	}
}

// TestAdaptiveCyclesDefaultBound: AdaptiveCycles with RandomCycles 0 must
// terminate (bounded at 64) even with a tiny threshold.
func TestAdaptiveCyclesDefaultBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tb := randomTaxonomyTBox(rng, 10)
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{})
	res, err := Classify(tb, Options{
		Reasoner: oracle, Workers: 2, AdaptiveCycles: true,
		MinCycleGain: 1e-12, CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	random := 0
	for _, c := range res.Trace.Cycles {
		if c.Phase == PhaseRandom {
			random++
		}
	}
	if random > 64 {
		t.Errorf("adaptive ran %d random cycles, bound is 64", random)
	}
}

// TestToldSubsumersAblation: same taxonomy, strictly fewer plug-in calls
// on a told-heavy corpus, with the shortcut hits accounted.
func TestToldSubsumersAblation(t *testing.T) {
	tb := chainTBox(14) // every subsumption is told: maximal shortcut value
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{})
	plain, err := Classify(tb, Options{Reasoner: oracle, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	told, err := Classify(tb, Options{Reasoner: oracle, Workers: 3, UseToldSubsumers: true})
	if err != nil {
		t.Fatal(err)
	}
	if !told.Taxonomy.Equal(plain.Taxonomy) {
		t.Fatal("told-subsumer run produced a different taxonomy")
	}
	if told.Stats.ToldHits == 0 {
		t.Error("no told hits on a pure chain")
	}
	if told.Stats.SubsTests >= plain.Stats.SubsTests {
		t.Errorf("told run used %d tests, plain %d — no reduction",
			told.Stats.SubsTests, plain.Stats.SubsTests)
	}
}

// TestToldSubsumersCorrectAcrossRandomOntologies property-checks that the
// shortcut never changes results.
func TestToldSubsumersCorrectAcrossRandomOntologies(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTaxonomyTBox(rng, 4+rng.Intn(12))
		r := tableauFactory(tb)
		plain, err := Classify(tb, Options{Reasoner: r, Workers: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		told, err := Classify(tb, Options{Reasoner: r, Workers: 3, Seed: seed, UseToldSubsumers: true})
		if err != nil {
			t.Fatal(err)
		}
		if !told.Taxonomy.Equal(plain.Taxonomy) {
			t.Fatalf("seed %d: told shortcut changed the taxonomy", seed)
		}
	}
}

// TestWorkerLoadsRecorded: the trace must carry per-worker loads whose sum
// matches the cycle runtime, and a sane imbalance factor.
func TestWorkerLoadsRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tb := randomTaxonomyTBox(rng, 25)
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{
		SubsCost: reasoner.UniformCost(1000, 0.1, 1),
	})
	res, err := Classify(tb, Options{Reasoner: oracle, Workers: 4, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Trace.Cycles {
		if len(c.Tasks) == 0 {
			continue
		}
		if len(c.WorkerLoads) != 4 {
			t.Fatalf("cycle %d: %d worker loads, want 4", i, len(c.WorkerLoads))
		}
		var sum, runtime int64
		for _, l := range c.WorkerLoads {
			sum += int64(l)
		}
		runtime = int64(c.Runtime())
		if sum != runtime {
			t.Errorf("cycle %d: worker loads sum %d != runtime %d", i, sum, runtime)
		}
		if im := c.Imbalance(); im < 1.0-1e-9 && im != 0 {
			t.Errorf("cycle %d: imbalance %.3f < 1", i, im)
		}
	}
}

// TestImbalanceComputation checks the metric directly.
func TestImbalanceComputation(t *testing.T) {
	c := &Cycle{WorkerLoads: []time.Duration{100, 100, 100, 100}}
	if im := c.Imbalance(); im < 0.999 || im > 1.001 {
		t.Errorf("balanced imbalance = %.3f, want 1", im)
	}
	c = &Cycle{WorkerLoads: []time.Duration{400, 0, 0, 0}}
	if im := c.Imbalance(); im < 3.999 || im > 4.001 {
		t.Errorf("single-straggler imbalance = %.3f, want 4", im)
	}
	if im := (&Cycle{}).Imbalance(); im != 0 {
		t.Errorf("empty imbalance = %.3f", im)
	}
}

type panickyReasoner struct {
	after int
	calls atomic.Int64
}

func (p *panickyReasoner) Sat(context.Context, *dl.Concept) (bool, error) { return true, nil }
func (p *panickyReasoner) Subs(context.Context, *dl.Concept, *dl.Concept) (bool, error) {
	if p.calls.Add(1) > int64(p.after) {
		panic("injected plug-in panic")
	}
	return false, nil
}

// TestPluginPanicRecovered: a panicking plug-in degrades only the tests
// it panics on — the run completes with a sound taxonomy, counts the
// panics in Stats.Recovered, and lists the affected pairs as undecided.
// No crashed process, no deadlocked barrier, no poisoned run.
func TestPluginPanicRecovered(t *testing.T) {
	for _, after := range []int{0, 3, 11} {
		tb := chainTBox(8)
		res, err := Classify(tb, Options{Reasoner: &panickyReasoner{after: after}, Workers: 4})
		if err != nil {
			t.Fatalf("after=%d: run failed instead of degrading: %v", after, err)
		}
		if res.Stats.Recovered == 0 {
			t.Fatalf("after=%d: no panics recorded in Stats.Recovered", after)
		}
		if len(res.Undecided) == 0 {
			t.Fatalf("after=%d: panicked tests missing from Result.Undecided", after)
		}
		for _, u := range res.Undecided {
			if u.Reason != "panic" {
				t.Errorf("after=%d: undecided reason = %q, want %q", after, u.Reason, "panic")
			}
			if !strings.Contains(u.String(), "panic") {
				t.Errorf("after=%d: undecided string %q", after, u)
			}
		}
		if res.Taxonomy == nil {
			t.Fatalf("after=%d: no taxonomy", after)
		}
	}
}

// TestToldDisjointShortcut: asserted disjointness between satisfiable
// branches answers the cross-branch tests negatively without the plug-in.
func TestToldDisjointShortcut(t *testing.T) {
	tb := dl.NewTBox("disjtold")
	a, b := tb.Declare("A"), tb.Declare("B")
	var below []*dl.Concept
	for i := 0; i < 5; i++ {
		ca := tb.Declare(fmt.Sprintf("A%d", i))
		cb := tb.Declare(fmt.Sprintf("B%d", i))
		tb.SubClassOf(ca, a)
		tb.SubClassOf(cb, b)
		below = append(below, ca, cb)
	}
	tb.DisjointClasses(a, b)
	r := tableauFactory(tb)
	plain, err := Classify(tb, Options{Reasoner: r, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	told, err := Classify(tb, Options{Reasoner: r, Workers: 2, UseToldSubsumers: true})
	if err != nil {
		t.Fatal(err)
	}
	if !told.Taxonomy.Equal(plain.Taxonomy) {
		t.Fatal("told-disjoint shortcut changed the taxonomy")
	}
	// Every A-branch × B-branch pair (both directions) plus the told
	// positives are answered without the reasoner.
	if told.Stats.ToldHits < 50 {
		t.Errorf("told hits = %d, expected the cross-branch tests covered", told.Stats.ToldHits)
	}
	if told.Stats.SubsTests >= plain.Stats.SubsTests {
		t.Errorf("no test reduction: %d vs %d", told.Stats.SubsTests, plain.Stats.SubsTests)
	}
	_ = below
}

// slowReasoner answers correctly but takes a while per call, honoring
// the context like a well-behaved plug-in.
type slowReasoner struct{ d time.Duration }

func (s slowReasoner) Sat(context.Context, *dl.Concept) (bool, error) { return true, nil }
func (s slowReasoner) Subs(ctx context.Context, _, _ *dl.Concept) (bool, error) {
	t := time.NewTimer(s.d)
	defer t.Stop()
	select {
	case <-t.C:
		return false, nil
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

// TestClassifyContextCancel: cancelling the context aborts the run with
// the context error, well before the uncancelled run would finish.
func TestClassifyContextCancel(t *testing.T) {
	tb := chainTBox(40) // ~1600 pairs × 1ms would be seconds of work
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ClassifyContext(ctx, tb, Options{Reasoner: slowReasoner{time.Millisecond}, Workers: 2})
	if err == nil {
		t.Fatal("no error from cancelled classification")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

// TestClassifyContextCompletes: an uncancelled context changes nothing.
func TestClassifyContextCompletes(t *testing.T) {
	tb := chainTBox(6)
	res, err := ClassifyContext(context.Background(), tb, Options{Reasoner: tableauFactory(tb), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Taxonomy == nil {
		t.Fatal("nil taxonomy")
	}
}

// TestMaxGroupSizeCorrectAndBalanced: splitting phase-2 groups must not
// change the taxonomy and must produce more, smaller tasks.
func TestMaxGroupSizeCorrectAndBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tb := randomTaxonomyTBox(rng, 30)
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{})
	plain, err := Classify(tb, Options{Reasoner: oracle, Workers: 4, RandomCycles: 1, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	split, err := Classify(tb, Options{Reasoner: oracle, Workers: 4, RandomCycles: 1, CollectTrace: true, MaxGroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !split.Taxonomy.Equal(plain.Taxonomy) {
		t.Fatal("group splitting changed the taxonomy")
	}
	tasks := func(tr *Trace) int {
		for _, c := range tr.Cycles {
			if c.Phase == PhaseGroup {
				return len(c.Tasks)
			}
		}
		return 0
	}
	if pt, st := tasks(plain.Trace), tasks(split.Trace); st <= pt {
		t.Errorf("split tasks %d <= plain tasks %d", st, pt)
	}
}
