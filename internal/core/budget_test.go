package core

import (
	"context"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"parowl/internal/dl"
)

// chainIdx maps a chain concept "A<i>" to i, or -1 for ⊤.
func chainIdx(c *dl.Concept) int {
	if c.Op == dl.OpTop {
		return -1
	}
	i, err := strconv.Atoi(strings.TrimPrefix(c.String(), "A"))
	if err != nil {
		return -1
	}
	return i
}

// chainSubs is the ground truth of chainTBox: A_j ⊑ A_i iff j ≥ i, and
// everything is below ⊤.
func chainSubs(sup, sub *dl.Concept) bool {
	if sup.Op == dl.OpTop {
		return true
	}
	if sub.Op == dl.OpTop {
		return false
	}
	return chainIdx(sub) >= chainIdx(sup)
}

// hangingReasoner answers chain subsumptions instantly except for the one
// configured directed test, which never terminates: it blocks until its
// context is cancelled — the injected pathological test of the
// deadline-fallback scenario.
type hangingReasoner struct {
	hangSup, hangSub string
	hangs            atomic.Int64
}

func (h *hangingReasoner) Sat(context.Context, *dl.Concept) (bool, error) { return true, nil }

func (h *hangingReasoner) Subs(ctx context.Context, sup, sub *dl.Concept) (bool, error) {
	if sup.String() == h.hangSup && sub.String() == h.hangSub {
		h.hangs.Add(1)
		<-ctx.Done()
		return false, ctx.Err()
	}
	return chainSubs(sup, sub), nil
}

// TestTimeoutDegradesToUndecided is the acceptance scenario: a
// never-terminating subsumption test under a per-test budget must not
// hang the run. The classification completes promptly, records the pair
// as undecided, counts it in Stats.TimedOut, and yields a sound taxonomy
// that simply lacks the unproven subsumption.
func TestTimeoutDegradesToUndecided(t *testing.T) {
	tb := chainTBox(6)
	h := &hangingReasoner{hangSup: "A2", hangSub: "A3"} // a direct edge of the chain
	start := time.Now()
	res, err := Classify(tb, Options{
		Reasoner:    h,
		Workers:     3,
		TestTimeout: 25 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("run took %v; the hanging test should cost one budget, not a hang", elapsed)
	}
	if res.Stats.TimedOut != 1 {
		t.Errorf("Stats.TimedOut = %d, want 1", res.Stats.TimedOut)
	}
	if len(res.Undecided) != 1 {
		t.Fatalf("Undecided = %v, want exactly the hanging pair", res.Undecided)
	}
	u := res.Undecided[0]
	if u.Sup.String() != "A2" || u.Sub.String() != "A3" || u.Reason != "timeout" {
		t.Errorf("Undecided[0] = %v, want subs?(A2, A3) [timeout]", u)
	}
	// Soundness: nothing unproven is asserted — A3 is no longer placed
	// below A2 (the only evidence was the abandoned test)...
	f := tb.Factory
	if res.Taxonomy.IsAncestor(f.Name("A2"), f.Name("A3")) {
		t.Error("unproven subsumption A3 ⊑ A2 asserted in the taxonomy")
	}
	// ...while every subsumption that did not depend on the hanging test
	// survives: A3 stays below A1 and A4 below A2.
	if !res.Taxonomy.IsAncestor(f.Name("A1"), f.Name("A3")) {
		t.Error("proven subsumption A3 ⊑ A1 missing")
	}
	if !res.Taxonomy.IsAncestor(f.Name("A2"), f.Name("A4")) {
		t.Error("proven subsumption A4 ⊑ A2 missing")
	}
}

// slowPairReasoner takes `delay` on the configured directed test (honoring
// the context) and answers everything else instantly.
type slowPairReasoner struct {
	slowSup, slowSub string
	delay            time.Duration
	attempts         atomic.Int64
}

func (s *slowPairReasoner) Sat(context.Context, *dl.Concept) (bool, error) { return true, nil }

func (s *slowPairReasoner) Subs(ctx context.Context, sup, sub *dl.Concept) (bool, error) {
	if sup.String() == s.slowSup && sub.String() == s.slowSub {
		s.attempts.Add(1)
		timer := time.NewTimer(s.delay)
		defer timer.Stop()
		select {
		case <-timer.C:
			return chainSubs(sup, sub), nil
		case <-ctx.Done():
			return false, ctx.Err()
		}
	}
	return chainSubs(sup, sub), nil
}

// TestRetryEscalation: a test too slow for the base budget but within the
// escalated one is retried with doubled budgets until it succeeds — the
// result is decided, not degraded.
func TestRetryEscalation(t *testing.T) {
	tb := chainTBox(5)
	s := &slowPairReasoner{slowSup: "A1", slowSub: "A2", delay: 120 * time.Millisecond}
	res, err := Classify(tb, Options{
		Reasoner:    s,
		Workers:     2,
		TestTimeout: 40 * time.Millisecond, // attempts get 40ms, 80ms, 160ms
		TestRetries: 2,
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if got := s.attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (two timeouts, then success under the 160ms budget)", got)
	}
	if res.Stats.TimedOut != 0 || len(res.Undecided) != 0 {
		t.Errorf("escalated test recorded as degraded: TimedOut=%d Undecided=%v",
			res.Stats.TimedOut, res.Undecided)
	}
	// The decided answer is in the taxonomy: A2 ⊑ A1.
	if !res.Taxonomy.IsAncestor(tb.Factory.Name("A1"), tb.Factory.Name("A2")) {
		t.Error("subsumption decided on the escalated attempt missing from the taxonomy")
	}
}

// satHangingReasoner hangs sat?(A2) until cancelled; everything else is
// instant chain truth.
type satHangingReasoner struct{ hangs atomic.Int64 }

func (s *satHangingReasoner) Sat(ctx context.Context, c *dl.Concept) (bool, error) {
	if c.String() == "A2" {
		s.hangs.Add(1)
		<-ctx.Done()
		return false, ctx.Err()
	}
	return true, nil
}

func (s *satHangingReasoner) Subs(_ context.Context, sup, sub *dl.Concept) (bool, error) {
	return chainSubs(sup, sub), nil
}

// TestSatTimeoutConservative: a timed-out satisfiability test treats the
// concept as satisfiable (never asserting an unproven A ≡ ⊥) and lists it
// as undecided with a nil Sup.
func TestSatTimeoutConservative(t *testing.T) {
	tb := chainTBox(5)
	s := &satHangingReasoner{}
	res, err := Classify(tb, Options{
		Reasoner:    s,
		Workers:     2,
		TestTimeout: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if res.Stats.TimedOut < 1 {
		t.Fatalf("Stats.TimedOut = %d, want >= 1", res.Stats.TimedOut)
	}
	found := false
	for _, u := range res.Undecided {
		if u.Sup == nil && u.Sub.String() == "A2" && u.Reason == "timeout" {
			found = true
		}
	}
	if !found {
		t.Fatalf("sat?(A2) timeout missing from Undecided: %v", res.Undecided)
	}
	// Conservatively satisfiable: A2 keeps its chain position.
	if !res.Taxonomy.IsAncestor(tb.Factory.Name("A1"), tb.Factory.Name("A2")) {
		t.Error("A2 lost its taxonomy position after the sat timeout")
	}
}

// TestOptionsValidate covers the rejection matrix.
func TestOptionsValidate(t *testing.T) {
	ok := Options{Reasoner: &hangingReasoner{}}
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"nil reasoner", func(o *Options) { o.Reasoner = nil }},
		{"negative workers", func(o *Options) { o.Workers = -1 }},
		{"negative cycles", func(o *Options) { o.RandomCycles = -2 }},
		{"unknown mode", func(o *Options) { o.Mode = Mode(99) }},
		{"unknown scheduling", func(o *Options) { o.Scheduling = Scheduling(7) }},
		{"negative gain", func(o *Options) { o.MinCycleGain = -0.5 }},
		{"gain >= 1", func(o *Options) { o.MinCycleGain = 1.5 }},
		{"negative group size", func(o *Options) { o.MaxGroupSize = -3 }},
		{"negative timeout", func(o *Options) { o.TestTimeout = -time.Second }},
		{"negative retries", func(o *Options) { o.TestRetries = -1 }},
		{"retries without timeout", func(o *Options) { o.TestRetries = 2 }},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	for _, tc := range cases {
		o := ok
		tc.mut(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, o)
		}
	}
	// Validate rejection propagates out of Classify before any work runs.
	if _, err := Classify(chainTBox(3), Options{Reasoner: &hangingReasoner{}, Workers: -1}); err == nil {
		t.Error("Classify accepted negative Workers")
	}
}

// TestBudgetEscalationSchedule pins the doubling schedule.
func TestBudgetEscalationSchedule(t *testing.T) {
	base := 10 * time.Millisecond
	want := []time.Duration{10, 20, 40, 80}
	for i, w := range want {
		if got := testBudgetFor(base, i); got != w*time.Millisecond {
			t.Errorf("attempt %d: budget = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}
