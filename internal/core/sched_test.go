package core

import (
	"errors"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"parowl/internal/dl"
	"parowl/internal/ontogen"
	"parowl/internal/reasoner"
)

// TestQuickCrossPolicyEquivalence is the scheduler-independence property:
// for random ontologies, every scheduling policy must produce the
// byte-identical taxonomy for every (mode, workers, prepass, seed)
// combination. Run under -race this also exercises the stealing pool's
// synchronization against real classification workloads.
func TestQuickCrossPolicyEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, tb := range []*dl.TBox{
			randomTaxonomyTBox(rng, 4+rng.Intn(10)),
			randomMixedTBox(rng, 5+rng.Intn(10)),
		} {
			r := tableauFactory(tb)
			mode := Optimized
			if rng.Intn(2) == 0 {
				mode = Basic
			}
			w := 1 + rng.Intn(8)
			prepass := rng.Intn(2) == 0
			base := Options{
				Reasoner: r, Workers: w, Mode: mode, Seed: seed,
				RandomCycles: 1 + rng.Intn(3), ELPrepass: prepass,
			}
			var want string
			for _, sched := range allSchedulings {
				o := base
				o.Scheduling = sched
				res, err := Classify(tb, o)
				if err != nil {
					t.Logf("seed %d %s sched=%v: %v", seed, tb.Name, sched, err)
					return false
				}
				got := res.Taxonomy.Render()
				if sched == RoundRobin {
					want = got
					continue
				}
				if got != want {
					t.Logf("seed %d %s mode=%v w=%d prepass=%v: %v taxonomy differs from roundrobin\n got:\n%s\nwant:\n%s",
						seed, tb.Name, mode, w, prepass, sched, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestCrossPolicyEquivalenceOntogen runs the identity check on a scaled
// paper corpus and additionally pins the one-sat-per-concept property:
// with the EL prepass on, the plug-in's sat? load is exactly one sweep
// probe per named concept under every policy — stealing must not
// duplicate or drop probes.
func TestCrossPolicyEquivalenceOntogen(t *testing.T) {
	if testing.Short() {
		t.Skip("ontogen corpora are slow under -short")
	}
	p, ok := ontogen.ByName("actpathway.obo")
	if !ok {
		t.Fatal("profile missing")
	}
	for _, seed := range []int64{1, 2} {
		tb, err := ontogen.Mini(p, 80).Generate(seed)
		if err != nil {
			t.Fatalf("generate seed %d: %v", seed, err)
		}
		var want string
		for _, sched := range allSchedulings {
			for _, w := range []int{1, 3, 8} {
				var stats reasoner.Stats
				r := reasoner.Counting{R: tableauFactory(tb), S: &stats}
				res := classify(t, tb, Options{
					Reasoner: r, Workers: w, Seed: seed,
					Scheduling: sched, ELPrepass: true,
				})
				got := res.Taxonomy.Render()
				if want == "" {
					want = got
				} else if got != want {
					t.Fatalf("seed %d sched=%v w=%d: taxonomy differs from reference", seed, sched, w)
				}
				if got, wantSat := stats.SatCalls.Load(), int64(len(tb.NamedConcepts())); got != wantSat {
					t.Errorf("seed %d sched=%v w=%d: plug-in sat? calls = %d, want %d (one per named concept)",
						seed, sched, w, got, wantSat)
				}
			}
		}
	}
}

// TestWorkStealingActuallySteals pins that the policy is live on a real
// classification: a multi-worker run over a corpus with enough tasks
// records at least one steal (an always-zero counter would mean the
// stealing path is dead code and the policy silently degenerated to
// round-robin).
func TestWorkStealingActuallySteals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tb := randomTaxonomyTBox(rng, 60)
	res := classify(t, tb, Options{
		Reasoner: tableauFactory(tb), Workers: 4,
		Scheduling: WorkStealing, CollectTrace: true, RandomCycles: 2,
	})
	if res.Stats.Steals == 0 {
		t.Error("Stats.Steals = 0 on a 4-worker stealing run; stealing never fired")
	}
	if got := res.Trace.TotalSteals(); got != res.Stats.Steals {
		t.Errorf("Trace.TotalSteals() = %d, Stats.Steals = %d; counters disagree", got, res.Stats.Steals)
	}
	// Every pool task must have an executing-worker record in range.
	for _, c := range res.Trace.Cycles {
		if len(c.TaskWorkers) != len(c.Tasks) {
			t.Fatalf("cycle %s/%d: %d worker records for %d tasks", c.Phase, c.Index, len(c.TaskWorkers), len(c.Tasks))
		}
		for i, w := range c.TaskWorkers {
			if w < -1 || w >= res.Trace.Workers {
				t.Fatalf("cycle %s/%d task %d: worker %d out of range", c.Phase, c.Index, i, w)
			}
		}
	}
}

// TestSchedulingValidation covers the new policy in Options.Validate and
// the flag parser round-trip.
func TestSchedulingValidation(t *testing.T) {
	o := Options{Reasoner: reasoner.NewOracle(exampleTBox(), reasoner.OracleOptions{}), Scheduling: WorkStealing}
	if err := o.Validate(); err != nil {
		t.Fatalf("Validate rejected WorkStealing: %v", err)
	}
	o.Scheduling = Scheduling(99)
	if err := o.Validate(); err == nil {
		t.Fatal("Validate accepted an unknown policy")
	}
	for _, sched := range allSchedulings {
		got, err := ParseScheduling(sched.String())
		if err != nil || got != sched {
			t.Fatalf("ParseScheduling(%q) = %v, %v", sched.String(), got, err)
		}
	}
	if _, err := ParseScheduling("lifo"); err == nil {
		t.Fatal("ParseScheduling accepted an unknown name")
	}
}

// TestKillAndResumeWorkStealing proves checkpoints taken under the
// stealing scheduler restore correctly: runs crashed at arbitrary points
// and resumed must converge to the taxonomy of an uninterrupted
// round-robin run. Snapshots are only written at barriers, and the
// barrier asserts every deque drained, so a snapshot can never capture a
// stolen-but-unfinished task.
func TestKillAndResumeWorkStealing(t *testing.T) {
	seeds := []int64{11, 12, 13}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		tb := randomMixedTBox(rng, 8+rng.Intn(10))
		workers := 2 + rng.Intn(7)
		opts := Options{
			Workers: workers, Mode: Optimized, Seed: seed,
			Scheduling: WorkStealing, ELPrepass: rng.Intn(2) == 0,
		}
		refOpts := opts
		refOpts.Scheduling = RoundRobin
		ref := classify(t, tb, refOpts)
		totalCalls := ref.Stats.SatTests + ref.Stats.SubsTests
		path := ckPath(t)

		var final *Result
		for attempt := 0; ; attempt++ {
			if attempt > 50 {
				t.Fatalf("seed %d: no run survived after %d crashes", seed, attempt)
			}
			var left atomic.Int64
			left.Store(rng.Int63n(totalCalls + 1))
			o := opts
			o.Reasoner = countdownReasoner{Interface: tableauFactory(tb), left: &left}
			o.Checkpoint = path
			if _, err := os.Stat(path); err == nil {
				o.ResumeFrom = path
			}
			res, err := Classify(tb, o)
			if err != nil {
				if !errors.Is(err, reasoner.ErrInjected) {
					t.Fatalf("seed %d attempt %d: unexpected failure: %v", seed, attempt, err)
				}
				continue
			}
			if res.ResumeError != nil {
				t.Fatalf("seed %d attempt %d: snapshot rejected: %v", seed, attempt, res.ResumeError)
			}
			final = res
			break
		}
		if got, want := final.Taxonomy.Render(), ref.Taxonomy.Render(); got != want {
			t.Errorf("seed %d (workers %d): resumed stealing taxonomy differs from round-robin reference:\n got:\n%s\nwant:\n%s",
				seed, workers, got, want)
		}
		if len(final.Undecided) != 0 {
			t.Errorf("seed %d: undecided after resume: %v", seed, final.Undecided)
		}
	}
}

// TestKillAndResumeAsync is the same crash loop under the barrier-free
// driver: its snapshots are cut at quiescence epochs rather than batch
// barriers, and runs crashed at arbitrary points and resumed must still
// converge to the taxonomy of an uninterrupted round-robin run.
func TestKillAndResumeAsync(t *testing.T) {
	seeds := []int64{21, 22, 23}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		tb := randomMixedTBox(rng, 8+rng.Intn(10))
		workers := 2 + rng.Intn(7)
		opts := Options{
			Workers: workers, Mode: Optimized, Seed: seed,
			Scheduling: Async, ELPrepass: rng.Intn(2) == 0,
		}
		refOpts := opts
		refOpts.Scheduling = RoundRobin
		ref := classify(t, tb, refOpts)
		totalCalls := ref.Stats.SatTests + ref.Stats.SubsTests
		path := ckPath(t)

		var final *Result
		var lastEpoch int64
		for attempt := 0; ; attempt++ {
			if attempt > 50 {
				t.Fatalf("seed %d: no run survived after %d crashes", seed, attempt)
			}
			var left atomic.Int64
			left.Store(rng.Int63n(totalCalls + 1))
			o := opts
			o.Reasoner = countdownReasoner{Interface: tableauFactory(tb), left: &left}
			o.Checkpoint = path
			if _, err := os.Stat(path); err == nil {
				o.ResumeFrom = path
			}
			res, err := Classify(tb, o)
			if snap, serr := readSnapshotFile(path); serr == nil {
				// Epochs must stay monotonic across crashes and resumes:
				// every snapshot carries the quiescence count it was cut at,
				// seeded from the snapshot it restored.
				if snap.epoch < lastEpoch {
					t.Fatalf("seed %d attempt %d: snapshot epoch went backwards (%d < %d)",
						seed, attempt, snap.epoch, lastEpoch)
				}
				lastEpoch = snap.epoch
			}
			if err != nil {
				if !errors.Is(err, reasoner.ErrInjected) {
					t.Fatalf("seed %d attempt %d: unexpected failure: %v", seed, attempt, err)
				}
				continue
			}
			if res.ResumeError != nil {
				t.Fatalf("seed %d attempt %d: snapshot rejected: %v", seed, attempt, res.ResumeError)
			}
			final = res
			break
		}
		if lastEpoch == 0 {
			t.Errorf("seed %d: no snapshot recorded a nonzero epoch", seed)
		}
		if got, want := final.Taxonomy.Render(), ref.Taxonomy.Render(); got != want {
			t.Errorf("seed %d (workers %d): resumed async taxonomy differs from round-robin reference:\n got:\n%s\nwant:\n%s",
				seed, workers, got, want)
		}
		if len(final.Undecided) != 0 {
			t.Errorf("seed %d: undecided after resume: %v", seed, final.Undecided)
		}
	}
}

// TestAsyncQuiescesLessThanBarrierMode pins the policy's point: with
// checkpointing off, an async run closes far fewer epochs (quiescence
// rendezvous) than a barrier-mode run of the same corpus, which pays one
// per cycle.
func TestAsyncQuiescesLessThanBarrierMode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tb := randomTaxonomyTBox(rng, 60)
	path := ckPath(t)
	// CheckpointInterval is left at an hour so only the forced phase-final
	// snapshot is written; its epoch field records the total quiescence
	// count of the run.
	epochs := func(sched Scheduling) int64 {
		t.Helper()
		o := Options{
			Reasoner: tableauFactory(tb), Workers: 4, Seed: 7,
			Scheduling: sched, RandomCycles: 4,
			Checkpoint: path, CheckpointInterval: time.Hour,
		}
		classify(t, tb, o)
		snap, err := readSnapshotFile(path)
		if err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		return snap.epoch
	}
	async := epochs(Async)
	barrier := epochs(RoundRobin)
	if async >= barrier {
		t.Errorf("async run closed %d epochs, barrier run %d; async should quiesce less", async, barrier)
	}
}
