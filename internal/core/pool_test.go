package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var allSchedulings = []Scheduling{RoundRobin, WorkSharing, WorkStealing, Async}

// TestPoolDurationsInDispatchOrder submits more tasks than one duration
// chunk holds and checks the barrier reports every charged duration in
// dispatch order, with the per-worker loads accounting for the same total
// — the contract the virtual-time scheduler replays. The executing-worker
// record must name a real worker for every task, whatever the policy.
func TestPoolDurationsInDispatchOrder(t *testing.T) {
	for _, sched := range allSchedulings {
		p := newPool(4, sched)
		n := durChunkSize + 50 // force a second chunk
		for i := 0; i < n; i++ {
			d := time.Duration(i+1) * time.Microsecond
			p.submit(func() time.Duration { return d })
		}
		rep := p.barrier()
		if len(rep.durs) != n {
			t.Fatalf("%v: %d durations, want %d", sched, len(rep.durs), n)
		}
		var fromDurs, fromLoads time.Duration
		for i, d := range rep.durs {
			want := time.Duration(i+1) * time.Microsecond
			if d != want {
				t.Fatalf("%v: durs[%d] = %v, want %v (dispatch order)", sched, i, d, want)
			}
			fromDurs += d
		}
		if len(rep.workers) != n {
			t.Fatalf("%v: %d worker records, want %d", sched, len(rep.workers), n)
		}
		for i, w := range rep.workers {
			if w < 0 || w >= 4 {
				t.Fatalf("%v: task %d ran on worker %d, want 0..3", sched, i, w)
			}
			if sched == RoundRobin && w != i%4 {
				t.Fatalf("%v: task %d ran on worker %d, want %d (i mod w)", sched, i, w, i%4)
			}
		}
		if len(rep.loads) != 4 {
			t.Fatalf("%v: %d worker loads, want 4", sched, len(rep.loads))
		}
		for _, l := range rep.loads {
			fromLoads += l
		}
		if fromDurs != fromLoads {
			t.Errorf("%v: loads sum to %v, durations to %v", sched, fromLoads, fromDurs)
		}
		if sched.stealing() {
			var steals, stolen int64
			for w := 0; w < 4; w++ {
				steals += rep.steals[w]
				stolen += rep.stolenFrom[w]
			}
			if steals != stolen {
				t.Errorf("steals total %d but stolenFrom total %d", steals, stolen)
			}
		} else if rep.steals != nil || rep.stolenFrom != nil {
			t.Errorf("%v: steal counters reported for a non-stealing pool", sched)
		}
		if len(rep.waits) != 4 {
			t.Errorf("%v: %d wait records, want 4", sched, len(rep.waits))
		}
		p.close()
	}
}

// TestPoolBatchReuse runs a long batch then a short one on the same pool:
// recycled queue storage and duration slots must not leak stale values
// into the second batch.
func TestPoolBatchReuse(t *testing.T) {
	for _, sched := range allSchedulings {
		p := newPool(3, sched)
		for i := 0; i < durChunkSize+10; i++ {
			p.submit(func() time.Duration { return time.Second })
		}
		p.barrier()

		var ran atomic.Int64
		for i := 0; i < 5; i++ {
			p.submit(func() time.Duration { ran.Add(1); return time.Millisecond })
		}
		rep := p.barrier()
		if ran.Load() != 5 {
			t.Fatalf("%v: second batch ran %d tasks, want 5", sched, ran.Load())
		}
		if len(rep.durs) != 5 {
			t.Fatalf("%v: second batch reported %d durations, want 5", sched, len(rep.durs))
		}
		for i, d := range rep.durs {
			if d != time.Millisecond {
				t.Errorf("%v: durs[%d] = %v leaked from the first batch", sched, i, d)
			}
		}
		var total time.Duration
		for _, l := range rep.loads {
			total += l
		}
		if total != 5*time.Millisecond {
			t.Errorf("%v: second-batch loads sum to %v, want 5ms", sched, total)
		}
		p.close()
	}
}

// TestPoolConcurrentSubmitters hammers the per-queue locks: several
// goroutines submit simultaneously while workers drain, across repeated
// batches. Run under -race this pins the submit/pop/steal/barrier
// happens-before chains of the pool.
func TestPoolConcurrentSubmitters(t *testing.T) {
	for _, sched := range allSchedulings {
		p := newPool(4, sched)
		var ran atomic.Int64
		for batch := 0; batch < 3; batch++ {
			var submitted sync.WaitGroup
			for g := 0; g < 6; g++ {
				submitted.Add(1)
				go func() {
					defer submitted.Done()
					for i := 0; i < 40; i++ {
						p.submit(func() time.Duration {
							ran.Add(1)
							return time.Microsecond
						})
					}
				}()
			}
			submitted.Wait()
			rep := p.barrier()
			if len(rep.durs) != 6*40 {
				t.Fatalf("%v batch %d: %d durations, want %d", sched, batch, len(rep.durs), 6*40)
			}
		}
		if ran.Load() != 3*6*40 {
			t.Fatalf("%v: ran %d tasks, want %d", sched, ran.Load(), 3*6*40)
		}
		p.close()
	}
}

// TestPoolStealingBalancesSkew blocks one worker inside a long task while
// a pile of cheap work sits queued behind it; under WorkStealing the
// other workers must steal that queued tail (the straggler-rescue path
// through the victim's inbox), or the barrier would deadlock.
func TestPoolStealingBalancesSkew(t *testing.T) {
	p := newPool(4, WorkStealing)
	defer p.close()
	started := make(chan struct{})
	release := make(chan struct{})
	// Task 0 blocks whichever worker picks it up; the barrier can only
	// pass if every task queued to that worker afterwards is stolen.
	p.submit(func() time.Duration {
		close(started)
		<-release
		return time.Millisecond
	})
	<-started
	var others atomic.Int64
	for i := 0; i < 40; i++ {
		p.submit(func() time.Duration {
			if others.Add(1) == 40 {
				close(release) // all queued work done; release the blocked worker
			}
			return time.Microsecond
		})
	}
	rep := p.barrier()
	if got := others.Load(); got != 40 {
		t.Fatalf("queued tasks ran %d times, want 40", got)
	}
	blocked := rep.workers[0]
	// The 40 tasks round-robin over 4 queues, so exactly 10 landed on the
	// blocked worker's queue — and it could not run any of them.
	if rep.stolenFrom[blocked] < 10 {
		t.Fatalf("expected worker %d (blocked) to be stolen from >= 10 times, got %d",
			blocked, rep.stolenFrom[blocked])
	}
	var steals, stolen int64
	for w := 0; w < 4; w++ {
		steals += rep.steals[w]
		stolen += rep.stolenFrom[w]
	}
	if steals != stolen {
		t.Fatalf("steals total %d but stolenFrom total %d", steals, stolen)
	}
	if rep.workers[0] == blocked && rep.durs[0] != time.Millisecond {
		t.Errorf("blocker's charged duration = %v, want 1ms", rep.durs[0])
	}
}
