package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolDurationsInDispatchOrder submits more tasks than one duration
// chunk holds and checks the barrier reports every charged duration in
// dispatch order, with the per-worker loads accounting for the same total
// — the contract the virtual-time scheduler replays.
func TestPoolDurationsInDispatchOrder(t *testing.T) {
	for _, sched := range []Scheduling{RoundRobin, WorkSharing} {
		p := newPool(4, sched)
		n := durChunkSize + 50 // force a second chunk
		for i := 0; i < n; i++ {
			d := time.Duration(i+1) * time.Microsecond
			p.submit(func() time.Duration { return d })
		}
		durs, loads := p.barrier()
		if len(durs) != n {
			t.Fatalf("%v: %d durations, want %d", sched, len(durs), n)
		}
		var fromDurs, fromLoads time.Duration
		for i, d := range durs {
			want := time.Duration(i+1) * time.Microsecond
			if d != want {
				t.Fatalf("%v: durs[%d] = %v, want %v (dispatch order)", sched, i, d, want)
			}
			fromDurs += d
		}
		if len(loads) != 4 {
			t.Fatalf("%v: %d worker loads, want 4", sched, len(loads))
		}
		for _, l := range loads {
			fromLoads += l
		}
		if fromDurs != fromLoads {
			t.Errorf("%v: loads sum to %v, durations to %v", sched, fromLoads, fromDurs)
		}
		p.close()
	}
}

// TestPoolBatchReuse runs a long batch then a short one on the same pool:
// recycled queue storage and duration slots must not leak stale values
// into the second batch.
func TestPoolBatchReuse(t *testing.T) {
	p := newPool(3, RoundRobin)
	defer p.close()
	for i := 0; i < durChunkSize+10; i++ {
		p.submit(func() time.Duration { return time.Second })
	}
	p.barrier()

	var ran atomic.Int64
	for i := 0; i < 5; i++ {
		p.submit(func() time.Duration { ran.Add(1); return time.Millisecond })
	}
	durs, loads := p.barrier()
	if ran.Load() != 5 {
		t.Fatalf("second batch ran %d tasks, want 5", ran.Load())
	}
	if len(durs) != 5 {
		t.Fatalf("second batch reported %d durations, want 5", len(durs))
	}
	for i, d := range durs {
		if d != time.Millisecond {
			t.Errorf("durs[%d] = %v leaked from the first batch", i, d)
		}
	}
	var total time.Duration
	for _, l := range loads {
		total += l
	}
	if total != 5*time.Millisecond {
		t.Errorf("second-batch loads sum to %v, want 5ms", total)
	}
}

// TestPoolConcurrentSubmitters hammers the per-queue locks: several
// goroutines submit simultaneously while workers drain, across repeated
// batches. Run under -race this pins the submit/pop/barrier
// happens-before chains of the rewritten pool.
func TestPoolConcurrentSubmitters(t *testing.T) {
	for _, sched := range []Scheduling{RoundRobin, WorkSharing} {
		p := newPool(4, sched)
		var ran atomic.Int64
		for batch := 0; batch < 3; batch++ {
			var submitted sync.WaitGroup
			for g := 0; g < 6; g++ {
				submitted.Add(1)
				go func() {
					defer submitted.Done()
					for i := 0; i < 40; i++ {
						p.submit(func() time.Duration {
							ran.Add(1)
							return time.Microsecond
						})
					}
				}()
			}
			submitted.Wait()
			durs, _ := p.barrier()
			if len(durs) != 6*40 {
				t.Fatalf("%v batch %d: %d durations, want %d", sched, batch, len(durs), 6*40)
			}
		}
		if ran.Load() != 3*6*40 {
			t.Fatalf("%v: ran %d tasks, want %d", sched, ran.Load(), 3*6*40)
		}
		p.close()
	}
}
