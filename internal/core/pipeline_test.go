package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"parowl/internal/dl"
	"parowl/internal/el"
	"parowl/internal/ontogen"
	"parowl/internal/reasoner"
	"parowl/internal/tableau"
)

// pipelineOpts returns the cheap-first pipeline configuration under test
// paired with the plain configuration it must be indistinguishable from.
func pipelineOn(o Options) Options  { o.ELPrepass = true; o.ModelFilter = true; return o }
func pipelineOff(o Options) Options { o.ELPrepass = false; o.ModelFilter = false; return o }

// randomMixedTBox builds a random ontology that is deliberately NOT
// EL-expressible: an EL DAG backbone plus value restrictions, negated
// right sides, disjointness and an occasional concept that is satisfiable
// in the EL fragment but unsatisfiable in the full TBox — the exact shape
// that would expose an unsound prepass transfer.
func randomMixedTBox(rng *rand.Rand, n int) *dl.TBox {
	tb := dl.NewTBox("randmixed")
	f := tb.Factory
	r := f.Role("r")
	cs := make([]*dl.Concept, n)
	for i := range cs {
		cs[i] = tb.Declare(fmt.Sprintf("C%d", i))
	}
	for i := 1; i < n; i++ {
		parent := cs[rng.Intn(i)]
		switch rng.Intn(5) {
		case 0: // conjunctive right side with a non-EL conjunct → weakened
			tb.SubClassOf(cs[i], f.And(parent, f.All(r, cs[rng.Intn(n)])))
		case 1: // existential chain (EL, exercises role successors)
			tb.SubClassOf(cs[i], f.Some(r, parent))
			tb.SubClassOf(f.Some(r, parent), parent)
		case 2: // negated right side → dropped from the fragment
			j := rng.Intn(n)
			if cs[j] != parent {
				tb.SubClassOf(cs[i], f.Not(cs[j]))
			}
			tb.SubClassOf(cs[i], parent)
		default: // plain EL edge
			tb.SubClassOf(cs[i], parent)
		}
	}
	if n > 3 && rng.Intn(2) == 0 {
		i := 1 + rng.Intn(n-1)
		tb.EquivalentClasses(cs[i], f.And(cs[rng.Intn(i)], cs[rng.Intn(i)]))
	}
	if n > 4 && rng.Intn(2) == 0 {
		// Satisfiable in the EL fragment, unsatisfiable in the full TBox:
		// the ¬C1 conjunct is dropped during fragment extraction, so only
		// the real sat?() sweep can place U correctly.
		u := tb.Declare("U")
		tb.SubClassOf(u, f.And(cs[1], f.Not(cs[1])))
		tb.SubClassOf(u, cs[2])
	}
	return tb
}

// TestQuickPipelineEquivalence is the central safety property of the
// cheap-first pipeline: for random ontologies — both pure-EL taxonomy
// shapes and mixed ALC shapes where the fragment is partial — enabling
// ELPrepass+ModelFilter must produce the byte-identical taxonomy to the
// pipeline-off run for every (mode, workers, seed) combination.
func TestQuickPipelineEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, tb := range []*dl.TBox{
			randomTaxonomyTBox(rng, 4+rng.Intn(10)),
			randomMixedTBox(rng, 5+rng.Intn(10)),
		} {
			r := tableauFactory(tb)
			for _, mode := range []Mode{Basic, Optimized} {
				w := 1 + rng.Intn(8)
				base := Options{
					Reasoner: r, Workers: w, Mode: mode,
					Seed: seed, RandomCycles: 1 + rng.Intn(3),
				}
				off, err := Classify(tb, pipelineOff(base))
				if err != nil {
					t.Logf("seed %d off: %v", seed, err)
					return false
				}
				on, err := Classify(tb, pipelineOn(base))
				if err != nil {
					t.Logf("seed %d on: %v", seed, err)
					return false
				}
				if on.Taxonomy.Render() != off.Taxonomy.Render() {
					t.Logf("seed %d %s mode=%v w=%d:\n on:\n%s\n off:\n%s",
						seed, tb.Name, mode, w, on.Taxonomy.Render(), off.Taxonomy.Render())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineEquivalenceOntogen runs the same identity check on scaled
// paper corpora: a pure-EL Table IV profile (complete fragment, filter
// active) and a QCR-heavy Table V profile (partial fragment, prepass must
// stay sound while dropping most axioms).
func TestPipelineEquivalenceOntogen(t *testing.T) {
	if testing.Short() {
		t.Skip("ontogen corpora are slow under -short")
	}
	corpora := []struct {
		profile string
		scale   int
	}{
		{"actpathway.obo", 80},
		{"rnao_functional", 12},
	}
	for _, c := range corpora {
		c := c
		t.Run(c.profile, func(t *testing.T) {
			p, ok := ontogen.ByName(c.profile)
			if !ok {
				t.Fatalf("profile %q not found", c.profile)
			}
			for _, seed := range []int64{1, 2} {
				tb, err := ontogen.Mini(p, c.scale).Generate(seed)
				if err != nil {
					t.Fatalf("generate seed %d: %v", seed, err)
				}
				r := tableauFactory(tb)
				want := classify(t, tb, pipelineOff(Options{Reasoner: r, Workers: 2, Seed: seed}))
				for _, mode := range []Mode{Basic, Optimized} {
					for _, w := range []int{1, 3, 8} {
						res := classify(t, tb, pipelineOn(Options{
							Reasoner: r, Workers: w, Mode: mode, Seed: seed,
						}))
						if res.Taxonomy.Render() != want.Taxonomy.Render() {
							t.Fatalf("seed %d mode=%v w=%d: pipeline-on taxonomy differs\n on:\n%s\n off:\n%s",
								seed, mode, w, res.Taxonomy.Render(), want.Taxonomy.Render())
						}
					}
				}
			}
		})
	}
}

// TestPipelineReducesCalls checks the headline acceptance criterion: on a
// stock EL corpus the full pipeline must cut the tableau plug-in's
// sat?+subs? dispatches by at least 30% while the taxonomy stays
// identical, with the savings visible in the new Stats counters.
func TestPipelineReducesCalls(t *testing.T) {
	if testing.Short() {
		t.Skip("ontogen corpora are slow under -short")
	}
	p, ok := ontogen.ByName("actpathway.obo")
	if !ok {
		t.Fatal("profile missing")
	}
	tb, err := ontogen.Mini(p, 80).Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts Options) (*Result, int64) {
		var stats reasoner.Stats
		opts.Reasoner = reasoner.Counting{R: tableauFactory(tb), S: &stats}
		res := classify(t, tb, opts)
		return res, stats.SatCalls.Load() + stats.SubsCalls.Load()
	}
	base := Options{Workers: 4, Mode: Optimized, Seed: 11}
	off, offCalls := run(pipelineOff(base))
	on, onCalls := run(pipelineOn(base))
	if on.Taxonomy.Render() != off.Taxonomy.Render() {
		t.Fatalf("taxonomies differ:\n on:\n%s\n off:\n%s", on.Taxonomy.Render(), off.Taxonomy.Render())
	}
	if on.Stats.PreSeeded == 0 {
		t.Error("PreSeeded = 0; EL prepass resolved nothing on a pure-EL corpus")
	}
	if on.Stats.FilterHits == 0 {
		t.Error("FilterHits = 0; model filter never disproved a non-subsumption")
	}
	if offCalls == 0 {
		t.Fatal("baseline made no plug-in calls")
	}
	reduction := 100 * float64(offCalls-onCalls) / float64(offCalls)
	t.Logf("plug-in calls: off=%d on=%d reduction=%.1f%% preseeded=%d filterhits=%d",
		offCalls, onCalls, reduction, on.Stats.PreSeeded, on.Stats.FilterHits)
	if reduction < 30 {
		t.Errorf("pipeline reduced plug-in calls by %.1f%%, want >= 30%%", reduction)
	}
}

// TestPrepassFragmentUnsatConcept pins the subtle hazard the prepass
// sat-sweep exists for: a concept whose EL fragment is satisfiable but
// whose full TBox is not. Seeded K bits alone would let pruning claim all
// its pairs without any test touching it; the sweep's real sat?() probe
// must still discover the unsatisfiability.
func TestPrepassFragmentUnsatConcept(t *testing.T) {
	tb := dl.NewTBox("fragunsat")
	f := tb.Factory
	a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
	u := tb.Declare("U")
	tb.SubClassOf(b, a)
	tb.SubClassOf(c, b)
	// Fragment keeps U ⊑ B (the ¬B conjunct is weakened away), so the
	// prepass seeds U ⊑ B and U ⊑ A while the full TBox makes U unsat.
	tb.SubClassOf(u, f.And(b, f.Not(b)))
	r := tableauFactory(tb)
	for _, mode := range []Mode{Basic, Optimized} {
		off := classify(t, tb, pipelineOff(Options{Reasoner: r, Workers: 2, Mode: mode}))
		on := classify(t, tb, pipelineOn(Options{Reasoner: r, Workers: 2, Mode: mode}))
		if on.Taxonomy.Render() != off.Taxonomy.Render() {
			t.Fatalf("mode=%v: taxonomies differ\n on:\n%s\n off:\n%s",
				mode, on.Taxonomy.Render(), off.Taxonomy.Render())
		}
		if on.Taxonomy.NodeOf(u) != on.Taxonomy.Bottom() {
			t.Fatalf("mode=%v: U should be unsatisfiable (≡ ⊥); taxonomy:\n%s",
				mode, on.Taxonomy.Render())
		}
	}
}

// TestPrepassCountersExample pins the prepass bookkeeping on the paper's
// running example, which is pure EL: every positive subsumption is proven
// before the random-division phase, so the plug-in's sat?() load is
// exactly the per-concept sweep (⊤ is pinned satisfiable, never probed)
// and its subs? load shrinks to the non-subsumption directions the
// fragment cannot decide.
func TestPrepassCountersExample(t *testing.T) {
	tb := exampleTBox()
	run := func(prepass bool) (*Result, *reasoner.Stats) {
		var stats reasoner.Stats
		r := reasoner.Counting{R: tableauFactory(tb), S: &stats}
		res := classify(t, tb, Options{
			Reasoner: r, Workers: 3, ELPrepass: prepass, CollectTrace: true,
		})
		return res, &stats
	}
	off, offStats := run(false)
	on, onStats := run(true)
	if on.Stats.PreSeeded == 0 {
		t.Fatal("PreSeeded = 0 on a pure-EL ontology")
	}
	if got, want := onStats.SatCalls.Load(), int64(len(tb.NamedConcepts())); got != want {
		t.Errorf("plug-in sat? calls = %d, want %d (one sweep probe per named concept)", got, want)
	}
	if onStats.SubsCalls.Load() >= offStats.SubsCalls.Load() {
		t.Errorf("prepass did not reduce subs? calls: on=%d off=%d",
			onStats.SubsCalls.Load(), offStats.SubsCalls.Load())
	}
	if on.Taxonomy.Render() != off.Taxonomy.Render() {
		t.Fatalf("taxonomies differ\n on:\n%s\n off:\n%s",
			on.Taxonomy.Render(), off.Taxonomy.Render())
	}
	if on.Trace == nil || len(on.Trace.Cycles) == 0 || on.Trace.Cycles[0].Phase != PhasePrepass {
		t.Fatalf("trace should start with a prepass cycle: %v", on.Trace)
	}
}

// TestPipelineWithELPlugin runs the pipeline with the EL reasoner itself
// as the plug-in (complete fragment ⇒ its ModelFilter capability is
// live), crossing the two cheap deciders against each other.
func TestPipelineWithELPlugin(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10; i++ {
		tb := randomTaxonomyTBox(rng, 5+rng.Intn(10))
		r, err := el.New(tb, el.Options{Workers: 2})
		if err != nil {
			t.Fatalf("iteration %d: el.New: %v", i, err)
		}
		off := classify(t, tb, pipelineOff(Options{Reasoner: r, Workers: 3}))
		on := classify(t, tb, pipelineOn(Options{Reasoner: r, Workers: 3}))
		if !on.Taxonomy.Equal(off.Taxonomy) {
			t.Fatalf("iteration %d: taxonomies differ\n on:\n%s\n off:\n%s",
				i, on.Taxonomy.Render(), off.Taxonomy.Render())
		}
	}
}

// TestCachedFilterIntegration checks the decorator chain end to end: a
// Cached(tableau) plug-in must keep the ModelFilter capability, and the
// pipeline must classify identically through it.
func TestCachedFilterIntegration(t *testing.T) {
	tb := randomMixedTBox(rand.New(rand.NewSource(9)), 12)
	r := reasoner.NewCached(tableau.New(tb, tableau.Options{}))
	if reasoner.AsModelFilter(r) == nil {
		t.Fatal("Cached(tableau) lost the ModelFilter capability")
	}
	off := classify(t, tb, pipelineOff(Options{Reasoner: r, Workers: 4}))
	on := classify(t, tb, pipelineOn(Options{Reasoner: r, Workers: 4}))
	if on.Taxonomy.Render() != off.Taxonomy.Render() {
		t.Fatalf("taxonomies differ\n on:\n%s\n off:\n%s",
			on.Taxonomy.Render(), off.Taxonomy.Render())
	}
}
