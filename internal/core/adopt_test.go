package core

import (
	"context"
	"errors"
	"os"
	"testing"

	"parowl/internal/reasoner"
)

// TestAdoptCompletedCheckpoint proves the daemon-restart contract: a
// completed checkpoint is adopted with zero reasoner calls, the restored
// Stats match the original run's, and every query answer is identical.
func TestAdoptCompletedCheckpoint(t *testing.T) {
	tb := exampleTBox()
	path := ckPath(t)
	ref := classify(t, tb, Options{Workers: 3, CompileKernel: true, Checkpoint: path})
	if ref.CheckpointError != nil {
		t.Fatalf("checkpoint error: %v", ref.CheckpointError)
	}

	res, err := Adopt(context.Background(), tb, AdoptOptions{Snapshot: path, Workers: 3})
	if err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	if !res.Resumed {
		t.Fatal("Adopt result not marked Resumed")
	}
	if res.KernelError != nil {
		t.Fatalf("KernelError = %v, want adopted checkpoint kernel", res.KernelError)
	}
	if res.Taxonomy.Kernel() == nil {
		t.Fatal("adopted taxonomy has no kernel")
	}
	// The adoptReasoner stub fails any call, so equal counters here prove
	// literally zero sat?/subs? dispatches happened.
	if res.Stats.SubsTests != ref.Stats.SubsTests || res.Stats.SatTests != ref.Stats.SatTests {
		t.Fatalf("adopt re-tested: %+v vs %+v", res.Stats, ref.Stats)
	}
	assertSameAnswers(t, ref, res)
}

// TestAdoptRejectsIncomplete feeds Adopt a structurally valid snapshot of
// a run that has not finished and expects ErrIncompleteSnapshot — never a
// silent fallback to reclassification.
func TestAdoptRejectsIncomplete(t *testing.T) {
	tb := exampleTBox()
	s := newState(tb, adoptReasoner{}, true)
	path := ckPath(t)
	data := s.encodeSnapshot(PhaseRandom, reasoner.CacheSnapshot{}, nil, 0)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Adopt(context.Background(), tb, AdoptOptions{Snapshot: path})
	if !errors.Is(err, ErrIncompleteSnapshot) {
		t.Fatalf("Adopt of fresh state = %v, want ErrIncompleteSnapshot", err)
	}
}

// TestAdoptRejectsBadFiles covers the degrade-never-boot-fail inputs the
// server leans on: missing file, corrupt bytes, wrong ontology.
func TestAdoptRejectsBadFiles(t *testing.T) {
	tb := exampleTBox()
	path := ckPath(t)
	classify(t, tb, Options{Workers: 3, CompileKernel: true, Checkpoint: path})

	if _, err := Adopt(context.Background(), tb, AdoptOptions{Snapshot: path + ".missing"}); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("missing file: err = %v, want ErrBadSnapshot", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0xFF
	corrupt := path + ".corrupt"
	if err := os.WriteFile(corrupt, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Adopt(context.Background(), tb, AdoptOptions{Snapshot: corrupt}); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("corrupt file: err = %v, want ErrBadSnapshot", err)
	}

	other := exampleTBox()
	other.SubClassOf(other.Declare("AdoptOnlyExtra"), other.Factory.Top())
	if _, err := Adopt(context.Background(), other, AdoptOptions{Snapshot: path}); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("mismatched ontology: err = %v, want ErrBadSnapshot", err)
	}
}
