package core

import (
	"context"
	"fmt"

	"parowl/internal/dl"
	"parowl/internal/reasoner"
	"parowl/internal/taxonomy"
)

// SequentialBruteForce classifies the TBox by testing every ordered pair
// of named concepts with the plug-in reasoner, sequentially. It is the
// w = 1 reference point of the paper's speedup metric and the ground
// truth the test suite compares every parallel configuration against.
func SequentialBruteForce(t *dl.TBox, r reasoner.Interface) (*taxonomy.Taxonomy, error) {
	return SequentialBruteForceContext(context.Background(), t, r)
}

// SequentialBruteForceContext is SequentialBruteForce with cancellation:
// the context is threaded into every reasoner call and checked between
// pairs, so a cancelled run stops within one test.
func SequentialBruteForceContext(ctx context.Context, t *dl.TBox, r reasoner.Interface) (*taxonomy.Taxonomy, error) {
	t.Freeze()
	named := t.NamedConcepts()
	unsat := make(map[*dl.Concept]bool)
	for _, c := range named {
		ok, err := r.Sat(ctx, c)
		if err != nil {
			return nil, fmt.Errorf("core: sat?(%v): %w", c, err)
		}
		if !ok {
			unsat[c] = true
		}
	}
	subs := make(map[*dl.Concept]map[*dl.Concept]bool, len(named))
	for _, sub := range named {
		row := map[*dl.Concept]bool{sub: true}
		subs[sub] = row
		if unsat[sub] {
			continue
		}
		for _, sup := range named {
			if sup == sub || unsat[sup] {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: classification cancelled: %w", err)
			}
			ok, err := r.Subs(ctx, sup, sub)
			if err != nil {
				return nil, fmt.Errorf("core: subs?(%v, %v): %w", sup, sub, err)
			}
			if ok {
				row[sup] = true
			}
		}
	}
	return taxonomy.FromSubsumers(t.Factory, subs, unsat)
}
