package core

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"parowl/internal/dl"
	"parowl/internal/reasoner"
)

// ckPath returns a per-test checkpoint file path.
func ckPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "run.ck")
}

// TestCheckpointResumeCompletedRun: resuming from a completed run's final
// snapshot must reproduce the taxonomy without a single new reasoner
// dispatch — all pairs are already settled.
func TestCheckpointResumeCompletedRun(t *testing.T) {
	for _, mode := range []Mode{Optimized, Basic} {
		tb := exampleTBox()
		path := ckPath(t)
		ref := classify(t, tb, Options{Workers: 3, Mode: mode, Checkpoint: path})
		if ref.CheckpointError != nil {
			t.Fatalf("mode %v: checkpoint error: %v", mode, ref.CheckpointError)
		}

		res := classify(t, tb, Options{Workers: 3, Mode: mode, ResumeFrom: path})
		if !res.Resumed || res.ResumeError != nil {
			t.Fatalf("mode %v: Resumed=%v ResumeError=%v", mode, res.Resumed, res.ResumeError)
		}
		if got, want := res.Taxonomy.Render(), ref.Taxonomy.Render(); got != want {
			t.Fatalf("mode %v: resumed taxonomy differs:\n got:\n%s\nwant:\n%s", mode, got, want)
		}
		// Counters are cumulative across the resume; equal totals mean the
		// resumed run dispatched nothing new.
		if res.Stats.SubsTests != ref.Stats.SubsTests || res.Stats.SatTests != ref.Stats.SatTests {
			t.Fatalf("mode %v: resumed run re-tested: %+v vs %+v", mode, res.Stats, ref.Stats)
		}
	}
}

// countdownReasoner fails every call after the first n with an injected
// error, simulating a crash at a controlled point mid-run.
type countdownReasoner struct {
	reasoner.Interface
	left *atomic.Int64
}

// Unwrap exposes the underlying reasoner so the classifier still finds
// its ModelFilter/CachePorter capabilities through the decorator.
func (c countdownReasoner) Unwrap() reasoner.Interface { return c.Interface }

func (c countdownReasoner) tick() error {
	if c.left.Add(-1) < 0 {
		return reasoner.ErrInjected
	}
	return nil
}

func (c countdownReasoner) Sat(ctx context.Context, x *dl.Concept) (bool, error) {
	if err := c.tick(); err != nil {
		return false, err
	}
	return c.Interface.Sat(ctx, x)
}

func (c countdownReasoner) Subs(ctx context.Context, sup, sub *dl.Concept) (bool, error) {
	if err := c.tick(); err != nil {
		return false, err
	}
	return c.Interface.Subs(ctx, sup, sub)
}

// TestKillAndResumeEquivalence is the tentpole property: runs aborted at
// arbitrary points and resumed from their last checkpoint must converge
// to the byte-identical taxonomy of an uninterrupted run, across random
// ontologies, both modes, 1-8 workers, and the pipeline on and off.
func TestKillAndResumeEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		var tb *dl.TBox
		if seed%2 == 0 {
			tb = randomMixedTBox(rng, 6+rng.Intn(10))
		} else {
			tb = randomTaxonomyTBox(rng, 6+rng.Intn(10))
		}
		mode := Optimized
		if rng.Intn(2) == 0 {
			mode = Basic
		}
		workers := 1 + rng.Intn(8)
		pipeline := rng.Intn(2) == 0
		opts := Options{Workers: workers, Mode: mode, Seed: seed}
		if pipeline {
			opts.ELPrepass = true
			opts.ModelFilter = true
		}

		ref := classify(t, tb, opts)
		totalCalls := ref.Stats.SatTests + ref.Stats.SubsTests
		path := ckPath(t)

		// Crash and resume repeatedly until a run survives; each attempt
		// resumes from the latest snapshot (or clean when none exists yet)
		// and crashes at a fresh random point.
		var final *Result
		for attempt := 0; ; attempt++ {
			if attempt > 50 {
				t.Fatalf("seed %d: no run survived after %d crashes", seed, attempt)
			}
			var left atomic.Int64
			left.Store(rng.Int63n(totalCalls + 1))
			o := opts
			o.Reasoner = countdownReasoner{Interface: tableauFactory(tb), left: &left}
			o.Checkpoint = path
			if _, err := os.Stat(path); err == nil {
				o.ResumeFrom = path
			}
			res, err := Classify(tb, o)
			if err != nil {
				if !errors.Is(err, reasoner.ErrInjected) {
					t.Fatalf("seed %d attempt %d: unexpected failure: %v", seed, attempt, err)
				}
				continue // crashed; resume on the next attempt
			}
			if res.ResumeError != nil {
				t.Fatalf("seed %d attempt %d: snapshot rejected: %v", seed, attempt, res.ResumeError)
			}
			final = res
			break
		}
		if got, want := final.Taxonomy.Render(), ref.Taxonomy.Render(); got != want {
			t.Errorf("seed %d (mode %v, workers %d, pipeline %v): resumed taxonomy differs:\n got:\n%s\nwant:\n%s",
				seed, mode, workers, pipeline, got, want)
		}
		if len(final.Undecided) != 0 {
			t.Errorf("seed %d: undecided after resume: %v", seed, final.Undecided)
		}
	}
}

// TestResumeRejectsBadSnapshots: truncation, corruption, and mismatches
// must surface in Result.ResumeError while the run falls back to a
// correct clean classification.
func TestResumeRejectsBadSnapshots(t *testing.T) {
	tb := exampleTBox()
	path := ckPath(t)
	ref := classify(t, tb, Options{Workers: 2, Checkpoint: path})
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading snapshot: %v", err)
	}

	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x10

	otherTB := chainTBox(4)
	otherPath := ckPath(t)
	classify(t, otherTB, Options{Workers: 2, Checkpoint: otherPath})

	cases := map[string]string{
		"missing":   filepath.Join(dir, "does-not-exist.ck"),
		"empty":     write("empty.ck", nil),
		"garbage":   write("garbage.ck", []byte("not a checkpoint at all")),
		"truncated": write("trunc.ck", good[:len(good)/2]),
		"corrupted": write("flip.ck", flipped),
		"ontology":  otherPath, // valid snapshot of a different ontology
	}
	for name, p := range cases {
		res := classify(t, tb, Options{Workers: 2, ResumeFrom: p})
		if res.Resumed {
			t.Errorf("%s: snapshot was accepted", name)
		}
		if !errors.Is(res.ResumeError, ErrBadSnapshot) {
			t.Errorf("%s: ResumeError = %v, want ErrBadSnapshot", name, res.ResumeError)
		}
		if got, want := res.Taxonomy.Render(), ref.Taxonomy.Render(); got != want {
			t.Errorf("%s: fallback taxonomy differs:\n got:\n%s\nwant:\n%s", name, got, want)
		}
	}

	// A mode mismatch is a configuration error, not a crash: the snapshot
	// is structurally valid but belongs to the other algorithm variant.
	res := classify(t, tb, Options{Workers: 2, Mode: Basic, ResumeFrom: path})
	if res.Resumed || !errors.Is(res.ResumeError, ErrBadSnapshot) {
		t.Errorf("mode mismatch: Resumed=%v err=%v", res.Resumed, res.ResumeError)
	}
}

// TestSnapshotDecodeFuzz: random mutations of a valid snapshot must never
// decode successfully-but-wrong; they either decode to the identical
// bytes or fail with ErrBadSnapshot.
func TestSnapshotDecodeFuzz(t *testing.T) {
	tb := exampleTBox()
	path := ckPath(t)
	classify(t, tb, Options{Workers: 2, Checkpoint: path})
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeSnapshot(good); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		bad := append([]byte(nil), good...)
		switch rng.Intn(3) {
		case 0: // flip a bit
			bad[rng.Intn(len(bad))] ^= 1 << uint(rng.Intn(8))
		case 1: // truncate
			bad = bad[:rng.Intn(len(bad))]
		default: // append junk
			bad = append(bad, byte(rng.Intn(256)))
		}
		if _, err := decodeSnapshot(bad); err == nil {
			// A bit flip that CRC-32 misses is possible in principle but
			// astronomically unlikely for single-bit flips; treat survival
			// of an identical payload as the only acceptable outcome.
			if string(bad) != string(good) {
				t.Fatalf("iteration %d: mutated snapshot decoded without error", i)
			}
		} else if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("iteration %d: error does not wrap ErrBadSnapshot: %v", i, err)
		}
	}
}

// TestCheckpointCachePort: with a Cached plug-in, settled answers travel
// through the snapshot and pre-settle the resumed run's cache.
func TestCheckpointCachePort(t *testing.T) {
	tb := exampleTBox()
	path := ckPath(t)
	cached := reasoner.NewCached(tableauFactory(tb))
	classify(t, tb, Options{Workers: 2, Reasoner: cached, Checkpoint: path})
	if n := len(cached.ExportCache().Subs); n == 0 {
		t.Fatal("no subs entries settled in the source cache")
	}

	fresh := reasoner.NewCached(tableauFactory(tb))
	res := classify(t, tb, Options{Workers: 2, Reasoner: fresh, ResumeFrom: path})
	if !res.Resumed {
		t.Fatalf("not resumed: %v", res.ResumeError)
	}
	want := cached.ExportCache()
	got := fresh.ExportCache()
	if len(got.Sat) < len(want.Sat) || len(got.Subs) < len(want.Subs) {
		t.Fatalf("imported cache smaller than exported: %d/%d sat, %d/%d subs",
			len(got.Sat), len(want.Sat), len(got.Subs), len(want.Subs))
	}
}

// TestFingerprintSensitivity: the fingerprint must change under axiom
// edits and renames but be stable across re-builds of the same ontology.
func TestFingerprintSensitivity(t *testing.T) {
	a, b := exampleTBox(), exampleTBox()
	if FingerprintTBox(a) != FingerprintTBox(b) {
		t.Fatal("identical ontologies fingerprint differently")
	}
	c := exampleTBox()
	c.SubClassOf(c.Declare("Z"), c.Factory.Name("A"))
	if FingerprintTBox(a) == FingerprintTBox(c) {
		t.Fatal("added axiom did not change the fingerprint")
	}
	d := dl.NewTBox("renamed")
	x, y := d.Declare("X"), d.Declare("Y")
	d.SubClassOf(y, x)
	e := dl.NewTBox("renamed")
	p, q := e.Declare("P"), e.Declare("Y")
	e.SubClassOf(q, p)
	if FingerprintTBox(d) == FingerprintTBox(e) {
		t.Fatal("renamed concept did not change the fingerprint")
	}
}

// TestCheckpointWriteFailureDoesNotFailRun: an unwritable checkpoint path
// degrades to Result.CheckpointError, not a classification failure.
func TestCheckpointWriteFailureDoesNotFailRun(t *testing.T) {
	tb := exampleTBox()
	res := classify(t, tb, Options{
		Workers:    2,
		Checkpoint: filepath.Join(t.TempDir(), "no-such-dir", "run.ck"),
	})
	if res.CheckpointError == nil {
		t.Fatal("expected CheckpointError for unwritable path")
	}
	want := classify(t, tb, Options{Workers: 2})
	if res.Taxonomy.Render() != want.Taxonomy.Render() {
		t.Fatal("taxonomy differs despite checkpoint failure")
	}
}
