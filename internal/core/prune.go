package core

import "time"

// order returns the pair in canonical (smaller, larger) index order; the
// paper stores each possible pair once, at the smaller index (Sec. IV,
// Definition 2).
func order(u, v int) (int, int) {
	if u > v {
		return v, u
	}
	return u, v
}

// claimPair atomically claims the unordered pair {u, v}; only one worker
// ever wins a given pair. The claim is the atomic clear of the pair's
// single P bit (stored at the smaller index): clearing doubles as the
// paper's tested() bookkeeping without a separate n×n matrix.
func (s *state) claimPair(u, v int) bool {
	a, b := order(u, v)
	return s.P[a].Clear(b)
}

// resolvePair decides the unordered pair {u, v} in optimized mode
// (Algorithm 5, pruneNonPossible): claim, satisfiability checks
// (Situation 1), symmetric subsumption tests (Situation 2.2), and
// K-based pruning (Situations 2.3.1 and 2.3.2). It returns the charged
// reasoner cost.
func (s *state) resolvePair(u, v int) time.Duration {
	if u == v || s.failed() {
		return 0
	}
	a, b := order(u, v)
	if !s.claimPair(a, b) {
		return 0 // Situation 2.1: already tested
	}
	if !s.sat(a) || !s.sat(b) || s.failed() {
		return 0 // Situation 1: sat() already emptied the relevant P entries
	}
	r1, c1 := s.testDirected(a, b) // subs?(a, b): b ⊑ a
	if s.failed() {
		return c1
	}
	r2, c2 := s.testDirected(b, a) // subs?(b, a): a ⊑ b
	if s.failed() {
		return c1 + c2
	}
	switch {
	case r1 && r2:
		// Situation 2.2: a ≡ b, recorded as mutual K membership.
	case r1:
		s.pruneAfter(a, b) // Situation 2.3 with b ⊑ a
	case r2:
		s.pruneAfter(b, a) // Situation 2.3 with a ⊑ b
	default:
		// Situation 2.4: no subsumption either way — the counterexamples
		// of Figs. 6-8 show no sound pruning exists here, so P and K are
		// left unchanged.
	}
	return c1 + c2
}

// pruneAfter applies Situations 2.3.1 and 2.3.2 after establishing
// sub ⊑ sup (strictly, since the reverse test failed): every y ∈ K_sub is
// also a subsumee of sup but not a direct one, so
//
//   - y is deleted from P_sup and K_sup without a subsumption test
//     (2.3.1), and
//   - sup is deleted from P_y (2.3.2) — with single-sided pair storage
//     both deletions collapse into clearing the one pair {sup, y}.
//
// The reverse direction sup ⊑ y is also resolved (false): it would imply
// sup ⊑ sub, contradicting the failed reverse test. The K-reachability
// chain sup → sub → y preserves the positive fact for phase 3.
func (s *state) pruneAfter(sup, sub int) {
	s.K[sub].ForEach(func(y int) bool {
		if y == sup || y == sub {
			return true
		}
		s.K[sup].Clear(y)
		if s.claimPair(sup, y) {
			s.pruned.Add(1)
		}
		return true
	})
}
