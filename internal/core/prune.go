package core

import "time"

// order returns the pair in canonical (smaller, larger) index order; the
// paper stores each possible pair once, at the smaller index (Sec. IV,
// Definition 2).
func order(u, v int) (int, int) {
	if u > v {
		return v, u
	}
	return u, v
}

// claimPair atomically claims the unordered pair {u, v}; only one worker
// ever wins a given pair. The claim is the atomic clear of the pair's
// single P bit (stored at the smaller index): clearing doubles as the
// paper's tested() bookkeeping without a separate n×n matrix.
func (s *state) claimPair(u, v int) bool {
	a, b := order(u, v)
	return s.P[a].Clear(b)
}

// resolvePair decides the unordered pair {u, v} in optimized mode
// (Algorithm 5, pruneNonPossible): claim, satisfiability checks
// (Situation 1), symmetric subsumption tests (Situation 2.2), and
// K-based pruning (Situations 2.3.1 and 2.3.2). It returns the charged
// reasoner cost.
func (s *state) resolvePair(u, v int) time.Duration {
	if u == v || s.failed() {
		return 0
	}
	a, b := order(u, v)
	if !s.claimPair(a, b) {
		return 0 // Situation 2.1: already tested
	}
	if !s.sat(a) || !s.sat(b) || s.failed() {
		return 0 // Situation 1: sat() already emptied the relevant P entries
	}
	r1, c1 := s.testDirected(a, b) // subs?(a, b): b ⊑ a
	if s.failed() {
		return c1
	}
	r2, c2 := s.testDirected(b, a) // subs?(b, a): a ⊑ b
	if s.failed() {
		return c1 + c2
	}
	switch {
	case r1 && r2:
		// Situation 2.2: a ≡ b, recorded as mutual K membership.
	case r1:
		s.pruneAfter(a, b) // Situation 2.3 with b ⊑ a
	case r2:
		s.pruneAfter(b, a) // Situation 2.3 with a ⊑ b
	default:
		// Situation 2.4: no subsumption either way — the counterexamples
		// of Figs. 6-8 show no sound pruning exists here, so P and K are
		// left unchanged.
	}
	return c1 + c2
}

// prunePass re-applies Situation 2.3 pruning across the whole K relation
// with the knowledge available NOW. pruneAfter is one-shot: it prunes
// with K_sub as of the moment its test result lands, so a subsumee fact
// y ⊑ sub that arrives later never yields its prune {sup, y} — under any
// policy. The async driver runs this sweep on the coordinator when it
// closes an epoch, converting the epoch's late-arriving K facts into P
// clears before the next cut claims them; it costs bitset operations,
// never a reasoner call.
//
// MUST only run at pool quiescence (pending == 0). The claim of pair
// {sup, y} resolves its reverse direction sup ⊑ y false, which is sound
// only for a STRICT sub ⊏ sup, and strictness is only decidable from K
// when no resolvePair is mid-flight between recording its two
// directions. At quiescence, sub ∈ K_sup with the pair {sub, sup}
// claimed and no mutual K edge implies strictness: a tested pair decided
// both directions (one positive), a pruned pair asserted strictness when
// claimed, and the prepass claims a half-proven pair only for
// equivalences (mutual K) or the ⊤-trivial case. An UNclaimed pair with
// a one-sided K edge is a prepass half-seed whose converse is still
// open — skipped.
//
// Unlike pruneAfter, the sweep deliberately does NOT clear K_sup edges.
// pruneAfter's 2.3.1 deletion is safe there only because a prune CLAIMS
// the sibling pair, which prevents the symmetric pruneAfter call from
// ever running; a sweep revisiting both members of an equivalence class
// below sup would otherwise delete each member's K edge justified by the
// other's — severing sup's reachability to the whole class. Keeping the
// edges is always sound (they are entailed facts; the phase-3 transitive
// reduction removes indirect ones), and it keeps K rows fat, so both
// later sweep iterations and the workers' own pruneAfter calls see more
// subsumees to prune through — the sweep is transitive for free.
func (s *state) prunePass() {
	if !s.optimized {
		return // basic mode never prunes (Algorithm 4 tests everything)
	}
	for sup := 0; sup < s.n && !s.failed(); sup++ {
		if sup == s.top || s.satState[sup].Load() != satYes {
			continue
		}
		s.K[sup].ForEach(func(sub int) bool {
			if sub == sup || sub == s.top || s.satState[sub].Load() != satYes {
				return true
			}
			if a, b := order(sub, sup); s.P[a].Test(b) {
				return true // pair still open: strictness undecided
			}
			if s.K[sub].Test(sup) {
				return true // known equivalence: Situation 2.2, no pruning
			}
			s.K[sub].ForEach(func(y int) bool {
				if y == sup || y == sub {
					return true
				}
				if s.claimPair(sup, y) {
					s.pruned.Add(1)
				}
				return true
			})
			return true
		})
	}
}

// pruneAfter applies Situations 2.3.1 and 2.3.2 after establishing
// sub ⊑ sup (strictly, since the reverse test failed): every y ∈ K_sub is
// also a subsumee of sup but not a direct one, so
//
//   - y is deleted from P_sup and K_sup without a subsumption test
//     (2.3.1), and
//   - sup is deleted from P_y (2.3.2) — with single-sided pair storage
//     both deletions collapse into clearing the one pair {sup, y}.
//
// The reverse direction sup ⊑ y is also resolved (false): it would imply
// sup ⊑ sub, contradicting the failed reverse test. The K-reachability
// chain sup → sub → y preserves the positive fact for phase 3.
func (s *state) pruneAfter(sup, sub int) {
	s.K[sub].ForEach(func(y int) bool {
		if y == sup || y == sub {
			return true
		}
		s.K[sup].Clear(y)
		if s.claimPair(sup, y) {
			s.pruned.Add(1)
		}
		return true
	})
}
