package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"parowl/internal/dl"
	"parowl/internal/reasoner"
)

// errTestTimedOut marks a reasoner test whose every budgeted attempt hit
// its deadline. It is a per-test degradation, not a run failure: the
// classifier records the pair as undecided and continues.
var errTestTimedOut = errors.New("core: reasoner test exceeded its budget")

// errReasonerPanic marks a plug-in call that panicked. Like a timeout it
// degrades only the one test; the panic value is preserved in the error
// message.
var errReasonerPanic = errors.New("core: reasoner plug-in panicked")

// Undecided records one reasoner test abandoned under the per-test budget
// (Options.TestTimeout), recovered from a plug-in panic, or cut off by
// the plug-in's own resource budget. The taxonomy stays sound — an
// abandoned subsumption test is never asserted, and an abandoned
// satisfiability test conservatively treats the concept as satisfiable —
// but it may be incomplete: a subsumption that holds could be missing.
// Callers that need certainty re-run the listed tests with a larger
// budget.
type Undecided struct {
	// Sup and Sub identify the directed test subs?(Sup, Sub) — "is
	// Sub ⊑ Sup" — that was abandoned. For an abandoned satisfiability
	// test Sup is nil and Sub is the concept whose sat?() call was cut
	// off.
	Sup, Sub *dl.Concept
	// Reason is "timeout" for a budget expiry, "panic" for a recovered
	// plug-in panic, or "node-budget" / "branch-budget" when the plug-in
	// reported exhausting its own resource limits (reasoner.ErrNodeBudget
	// / ErrBranchBudget).
	Reason string
}

func (u Undecided) String() string {
	if u.Sup == nil {
		return fmt.Sprintf("sat?(%v) [%s]", u.Sub, u.Reason)
	}
	return fmt.Sprintf("subs?(%v, %v) [%s]", u.Sup, u.Sub, u.Reason)
}

// safeSat runs one Sat plug-in call, converting a panic into
// errReasonerPanic instead of unwinding the worker.
func (s *state) safeSat(ctx context.Context, c *dl.Concept) (ok bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			ok, err = false, fmt.Errorf("%w: sat?(%v): %v", errReasonerPanic, c, r)
		}
	}()
	return s.r.Sat(ctx, c)
}

// safeSubs is safeSat for Subs.
func (s *state) safeSubs(ctx context.Context, sup, sub *dl.Concept) (ok bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			ok, err = false, fmt.Errorf("%w: subs?(%v, %v): %v", errReasonerPanic, sup, sub, r)
		}
	}()
	return s.r.Subs(ctx, sup, sub)
}

// budgeted runs one reasoner call under the per-test budget with
// escalation: attempt i receives TestTimeout·2ⁱ, and a call that still
// times out after TestRetries retries yields errTestTimedOut. Plug-in
// panics surface as errReasonerPanic without retry (a panicking plug-in
// is deterministic far more often than it is flaky). With no budget
// configured the call runs directly under the run context.
func (s *state) budgeted(call func(context.Context) (bool, error)) (bool, error) {
	if s.testTimeout <= 0 {
		return call(s.ctx)
	}
	for attempt := 0; ; attempt++ {
		budget := testBudgetFor(s.testTimeout, attempt)
		ctx, cancel := context.WithTimeout(s.ctx, budget)
		ok, err := call(ctx)
		cancel()
		if err == nil {
			return ok, nil
		}
		if errors.Is(err, errReasonerPanic) {
			return false, err
		}
		if cause := s.ctx.Err(); cause != nil {
			// The whole run was cancelled, not just this test's budget.
			return false, cause
		}
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			return false, err // a genuine plug-in error, never retried
		}
		if attempt >= s.testRetries {
			return false, fmt.Errorf("%w (%d attempt(s), final budget %v)", errTestTimedOut, attempt+1, budget)
		}
	}
}

// budgetedSat is sat?(c) under the per-test budget.
func (s *state) budgetedSat(c *dl.Concept) (bool, error) {
	return s.budgeted(func(ctx context.Context) (bool, error) { return s.safeSat(ctx, c) })
}

// budgetedSubs is subs?(sup, sub) under the per-test budget.
func (s *state) budgetedSubs(sup, sub *dl.Concept) (bool, error) {
	return s.budgeted(func(ctx context.Context) (bool, error) { return s.safeSubs(ctx, sup, sub) })
}

// isDegraded reports whether err is a per-test degradation (per-test
// budget expiry, recovered panic, or a plug-in resource-budget
// exhaustion) rather than an error that should fail the run.
func isDegraded(err error) bool {
	return errors.Is(err, errTestTimedOut) || errors.Is(err, errReasonerPanic) ||
		errors.Is(err, reasoner.ErrNodeBudget) || errors.Is(err, reasoner.ErrBranchBudget)
}

// recordUndecided notes one degraded test and bumps the matching counter.
func (s *state) recordUndecided(sup, sub *dl.Concept, err error) {
	var reason string
	switch {
	case errors.Is(err, errReasonerPanic):
		reason = "panic"
		s.recovered.Add(1)
	case errors.Is(err, reasoner.ErrNodeBudget):
		reason = "node-budget"
		s.nodeBudget.Add(1)
	case errors.Is(err, reasoner.ErrBranchBudget):
		reason = "branch-budget"
		s.branchBudget.Add(1)
	default:
		reason = "timeout"
		s.timedOut.Add(1)
	}
	s.undecidedMu.Lock()
	s.undecided = append(s.undecided, Undecided{Sup: sup, Sub: sub, Reason: reason})
	s.undecidedMu.Unlock()
}

// takeUndecided returns the degraded tests in deterministic order
// (workers append in race order).
func (s *state) takeUndecided() []Undecided {
	s.undecidedMu.Lock()
	out := s.undecided
	s.undecided = nil
	s.undecidedMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if a, b := conceptKey(out[i].Sup), conceptKey(out[j].Sup); a != b {
			return a < b
		}
		return conceptKey(out[i].Sub) < conceptKey(out[j].Sub)
	})
	return out
}

func conceptKey(c *dl.Concept) string {
	if c == nil {
		return ""
	}
	return c.String()
}

// testBudgetFor doubles the base per attempt; exposed for tests of the
// escalation schedule.
func testBudgetFor(base time.Duration, attempt int) time.Duration {
	return base << attempt
}
