package core

import (
	"sync"
	"time"
)

// Scheduling selects how tasks are assigned to the worker pool.
type Scheduling int

// Scheduling policies.
const (
	// RoundRobin assigns task i to worker i mod w, the paper's stated
	// policy for the group-division phase ("we apply round-robin
	// scheduling to ensure a good use of all threads").
	RoundRobin Scheduling = iota
	// WorkSharing feeds all workers from one shared queue: an idle worker
	// takes the next task. Benchmarked as an ablation of the paper's
	// choice.
	WorkSharing
)

func (s Scheduling) String() string {
	if s == WorkSharing {
		return "worksharing"
	}
	return "roundrobin"
}

// task is one unit of pool work; it returns its charged duration.
type task func() time.Duration

// pool is the fixed worker pool of Algorithm 1 (createWorkerPool). It is
// created once per classification run and reused across phases; each
// phase submits a batch of tasks and waits on the barrier.
//
// Under RoundRobin each worker owns a queue and a wake channel, so a
// wakeup can never be consumed by a worker whose queue is empty; under
// WorkSharing all workers drain queue 0 and share wake channel 0.
type pool struct {
	workers    int
	scheduling Scheduling

	mu     sync.Mutex
	queues [][]task
	next   int             // round-robin cursor
	durs   []time.Duration // indexed by dispatch order
	busy   []time.Duration // charged load per worker, this batch

	inflight sync.WaitGroup
	wake     []chan struct{}
	quit     chan struct{}
	done     sync.WaitGroup

	// onPanic receives recovered task panics; without it a panicking
	// plug-in would kill the process or deadlock the barrier.
	onPanic func(any)
}

// newPool starts w workers.
func newPool(w int, sched Scheduling) *pool {
	if w < 1 {
		w = 1
	}
	p := &pool{
		workers:    w,
		scheduling: sched,
		queues:     make([][]task, w),
		busy:       make([]time.Duration, w),
		wake:       make([]chan struct{}, w),
		quit:       make(chan struct{}),
	}
	for i := range p.wake {
		p.wake[i] = make(chan struct{}, 1)
	}
	p.done.Add(w)
	for i := 0; i < w; i++ {
		go p.worker(i)
	}
	return p
}

// slotFor returns the queue a new task goes to and the wake channel to
// signal.
func (p *pool) slotFor() int {
	if p.scheduling == WorkSharing {
		return 0
	}
	slot := p.next % p.workers
	p.next++
	return slot
}

// submit enqueues one task for the barrier of the current batch. Task
// durations are recorded in dispatch order so the virtual-time scheduler
// can replay the exact round-robin assignment (task i → worker i mod w).
func (p *pool) submit(t task) {
	p.inflight.Add(1)
	p.mu.Lock()
	slot := p.slotFor()
	idx := len(p.durs)
	p.durs = append(p.durs, 0)
	wrapped := func() time.Duration {
		d := t()
		p.mu.Lock()
		p.durs[idx] = d
		p.mu.Unlock()
		return d
	}
	p.queues[slot] = append(p.queues[slot], wrapped)
	p.mu.Unlock()
	if p.scheduling == WorkSharing {
		// Any worker may take it: nudge them all (non-blocking).
		for i := range p.wake {
			select {
			case p.wake[i] <- struct{}{}:
			default:
			}
		}
		return
	}
	select {
	case p.wake[slot] <- struct{}{}:
	default:
	}
}

// barrier waits for every submitted task to finish and returns the task
// durations in dispatch order together with the per-worker charged loads
// of the batch (the paper's Sec. V-C load-balancing measurement).
func (p *pool) barrier() ([]time.Duration, []time.Duration) {
	p.inflight.Wait()
	p.mu.Lock()
	durs := p.durs
	p.durs = nil
	p.next = 0
	busy := p.busy
	p.busy = make([]time.Duration, p.workers)
	p.mu.Unlock()
	return durs, busy
}

// close stops the workers; call only after a final barrier.
func (p *pool) close() {
	close(p.quit)
	p.done.Wait()
}

// take pops a task for worker id.
func (p *pool) take(id int) (task, bool) {
	if p.scheduling == WorkSharing {
		id = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.queues[id]
	if len(q) == 0 {
		return nil, false
	}
	t := q[0]
	p.queues[id] = q[1:]
	return t, true
}

func (p *pool) worker(id int) {
	defer p.done.Done()
	wake := p.wake[id]
	for {
		t, ok := p.take(id)
		if !ok {
			select {
			case <-wake:
				continue
			case <-p.quit:
				return
			}
		}
		p.runTask(id, t)
	}
}

// runTask executes one task, converting panics into onPanic callbacks so
// the barrier always completes.
func (p *pool) runTask(id int, t task) {
	defer p.inflight.Done()
	defer func() {
		if r := recover(); r != nil {
			if p.onPanic != nil {
				p.onPanic(r)
			}
		}
	}()
	d := t()
	p.mu.Lock()
	p.busy[id] += d
	p.mu.Unlock()
}
