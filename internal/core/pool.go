package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// Scheduling selects how tasks are assigned to the worker pool.
type Scheduling int

// Scheduling policies.
const (
	// RoundRobin assigns task i to worker i mod w, the paper's stated
	// policy for the group-division phase ("we apply round-robin
	// scheduling to ensure a good use of all threads").
	RoundRobin Scheduling = iota
	// WorkSharing feeds all workers from one shared queue: an idle worker
	// takes the next task. Benchmarked as an ablation of the paper's
	// choice.
	WorkSharing
)

func (s Scheduling) String() string {
	if s == WorkSharing {
		return "worksharing"
	}
	return "roundrobin"
}

// task is one unit of pool work; it returns its charged duration.
type task func() time.Duration

// durChunkSize tasks share one duration chunk; chunks are allocated on
// demand and their backing arrays never move, so a completing task can
// store into its slot without any lock.
const durChunkSize = 256

type durChunk [durChunkSize]atomic.Int64

// workerQueue is one worker's task queue under its own lock, so
// submit/take traffic for different workers never contends. Tasks are
// popped by advancing head rather than re-slicing, the popped slot is
// nilled so the batch's backing array does not pin completed task
// closures, and reset recycles the array for the next batch.
type workerQueue struct {
	mu   sync.Mutex
	q    []task
	head int
}

func (wq *workerQueue) push(t task) {
	wq.mu.Lock()
	wq.q = append(wq.q, t)
	wq.mu.Unlock()
}

func (wq *workerQueue) pop() (task, bool) {
	wq.mu.Lock()
	defer wq.mu.Unlock()
	if wq.head >= len(wq.q) {
		return nil, false
	}
	t := wq.q[wq.head]
	wq.q[wq.head] = nil
	wq.head++
	return t, true
}

// reset recycles the queue's storage; called only at the barrier, when
// the queue is drained.
func (wq *workerQueue) reset() {
	wq.mu.Lock()
	wq.q = wq.q[:0]
	wq.head = 0
	wq.mu.Unlock()
}

// pool is the fixed worker pool of Algorithm 1 (createWorkerPool). It is
// created once per classification run and reused across phases; each
// phase submits a batch of tasks and waits on the barrier.
//
// Under RoundRobin each worker owns a queue and a wake channel, so a
// wakeup can never be consumed by a worker whose queue is empty; under
// WorkSharing all workers drain queue 0 and share wake channel 0. Each
// queue has its own lock and completed tasks record their duration with
// an atomic store into a pre-assigned chunk slot, so the only shared
// lock left (submitMu) is taken by the submitting goroutine alone.
type pool struct {
	workers    int
	scheduling Scheduling

	queues []workerQueue

	// Batch bookkeeping, guarded by submitMu. Only the submitter takes
	// this lock: tasks store durations straight into their chunk slot,
	// and the barrier reads after inflight.Wait has synchronized.
	submitMu sync.Mutex
	next     int // round-robin cursor
	count    int // tasks submitted this batch
	durs     []*durChunk

	// busy[id] is the charged load worker id carried this batch. Each
	// entry is written only by its owning worker goroutine; the
	// WaitGroup in barrier orders those writes before the read, and the
	// queue locks order the barrier's slice swap before the next batch.
	busy []time.Duration

	inflight sync.WaitGroup
	wake     []chan struct{}
	quit     chan struct{}
	done     sync.WaitGroup

	// onPanic receives recovered task panics; without it a panicking
	// plug-in would kill the process or deadlock the barrier.
	onPanic func(any)
}

// newPool starts w workers.
func newPool(w int, sched Scheduling) *pool {
	if w < 1 {
		w = 1
	}
	p := &pool{
		workers:    w,
		scheduling: sched,
		queues:     make([]workerQueue, w),
		busy:       make([]time.Duration, w),
		wake:       make([]chan struct{}, w),
		quit:       make(chan struct{}),
	}
	for i := range p.wake {
		p.wake[i] = make(chan struct{}, 1)
	}
	p.done.Add(w)
	for i := 0; i < w; i++ {
		go p.worker(i)
	}
	return p
}

// slotFor returns the queue the next task goes to; the caller must hold
// submitMu.
func (p *pool) slotFor() int {
	if p.scheduling == WorkSharing {
		return 0
	}
	slot := p.next % p.workers
	p.next++
	return slot
}

// submit enqueues one task for the barrier of the current batch. Task
// durations are recorded in dispatch order so the virtual-time scheduler
// can replay the exact round-robin assignment (task i → worker i mod w).
func (p *pool) submit(t task) {
	p.inflight.Add(1)
	p.submitMu.Lock()
	slot := p.slotFor()
	idx := p.count
	p.count++
	if idx/durChunkSize >= len(p.durs) {
		p.durs = append(p.durs, new(durChunk))
	}
	cell := &p.durs[idx/durChunkSize][idx%durChunkSize]
	p.submitMu.Unlock()
	wrapped := func() time.Duration {
		d := t()
		cell.Store(int64(d))
		return d
	}
	p.queues[slot].push(wrapped)
	if p.scheduling == WorkSharing {
		// Any worker may take it: nudge them all (non-blocking).
		for i := range p.wake {
			select {
			case p.wake[i] <- struct{}{}:
			default:
			}
		}
		return
	}
	select {
	case p.wake[slot] <- struct{}{}:
	default:
	}
}

// barrier waits for every submitted task to finish and returns the task
// durations in dispatch order together with the per-worker charged loads
// of the batch (the paper's Sec. V-C load-balancing measurement).
func (p *pool) barrier() ([]time.Duration, []time.Duration) {
	p.inflight.Wait()
	p.submitMu.Lock()
	durs := make([]time.Duration, p.count)
	for i := range durs {
		cell := &p.durs[i/durChunkSize][i%durChunkSize]
		durs[i] = time.Duration(cell.Load())
		cell.Store(0) // a reused slot must not leak into the next batch
	}
	p.count = 0
	p.next = 0
	p.submitMu.Unlock()
	for i := range p.queues {
		p.queues[i].reset()
	}
	busy := p.busy
	p.busy = make([]time.Duration, p.workers)
	return durs, busy
}

// close stops the workers; call only after a final barrier.
func (p *pool) close() {
	close(p.quit)
	p.done.Wait()
}

// take pops a task for worker id.
func (p *pool) take(id int) (task, bool) {
	if p.scheduling == WorkSharing {
		id = 0
	}
	return p.queues[id].pop()
}

func (p *pool) worker(id int) {
	defer p.done.Done()
	wake := p.wake[id]
	for {
		t, ok := p.take(id)
		if !ok {
			select {
			case <-wake:
				continue
			case <-p.quit:
				return
			}
		}
		p.runTask(id, t)
	}
}

// runTask executes one task, converting panics into onPanic callbacks so
// the barrier always completes.
func (p *pool) runTask(id int, t task) {
	defer p.inflight.Done()
	defer func() {
		if r := recover(); r != nil {
			if p.onPanic != nil {
				p.onPanic(r)
			}
		}
	}()
	d := t()
	p.busy[id] += d
}
