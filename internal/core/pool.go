package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Scheduling selects how tasks are assigned to the worker pool.
type Scheduling int

// Scheduling policies.
const (
	// RoundRobin assigns task i to worker i mod w, the paper's stated
	// policy for the group-division phase ("we apply round-robin
	// scheduling to ensure a good use of all threads").
	RoundRobin Scheduling = iota
	// WorkSharing feeds all workers from one shared queue: an idle worker
	// takes the next task. Benchmarked as an ablation of the paper's
	// choice.
	WorkSharing
	// WorkStealing gives each worker a Chase–Lev lock-free deque fed
	// round-robin by the coordinator in hardness order (longest processing
	// time first); an idle worker steals from randomly chosen victims
	// before parking, so barrier stragglers shed their queued tail. The
	// paper's Sec. V-C identifies exactly this skew — per-test cost, not
	// test count — as the limit on speedup.
	WorkStealing
	// Async is barrier-free classification: workers consume from the same
	// Chase–Lev deques as WorkStealing, but the coordinator streams work
	// continuously instead of rendezvousing after every cycle. Full
	// quiescence (the pending-task counter reaching zero) is reached only
	// at phase edges and when a checkpoint is due; each quiescence point
	// closes an epoch, and snapshots are cut exactly there, so they stay
	// as consistent as barrier-mode snapshots. Between epochs the group
	// phase refills bounded waves from the live P sets, so later waves are
	// cut from state already thinned by earlier pruning.
	Async
)

func (s Scheduling) String() string {
	switch s {
	case WorkSharing:
		return "worksharing"
	case WorkStealing:
		return "workstealing"
	case Async:
		return "async"
	}
	return "roundrobin"
}

// stealing reports whether the policy runs workers on the Chase–Lev
// deque/steal loop (WorkStealing and Async) rather than the plain queue
// loop.
func (s Scheduling) stealing() bool {
	return s == WorkStealing || s == Async
}

// ParseScheduling maps a policy name (as printed by String) back to the
// constant, for CLI flags.
func ParseScheduling(name string) (Scheduling, error) {
	switch name {
	case "roundrobin":
		return RoundRobin, nil
	case "worksharing":
		return WorkSharing, nil
	case "workstealing":
		return WorkStealing, nil
	case "async":
		return Async, nil
	}
	return 0, fmt.Errorf("core: unknown scheduling policy %q (want roundrobin, worksharing, workstealing, or async)", name)
}

// task is one unit of pool work; it returns its charged duration.
type task func() time.Duration

// poolTask pairs a task with its batch bookkeeping slot. Tasks are
// tracked by pointer so the work-stealing deque can move them between
// workers without copying.
type poolTask struct {
	fn   task
	cell *taskSlot
}

// taskSlot is one task's slot in the batch record: its charged duration
// and the worker that actually executed it (1-based; 0 = never ran).
// Completing tasks store into their slot without any lock; the barrier
// reads after the inflight WaitGroup has synchronized.
type taskSlot struct {
	dur atomic.Int64
	who atomic.Int32
}

// durChunkSize tasks share one slot chunk; chunks are allocated on demand
// and their backing arrays never move, so a completing task can store
// into its slot without any lock.
const durChunkSize = 256

type durChunk [durChunkSize]taskSlot

// workerQueue is one worker's submission queue under its own lock, so
// submit/take traffic for different workers never contends. Tasks are
// popped by advancing head rather than re-slicing, the popped slot is
// nilled so the batch's backing array does not pin completed task
// closures, and reset recycles the array for the next batch.
//
// Under WorkStealing the queue doubles as the worker's inbox: the
// coordinator is not the deque's owner and therefore may not push into
// it, so tasks land here and the owner drains them into its own deque in
// one lock acquisition. Thieves may also pop from a victim's inbox —
// that is what rescues tasks queued behind a straggler that never
// returns to drain.
type workerQueue struct {
	mu   sync.Mutex
	q    []*poolTask
	head int
}

func (wq *workerQueue) push(t *poolTask) {
	wq.mu.Lock()
	wq.q = append(wq.q, t)
	wq.mu.Unlock()
}

func (wq *workerQueue) pop() (*poolTask, bool) {
	wq.mu.Lock()
	defer wq.mu.Unlock()
	if wq.head >= len(wq.q) {
		return nil, false
	}
	t := wq.q[wq.head]
	wq.q[wq.head] = nil
	wq.head++
	return t, true
}

// drain takes every queued task at once (one lock acquisition) and
// leaves the queue empty but its storage intact for reuse.
func (wq *workerQueue) drain() []*poolTask {
	wq.mu.Lock()
	defer wq.mu.Unlock()
	if wq.head >= len(wq.q) {
		return nil
	}
	out := make([]*poolTask, len(wq.q)-wq.head)
	for i := range out {
		out[i] = wq.q[wq.head+i]
		wq.q[wq.head+i] = nil
	}
	wq.head = len(wq.q)
	return out
}

// reset recycles the queue's storage; called only at the barrier, when
// every submitted task has completed. The mutex makes it safe against a
// late thief still probing the queue: the thief observes either the
// drained pre-reset state or the empty post-reset state, never a torn
// one.
func (wq *workerQueue) reset() {
	wq.mu.Lock()
	wq.q = wq.q[:0]
	wq.head = 0
	wq.mu.Unlock()
}

// batchReport is what barrier returns for one barrier-delimited batch:
// per-task charged durations and executing workers in dispatch order,
// per-worker charged loads, and — under WorkStealing/Async — per-worker
// steal counts.
type batchReport struct {
	durs    []time.Duration
	workers []int
	loads   []time.Duration
	// steals[w] counts tasks worker w took from other workers' queues;
	// stolenFrom[w] counts tasks thieves took from worker w's queues.
	// Both nil unless the pool runs a stealing policy.
	steals     []int64
	stolenFrom []int64
	// waits[w] is the time worker w spent parked waiting for work during
	// the batch, in nanoseconds (every policy).
	waits []int64
}

// pool is the fixed worker pool of Algorithm 1 (createWorkerPool). It is
// created once per classification run and reused across phases; each
// phase submits a batch of tasks and waits on the barrier.
//
// Under RoundRobin each worker owns a queue and a wake channel, so a
// wakeup can never be consumed by a worker whose queue is empty; under
// WorkSharing all workers drain queue 0 and share wake channel 0; under
// WorkStealing and Async each worker drains its round-robin-fed queue
// into a private Chase–Lev deque and steals from random victims when
// idle (Async differs only in how the coordinator feeds and paces the
// pool: continuous waves bounded by waitLow instead of batch+barrier,
// see async.go). Each
// queue has its own lock and completed tasks record their duration with
// an atomic store into a pre-assigned chunk slot, so the only shared
// lock left (submitMu) is taken by the submitting goroutine alone.
type pool struct {
	workers    int
	scheduling Scheduling

	queues []workerQueue
	deques []wsDeque // non-nil only under WorkStealing/Async

	// Batch bookkeeping, guarded by submitMu. Only the submitter takes
	// this lock: tasks store durations straight into their chunk slot,
	// and the barrier reads after inflight.Wait has synchronized.
	submitMu sync.Mutex
	next     int // round-robin cursor
	count    int // tasks submitted this batch
	durs     []*durChunk

	// busy[id] is the charged load worker id carried this batch. Each
	// entry is written only by its owning worker goroutine; the
	// WaitGroup in barrier orders those writes before the read, and the
	// queue locks order the barrier's slice swap before the next batch.
	busy []time.Duration

	// steals/stolenFrom are this batch's per-worker steal counters
	// (stealing policies only); totalSteals accumulates across the whole
	// run for Stats.
	steals      []atomic.Int64
	stolenFrom  []atomic.Int64
	totalSteals atomic.Int64

	// waits[w] accumulates the nanoseconds worker w spent parked on its
	// wake channel this batch; the barrier swaps them out. This is the
	// straggler-tail measurement: under a barrier policy an early
	// finisher parks until the next batch wakes it, under Async it is
	// re-fed before it parks.
	waits []atomic.Int64

	// pending counts submitted-but-unfinished tasks; together with
	// taskDone it is the quiescence detector the Async driver paces on:
	// waitLow blocks until the backlog drains below a watermark, and
	// pending == 0 is full quiescence (every claimed pair's outcome is
	// recorded), the only state snapshots are cut in. epoch counts
	// quiescence points passed (every barrier closes one epoch); it is
	// what checkpoint snapshots are tagged with.
	pending  atomic.Int64
	taskDone chan struct{}
	epoch    atomic.Int64

	inflight sync.WaitGroup
	wake     []chan struct{}
	quit     chan struct{}
	done     sync.WaitGroup

	// onPanic receives recovered task panics; without it a panicking
	// plug-in would kill the process or deadlock the barrier.
	onPanic func(any)
}

// newPool starts w workers.
func newPool(w int, sched Scheduling) *pool {
	if w < 1 {
		w = 1
	}
	p := &pool{
		workers:    w,
		scheduling: sched,
		queues:     make([]workerQueue, w),
		busy:       make([]time.Duration, w),
		waits:      make([]atomic.Int64, w),
		wake:       make([]chan struct{}, w),
		quit:       make(chan struct{}),
		taskDone:   make(chan struct{}, 1),
	}
	if sched.stealing() {
		p.deques = make([]wsDeque, w)
		p.steals = make([]atomic.Int64, w)
		p.stolenFrom = make([]atomic.Int64, w)
	}
	for i := range p.wake {
		p.wake[i] = make(chan struct{}, 1)
	}
	p.done.Add(w)
	for i := 0; i < w; i++ {
		go p.worker(i)
	}
	return p
}

// slotFor returns the queue the next task goes to; the caller must hold
// submitMu.
func (p *pool) slotFor() int {
	if p.scheduling == WorkSharing {
		return 0
	}
	slot := p.next % p.workers
	p.next++
	return slot
}

// submit enqueues one task for the barrier of the current batch. Task
// durations are recorded in dispatch order so the virtual-time scheduler
// can replay the assignment (task i → worker i mod w under RoundRobin;
// greedy earliest-idle under the stealing policy).
func (p *pool) submit(t task) {
	p.inflight.Add(1)
	p.pending.Add(1)
	p.submitMu.Lock()
	slot := p.slotFor()
	idx := p.count
	p.count++
	if idx/durChunkSize >= len(p.durs) {
		p.durs = append(p.durs, new(durChunk))
	}
	cell := &p.durs[idx/durChunkSize][idx%durChunkSize]
	p.submitMu.Unlock()
	p.queues[slot].push(&poolTask{fn: t, cell: cell})
	if p.scheduling == RoundRobin {
		select {
		case p.wake[slot] <- struct{}{}:
		default:
		}
		return
	}
	// WorkSharing: any worker may take it. WorkStealing: the owner may be
	// mid-task, and any parked worker can steal it — nudge them all
	// (non-blocking).
	for i := range p.wake {
		select {
		case p.wake[i] <- struct{}{}:
		default:
		}
	}
}

// barrier waits for every submitted task to finish and returns the batch
// report: task durations and executing workers in dispatch order together
// with the per-worker charged loads (the paper's Sec. V-C load-balancing
// measurement) and, under WorkStealing, the per-worker steal counts.
func (p *pool) barrier() batchReport {
	p.inflight.Wait()
	p.submitMu.Lock()
	rep := batchReport{
		durs:    make([]time.Duration, p.count),
		workers: make([]int, p.count),
	}
	for i := range rep.durs {
		cell := &p.durs[i/durChunkSize][i%durChunkSize]
		rep.durs[i] = time.Duration(cell.dur.Load())
		rep.workers[i] = int(cell.who.Load()) - 1
		// A reused slot must not leak into the next batch.
		cell.dur.Store(0)
		cell.who.Store(0)
	}
	p.count = 0
	p.next = 0
	p.submitMu.Unlock()
	for i := range p.queues {
		p.queues[i].reset()
	}
	if p.scheduling.stealing() {
		// Checkpoints are taken at barriers on the strength of this
		// invariant: every task of the batch has run, so no deque may
		// still hold one. The deque indices themselves are monotonic and
		// are deliberately left alone — a late thief racing this barrier
		// sees an empty deque, not a reset one.
		for i := range p.deques {
			if !p.deques[i].empty() {
				panic(fmt.Sprintf("core: pool barrier passed with worker %d's deque non-empty", i))
			}
		}
		rep.steals = make([]int64, p.workers)
		rep.stolenFrom = make([]int64, p.workers)
		for i := 0; i < p.workers; i++ {
			rep.steals[i] = p.steals[i].Swap(0)
			rep.stolenFrom[i] = p.stolenFrom[i].Swap(0)
		}
	}
	rep.waits = make([]int64, p.workers)
	for i := 0; i < p.workers; i++ {
		rep.waits[i] = p.waits[i].Swap(0)
	}
	rep.loads = p.busy
	p.busy = make([]time.Duration, p.workers)
	// Every barrier pass is a quiescence point: all submitted work has
	// completed and recorded its outcome. Closing an epoch here gives
	// snapshots (and the Async driver) a monotonic consistency marker.
	p.epoch.Add(1)
	return rep
}

// pendingTasks reports the submitted-but-unfinished task count.
func (p *pool) pendingTasks() int64 { return p.pending.Load() }

// waitLow blocks until at most low submitted tasks remain unfinished.
// This is the Async driver's pacing primitive: instead of a barrier it
// waits only until enough of the pool has gone idle to be worth feeding
// again, while stragglers keep running. Only the coordinator calls it.
func (p *pool) waitLow(low int64) {
	for p.pending.Load() > low {
		<-p.taskDone
	}
}

// close stops the workers; call only after a final barrier.
func (p *pool) close() {
	close(p.quit)
	p.done.Wait()
}

// take pops a task for worker id under RoundRobin or WorkSharing.
func (p *pool) take(id int) (*poolTask, bool) {
	if p.scheduling == WorkSharing {
		id = 0
	}
	return p.queues[id].pop()
}

func (p *pool) worker(id int) {
	defer p.done.Done()
	if p.scheduling.stealing() {
		p.stealWorker(id)
		return
	}
	wake := p.wake[id]
	for {
		t, ok := p.take(id)
		if !ok {
			if !p.park(id, wake) {
				return
			}
			continue
		}
		p.runTask(id, t)
	}
}

// park blocks worker id on its wake channel, charging the parked time to
// the worker's wait counter; it returns false when the pool is closing.
// Parked time is the per-worker straggler-tail metric surfaced as
// Trace.Cycle.WaitNanos: under barrier policies every early finisher
// parks here until the whole batch completes and the next one is
// submitted.
func (p *pool) park(id int, wake chan struct{}) bool {
	start := time.Now()
	select {
	case <-wake:
		p.waits[id].Add(int64(time.Since(start)))
		return true
	case <-p.quit:
		return false
	}
}

// stealWorker is the WorkStealing worker loop: run own work (deque, then
// inbox), then try to steal, then yield and retry the steal once, then
// park on the wake channel. The single retry after a yield is the
// backoff: it catches a victim that was between its inbox drain and its
// deque publish without spinning the CPU while queues stay empty.
func (p *pool) stealWorker(id int) {
	wake := p.wake[id]
	// Cheap xorshift state, decorrelated per worker so thieves fan out
	// over different victims instead of convoying on one deque.
	rng := uint64(id)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for {
		if t, ok := p.localNext(id); ok {
			p.runTask(id, t)
			continue
		}
		if t, victim, ok := p.trySteal(id, &rng); ok {
			p.recordSteal(id, victim)
			p.runTask(id, t)
			continue
		}
		runtime.Gosched()
		if t, victim, ok := p.trySteal(id, &rng); ok {
			p.recordSteal(id, victim)
			p.runTask(id, t)
			continue
		}
		if !p.park(id, wake) {
			return
		}
	}
}

// localNext returns worker id's next own task: the youngest deque entry,
// or — when the deque is empty — the submission inbox drained into the
// deque. The drain pushes in reverse so that LIFO pops replay submission
// order: the coordinator submits hardest-first (LPT), so the owner always
// starts its biggest pending task next while thieves, stealing FIFO from
// the top, mop up the cheap tail.
func (p *pool) localNext(id int) (*poolTask, bool) {
	if t, ok := p.deques[id].pop(); ok {
		return t, true
	}
	batch := p.queues[id].drain()
	if len(batch) == 0 {
		return nil, false
	}
	for i := len(batch) - 1; i > 0; i-- {
		p.deques[id].push(batch[i])
	}
	return batch[0], true
}

// trySteal scans every other worker once, starting from a random victim:
// first the victim's deque (lock-free, oldest task), then its submission
// inbox (mutex, for tasks queued behind a straggler that never drains).
func (p *pool) trySteal(id int, rng *uint64) (*poolTask, int, bool) {
	if p.workers == 1 {
		return nil, 0, false
	}
	x := *rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*rng = x
	off := int(x % uint64(p.workers))
	for k := 0; k < p.workers; k++ {
		v := (off + k) % p.workers
		if v == id {
			continue
		}
		if t, ok := p.deques[v].steal(); ok {
			return t, v, true
		}
		if t, ok := p.queues[v].pop(); ok {
			return t, v, true
		}
	}
	return nil, 0, false
}

func (p *pool) recordSteal(thief, victim int) {
	p.steals[thief].Add(1)
	p.stolenFrom[victim].Add(1)
	p.totalSteals.Add(1)
}

// runTask executes one task, converting panics into onPanic callbacks so
// the barrier always completes.
func (p *pool) runTask(id int, t *poolTask) {
	defer p.inflight.Done()
	defer func() {
		p.pending.Add(-1)
		select {
		case p.taskDone <- struct{}{}:
		default:
		}
	}()
	defer func() {
		if r := recover(); r != nil {
			if p.onPanic != nil {
				p.onPanic(r)
			}
		}
	}()
	t.cell.who.Store(int32(id + 1))
	d := t.fn()
	t.cell.dur.Store(int64(d))
	p.busy[id] += d
}
