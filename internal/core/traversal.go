package core

import (
	"context"
	"fmt"

	"parowl/internal/dl"
	"parowl/internal/reasoner"
	"parowl/internal/taxonomy"
)

// EnhancedTraversal is the classical sequential insertion-based
// classification algorithm used by Racer, FaCT++ and HermiT and refined
// in the paper's reference [15] (Glimm et al., "A novel approach to
// ontology classification"). Concepts are inserted one at a time: a top
// search walks down from ⊤ to find the direct subsumers, then a bottom
// search walks down from those parents to find the direct subsumees.
// It performs far fewer subsumption tests than the brute-force O(n²)
// but is inherently sequential — the baseline the paper's parallel
// architecture is measured against.
func EnhancedTraversal(t *dl.TBox, r reasoner.Interface) (*taxonomy.Taxonomy, error) {
	return EnhancedTraversalContext(context.Background(), t, r)
}

// EnhancedTraversalContext is EnhancedTraversal with cancellation: the
// context is threaded into every reasoner call and checked between
// concept insertions, so a cancelled run stops within one test.
func EnhancedTraversalContext(ctx context.Context, t *dl.TBox, r reasoner.Interface) (*taxonomy.Taxonomy, error) {
	t.Freeze()
	e := &traversal{
		ctx:      ctx,
		f:        t.Factory,
		r:        r,
		parents:  [][]int{nil},
		children: [][]int{nil},
		concepts: []*dl.Concept{t.Factory.Top()},
	}
	b := taxonomy.NewBuilder(t.Factory)
	for _, c := range t.NamedConcepts() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: classification cancelled: %w", err)
		}
		b.AddConcept(c)
		sat, err := r.Sat(ctx, c)
		if err != nil {
			return nil, fmt.Errorf("core: sat?(%v): %w", c, err)
		}
		if !sat {
			b.MarkUnsatisfiable(c)
			continue
		}
		if err := e.insert(c, b); err != nil {
			return nil, err
		}
	}
	for x := range e.concepts {
		for _, y := range e.children[x] {
			b.AddEdge(e.concepts[x], e.concepts[y])
		}
	}
	return b.Build()
}

// traversal holds the growing classification DAG; node 0 is ⊤.
type traversal struct {
	ctx      context.Context
	f        *dl.Factory
	r        reasoner.Interface
	concepts []*dl.Concept
	parents  [][]int
	children [][]int
}

// subsumes memoizes nothing itself — wrap the reasoner in
// reasoner.NewCached for dedup — and maps errors outward.
func (e *traversal) subsumes(sup, sub *dl.Concept) (bool, error) {
	ok, err := e.r.Subs(e.ctx, sup, sub)
	if err != nil {
		return false, fmt.Errorf("core: subs?(%v, %v): %w", sup, sub, err)
	}
	return ok, nil
}

func (e *traversal) insert(c *dl.Concept, b *taxonomy.Builder) error {
	parents, err := e.topSearch(c)
	if err != nil {
		return err
	}
	// Equivalence: a direct subsumer that c also subsumes is equivalent
	// to c; c then joins that node instead of being inserted.
	for _, p := range parents {
		eq, err := e.subsumes(c, e.concepts[p])
		if err != nil {
			return err
		}
		if eq {
			b.MarkEquivalent(e.concepts[p], c)
			return nil
		}
	}
	children, err := e.bottomSearch(c, parents)
	if err != nil {
		return err
	}
	childSet := make(map[int]bool, len(children))
	for _, y := range children {
		childSet[y] = true
	}
	id := len(e.concepts)
	e.concepts = append(e.concepts, c)
	e.parents = append(e.parents, parents)
	e.children = append(e.children, children)
	// Remove parent→child edges now routed through c.
	for _, p := range parents {
		if len(children) > 0 {
			e.children[p] = removeAll(e.children[p], childSet)
		}
		e.children[p] = append(e.children[p], id)
	}
	for _, y := range children {
		keep := e.parents[y][:0]
		for _, pp := range e.parents[y] {
			if !containsInt(parents, pp) {
				keep = append(keep, pp)
			}
		}
		e.parents[y] = append(keep, id)
	}
	return nil
}

// topSearch returns the direct subsumers of c: the lowest nodes x with
// c ⊑ x, found by descending from ⊤ only into subsuming children.
func (e *traversal) topSearch(c *dl.Concept) ([]int, error) {
	memo := map[int]bool{0: true} // c ⊑ ⊤ always
	var holds func(x int) (bool, error)
	holds = func(x int) (bool, error) {
		if v, ok := memo[x]; ok {
			return v, nil
		}
		v, err := e.subsumes(e.concepts[x], c)
		if err != nil {
			return false, err
		}
		memo[x] = v
		return v, nil
	}
	var parents []int
	seen := map[int]bool{}
	var visit func(x int) error
	visit = func(x int) error {
		if seen[x] {
			return nil
		}
		seen[x] = true
		lowest := true
		for _, y := range e.children[x] {
			ok, err := holds(y)
			if err != nil {
				return err
			}
			if ok {
				lowest = false
				if err := visit(y); err != nil {
					return err
				}
			}
		}
		if lowest && !containsInt(parents, x) {
			parents = append(parents, x)
		}
		return nil
	}
	if err := visit(0); err != nil {
		return nil, err
	}
	return parents, nil
}

// bottomSearch returns the direct subsumees of c among the descendants of
// its parents: descending from each parent, a node y with y ⊑ c is a
// direct child (its own descendants are indirect); other nodes are
// explored further.
func (e *traversal) bottomSearch(c *dl.Concept, parents []int) ([]int, error) {
	var children []int
	seen := map[int]bool{}
	memo := map[int]bool{}
	var visit func(y int) error
	visit = func(y int) error {
		if seen[y] {
			return nil
		}
		seen[y] = true
		below, ok := memo[y]
		if !ok {
			var err error
			below, err = e.subsumes(c, e.concepts[y])
			if err != nil {
				return err
			}
			memo[y] = below
		}
		if below {
			if !containsInt(children, y) {
				children = append(children, y)
			}
			return nil
		}
		for _, z := range e.children[y] {
			if err := visit(z); err != nil {
				return err
			}
		}
		return nil
	}
	for _, p := range parents {
		for _, y := range e.children[p] {
			if err := visit(y); err != nil {
				return nil, err
			}
		}
	}
	// Keep only the maximal candidates (a candidate strictly below
	// another is indirect).
	return maximal(children, e), nil
}

func maximal(cands []int, e *traversal) []int {
	out := cands[:0]
	for _, y := range cands {
		dominated := false
		for _, z := range cands {
			if z != y && e.isAncestorNode(z, y) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, y)
		}
	}
	return out
}

// isAncestorNode reports whether a is an ancestor of d in the current DAG.
func (e *traversal) isAncestorNode(a, d int) bool {
	if a == d {
		return false
	}
	seen := map[int]bool{}
	var up func(x int) bool
	up = func(x int) bool {
		if x == a {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for _, p := range e.parents[x] {
			if up(p) {
				return true
			}
		}
		return false
	}
	return up(d)
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func removeAll(s []int, drop map[int]bool) []int {
	out := s[:0]
	for _, x := range s {
		if !drop[x] {
			out = append(out, x)
		}
	}
	return out
}
