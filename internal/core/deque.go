package core

import "sync/atomic"

// wsDeque is a Chase–Lev-style lock-free work-stealing deque specialized
// for the classification pool: the owning worker pushes and pops at the
// bottom (LIFO) with plain atomic loads and stores, thieves steal from
// the top (FIFO) with one CAS on the top index. The only contended
// operation is the CAS that claims a slot; a thief that loses it simply
// retries or moves to the next victim.
//
// Memory ordering: the published C11 algorithm needs carefully placed
// acquire/release/seq-cst fences because relaxed atomics may reorder the
// owner's bottom update against a thief's top read. Go's sync/atomic
// operations are all sequentially consistent, so every load/store below
// already carries the strongest ordering the algorithm ever requires —
// the subtle fences collapse into the operations themselves (see
// DESIGN.md §"Load balancing and work stealing" for the argument).
//
// Indices are monotonically increasing and are never reset between
// batches: the deque is logically empty whenever top == bottom, so the
// pool's barrier does not need to (and must not) mutate it, which is what
// makes a late thief racing the barrier harmless.
type wsDeque struct {
	top    atomic.Int64 // next slot a thief claims; only ever incremented
	bottom atomic.Int64 // next slot the owner pushes to; owner-written only
	buf    atomic.Pointer[wsBuf]
}

// wsBuf is one ring-buffer generation. Slots are atomic because a thief
// may read a slot while the owner concurrently overwrites it after a
// wrap-around; the thief's subsequent CAS on top then fails (top must
// have advanced for the slot to be reusable), so the stale read is never
// acted on.
type wsBuf struct {
	mask int64
	a    []atomic.Pointer[poolTask]
}

const wsMinCap = 64

func newWsBuf(capacity int64) *wsBuf {
	return &wsBuf{mask: capacity - 1, a: make([]atomic.Pointer[poolTask], capacity)}
}

func (b *wsBuf) load(i int64) *poolTask     { return b.a[i&b.mask].Load() }
func (b *wsBuf) store(i int64, t *poolTask) { b.a[i&b.mask].Store(t) }

// push appends t at the bottom. Owner-only.
func (d *wsDeque) push(t *poolTask) {
	bo := d.bottom.Load()
	tp := d.top.Load()
	buf := d.buf.Load()
	if buf == nil || bo-tp >= int64(len(buf.a)) {
		buf = d.grow(buf, tp, bo)
	}
	buf.store(bo, t)
	d.bottom.Store(bo + 1)
}

// grow doubles the ring, copying the live range [top, bottom). Thieves
// holding the old generation still read valid entries: the live range is
// identical in both buffers and top's CAS arbitrates ownership.
func (d *wsDeque) grow(old *wsBuf, top, bottom int64) *wsBuf {
	capacity := int64(wsMinCap)
	if old != nil {
		capacity = 2 * int64(len(old.a))
	}
	nb := newWsBuf(capacity)
	for i := top; i < bottom; i++ {
		nb.store(i, old.load(i))
	}
	d.buf.Store(nb)
	return nb
}

// pop removes the youngest task. Owner-only. The bottom decrement
// published before the top load closes the window in which a thief and
// the owner could both take a sole remaining task; when they do tie on
// the last element, the CAS on top decides.
func (d *wsDeque) pop() (*poolTask, bool) {
	bo := d.bottom.Load() - 1
	d.bottom.Store(bo)
	tp := d.top.Load()
	if bo < tp {
		// Empty: undo the decrement.
		d.bottom.Store(tp)
		return nil, false
	}
	t := d.buf.Load().load(bo)
	if bo > tp {
		return t, true
	}
	// Last element: race thieves for it.
	won := d.top.CompareAndSwap(tp, tp+1)
	d.bottom.Store(tp + 1)
	if !won {
		return nil, false
	}
	return t, true
}

// steal removes the oldest task on behalf of another worker. Any thread.
// The slot is read before the CAS; the CAS succeeding proves the slot
// could not have been recycled (recycling requires top to move past tp).
func (d *wsDeque) steal() (*poolTask, bool) {
	for {
		tp := d.top.Load()
		bo := d.bottom.Load()
		if tp >= bo {
			return nil, false
		}
		t := d.buf.Load().load(tp)
		if d.top.CompareAndSwap(tp, tp+1) {
			return t, true
		}
		// Another thief (or the owner taking the last element) won the
		// slot; re-read the indices and try again.
	}
}

// empty reports whether the deque holds no tasks; used by the barrier
// assertion that stealing never changes barrier semantics.
func (d *wsDeque) empty() bool {
	return d.top.Load() >= d.bottom.Load()
}
