// Package ontogen generates synthetic OWL ontologies that reproduce the
// metric rows of the paper's test corpora (Tables IV and V): the exact
// concept, axiom, SubClassOf, QCR, ∃, ∀, Equivalent and Disjoint counts
// of each of the 14 ORE 2014/2015 ontologies the paper evaluates.
//
// The original files are not shipped with the paper; what its experiments
// actually measure — partition sizes n/w, P/K set dynamics, and the
// number and cost distribution of subsumption tests — depends on these
// metrics and on the taxonomy's DAG shape, not on the domain vocabulary.
// Generation is fully deterministic per (profile, seed).
package ontogen

import (
	"fmt"
	"math/rand"

	"parowl/internal/dl"
)

// Profile describes one target ontology.
type Profile struct {
	// Name is the paper's ontology name.
	Name string
	// Concepts .. Disjoint are the Table IV/V metric targets. Zero-valued
	// occurrence counts simply generate none of that constructor.
	Concepts   int
	Axioms     int
	SubClassOf int
	QCRs       int
	Somes      int
	Alls       int
	Equivalent int
	Disjoint   int
	// RoleHierarchy / Transitive add the corresponding role axioms
	// (H and + in the expressivity name).
	RoleHierarchy bool
	Transitive    bool
	// PaperExpressivity is the DL name the paper reports. The generated
	// ontology's detected expressivity can be weaker for Table V rows
	// (our dialect has no inverse roles, nominals or datatypes; the
	// QCR count — the paper's complexity driver — is preserved exactly).
	PaperExpressivity string
	// ExprAxioms bounds how many SubClassOf axioms carry complex right
	// sides; 0 picks a default from the occurrence budgets.
	ExprAxioms int
}

// Generate builds the ontology deterministically from the profile and
// seed. The result is frozen.
func (p Profile) Generate(seed int64) (*dl.TBox, error) {
	if p.Concepts < 2 {
		return nil, fmt.Errorf("ontogen: profile %q needs at least 2 concepts", p.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	tb := dl.NewTBox(p.Name)
	f := tb.Factory

	cs := make([]*dl.Concept, p.Concepts)
	for i := range cs {
		cs[i] = tb.Declare(fmt.Sprintf("%s_C%05d", sanitize(p.Name), i))
	}
	// Role pool proportional to the ontology size: real corpora declare
	// on the order of concepts/10 object properties, and a wide pool
	// keeps QCRs on mostly-independent roles (as in bridg, whose ~100
	// properties carry its 967 QCRs).
	nRoles := 8 + p.Concepts/8
	roles := make([]*dl.Role, nRoles)
	for i := range roles {
		roles[i] = f.Role(fmt.Sprintf("r%d", i))
	}
	roleAxioms := 0
	if p.RoleHierarchy {
		tb.SubObjectPropertyOf(roles[1], roles[0])
		tb.SubObjectPropertyOf(roles[2], roles[0])
		roleAxioms += 2
	}
	if p.Transitive {
		tb.TransitiveObjectProperty(roles[0])
		roleAxioms++
	}

	// Split the SubClassOf budget between named backbone edges and
	// expression-bearing axioms.
	exprAxioms := p.ExprAxioms
	occurrences := p.QCRs + p.Somes + p.Alls
	if exprAxioms == 0 {
		switch {
		case occurrences > 0:
			exprAxioms = (occurrences + 2) / 3
		default:
			exprAxioms = min(p.SubClassOf/8, p.Concepts/2)
		}
	}
	if exprAxioms > p.SubClassOf {
		exprAxioms = p.SubClassOf
	}
	if exprAxioms == p.SubClassOf && p.SubClassOf > 20 {
		// Keep a sixth of the budget for backbone edges so even
		// QCR-dominated profiles (bridg) retain some taxonomy.
		exprAxioms = p.SubClassOf * 5 / 6
	}
	named := p.SubClassOf - exprAxioms

	// Backbone: a locality-biased tree (each concept subclasses a recent
	// ancestor) plus extra multi-parent edges until the budget is spent.
	// This matches the shallow-bushy shape of bio-ontologies.
	edge := make(map[[2]int]bool)
	parentOf := make([]int, p.Concepts) // told tree parent, 0 by default
	treeEdges := min(named, p.Concepts-1)
	for i := 1; i <= treeEdges; i++ {
		parent := i - 1 - geometric(rng, 4)
		if parent < 0 {
			parent = rng.Intn(i)
		}
		tb.SubClassOf(cs[i], cs[parent])
		edge[[2]int{i, parent}] = true
		parentOf[i] = parent
	}
	for extra := named - treeEdges; extra > 0; {
		i := 1 + rng.Intn(p.Concepts-1)
		parent := rng.Intn(i)
		key := [2]int{i, parent}
		if edge[key] {
			// Duplicate SubClassOf axioms do occur in real corpora, but
			// prefer fresh edges while they exist.
			if rng.Intn(4) != 0 {
				continue
			}
		}
		tb.SubClassOf(cs[i], cs[parent])
		edge[key] = true
		extra--
	}

	// Expression-bearing SubClassOf axioms, consuming the occurrence
	// budgets exactly.
	// Quantified fillers come from a pool of low-index "simple" concepts
	// that never receive expression axioms themselves, so existential
	// cascades terminate after one level — the shape of real QCR corpora,
	// where cardinalities constrain attribute-like value classes (bridg's
	// UML value types). Expression subjects are drawn above the pool.
	fillerPool := cs[:maxInt(2, p.Concepts/3)]
	subjectBase := len(fillerPool)
	budget := occBudget{qcrs: p.QCRs, somes: p.Somes, alls: p.Alls, hadTargets: occurrences > 0}

	// Equivalences come first and carry part of the occurrence budget:
	// genus-differentia definitions A ≡ toldParent ⊓ ∃r.F (the shape of
	// real corpus definitions). Each definiendum is defined at most once
	// and the genus is A's told parent, so definitions never collapse
	// unrelated classes.
	carriers := exprAxioms + p.Equivalent
	defined := make(map[int]bool)
	for k := 0; k < p.Equivalent; k++ {
		i := subjectBase + rng.Intn(p.Concepts-subjectBase)
		for try := 0; defined[i] && try < 4*p.Concepts; try++ {
			i = subjectBase + rng.Intn(p.Concepts-subjectBase)
		}
		defined[i] = true
		genus := cs[parentOf[i]]
		if parentOf[i] == 0 && i > subjectBase {
			// Orphan subject: a root-level genus would spread the
			// definition's absorbed disjunction to every node label,
			// blowing up tableau search; use a narrow mid-level genus.
			genus = cs[subjectBase+rng.Intn(i-subjectBase)]
		}
		diff := budget.buildRHS(rng, f, fillerPool, cs[:i], roles, carriers)
		carriers--
		tb.EquivalentClasses(cs[i], f.And(genus, diff))
	}

	for k := 0; k < exprAxioms; k++ {
		// Named conjuncts may only point to lower indexes so told
		// subsumption stays acyclic (is_a cycles do not occur in the
		// real corpora).
		subIdx := subjectBase + rng.Intn(p.Concepts-subjectBase)
		rhs := budget.buildRHS(rng, f, fillerPool, cs[:subIdx], roles, carriers)
		carriers--
		tb.SubClassOf(cs[subIdx], rhs)
	}
	if !budget.empty() {
		return nil, fmt.Errorf("ontogen: %q: occurrence budget not exhausted: %+v", p.Name, budget)
	}

	// Disjointness between cousins: concepts from different subtrees, so
	// the backbone stays coherent.
	for k := 0; k < p.Disjoint; k++ {
		a, b := rng.Intn(p.Concepts), rng.Intn(p.Concepts)
		if a == b {
			b = (b + 1) % p.Concepts
		}
		tb.DisjointClasses(cs[a], cs[b])
	}

	// Pad to the exact axiom total with declarations then annotations.
	used := len(tb.Axioms())
	pad := p.Axioms - used
	if pad < 0 {
		return nil, fmt.Errorf("ontogen: %q: logical axioms (%d) exceed axiom budget (%d)", p.Name, used, p.Axioms)
	}
	for i := 0; i < pad; i++ {
		c := cs[i%p.Concepts]
		if i < p.Concepts {
			tb.DeclarationAxiom(c)
		} else {
			tb.AnnotationAxiom(c)
		}
	}
	tb.Freeze()
	return tb, nil
}

// occBudget doles out constructor occurrences across axioms.
type occBudget struct {
	qcrs, somes, alls int
	hadTargets        bool // the profile had any occurrence targets at all
}

func (b *occBudget) empty() bool { return b.qcrs == 0 && b.somes == 0 && b.alls == 0 }

// buildRHS builds one right-hand side consuming 1..3 occurrences, pacing
// consumption so the remaining axioms can still consume the rest (each
// later axiom takes at least one occurrence, at most three).
func (b *occBudget) buildRHS(rng *rand.Rand, f *dl.Factory, cs, below []*dl.Concept, roles []*dl.Role, remainingAxioms int) *dl.Concept {
	total := b.qcrs + b.somes + b.alls
	if total == 0 {
		if b.hadTargets {
			// The budget is spent (possible only when carriers exceed
			// occurrences): emit a named conjunct, which touches no
			// occurrence counter.
			return f.And(below[rng.Intn(len(below))], below[rng.Intn(len(below))])
		}
		// EL corpora with no occurrence targets get existential right
		// sides — OBO "relationship:" lines, the dominant non-is_a axiom
		// kind of the Table IV corpora. Existentials add no told
		// subsumptions, so acyclicity is untouched.
		return f.Some(roles[rng.Intn(len(roles)-3)+3], cs[rng.Intn(len(cs))])
	}
	// Take enough occurrences that the remaining axioms can absorb the
	// rest (bridg-style profiles need >3 QCRs per axiom), with a little
	// jitter when there is slack.
	need := 1
	if remainingAxioms > 0 {
		need = (total + remainingAxioms - 1) / remainingAxioms
	}
	take := need
	if take < 1 {
		take = 1
	}
	// Jitter upward only while every later carrier axiom can still take
	// at least one occurrence; draining the budget early would force
	// off-budget fallback conjuncts and skew the occurrence counts.
	if maxTake := total - (remainingAxioms - 1); take < 3 && take < maxTake && rng.Intn(2) == 0 {
		take++
	}
	if take > total {
		take = total
	}
	conj := make([]*dl.Concept, 0, take)
	seen := make(map[*dl.Concept]bool, take)
	for t := 0; t < take; t++ {
		var c *dl.Concept
		// Retry on within-axiom duplicates: the interning factory would
		// collapse them and the occurrence counts must stay exact.
		for attempt := 0; ; attempt++ {
			role := roles[rng.Intn(len(roles)-3)+3] // roles 3..: plain roles, QCR-safe
			filler := cs[rng.Intn(len(cs))]
			switch {
			case b.qcrs > 0 && (b.somes == 0 || rng.Intn(2) == 0):
				// n ≥ 2 for ≥: the factory canonicalizes ≥1 to ∃, which
				// would count as a Some instead of a QCR.
				if rng.Intn(2) == 0 {
					c = f.Min(2+rng.Intn(2), role, filler)
				} else {
					// Lower bound 3 keeps accidental same-role Min/Max
					// combinations coherent (Min draws at most 3).
					c = f.Max(3+rng.Intn(4), role, filler)
				}
				if !seen[c] {
					b.qcrs--
				}
			case b.somes > 0:
				c = f.Some(role, filler)
				if !seen[c] {
					b.somes--
				}
			default:
				c = f.All(role, filler)
				if !seen[c] {
					b.alls--
				}
			}
			if !seen[c] || attempt > 64 {
				break
			}
		}
		seen[c] = true
		conj = append(conj, c)
	}
	return f.And(conj...)
}

// geometric draws a small geometric-ish offset with mean ≈ mean.
func geometric(rng *rand.Rand, mean int) int {
	g := 0
	for rng.Intn(mean+1) != 0 {
		g++
		if g > 6*mean {
			break
		}
	}
	return g * mean / 2
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
