package ontogen

import (
	"testing"

	"parowl/internal/core"
	"parowl/internal/dl"
	"parowl/internal/el"
	"parowl/internal/reasoner"
	"parowl/internal/tableau"
)

// TestTableIVMetricsExact checks every generated Table IV corpus matches
// the paper's published metric row exactly.
func TestTableIVMetricsExact(t *testing.T) {
	for _, p := range TableIV {
		tb, err := p.Generate(1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		m := dl.ComputeMetrics(tb)
		if m.Concepts != p.Concepts {
			t.Errorf("%s: concepts = %d, want %d", p.Name, m.Concepts, p.Concepts)
		}
		if m.Axioms != p.Axioms {
			t.Errorf("%s: axioms = %d, want %d", p.Name, m.Axioms, p.Axioms)
		}
		if m.SubClassOf != p.SubClassOf {
			t.Errorf("%s: subClassOf = %d, want %d", p.Name, m.SubClassOf, p.SubClassOf)
		}
		if m.Expressivity != p.PaperExpressivity {
			t.Errorf("%s: expressivity = %s, want %s", p.Name, m.Expressivity, p.PaperExpressivity)
		}
	}
}

// TestTableVMetricsExact checks the QCR corpora including the occurrence
// columns.
func TestTableVMetricsExact(t *testing.T) {
	for _, p := range TableV {
		tb, err := p.Generate(1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		m := dl.ComputeMetrics(tb)
		checks := []struct {
			label     string
			got, want int
		}{
			{"concepts", m.Concepts, p.Concepts},
			{"axioms", m.Axioms, p.Axioms},
			{"subClassOf", m.SubClassOf, p.SubClassOf},
			{"qcrs", m.QCRs, p.QCRs},
			{"somes", m.Somes, p.Somes},
			{"alls", m.Alls, p.Alls},
			{"equivalent", m.Equivalent, p.Equivalent},
			{"disjoint", m.Disjoint, p.Disjoint},
		}
		for _, c := range checks {
			if c.got != c.want {
				t.Errorf("%s: %s = %d, want %d", p.Name, c.label, c.got, c.want)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	p := TableV[0]
	a, err := p.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	axa, axb := a.Axioms(), b.Axioms()
	if len(axa) != len(axb) {
		t.Fatalf("axiom counts differ: %d vs %d", len(axa), len(axb))
	}
	for i := range axa {
		if axa[i].String() != axb[i].String() {
			t.Fatalf("axiom %d differs:\n%s\n%s", i, axa[i], axb[i])
		}
	}
	c, err := p.Generate(8)
	if err != nil {
		t.Fatal(err)
	}
	same := len(c.Axioms()) == len(axa)
	if same {
		diff := false
		for i := range axa {
			if axa[i].String() != c.Axioms()[i].String() {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical ontologies")
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("EMAP#EMAP"); !ok {
		t.Error("EMAP#EMAP missing")
	}
	if _, ok := ByName("bridg.biomedical_domain"); !ok {
		t.Error("bridg missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown name found")
	}
}

// TestMiniELClassifiable generates a scaled-down EL corpus and classifies
// it for real with both the EL reasoner and the tableau, comparing
// taxonomies.
func TestMiniELClassifiable(t *testing.T) {
	p := Mini(TableIV[0], 100) // WBbt at 1/100 scale: ~68 concepts
	tb, err := p.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	elr, err := el.New(tb, el.Options{})
	if err != nil {
		t.Fatalf("generated EL corpus rejected by EL reasoner: %v", err)
	}
	resEL, err := core.Classify(tb, core.Options{Reasoner: elr, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tab := tableau.New(tb, tableau.Options{})
	resTab, err := core.Classify(tb, core.Options{Reasoner: tab, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !resEL.Taxonomy.Equal(resTab.Taxonomy) {
		t.Error("EL and tableau classifications disagree on generated corpus")
	}
	if resEL.Taxonomy.NumClasses() < p.Concepts/2 {
		t.Errorf("degenerate taxonomy: %d classes for %d concepts", resEL.Taxonomy.NumClasses(), p.Concepts)
	}
}

// TestMiniQCRClassifiable generates a scaled-down Table V corpus and
// classifies it with the real tableau (QCR rules exercised end-to-end).
func TestMiniQCRClassifiable(t *testing.T) {
	p := Mini(TableV[4], 10) // bridg at 1/10: ~32 concepts, ~97 QCRs
	tb, err := p.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	m := dl.ComputeMetrics(tb)
	if m.QCRs == 0 {
		t.Fatal("mini bridg lost its QCRs")
	}
	tab := tableau.New(tb, tableau.Options{})
	res, err := core.Classify(tb, core.Options{Reasoner: tab, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.SequentialBruteForce(tb, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Taxonomy.Equal(want) {
		t.Error("parallel vs brute-force mismatch on QCR corpus")
	}
}

// TestOracleConsistentOnCorpus: classification with the oracle plug-in
// agrees with brute force under the same oracle, for a full-size corpus.
func TestOracleConsistentOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size corpus in -short mode")
	}
	p := TableIV[2] // obo.PREVIOUS: 1663 concepts, smallest Table IV row
	tb, err := p.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	o := reasoner.NewOracle(tb, reasoner.OracleOptions{})
	res, err := core.Classify(tb, core.Options{Reasoner: o, Workers: 8, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SubsTests == 0 {
		t.Fatal("no tests recorded")
	}
	if res.Trace.InitialPossible == 0 {
		t.Fatal("no initial possible pairs")
	}
	// Spot-check taxonomy coherence: every named concept present.
	if got := res.Taxonomy.NumClasses(); got < p.Concepts/2 {
		t.Errorf("only %d classes", got)
	}
}
