package ontogen

// TableIV holds the nine scalability corpora of the paper's Table IV,
// with the published metric rows (concepts, axioms, SubClassOf,
// expressivity).
var TableIV = []Profile{
	{Name: "WBbt.obo", Concepts: 6785, Axioms: 19138, SubClassOf: 12347, PaperExpressivity: "EL"},
	{Name: "EHDA#EHDA", Concepts: 8341, Axioms: 33367, SubClassOf: 8339, PaperExpressivity: "EL"},
	{Name: "obo.PREVIOUS", Concepts: 1663, Axioms: 4099, SubClassOf: 1377, RoleHierarchy: true, Transitive: true, PaperExpressivity: "ELH+"},
	{Name: "actpathway.obo", Concepts: 7911, Axioms: 25314, SubClassOf: 17402, PaperExpressivity: "EL"},
	{Name: "EHDAA2", Concepts: 2726, Axioms: 16818, SubClassOf: 13458, RoleHierarchy: true, Transitive: true, PaperExpressivity: "ELH+"},
	{Name: "lanogaster.obo", Concepts: 10925, Axioms: 16567, SubClassOf: 5641, PaperExpressivity: "EL"},
	{Name: "MIRO#MIRO", Concepts: 4366, Axioms: 21274, SubClassOf: 4454, Transitive: true, PaperExpressivity: "EL+"},
	{Name: "CLEMAPA", Concepts: 5946, Axioms: 16864, SubClassOf: 10916, PaperExpressivity: "EL"},
	{Name: "EMAP#EMAP", Concepts: 13735, Axioms: 27467, SubClassOf: 13732, PaperExpressivity: "EL"},
}

// TableV holds the five QCR corpora of Table V, with the published QCR,
// ∃, ∀, Equivalent and Disjoint occurrence counts. The paper reports
// SROIQ(D)-family expressivity; our dialect realizes the QCR complexity
// driver in SHQ (see DESIGN.md §3.4).
var TableV = []Profile{
	{Name: "ncitations_functional", Concepts: 2332, Axioms: 7304, SubClassOf: 2786,
		QCRs: 47, Somes: 659, Alls: 54, Equivalent: 269, Disjoint: 115,
		RoleHierarchy: true, Transitive: true, PaperExpressivity: "SROIQ(D)"},
	{Name: "nskisimple_functional", Concepts: 1737, Axioms: 4775, SubClassOf: 2234,
		QCRs: 43, Somes: 533, Alls: 27, Equivalent: 50, Disjoint: 84,
		RoleHierarchy: true, Transitive: true, PaperExpressivity: "SRIQ(D)"},
	{Name: "rnao_functional", Concepts: 731, Axioms: 2884, SubClassOf: 1235,
		QCRs: 446, Somes: 774, Alls: 2, Equivalent: 385, Disjoint: 61,
		RoleHierarchy: true, Transitive: true, PaperExpressivity: "SRIQ"},
	{Name: "ddiv2_functional", Concepts: 1469, Axioms: 4080, SubClassOf: 1832,
		QCRs: 48, Somes: 388, Alls: 27, Equivalent: 56, Disjoint: 75,
		RoleHierarchy: true, Transitive: true, PaperExpressivity: "SRIQ(D)"},
	{Name: "bridg.biomedical_domain", Concepts: 320, Axioms: 6347, SubClassOf: 295,
		QCRs: 967, Somes: 0, Alls: 0, Equivalent: 5, Disjoint: 37,
		RoleHierarchy: true, Transitive: true, PaperExpressivity: "SROIN(D)"},
}

// ByName returns the Table IV/V profile with the given name.
func ByName(name string) (Profile, bool) {
	for _, p := range TableIV {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range TableV {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Mini returns a scaled-down copy of a profile (1/scale of every count,
// minimum sensible floors) for real-reasoning tests and wall-clock
// benchmarks on small machines.
func Mini(p Profile, scale int) Profile {
	if scale < 1 {
		scale = 1
	}
	shrink := func(v, floor int) int {
		v /= scale
		if v < floor {
			v = floor
		}
		return v
	}
	out := p
	out.Name = p.Name + "-mini"
	out.Concepts = shrink(p.Concepts, 8)
	out.SubClassOf = shrink(p.SubClassOf, out.Concepts-1)
	out.QCRs = shrink(p.QCRs, boolInt(p.QCRs > 0))
	out.Somes = shrink(p.Somes, boolInt(p.Somes > 0))
	out.Alls = shrink(p.Alls, boolInt(p.Alls > 0))
	out.Equivalent = shrink(p.Equivalent, boolInt(p.Equivalent > 0))
	out.Disjoint = shrink(p.Disjoint, boolInt(p.Disjoint > 0))
	out.ExprAxioms = 0
	// Rebuild an axiom budget that certainly fits the logical axioms.
	occ := out.QCRs + out.Somes + out.Alls
	out.Axioms = out.SubClassOf + (occ+2)/3 + out.Equivalent + out.Disjoint + out.Concepts + 8
	return out
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
