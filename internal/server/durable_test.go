package server

// Tests for the durable registry (PR 9): manifest persistence and
// restart re-adoption, per-entry corruption degradation, memory-budget
// eviction with demand reload, classify retry with backoff, DELETE, the
// readiness probe, and query coalescing.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parowl"
)

// deadReasoner fails every call: a server wired with it can serve only
// state that was re-adopted without any reclassification.
type deadReasoner struct{}

var errDeadReasoner = errors.New("reasoner invoked after re-adoption (reclassification is forbidden)")

func (deadReasoner) Sat(context.Context, *parowl.Concept) (bool, error) {
	return false, errDeadReasoner
}
func (deadReasoner) Subs(context.Context, *parowl.Concept, *parowl.Concept) (bool, error) {
	return false, errDeadReasoner
}

// waitReady polls /readyz until it answers 200.
func waitReady(t *testing.T, ts *httptest.Server) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, _, _ := get(t, ts.URL+"/readyz")
		if code == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never turned 200")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRestartReadopt restarts the daemon over a populated checkpoint dir
// and checks every classified ontology comes back byte-identical with
// ZERO reclassification: the second server's reasoner fails every call,
// so any subsumption test would fail the adoption visibly.
func TestRestartReadopt(t *testing.T) {
	t.Parallel()
	ckdir := t.TempDir()
	texts := map[string]string{
		"alpha": genOBO(t, 61, 60),
		"beta":  genOBO(t, 62, 80),
	}

	s1, ts1 := newTestServer(t, Config{CheckpointDir: ckdir})
	for id, text := range texts {
		if code, body := submit(t, ts1, id, "", text); code != http.StatusAccepted {
			t.Fatalf("submit %s: HTTP %d: %s", id, code, body)
		}
	}
	// Resubmit alpha so its generation advances past 1: the restart must
	// restore the generation, not restart the sequence.
	waitStatus(t, ts1, "alpha", StatusClassified)
	waitStatus(t, ts1, "beta", StatusClassified)
	if code, body := submit(t, ts1, "alpha", "", texts["alpha"]); code != http.StatusAccepted {
		t.Fatalf("resubmit alpha: HTTP %d: %s", code, body)
	}
	deadline := time.Now().Add(60 * time.Second)
	for waitStatus(t, ts1, "alpha", StatusClassified).Generation != 2 {
		if time.Now().After(deadline) {
			t.Fatal("alpha never reached generation 2")
		}
		time.Sleep(5 * time.Millisecond)
	}

	type expect struct {
		taxonomy string
		query    string
		spec     string
		gen      uint64
		stats    parowl.Stats
	}
	want := make(map[string]expect)
	for id, text := range texts {
		info := status(t, ts1, id)
		name := firstID(t, text)
		spec := "ancestors:" + name + ";descendants:" + name + ";depth:" + name
		_, _, tax := get(t, ts1.URL+"/ontologies/"+id+"/taxonomy")
		_, _, q := get(t, queryURL(ts1, id, spec))
		want[id] = expect{taxonomy: tax, query: q, spec: spec, gen: info.Generation, stats: *info.Stats}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()

	// Second server: same checkpoint dir, reasoner that fails every call.
	eng := parowl.NewEngine(parowl.WithReasoner(func(tb *parowl.TBox) parowl.Reasoner {
		return deadReasoner{}
	}))
	_, ts2 := newTestServer(t, Config{CheckpointDir: ckdir, Engine: eng})
	waitReady(t, ts2)

	for id := range texts {
		info := waitStatus(t, ts2, id, StatusClassified)
		if !info.Readopted {
			t.Errorf("%s: readopted = false, want true", id)
		}
		if info.Generation != want[id].gen {
			t.Errorf("%s: generation = %d, want %d (restored, not restarted)", id, info.Generation, want[id].gen)
		}
		if info.Stats == nil || info.Stats.SubsTests != want[id].stats.SubsTests {
			t.Errorf("%s: restored stats %+v differ from pre-restart %+v", id, info.Stats, want[id].stats)
		}
		code, hdr, tax := get(t, ts2.URL+"/ontologies/"+id+"/taxonomy")
		if code != http.StatusOK {
			t.Fatalf("%s taxonomy after restart: HTTP %d", id, code)
		}
		if tax != want[id].taxonomy {
			t.Errorf("%s: post-restart taxonomy differs (%d vs %d bytes)", id, len(tax), len(want[id].taxonomy))
		}
		if got := hdr.Get("X-Parowl-Generation"); got != fmt.Sprint(want[id].gen) {
			t.Errorf("%s: post-restart generation header = %q, want %d", id, got, want[id].gen)
		}
		if _, _, q := get(t, queryURL(ts2, id, want[id].spec)); q != want[id].query {
			t.Errorf("%s: post-restart query answers differ:\n got %q\nwant %q", id, q, want[id].query)
		}
	}
}

// TestManifestCorruption flips every byte of a real manifest, one at a
// time, and checks loadManifest never panics and never takes down more
// state than the corrupted region: either the whole file is rejected
// (boot continues with an empty registry) or damage degrades per entry.
func TestManifestCorruption(t *testing.T) {
	t.Parallel()
	mkEntry := func(id string) manifestEntry {
		me := manifestEntry{
			ID: id, Name: id, Format: "obo", Fingerprint: "00000000deadbeef",
			Status: StatusClassified, Generation: 3,
			Checkpoint: id + ".ck", Kernel: id + ".kf", Source: id + ".src",
			Concepts: 10, Classes: 12,
		}
		me.CRC = me.checksum()
		return me
	}
	mf := manifestFile{Version: manifestVersion, Entries: []manifestEntry{mkEntry("aaa"), mkEntry("bbb")}}
	data, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), manifestName)

	// Pristine manifest round-trips both entries classified.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := loadManifest(path)
	if err != nil || len(entries) != 2 || entries[0].Status != StatusClassified || entries[1].Status != StatusClassified {
		t.Fatalf("pristine manifest: entries=%v err=%v", entries, err)
	}

	aEnd := strings.Index(string(data), `"bbb"`) // bytes before this belong to entry aaa (or the envelope)
	for i := range data {
		corrupted := append([]byte(nil), data...)
		corrupted[i] ^= 0x40
		if err := os.WriteFile(path, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		entries, err := loadManifest(path)
		if err != nil {
			continue // whole file rejected: the daemon boots empty, not broken
		}
		if len(entries) > 2 {
			t.Fatalf("byte %d: corruption grew the registry: %v", i, entries)
		}
		// A flip confined to one entry's region must leave the other
		// entry fully intact, and damage never yields anything beyond a
		// per-entry degradation to interrupted.
		for _, me := range entries {
			if me.ID == "bbb" && i < aEnd && me.Status != StatusClassified {
				t.Fatalf("byte %d (inside aaa): entry bbb degraded to %s", i, me.Status)
			}
			if me.Status == StatusClassified && me.CRC != me.checksum() {
				t.Fatalf("byte %d: entry %s kept classified despite a CRC mismatch", i, me.ID)
			}
			if me.Status != StatusClassified && me.Status != StatusInterrupted {
				t.Fatalf("byte %d: entry %s in unexpected status %s", i, me.ID, me.Status)
			}
		}
	}

	// A manifest of pure garbage must not fail server boot.
	ckdir := t.TempDir()
	if err := os.WriteFile(filepath.Join(ckdir, manifestName), []byte("\x00not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{CheckpointDir: ckdir})
	waitReady(t, ts)
	if code, _, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after garbage manifest: HTTP %d", code)
	}
}

// TestEvictionReload classifies more ontologies than the resident budget
// holds and checks the daemon stays under budget, evicted entries still
// list as classified, and their next query transparently reloads with
// byte-identical answers.
func TestEvictionReload(t *testing.T) {
	t.Parallel()
	ckdir := t.TempDir()
	texts := map[string]string{
		"e1": genOBO(t, 71, 60),
		"e2": genOBO(t, 72, 60),
		"e3": genOBO(t, 73, 60),
	}

	// Pre-pass: learn one ontology's footprint so the budget below holds
	// roughly one resident entry out of three.
	pre, tsPre := newTestServer(t, Config{CheckpointDir: t.TempDir()})
	if code, _ := submit(t, tsPre, "probe", "", texts["e1"]); code != http.StatusAccepted {
		t.Fatal("probe submit")
	}
	probe := waitStatus(t, tsPre, "probe", StatusClassified)
	if probe.ResidentBytes <= 0 {
		t.Fatalf("probe resident bytes = %d, want > 0", probe.ResidentBytes)
	}
	ctxPre, cancelPre := context.WithTimeout(context.Background(), 30*time.Second)
	pre.Drain(ctxPre)
	cancelPre()
	tsPre.Close()

	budget := probe.ResidentBytes * 3 / 2
	s, ts := newTestServer(t, Config{CheckpointDir: ckdir, MaxResidentBytes: budget, ClassifyJobs: 1})
	answers := make(map[string]string)
	specs := make(map[string]string)
	for _, id := range []string{"e1", "e2", "e3"} {
		if code, body := submit(t, ts, id, "", texts[id]); code != http.StatusAccepted {
			t.Fatalf("submit %s: HTTP %d: %s", id, code, body)
		}
		waitStatus(t, ts, id, StatusClassified)
		name := firstID(t, texts[id])
		specs[id] = "ancestors:" + name + ";depth:" + name
		code, _, body := get(t, queryURL(ts, id, specs[id]))
		if code != http.StatusOK {
			t.Fatalf("query %s: HTTP %d: %s", id, code, body)
		}
		answers[id] = body
	}

	if got := s.residentBytes(); got > budget {
		t.Errorf("resident bytes %d exceed budget %d after classifications", got, budget)
	}
	if s.evictions.Load() == 0 {
		t.Fatal("no evictions despite a budget below the corpus footprint")
	}
	var evicted, resident []string
	for _, id := range []string{"e1", "e2", "e3"} {
		info := status(t, ts, id)
		if info.Status != StatusClassified {
			t.Fatalf("%s: status %s after eviction, want classified", id, info.Status)
		}
		if info.Resident {
			resident = append(resident, id)
		} else {
			evicted = append(evicted, id)
		}
	}
	if len(evicted) == 0 {
		t.Fatal("no entry reports resident=false")
	}

	// Queries against evicted entries demand-reload and answer
	// byte-identically; the budget still holds afterwards.
	for _, id := range evicted {
		code, _, body := get(t, queryURL(ts, id, specs[id]))
		if code != http.StatusOK {
			t.Fatalf("query evicted %s: HTTP %d: %s", id, code, body)
		}
		if body != answers[id] {
			t.Errorf("%s: post-reload answers differ:\n got %q\nwant %q", id, body, answers[id])
		}
		if info := status(t, ts, id); !info.Resident || info.Reloads == 0 {
			t.Errorf("%s after reload: resident=%v reloads=%d, want warm with reloads > 0", id, info.Resident, info.Reloads)
		}
	}
	if got := s.residentBytes(); got > budget {
		t.Errorf("resident bytes %d exceed budget %d after reloads", got, budget)
	}

	// Health surfaces the accounting.
	_, _, healthBody := get(t, ts.URL+"/healthz")
	var health struct {
		ResidentBytes    int64 `json:"resident_bytes"`
		MaxResidentBytes int64 `json:"max_resident_bytes"`
		Evictions        int64 `json:"evictions"`
		Reloads          int64 `json:"reloads"`
	}
	if err := json.Unmarshal([]byte(healthBody), &health); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if health.MaxResidentBytes != budget || health.Evictions == 0 || health.Reloads == 0 {
		t.Errorf("healthz accounting looks wrong: %s", healthBody)
	}
}

// flakyReasoner fails its first failN calls with a chaos-marked error,
// then behaves normally.
type flakyReasoner struct {
	inner parowl.Reasoner
	calls *atomic.Int64
	failN int64
}

func (f *flakyReasoner) err() error {
	if f.calls.Add(1) <= f.failN {
		return fmt.Errorf("%w: flaky test fault", parowl.ErrChaosFault)
	}
	return nil
}

func (f *flakyReasoner) Sat(ctx context.Context, c *parowl.Concept) (bool, error) {
	if err := f.err(); err != nil {
		return false, err
	}
	return f.inner.Sat(ctx, c)
}

func (f *flakyReasoner) Subs(ctx context.Context, sup, sub *parowl.Concept) (bool, error) {
	if err := f.err(); err != nil {
		return false, err
	}
	return f.inner.Subs(ctx, sup, sub)
}

// TestClassifyRetryBackoff: a transiently-failing job is requeued with
// backoff and eventually classifies; attempts surface in the status; the
// previous serving generation keeps answering between attempts.
func TestClassifyRetryBackoff(t *testing.T) {
	t.Parallel()
	text := genOBO(t, 81, 50)
	var calls atomic.Int64
	eng := parowl.NewEngine(
		parowl.WithOptions(parowl.Options{Workers: 1}),
		parowl.WithReasoner(func(tb *parowl.TBox) parowl.Reasoner {
			return &flakyReasoner{inner: parowl.NewAutoReasoner(tb), calls: &calls, failN: 1}
		}))
	_, ts := newTestServer(t, Config{
		Engine: eng, RetryBudget: 3,
		RetryBaseDelay: 50 * time.Millisecond, RetryMaxDelay: time.Second,
	})
	if code, body := submit(t, ts, "flaky", "", text); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	// The first attempt fails on its first reasoner call, so during the
	// backoff window the entry is queued with attempts=1 and a schedule.
	deadline := time.Now().Add(30 * time.Second)
	sawBackoff := false
	for !sawBackoff {
		info := status(t, ts, "flaky")
		if info.Status == StatusQueued && info.Attempts == 1 {
			sawBackoff = true
			if info.NextRetryAt == nil || !info.NextRetryAt.After(time.Now().Add(-time.Second)) {
				t.Errorf("backoff status without a sane next_retry_at: %+v", info)
			}
			if !strings.Contains(info.Error, "chaos") {
				t.Errorf("backoff status should carry the transient error, got %q", info.Error)
			}
		}
		if info.Status == StatusClassified {
			t.Fatal("classification succeeded before the backoff window was observable")
		}
		if info.Status == StatusFailed {
			t.Fatalf("transient failure was made permanent: %s", info.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("never observed the backoff window: %+v", info)
		}
		time.Sleep(time.Millisecond)
	}
	info := waitStatus(t, ts, "flaky", StatusClassified)
	if info.Attempts != 0 || info.NextRetryAt != nil {
		t.Errorf("success should clear retry state, got attempts=%d next=%v", info.Attempts, info.NextRetryAt)
	}

	// A permanently chaos-failing job exhausts the budget and fails with
	// the attempt count preserved.
	var calls2 atomic.Int64
	eng2 := parowl.NewEngine(parowl.WithReasoner(func(tb *parowl.TBox) parowl.Reasoner {
		return &flakyReasoner{inner: parowl.NewAutoReasoner(tb), calls: &calls2, failN: 1 << 40}
	}))
	_, ts2 := newTestServer(t, Config{
		Engine: eng2, RetryBudget: 2,
		RetryBaseDelay: time.Millisecond, RetryMaxDelay: 4 * time.Millisecond,
	})
	if code, _ := submit(t, ts2, "doomed", "", text); code != http.StatusAccepted {
		t.Fatal("submit doomed")
	}
	info = waitStatus(t, ts2, "doomed", StatusFailed)
	if info.Attempts != 2 {
		t.Errorf("failed after attempts=%d, want the full budget of 2", info.Attempts)
	}

	// A non-transient failure is not retried at all.
	eng3 := parowl.NewEngine(parowl.WithReasoner(func(tb *parowl.TBox) parowl.Reasoner {
		return deadReasoner{}
	}))
	_, ts3 := newTestServer(t, Config{Engine: eng3, RetryBudget: 3, RetryBaseDelay: time.Millisecond})
	if code, _ := submit(t, ts3, "dead", "", text); code != http.StatusAccepted {
		t.Fatal("submit dead")
	}
	info = waitStatus(t, ts3, "dead", StatusFailed)
	if info.Attempts != 0 {
		t.Errorf("non-transient failure consumed %d retry attempts, want 0", info.Attempts)
	}
}

// TestDeleteOntology removes a classified entry and checks its on-disk
// artifacts and manifest record go with it, while in-flight entries are
// protected by 409.
func TestDeleteOntology(t *testing.T) {
	t.Parallel()
	ckdir := t.TempDir()
	text := genOBO(t, 91, 50)
	_, ts := newTestServer(t, Config{CheckpointDir: ckdir})
	if code, _ := submit(t, ts, "doomed", "", text); code != http.StatusAccepted {
		t.Fatal("submit")
	}
	waitStatus(t, ts, "doomed", StatusClassified)

	for _, suffix := range []string{".ck", ".src", ".kf"} {
		if _, err := os.Stat(filepath.Join(ckdir, "doomed"+suffix)); err != nil {
			t.Fatalf("artifact doomed%s missing before delete: %v", suffix, err)
		}
	}

	doDelete := func(id string) int {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/ontologies/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE %s: %v", id, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := doDelete("doomed"); code != http.StatusNoContent {
		t.Fatalf("DELETE: HTTP %d, want 204", code)
	}
	if code, _, _ := get(t, ts.URL+"/ontologies/doomed"); code != http.StatusNotFound {
		t.Errorf("status after delete: HTTP %d, want 404", code)
	}
	for _, suffix := range []string{".ck", ".src", ".kf"} {
		if _, err := os.Stat(filepath.Join(ckdir, "doomed"+suffix)); !os.IsNotExist(err) {
			t.Errorf("artifact doomed%s survived the delete (err=%v)", suffix, err)
		}
	}
	entries, err := loadManifest(filepath.Join(ckdir, manifestName))
	if err != nil {
		t.Fatalf("manifest after delete: %v", err)
	}
	for _, me := range entries {
		if me.ID == "doomed" {
			t.Error("manifest still records the deleted entry")
		}
	}
	if code := doDelete("never-was"); code != http.StatusNotFound {
		t.Errorf("DELETE unknown: HTTP %d, want 404", code)
	}

	// An in-flight entry cannot be deleted.
	gate := newGate(nil)
	eng := parowl.NewEngine(parowl.WithReasoner(func(tb *parowl.TBox) parowl.Reasoner {
		gate.inner = parowl.NewAutoReasoner(tb)
		return gate
	}))
	_, ts2 := newTestServer(t, Config{Engine: eng})
	if code, _ := submit(t, ts2, "busy", "", text); code != http.StatusAccepted {
		t.Fatal("submit busy")
	}
	<-gate.entered
	req, _ := http.NewRequest(http.MethodDelete, ts2.URL+"/ontologies/busy", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE in-flight: HTTP %d, want 409", resp.StatusCode)
	}
	close(gate.gate)
	waitStatus(t, ts2, "busy", StatusClassified)
}

// TestReadyzDraining: liveness stays 200 while readiness flips to 503 on
// drain.
func TestReadyzDraining(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, Config{})
	waitReady(t, ts)
	if code, _, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, `"draining":true`) {
		t.Errorf("readyz while draining: HTTP %d body %s, want 503 + draining", code, body)
	}
	if code, _, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz should stay 200 while draining")
	}
}

// TestQueryCoalescing parks the first evaluation of a spec and fires a
// herd of identical requests: exactly one evaluation runs, everyone gets
// the same bytes.
func TestQueryCoalescing(t *testing.T) {
	t.Parallel()
	text := genOBO(t, 95, 60)
	s, ts := newTestServer(t, Config{})
	if code, _ := submit(t, ts, "coal", "", text); code != http.StatusAccepted {
		t.Fatal("submit")
	}
	waitStatus(t, ts, "coal", StatusClassified)
	name := firstID(t, text)
	spec := "ancestors:" + name + ";descendants:" + name

	var evals atomic.Int64
	release := make(chan struct{})
	s.onQueryEval = func(string) {
		if evals.Add(1) == 1 {
			<-release
		}
	}

	const herd = 6
	var wg sync.WaitGroup
	bodies := make([]string, herd)
	codes := make([]int, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(queryURL(ts, "coal", spec))
			if err != nil {
				codes[i] = -1
				return
			}
			b := new(strings.Builder)
			buf := make([]byte, 4096)
			for {
				n, err := resp.Body.Read(buf)
				b.Write(buf[:n])
				if err != nil {
					break
				}
			}
			resp.Body.Close()
			codes[i], bodies[i] = resp.StatusCode, b.String()
		}(i)
	}
	// Let the herd pile up behind the parked leader, then release it.
	time.Sleep(300 * time.Millisecond)
	close(release)
	wg.Wait()

	for i := 0; i < herd; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: HTTP %d", i, codes[i])
		}
		if bodies[i] != bodies[0] {
			t.Errorf("request %d answered differently", i)
		}
	}
	if got := evals.Load(); got >= herd {
		t.Errorf("%d evaluations for %d identical requests; coalescing did nothing", got, herd)
	}
	if s.coalesced.Load() == 0 {
		t.Error("coalesced counter never incremented")
	}
}
