package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parowl"
)

// Config configures a Server. The zero value works: a default Engine,
// no checkpointing, a 16-deep admission queue, and two concurrent
// classify jobs.
type Config struct {
	// Engine supplies reasoner selection and the base classification
	// Options for every submitted ontology; nil means parowl.NewEngine().
	Engine *parowl.Engine
	// CheckpointDir, when non-empty, gives every classify job a
	// checkpoint file <dir>/<id>.ck: jobs snapshot at phase boundaries,
	// a drained or crashed job resumes from its last snapshot on the
	// next submission, and completed jobs persist their compiled query
	// kernel so a server restart warms up without recompiling.
	CheckpointDir string
	// CheckpointInterval is the minimum time between snapshots; ≤ 0
	// writes at every phase boundary.
	CheckpointInterval time.Duration
	// QueueDepth bounds the classify admission queue; a submit arriving
	// with the queue full is rejected with 429 + Retry-After. 0 means 16.
	QueueDepth int
	// ClassifyJobs is the number of classify jobs run concurrently
	// (each with its own worker pool per the Engine's Options). 0 means 2.
	ClassifyJobs int
	// ClassifyTimeout caps each classify job's wall time; a submit's
	// ?timeout= parameter overrides it per job. 0 means no cap.
	ClassifyTimeout time.Duration
	// RequestTimeout is the default deadline for query requests (the
	// ?timeout= parameter overrides it per request); it maps onto the
	// context every kernel evaluation checks. 0 means 30s.
	RequestTimeout time.Duration
	// DrainGrace is how long Drain waits for in-flight classify jobs to
	// finish on their own before cancelling them (their checkpoints make
	// the cancellation resumable). 0 means cancel immediately.
	DrainGrace time.Duration
	// MaxBodyBytes bounds submitted ontology documents. 0 means 64 MiB.
	MaxBodyBytes int64
	// MaxResidentBytes budgets the summed MemoryFootprint of warm
	// classified state. When exceeded, least-recently-queried entries are
	// evicted to their on-disk checkpoints and transparently re-adopted on
	// the next query (see memory.go). 0 means unlimited. Requires
	// CheckpointDir (eviction without a reload path would break queries).
	MaxResidentBytes int64
	// RetryBudget is how many times a transiently-failed classify job
	// (chaos fault, job timeout — not a parse or validation error) is
	// automatically requeued with exponential backoff before the entry is
	// marked failed. 0 disables retries.
	RetryBudget int
	// RetryBaseDelay is the first backoff delay; attempt i waits
	// RetryBaseDelay·2^i, capped at RetryMaxDelay. 0 means 500ms.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the exponential backoff. 0 means 30s.
	RetryMaxDelay time.Duration
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Server is the owld HTTP daemon: an ontology registry with async,
// admission-controlled classification and a query surface served from
// warm classified state. Create with New, serve with net/http, stop with
// Drain.
//
//	POST /ontologies?id=ID&format=obo      submit (body = ontology text;
//	                                       &sched= overrides the scheduling
//	                                       policy for this job)
//	GET  /ontologies                       list
//	GET  /ontologies/{id}                  status + stats
//	GET  /ontologies/{id}/taxonomy         rendered taxonomy (text)
//	GET  /ontologies/{id}/query?q=SPEC     evaluate query spec (text)
//	POST /ontologies/{id}/subsumes         batched subsumption pairs (JSON)
//	DELETE /ontologies/{id}                remove entry + on-disk artifacts
//	GET  /healthz                          liveness + queue/memory state
//	GET  /readyz                           readiness (503 while draining or
//	                                       before manifest re-adoption ends)
type Server struct {
	cfg Config
	mux *http.ServeMux
	reg *registry

	queue    chan *job
	quit     chan struct{}
	wg       sync.WaitGroup
	draining atomic.Bool
	drained  sync.Once

	// ready flips once boot-time manifest re-adoption has finished;
	// /readyz serves 503 before that (and while draining).
	ready atomic.Bool
	// manifestMu serializes manifest rewrites (see manifest.go).
	manifestMu sync.Mutex
	// evictMu serializes eviction scans (see memory.go).
	evictMu sync.Mutex

	// retryMu guards the pending retry timers keyed by ontology id.
	retryMu sync.Mutex
	retries map[string]*time.Timer

	// flights coalesces identical in-flight /query evaluations.
	flights flightGroup
	// onQueryEval, when non-nil, runs inside the coalescing leader before
	// the evaluation (test hook; set only from in-package tests).
	onQueryEval func(key string)

	evictions atomic.Int64
	reloads   atomic.Int64
	coalesced atomic.Int64
}

// job is one admitted classification request.
type job struct {
	entry   *entry
	ont     *parowl.Ontology
	timeout time.Duration
	// sched overrides the Engine's scheduling policy for this job when
	// schedSet is true (the submit carried a ?sched= parameter).
	sched    parowl.Scheduling
	schedSet bool
	// attempt counts prior transient failures of this submission; it
	// drives the exponential backoff and the retry budget.
	attempt int
}

// New builds a Server and starts its classify workers.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		cfg.Engine = parowl.NewEngine()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.ClassifyJobs <= 0 {
		cfg.ClassifyJobs = 2
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = 500 * time.Millisecond
	}
	if cfg.RetryMaxDelay <= 0 {
		cfg.RetryMaxDelay = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: checkpoint dir: %w", err)
		}
	}
	if cfg.MaxResidentBytes > 0 && cfg.CheckpointDir == "" {
		cfg.Logf("owld: -max-resident-bytes ignored without a checkpoint dir (no reload path for evicted entries)")
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		reg:     newRegistry(),
		queue:   make(chan *job, cfg.QueueDepth),
		quit:    make(chan struct{}),
		retries: make(map[string]*time.Timer),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("POST /ontologies", s.handleSubmit)
	s.mux.HandleFunc("GET /ontologies", s.handleList)
	s.mux.HandleFunc("GET /ontologies/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /ontologies/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /ontologies/{id}/taxonomy", s.handleTaxonomy)
	s.mux.HandleFunc("GET /ontologies/{id}/query", s.handleQuery)
	s.mux.HandleFunc("POST /ontologies/{id}/query", s.handleQuery)
	s.mux.HandleFunc("POST /ontologies/{id}/subsumes", s.handleSubsumes)
	for i := 0; i < cfg.ClassifyJobs; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	// Boot-time re-adoption: replay the durable manifest, restoring warm
	// classified state from checkpoints with zero reclassification. Any
	// manifest problem degrades (per entry where possible) — a daemon
	// never fails to boot because of its own durable state.
	var manifest []manifestEntry
	if cfg.CheckpointDir != "" {
		var err error
		manifest, err = loadManifest(filepath.Join(cfg.CheckpointDir, manifestName))
		if err != nil {
			cfg.Logf("owld: manifest unusable, booting with an empty registry: %v", err)
		}
	}
	if len(manifest) == 0 {
		s.ready.Store(true)
	} else {
		cfg.Logf("owld: re-adopting %d registry entries from manifest", len(manifest))
		go s.readoptAll(manifest)
	}
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain performs a graceful shutdown of the classification side: new
// submissions are rejected, queued-but-unstarted jobs are marked
// interrupted, and in-flight jobs get DrainGrace to finish before their
// contexts are cancelled — a cancelled job's last phase-boundary
// checkpoint stays on disk, so resubmitting after a restart resumes
// instead of restarting. Drain returns once every worker has stopped or
// ctx expires. Queries are not touched; the HTTP listener's own
// Shutdown decides when those stop.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	s.drained.Do(func() {
		close(s.quit)
		// Pending backoff retries: stop their timers and mark the entries
		// interrupted (their checkpoints, if any, stay resumable). A timer
		// that already fired is handling the drain itself in enqueueRetry.
		s.retryMu.Lock()
		timers := s.retries
		s.retries = make(map[string]*time.Timer)
		s.retryMu.Unlock()
		for id, t := range timers {
			if t.Stop() {
				if e := s.reg.get(id); e != nil {
					e.markDone(nil, nil, 0, errors.New("server drained before retry"), true)
				}
			}
		}
		// Queued jobs that never started: hand back their admission
		// slots and mark them interrupted (no checkpoint yet — a
		// resubmission simply classifies from scratch).
	flush:
		for {
			select {
			case j := <-s.queue:
				j.entry.markDone(nil, nil, 0, errors.New("server drained before classification started"), true)
			default:
				break flush
			}
		}
		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		if s.cfg.DrainGrace > 0 {
			grace := time.NewTimer(s.cfg.DrainGrace)
			defer grace.Stop()
			select {
			case <-done:
				return
			case <-grace.C:
			case <-ctx.Done():
			}
		}
		s.cfg.Logf("owld: drain: cancelling in-flight classification jobs (checkpoints remain resumable)")
		s.reg.abortAll()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
		// Final manifest: record the drained states so the next boot
		// re-adopts classified entries and resumes interrupted ones.
		s.persist()
	})
	return err
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool { return s.draining.Load() }

// worker runs classify jobs from the admission queue until drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob classifies one admitted ontology, resuming from (and writing)
// its checkpoint when a checkpoint dir is configured, and swaps the
// entry's warm serving state on success.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	timeout := j.timeout
	if timeout <= 0 {
		timeout = s.cfg.ClassifyTimeout
	}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	}
	defer cancel()

	opts := s.cfg.Engine.Options()
	opts.CompileKernel = true // the query surface serves from the kernel
	if j.schedSet {
		opts.Scheduling = j.sched
	}
	var ck string
	if s.cfg.CheckpointDir != "" {
		ck = filepath.Join(s.cfg.CheckpointDir, j.entry.id+".ck")
		opts.Checkpoint = ck
		opts.CheckpointInterval = s.cfg.CheckpointInterval
		if _, err := os.Stat(ck); err == nil {
			opts.ResumeFrom = ck
		}
	}
	j.entry.markClassifying(cancel, ck, opts.Scheduling.String())
	s.persist()
	s.cfg.Logf("owld: classify %s: started (sched=%v resume=%v attempt=%d)", j.entry.id, opts.Scheduling, opts.ResumeFrom != "", j.attempt+1)

	start := time.Now()
	res, err := j.ont.ClassifyWith(ctx, opts)
	if err != nil {
		interrupted := errors.Is(err, context.Canceled) || s.draining.Load()
		if !interrupted && transientClassifyErr(err) && j.attempt < s.cfg.RetryBudget {
			attempt := j.attempt + 1
			j.attempt = attempt
			delay := retryBackoff(s.cfg, attempt)
			j.entry.markRetryWait(err, attempt, time.Now().Add(delay))
			s.persist()
			s.cfg.Logf("owld: classify %s: transient failure (attempt %d/%d), retrying in %v: %v",
				j.entry.id, attempt, s.cfg.RetryBudget+1, delay, err)
			// Last touch of j: once the timer is armed another worker may
			// own the job.
			s.scheduleRetry(j, delay)
			return
		}
		j.entry.markDone(nil, nil, 0, err, interrupted)
		s.persist()
		s.cfg.Logf("owld: classify %s: %s: %v", j.entry.id, map[bool]string{true: "interrupted", false: "failed"}[interrupted], err)
		return
	}
	if res.ResumeError != nil {
		s.cfg.Logf("owld: classify %s: checkpoint not resumable, classified from scratch: %v", j.entry.id, res.ResumeError)
	}
	if res.CheckpointError != nil {
		s.cfg.Logf("owld: classify %s: checkpoint writes failed: %v", j.entry.id, res.CheckpointError)
	}
	var footprint int64
	if snap, err := j.ont.Snapshot(); err == nil {
		footprint = snap.MemoryFootprint()
	}
	j.entry.markDone(j.ont, res, footprint, nil, false)
	// Persist the compiled kernel standalone as well (the checkpoint
	// already embeds it): the manifest records both artifacts, and the
	// kernel file is what eviction conceptually pages out to.
	if s.cfg.CheckpointDir != "" {
		if k := res.Taxonomy.Kernel(); k != nil {
			kf := filepath.Join(s.cfg.CheckpointDir, j.entry.id+".kf")
			if err := parowl.WriteKernelFile(kf, k); err != nil {
				s.cfg.Logf("owld: classify %s: kernel file write failed: %v", j.entry.id, err)
			} else {
				j.entry.mu.Lock()
				j.entry.kernelPath = kf
				j.entry.mu.Unlock()
			}
		}
	}
	s.persist()
	s.maybeEvict()
	s.cfg.Logf("owld: classify %s: done in %v (%d classes, %d subs tests, resumed=%v)",
		j.entry.id, time.Since(start).Round(time.Millisecond), res.Taxonomy.NumClasses(), res.Stats.SubsTests, res.Resumed)
}

// transientClassifyErr reports whether a classify failure is worth an
// automatic retry: injected chaos faults and job deadline expiries are
// transient; everything else (validation errors, genuine plug-in
// failures) fails the entry immediately. Parse errors never get here —
// submission parses synchronously before admission.
func transientClassifyErr(err error) bool {
	return errors.Is(err, parowl.ErrChaosFault) || errors.Is(err, context.DeadlineExceeded)
}

// retryBackoff is the capped exponential schedule: attempt i (1-based)
// waits RetryBaseDelay·2^(i-1), capped at RetryMaxDelay.
func retryBackoff(cfg Config, attempt int) time.Duration {
	d := cfg.RetryBaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= cfg.RetryMaxDelay {
			return cfg.RetryMaxDelay
		}
	}
	return min(d, cfg.RetryMaxDelay)
}

// scheduleRetry arms the backoff timer that requeues j. Drain stops
// pending timers and marks their entries interrupted.
func (s *Server) scheduleRetry(j *job, delay time.Duration) {
	s.retryMu.Lock()
	defer s.retryMu.Unlock()
	if s.draining.Load() {
		j.entry.markDone(nil, nil, 0, errors.New("server drained before retry"), true)
		return
	}
	s.retries[j.entry.id] = time.AfterFunc(delay, func() { s.enqueueRetry(j) })
}

// enqueueRetry moves a backoff-expired job back into the admission
// queue. A full queue re-arms the timer without consuming an attempt; a
// draining server marks the entry interrupted.
func (s *Server) enqueueRetry(j *job) {
	s.retryMu.Lock()
	delete(s.retries, j.entry.id)
	s.retryMu.Unlock()
	if s.draining.Load() {
		j.entry.markDone(nil, nil, 0, errors.New("server drained before retry"), true)
		s.persist()
		return
	}
	select {
	case s.queue <- j:
	default:
		s.cfg.Logf("owld: classify %s: admission queue full at retry time, backing off again", j.entry.id)
		s.scheduleRetry(j, retryBackoff(s.cfg, j.attempt))
	}
}

// idPattern bounds submitted ontology IDs: they name checkpoint files.
var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,99}$`)

// handleSubmit admits one ontology for (re)classification: parse
// synchronously, then enqueue the classify job or reject with 429 when
// the admission queue is full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("ontology document exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	}
	format, err := parowl.ParseFormat(r.FormValue("format"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	var timeout time.Duration
	if v := r.FormValue("timeout"); v != "" {
		timeout, err = time.ParseDuration(v)
		if err != nil || timeout < 0 {
			writeErr(w, http.StatusBadRequest, "bad timeout: "+v)
			return
		}
	}
	var sched parowl.Scheduling
	schedSet := false
	if v := r.FormValue("sched"); v != "" {
		sched, err = parowl.ParseScheduling(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		schedSet = true
	}
	id := r.FormValue("id")
	if id == "" {
		h := fnv.New64a()
		h.Write([]byte(format.String()))
		h.Write(body)
		id = fmt.Sprintf("x%016x", h.Sum64())
	}
	if !idPattern.MatchString(id) {
		writeErr(w, http.StatusBadRequest, "bad id: want [A-Za-z0-9][A-Za-z0-9._-]{0,99}")
		return
	}
	name := r.FormValue("name")
	if name == "" {
		name = id
	}
	ont, err := s.cfg.Engine.Load(strings.NewReader(string(body)), name, format)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "parsing ontology: "+err.Error())
		return
	}

	e := s.reg.getOrCreate(id)
	e.mu.Lock()
	if e.inFlightLocked() {
		e.mu.Unlock()
		writeErr(w, http.StatusConflict, "classification already in flight for "+id)
		return
	}
	// Holding e.mu across the (non-blocking) send makes the in-flight
	// check and the admission one atomic step: two racing submits for the
	// same id cannot both be admitted, and a worker dequeuing this job
	// blocks on e.mu until the queued state is visible.
	select {
	case s.queue <- &job{entry: e, ont: ont, timeout: timeout, sched: sched, schedSet: schedSet}:
		e.queuedLocked(name)
		e.format = format
		e.fingerprint = ont.Fingerprint()
		e.mu.Unlock()
	default:
		e.mu.Unlock()
		s.reg.removeIfEmpty(id)
		// Admission control: the classify queue is full. Load-shed with
		// 429 and a Retry-After scaled to the backlog.
		w.Header().Set("Retry-After", strconv.Itoa(1+len(s.queue)/max(1, s.cfg.ClassifyJobs)))
		writeErr(w, http.StatusTooManyRequests,
			fmt.Sprintf("classify queue full (%d queued)", len(s.queue)))
		return
	}
	// Persist the source document beside the checkpoint: restarts and
	// demand reloads re-parse it and fingerprint-check it against the
	// manifest before adopting the checkpoint. A write failure only costs
	// durability for this entry (logged), never the admission.
	if s.cfg.CheckpointDir != "" {
		srcPath := filepath.Join(s.cfg.CheckpointDir, id+".src")
		if err := writeFileAtomic(srcPath, body); err != nil {
			s.cfg.Logf("owld: submit %s: source persist failed (entry will not survive a restart): %v", id, err)
		} else {
			e.mu.Lock()
			e.srcPath = srcPath
			e.mu.Unlock()
		}
	}
	s.persist()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(e.info())
}

// handleDelete removes an ontology from the registry along with its
// on-disk artifacts (checkpoint, kernel file, persisted source). An
// in-flight entry must finish (or be drained) first: 409.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e := s.reg.get(id)
	if e == nil {
		writeErr(w, http.StatusNotFound, "unknown ontology "+id)
		return
	}
	e.mu.Lock()
	if e.inFlightLocked() {
		e.mu.Unlock()
		writeErr(w, http.StatusConflict, "classification in flight for "+id+"; retry after it finishes")
		return
	}
	paths := []string{e.checkpoint, e.kernelPath, e.srcPath}
	e.mu.Unlock()
	s.reg.remove(id)
	for _, p := range paths {
		if p == "" {
			continue
		}
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			s.cfg.Logf("owld: delete %s: removing %s: %v", id, p, err)
		}
	}
	s.persist()
	s.cfg.Logf("owld: delete %s: entry and artifacts removed", id)
	w.WriteHeader(http.StatusNoContent)
}

// handleReady is the readiness probe: 503 before boot-time manifest
// re-adoption finishes and while draining, 200 otherwise. Liveness
// (/healthz) stays 200 through both — the process is healthy, it just
// should not receive traffic yet/anymore.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ready := s.ready.Load() && !s.draining.Load()
	if !ready {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, map[string]any{
		"ready":    ready,
		"adopting": !s.ready.Load(),
		"draining": s.draining.Load(),
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"draining":   s.draining.Load(),
		"queued":     len(s.queue),
		"ontologies": s.reg.list(),
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	e := s.reg.get(r.PathValue("id"))
	if e == nil {
		writeErr(w, http.StatusNotFound, "unknown ontology "+r.PathValue("id"))
		return
	}
	writeJSON(w, e.info())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status":             "ok",
		"ready":              s.ready.Load() && !s.draining.Load(),
		"draining":           s.draining.Load(),
		"queued":             len(s.queue),
		"ontologies":         len(s.reg.list()),
		"resident_bytes":     s.residentBytes(),
		"max_resident_bytes": s.cfg.MaxResidentBytes,
		"evictions":          s.evictions.Load(),
		"reloads":            s.reloads.Load(),
		"coalesced_queries":  s.coalesced.Load(),
	})
}

// servingSnapshot resolves an id to its query-ready generation, writing
// the HTTP error itself when there is none yet. Evicted entries pay a
// demand reload here (see memory.go).
func (s *Server) servingSnapshot(w http.ResponseWriter, id string) (*parowl.Snapshot, *entry, bool) {
	e := s.reg.get(id)
	if e == nil {
		writeErr(w, http.StatusNotFound, "unknown ontology "+id)
		return nil, nil, false
	}
	snap, err := s.residentSnapshot(e)
	if err != nil {
		// Classified state does not exist yet (first classification still
		// queued, running, failed, or interrupted): tell the client to
		// come back rather than serving a half-built taxonomy.
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusConflict,
			fmt.Sprintf("ontology %s not classified yet (status %s)", id, e.info().Status))
		return nil, nil, false
	}
	return snap, e, true
}

func (s *Server) handleTaxonomy(w http.ResponseWriter, r *http.Request) {
	snap, e, ok := s.servingSnapshot(w, r.PathValue("id"))
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Parowl-Generation", strconv.FormatUint(e.gen(), 10))
	io.WriteString(w, snap.Taxonomy().Render())
}

// requestCtx applies the per-request deadline (?timeout= or the
// configured default) to the request context.
func (s *Server) requestCtx(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	d := s.cfg.RequestTimeout
	if v := r.FormValue("timeout"); v != "" {
		parsed, err := time.ParseDuration(v)
		if err != nil || parsed <= 0 {
			writeErr(w, http.StatusBadRequest, "bad timeout: "+v)
			return nil, nil, false
		}
		d = parsed
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, true
}

// handleQuery evaluates a semicolon-separated query spec (?q= or the
// POST body) against the warm kernel, one text line per query — the
// same evaluator and formatting as `owlclass -query`, so answers are
// byte-identical across the two front ends.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	spec := r.FormValue("q")
	if spec == "" && r.Method == http.MethodPost {
		b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeErr(w, http.StatusBadRequest, "reading body: "+err.Error())
			return
		}
		spec = string(b)
	}
	if strings.TrimSpace(spec) == "" {
		writeErr(w, http.StatusBadRequest, "empty query spec (use ?q=subsumes:A,B;ancestors:C)")
		return
	}
	snap, e, ok := s.servingSnapshot(w, r.PathValue("id"))
	if !ok {
		return
	}
	ctx, cancel, ok := s.requestCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	// Coalesce identical in-flight evaluations: requests for the same
	// (ontology, generation, spec) ride one kernel sweep. The generation
	// in the key is the entry generation — stable across evict/reload, so
	// coalesced answers are byte-identical by construction.
	gen := e.gen()
	key := r.PathValue("id") + "\x00" + strconv.FormatUint(gen, 10) + "\x00" + spec
	lines, err, shared := s.flights.do(ctx, key, func() ([]string, error) {
		if s.onQueryEval != nil {
			s.onQueryEval(key)
		}
		return snap.EvalSpec(ctx, spec)
	})
	if shared {
		s.coalesced.Add(1)
	}
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeErr(w, http.StatusGatewayTimeout, "query deadline exceeded")
		return
	default:
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Parowl-Generation", strconv.FormatUint(gen, 10))
	io.WriteString(w, strings.Join(lines, "\n")+"\n")
}

// subsumesRequest is the JSON body of POST /ontologies/{id}/subsumes:
// pairs of [sup, sub] concept names, each asking sub ⊑ sup.
type subsumesRequest struct {
	Pairs [][2]string `json:"pairs"`
}

// handleSubsumes answers a batch of subsumption pairs in one request;
// pairs sharing a subject are answered against a single kernel
// ancestor-row sweep.
func (s *Server) handleSubsumes(w http.ResponseWriter, r *http.Request) {
	var req subsumesRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	if len(req.Pairs) == 0 {
		writeErr(w, http.StatusBadRequest, `empty batch (want {"pairs": [["Sup","Sub"], ...]})`)
		return
	}
	snap, e, ok := s.servingSnapshot(w, r.PathValue("id"))
	if !ok {
		return
	}
	ctx, cancel, ok := s.requestCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	if err := ctx.Err(); err != nil {
		writeErr(w, http.StatusGatewayTimeout, "query deadline exceeded")
		return
	}
	results, err := snap.SubsumesBatch(req.Pairs)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("X-Parowl-Generation", strconv.FormatUint(e.gen(), 10))
	writeJSON(w, map[string]any{"results": results})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
