package server

import (
	"context"
	"errors"
	"sync"
)

// flightGroup coalesces identical in-flight /query evaluations: requests
// sharing a key — (ontology id, generation, spec) — ride one kernel row
// sweep instead of each paying their own. It is the string-keyed sibling
// of the reasoner cache's single-flight (internal/reasoner/cache.go) and
// follows the same leader-cancellation discipline: a leader that dies of
// its OWN context deadline must not poison the waiters, so a follower
// whose context is still live retries as the new leader.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done  chan struct{}
	lines []string
	err   error
}

// do runs fn once per key among concurrent callers. The boolean reports
// whether this caller shared another caller's execution (true) or ran fn
// itself (false). A waiting caller whose own ctx expires returns its ctx
// error immediately; the in-flight execution keeps running for the rest.
func (g *flightGroup) do(ctx context.Context, key string, fn func() ([]string, error)) ([]string, error, bool) {
	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = make(map[string]*flightCall)
		}
		if c, ok := g.m[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
				if c.err != nil && (errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)) && ctx.Err() == nil {
					// The leader's own deadline killed the evaluation; this
					// follower is still live, so it retries as leader.
					continue
				}
				return c.lines, c.err, true
			case <-ctx.Done():
				return nil, ctx.Err(), true
			}
		}
		c := &flightCall{done: make(chan struct{})}
		g.m[key] = c
		g.mu.Unlock()

		c.lines, c.err = fn()

		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
		return c.lines, c.err, false
	}
}
