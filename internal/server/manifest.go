package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"parowl"
)

// The registry manifest makes the daemon's tenant table durable: a
// versioned, per-entry-checksummed registry.json under the checkpoint
// dir, atomically rewritten (same-directory temp + rename, the PR 4
// checkpoint discipline) on every lifecycle transition. On startup the
// daemon re-adopts `classified` entries from their checkpoints instead
// of reclassifying; anything unusable degrades PER ENTRY — a corrupt
// manifest, a checksum-failing entry, or a fingerprint mismatch costs at
// worst one entry's warm state (it lists as interrupted and reclassifies
// on resubmission), never a failed boot.

// manifestName is the registry manifest file under the checkpoint dir.
const manifestName = "registry.json"

// manifestVersion is bumped on any incompatible manifest schema change.
const manifestVersion = 1

// errManifestVersion reports a manifest written by an incompatible
// daemon; the boot proceeds with an empty registry.
var errManifestVersion = errors.New("server: unsupported manifest version")

// manifestEntry is the durable record of one registry entry. CRC is a
// CRC-32 (IEEE) over the entry's canonical JSON encoding with CRC set to
// zero, so any in-place corruption of an entry is detected individually
// and degrades only that entry.
type manifestEntry struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Format      string `json:"format"`
	Fingerprint string `json:"fingerprint"` // %016x of the source fingerprint
	Status      Status `json:"status"`
	Error       string `json:"error,omitempty"`
	Generation  uint64 `json:"generation"`
	Scheduling  string `json:"scheduling,omitempty"`
	Checkpoint  string `json:"checkpoint,omitempty"` // base name under the checkpoint dir
	Kernel      string `json:"kernel,omitempty"`     // base name of the standalone kernel file
	Source      string `json:"source,omitempty"`     // base name of the persisted source document
	Concepts    int    `json:"concepts,omitempty"`
	Classes     int    `json:"classes,omitempty"`
	Undecided   int    `json:"undecided,omitempty"`
	CRC         uint32 `json:"crc"`
}

// manifestFile is the on-disk shape of registry.json.
type manifestFile struct {
	Version int             `json:"version"`
	Entries []manifestEntry `json:"entries"`
}

// checksum computes the entry's canonical CRC (the CRC field zeroed).
func (m manifestEntry) checksum() uint32 {
	m.CRC = 0
	data, err := json.Marshal(m)
	if err != nil {
		// Marshal of a plain struct cannot fail; keep the signature total.
		return 0
	}
	return crc32.ChecksumIEEE(data)
}

// loadManifest reads and validates the manifest. Failure modes, from the
// outside in:
//   - missing file: (nil, nil) — first boot.
//   - unreadable/unparseable file or wrong version: (nil, err) — the
//     caller logs and boots with an empty registry.
//   - entry with a checksum mismatch: degraded in place to
//     StatusInterrupted when its ID still looks usable (the checkpoint
//     and source paths are derived from the ID, so a readable ID is
//     enough to reclassify later); dropped entirely otherwise.
//
// No input makes loadManifest panic or the boot fail.
func loadManifest(path string) ([]manifestEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var mf manifestFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return nil, fmt.Errorf("server: manifest unparseable: %w", err)
	}
	if mf.Version != manifestVersion {
		return nil, fmt.Errorf("%w %d (want %d)", errManifestVersion, mf.Version, manifestVersion)
	}
	seen := make(map[string]bool, len(mf.Entries))
	out := make([]manifestEntry, 0, len(mf.Entries))
	for _, me := range mf.Entries {
		if me.CRC != me.checksum() {
			if !idPattern.MatchString(me.ID) || seen[me.ID] {
				continue // nothing trustworthy left to degrade around
			}
			me = manifestEntry{
				ID:     me.ID,
				Name:   me.ID,
				Status: StatusInterrupted,
				Error:  "manifest entry checksum mismatch; resubmit to reclassify",
			}
		}
		if me.ID == "" || seen[me.ID] {
			continue
		}
		seen[me.ID] = true
		out = append(out, me)
	}
	return out, nil
}

// writeFileAtomic writes data via a same-directory temp file and rename
// (the internal/core checkpoint discipline): a crash mid-write leaves
// either the old manifest or the new one, never a torn file.
func writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err2 := f.Sync(); err == nil {
		err = err2
	}
	if err2 := f.Close(); err == nil {
		err = err2
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}

// manifestEntryLocked captures the entry's durable state; e.mu must be
// held. Entries that never got past admission (empty status) and
// transient in-flight states are recorded as what a restart would find:
// an interrupted classification.
func (e *entry) manifestEntry() manifestEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	status := e.status
	errMsg := e.errMsg
	if e.inFlightLocked() {
		// A manifest can be read only by a NEXT process, and for that
		// process any in-flight work was interrupted by definition.
		status = StatusInterrupted
		errMsg = "daemon exited before classification finished; resubmit to resume from checkpoint"
	}
	me := manifestEntry{
		ID:          e.id,
		Name:        e.name,
		Format:      e.format.String(),
		Fingerprint: fmt.Sprintf("%016x", e.fingerprint),
		Status:      status,
		Error:       errMsg,
		Generation:  e.generation,
		Scheduling:  e.scheduling,
		Checkpoint:  filepath.Base(e.checkpoint),
		Kernel:      filepath.Base(e.kernelPath),
		Source:      filepath.Base(e.srcPath),
		Concepts:    e.concepts,
		Classes:     e.classes,
		Undecided:   e.undecided,
	}
	if e.checkpoint == "" {
		me.Checkpoint = ""
	}
	if e.kernelPath == "" {
		me.Kernel = ""
	}
	if e.srcPath == "" {
		me.Source = ""
	}
	me.CRC = me.checksum()
	return me
}

// persist rewrites the registry manifest from the live registry. It is
// called on every lifecycle transition; failures are logged, never
// propagated — durability degrades, serving does not.
func (s *Server) persist() {
	if s.cfg.CheckpointDir == "" {
		return
	}
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	mf := manifestFile{Version: manifestVersion}
	for _, e := range s.reg.all() {
		me := e.manifestEntry()
		if me.Status == "" {
			continue // never admitted; nothing durable to record
		}
		mf.Entries = append(mf.Entries, me)
	}
	data, err := json.MarshalIndent(mf, "", "  ")
	if err == nil {
		err = writeFileAtomic(filepath.Join(s.cfg.CheckpointDir, manifestName), append(data, '\n'))
	}
	if err != nil {
		s.cfg.Logf("owld: manifest write failed (registry stays serving, durability degraded): %v", err)
	}
}

// readoptAll replays the manifest at boot: classified entries are
// re-adopted from their checkpoints with zero reclassification, every
// other recorded state is restored as-is (in-flight states were already
// degraded to interrupted at write time). Runs once on its own
// goroutine; /readyz reports 503 until it finishes.
func (s *Server) readoptAll(entries []manifestEntry) {
	defer func() {
		s.ready.Store(true)
		s.persist()
	}()
	for _, me := range entries {
		if s.draining.Load() {
			return
		}
		s.readoptOne(me)
	}
}

// readoptOne restores one manifest entry. Any failure — unreadable
// source, fingerprint mismatch, missing/corrupt/incomplete checkpoint —
// degrades this entry to interrupted and keeps booting.
func (s *Server) readoptOne(me manifestEntry) {
	e := s.reg.getOrCreate(me.ID)
	format, err := parowl.ParseFormat(me.Format)
	if err != nil {
		format = parowl.FormatOBO
	}
	var fp uint64
	fmt.Sscanf(me.Fingerprint, "%016x", &fp)

	e.mu.Lock()
	if e.status != "" {
		// A live submission raced ahead of the replay; its state wins.
		e.mu.Unlock()
		return
	}
	e.name = me.Name
	e.format = format
	e.fingerprint = fp
	e.generation = me.Generation
	e.scheduling = me.Scheduling
	e.concepts = me.Concepts
	e.classes = me.Classes
	e.undecided = me.Undecided
	e.errMsg = me.Error
	if me.Checkpoint != "" {
		e.checkpoint = filepath.Join(s.cfg.CheckpointDir, me.Checkpoint)
	}
	if me.Kernel != "" {
		e.kernelPath = filepath.Join(s.cfg.CheckpointDir, me.Kernel)
	}
	if me.Source != "" {
		e.srcPath = filepath.Join(s.cfg.CheckpointDir, me.Source)
	}
	if me.Status != StatusClassified {
		e.status = me.Status
		e.mu.Unlock()
		return
	}
	// Queries and duplicate submissions observe "adopting" (409 + retry)
	// until the warm state is back.
	e.status = StatusAdopting
	ckPath, srcPath := e.checkpoint, e.srcPath
	e.mu.Unlock()

	degrade := func(why string, err error) {
		e.mu.Lock()
		e.status = StatusInterrupted
		e.errMsg = fmt.Sprintf("restart re-adoption failed (%s): %v; resubmit to reclassify", why, err)
		e.mu.Unlock()
		s.cfg.Logf("owld: readopt %s: %s: %v (degraded to interrupted)", me.ID, why, err)
	}
	if ckPath == "" || srcPath == "" {
		degrade("manifest", errors.New("missing checkpoint or source path"))
		return
	}
	start := time.Now()
	src, err := os.Open(srcPath)
	if err != nil {
		degrade("source", err)
		return
	}
	ont, err := s.cfg.Engine.Load(src, me.Name, format)
	src.Close()
	if err != nil {
		degrade("source parse", err)
		return
	}
	if got := ont.Fingerprint(); got != fp {
		degrade("fingerprint", fmt.Errorf("source fingerprint %016x does not match manifest %016x", got, fp))
		return
	}
	res, err := ont.Adopt(context.Background(), ckPath)
	if err != nil {
		degrade("checkpoint", err)
		return
	}
	snap, err := ont.Snapshot()
	if err != nil {
		degrade("snapshot", err)
		return
	}
	e.markAdopted(ont, res, me.Generation, snap.MemoryFootprint(), time.Since(start))
	s.maybeEvict()
	s.cfg.Logf("owld: readopt %s: re-adopted generation %d from checkpoint in %v (%d classes, 0 reclassification tests)",
		me.ID, me.Generation, time.Since(start).Round(time.Millisecond), res.Taxonomy.NumClasses())
}
