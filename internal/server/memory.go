package server

import (
	"context"
	"fmt"
	"os"
	"time"

	"parowl"
)

// Memory accounting and eviction: every warm generation is charged its
// Snapshot.MemoryFootprint() (taxonomy DAG + kernel closure matrices —
// the kernel dominates at 2·n² bits), and when Config.MaxResidentBytes
// is set the registry evicts least-recently-queried classified entries
// down to the budget. Eviction only drops the in-memory handle: the
// entry still lists as `classified`, its checkpoint and source stay on
// disk, and the next query transparently re-adopts the checkpoint (the
// first query after eviction pays the reload; answers are byte-identical
// because adoption rebuilds the same taxonomy and kernel). In-flight
// queries keep their Snapshot alive through the garbage collector, so
// eviction can never invalidate an answer mid-request.

// residentBytes sums the charged footprint of every warm entry.
func (s *Server) residentBytes() int64 {
	var total int64
	for _, e := range s.reg.all() {
		e.mu.Lock()
		if e.serving != nil {
			total += e.resident
		}
		e.mu.Unlock()
	}
	return total
}

// maybeEvict brings resident bytes back under the configured budget by
// evicting cold classified entries, least recently used first. The most
// recently used entry is never evicted — with a budget smaller than a
// single kernel the daemon would otherwise thrash itself to zero warm
// state; keeping exactly the working set of one is the useful floor
// (logged, since the operator's budget is then unsatisfiable).
func (s *Server) maybeEvict() {
	if s.cfg.MaxResidentBytes <= 0 || s.cfg.CheckpointDir == "" {
		return
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	for {
		var (
			total    int64
			resident int
			victim   *entry
			victimAt time.Time
			newest   time.Time
		)
		for _, e := range s.reg.all() {
			e.mu.Lock()
			if e.serving != nil {
				total += e.resident
				resident++
				if e.status == StatusClassified && e.srcPath != "" && e.checkpoint != "" {
					if victim == nil || e.lastUsed.Before(victimAt) {
						victim, victimAt = e, e.lastUsed
					}
					if e.lastUsed.After(newest) {
						newest = e.lastUsed
					}
				}
			}
			e.mu.Unlock()
		}
		if total <= s.cfg.MaxResidentBytes {
			return
		}
		if victim == nil || (resident == 1 && victim != nil) || victimAt.Equal(newest) {
			if victim != nil {
				s.cfg.Logf("owld: evict: resident %d bytes over budget %d but only the working set remains; keeping %s warm",
					total, s.cfg.MaxResidentBytes, victim.id)
			}
			return
		}
		victim.mu.Lock()
		// Re-check under the lock: a racing reload or reclassification may
		// have touched the entry since the scan.
		if victim.serving == nil || victim.status != StatusClassified {
			victim.mu.Unlock()
			continue
		}
		freed := victim.resident
		victim.serving = nil
		victim.resident = 0
		victim.mu.Unlock()
		s.evictions.Add(1)
		s.cfg.Logf("owld: evict %s: released %d bytes (resident %d > budget %d); checkpoint stays on disk, next query reloads",
			victim.id, freed, total, s.cfg.MaxResidentBytes)
	}
}

// residentSnapshot returns a query-ready Snapshot for the entry, paying
// a demand reload when the entry was evicted. It also touches the LRU
// clock.
func (s *Server) residentSnapshot(e *entry) (*parowl.Snapshot, error) {
	e.mu.Lock()
	ont := e.serving
	reloadable := ont == nil && e.status == StatusClassified && e.srcPath != "" && e.checkpoint != ""
	e.lastUsed = time.Now()
	e.mu.Unlock()
	if ont != nil {
		return ont.Snapshot()
	}
	if !reloadable {
		return nil, parowl.ErrNotClassified
	}
	return s.reload(e)
}

// reload re-adopts an evicted entry's checkpoint. Concurrent queries for
// the same entry single-flight behind reloadMu — one decode, everyone
// served. A reload failure (checkpoint rotted since eviction) degrades
// the entry to interrupted, exactly like a failed boot-time re-adoption.
func (s *Server) reload(e *entry) (*parowl.Snapshot, error) {
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()

	e.mu.Lock()
	ont := e.serving
	srcPath, ckPath, name, format, fp := e.srcPath, e.checkpoint, e.name, e.format, e.fingerprint
	still := e.status == StatusClassified
	e.mu.Unlock()
	if ont != nil {
		return ont.Snapshot() // another waiter already reloaded
	}
	if !still {
		return nil, parowl.ErrNotClassified
	}

	degrade := func(why string, err error) error {
		e.mu.Lock()
		if e.status == StatusClassified && e.serving == nil {
			e.status = StatusInterrupted
			e.errMsg = fmt.Sprintf("demand reload failed (%s): %v; resubmit to reclassify", why, err)
		}
		e.mu.Unlock()
		s.persist()
		s.cfg.Logf("owld: reload %s: %s: %v (degraded to interrupted)", e.id, why, err)
		return parowl.ErrNotClassified
	}

	start := time.Now()
	src, err := os.Open(srcPath)
	if err != nil {
		return nil, degrade("source", err)
	}
	ont, err = s.cfg.Engine.Load(src, name, format)
	src.Close()
	if err != nil {
		return nil, degrade("source parse", err)
	}
	if got := ont.Fingerprint(); got != fp {
		return nil, degrade("fingerprint", fmt.Errorf("source fingerprint %016x does not match registry %016x", got, fp))
	}
	if _, err := ont.Adopt(context.Background(), ckPath); err != nil {
		return nil, degrade("checkpoint", err)
	}
	snap, err := ont.Snapshot()
	if err != nil {
		return nil, degrade("snapshot", err)
	}

	e.mu.Lock()
	if e.status == StatusClassified && e.serving == nil {
		e.serving = ont
		e.resident = snap.MemoryFootprint()
		e.lastUsed = time.Now()
		e.reloads++
	}
	e.mu.Unlock()
	s.reloads.Add(1)
	s.cfg.Logf("owld: reload %s: re-adopted evicted state in %v", e.id, time.Since(start).Round(time.Millisecond))
	s.maybeEvict()
	return snap, nil
}
