// Package server implements owld, the classification-as-a-service
// daemon: an ontology registry, an admission-controlled classify job
// queue, and a query surface served from warm per-ontology state — all
// on top of the public parowl Engine/Ontology/Snapshot handles, so the
// daemon exercises exactly the API library users get.
package server

import (
	"context"
	"sync"
	"time"

	"parowl"
)

// Status is the lifecycle state of one registered ontology.
type Status string

// Registry entry states. An entry that has classified at least once
// keeps serving its last good taxonomy through every later state — a
// reclassification in flight (queued/classifying) or failed does not
// take the query surface down.
const (
	StatusQueued      Status = "queued"      // admitted, waiting for a classify slot (or a retry backoff)
	StatusClassifying Status = "classifying" // a classify job is running
	StatusClassified  Status = "classified"  // taxonomy ready; queries served
	StatusFailed      Status = "failed"      // last classify attempt errored
	StatusInterrupted Status = "interrupted" // drained mid-classify; resumable from checkpoint
	StatusAdopting    Status = "adopting"    // restart re-adoption from the manifest in progress
)

// entry is one registered ontology: its lifecycle state plus the warm
// serving handle. The serving handle is replaced only after a successful
// (re)classification, so concurrent queries always see a complete
// generation — the swap discipline the public Ontology/Snapshot handles
// provide, lifted to whole resubmissions (which may carry new content
// and therefore a new handle).
type entry struct {
	id string

	// reloadMu serializes demand reloads of an evicted entry so a
	// thundering herd of queries pays the checkpoint decode once. It is
	// taken before mu and never while holding mu.
	reloadMu sync.Mutex

	mu         sync.Mutex
	name       string
	status     Status
	errMsg     string
	serving    *parowl.Ontology   // last good handle; nil until first success or while evicted
	cancel     context.CancelFunc // cancels the in-flight classify job
	checkpoint string             // checkpoint path of the last job, if any
	scheduling string             // scheduling policy of the last started job
	resumed    bool               // last run restored from a checkpoint
	generation uint64
	concepts   int
	classes    int
	undecided  int
	stats      parowl.Stats
	submitted  time.Time
	started    time.Time
	finished   time.Time
	elapsed    time.Duration

	// Durable-registry state (persistent manifest, PR 9).
	format      parowl.Format // source syntax, for restart re-parse
	fingerprint uint64        // source fingerprint, pairs manifest with checkpoint
	srcPath     string        // persisted source document under the checkpoint dir
	kernelPath  string        // standalone kernel file of the last success
	readopted   bool          // serving state re-adopted at boot, zero reclassification

	// Retry-with-backoff state.
	attempts  int       // failed attempts of the current submission
	nextRetry time.Time // when the next attempt is scheduled (zero when none)

	// Memory-accounting state.
	resident int64     // bytes charged while the serving handle is warm
	lastUsed time.Time // last query touch, drives LRU eviction
	reloads  int64     // demand reloads this entry has paid after eviction
}

// StatusInfo is the JSON shape of one entry, returned by the status and
// list endpoints.
type StatusInfo struct {
	ID         string        `json:"id"`
	Name       string        `json:"name"`
	Status     Status        `json:"status"`
	Error      string        `json:"error,omitempty"`
	Concepts   int           `json:"concepts"`
	Classes    int           `json:"classes,omitempty"`
	Undecided  int           `json:"undecided,omitempty"`
	Generation uint64        `json:"generation"`
	Scheduling string        `json:"scheduling,omitempty"`
	Resumed    bool          `json:"resumed,omitempty"`
	Checkpoint string        `json:"checkpoint,omitempty"`
	Stats      *parowl.Stats `json:"stats,omitempty"`
	// Readopted reports the serving state was restored from the manifest
	// and checkpoint at daemon startup without any reclassification.
	Readopted bool `json:"readopted,omitempty"`
	// Attempts counts failed classify attempts of the current submission;
	// NextRetryAt is when the next backoff retry fires (zero when none is
	// scheduled).
	Attempts    int        `json:"attempts,omitempty"`
	NextRetryAt *time.Time `json:"next_retry_at,omitempty"`
	// Resident reports whether the classified state is warm in memory;
	// false for a classified entry means it was evicted under the
	// -max-resident-bytes budget and the next query pays a demand reload.
	Resident      bool      `json:"resident"`
	ResidentBytes int64     `json:"resident_bytes,omitempty"`
	Reloads       int64     `json:"reloads,omitempty"`
	SubmittedAt   time.Time `json:"submitted_at,omitempty"`
	StartedAt     time.Time `json:"started_at,omitempty"`
	FinishedAt    time.Time `json:"finished_at,omitempty"`
	ElapsedMS     int64     `json:"elapsed_ms,omitempty"`
}

func (e *entry) info() StatusInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	info := StatusInfo{
		ID:            e.id,
		Name:          e.name,
		Status:        e.status,
		Error:         e.errMsg,
		Concepts:      e.concepts,
		Classes:       e.classes,
		Undecided:     e.undecided,
		Generation:    e.generation,
		Scheduling:    e.scheduling,
		Resumed:       e.resumed,
		Checkpoint:    e.checkpoint,
		Readopted:     e.readopted,
		Attempts:      e.attempts,
		Resident:      e.serving != nil,
		ResidentBytes: e.resident,
		Reloads:       e.reloads,
		SubmittedAt:   e.submitted,
		StartedAt:     e.started,
		FinishedAt:    e.finished,
		ElapsedMS:     e.elapsed.Milliseconds(),
	}
	if !e.nextRetry.IsZero() {
		next := e.nextRetry
		info.NextRetryAt = &next
	}
	if e.generation > 0 {
		stats := e.stats
		info.Stats = &stats
	}
	return info
}

// gen returns the entry's classification generation. It survives daemon
// restarts (restored from the manifest) and evict/reload cycles, which is
// why the HTTP X-Parowl-Generation header is served from it rather than
// from the per-handle Snapshot generation.
func (e *entry) gen() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.generation
}

// snapshot returns the serving generation for queries, or
// parowl.ErrNotClassified while no classification has succeeded yet.
// Queries keep being answered from the previous generation while a
// reclassification runs.
func (e *entry) snapshot() (*parowl.Snapshot, error) {
	e.mu.Lock()
	ont := e.serving
	e.mu.Unlock()
	if ont == nil {
		return nil, parowl.ErrNotClassified
	}
	return ont.Snapshot()
}

// inFlight reports whether a classify job for this entry is admitted,
// running, waiting out a retry backoff, or being re-adopted at boot (at
// most one per entry at a time).
func (e *entry) inFlight() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inFlightLocked()
}

func (e *entry) inFlightLocked() bool {
	return e.status == StatusQueued || e.status == StatusClassifying || e.status == StatusAdopting
}

// queuedLocked marks the entry admitted; e.mu must be held. The caller
// holds the lock across the queue send so the in-flight check and the
// admission are one atomic step (two racing submits for the same id
// cannot both be admitted).
func (e *entry) queuedLocked(name string) {
	e.name = name
	e.status = StatusQueued
	e.errMsg = ""
	e.submitted = time.Now()
	e.started, e.finished = time.Time{}, time.Time{}
}

func (e *entry) markClassifying(cancel context.CancelFunc, checkpoint, scheduling string) {
	e.mu.Lock()
	e.status = StatusClassifying
	e.cancel = cancel
	e.checkpoint = checkpoint
	e.scheduling = scheduling
	e.nextRetry = time.Time{}
	e.started = time.Now()
	e.mu.Unlock()
}

// markRetryWait parks the entry between failed classify attempts: it
// stays StatusQueued (so duplicate submissions keep getting 409 and a
// later drain can flush it), records the failure and the backoff
// schedule, and keeps serving any previous good generation.
func (e *entry) markRetryWait(err error, attempts int, next time.Time) {
	e.mu.Lock()
	e.status = StatusQueued
	e.errMsg = err.Error()
	e.attempts = attempts
	e.nextRetry = next
	e.cancel = nil
	e.finished = time.Now()
	if !e.started.IsZero() {
		e.elapsed = e.finished.Sub(e.started)
	}
	e.mu.Unlock()
}

// markDone records a finished classify job. On success the serving
// handle is swapped to the job's ontology; on failure the previous
// serving state (if any) stays live. footprint is the new generation's
// resident cost in bytes (success only).
func (e *entry) markDone(ont *parowl.Ontology, res *parowl.Result, footprint int64, err error, interrupted bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cancel = nil
	e.nextRetry = time.Time{}
	e.finished = time.Now()
	if !e.started.IsZero() {
		e.elapsed = e.finished.Sub(e.started)
	}
	if err != nil {
		e.errMsg = err.Error()
		if interrupted {
			e.status = StatusInterrupted
		} else {
			e.status = StatusFailed
		}
		return
	}
	e.status = StatusClassified
	e.errMsg = ""
	e.serving = ont
	e.resumed = res.Resumed
	e.readopted = false
	e.attempts = 0
	e.generation++
	e.concepts = ont.TBox().NumNamed()
	e.classes = res.Taxonomy.NumClasses()
	e.undecided = len(res.Undecided)
	e.stats = res.Stats
	e.resident = footprint
	e.lastUsed = time.Now()
}

// markAdopted installs a serving state re-adopted from the manifest and
// checkpoint at boot: the generation is RESTORED (not incremented) so
// clients observe a continuous generation sequence across restarts, and
// readopted proves no reclassification ran.
func (e *entry) markAdopted(ont *parowl.Ontology, res *parowl.Result, generation uint64, footprint int64, elapsed time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.status = StatusClassified
	e.errMsg = ""
	e.serving = ont
	e.resumed = true
	e.readopted = true
	e.generation = generation
	e.concepts = ont.TBox().NumNamed()
	e.classes = res.Taxonomy.NumClasses()
	e.undecided = len(res.Undecided)
	e.stats = res.Stats
	e.resident = footprint
	e.lastUsed = time.Now()
	e.finished = time.Now()
	e.elapsed = elapsed
}

// abort cancels the entry's in-flight classify job, if any.
func (e *entry) abort() {
	e.mu.Lock()
	cancel := e.cancel
	e.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// registry is the id → entry table.
type registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	order   []string // insertion order for stable listings
}

func newRegistry() *registry {
	return &registry{entries: make(map[string]*entry)}
}

// getOrCreate returns the entry for id, creating it on first submission.
func (r *registry) getOrCreate(id string) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[id]; ok {
		return e
	}
	e := &entry{id: id}
	r.entries[id] = e
	r.order = append(r.order, id)
	return e
}

// get returns the entry for id, or nil.
func (r *registry) get(id string) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[id]
}

// list returns every entry's StatusInfo in submission order.
func (r *registry) list() []StatusInfo {
	r.mu.Lock()
	ids := append([]string(nil), r.order...)
	r.mu.Unlock()
	out := make([]StatusInfo, 0, len(ids))
	for _, id := range ids {
		if e := r.get(id); e != nil {
			out = append(out, e.info())
		}
	}
	return out
}

// removeIfEmpty drops an entry that never got past admission (a 429'd
// first submission), so load-shed requests leave no ghost entries in
// listings.
func (r *registry) removeIfEmpty(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return
	}
	e.mu.Lock()
	empty := e.status == "" && e.serving == nil
	e.mu.Unlock()
	if !empty {
		return
	}
	delete(r.entries, id)
	for i, x := range r.order {
		if x == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// remove unconditionally drops an entry from the table (DELETE surface).
// The caller is responsible for the entry's on-disk artifacts.
func (r *registry) remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[id]; !ok {
		return
	}
	delete(r.entries, id)
	for i, x := range r.order {
		if x == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// all returns every live entry (for eviction scans and manifest writes).
func (r *registry) all() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.order))
	for _, id := range r.order {
		if e, ok := r.entries[id]; ok {
			out = append(out, e)
		}
	}
	return out
}

// abortAll cancels every in-flight classify job (drain path).
func (r *registry) abortAll() {
	r.mu.Lock()
	es := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		es = append(es, e)
	}
	r.mu.Unlock()
	for _, e := range es {
		e.abort()
	}
}
