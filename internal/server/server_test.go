package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"parowl"
)

// genOBO deterministically generates a miniature Table IV ontology and
// returns its OBO text.
func genOBO(t *testing.T, seed int64, scale int) string {
	t.Helper()
	p, ok := parowl.ProfileByName("WBbt.obo")
	if !ok {
		t.Fatal("profile WBbt.obo missing")
	}
	tb, err := parowl.Generate(parowl.MiniProfile(p, scale), seed)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var buf bytes.Buffer
	if err := parowl.Write(&buf, tb, parowl.FormatOBO); err != nil {
		t.Fatalf("write obo: %v", err)
	}
	return buf.String()
}

// refSnapshot classifies text with a stock engine, for expected answers.
func refSnapshot(t *testing.T, text string) *parowl.Snapshot {
	t.Helper()
	ont, err := parowl.NewEngine().Load(strings.NewReader(text), "ref", parowl.FormatOBO)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := ont.Classify(context.Background()); err != nil {
		t.Fatalf("classify: %v", err)
	}
	snap, err := ont.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return snap
}

// pickNames returns n concept names from the snapshot's taxonomy,
// skipping ⊤ and ⊥, spread across the node list.
func pickNames(t *testing.T, snap *parowl.Snapshot, n int) []string {
	t.Helper()
	nodes := snap.Taxonomy().Nodes()
	var names []string
	for i := 1; i < len(nodes)-1 && len(names) < n; i += 1 + len(nodes)/(n+1) {
		names = append(names, nodes[i].Canonical().Name)
	}
	if len(names) < n {
		t.Fatalf("ontology too small: got %d names, want %d", len(names), n)
	}
	return names
}

// firstID returns the first [Term] id in an OBO document.
func firstID(t *testing.T, text string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "id: ") {
			return strings.TrimSpace(line[len("id: "):])
		}
	}
	t.Fatal("no id: lines in generated OBO")
	return ""
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
		ts.Close()
	})
	return s, ts
}

// submit POSTs an ontology document and returns the status code and body.
func submit(t *testing.T, ts *httptest.Server, id, name, text string) (int, string) {
	t.Helper()
	u := ts.URL + "/ontologies?format=obo"
	if id != "" {
		u += "&id=" + url.QueryEscape(id)
	}
	if name != "" {
		u += "&name=" + url.QueryEscape(name)
	}
	resp, err := http.Post(u, "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatalf("submit %s: %v", id, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func get(t *testing.T, rawURL string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, string(b)
}

func status(t *testing.T, ts *httptest.Server, id string) StatusInfo {
	t.Helper()
	code, _, body := get(t, ts.URL+"/ontologies/"+id)
	if code != http.StatusOK {
		t.Fatalf("status %s: HTTP %d: %s", id, code, body)
	}
	var info StatusInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("status %s: bad JSON: %v", id, err)
	}
	return info
}

// waitStatus polls until the entry reaches want (or a terminal state that
// is not want, which fails fast).
func waitStatus(t *testing.T, ts *httptest.Server, id string, want Status) StatusInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		info := status(t, ts, id)
		if info.Status == want {
			return info
		}
		if info.Status == StatusFailed && want != StatusFailed {
			t.Fatalf("ontology %s failed: %s", id, info.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("ontology %s stuck in %s (want %s): %s", id, info.Status, want, info.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func queryURL(ts *httptest.Server, id, spec string) string {
	return ts.URL + "/ontologies/" + id + "/query?q=" + url.QueryEscape(spec)
}

// gatedReasoner delays every reasoner call until the gate closes (or the
// test-scoped context is cancelled), so tests can hold a classification
// open deterministically.
type gatedReasoner struct {
	inner parowl.Reasoner
	gate  chan struct{}

	enterOnce sync.Once
	entered   chan struct{} // closed on the first blocked call
}

func newGate(inner parowl.Reasoner) *gatedReasoner {
	return &gatedReasoner{inner: inner, gate: make(chan struct{}), entered: make(chan struct{})}
}

func (g *gatedReasoner) wait(ctx context.Context) error {
	g.enterOnce.Do(func() { close(g.entered) })
	select {
	case <-g.gate:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gatedReasoner) Sat(ctx context.Context, c *parowl.Concept) (bool, error) {
	if err := g.wait(ctx); err != nil {
		return false, err
	}
	return g.inner.Sat(ctx, c)
}

func (g *gatedReasoner) Subs(ctx context.Context, sup, sub *parowl.Concept) (bool, error) {
	if err := g.wait(ctx); err != nil {
		return false, err
	}
	return g.inner.Subs(ctx, sup, sub)
}

// gateByName builds a ReasonerFactory that gates ontologies whose name
// has the "slow-" prefix and leaves everything else on the stock
// auto-selected reasoner.
func gateByName(g *gatedReasoner) parowl.ReasonerFactory {
	return func(tb *parowl.TBox) parowl.Reasoner {
		if strings.HasPrefix(tb.Name, "slow-") {
			g.inner = parowl.NewAutoReasoner(tb)
			return g
		}
		return nil // engine falls back to its default selection
	}
}

// TestLifecycle drives submit → classify → query end to end and checks
// every query answer is byte-identical to the library evaluator (the
// same code path `owlclass -query` prints).
func TestLifecycle(t *testing.T) {
	t.Parallel()
	text := genOBO(t, 7, 60)
	ref := refSnapshot(t, text)
	names := pickNames(t, ref, 4)

	_, ts := newTestServer(t, Config{CheckpointDir: t.TempDir()})

	code, body := submit(t, ts, "anatomy", "", text)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	info := waitStatus(t, ts, "anatomy", StatusClassified)
	if info.Generation != 1 || info.Classes == 0 || info.Stats == nil {
		t.Fatalf("classified info looks wrong: %+v", info)
	}

	spec := fmt.Sprintf("subsumes:%s,%s;ancestors:%s;descendants:%s;equivalents:%s;lca:%s,%s;depth:%s",
		names[0], names[1], names[2], names[3], names[0], names[1], names[2], names[3])
	wantLines, err := ref.EvalSpec(context.Background(), spec)
	if err != nil {
		t.Fatalf("reference eval: %v", err)
	}
	code, hdr, body := get(t, queryURL(ts, "anatomy", spec))
	if code != http.StatusOK {
		t.Fatalf("query: HTTP %d: %s", code, body)
	}
	if want := strings.Join(wantLines, "\n") + "\n"; body != want {
		t.Errorf("query answers differ from library evaluator:\n got %q\nwant %q", body, want)
	}
	if hdr.Get("X-Parowl-Generation") != "1" {
		t.Errorf("generation header = %q, want 1", hdr.Get("X-Parowl-Generation"))
	}

	// Taxonomy rendering must match the library's Render byte for byte.
	code, _, body = get(t, ts.URL+"/ontologies/anatomy/taxonomy")
	if code != http.StatusOK {
		t.Fatalf("taxonomy: HTTP %d", code)
	}
	if want := ref.Taxonomy().Render(); body != want {
		t.Errorf("taxonomy render differs from library (%d vs %d bytes)", len(body), len(want))
	}

	// Batched subsumption agrees with Snapshot.SubsumesBatch.
	pairs := [][2]string{{names[0], names[1]}, {names[2], names[3]}, {names[0], names[0]}}
	wantBools, err := ref.SubsumesBatch(pairs)
	if err != nil {
		t.Fatalf("reference batch: %v", err)
	}
	reqBody, _ := json.Marshal(subsumesRequest{Pairs: pairs})
	resp, err := http.Post(ts.URL+"/ontologies/anatomy/subsumes", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	var batch struct {
		Results []bool `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatalf("batch decode: %v", err)
	}
	resp.Body.Close()
	if fmt.Sprint(batch.Results) != fmt.Sprint(wantBools) {
		t.Errorf("batch = %v, want %v", batch.Results, wantBools)
	}

	// Error surface.
	for _, tc := range []struct {
		url  string
		want int
	}{
		{ts.URL + "/ontologies/nope", http.StatusNotFound},
		{queryURL(ts, "nope", "depth:"+names[0]), http.StatusNotFound},
		{queryURL(ts, "anatomy", "frobnicate:X"), http.StatusBadRequest},
		{queryURL(ts, "anatomy", "depth:no_such_concept_xyz"), http.StatusBadRequest},
		{queryURL(ts, "anatomy", ""), http.StatusBadRequest},
	} {
		if code, _, _ := get(t, tc.url); code != tc.want {
			t.Errorf("GET %s: HTTP %d, want %d", tc.url, code, tc.want)
		}
	}
}

// TestQueriesDuringClassification holds a second ontology's
// classification open and checks the first stays fully queryable, the
// in-flight one answers 409, and a duplicate submit answers 409.
func TestQueriesDuringClassification(t *testing.T) {
	t.Parallel()
	fastText := genOBO(t, 11, 80)
	slowText := genOBO(t, 12, 80)
	ref := refSnapshot(t, fastText)
	name := pickNames(t, ref, 1)[0]

	gate := newGate(nil)
	eng := parowl.NewEngine(parowl.WithReasoner(gateByName(gate)))
	_, ts := newTestServer(t, Config{Engine: eng})

	if code, body := submit(t, ts, "fast", "", fastText); code != http.StatusAccepted {
		t.Fatalf("submit fast: HTTP %d: %s", code, body)
	}
	waitStatus(t, ts, "fast", StatusClassified)

	if code, body := submit(t, ts, "slow", "slow-one", slowText); code != http.StatusAccepted {
		t.Fatalf("submit slow: HTTP %d: %s", code, body)
	}
	<-gate.entered // a classify worker is now parked inside the slow job

	// A duplicate submit for the in-flight id is refused.
	if code, _ := submit(t, ts, "slow", "slow-one", slowText); code != http.StatusConflict {
		t.Errorf("duplicate submit: HTTP %d, want 409", code)
	}
	// The in-flight ontology has no classified generation to serve yet.
	if code, hdr, _ := get(t, queryURL(ts, "slow", "depth:"+name)); code != http.StatusConflict || hdr.Get("Retry-After") == "" {
		t.Errorf("query on classifying ontology: HTTP %d (Retry-After %q), want 409 with Retry-After", code, hdr.Get("Retry-After"))
	}

	// The classified ontology keeps answering, concurrently, while the
	// other classification is parked.
	want, err := ref.EvalSpec(context.Background(), "ancestors:"+name)
	if err != nil {
		t.Fatal(err)
	}
	wantBody := strings.Join(want, "\n") + "\n"
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(queryURL(ts, "fast", "ancestors:"+name))
			if err != nil {
				errs <- err.Error()
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || string(b) != wantBody {
				errs <- fmt.Sprintf("HTTP %d: %q", resp.StatusCode, b)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("concurrent query: %s", e)
	}

	close(gate.gate) // release the parked classification
	waitStatus(t, ts, "slow", StatusClassified)
	if code, _, body := get(t, queryURL(ts, "slow", "depth:"+firstID(t, slowText))); code != http.StatusOK {
		t.Errorf("query after release: HTTP %d: %s", code, body)
	}
}

// TestResubmitSwapsServingState replaces an ontology's content and checks
// queries are served from the old taxonomy until the new classification
// lands, then from the new one.
func TestResubmitSwapsServingState(t *testing.T) {
	t.Parallel()
	oldText := genOBO(t, 21, 60)
	newText := genOBO(t, 22, 90)
	oldRef := refSnapshot(t, oldText)
	newRef := refSnapshot(t, newText)

	// Find a concept both generations know whose answers differ, so the
	// swap is observable through the query surface.
	var spec string
	var oldWant, newWant []string
	for _, node := range oldRef.Taxonomy().Nodes() {
		name := node.Canonical().Name
		if name == "" {
			continue // ⊤ / ⊥
		}
		trySpec := fmt.Sprintf("ancestors:%s;descendants:%s;depth:%s", name, name, name)
		ow, err := oldRef.EvalSpec(context.Background(), trySpec)
		if err != nil {
			continue
		}
		nw, err := newRef.EvalSpec(context.Background(), trySpec)
		if err != nil {
			continue
		}
		if strings.Join(ow, "\n") != strings.Join(nw, "\n") {
			spec, oldWant, newWant = trySpec, ow, nw
			break
		}
	}
	if spec == "" {
		t.Fatal("no shared concept with distinguishable answers; pick new seeds")
	}

	gate := newGate(nil)
	eng := parowl.NewEngine(parowl.WithReasoner(gateByName(gate)))
	_, ts := newTestServer(t, Config{Engine: eng})

	if code, body := submit(t, ts, "onto", "", oldText); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	waitStatus(t, ts, "onto", StatusClassified)

	// Resubmit with new content behind the gate: status flips to
	// classifying but the old generation keeps serving.
	if code, body := submit(t, ts, "onto", "slow-two", newText); code != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d: %s", code, body)
	}
	<-gate.entered
	if got := status(t, ts, "onto"); got.Status != StatusClassifying || got.Generation != 1 {
		t.Fatalf("mid-reclassify status = %s gen %d, want classifying gen 1", got.Status, got.Generation)
	}
	if _, _, body := get(t, queryURL(ts, "onto", spec)); body != strings.Join(oldWant, "\n")+"\n" {
		t.Errorf("mid-reclassify query served new/garbled answers: %q", body)
	}

	close(gate.gate)
	info := waitStatus(t, ts, "onto", StatusClassified)
	if info.Generation != 2 {
		t.Errorf("post-swap generation = %d, want 2", info.Generation)
	}
	if _, _, body := get(t, queryURL(ts, "onto", spec)); body != strings.Join(newWant, "\n")+"\n" {
		t.Errorf("post-swap query = %q, want new generation's answer", body)
	}
}

// TestAdmissionControl fills the classify queue and checks overflow gets
// 429 + Retry-After without leaving ghost registry entries.
func TestAdmissionControl(t *testing.T) {
	t.Parallel()
	text := genOBO(t, 31, 50)

	gate := newGate(nil)
	factory := func(tb *parowl.TBox) parowl.Reasoner {
		gate.inner = parowl.NewAutoReasoner(tb)
		return gate // every classification parks until released
	}
	eng := parowl.NewEngine(parowl.WithReasoner(factory))
	_, ts := newTestServer(t, Config{Engine: eng, QueueDepth: 1, ClassifyJobs: 1})

	if code, body := submit(t, ts, "o1", "", text); code != http.StatusAccepted {
		t.Fatalf("submit o1: HTTP %d: %s", code, body)
	}
	<-gate.entered // the only worker is parked inside o1
	if code, body := submit(t, ts, "o2", "", text); code != http.StatusAccepted {
		t.Fatalf("submit o2: HTTP %d: %s", code, body)
	}
	resp, err := http.Post(ts.URL+"/ontologies?format=obo&id=o3", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit o3 with full queue: HTTP %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// The shed request leaves no registry ghost.
	if code, _, _ := get(t, ts.URL+"/ontologies/o3"); code != http.StatusNotFound {
		t.Errorf("o3 status after 429: HTTP %d, want 404", code)
	}

	close(gate.gate)
	waitStatus(t, ts, "o1", StatusClassified)
	waitStatus(t, ts, "o2", StatusClassified)
}

// blockAfterCheckpoint lets reasoner calls through until the checkpoint
// file exists, then parks every further call until cancelled — so a
// drain is guaranteed to interrupt mid-classification with a resumable
// checkpoint already on disk.
type blockAfterCheckpoint struct {
	inner parowl.Reasoner
	path  string
}

func (b *blockAfterCheckpoint) hold(ctx context.Context) error {
	if _, err := os.Stat(b.path); err != nil {
		return nil // no checkpoint yet: keep classifying
	}
	<-ctx.Done()
	return ctx.Err()
}

func (b *blockAfterCheckpoint) Sat(ctx context.Context, c *parowl.Concept) (bool, error) {
	if err := b.hold(ctx); err != nil {
		return false, err
	}
	return b.inner.Sat(ctx, c)
}

func (b *blockAfterCheckpoint) Subs(ctx context.Context, sup, sub *parowl.Concept) (bool, error) {
	if err := b.hold(ctx); err != nil {
		return false, err
	}
	return b.inner.Subs(ctx, sup, sub)
}

// TestDrainCheckpointResume drains the server mid-classification and
// checks the interrupted job left a checkpoint that a fresh server
// resumes into a taxonomy byte-identical to classifying from scratch.
func TestDrainCheckpointResume(t *testing.T) {
	t.Parallel()
	text := genOBO(t, 41, 120)
	ref := refSnapshot(t, text)
	ckdir := t.TempDir()
	ckpath := filepath.Join(ckdir, "big.ck")

	// Several random cycles over several worker groups guarantee a phase
	// boundary (checkpoint write) while subsumption tests still remain,
	// so the block below always engages mid-classification. One worker
	// would put every concept in a single cycle-1 group and settle all
	// pairs before the first boundary.
	eng := parowl.NewEngine(
		parowl.WithOptions(parowl.Options{RandomCycles: 8, Workers: 4}),
		parowl.WithReasoner(func(tb *parowl.TBox) parowl.Reasoner {
			return &blockAfterCheckpoint{inner: parowl.NewAutoReasoner(tb), path: ckpath}
		}))
	s1, ts1 := newTestServer(t, Config{Engine: eng, CheckpointDir: ckdir})

	if code, body := submit(t, ts1, "big", "", text); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	// Wait for the first phase-boundary snapshot, then drain.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint written")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	info := status(t, ts1, "big")
	if info.Status != StatusInterrupted {
		t.Fatalf("post-drain status = %s, want interrupted (err %q)", info.Status, info.Error)
	}
	if code, _ := submit(t, ts1, "other", "", text); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: HTTP %d, want 503", code)
	}
	ts1.Close()

	// A fresh server over the same checkpoint dir resumes the job.
	_, ts2 := newTestServer(t, Config{CheckpointDir: ckdir})
	if code, body := submit(t, ts2, "big", "", text); code != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d: %s", code, body)
	}
	info = waitStatus(t, ts2, "big", StatusClassified)
	if !info.Resumed {
		t.Error("resubmitted job did not resume from the checkpoint")
	}
	code, _, body := get(t, ts2.URL+"/ontologies/big/taxonomy")
	if code != http.StatusOK {
		t.Fatalf("taxonomy: HTTP %d", code)
	}
	if want := ref.Taxonomy().Render(); body != want {
		t.Errorf("resumed taxonomy differs from scratch classification (%d vs %d bytes)", len(body), len(want))
	}
}

// TestDrainFlushesQueuedJobs checks a queued-but-unstarted job is marked
// interrupted by Drain rather than left dangling.
func TestDrainFlushesQueuedJobs(t *testing.T) {
	t.Parallel()
	text := genOBO(t, 51, 50)
	gate := newGate(nil)
	factory := func(tb *parowl.TBox) parowl.Reasoner {
		gate.inner = parowl.NewAutoReasoner(tb)
		return gate
	}
	eng := parowl.NewEngine(parowl.WithReasoner(factory))
	s, ts := newTestServer(t, Config{Engine: eng, QueueDepth: 4, ClassifyJobs: 1})

	if code, _ := submit(t, ts, "running", "", text); code != http.StatusAccepted {
		t.Fatal("submit running")
	}
	<-gate.entered
	if code, _ := submit(t, ts, "parked", "", text); code != http.StatusAccepted {
		t.Fatal("submit parked")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := status(t, ts, "running").Status; got != StatusInterrupted {
		t.Errorf("running job after drain = %s, want interrupted", got)
	}
	if got := status(t, ts, "parked").Status; got != StatusInterrupted {
		t.Errorf("parked job after drain = %s, want interrupted", got)
	}
}

// TestSubmitSchedulingOverride: a submit's ?sched= parameter overrides
// the engine's policy for that one job, the effective policy is surfaced
// in the status JSON, an async-scheduled job serves the identical
// taxonomy, and unknown policy names are rejected at admission.
func TestSubmitSchedulingOverride(t *testing.T) {
	t.Parallel()
	text := genOBO(t, 9, 50)
	ref := refSnapshot(t, text)

	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/ontologies?format=obo&id=asy&sched=async",
		"text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with sched=async: HTTP %d", resp.StatusCode)
	}
	info := waitStatus(t, ts, "asy", StatusClassified)
	if info.Scheduling != "async" {
		t.Errorf("status scheduling = %q, want %q", info.Scheduling, "async")
	}
	code, _, body := get(t, ts.URL+"/ontologies/asy/taxonomy")
	if code != http.StatusOK {
		t.Fatalf("taxonomy: HTTP %d: %s", code, body)
	}
	if want := ref.Taxonomy().Render(); body != want {
		t.Errorf("async-scheduled taxonomy differs from reference:\n got:\n%s\nwant:\n%s", body, want)
	}

	// Without ?sched= the engine's default policy is used and reported.
	if code, b := submit(t, ts, "plain", "", text); code != http.StatusAccepted {
		t.Fatalf("plain submit: HTTP %d: %s", code, b)
	}
	if info := waitStatus(t, ts, "plain", StatusClassified); info.Scheduling != "roundrobin" {
		t.Errorf("default scheduling = %q, want roundrobin", info.Scheduling)
	}

	resp, err = http.Post(ts.URL+"/ontologies?format=obo&id=bad&sched=lifo",
		"text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("sched=lifo: HTTP %d, want 400", resp.StatusCode)
	}
}
