package parowl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"parowl/internal/core"
	"parowl/internal/dl"
	"parowl/internal/module"
)

// ErrNotClassified reports a query against an Ontology whose taxonomy has
// not been computed yet (no successful Classify/Resume call). Callers
// that race queries with classification — the owld daemon does — should
// treat it as "retry after classification finishes", not as a fatal
// error.
var ErrNotClassified = errors.New("parowl: ontology not classified yet")

// ErrUnknownConcept reports a query naming a concept that does not exist
// in the ontology's vocabulary.
var ErrUnknownConcept = errors.New("parowl: unknown concept name")

// Ontology is the handle for one loaded TBox and its classified state.
// It is safe for concurrent use: queries read an immutable Snapshot held
// behind an atomic pointer, and a reclassification builds a complete new
// Snapshot before swapping it in, so readers always see either the old
// taxonomy or the new one — never a half-built mix. Classification calls
// on the same handle serialize.
type Ontology struct {
	eng  *Engine
	tbox *TBox

	classifyMu sync.Mutex // one classification writer at a time
	state      atomic.Pointer[Snapshot]
	gen        atomic.Uint64

	nameOnce sync.Once
	byName   map[string]*Concept
}

// TBox returns the underlying terminology. Callers must not mutate it.
func (o *Ontology) TBox() *TBox { return o.tbox }

// Name returns the ontology's name (the TBox name).
func (o *Ontology) Name() string { return o.tbox.Name }

// Metrics returns the ontology's metric row (paper Tables IV/V columns).
func (o *Ontology) Metrics() Metrics { return dl.ComputeMetrics(o.tbox) }

// Classified reports whether the handle holds a classified taxonomy.
func (o *Ontology) Classified() bool { return o.state.Load() != nil }

// Snapshot returns the current classification generation: an immutable
// view that stays valid (and consistent) while later reclassifications
// swap in new generations. It fails with ErrNotClassified before the
// first successful classification.
func (o *Ontology) Snapshot() (*Snapshot, error) {
	s := o.state.Load()
	if s == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotClassified, o.Name())
	}
	return s, nil
}

// Taxonomy returns the current generation's taxonomy, or
// ErrNotClassified.
func (o *Ontology) Taxonomy() (*Taxonomy, error) {
	s, err := o.Snapshot()
	if err != nil {
		return nil, err
	}
	return s.tax, nil
}

// Kernel returns the current generation's compiled bit-matrix query
// kernel, compiling (and attaching) it on first use, or
// ErrNotClassified.
func (o *Ontology) Kernel() (*TaxonomyKernel, error) {
	s, err := o.Snapshot()
	if err != nil {
		return nil, err
	}
	return s.Kernel(), nil
}

// Concept resolves a concept name in the ontology's vocabulary.
func (o *Ontology) Concept(name string) (*Concept, bool) {
	o.nameOnce.Do(func() {
		o.byName = make(map[string]*Concept, o.tbox.NumNamed())
		for _, c := range o.tbox.NamedConcepts() {
			o.byName[c.Name] = c
		}
	})
	c, ok := o.byName[name]
	return c, ok
}

// Classify classifies the ontology with the Engine's base options and
// reasoner selection, swapping the result in as the new current
// generation. See ClassifyWith.
func (o *Ontology) Classify(ctx context.Context) (*Result, error) {
	return o.ClassifyWith(ctx, o.eng.Options())
}

// ClassifyWith classifies the ontology with explicit Options (the
// Engine's reasoner selection fills a nil opts.Reasoner). On success the
// result becomes the current generation, atomically replacing any prior
// one — queries issued concurrently keep reading the old Snapshot until
// the swap and the new one after it. On error the current generation is
// left untouched.
//
// Calls on the same handle serialize; use separate handles to classify
// several ontologies concurrently (the owld daemon does exactly that).
func (o *Ontology) ClassifyWith(ctx context.Context, opts Options) (*Result, error) {
	if opts.Reasoner == nil {
		opts.Reasoner = o.eng.reasonerFor(o.tbox)
	}
	o.classifyMu.Lock()
	defer o.classifyMu.Unlock()
	res, err := core.ClassifyContext(ctx, o.tbox, opts)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{ont: o, tax: res.Taxonomy, res: res, gen: o.gen.Add(1)}
	o.state.Store(snap)
	return res, nil
}

// Resume classifies the ontology restoring state from the given
// checkpoint file, and keeps checkpointing to the same file so an
// interrupted resume is itself resumable. A missing or invalid snapshot
// degrades to a clean run (reported in Result.ResumeError), never to a
// wrong taxonomy.
func (o *Ontology) Resume(ctx context.Context, checkpoint string) (*Result, error) {
	opts := o.eng.Options()
	opts.ResumeFrom = checkpoint
	opts.Checkpoint = checkpoint
	return o.ClassifyWith(ctx, opts)
}

// Adopt restores a COMPLETED classification from a checkpoint file
// without invoking any reasoner, swapping the rebuilt taxonomy in as the
// current generation. This is the restart path of a serving daemon: the
// taxonomy is rebuilt from the snapshot's K sets (byte-identical to the
// original run's) and the checkpointed kernel frame is adopted, so the
// cost is file decode plus hierarchy reconstruction — zero sat?/subs?
// calls, with the run's original Stats restored to prove it.
//
// Unlike Resume, a missing/corrupt/mismatched snapshot (wrapping
// ErrBadSnapshot) or an unfinished one (wrapping ErrIncompleteSnapshot)
// is returned as an error and the handle is left untouched — Adopt never
// falls back to reclassifying; the caller owns that decision.
func (o *Ontology) Adopt(ctx context.Context, checkpoint string) (*Result, error) {
	o.classifyMu.Lock()
	defer o.classifyMu.Unlock()
	res, err := core.Adopt(ctx, o.tbox, core.AdoptOptions{
		Snapshot: checkpoint,
		Workers:  o.eng.Options().Workers,
	})
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{ont: o, tax: res.Taxonomy, res: res, gen: o.gen.Add(1)}
	o.state.Store(snap)
	return res, nil
}

// Fingerprint hashes the ontology content checkpoint snapshots depend on
// (named-concept sequence and axioms). Two loads of the same source
// fingerprint equal; any change invalidates old checkpoints. The owld
// registry manifest records it to pair persisted entries with their
// source across restarts.
func (o *Ontology) Fingerprint() uint64 { return core.FingerprintTBox(o.tbox) }

// ClassifySequential runs the brute-force sequential baseline (every
// pair tested, one goroutine) without touching the handle's current
// generation. A nil reasoner gets the Engine's selection.
func (o *Ontology) ClassifySequential(ctx context.Context, r Reasoner) (*Taxonomy, error) {
	if r == nil {
		r = o.eng.reasonerFor(o.tbox)
	}
	return core.SequentialBruteForceContext(ctx, o.tbox, r)
}

// ClassifyEnhancedTraversal runs the classical insertion-based
// sequential algorithm (the paper's sequential comparator) without
// touching the handle's current generation. A nil reasoner gets the
// Engine's selection.
func (o *Ontology) ClassifyEnhancedTraversal(ctx context.Context, r Reasoner) (*Taxonomy, error) {
	if r == nil {
		r = o.eng.reasonerFor(o.tbox)
	}
	return core.EnhancedTraversalContext(ctx, o.tbox, r)
}

// ExtractModule computes the ⊥-locality module for the seed concept
// names and returns it as a fresh (unclassified) handle on the same
// Engine.
func (o *Ontology) ExtractModule(seedConcepts []string) (*Ontology, error) {
	m, err := module.Extract(o.tbox, seedConcepts)
	if err != nil {
		return nil, err
	}
	return o.eng.NewOntology(m), nil
}

// Write serializes the ontology to w in the given format.
func (o *Ontology) Write(w io.Writer, f Format) error { return Write(w, o.tbox, f) }

// WriteFile serializes the ontology to a file in the given format.
func (o *Ontology) WriteFile(path string, f Format) error { return WriteFile(path, o.tbox, f) }

// Snapshot is one immutable classification generation of an Ontology:
// the taxonomy, the run's Result, and the compiled query kernel. All
// methods are safe for concurrent use, and every answer a Snapshot gives
// is consistent with its own generation even while the owning Ontology
// reclassifies and swaps in newer ones.
type Snapshot struct {
	ont *Ontology
	tax *Taxonomy
	res *Result
	gen uint64
}

// Taxonomy returns the generation's subsumption DAG.
func (s *Snapshot) Taxonomy() *Taxonomy { return s.tax }

// Result returns the classification result that produced the generation.
func (s *Snapshot) Result() *Result { return s.res }

// Stats returns the generation's reasoner-usage counters.
func (s *Snapshot) Stats() Stats { return s.res.Stats }

// Generation returns the 1-based classification generation number; it
// increases with every successful (re)classification of the Ontology.
func (s *Snapshot) Generation() uint64 { return s.gen }

// Complete reports whether every reasoner test settled (no pairs left
// undecided under per-test budgets); an incomplete taxonomy is sound but
// may be missing subsumptions.
func (s *Snapshot) Complete() bool { return len(s.res.Undecided) == 0 }

// Kernel returns the generation's compiled bit-matrix query kernel,
// compiling and attaching it on first use (idempotent, concurrency-safe).
func (s *Snapshot) Kernel() *TaxonomyKernel { return s.tax.CompileKernel(0) }

// MemoryFootprint estimates the generation's resident cost in bytes: the
// taxonomy DAG plus the compiled query kernel's closure matrices (the
// dominant term — 2·n² bits — on large ontologies). A kernel that has not
// been compiled yet contributes nothing; the owld daemon always serves
// kernel-compiled snapshots, so for its eviction budget this is the real
// reclaimable size.
func (s *Snapshot) MemoryFootprint() int64 {
	total := int64(s.tax.MemoryFootprint())
	if k := s.tax.Kernel(); k != nil {
		total += int64(k.MemoryFootprint())
	}
	return total
}

// concept resolves a name or reports ErrUnknownConcept.
func (s *Snapshot) concept(name string) (*Concept, error) {
	c, ok := s.ont.Concept(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownConcept, name)
	}
	return c, nil
}

// Subsumes reports sub ⊑ sup (equivalence included) by name: one bit
// test on the compiled kernel.
func (s *Snapshot) Subsumes(sup, sub string) (bool, error) {
	cs, err := s.concept(sup)
	if err != nil {
		return false, err
	}
	cb, err := s.concept(sub)
	if err != nil {
		return false, err
	}
	return s.Kernel().Subsumes(cs, cb), nil
}

// SubsumesBatch answers many subsumption pairs — each pair is
// (sup, sub), asking sub ⊑ sup — in one call. Pairs sharing a subject
// are answered against a single kernel ancestor-row sweep, which is what
// makes batched multi-pair checks from the owld daemon cheaper than n
// independent requests.
func (s *Snapshot) SubsumesBatch(pairs [][2]string) ([]bool, error) {
	out := make([]bool, len(pairs))
	// Group the pair indices by subject so each distinct subject costs
	// one dense-ID resolution and one row sweep.
	bySub := make(map[string][]int, len(pairs))
	for i, p := range pairs {
		bySub[p[1]] = append(bySub[p[1]], i)
	}
	k := s.Kernel()
	for sub, idxs := range bySub {
		cb, err := s.concept(sub)
		if err != nil {
			return nil, err
		}
		sups := make([]*Concept, len(idxs))
		for j, i := range idxs {
			cs, err := s.concept(pairs[i][0])
			if err != nil {
				return nil, err
			}
			sups[j] = cs
		}
		for j, v := range k.SubsumesBatch(cb, sups) {
			out[idxs[j]] = v
		}
	}
	return out, nil
}

// Ancestors returns the strict ancestor nodes of the named concept.
func (s *Snapshot) Ancestors(name string) ([]*TaxonomyNode, error) {
	c, err := s.concept(name)
	if err != nil {
		return nil, err
	}
	return s.Kernel().Ancestors(c), nil
}

// Descendants returns the strict descendant nodes of the named concept.
func (s *Snapshot) Descendants(name string) ([]*TaxonomyNode, error) {
	c, err := s.concept(name)
	if err != nil {
		return nil, err
	}
	return s.Kernel().Descendants(c), nil
}

// Equivalents returns the concepts equivalent to the named one
// (including itself).
func (s *Snapshot) Equivalents(name string) ([]*Concept, error) {
	c, err := s.concept(name)
	if err != nil {
		return nil, err
	}
	return s.Kernel().Equivalents(c), nil
}

// LCA returns the lowest common ancestor nodes of the two named
// concepts (reflexive; a DAG can have several).
func (s *Snapshot) LCA(a, b string) ([]*TaxonomyNode, error) {
	ca, err := s.concept(a)
	if err != nil {
		return nil, err
	}
	cb, err := s.concept(b)
	if err != nil {
		return nil, err
	}
	return s.Kernel().LCA(ca, cb), nil
}

// Depth returns the longest ⊤-path length to the named concept's node.
func (s *Snapshot) Depth(name string) (int, error) {
	c, err := s.concept(name)
	if err != nil {
		return 0, err
	}
	return s.Kernel().Depth(c), nil
}
