package parowl_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"parowl"
)

// ExampleEngine shows the handle-based API: one Engine per process
// (policy: workers, scheduling, reasoner selection), one Ontology per
// TBox, and an immutable Snapshot per classified generation.
func ExampleEngine() {
	tb := parowl.NewTBox("pets")
	animal := tb.Declare("Animal")
	dog := tb.Declare("Dog")
	puppy := tb.Declare("Puppy")
	tb.SubClassOf(dog, animal)
	tb.SubClassOf(puppy, dog)

	eng := parowl.NewEngine(parowl.WithWorkers(2))
	ont := eng.NewOntology(tb)
	if _, err := ont.Classify(context.Background()); err != nil {
		log.Fatal(err)
	}
	snap, err := ont.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(snap.Taxonomy().Render())
	ok, _ := snap.Subsumes("Animal", "Puppy") // one bit test on the kernel
	fmt.Println("Puppy ⊑ Animal:", ok)
	// Output:
	// ⊤
	//   Animal
	//     Dog
	//       Puppy
	// Puppy ⊑ Animal: true
}

// ExampleSnapshot_EvalSpec answers the query mini-language shared by
// `owlclass -query` and the owld daemon's /query endpoint.
func ExampleSnapshot_EvalSpec() {
	tb := parowl.NewTBox("q")
	animal := tb.Declare("Animal")
	dog := tb.Declare("Dog")
	cat := tb.Declare("Cat")
	tb.SubClassOf(dog, animal)
	tb.SubClassOf(cat, animal)

	ont := parowl.NewEngine().NewOntology(tb)
	if _, err := ont.Classify(context.Background()); err != nil {
		log.Fatal(err)
	}
	snap, _ := ont.Snapshot()
	lines, err := snap.EvalSpec(context.Background(), "subsumes:Animal,Dog;lca:Dog,Cat;depth:Cat")
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range lines {
		fmt.Println(line)
	}
	// Output:
	// subsumes(Animal, Dog) = true
	// lca(Dog, Cat) = Animal
	// depth(Cat) = 2
}

// ExampleOntology_ClassifyWith reclassifies an ontology with custom
// options; queries issued against an earlier Snapshot keep seeing their
// own generation while (and after) the swap happens.
func ExampleOntology_ClassifyWith() {
	tb := parowl.NewTBox("gen")
	a := tb.Declare("A")
	tb.SubClassOf(tb.Declare("B"), a)

	ont := parowl.NewEngine().NewOntology(tb)
	if _, err := ont.Classify(context.Background()); err != nil {
		log.Fatal(err)
	}
	first, _ := ont.Snapshot()

	if _, err := ont.ClassifyWith(context.Background(), parowl.Options{Workers: 2}); err != nil {
		log.Fatal(err)
	}
	second, _ := ont.Snapshot()
	fmt.Println(first.Generation(), second.Generation(), first.Taxonomy().Equal(second.Taxonomy()))
	// Output:
	// 1 2 true
}

// ExampleClassify builds a tiny ontology programmatically and classifies
// it with the default options.
func ExampleClassify() {
	tb := parowl.NewTBox("pets")
	animal := tb.Declare("Animal")
	dog := tb.Declare("Dog")
	puppy := tb.Declare("Puppy")
	tb.SubClassOf(dog, animal)
	tb.SubClassOf(puppy, dog)

	res, err := parowl.Classify(tb, parowl.Options{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Taxonomy.Render())
	// Output:
	// ⊤
	//   Animal
	//     Dog
	//       Puppy
}

// ExampleClassify_equivalence shows equivalence detection: a defined
// concept collapses into the class it is equivalent to.
func ExampleClassify_equivalence() {
	tb := parowl.NewTBox("eq")
	f := tb.Factory
	human := tb.Declare("Human")
	person := tb.Declare("Person")
	tb.EquivalentClasses(person, human)
	tb.SubClassOf(tb.Declare("Pilot"), f.And(human, person))

	res, err := parowl.Classify(tb, parowl.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Taxonomy.Render())
	// Output:
	// ⊤
	//   Human ≡ Person
	//     Pilot
}

// ExampleTaxonomy_IsAncestor queries entailed subsumption on the result.
func ExampleTaxonomy_IsAncestor() {
	tb := parowl.NewTBox("q")
	f := tb.Factory
	bird := tb.Declare("Bird")
	penguin := tb.Declare("Penguin")
	fish := tb.Declare("Fish")
	eats := f.Role("eats")
	tb.EquivalentClasses(penguin, f.And(bird, f.Some(eats, fish)))

	res, err := parowl.Classify(tb, parowl.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Taxonomy.IsAncestor(bird, penguin))
	fmt.Println(res.Taxonomy.IsAncestor(penguin, bird))
	// Output:
	// true
	// false
}

// ExampleCompareTaxonomies diffs the classifications of two ontology
// versions — the regression check for ontology edits.
func ExampleCompareTaxonomies() {
	build := func(extra bool) *parowl.Taxonomy {
		tb := parowl.NewTBox("v")
		a, b, c := tb.Declare("A"), tb.Declare("B"), tb.Declare("C")
		tb.SubClassOf(b, a)
		tb.SubClassOf(c, a)
		if extra {
			tb.SubClassOf(c, b) // the edit: C moves under B
		}
		res, err := parowl.Classify(tb, parowl.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return res.Taxonomy
	}
	diff := parowl.CompareTaxonomies(build(false), build(true))
	fmt.Print(diff)
	// Output:
	// added subsumptions (1):
	//   C ⊑ B
}

// ExampleGenerate reproduces a corpus row from the paper's Table V and
// verifies its metric counts.
func ExampleGenerate() {
	profile, _ := parowl.ProfileByName("bridg.biomedical_domain")
	tb, err := parowl.Generate(profile, 1)
	if err != nil {
		log.Fatal(err)
	}
	m := parowl.ComputeMetrics(tb)
	fmt.Println(m.Concepts, m.Axioms, m.QCRs)
	// Output:
	// 320 6347 967
}

// ExampleClassifyContext classifies under both a whole-run deadline and a
// per-test budget. A test that exhausts its budget (plus retries) is
// recorded in Result.Undecided instead of failing the run, so the
// returned taxonomy is sound but may be missing subsumptions.
func ExampleClassifyContext() {
	tb := parowl.NewTBox("pets")
	animal := tb.Declare("Animal")
	dog := tb.Declare("Dog")
	tb.SubClassOf(dog, animal)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	res, err := parowl.ClassifyContext(ctx, tb, parowl.Options{
		Workers:     2,
		TestTimeout: 100 * time.Millisecond, // budget per sat?/subs? test
		TestRetries: 1,                      // one retry with a doubled budget
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range res.Undecided {
		fmt.Println("undecided:", u)
	}
	fmt.Print(res.Taxonomy.Render())
	// Output:
	// ⊤
	//   Animal
	//     Dog
}
