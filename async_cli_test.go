package parowl_test

// Subprocess kill-and-resume driver for the barrier-free scheduler:
// owlclass -sched async is SIGKILLed mid-run and restarted with -resume
// until a run survives. Async snapshots are cut at quiescence epochs, not
// batch barriers, so this is the OS-level proof that an epoch-consistent
// snapshot restores into the byte-identical taxonomy of an uninterrupted
// run.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestCLIKillAndResumeAsync(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill loop is slow")
	}
	dir := t.TempDir()
	owlclass := buildCmd(t, dir, "owlclass")
	ontogen := buildCmd(t, dir, "ontogen")

	onto := filepath.Join(dir, "corpus.obo")
	if out, err := exec.Command(ontogen, "-profile", "WBbt.obo", "-scale", "100", "-seed", "5", "-o", onto).CombinedOutput(); err != nil {
		t.Fatalf("ontogen: %v\n%s", err, out)
	}

	// The reference is a plain round-robin run: cross-policy equivalence
	// means the async crash loop must land on the same bytes.
	ref, err := exec.Command(owlclass, "-workers", "4", "-cycles", "6", onto).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	ck := filepath.Join(dir, "run.ck")
	common := []string{"-sched", "async", "-workers", "4", "-cycles", "6",
		"-checkpoint", ck, "-checkpoint-interval", "0", "-chaos", "slow=1ms,seed=1"}

	kills := 0
	var final []byte
	for attempt := 0; ; attempt++ {
		if attempt > 25 {
			t.Fatalf("no run survived after %d attempts (%d kills)", attempt, kills)
		}
		args := append([]string{}, common...)
		if _, err := os.Stat(ck); err == nil {
			args = append(args, "-resume", ck)
		}
		args = append(args, onto)

		var stdout, stderr bytes.Buffer
		cmd := exec.Command(owlclass, args...)
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()

		// Exponentially escalating kill delay, as in the work-stealing
		// driver: early kills land before the first snapshot, later
		// attempts run long enough to finish.
		delay := 30 * time.Millisecond
		for i := 0; i < attempt; i++ {
			delay = delay * 135 / 100
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("attempt %d: owlclass failed: %v\n%s", attempt, err, stderr.String())
			}
			for _, banned := range []string{"not resumable", "checkpoint writes failed", "undecided"} {
				if strings.Contains(stderr.String(), banned) {
					t.Fatalf("attempt %d: unexpected warning:\n%s", attempt, stderr.String())
				}
			}
			final = stdout.Bytes()
		case <-time.After(delay):
			if err := cmd.Process.Signal(syscall.SIGKILL); err == nil {
				kills++
			}
			<-done // reap; exit error expected after SIGKILL
			continue
		}
		break
	}

	if kills == 0 {
		t.Fatal("no run was actually killed; the driver proved nothing")
	}
	if !bytes.Equal(final, ref) {
		t.Errorf("async taxonomy after %d kills differs from uninterrupted round-robin run:\n got:\n%s\nwant:\n%s",
			kills, final, ref)
	}
	t.Logf("converged after %d kill(s)", kills)
}
