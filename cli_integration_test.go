package parowl_test

// End-to-end CLI coverage: each command is built once (cached by the Go
// toolchain) and exercised against generated corpora through its real
// flag surface.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd builds and runs a command from ./cmd with the given arguments.
func runCmd(t *testing.T, name string, args ...string) (string, error) {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	build := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestCLIOwlclassProfile(t *testing.T) {
	out, err := runCmd(t, "owlclass", "-profile", "obo.PREVIOUS", "-scale", "30", "-workers", "2", "-stats")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"subs tests:", "classes:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIOwlclassFileAndDot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mini.obo")
	src := "[Term]\nid: A\n\n[Term]\nid: B\nis_a: A\n\n[Term]\nid: C\nis_a: B\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t, "owlclass", path)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "⊤") || !strings.Contains(out, "  A") {
		t.Errorf("taxonomy output wrong:\n%s", out)
	}
	dot, err := runCmd(t, "owlclass", "-dot", path)
	if err != nil {
		t.Fatalf("%v\n%s", err, dot)
	}
	if !strings.HasPrefix(dot, "digraph taxonomy {") {
		t.Errorf("dot output wrong:\n%s", dot)
	}
}

func TestCLIOntogenAndTaxdiff(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.obo")
	newPath := filepath.Join(dir, "new.obo")
	if out, err := runCmd(t, "ontogen", "-profile", "WBbt.obo", "-scale", "100", "-seed", "1", "-o", oldPath); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if out, err := runCmd(t, "ontogen", "-profile", "WBbt.obo", "-scale", "100", "-seed", "2", "-o", newPath); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	// Identical inputs: exit 0 and "identical".
	same, err := runCmd(t, "taxdiff", oldPath, oldPath)
	if err != nil {
		t.Fatalf("%v\n%s", err, same)
	}
	if !strings.Contains(same, "identical") {
		t.Errorf("taxdiff output: %s", same)
	}
	// Different inputs: exit 1 and a report.
	diff, err := runCmd(t, "taxdiff", oldPath, newPath)
	if err == nil {
		t.Fatal("taxdiff exit 0 on different ontologies")
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("taxdiff err = %v\n%s", err, diff)
	}
	if !strings.Contains(diff, "subsumptions") {
		t.Errorf("taxdiff report: %s", diff)
	}
}

func TestCLIBenchfigTables(t *testing.T) {
	out, err := runCmd(t, "benchfig", "-exp", "table5")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "bridg.biomedical_domain") || !strings.Contains(out, "967") {
		t.Errorf("table5 output wrong:\n%s", out)
	}
}

func TestCLIOwlclassErrors(t *testing.T) {
	if out, err := runCmd(t, "owlclass", "-profile", "nope"); err == nil {
		t.Errorf("unknown profile accepted:\n%s", out)
	}
	if out, err := runCmd(t, "owlclass"); err == nil {
		t.Errorf("no-argument call accepted:\n%s", out)
	}
	if out, err := runCmd(t, "owlclass", "-reasoner", "bogus", "-profile", "obo.PREVIOUS", "-scale", "50"); err == nil {
		t.Errorf("bogus reasoner accepted:\n%s", out)
	}
}

func TestCLIOwlclassQueryKernel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mini.obo")
	src := "[Term]\nid: A\n\n[Term]\nid: B\nis_a: A\n\n[Term]\nid: C\nis_a: B\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	kernel := filepath.Join(dir, "mini.kernel")
	spec := "subsumes:A,C;subsumes:C,A;ancestors:C;lca:B,C;depth:C"
	wantLines := []string{
		"subsumes(A, C) = true",
		"subsumes(C, A) = false",
		"ancestors(C) = A, B, ⊤",
		"lca(B, C) = B",
		"depth(C) = 3",
	}

	out, err := runCmd(t, "owlclass", "-kernel", kernel, "-query", spec, path)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range append([]string{"query kernel saved to"}, wantLines...) {
		if !strings.Contains(out, want) {
			t.Errorf("first run missing %q:\n%s", want, out)
		}
	}

	// The second run must adopt the saved kernel and answer identically.
	out, err = runCmd(t, "owlclass", "-kernel", kernel, "-query", spec, path)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range append([]string{"query kernel adopted from"}, wantLines...) {
		if !strings.Contains(out, want) {
			t.Errorf("adopting run missing %q:\n%s", want, out)
		}
	}

	// A corrupted kernel file degrades to recompilation, never wrong
	// answers or a failed run.
	data, err := os.ReadFile(kernel)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(kernel, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = runCmd(t, "owlclass", "-kernel", kernel, "-query", spec, path)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range append([]string{"WARNING: saved kernel unreadable"}, wantLines...) {
		if !strings.Contains(out, want) {
			t.Errorf("corrupt-kernel run missing %q:\n%s", want, out)
		}
	}

	if out, err := runCmd(t, "owlclass", "-query", "frobnicate:A", path); err == nil {
		t.Errorf("unknown query op accepted:\n%s", out)
	}
	if out, err := runCmd(t, "owlclass", "-query", "depth:Nope", path); err == nil {
		t.Errorf("unknown concept accepted:\n%s", out)
	}
}
