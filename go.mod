module parowl

go 1.23
