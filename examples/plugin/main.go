// Plugin: the paper keeps its architecture universal by treating the OWL
// reasoner as a plug-in behind sat?() and subs?() (it uses HermiT; "it
// could be replaced by any other OWL reasoner"). This example implements
// a custom plug-in — a simple structural subsumption checker for
// conjunctions of names over a told hierarchy — and runs the parallel
// classifier with it, comparing the result against the built-in tableau.
//
//	go run ./examples/plugin
package main

import (
	"context"
	"fmt"
	"log"

	"parowl"
)

// toldReasoner is a toy reasoner plug-in: subsumption holds iff it follows
// from the reflexive-transitive closure of the told named hierarchy. It is
// sound and complete for TBoxes whose axioms are named SubClassOf only.
type toldReasoner struct {
	parents map[*parowl.Concept][]*parowl.Concept
}

func newToldReasoner(t *parowl.TBox) *toldReasoner {
	r := &toldReasoner{parents: map[*parowl.Concept][]*parowl.Concept{}}
	for _, ax := range t.AsGCIs() {
		if ax.Sub.Op == parowl.OpName && ax.Sup.Op == parowl.OpName {
			r.parents[ax.Sub] = append(r.parents[ax.Sub], ax.Sup)
		}
	}
	return r
}

// Sat: every named concept is satisfiable in a pure hierarchy. A plug-in
// under a deadline should honor ctx; this one answers instantly, so a
// single up-front check is all the contract requires.
func (r *toldReasoner) Sat(ctx context.Context, _ *parowl.Concept) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return true, nil
}

// Subs walks the told hierarchy upward from sub looking for sup.
func (r *toldReasoner) Subs(ctx context.Context, sup, sub *parowl.Concept) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if sup.Op == parowl.OpTop || sup == sub {
		return true, nil
	}
	seen := map[*parowl.Concept]bool{}
	var up func(c *parowl.Concept) bool
	up = func(c *parowl.Concept) bool {
		if c == sup {
			return true
		}
		if seen[c] {
			return false
		}
		seen[c] = true
		for _, p := range r.parents[c] {
			if up(p) {
				return true
			}
		}
		return false
	}
	return up(sub), nil
}

func main() {
	// A pure named hierarchy, where the toy plug-in is complete.
	tb := parowl.NewTBox("vehicles")
	vehicle := tb.Declare("Vehicle")
	car, bike := tb.Declare("Car"), tb.Declare("Bicycle")
	ev, sports := tb.Declare("ElectricCar"), tb.Declare("SportsCar")
	hyper := tb.Declare("ElectricSportsCar")
	tb.SubClassOf(car, vehicle)
	tb.SubClassOf(bike, vehicle)
	tb.SubClassOf(ev, car)
	tb.SubClassOf(sports, car)
	tb.SubClassOf(hyper, ev)
	tb.SubClassOf(hyper, sports)

	// Run the parallel classifier with the custom plug-in.
	custom, err := parowl.Classify(tb, parowl.Options{
		Reasoner: newToldReasoner(tb),
		Workers:  4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// And with the built-in tableau: the taxonomies must agree.
	builtin, err := parowl.Classify(tb, parowl.Options{
		Reasoner: parowl.NewTableauReasoner(tb),
		Workers:  4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("taxonomy from the custom told-hierarchy plug-in:")
	fmt.Print(custom.Taxonomy.Render())
	if custom.Taxonomy.Equal(builtin.Taxonomy) {
		fmt.Println("\ncustom plug-in and built-in tableau agree ✓")
	} else {
		fmt.Println("\nWARNING: plug-ins disagree")
	}
	fmt.Printf("custom plug-in answered %d subsumption tests\n", custom.Stats.SubsTests)
}
