// Quickstart: build a small ontology programmatically, classify it in
// parallel, and print the taxonomy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"parowl"
)

func main() {
	// A toy zoology TBox. The public API mirrors OWL's axiom vocabulary:
	// SubClassOf, EquivalentClasses, DisjointClasses plus the class
	// expression constructors on the Factory.
	tb := parowl.NewTBox("zoo")
	f := tb.Factory

	animal := tb.Declare("Animal")
	mammal := tb.Declare("Mammal")
	bird := tb.Declare("Bird")
	cat := tb.Declare("Cat")
	penguin := tb.Declare("Penguin")
	flying := tb.Declare("FlyingAnimal")

	eats := f.Role("eats")
	fish := tb.Declare("Fish")

	tb.SubClassOf(mammal, animal)
	tb.SubClassOf(bird, animal)
	tb.SubClassOf(fish, animal)
	tb.SubClassOf(cat, mammal)
	tb.DisjointClasses(mammal, bird)
	// A penguin is a bird that eats fish.
	tb.EquivalentClasses(penguin, f.And(bird, f.Some(eats, fish)))
	// Flying animals are animals; penguins famously do not fly.
	tb.SubClassOf(flying, animal)
	tb.DisjointClasses(penguin, flying)

	// Classify with defaults: GOMAXPROCS workers, optimized mode, and an
	// automatically selected reasoner plug-in (the tableau here, because
	// disjointness with a complement is outside pure EL... actually the
	// lowering keeps this in EL⊥, so the saturation reasoner is chosen).
	res, err := parowl.Classify(tb, parowl.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("taxonomy:")
	fmt.Print(res.Taxonomy.Render())

	fmt.Printf("\nsubsumption tests: %d (plus %d pairs pruned without testing)\n",
		res.Stats.SubsTests, res.Stats.Pruned)

	// Point queries on the result.
	fmt.Printf("Cat ⊑ Animal:      %v\n", res.Taxonomy.IsAncestor(animal, cat))
	fmt.Printf("Penguin ⊑ Animal:  %v\n", res.Taxonomy.IsAncestor(animal, penguin))
	fmt.Printf("Penguin ⊑ Mammal:  %v\n", res.Taxonomy.IsAncestor(mammal, penguin))
}
