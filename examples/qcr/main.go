// QCR: classification of a bridg-profile ontology — the paper's hardest
// corpus (Table V, 967 qualified cardinality restrictions over 320
// concepts) — with the real tableau reasoner deciding the ≥/≤
// restrictions, and a demonstration of the Fig. 10(b) speedup plateau:
// with a few tests dominating the runtime, adding workers stops helping
// at a speedup of about 4.
//
//	go run ./examples/qcr
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"parowl"
)

var scale = flag.Int("scale", 8, "shrink the bridg profile by this factor")

func main() {
	flag.Parse()

	profile, ok := parowl.ProfileByName("bridg.biomedical_domain")
	if !ok {
		log.Fatal("bridg profile missing")
	}
	if *scale > 1 {
		profile = parowl.MiniProfile(profile, *scale)
	}
	tbox, err := parowl.Generate(profile, 5)
	if err != nil {
		log.Fatal(err)
	}
	m := parowl.ComputeMetrics(tbox)
	fmt.Printf("generated %s: %d concepts, %d QCRs, DL %s\n",
		tbox.Name, m.Concepts, m.QCRs, m.Expressivity)

	// Real tableau reasoning over the qualified cardinalities.
	tab := parowl.NewTableauReasoner(tbox)
	start := time.Now()
	res, err := parowl.Classify(tbox, parowl.Options{Reasoner: tab})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tableau classification in %v: %d classes, %d tests\n",
		time.Since(start), res.Taxonomy.NumClasses(), res.Stats.SubsTests)

	unsat := len(res.Taxonomy.Bottom().Concepts) - 1
	if unsat > 0 {
		fmt.Printf("%d unsatisfiable concepts collapsed into ⊥\n", unsat)
	}

	// The Fig. 10(b) phenomenon, reproduced with the oracle plug-in and
	// a heavy-tailed cost model: a handful of subsumption tests cost a
	// quarter of the total runtime each, so speedup plateaus near 4
	// however many workers join.
	n := float64(m.Concepts)
	costs := parowl.HeavyTailCost(10*time.Millisecond, 4/(n*n), n*n/2, 5)
	oracle := parowl.NewOracleReasoner(tbox, costs)
	points, err := parowl.SpeedupSweep(tbox, oracle, []int{1, 4, 16, 64}, parowl.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nspeedup with heavy-tailed test costs (paper Fig. 10(b)):")
	for _, pt := range points {
		fmt.Printf("  w = %-3d speedup = %.2f\n", pt.Workers, pt.Speedup)
	}
}
