// Pipeline: an end-to-end ontology-engineering workflow on top of the
// public API — generate a corpus, serialize it in all three supported
// syntaxes, reload it, classify it, simulate an edit, and review the
// semantic diff. This is the maintenance loop an ontology team runs
// around the classifier.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"parowl"
)

func main() {
	dir, err := os.MkdirTemp("", "parowl-pipeline-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Generate a corpus shaped like the paper's smallest Table IV
	// ontology, scaled down further for a quick run.
	profile, _ := parowl.ProfileByName("obo.PREVIOUS")
	profile = parowl.MiniProfile(profile, 10)
	tbox, err := parowl.Generate(profile, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated: %v\n", parowl.ComputeMetrics(tbox))

	// 2. Serialize in all three syntaxes (the extension picks the format)
	// and reload from the OBO copy.
	for _, name := range []string{"onto.ofn", "onto.obo", "onto.omn"} {
		path := filepath.Join(dir, name)
		if err := parowl.WriteFile(path, tbox, parowl.DetectFormat(path)); err != nil {
			log.Fatalf("writing %s: %v", name, err)
		}
	}
	reloaded, err := parowl.LoadFile(filepath.Join(dir, "onto.obo"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded from OBO: %d concepts\n", reloaded.NumNamed())

	// 3. Classify with full tracing.
	res, err := parowl.Classify(reloaded, parowl.Options{
		Workers:      4,
		CollectTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	sum := res.Taxonomy.Summarize()
	fmt.Printf("classified: %v\n", sum)
	fmt.Printf("tests: %d (pruned %d without testing)\n", res.Stats.SubsTests, res.Stats.Pruned)

	// 4. Simulate an edit: reload and add an axiom making one root
	// concept a subclass of another, then diff the classifications.
	edited, err := parowl.LoadFile(filepath.Join(dir, "onto.obo"))
	if err != nil {
		log.Fatal(err)
	}
	named := edited.NamedConcepts()
	edited.SubClassOf(named[1], named[len(named)-1])
	res2, err := parowl.Classify(edited, parowl.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	diff := parowl.CompareTaxonomies(res.Taxonomy, res2.Taxonomy)
	fmt.Printf("\nsemantic diff after the edit (%d added entailments):\n", len(diff.AddedSubsumptions))
	for i, p := range diff.AddedSubsumptions {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(diff.AddedSubsumptions)-5)
			break
		}
		fmt.Printf("  %s ⊑ %s\n", p[0], p[1])
	}

	// 5. Export the taxonomy for visualization.
	dot := res2.Taxonomy.DOT()
	dotPath := filepath.Join(dir, "taxonomy.dot")
	if err := os.WriteFile(dotPath, []byte(dot), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGraphviz export: %d bytes (render with: dot -Tsvg %s)\n", len(dot), dotPath)
}
