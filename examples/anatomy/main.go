// Anatomy: end-to-end run on an EMAP-profile anatomy ontology — the
// largest corpus of the paper's Table IV (13 735 concepts; the Fig. 9(c)
// workload). The example generates the corpus (or a scaled-down version),
// classifies it with the concurrent EL saturation reasoner as the
// plug-in, verifies the taxonomy against the sequential brute force on a
// sample, and prints a subtree plus summary statistics.
//
//	go run ./examples/anatomy          # scaled 1/20 (fast)
//	go run ./examples/anatomy -scale 1 # full size
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"parowl"
)

var scale = flag.Int("scale", 20, "shrink the EMAP profile by this factor (1 = full 13735 concepts)")

func main() {
	flag.Parse()

	profile, ok := parowl.ProfileByName("EMAP#EMAP")
	if !ok {
		log.Fatal("EMAP profile missing")
	}
	if *scale > 1 {
		profile = parowl.MiniProfile(profile, *scale)
	}
	tbox, err := parowl.Generate(profile, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s: %v\n", tbox.Name, parowl.ComputeMetrics(tbox))

	// The corpus is EL, so the saturation reasoner applies — the same
	// division of labour as the paper's comparison with ELK.
	elr, err := parowl.NewELReasoner(tbox)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := parowl.Classify(tbox, parowl.Options{
		Reasoner:     elr,
		RandomCycles: 2,
		CollectTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classified in %v: %d taxonomy classes, %d subsumption tests, %d pruned\n",
		time.Since(start), res.Taxonomy.NumClasses(), res.Stats.SubsTests, res.Stats.Pruned)

	// Show the root region of the anatomy.
	fmt.Println("\ntop of the taxonomy:")
	top := res.Taxonomy.Top()
	for i, child := range top.Children() {
		if i >= 5 {
			fmt.Printf("  ... and %d more root classes\n", len(top.Children())-5)
			break
		}
		fmt.Printf("  %s (%d descendants)\n", child.Label(),
			len(res.Taxonomy.Descendants(child.Canonical())))
	}

	// The trace records the per-cycle behaviour of Fig. 11.
	fmt.Println("\nper-cycle trace:")
	fmt.Print(res.Trace.String())
}
