package parowl_test

// Tests for the handle-based public API: Engine construction and
// reasoner selection, Ontology generation swapping, Snapshot queries
// (including the batched kernel row sweep), the query mini-language, and
// the typed not-classified/unknown-concept errors.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"parowl"
)

func zooTBox() *parowl.TBox {
	tb := parowl.NewTBox("zoo")
	animal := tb.Declare("Animal")
	mammal := tb.Declare("Mammal")
	cat := tb.Declare("Cat")
	fish := tb.Declare("Fish")
	tb.SubClassOf(mammal, animal)
	tb.SubClassOf(cat, mammal)
	tb.SubClassOf(fish, animal)
	return tb
}

func TestOntologyUnclassifiedErrors(t *testing.T) {
	ont := parowl.NewEngine().NewOntology(zooTBox())
	if ont.Classified() {
		t.Fatal("fresh handle claims to be classified")
	}
	if _, err := ont.Snapshot(); !errors.Is(err, parowl.ErrNotClassified) {
		t.Errorf("Snapshot error = %v, want ErrNotClassified", err)
	}
	if _, err := ont.Taxonomy(); !errors.Is(err, parowl.ErrNotClassified) {
		t.Errorf("Taxonomy error = %v, want ErrNotClassified", err)
	}
	if _, err := ont.Kernel(); !errors.Is(err, parowl.ErrNotClassified) {
		t.Errorf("Kernel error = %v, want ErrNotClassified", err)
	}
}

func TestEngineReasonerFactory(t *testing.T) {
	var calls int
	eng := parowl.NewEngine(parowl.WithReasoner(func(tb *parowl.TBox) parowl.Reasoner {
		calls++
		return nil // fall back to the default auto selection
	}))
	ont := eng.NewOntology(zooTBox())
	if _, err := ont.Classify(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("factory called %d times, want 1", calls)
	}
	snap, err := ont.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := snap.Subsumes("Animal", "Cat"); !ok {
		t.Error("Cat ⊑ Animal missing after factory fallback")
	}
}

func TestSnapshotQueries(t *testing.T) {
	ont := parowl.NewEngine().NewOntology(zooTBox())
	if _, err := ont.Classify(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap, err := ont.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation() != 1 {
		t.Errorf("generation = %d, want 1", snap.Generation())
	}
	anc, err := snap.Ancestors("Cat")
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 3 { // Mammal, Animal, ⊤
		t.Errorf("ancestors(Cat) = %d nodes, want 3", len(anc))
	}
	depth, err := snap.Depth("Cat")
	if err != nil || depth != 3 {
		t.Errorf("depth(Cat) = %d, %v; want 3", depth, err)
	}
	if _, err := snap.Ancestors("Platypus"); !errors.Is(err, parowl.ErrUnknownConcept) {
		t.Errorf("unknown concept error = %v, want ErrUnknownConcept", err)
	}
	lca, err := snap.LCA("Cat", "Fish")
	if err != nil || len(lca) != 1 || lca[0].Label() != "Animal" {
		t.Errorf("lca(Cat, Fish) = %v, %v; want [Animal]", lca, err)
	}
}

// TestSubsumesBatchMatchesSingle checks the batched row-sweep answers
// are identical to pair-at-a-time Subsumes for every concept pair.
func TestSubsumesBatchMatchesSingle(t *testing.T) {
	ont := parowl.NewEngine().NewOntology(zooTBox())
	if _, err := ont.Classify(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap, err := ont.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"Animal", "Mammal", "Cat", "Fish"}
	var pairs [][2]string
	var want []bool
	for _, sup := range names {
		for _, sub := range names {
			pairs = append(pairs, [2]string{sup, sub})
			one, err := snap.Subsumes(sup, sub)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, one)
		}
	}
	got, err := snap.SubsumesBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if got[i] != want[i] {
			t.Errorf("batch[%v] = %v, single = %v", pairs[i], got[i], want[i])
		}
	}
	if _, err := snap.SubsumesBatch([][2]string{{"Animal", "Platypus"}}); !errors.Is(err, parowl.ErrUnknownConcept) {
		t.Errorf("batch with unknown concept = %v, want ErrUnknownConcept", err)
	}
}

func TestParseQueriesErrors(t *testing.T) {
	for _, tc := range []struct {
		spec, wantSub string
	}{
		{"frobnicate:A", "unknown op"},
		{"subsumes:A", "takes 2 argument(s)"},
		{"depth:A,B", "takes 1 argument(s)"},
	} {
		if _, err := parowl.ParseQueries(tc.spec); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseQueries(%q) error = %v, want substring %q", tc.spec, err, tc.wantSub)
		}
	}
	qs, err := parowl.ParseQueries("subsumes:A,B; ;ancestors:C")
	if err != nil || len(qs) != 2 {
		t.Errorf("ParseQueries = %d queries, %v; want 2, nil", len(qs), err)
	}
}

func TestParseFormat(t *testing.T) {
	for name, want := range map[string]parowl.Format{
		"obo":        parowl.FormatOBO,
		"functional": parowl.FormatFunctional,
		"ofn":        parowl.FormatFunctional,
		"manchester": parowl.FormatManchester,
		"omn":        parowl.FormatManchester,
	} {
		got, err := parowl.ParseFormat(name)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := parowl.ParseFormat("rdfxml"); err == nil {
		t.Error("ParseFormat accepted rdfxml")
	}
}

// TestGenerationSwap reclassifies while concurrent readers hold and use
// the previous Snapshot: old snapshots stay fully usable and the handle
// serves the new generation afterwards.
func TestGenerationSwap(t *testing.T) {
	ont := parowl.NewEngine().NewOntology(zooTBox())
	if _, err := ont.Classify(context.Background()); err != nil {
		t.Fatal(err)
	}
	first, err := ont.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if ok, err := first.Subsumes("Animal", "Cat"); err != nil || !ok {
					errs <- fmt.Errorf("old generation broke mid-swap: %v %v", ok, err)
					return
				}
				cur, err := ont.Snapshot()
				if err != nil {
					errs <- err
					return
				}
				if _, err := cur.Ancestors("Cat"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		if _, err := ont.ClassifyWith(context.Background(), parowl.Options{Workers: 2}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	last, err := ont.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if last.Generation() != 6 {
		t.Errorf("generation after 5 reclassifications = %d, want 6", last.Generation())
	}
	if !first.Taxonomy().Equal(last.Taxonomy()) {
		t.Error("reclassification changed the taxonomy")
	}
}

// TestDeprecatedFacade keeps the pre-handle package functions compiling
// and answering identically to the handle path.
func TestDeprecatedFacade(t *testing.T) {
	tb := zooTBox()
	res, err := parowl.Classify(tb, parowl.Options{Workers: 2}) //lint:ignore SA1019 the shim under test
	if err != nil {
		t.Fatal(err)
	}
	ont := parowl.NewEngine().NewOntology(zooTBox())
	if _, err := ont.Classify(context.Background()); err != nil {
		t.Fatal(err)
	}
	tax, err := ont.Taxonomy()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Taxonomy.Equal(tax) {
		t.Error("deprecated Classify disagrees with Ontology.Classify")
	}
	k := parowl.CompileKernel(res.Taxonomy) //lint:ignore SA1019 the shim under test
	if k == nil || k.NumClasses() != res.Taxonomy.NumClasses() {
		t.Error("deprecated CompileKernel broken")
	}
}
