// Deprecated package-level facade. Everything in this file is a thin
// shim over the handle-based API (Engine / Ontology / Snapshot in
// engine.go and ontology.go) kept so existing callers compile unchanged;
// new code should construct an Engine and go through its handles, which
// is what the cmd/ binaries and the owld daemon do.
package parowl

import (
	"context"
	"io"
)

// defaultEngine backs the deprecated package-level helpers: a
// zero-configuration Engine reproducing the historical defaults.
var defaultEngine = NewEngine()

// LoadFile loads an ontology from disk, dispatching on the extension via
// DetectFormat.
//
// Deprecated: use Engine.LoadFile, which returns an Ontology handle.
func LoadFile(path string) (*TBox, error) {
	o, err := defaultEngine.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return o.TBox(), nil
}

// Classify runs parallel TBox classification (paper Algorithm 1). If
// opts.Reasoner is nil, NewAutoReasoner picks one.
//
// Deprecated: use Engine.NewOntology and Ontology.ClassifyWith.
func Classify(t *TBox, opts Options) (*Result, error) {
	return ClassifyContext(context.Background(), t, opts)
}

// ClassifyContext is Classify with cancellation support.
//
// Deprecated: use Engine.NewOntology and Ontology.ClassifyWith.
func ClassifyContext(ctx context.Context, t *TBox, opts Options) (*Result, error) {
	return defaultEngine.NewOntology(t).ClassifyWith(ctx, opts)
}

// ClassifySequential is the brute-force sequential baseline (every pair
// tested, one goroutine).
//
// Deprecated: use Ontology.ClassifySequential.
func ClassifySequential(t *TBox, r Reasoner) (*Taxonomy, error) {
	return ClassifySequentialContext(context.Background(), t, r)
}

// ClassifySequentialContext is ClassifySequential with cancellation: the
// context reaches every reasoner call and is checked between pairs.
//
// Deprecated: use Ontology.ClassifySequential.
func ClassifySequentialContext(ctx context.Context, t *TBox, r Reasoner) (*Taxonomy, error) {
	return defaultEngine.NewOntology(t).ClassifySequential(ctx, r)
}

// ClassifyEnhancedTraversal is the classical insertion-based sequential
// algorithm used by Racer/FaCT++/HermiT (the paper's sequential
// comparator).
//
// Deprecated: use Ontology.ClassifyEnhancedTraversal.
func ClassifyEnhancedTraversal(t *TBox, r Reasoner) (*Taxonomy, error) {
	return ClassifyEnhancedTraversalContext(context.Background(), t, r)
}

// ClassifyEnhancedTraversalContext is ClassifyEnhancedTraversal with
// cancellation: the context reaches every reasoner call and is checked
// between concept insertions.
//
// Deprecated: use Ontology.ClassifyEnhancedTraversal.
func ClassifyEnhancedTraversalContext(ctx context.Context, t *TBox, r Reasoner) (*Taxonomy, error) {
	return defaultEngine.NewOntology(t).ClassifyEnhancedTraversal(ctx, r)
}

// CompileKernel compiles (and attaches) the bit-matrix query kernel for
// an already-classified taxonomy, using one worker per CPU.
//
// Deprecated: use Taxonomy.CompileKernel, Ontology.Kernel, or
// Options.CompileKernel.
func CompileKernel(t *Taxonomy) *TaxonomyKernel { return t.CompileKernel(0) }

// ExtractModule computes the ⊥-locality module of t for the seed concept
// names: the (usually much smaller) sub-ontology that preserves every
// entailment between the seeds.
//
// Deprecated: use Ontology.ExtractModule.
func ExtractModule(t *TBox, seedConcepts []string) (*TBox, error) {
	m, err := defaultEngine.NewOntology(t).ExtractModule(seedConcepts)
	if err != nil {
		return nil, err
	}
	return m.TBox(), nil
}

// WriteFunctional writes the TBox as OWL functional-style syntax.
//
// Deprecated: use Write with FormatFunctional.
func WriteFunctional(w io.Writer, t *TBox) error { return Write(w, t, FormatFunctional) }

// WriteOBO writes an EL TBox as an OBO document.
//
// Deprecated: use Write with FormatOBO.
func WriteOBO(w io.Writer, t *TBox) error { return Write(w, t, FormatOBO) }

// WriteManchester writes the TBox in Manchester syntax.
//
// Deprecated: use Write with FormatManchester.
func WriteManchester(w io.Writer, t *TBox) error { return Write(w, t, FormatManchester) }

// WriteFunctionalFile writes the TBox as OWL functional-style syntax.
//
// Deprecated: use WriteFile with FormatFunctional.
func WriteFunctionalFile(path string, t *TBox) error { return WriteFile(path, t, FormatFunctional) }

// WriteOBOFile writes an EL TBox as an OBO document.
//
// Deprecated: use WriteFile with FormatOBO.
func WriteOBOFile(path string, t *TBox) error { return WriteFile(path, t, FormatOBO) }

// WriteManchesterFile writes the TBox in Manchester syntax to a file.
//
// Deprecated: use WriteFile with FormatManchester.
func WriteManchesterFile(path string, t *TBox) error { return WriteFile(path, t, FormatManchester) }
