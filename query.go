package parowl

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Query is one parsed taxonomy query of the mini-language shared by
// `owlclass -query` and the owld daemon's /query endpoint:
//
//	subsumes:A,B       is B ⊑ A?
//	ancestors:C        strict ancestors of C
//	descendants:C      strict descendants of C
//	equivalents:C      concepts equivalent to C
//	lca:A,B            lowest common ancestor classes of A and B
//	depth:C            longest ⊤-path length to C's class
//
// Several queries join with ';' into one spec (see ParseQueries). Both
// front ends evaluate through Snapshot.Eval, so their answer lines are
// byte-identical by construction.
type Query struct {
	Op   string   // subsumes | ancestors | descendants | equivalents | lca | depth
	Args []string // concept names; arity fixed per op
}

// queryArity maps each query operation to its argument count.
var queryArity = map[string]int{
	"subsumes": 2, "lca": 2,
	"ancestors": 1, "descendants": 1, "equivalents": 1, "depth": 1,
}

// ParseQuery parses a single "op:arg[,arg]" query.
func ParseQuery(q string) (Query, error) {
	opName, rest, _ := strings.Cut(q, ":")
	opName = strings.TrimSpace(opName)
	arity, ok := queryArity[opName]
	if !ok {
		return Query{}, fmt.Errorf("query: unknown op %q (want subsumes, ancestors, descendants, equivalents, lca, or depth)", opName)
	}
	parts := strings.Split(rest, ",")
	if len(parts) != arity {
		return Query{}, fmt.Errorf("query %q: %s takes %d argument(s)", q, opName, arity)
	}
	args := make([]string, arity)
	for i, p := range parts {
		args[i] = strings.TrimSpace(p)
	}
	return Query{Op: opName, Args: args}, nil
}

// ParseQueries parses a semicolon-separated query spec; empty segments
// are skipped.
func ParseQueries(spec string) ([]Query, error) {
	var out []Query
	for _, q := range strings.Split(spec, ";") {
		q = strings.TrimSpace(q)
		if q == "" {
			continue
		}
		parsed, err := ParseQuery(q)
		if err != nil {
			return nil, err
		}
		out = append(out, parsed)
	}
	return out, nil
}

// Eval answers one query against this generation's compiled kernel and
// returns the formatted result line (without a trailing newline).
func (s *Snapshot) Eval(q Query) (string, error) {
	arity, ok := queryArity[q.Op]
	if !ok {
		return "", fmt.Errorf("query: unknown op %q (want subsumes, ancestors, descendants, equivalents, lca, or depth)", q.Op)
	}
	if len(q.Args) != arity {
		return "", fmt.Errorf("query %q: %s takes %d argument(s)", q.Op+":"+strings.Join(q.Args, ","), q.Op, arity)
	}
	args := make([]*Concept, arity)
	for i, name := range q.Args {
		c, ok := s.ont.Concept(name)
		if !ok {
			return "", fmt.Errorf("query %q: unknown concept %q", q.Op+":"+strings.Join(q.Args, ","), name)
		}
		args[i] = c
	}
	k := s.Kernel()
	switch q.Op {
	case "subsumes":
		return fmt.Sprintf("subsumes(%s, %s) = %v", args[0], args[1], k.Subsumes(args[0], args[1])), nil
	case "lca":
		return fmt.Sprintf("lca(%s, %s) = %s", args[0], args[1], nodeList(k.LCA(args[0], args[1]))), nil
	case "ancestors":
		return fmt.Sprintf("ancestors(%s) = %s", args[0], nodeList(k.Ancestors(args[0]))), nil
	case "descendants":
		return fmt.Sprintf("descendants(%s) = %s", args[0], nodeList(k.Descendants(args[0]))), nil
	case "equivalents":
		return fmt.Sprintf("equivalents(%s) = %s", args[0], conceptList(k.Equivalents(args[0]))), nil
	default: // depth; the arity table bounds the op set
		return fmt.Sprintf("depth(%s) = %d", args[0], k.Depth(args[0])), nil
	}
}

// EvalAll answers a batch of queries, one result line per query,
// checking ctx between queries so a per-request deadline cuts a long
// batch short with the context's error.
func (s *Snapshot) EvalAll(ctx context.Context, qs []Query) ([]string, error) {
	out := make([]string, 0, len(qs))
	for _, q := range qs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		line, err := s.Eval(q)
		if err != nil {
			return nil, err
		}
		out = append(out, line)
	}
	return out, nil
}

// EvalSpec parses a semicolon-separated query spec and answers it; the
// convenience form of ParseQueries + EvalAll.
func (s *Snapshot) EvalSpec(ctx context.Context, spec string) ([]string, error) {
	qs, err := ParseQueries(spec)
	if err != nil {
		return nil, err
	}
	return s.EvalAll(ctx, qs)
}

func nodeList(nodes []*TaxonomyNode) string {
	if len(nodes) == 0 {
		return "(none)"
	}
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Label()
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

func conceptList(cs []*Concept) string {
	if len(cs) == 0 {
		return "(none)"
	}
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}
