package parowl_test

// Kill-and-re-adopt drivers for the owld daemon's durable registry: the
// daemon is SIGKILLed (no drain, no goodbye) and a fresh daemon over the
// same checkpoint directory must re-adopt classified ontologies from the
// manifest with ZERO reclassification — proven by running the second
// daemon under `-chaos err=1`, where any actual reasoner call fails the
// job — and must surface mid-classify kills as resumable interruptions.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// waitOwldReady polls /readyz until it reports 200 (boot re-adoption
// finished).
func waitOwldReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never turned 200")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// manifestStatus reads an entry's status straight from registry.json.
func manifestStatus(t *testing.T, ckdir, id string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(ckdir, "registry.json"))
	if err != nil {
		return ""
	}
	var mf struct {
		Entries []struct {
			ID     string `json:"id"`
			Status string `json:"status"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &mf); err != nil {
		return ""
	}
	for _, me := range mf.Entries {
		if me.ID == id {
			return me.Status
		}
	}
	return ""
}

func TestOwldSigkillReadopt(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess daemon test is slow")
	}
	dir := t.TempDir()
	owld := buildCmd(t, dir, "owld")
	owlclass := buildCmd(t, dir, "owlclass")
	ontogen := buildCmd(t, dir, "ontogen")

	onto := filepath.Join(dir, "corpus.obo")
	if out, err := exec.Command(ontogen, "-profile", "WBbt.obo", "-scale", "80", "-seed", "5", "-o", onto).CombinedOutput(); err != nil {
		t.Fatalf("ontogen: %v\n%s", err, out)
	}
	refTaxonomy, err := exec.Command(owlclass, "-workers", "4", onto).Output()
	if err != nil {
		t.Fatalf("owlclass reference run: %v", err)
	}

	// Daemon 1 classifies the corpus, then dies by SIGKILL — no drain, so
	// only the continuously-persisted manifest survives.
	ckdir := filepath.Join(dir, "ck")
	cmd1, base1 := startOwld(t, owld, "-checkpoint-dir", ckdir, "-workers", "4")
	postOntology(t, base1, "corpus", onto)
	deadline := time.Now().Add(120 * time.Second)
	for {
		info := ontologyStatus(t, base1, "corpus")
		if info["status"] == "classified" && manifestStatus(t, ckdir, "corpus") == "classified" {
			break
		}
		if info["status"] == "failed" || time.Now().After(deadline) {
			cmd1.Process.Kill()
			t.Fatalf("classification never landed durably: %v", info)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd1.Process.Signal(syscall.SIGKILL)
	cmd1.Wait()

	// Daemon 2 re-adopts under err=1 chaos: every reasoner call fails, so
	// a classified+readopted entry proves zero reclassification ran.
	cmd2, base2 := startOwld(t, owld, "-checkpoint-dir", ckdir, "-workers", "4", "-chaos", "err=1,seed=1")
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	waitOwldReady(t, base2)
	info := ontologyStatus(t, base2, "corpus")
	if info["status"] != "classified" {
		t.Fatalf("post-kill status = %v (error %v), want classified", info["status"], info["error"])
	}
	if readopted, _ := info["readopted"].(bool); !readopted {
		t.Error("entry not flagged readopted after the restart")
	}

	resp, err := http.Get(base2 + "/ontologies/corpus/taxonomy")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(served) != string(refTaxonomy) {
		t.Errorf("re-adopted taxonomy differs from owlclass output (%d vs %d bytes)", len(served), len(refTaxonomy))
	}

	names := oboIDs(t, onto, 2)
	spec := fmt.Sprintf("subsumes:%s,%s;ancestors:%s;descendants:%s;lca:%s,%s;depth:%s",
		names[0], names[1], names[0], names[1], names[0], names[1], names[1])
	cliOut, err := exec.Command(owlclass, "-workers", "4", "-query", spec, onto).Output()
	if err != nil {
		t.Fatalf("owlclass -query: %v", err)
	}
	resp, err = http.Get(base2 + "/ontologies/corpus/query?q=" + url.QueryEscape(spec))
	if err != nil {
		t.Fatal(err)
	}
	httpOut, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after re-adoption: HTTP %d: %s", resp.StatusCode, httpOut)
	}
	if string(httpOut) != string(cliOut) {
		t.Errorf("re-adopted query answers differ from owlclass -query:\n got %q\nwant %q", httpOut, cliOut)
	}
}

func TestOwldSigkillMidClassify(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess daemon test is slow")
	}
	dir := t.TempDir()
	owld := buildCmd(t, dir, "owld")
	ontogen := buildCmd(t, dir, "ontogen")

	onto := filepath.Join(dir, "corpus.obo")
	if out, err := exec.Command(ontogen, "-profile", "WBbt.obo", "-scale", "100", "-seed", "7", "-o", onto).CombinedOutput(); err != nil {
		t.Fatalf("ontogen: %v\n%s", err, out)
	}

	// Daemon 1: chaos slow-down stretches the job; SIGKILL lands after
	// the first phase-boundary checkpoint, mid-classification.
	ckdir := filepath.Join(dir, "ck")
	cmd1, base1 := startOwld(t, owld,
		"-checkpoint-dir", ckdir, "-checkpoint-interval", "0",
		"-workers", "4", "-cycles", "6", "-chaos", "slow=1ms,seed=2")
	postOntology(t, base1, "corpus", onto)
	ckfile := filepath.Join(ckdir, "corpus.ck")
	deadline := time.Now().Add(120 * time.Second)
	for {
		if _, err := os.Stat(ckfile); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd1.Process.Kill()
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd1.Process.Signal(syscall.SIGKILL)
	cmd1.Wait()

	// Daemon 2 finds the kill in the manifest: the entry is restored as
	// interrupted (not lost, not stuck in-flight) and a resubmission
	// resumes from the surviving checkpoint.
	cmd2, base2 := startOwld(t, owld, "-checkpoint-dir", ckdir, "-workers", "4")
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	waitOwldReady(t, base2)
	info := ontologyStatus(t, base2, "corpus")
	if info["status"] != "interrupted" {
		t.Fatalf("mid-classify kill surfaced as %v, want interrupted", info["status"])
	}
	if msg, _ := info["error"].(string); !strings.Contains(msg, "resubmit") {
		t.Errorf("interrupted entry should tell the operator to resubmit, got %q", msg)
	}

	postOntology(t, base2, "corpus", onto)
	deadline = time.Now().Add(120 * time.Second)
	for {
		info = ontologyStatus(t, base2, "corpus")
		if info["status"] == "classified" {
			break
		}
		if info["status"] == "failed" || time.Now().After(deadline) {
			t.Fatalf("resumed classification stuck: %v", info)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if resumed, _ := info["resumed"].(bool); !resumed {
		t.Error("daemon 2 classified from scratch instead of resuming the killed job's checkpoint")
	}
}
