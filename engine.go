package parowl

import (
	"io"
	"os"
	"path/filepath"
	"strings"

	"parowl/internal/manchester"
	"parowl/internal/obo"
	"parowl/internal/owlfss"
)

// ReasonerFactory builds the reasoner plug-in an Engine uses for an
// ontology when a classification call does not name one explicitly.
// NewAutoReasoner is the default.
type ReasonerFactory func(*TBox) Reasoner

// Engine is the package's top-level handle: a reasoner selection policy
// plus the base classification Options applied to every ontology it
// loads. One Engine serves any number of Ontology handles concurrently —
// a long-lived process (the owld daemon, a test harness, an embedding
// application) builds one Engine at startup and goes through it for all
// loading and classification.
//
// The zero-argument NewEngine() reproduces the package's historical
// defaults: auto-selected reasoner, optimized mode, round-robin
// scheduling, GOMAXPROCS workers.
type Engine struct {
	base    Options
	factory ReasonerFactory
}

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine)

// WithOptions sets the base Options template every classification
// started through this Engine inherits (per-call Options passed to
// Ontology.ClassifyWith replace the template entirely). The template's
// Reasoner field is ignored; reasoner selection goes through
// WithReasoner.
func WithOptions(o Options) EngineOption {
	return func(e *Engine) {
		o.Reasoner = nil
		e.base = o
	}
}

// WithWorkers sets the worker pool size of the base template.
func WithWorkers(n int) EngineOption {
	return func(e *Engine) { e.base.Workers = n }
}

// WithScheduling sets the scheduling policy of the base template.
func WithScheduling(s Scheduling) EngineOption {
	return func(e *Engine) { e.base.Scheduling = s }
}

// WithReasoner sets the factory that builds a reasoner plug-in per
// ontology; nil restores the default NewAutoReasoner selection.
func WithReasoner(f ReasonerFactory) EngineOption {
	return func(e *Engine) { e.factory = f }
}

// NewEngine builds an Engine from the given options.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Options returns a copy of the Engine's base classification template
// (Reasoner always nil; it is chosen per ontology).
func (e *Engine) Options() Options { return e.base }

// reasonerFor picks the plug-in for t: the configured factory, or the
// automatic EL-vs-tableau selection.
func (e *Engine) reasonerFor(t *TBox) Reasoner {
	if e.factory != nil {
		if r := e.factory(t); r != nil {
			return r
		}
	}
	return NewAutoReasoner(t)
}

// NewOntology wraps an in-memory TBox in an Ontology handle bound to
// this Engine. The TBox must not be mutated afterwards.
func (e *Engine) NewOntology(t *TBox) *Ontology {
	return &Ontology{eng: e, tbox: t}
}

// Load parses an ontology from r in the given format and returns its
// handle. name becomes the TBox name (shown in metrics and listings).
func (e *Engine) Load(r io.Reader, name string, f Format) (*Ontology, error) {
	var (
		t   *TBox
		err error
	)
	switch f {
	case FormatOBO:
		t, err = obo.Parse(r, name)
	case FormatManchester:
		t, err = manchester.Parse(r, name)
	default:
		t, err = owlfss.Parse(r, name)
	}
	if err != nil {
		return nil, err
	}
	return e.NewOntology(t), nil
}

// LoadFile loads an ontology from disk, dispatching on the extension via
// DetectFormat, and returns its handle.
func (e *Engine) LoadFile(path string) (*Ontology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return e.Load(f, name, DetectFormat(path))
}

// Generate builds a synthetic corpus from a Table IV/V profile and
// returns its handle (see Profiles and MiniProfile for the available
// shapes).
func (e *Engine) Generate(p Profile, seed int64) (*Ontology, error) {
	t, err := p.Generate(seed)
	if err != nil {
		return nil, err
	}
	return e.NewOntology(t), nil
}
