// Command ontogen emits a synthetic corpus from the paper's Table IV/V
// profiles as an OWL functional-style-syntax or OBO file, or converts an
// existing ontology between the two formats.
//
//	ontogen -profile WBbt.obo -o wbbt.obo            # generate as OBO
//	ontogen -profile bridg.biomedical_domain -o b.ofn # generate as OWL FSS
//	ontogen -list                                     # list profiles
//	ontogen -in anatomy.obo -o anatomy.ofn            # convert formats
//
// The output format follows the -o extension: .obo writes OBO (EL
// ontologies only), .omn writes Manchester syntax, everything else writes
// functional-style syntax.
package main

import (
	"flag"
	"fmt"
	"os"

	"parowl"
)

var (
	profileFlag = flag.String("profile", "", "Table IV/V profile to generate")
	scaleFlag   = flag.Int("scale", 1, "shrink the profile by this factor")
	seedFlag    = flag.Int64("seed", 1, "generation seed")
	inFlag      = flag.String("in", "", "input ontology to convert instead of generating")
	outFlag     = flag.String("o", "", "output path (.obo = OBO, otherwise OWL FSS); - or empty = stdout as FSS")
	listFlag    = flag.Bool("list", false, "list the available profiles and exit")
	metricsFlag = flag.Bool("metrics", false, "print the metrics row of the result to stderr")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ontogen:", err)
		os.Exit(1)
	}
}

func run() error {
	if *listFlag {
		fmt.Printf("%-26s %9s %8s %6s %8s\n", "profile", "concepts", "axioms", "qcrs", "dl")
		for _, p := range parowl.Profiles() {
			fmt.Printf("%-26s %9d %8d %6d %8s\n", p.Name, p.Concepts, p.Axioms, p.QCRs, p.PaperExpressivity)
		}
		return nil
	}

	var (
		tbox *parowl.TBox
		err  error
	)
	switch {
	case *inFlag != "":
		tbox, err = parowl.LoadFile(*inFlag)
	case *profileFlag != "":
		p, ok := parowl.ProfileByName(*profileFlag)
		if !ok {
			return fmt.Errorf("unknown profile %q (try -list)", *profileFlag)
		}
		if *scaleFlag > 1 {
			p = parowl.MiniProfile(p, *scaleFlag)
		}
		tbox, err = parowl.Generate(p, *seedFlag)
	default:
		return fmt.Errorf("need -profile NAME or -in FILE (see -list)")
	}
	if err != nil {
		return err
	}
	if *metricsFlag {
		fmt.Fprintln(os.Stderr, parowl.ComputeMetrics(tbox))
	}

	if *outFlag == "" || *outFlag == "-" {
		return parowl.Write(os.Stdout, tbox, parowl.FormatFunctional)
	}
	return parowl.WriteFile(*outFlag, tbox, parowl.DetectFormat(*outFlag))
}
