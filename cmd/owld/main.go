// Command owld is the classification-as-a-service daemon: a long-lived
// HTTP server holding an ontology registry with warm classified state.
// Clients submit ontology documents, classification runs asynchronously
// through a bounded admission queue, and taxonomy queries are answered
// from the compiled bit-matrix kernel — concurrently with in-flight
// classification, and from the previous generation during a
// reclassification.
//
//	owld -addr :8080 -checkpoint-dir /var/lib/owld
//
//	curl -d @anatomy.obo 'localhost:8080/ontologies?id=anatomy&format=obo'
//	curl 'localhost:8080/ontologies/anatomy'
//	curl 'localhost:8080/ontologies/anatomy/query?q=ancestors:A;subsumes:A,B'
//
// SIGTERM/SIGINT drain gracefully: in-flight classification jobs get
// -drain-grace to finish, are then cancelled, and their phase-boundary
// checkpoints (under -checkpoint-dir) make a resubmission after restart
// resume instead of restarting from scratch.
//
// With -checkpoint-dir the registry itself is durable: a versioned,
// checksummed registry.json manifest records every entry, and a restart
// (graceful or SIGKILL) re-adopts classified ontologies from their
// checkpoints with zero reclassification — /readyz reports 503 until
// re-adoption finishes. -max-resident-bytes bounds warm memory: cold
// classified entries are evicted to disk and transparently reloaded on
// their next query (the first such query pays the checkpoint decode).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parowl"
	"parowl/internal/server"
)

var (
	addr               = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	checkpointDir      = flag.String("checkpoint-dir", "", "directory for per-ontology classification checkpoints (empty = no checkpointing)")
	checkpointInterval = flag.Duration("checkpoint-interval", time.Second, "minimum time between checkpoint snapshots (0 = every phase boundary)")
	queueDepth         = flag.Int("queue", 16, "classify admission queue depth; submissions beyond it get 429")
	jobs               = flag.Int("jobs", 2, "concurrent classification jobs")
	classifyTimeout    = flag.Duration("classify-timeout", 0, "wall-time cap per classification job (0 = none)")
	requestTimeout     = flag.Duration("request-timeout", 30*time.Second, "default deadline per query request")
	drainGrace         = flag.Duration("drain-grace", 5*time.Second, "how long a drain lets in-flight jobs finish before cancelling them")
	maxResidentBytes   = flag.Int64("max-resident-bytes", 0, "memory budget for warm classified state; LRU entries beyond it are evicted to their checkpoints and reloaded on demand (0 = unlimited; requires -checkpoint-dir)")
	retryBudget        = flag.Int("retry", 2, "automatic retries for transiently-failed classify jobs (chaos faults, job timeouts), with exponential backoff (0 = none)")
	retryBase          = flag.Duration("retry-base", 500*time.Millisecond, "first retry backoff delay; doubles per attempt")
	retryMax           = flag.Duration("retry-max", 30*time.Second, "backoff cap for classify retries")

	workers = flag.Int("workers", 0, "classification worker pool size (0 = GOMAXPROCS)")
	cycles  = flag.Int("cycles", 2, "random-division cycles")
	sched   = flag.String("sched", "roundrobin", "default scheduling policy: roundrobin | worksharing | workstealing | async (per-submit ?sched= overrides)")
	plugin  = flag.String("reasoner", "auto", "auto | tableau | tableau-mm | el")
	chaos   = flag.String("chaos", "", "inject reasoner faults, e.g. slow=1ms,seed=7 (testing only)")

	readyFile = flag.String("ready-file", "", "write the server's base URL to this file once listening (for scripts)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "owld:", err)
		os.Exit(1)
	}
}

func run() error {
	switch *plugin {
	case "auto", "tableau", "tableau-mm", "el":
	default:
		return fmt.Errorf("unknown -reasoner %q", *plugin)
	}
	var chaosOpts *parowl.ChaosOptions
	if *chaos != "" {
		co, err := parowl.ParseChaos(*chaos)
		if err != nil {
			return err
		}
		chaosOpts = &co
		log.Printf("owld: WARNING: chaos fault injection active (%s)", *chaos)
	}
	scheduling, err := parowl.ParseScheduling(*sched)
	if err != nil {
		return err
	}

	eng := parowl.NewEngine(
		parowl.WithOptions(parowl.Options{
			Workers:      *workers,
			RandomCycles: *cycles,
			Scheduling:   scheduling,
		}),
		parowl.WithReasoner(func(tb *parowl.TBox) parowl.Reasoner {
			var r parowl.Reasoner
			switch *plugin {
			case "tableau":
				r = parowl.NewTableauReasoner(tb)
			case "tableau-mm":
				r = parowl.NewTableauReasonerMM(tb)
			case "el":
				el, err := parowl.NewELReasoner(tb)
				if err != nil {
					log.Printf("owld: %s outside the EL fragment, using auto selection: %v", tb.Name, err)
					r = parowl.NewAutoReasoner(tb)
				} else {
					r = el
				}
			default:
				r = parowl.NewAutoReasoner(tb)
			}
			if chaosOpts != nil {
				r = parowl.NewChaosReasoner(r, *chaosOpts)
			}
			return r
		}),
	)

	srv, err := server.New(server.Config{
		Engine:             eng,
		CheckpointDir:      *checkpointDir,
		CheckpointInterval: *checkpointInterval,
		QueueDepth:         *queueDepth,
		ClassifyJobs:       *jobs,
		ClassifyTimeout:    *classifyTimeout,
		RequestTimeout:     *requestTimeout,
		DrainGrace:         *drainGrace,
		MaxResidentBytes:   *maxResidentBytes,
		RetryBudget:        *retryBudget,
		RetryBaseDelay:     *retryBase,
		RetryMaxDelay:      *retryMax,
		Logf:               log.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("owld: listening on %s", ln.Addr())
	if *readyFile != "" {
		url := "http://" + ln.Addr().String()
		if err := os.WriteFile(*readyFile, []byte(url+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("ready file: %w", err)
		}
	}

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-serveErr:
		return err
	case got := <-sig:
		log.Printf("owld: %v: draining (grace %v)", got, *drainGrace)
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace+30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("owld: drain: %v", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		log.Printf("owld: drained; checkpoints for interrupted jobs remain resumable")
		return nil
	}
}
