// Command benchfig regenerates every table and figure of the paper's
// evaluation section (Quan & Haarslev, ICPP 2017):
//
//	benchfig -exp table4    # Table IV: metrics of the 9 scalability corpora
//	benchfig -exp table5    # Table V: metrics of the 5 QCR corpora
//	benchfig -exp fig9a     # speedup vs workers, small ontologies
//	benchfig -exp fig9b     # speedup vs workers, medium ontologies
//	benchfig -exp fig9c     # speedup vs workers, large ontologies
//	benchfig -exp fig10a    # speedup vs workers, QCR group q≈40
//	benchfig -exp fig10b    # speedup vs workers, QCR group q∈{446,967}
//	benchfig -exp fig11     # possible/runtime ratio per division cycle
//	benchfig -exp all
//
// Speedup experiments follow the paper's methodology on commodity
// hardware: the real classifier runs with a w-worker pool against the
// oracle plug-in (each test charged a deterministic virtual cost), and the
// dispatched task stream is replayed on w virtual workers (see DESIGN.md
// §3, substitution 3). Speedup is the paper's metric: sum of all thread
// runtimes divided by elapsed time.
//
// -scale N (default 4) divides corpus sizes by N and the overhead model by
// N² so curve shapes are preserved while runs stay fast; use -scale 1 to
// reproduce at full corpus size.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"parowl"
	"parowl/internal/core"
	"parowl/internal/dl"
	"parowl/internal/ontogen"
	"parowl/internal/reasoner"
	"parowl/internal/schedsim"
	"parowl/internal/tableau"
)

var (
	expFlag     = flag.String("exp", "all", "experiment: table4|table5|fig9a|fig9b|fig9c|fig10a|fig10b|fig11|balance|future|tableau|classify|sched|async|query|all")
	seedFlag    = flag.Int64("seed", 1, "corpus generation and shuffle seed")
	scaleFlag   = flag.Int("scale", 4, "divide corpus sizes by this factor (1 = full size)")
	cyclesFlag  = flag.Int("cycles", 2, "random-division cycles for speedup runs")
	repeatsFlag = flag.Int("repeats", 3, "repetitions per point, averaged (the paper uses 3)")
	bigNFlag    = flag.Int("bign", 20000, "concept count for the -exp future large-scale run")
	csvFlag     = flag.String("csv", "", "also write each speedup curve / ratio series as CSV into this directory")
	benchOut    = flag.String("benchout", "BENCH_tableau.json", "output path for the -exp tableau microbenchmark results")

	classifyOut     = flag.String("classifyout", "BENCH_classify.json", "output path for the -exp classify results")
	classifyScale   = flag.Int("classifyscale", 16, "corpus scale divisor for -exp classify (real tableau reasoning; larger = faster)")
	classifyWorkers = flag.Int("classifyworkers", 8, "worker count for -exp classify")

	schedOut     = flag.String("schedout", "BENCH_sched.json", "output path for the -exp sched results")
	schedScale   = flag.Int("schedscale", 12, "corpus scale divisor for -exp sched")
	schedWorkers = flag.Int("schedworkers", 8, "worker count for -exp sched")
	schedCorpus  = flag.String("schedcorpus", "", "classify this ontology file for -exp sched instead of a generated profile (see scripts/corpus.sh)")

	asyncOut     = flag.String("asyncout", "BENCH_async.json", "output path for the -exp async results")
	asyncScale   = flag.Int("asyncscale", 12, "corpus scale divisor for -exp async")
	asyncWorkers = flag.Int("asyncworkers", 8, "worker count for -exp async")
	asyncCorpus  = flag.String("asynccorpus", "", "classify this ontology file for -exp async instead of a generated profile")
)

func main() {
	flag.Parse()
	exps := map[string]func() error{
		"table4": table4, "table5": table5,
		"fig9a": func() error { return fig9("fig9a", []string{"obo.PREVIOUS", "EHDAA2", "MIRO#MIRO"}, workers140) },
		"fig9b": func() error { return fig9("fig9b", []string{"CLEMAPA", "WBbt.obo", "actpathway.obo"}, workers140) },
		"fig9c": func() error { return fig9("fig9c", []string{"EHDA#EHDA", "lanogaster.obo", "EMAP#EMAP"}, workers140) },
		"fig10a": func() error {
			return fig10("fig10a", []string{"ddiv2_functional", "nskisimple_functional", "ncitations_functional"}, workers80)
		},
		"fig10b": func() error {
			return fig10("fig10b", []string{"rnao_functional", "bridg.biomedical_domain"}, workers80)
		},
		"fig11":    fig11,
		"balance":  balance,
		"future":   future,        // not part of "all": several minutes of work
		"tableau":  tableauHot,    // not part of "all": hot-path microbenchmarks
		"classify": classifyBench, // not part of "all": real end-to-end reasoning
		"sched":    schedBench,    // not part of "all": wall-clock scheduler comparison
		"async":    asyncBench,    // not part of "all": barrier-free vs workstealing
		"query":    queryBench,    // not part of "all": kernel-vs-DAG query latency
	}
	order := []string{"table4", "table5", "fig9a", "fig9b", "fig9c", "fig10a", "fig10b", "fig11", "balance"}
	run := func(name string) {
		fmt.Printf("\n================ %s ================\n", name)
		start := time.Now()
		if err := exps[name](); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
	if *expFlag == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	if _, ok := exps[*expFlag]; !ok {
		fmt.Fprintf(os.Stderr, "benchfig: unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
	run(*expFlag)
}

var (
	workers140 = []int{1, 2, 4, 8, 16, 20, 32, 48, 64, 80, 100, 120, 140}
	workers80  = []int{1, 2, 4, 8, 16, 24, 32, 48, 64, 80}
)

// table4 and table5 print generated-vs-paper metric rows.
func table4() error {
	fmt.Printf("%-16s %9s %9s %11s %14s   (paper values in parentheses)\n",
		"Ontology", "Concepts", "Axioms", "SubClassOf", "Expressivity")
	for _, p := range ontogen.TableIV {
		tb, err := p.Generate(*seedFlag)
		if err != nil {
			return err
		}
		m := dl.ComputeMetrics(tb)
		fmt.Printf("%-16s %9d %9d %11d %14s   (%d, %d, %d, %s)\n",
			p.Name, m.Concepts, m.Axioms, m.SubClassOf, m.Expressivity,
			p.Concepts, p.Axioms, p.SubClassOf, p.PaperExpressivity)
	}
	return nil
}

func table5() error {
	fmt.Printf("%-24s %8s %7s %7s %6s %7s %6s %6s %5s %8s %10s\n",
		"Ontology", "Concepts", "Axioms", "SubCls", "QCRs", "Somes", "Alls", "Equiv", "Disj", "DL", "paper DL")
	for _, p := range ontogen.TableV {
		tb, err := p.Generate(*seedFlag)
		if err != nil {
			return err
		}
		m := dl.ComputeMetrics(tb)
		fmt.Printf("%-24s %8d %7d %7d %6d %7d %6d %6d %5d %8s %10s\n",
			p.Name, m.Concepts, m.Axioms, m.SubClassOf, m.QCRs, m.Somes, m.Alls,
			m.Equivalent, m.Disjoint, m.Expressivity, p.PaperExpressivity)
	}
	return nil
}

// scaledProfile shrinks a profile by -scale.
func scaledProfile(name string) (ontogen.Profile, error) {
	p, ok := ontogen.ByName(name)
	if !ok {
		return p, fmt.Errorf("unknown profile %q", name)
	}
	if *scaleFlag > 1 {
		p = ontogen.Mini(p, *scaleFlag)
	}
	return p, nil
}

// overhead returns the calibrated scheduling-cost model, shrunk with the
// square of the scale factor so peak positions are preserved (the peak
// falls at w* ≈ sqrt(T/(cycles·β)) and T scales with n²).
func overhead() schedsim.Overhead {
	return overheadAtScale(*scaleFlag)
}

// sweep runs the classifier at every worker count and prints the curve.
// Each point is the average of -repeats runs with different shuffle seeds,
// exactly as the paper averages three repetitions per experiment.
func sweep(p ontogen.Profile, cost reasoner.CostModel, workers []int) ([]schedsim.SweepPoint, error) {
	tb, err := p.Generate(*seedFlag)
	if err != nil {
		return nil, err
	}
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{
		SubsCost: cost,
		SatCost:  500 * time.Microsecond,
	})
	repeats := *repeatsFlag
	if repeats < 1 {
		repeats = 1
	}
	ov := overhead()
	out := make([]schedsim.SweepPoint, 0, len(workers))
	for _, w := range workers {
		var elapsed, runtime time.Duration
		for rep := 0; rep < repeats; rep++ {
			res, err := core.Classify(tb, core.Options{
				Reasoner: oracle, Workers: w, RandomCycles: *cyclesFlag,
				Seed: *seedFlag + int64(rep), CollectTrace: true,
			})
			if err != nil {
				return nil, err
			}
			r := schedsim.Simulate(res.Trace, w, ov, core.RoundRobin)
			elapsed += r.Elapsed
			runtime += r.Runtime
		}
		elapsed /= time.Duration(repeats)
		runtime /= time.Duration(repeats)
		pt := schedsim.SweepPoint{Workers: w, Elapsed: elapsed, Runtime: runtime}
		if elapsed > 0 {
			pt.Speedup = float64(runtime) / float64(elapsed)
		}
		out = append(out, pt)
	}
	return out, nil
}

func printCurve(name string, n int, points []schedsim.SweepPoint) {
	fmt.Printf("\n%s (n = %d concepts)\n", name, n)
	fmt.Printf("  %-8s %-10s %-14s %s\n", "workers", "speedup", "elapsed", "runtime")
	for _, pt := range points {
		fmt.Printf("  %-8d %-10.2f %-14v %v\n", pt.Workers, pt.Speedup,
			pt.Elapsed.Round(time.Millisecond), pt.Runtime.Round(time.Millisecond))
	}
	fmt.Printf("  peak speedup at w = %d\n", schedsim.PeakWorkers(points))
	if *csvFlag != "" {
		if err := writeCurveCSV(name, points); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig: csv:", err)
		}
	}
}

// writeCurveCSV stores one curve as workers,speedup,elapsed_ms,runtime_ms.
func writeCurveCSV(name string, points []schedsim.SweepPoint) error {
	if err := os.MkdirAll(*csvFlag, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(*csvFlag, sanitizeFile(name)+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"workers", "speedup", "elapsed_ms", "runtime_ms"}); err != nil {
		return err
	}
	for _, pt := range points {
		rec := []string{
			strconv.Itoa(pt.Workers),
			strconv.FormatFloat(pt.Speedup, 'f', 3, 64),
			strconv.FormatFloat(float64(pt.Elapsed)/1e6, 'f', 3, 64),
			strconv.FormatFloat(float64(pt.Runtime)/1e6, 'f', 3, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

func sanitizeFile(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// fig9 reproduces the uniform-cost scalability curves (paper Fig. 9):
// HermiT's per-test times are "rather uniform" on the Table IV corpora.
func fig9(label string, names []string, workers []int) error {
	fmt.Printf("%s: speedup vs workers, uniform 1ms tests, scale 1/%d\n", label, *scaleFlag)
	fmt.Println("paper: small ontologies peak at 20-32 workers then degrade;")
	fmt.Println("       medium/large ontologies keep scaling through w = 140")
	for _, name := range names {
		p, err := scaledProfile(name)
		if err != nil {
			return err
		}
		points, err := sweep(p, reasoner.UniformCost(time.Millisecond, 0.2, uint64(*seedFlag)), workers)
		if err != nil {
			return err
		}
		printCurve(name, p.Concepts, points)
	}
	return nil
}

// fig10 reproduces the QCR-corpus curves (paper Fig. 10): moderate QCR
// counts behave uniformly; rnao (q=446) still scales; bridg (q=967) hits
// a handful of very expensive tests and plateaus near speedup 4.
func fig10(label string, names []string, workers []int) error {
	fmt.Printf("%s: speedup vs workers on QCR corpora, scale 1/%d\n", label, *scaleFlag)
	fmt.Println("paper: q≈40 and q=446 scale with w; q=967 (bridg) plateaus at ≈4")
	// QCR/SROIQ subsumption tests are roughly an order of magnitude
	// more expensive for HermiT than EL-corpus tests, which is why the
	// paper's small QCR ontologies still scale at 80 workers while
	// similar-sized EL ontologies already degrade: per-test cost
	// dominates the scheduling overhead. Base cost 10ms models that.
	const qcrBase = 10 * time.Millisecond
	for _, name := range names {
		p, err := scaledProfile(name)
		if err != nil {
			return err
		}
		cost := reasoner.UniformCost(qcrBase, 0.3, uint64(*seedFlag))
		if name == "bridg.biomedical_domain" {
			// A few tests consume ~25% of the total runtime each
			// (paper Sec. V-B): ~3 hard tests, each costing about a
			// quarter of the uniform total.
			n := float64(p.Concepts)
			cost = reasoner.HeavyTailCost(qcrBase, 4/(n*n), n*n/2, uint64(*seedFlag))
		} else if name == "rnao_functional" {
			// Many moderately hard tests: a heavy tail that still
			// parallelizes (the paper reports a good speedup for q=446).
			cost = reasoner.HeavyTailCost(qcrBase, 0.001, 50, uint64(*seedFlag))
		}
		points, err := sweep(p, cost, workers)
		if err != nil {
			return err
		}
		printCurve(fmt.Sprintf("%s (QCRs = %d)", name, p.QCRs), p.Concepts, points)
	}
	return nil
}

// fig11 reproduces the load-balancing measurement (paper Fig. 11):
// ncitations_functional, 10 workers, 10 random-division cycles, then
// group division; per cycle the Possible ratio (Definition 3) and the
// accumulated runtime ratio.
func fig11() error {
	p, ok := ontogen.ByName("ncitations_functional")
	if !ok {
		return fmt.Errorf("ncitations profile missing")
	}
	tb, err := p.Generate(*seedFlag)
	if err != nil {
		return err
	}
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{
		SubsCost: reasoner.UniformCost(time.Millisecond, 0.2, uint64(*seedFlag)),
		SatCost:  500 * time.Microsecond,
	})
	res, err := core.Classify(tb, core.Options{
		Reasoner: oracle, Workers: 10, RandomCycles: 10,
		Seed: *seedFlag, CollectTrace: true,
	})
	if err != nil {
		return err
	}
	tr := res.Trace
	fmt.Printf("fig11: ncitations_functional, concepts = %d, workers = 10, 10 random cycles\n", p.Concepts)
	fmt.Println("paper: Possible reaches ≈60% across the random cycles, tracking the runtime ratio")
	fmt.Printf("  %-6s %-10s %-12s %-12s %-10s %-10s\n", "cycle", "phase", "possible%", "runtime%", "tests", "pruned")
	for i, c := range tr.Cycles {
		fmt.Printf("  %-6d %-10s %-12.1f %-12.1f %-10d %-10d\n",
			i+1, c.Phase, tr.PossibleRatio(i), tr.RuntimeRatio(i), c.SubsTests, c.Pruned)
	}
	fmt.Printf("total tests = %d, pruned without testing = %d\n",
		res.Stats.SubsTests, res.Stats.Pruned)
	return nil
}

// balance quantifies the paper's Sec. V-C observation: "the first (random
// division) phase exhibits a better load balancing than the second (group
// division) phase". Per cycle it reports the imbalance factor — max
// worker load over mean worker load (1.0 = perfect).
func balance() error {
	p, ok := ontogen.ByName("ncitations_functional")
	if !ok {
		return fmt.Errorf("ncitations profile missing")
	}
	tb, err := p.Generate(*seedFlag)
	if err != nil {
		return err
	}
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{
		SubsCost: reasoner.UniformCost(time.Millisecond, 0.2, uint64(*seedFlag)),
	})
	res, err := core.Classify(tb, core.Options{
		Reasoner: oracle, Workers: 10, RandomCycles: 3,
		Seed: *seedFlag, CollectTrace: true,
	})
	if err != nil {
		return err
	}
	fmt.Println("balance: per-cycle imbalance (max worker load / mean), 10 workers")
	fmt.Println("paper (Sec. V-C): the random-division phase balances better than group division")
	var rnd, grp []float64
	fmt.Printf("  %-6s %-10s %-8s %-10s\n", "cycle", "phase", "tasks", "imbalance")
	for i, c := range res.Trace.Cycles {
		if len(c.Tasks) == 0 {
			continue
		}
		im := c.Imbalance()
		fmt.Printf("  %-6d %-10s %-8d %-10.3f\n", i+1, c.Phase, len(c.Tasks), im)
		switch c.Phase {
		case core.PhaseRandom:
			rnd = append(rnd, im)
		case core.PhaseGroup:
			grp = append(grp, im)
		}
	}
	avg := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	fmt.Printf("mean imbalance: random=%.3f group=%.3f\n", avg(rnd), avg(grp))

	// The paper's future work asks for better balance between the two
	// phases; splitting oversized phase-2 groups (Options.MaxGroupSize)
	// is the remedy this repository implements.
	res2, err := core.Classify(tb, core.Options{
		Reasoner: oracle, Workers: 10, RandomCycles: 3,
		Seed: *seedFlag, CollectTrace: true, MaxGroupSize: 64,
	})
	if err != nil {
		return err
	}
	var grp2 []float64
	for _, c := range res2.Trace.Cycles {
		if c.Phase == core.PhaseGroup && len(c.Tasks) > 0 {
			grp2 = append(grp2, c.Imbalance())
		}
	}
	fmt.Printf("group phase with MaxGroupSize=64: imbalance=%.3f (was %.3f)\n", avg(grp2), avg(grp))
	return nil
}

// future probes the paper's stated future-work scale ("ontologies with up
// to 300,000 concepts"): it generates a large EL corpus with -bign
// concepts, classifies it for real against the oracle plug-in, and
// reports wall time, shared-state memory, test counts, and the simulated
// speedup at w = 140. Not part of -exp all (several minutes at the
// default size).
func future() error {
	n := *bigNFlag
	p := ontogen.Profile{
		Name:              fmt.Sprintf("future-%dk", n/1000),
		Concepts:          n,
		SubClassOf:        n + n/2,
		Axioms:            3*n + n/2,
		PaperExpressivity: "EL",
	}
	start := time.Now()
	tb, err := p.Generate(*seedFlag)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d concepts, %d axioms in %v\n", n, len(tb.Axioms()), time.Since(start))

	start = time.Now()
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{
		SubsCost: reasoner.UniformCost(time.Millisecond, 0.2, uint64(*seedFlag)),
	})
	fmt.Printf("oracle closure in %v\n", time.Since(start))

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start = time.Now()
	res, err := core.Classify(tb, core.Options{
		Reasoner: oracle, Workers: 140, RandomCycles: 2,
		Seed: *seedFlag, CollectTrace: true,
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	sim := schedsim.Simulate(res.Trace, 140, overheadAtScale(1), core.RoundRobin)
	fmt.Printf("classified %d concepts in %v wall (1 CPU, 140-worker pool)\n", n, wall)
	fmt.Printf("tests = %d, pruned = %d, taxonomy classes = %d\n",
		res.Stats.SubsTests, res.Stats.Pruned, res.Taxonomy.NumClasses())
	fmt.Printf("heap growth ≈ %d MiB\n", (after.HeapInuse-before.HeapInuse)/(1<<20))
	fmt.Printf("simulated speedup at w=140 with 1ms tests: %.1f\n", sim.Speedup)
	fmt.Println("paper Sec. V-A: \"for our future research we are expecting a similarly")
	fmt.Println("good or even better performance for much bigger ontologies\" — the")
	fmt.Println("larger partitions keep per-cycle overhead negligible, so the speedup")
	fmt.Println("stays near-linear at 140 workers.")
	return nil
}

// benchResult is one row of the BENCH_tableau.json report.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// tableauHot benchmarks the tableau reasoner's hot path (the per-test cost
// classification pays millions of times) and writes the rows to -benchout
// as JSON, so successive commits can be diffed mechanically. The same
// measurements run under `go test -bench 'Tableau' -benchmem`; this
// experiment is the scriptable variant.
func tableauHot() error {
	p, err := scaledProfile("bridg.biomedical_domain")
	if err != nil {
		return err
	}
	tb, err := p.Generate(*seedFlag)
	if err != nil {
		return err
	}
	named := tb.NamedConcepts()
	var results []benchResult
	record := func(name string, r testing.BenchmarkResult) {
		results = append(results, benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Printf("  %-24s %12.0f ns/op %10d B/op %8d allocs/op\n",
			name, float64(r.NsPerOp()), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	fmt.Printf("tableau: hot-path microbenchmarks on %s (scale 1/%d, %d concepts)\n",
		p.Name, *scaleFlag, len(named))
	tab := tableau.New(tb, tableau.Options{})
	record("Subsumes", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tab.Subs(context.Background(), named[i%len(named)], named[(i*7+3)%len(named)]); err != nil {
				b.Fatal(err)
			}
		}
	}))
	record("SatReuse", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tab.Sat(context.Background(), named[i%len(named)]); err != nil {
				b.Fatal(err)
			}
		}
	}))
	mm := tableau.New(tb, tableau.Options{ModelMerging: true})
	record("SubsumesModelMerging", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mm.Subs(context.Background(), named[i%len(named)], named[(i*7+3)%len(named)]); err != nil {
				b.Fatal(err)
			}
		}
	}))

	st := tab.Stats()
	report := struct {
		Profile    string        `json:"profile"`
		Scale      int           `json:"scale"`
		Benchmarks []benchResult `json:"benchmarks"`
		Arena      struct {
			SolversReused    int64 `json:"solvers_reused"`
			SolversAllocated int64 `json:"solvers_allocated"`
			NodesReused      int64 `json:"nodes_reused"`
			NodesAllocated   int64 `json:"nodes_allocated"`
		} `json:"arena"`
	}{Profile: p.Name, Scale: *scaleFlag, Benchmarks: results}
	report.Arena.SolversReused = st.SolversReused.Load()
	report.Arena.SolversAllocated = st.SolversAllocated.Load()
	report.Arena.NodesReused = st.NodesReused.Load()
	report.Arena.NodesAllocated = st.NodesAllocated.Load()

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*benchOut, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (solver reuse %d/%d, node reuse %d/%d)\n", *benchOut,
		report.Arena.SolversReused, report.Arena.SolversReused+report.Arena.SolversAllocated,
		report.Arena.NodesReused, report.Arena.NodesReused+report.Arena.NodesAllocated)
	return nil
}

// classifyRun is one pipeline configuration's measurements in the
// BENCH_classify.json report. Plug-in calls are what the tableau actually
// executed; the core counters explain where the avoided calls went.
type classifyRun struct {
	WallMS     float64 `json:"wall_ms"`
	SatCalls   int64   `json:"sat_calls"`
	SubsCalls  int64   `json:"subs_calls"`
	Pruned     int64   `json:"pruned"`
	PreSeeded  int64   `json:"preseeded"`
	FilterHits int64   `json:"filter_hits"`
}

type classifyProfileResult struct {
	Profile           string      `json:"profile"`
	Concepts          int         `json:"concepts"`
	Off               classifyRun `json:"off"`
	On                classifyRun `json:"on"`
	ReductionPct      float64     `json:"reduction_pct"`
	TaxonomyIdentical bool        `json:"taxonomy_identical"`
}

// classifyBench is the end-to-end classification benchmark: the real
// parallel classifier over real tableau reasoning on generated corpora,
// once with the cheap-first pipeline off and once with -prepass
// -modelfilter on. It checks the taxonomies are byte-identical, reports
// the plug-in call reduction (the ISSUE's ≥30% acceptance bar), and
// writes BENCH_classify.json so the commit-over-commit perf trajectory
// has end-to-end data (compare with scripts/bench_classify.sh).
func classifyBench() error {
	profiles := []string{"actpathway.obo", "EHDAA2", "rnao_functional"}
	repeats := *repeatsFlag
	if repeats < 1 {
		repeats = 1
	}
	report := struct {
		Seed     int64                   `json:"seed"`
		Scale    int                     `json:"scale"`
		Workers  int                     `json:"workers"`
		Repeats  int                     `json:"repeats"`
		Profiles []classifyProfileResult `json:"profiles"`
	}{Seed: *seedFlag, Scale: *classifyScale, Workers: *classifyWorkers, Repeats: repeats}

	fmt.Printf("classify: real end-to-end classification, scale 1/%d, %d workers, %d repeats\n",
		*classifyScale, *classifyWorkers, repeats)
	fmt.Printf("  %-22s %-9s %10s %10s %10s %10s %10s %10s\n",
		"profile", "pipeline", "wall", "sat?", "subs?", "pruned", "preseeded", "filter")
	for _, name := range profiles {
		p, ok := ontogen.ByName(name)
		if !ok {
			return fmt.Errorf("unknown profile %q", name)
		}
		if *classifyScale > 1 {
			p = ontogen.Mini(p, *classifyScale)
		}
		tb, err := p.Generate(*seedFlag)
		if err != nil {
			return err
		}
		run := func(pipeline bool) (classifyRun, *core.Result, error) {
			var row classifyRun
			var last *core.Result
			var wall time.Duration
			for rep := 0; rep < repeats; rep++ {
				// Fresh plug-in per repetition: no warm caches carry over.
				var stats reasoner.Stats
				r := reasoner.Counting{R: tableau.New(tb, tableau.Options{}), S: &stats}
				start := time.Now()
				res, err := core.Classify(tb, core.Options{
					Reasoner: r, Workers: *classifyWorkers, Seed: *seedFlag,
					ELPrepass: pipeline, ModelFilter: pipeline,
				})
				if err != nil {
					return row, nil, err
				}
				wall += time.Since(start)
				last = res
				if rep == 0 {
					row.SatCalls = stats.SatCalls.Load()
					row.SubsCalls = stats.SubsCalls.Load()
					row.Pruned = res.Stats.Pruned
					row.PreSeeded = res.Stats.PreSeeded
					row.FilterHits = res.Stats.FilterHits
				}
			}
			row.WallMS = float64(wall) / float64(repeats) / 1e6
			return row, last, nil
		}
		off, offRes, err := run(false)
		if err != nil {
			return fmt.Errorf("%s pipeline-off: %w", p.Name, err)
		}
		on, onRes, err := run(true)
		if err != nil {
			return fmt.Errorf("%s pipeline-on: %w", p.Name, err)
		}
		pr := classifyProfileResult{
			Profile: p.Name, Concepts: p.Concepts, Off: off, On: on,
			TaxonomyIdentical: onRes.Taxonomy.Render() == offRes.Taxonomy.Render(),
		}
		if total := off.SatCalls + off.SubsCalls; total > 0 {
			pr.ReductionPct = 100 * float64(total-(on.SatCalls+on.SubsCalls)) / float64(total)
		}
		report.Profiles = append(report.Profiles, pr)
		for _, r := range []struct {
			label string
			row   classifyRun
		}{{"off", off}, {"on", on}} {
			fmt.Printf("  %-22s %-9s %9.1fms %10d %10d %10d %10d %10d\n",
				p.Name, r.label, r.row.WallMS, r.row.SatCalls, r.row.SubsCalls,
				r.row.Pruned, r.row.PreSeeded, r.row.FilterHits)
		}
		fmt.Printf("  %-22s reduction %.1f%% of plug-in calls, taxonomy identical: %v\n",
			p.Name, pr.ReductionPct, pr.TaxonomyIdentical)
		if !pr.TaxonomyIdentical {
			return fmt.Errorf("%s: pipeline changed the taxonomy", p.Name)
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*classifyOut, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	// A benchstat-compatible twin of the JSON, so scripts/bench_classify.sh
	// can compare successive commits mechanically.
	benchPath := strings.TrimSuffix(*classifyOut, ".json") + ".bench"
	var bench strings.Builder
	for _, pr := range report.Profiles {
		for _, r := range []struct {
			label string
			row   classifyRun
		}{{"off", pr.Off}, {"on", pr.On}} {
			fmt.Fprintf(&bench, "BenchmarkClassify/%s/pipeline=%s 1 %.0f ns/op %d subs-calls %d sat-calls\n",
				sanitizeFile(pr.Profile), r.label, r.row.WallMS*1e6, r.row.SubsCalls, r.row.SatCalls)
		}
	}
	if err := os.WriteFile(benchPath, []byte(bench.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", *classifyOut, benchPath)
	return nil
}

// schedSkewCost is a concept-correlated heavy tail: a deterministic
// fraction of concepts is "hard", and any test involving a hard concept
// costs factor× the base (twice over when both ends are hard). Unlike
// reasoner.HeavyTailCost, whose expensive pairs are scattered randomly,
// the skew here follows concepts — past test durations predict future
// ones, which is both the signal the WorkStealing hardness EWMA feeds on
// and the shape the paper attributes to high-QCR ontologies (a few
// concepts cause all the expensive tests, Sec. V-B).
func schedSkewCost(base time.Duration, prob, factor float64, seed uint64) reasoner.CostModel {
	threshold := uint64(prob * float64(^uint64(0)))
	hard := func(id int32) bool {
		x := uint64(uint32(id)) ^ seed
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return (x ^ (x >> 31)) < threshold
	}
	return func(sup, sub *dl.Concept, _ bool) time.Duration {
		d := base
		if hard(sup.ID) {
			d = time.Duration(float64(d) * factor)
		}
		if hard(sub.ID) {
			d = time.Duration(float64(d) * factor)
		}
		return d
	}
}

// schedRun is one policy's row in BENCH_sched.json.
type schedRun struct {
	Policy            string  `json:"policy"`
	WallMS            float64 `json:"wall_ms"`
	Imbalance         float64 `json:"imbalance_max_over_mean"`
	Steals            int64   `json:"steals"`
	SpeedupVsRR       float64 `json:"speedup_vs_roundrobin"`
	TaxonomyIdentical bool    `json:"taxonomy_identical"`
}

// schedBench compares the four pool scheduling policies on a skewed
// corpus with real (slept) per-test durations: the oracle plug-in runs in
// RealTime mode under a concept-correlated heavy-tail cost model, so the
// pool's assignment decisions — not the reasoner — determine the
// makespan. Reports wall clock, max/mean worker-load imbalance, and steal
// counts per policy, checks taxonomies stay byte-identical, and writes
// BENCH_sched.json plus a benchstat-format twin (compare successive
// commits with scripts/bench_sched.sh).
func schedBench() error {
	var (
		tb  *dl.TBox
		err error
	)
	corpusName := *schedCorpus
	if corpusName != "" {
		tb, err = parowl.LoadFile(corpusName)
	} else {
		var p ontogen.Profile
		p, ok := ontogen.ByName("ncitations_functional")
		if !ok {
			return fmt.Errorf("ncitations profile missing")
		}
		if *schedScale > 1 {
			p = ontogen.Mini(p, *schedScale)
		}
		corpusName = p.Name
		tb, err = p.Generate(*seedFlag)
	}
	if err != nil {
		return err
	}
	// ~5% hard concepts at 40× the 40µs base: a handful of tasks carry
	// most of the runtime, the regime where static round-robin straggles.
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{
		SubsCost: schedSkewCost(40*time.Microsecond, 0.05, 60, uint64(*seedFlag)),
		SatCost:  20 * time.Microsecond,
		RealTime: true,
	})
	repeats := *repeatsFlag
	if repeats < 1 {
		repeats = 1
	}
	policies := []core.Scheduling{core.RoundRobin, core.WorkSharing, core.WorkStealing, core.Async}
	fmt.Printf("sched: %s (%d concepts), %d workers, %d repeats, skewed real-time tests\n",
		corpusName, tb.NumNamed(), *schedWorkers, repeats)
	fmt.Printf("  %-14s %12s %12s %10s %12s\n", "policy", "wall", "imbalance", "steals", "vs roundrobin")
	var (
		rows    []schedRun
		rrWall  float64
		wantTax string
	)
	for _, sched := range policies {
		var wall time.Duration
		var imbalance float64
		var row schedRun
		row.Policy = sched.String()
		for rep := 0; rep < repeats; rep++ {
			start := time.Now()
			res, err := core.Classify(tb, core.Options{
				Reasoner: oracle, Workers: *schedWorkers, RandomCycles: 1,
				Seed: *seedFlag + int64(rep), Scheduling: sched, CollectTrace: true,
			})
			if err != nil {
				return fmt.Errorf("%v: %w", sched, err)
			}
			wall += time.Since(start)
			imbalance += res.Trace.OverallImbalance()
			row.Steals += res.Stats.Steals
			if rep == 0 {
				tax := res.Taxonomy.Render()
				if wantTax == "" {
					wantTax = tax
				}
				row.TaxonomyIdentical = tax == wantTax
			}
		}
		row.WallMS = float64(wall) / float64(repeats) / 1e6
		row.Imbalance = imbalance / float64(repeats)
		row.Steals /= int64(repeats)
		if sched == core.RoundRobin {
			rrWall = row.WallMS
		}
		if rrWall > 0 {
			row.SpeedupVsRR = rrWall / row.WallMS
		}
		rows = append(rows, row)
		fmt.Printf("  %-14s %10.1fms %12.2f %10d %11.2fx\n",
			row.Policy, row.WallMS, row.Imbalance, row.Steals, row.SpeedupVsRR)
		if !row.TaxonomyIdentical {
			return fmt.Errorf("%v: taxonomy differs from roundrobin", sched)
		}
	}
	var wsRow schedRun
	for _, r := range rows {
		if r.Policy == core.WorkStealing.String() {
			wsRow = r
		}
	}
	gainPct := 100 * (1 - wsRow.WallMS/rrWall)
	fmt.Printf("  workstealing vs roundrobin: %.1f%% wall-clock reduction, imbalance %.2f -> %.2f\n",
		gainPct, rows[0].Imbalance, wsRow.Imbalance)
	if gainPct < 15 {
		fmt.Printf("  WARNING: below the 15%% acceptance bar\n")
	}

	report := struct {
		Corpus   string     `json:"corpus"`
		Concepts int        `json:"concepts"`
		Workers  int        `json:"workers"`
		Repeats  int        `json:"repeats"`
		Seed     int64      `json:"seed"`
		GainPct  float64    `json:"workstealing_vs_roundrobin_pct"`
		Policies []schedRun `json:"policies"`
	}{
		Corpus: corpusName, Concepts: tb.NumNamed(), Workers: *schedWorkers,
		Repeats: repeats, Seed: *seedFlag, GainPct: gainPct, Policies: rows,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*schedOut, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	benchPath := strings.TrimSuffix(*schedOut, ".json") + ".bench"
	var bench strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&bench, "BenchmarkSched/policy=%s 1 %.0f ns/op %d steals %.3f imbalance\n",
			r.Policy, r.WallMS*1e6, r.Steals, r.Imbalance)
	}
	if err := os.WriteFile(benchPath, []byte(bench.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", *schedOut, benchPath)
	return nil
}

// asyncRun is one policy's row in BENCH_async.json.
type asyncRun struct {
	Policy            string  `json:"policy"`
	WallMS            float64 `json:"wall_ms"`
	Tests             int64   `json:"plugin_tests"`
	TotalWaitMS       float64 `json:"total_wait_ms"`
	MeanWaitPerWorker float64 `json:"mean_wait_per_worker_ms"`
	Imbalance         float64 `json:"imbalance_max_over_mean"`
	TaxonomyIdentical bool    `json:"taxonomy_identical"`
}

// asyncBench compares the barrier-free Async policy against WorkStealing
// (its barrier-mode twin on the same deques) on the skewed real-time
// corpus of -exp sched. Three claims are measured: the total plug-in test
// count (async's bounded waves are cut from live state already thinned by
// earlier pruning, so work a barrier cycle would dispatch is never
// submitted), the per-worker parked time (no rendezvous, no straggler
// tail), and wall clock. Taxonomies must stay byte-identical — the
// stale-K reads only ever prune, never settle. Writes BENCH_async.json
// plus a benchstat twin (rotate with scripts/bench_async.sh).
func asyncBench() error {
	var (
		tb  *dl.TBox
		err error
	)
	corpusName := *asyncCorpus
	if corpusName != "" {
		tb, err = parowl.LoadFile(corpusName)
	} else {
		p, ok := ontogen.ByName("ncitations_functional")
		if !ok {
			return fmt.Errorf("ncitations profile missing")
		}
		if *asyncScale > 1 {
			p = ontogen.Mini(p, *asyncScale)
		}
		corpusName = p.Name
		tb, err = p.Generate(*seedFlag)
	}
	if err != nil {
		return err
	}
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{
		SubsCost: schedSkewCost(40*time.Microsecond, 0.05, 60, uint64(*seedFlag)),
		SatCost:  20 * time.Microsecond,
		RealTime: true,
	})
	repeats := *repeatsFlag
	if repeats < 1 {
		repeats = 1
	}
	fmt.Printf("async: %s (%d concepts), %d workers, %d repeats, skewed real-time tests\n",
		corpusName, tb.NumNamed(), *asyncWorkers, repeats)
	fmt.Printf("  %-14s %12s %10s %14s %12s\n", "policy", "wall", "tests", "wait/worker", "imbalance")
	var (
		rows    []asyncRun
		wantTax string
	)
	for _, sched := range []core.Scheduling{core.WorkStealing, core.Async} {
		var row asyncRun
		row.Policy = sched.String()
		var wall, wait time.Duration
		var imbalance float64
		for rep := 0; rep < repeats; rep++ {
			start := time.Now()
			res, err := core.Classify(tb, core.Options{
				Reasoner: oracle, Workers: *asyncWorkers, RandomCycles: 2,
				Seed: *seedFlag + int64(rep), Scheduling: sched, CollectTrace: true,
			})
			if err != nil {
				return fmt.Errorf("%v: %w", sched, err)
			}
			wall += time.Since(start)
			wait += res.Trace.TotalWait()
			imbalance += res.Trace.OverallImbalance()
			row.Tests += res.Stats.SubsTests + res.Stats.SatTests
			if rep == 0 {
				tax := res.Taxonomy.Render()
				if wantTax == "" {
					wantTax = tax
				}
				row.TaxonomyIdentical = tax == wantTax
			}
		}
		row.WallMS = float64(wall) / float64(repeats) / 1e6
		row.TotalWaitMS = float64(wait) / float64(repeats) / 1e6
		row.MeanWaitPerWorker = row.TotalWaitMS / float64(*asyncWorkers)
		row.Imbalance = imbalance / float64(repeats)
		row.Tests /= int64(repeats)
		rows = append(rows, row)
		fmt.Printf("  %-14s %10.1fms %10d %12.1fms %12.2f\n",
			row.Policy, row.WallMS, row.Tests, row.MeanWaitPerWorker, row.Imbalance)
		if !row.TaxonomyIdentical {
			return fmt.Errorf("%v: taxonomy differs from workstealing", sched)
		}
	}
	ws, as := rows[0], rows[1]
	testDeltaPct := 100 * (1 - float64(as.Tests)/float64(ws.Tests))
	waitDeltaPct := 100 * (1 - as.TotalWaitMS/ws.TotalWaitMS)
	wallDeltaPct := 100 * (1 - as.WallMS/ws.WallMS)
	fmt.Printf("  async vs workstealing: tests %.1f%% fewer, wait %.1f%% less, wall %+.1f%%\n",
		testDeltaPct, waitDeltaPct, wallDeltaPct)
	if as.Tests > ws.Tests {
		fmt.Printf("  WARNING: async dispatched more plug-in tests than workstealing\n")
	}
	if as.TotalWaitMS > ws.TotalWaitMS {
		fmt.Printf("  WARNING: async workers waited longer than workstealing workers\n")
	}

	report := struct {
		Corpus       string     `json:"corpus"`
		Concepts     int        `json:"concepts"`
		Workers      int        `json:"workers"`
		Repeats      int        `json:"repeats"`
		Seed         int64      `json:"seed"`
		TestDeltaPct float64    `json:"async_tests_vs_workstealing_pct"`
		WaitDeltaPct float64    `json:"async_wait_vs_workstealing_pct"`
		WallDeltaPct float64    `json:"async_wall_vs_workstealing_pct"`
		Policies     []asyncRun `json:"policies"`
	}{
		Corpus: corpusName, Concepts: tb.NumNamed(), Workers: *asyncWorkers,
		Repeats: repeats, Seed: *seedFlag,
		TestDeltaPct: testDeltaPct, WaitDeltaPct: waitDeltaPct, WallDeltaPct: wallDeltaPct,
		Policies: rows,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*asyncOut, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	benchPath := strings.TrimSuffix(*asyncOut, ".json") + ".bench"
	var bench strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&bench, "BenchmarkAsync/policy=%s 1 %.0f ns/op %d tests %.0f wait-ns %.3f imbalance\n",
			r.Policy, r.WallMS*1e6, r.Tests, r.TotalWaitMS*1e6, r.Imbalance)
	}
	if err := os.WriteFile(benchPath, []byte(bench.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", *asyncOut, benchPath)
	return nil
}

// overheadAtScale returns the calibrated overhead model for a given
// corpus scale factor.
func overheadAtScale(scale int) schedsim.Overhead {
	s := float64(scale * scale)
	return schedsim.Overhead{
		PerTask:          time.Duration(float64(200*time.Microsecond) / s),
		PerWorkerCycle:   time.Duration(float64(2*time.Millisecond) / s),
		BarrierPerWorker: time.Duration(float64(500*time.Millisecond) / s),
	}
}
