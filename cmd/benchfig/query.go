package main

// -exp query: taxonomy query-path benchmark, bit-matrix kernel vs the
// pointer DAG. Classifies full-size Table IV corpora against the oracle
// plug-in (classification is only the setup here; the query paths being
// measured are identical no matter which plug-in produced the taxonomy),
// times each query family through the public Taxonomy API before and
// after CompileKernel, verifies the two paths give identical answers on
// every sampled query, and writes BENCH_query.json plus a
// benchstat-format twin (compare successive commits with
// scripts/bench_query.sh).

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"parowl/internal/core"
	"parowl/internal/dl"
	"parowl/internal/ontogen"
	"parowl/internal/reasoner"
	"parowl/internal/taxonomy"
)

var (
	queryOut     = flag.String("queryout", "BENCH_query.json", "output path for the -exp query results")
	queryScale   = flag.Int("queryscale", 1, "corpus scale divisor for -exp query (1 = full size; the ≥10x bar is judged on a ≥5k-concept corpus)")
	queryWorkers = flag.Int("queryworkers", 8, "worker count for -exp query classification and kernel compilation")
)

// queryOpResult is one query family's row: mean ns/op on the pointer-DAG
// path and on the compiled kernel, over the same sampled workload.
type queryOpResult struct {
	Op       string  `json:"op"`
	DagNsOp  float64 `json:"dag_ns_per_op"`
	KernNsOp float64 `json:"kernel_ns_per_op"`
	Speedup  float64 `json:"speedup"`
}

type queryProfileResult struct {
	Profile          string          `json:"profile"`
	Concepts         int             `json:"concepts"`
	Classes          int             `json:"classes"`
	CompileMS        float64         `json:"compile_ms"`
	KernelBytes      int             `json:"kernel_bytes"`
	Ops              []queryOpResult `json:"ops"`
	AnswersIdentical bool            `json:"answers_identical"`
}

// querySink defeats dead-code elimination inside the benchmark closures.
var querySink int

// queryBench measures the tentpole: one bit test / word-parallel row op
// per query on the kernel vs graph walks on the DAG, same public API.
func queryBench() error {
	profiles := []string{"EHDAA2", "CLEMAPA", "actpathway.obo"}
	report := struct {
		Seed     int64                `json:"seed"`
		Scale    int                  `json:"scale"`
		Workers  int                  `json:"workers"`
		Profiles []queryProfileResult `json:"profiles"`
	}{Seed: *seedFlag, Scale: *queryScale, Workers: *queryWorkers}

	fmt.Printf("query: bit-matrix kernel vs pointer DAG, scale 1/%d, %d workers\n",
		*queryScale, *queryWorkers)
	for _, name := range profiles {
		p, ok := ontogen.ByName(name)
		if !ok {
			return fmt.Errorf("unknown profile %q", name)
		}
		if *queryScale > 1 {
			p = ontogen.Mini(p, *queryScale)
		}
		pr, err := queryBenchProfile(p)
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		report.Profiles = append(report.Profiles, *pr)
	}

	// The acceptance bar: ≥10x on subsumption checks for at least one
	// ≥5000-concept corpus, with identical answers.
	bar := false
	for _, pr := range report.Profiles {
		if pr.Concepts < 5000 || !pr.AnswersIdentical {
			continue
		}
		for _, op := range pr.Ops {
			if op.Op == "subsumes" && op.Speedup >= 10 {
				bar = true
			}
		}
	}
	if !bar {
		fmt.Printf("  WARNING: no >=5k-concept corpus reached the 10x subsumption bar\n")
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*queryOut, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	benchPath := strings.TrimSuffix(*queryOut, ".json") + ".bench"
	var bench strings.Builder
	for _, pr := range report.Profiles {
		for _, op := range pr.Ops {
			fmt.Fprintf(&bench, "BenchmarkQuery/%s/op=%s/path=dag 1 %.0f ns/op\n",
				sanitizeFile(pr.Profile), op.Op, op.DagNsOp)
			fmt.Fprintf(&bench, "BenchmarkQuery/%s/op=%s/path=kernel 1 %.0f ns/op\n",
				sanitizeFile(pr.Profile), op.Op, op.KernNsOp)
		}
		fmt.Fprintf(&bench, "BenchmarkQuery/%s/compile 1 %.0f ns/op %d kernel-bytes\n",
			sanitizeFile(pr.Profile), pr.CompileMS*1e6, pr.KernelBytes)
	}
	if err := os.WriteFile(benchPath, []byte(bench.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", *queryOut, benchPath)
	return nil
}

func queryBenchProfile(p ontogen.Profile) (*queryProfileResult, error) {
	tb, err := p.Generate(*seedFlag)
	if err != nil {
		return nil, err
	}
	oracle := reasoner.NewOracle(tb, reasoner.OracleOptions{})
	res, err := core.Classify(tb, core.Options{
		Reasoner: oracle, Workers: *queryWorkers, RandomCycles: *cyclesFlag,
		Seed: *seedFlag, UseToldSubsumers: true,
	})
	if err != nil {
		return nil, err
	}
	tax := res.Taxonomy
	if tax.Kernel() != nil {
		return nil, fmt.Errorf("kernel attached before the DAG pass")
	}
	named := tb.NamedConcepts()
	rng := rand.New(rand.NewSource(*seedFlag))
	// Biased pair sampling: uniform pairs on a wide taxonomy are almost
	// always unrelated, which the DAG path also answers quickly; mixing in
	// ancestor-of-neighbour pairs keeps deep positive chains in the mix.
	pairs := make([][2]*dl.Concept, 4096)
	for i := range pairs {
		a := named[rng.Intn(len(named))]
		b := named[rng.Intn(len(named))]
		pairs[i] = [2]*dl.Concept{a, b}
	}
	probes := make([]*dl.Concept, 512)
	for i := range probes {
		probes[i] = named[rng.Intn(len(named))]
	}

	// Each op family is one closure, timed identically on both paths via
	// the public Taxonomy API (which delegates to the kernel once it is
	// attached). testing.Benchmark picks N per path, so slow DAG walks and
	// sub-ns kernel bit tests are both measured at meaningful iteration
	// counts.
	ops := []struct {
		name string
		fn   func(i int)
	}{
		{"subsumes", func(i int) {
			pr := pairs[i%len(pairs)]
			if tax.IsAncestor(pr[0], pr[1]) {
				querySink++
			}
		}},
		{"ancestors", func(i int) {
			querySink += len(tax.Ancestors(probes[i%len(probes)]))
		}},
		{"descendants", func(i int) {
			querySink += len(tax.Descendants(probes[i%len(probes)]))
		}},
		{"lca", func(i int) {
			pr := pairs[i%len(pairs)]
			querySink += len(tax.LCA(pr[0], pr[1]))
		}},
		{"depth", func(i int) {
			querySink += tax.Depth(probes[i%len(probes)])
		}},
	}
	measure := func(fn func(i int)) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn(i)
			}
		})
		return float64(r.NsPerOp())
	}

	answers := func() []string {
		out := make([]string, 0, 2*len(pairs)+4*len(probes))
		for _, pr := range pairs {
			out = append(out, fmt.Sprint(tax.IsAncestor(pr[0], pr[1])), labelNodes(tax.LCA(pr[0], pr[1])))
		}
		for _, c := range probes {
			out = append(out,
				labelNodes(tax.Ancestors(c)), labelNodes(tax.Descendants(c)),
				labelConcepts(tax.Equivalents(c)), fmt.Sprint(tax.Depth(c)))
		}
		return out
	}

	pres := &queryProfileResult{
		Profile: p.Name, Concepts: p.Concepts, Classes: tax.NumClasses(),
	}
	fmt.Printf("\n  %s: %d concepts, %d classes\n", p.Name, len(named), tax.NumClasses())
	fmt.Printf("  %-12s %14s %14s %10s\n", "op", "dag", "kernel", "speedup")

	dagNs := make([]float64, len(ops))
	for i, op := range ops {
		dagNs[i] = measure(op.fn)
	}
	want := answers()

	start := time.Now()
	k := tax.CompileKernel(*queryWorkers)
	compile := time.Since(start)
	pres.CompileMS = float64(compile) / 1e6
	pres.KernelBytes = k.MemoryFootprint()

	got := answers()
	pres.AnswersIdentical = len(want) == len(got)
	for i := range want {
		if want[i] != got[i] {
			pres.AnswersIdentical = false
			return nil, fmt.Errorf("answer %d diverged: dag=%s kernel=%s", i, want[i], got[i])
		}
	}

	for i, op := range ops {
		kernNs := measure(op.fn)
		row := queryOpResult{Op: op.name, DagNsOp: dagNs[i], KernNsOp: kernNs}
		if kernNs > 0 {
			row.Speedup = dagNs[i] / kernNs
		}
		pres.Ops = append(pres.Ops, row)
		fmt.Printf("  %-12s %12.0fns %12.0fns %9.1fx\n", op.name, row.DagNsOp, row.KernNsOp, row.Speedup)
	}
	fmt.Printf("  compile: %v (%d closure bytes), answers identical over %d sampled queries: %v\n",
		compile.Round(time.Microsecond), pres.KernelBytes, len(want), pres.AnswersIdentical)
	return pres, nil
}

// labelNodes/labelConcepts canonicalize a result set for comparison; the
// two paths may enumerate in different orders (DAG traversal vs node ID).
func labelNodes(nodes []*taxonomy.Node) string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Label()
	}
	sort.Strings(out)
	return strings.Join(out, "|")
}

func labelConcepts(cs []*dl.Concept) string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	sort.Strings(out)
	return strings.Join(out, "|")
}
